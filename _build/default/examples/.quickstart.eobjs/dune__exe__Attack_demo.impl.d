examples/attack_demo.ml: List Printf Qs_adversary Qs_core Qs_stdx Theorem4
