examples/chain_demo.ml: Chain_cluster Chain_node List Printf Qs_bchain Qs_core Qs_fd Qs_sim String
