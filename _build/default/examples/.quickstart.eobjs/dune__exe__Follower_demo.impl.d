examples/follower_demo.ml: Fcluster Fmsg Follower_select Printf Qs_core Qs_follower
