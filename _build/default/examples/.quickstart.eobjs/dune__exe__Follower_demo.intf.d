examples/follower_demo.mli:
