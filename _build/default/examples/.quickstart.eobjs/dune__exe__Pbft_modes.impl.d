examples/pbft_modes.ml: List Pcluster Preplica Printf Qs_fd Qs_pbft Qs_sim String
