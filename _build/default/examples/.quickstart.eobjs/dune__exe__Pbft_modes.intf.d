examples/pbft_modes.mli:
