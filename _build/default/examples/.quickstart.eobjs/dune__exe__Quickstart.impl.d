examples/quickstart.ml: Cluster List Pid Printf Qs_core Quorum_select
