examples/quickstart.mli:
