examples/smr_service.ml: Array Hashtbl List Printf Qs_core Qs_fd Qs_sim Qs_xpaxos Replica String Xcluster Xmsg
