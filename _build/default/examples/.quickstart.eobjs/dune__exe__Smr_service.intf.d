examples/smr_service.mli:
