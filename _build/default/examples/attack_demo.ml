(* The Theorem-4 adversary, step by step.

   The paper's lower bound says any deterministic quorum selection can be
   forced to propose C(f+2,2) quorums by an adversary that concentrates
   suspicions on two correct "victims" plus the f faulty processes. This
   demo plays the optimal game against Algorithm 1 and narrates every move.

   Run with: dune exec examples/attack_demo.exe *)

open Qs_adversary
module Pid = Qs_core.Pid

let () =
  let f = 3 in
  let n = (2 * f) + 2 in
  let setup = Theorem4.default_setup ~n ~f in
  let v1, v2 = setup.Theorem4.victims in
  Printf.printf "System: n=%d processes, f=%d faulty.\n" n f;
  Printf.printf "Adversary controls %s; victims are %s and %s.\n"
    (Pid.set_to_string setup.Theorem4.faulty)
    (Pid.to_string v1) (Pid.to_string v2);
  Printf.printf "Target: force C(f+2,2) = %d quorums (counting the initial default).\n\n"
    (Theorem4.target ~f);

  let game = Theorem4.exhaustive setup in
  Printf.printf "%-4s %-24s %s\n" "#" "suspicion" "new quorum";
  (match Theorem4.quorum_after setup [] with
   | Some q -> Printf.printf "%-4s %-24s %s\n" "0" "(none: initial default)" (Pid.set_to_string q)
   | None -> ());
  List.iteri
    (fun i ((suspector, suspect), quorum) ->
      let why =
        if List.mem suspector setup.Theorem4.faulty then "false suspicion by faulty"
        else "earned: faulty omitted a message"
      in
      Printf.printf "%-4d %s suspects %s %-6s %s   (%s)\n" (i + 1)
        (Pid.to_string suspector) (Pid.to_string suspect) ""
        (Pid.set_to_string quorum) why)
    (List.combine game.Theorem4.injections game.Theorem4.quorums);

  Printf.printf "\nReplaying on the live gossip cluster...\n";
  let issued = Theorem4.replay setup game in
  Printf.printf "Live cluster issued %d quorum changes; with the initial default that is %d = C(%d,2)? %b\n"
    issued (issued + 1) (f + 2)
    (issued + 1 = Theorem4.target ~f);

  (* Why it stops: every pair inside F+2 with a faulty endpoint has been
     burnt; the remaining quorum contains no usable pair. *)
  Printf.printf "\nAfter the attack, suspicions can no longer touch the quorum:\n";
  (match Theorem4.quorum_after setup (List.map (fun (a, b) -> (min a b, max a b)) game.Theorem4.injections) with
   | Some q ->
     Printf.printf "  final quorum %s -- every remaining pair is victim-victim or fully correct.\n"
       (Pid.set_to_string q)
   | None -> ());
  Printf.printf
    "\nContrast: XPaxos's enumeration baseline may need to walk C(n,f) = C(%d,%d) = %d quorums.\n"
    n f
    (Qs_stdx.Combin.choose n f)
