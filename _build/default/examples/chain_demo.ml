(* Chain replication with Quorum Selection (the BChain idea, paper Section I).

   The active quorum forms a chain: one forward pass, one ack pass —
   2(q-1) messages per request instead of q^2-1 all-to-all. When a chain
   member omits messages, position-scaled expectations blame the right
   link, quorum selection excises the suspect pair, and the chain re-forms.

   Run with: dune exec examples/chain_demo.exe *)

open Qs_bchain
module Stime = Qs_sim.Stime
module Pid = Qs_core.Pid

let ms = Stime.of_ms

let show_chain cluster label =
  let node = Chain_cluster.node cluster 5 in
  Printf.printf "%-38s chain: %s\n" label
    (String.concat " -> " (List.map Pid.to_string (Chain_node.chain node)))

let () =
  let config =
    {
      Chain_node.n = 7;
      f = 2;
      initial_timeout = ms 25;
      timeout_strategy = Qs_fd.Timeout.Exponential { factor = 2.0; max = ms 2000 };
    }
  in
  let cluster = Chain_cluster.create ~seed:11L config in
  show_chain cluster "initial:";

  let r1 = Chain_cluster.submit cluster "SET a 1" in
  Chain_cluster.run ~until:(ms 100) cluster;
  Printf.printf "request 1 committed by %s with %d messages (2(q-1) = %d)\n"
    (Pid.set_to_string (Chain_cluster.executed_by cluster r1))
    (Chain_cluster.message_count cluster)
    (2 * (5 - 1));

  (* p3 starts dropping everything to its successor. *)
  print_endline "\np3 now omits all messages to p4...";
  Chain_cluster.set_fault cluster 2 (Chain_node.Omit_to [ 3 ]);
  let r2 = Chain_cluster.submit cluster ~resubmit_every:(ms 100) "SET b 2" in
  Chain_cluster.run ~until:(ms 8000) cluster;
  show_chain cluster "after re-chaining:";
  Printf.printf "request 2 committed: %b (executed by %s)\n"
    (Chain_cluster.is_committed cluster r2)
    (Pid.set_to_string (Chain_cluster.executed_by cluster r2));

  (* The suspicion that triggered it, straight from quorum selection: *)
  let qs = Chain_node.quorum_selector (Chain_cluster.node cluster 5) in
  Printf.printf "\nquorum selection at p6: epoch=%d quorum=%s\n"
    (Qs_core.Quorum_select.epoch qs)
    (Pid.set_to_string (Qs_core.Quorum_select.last_quorum qs))
