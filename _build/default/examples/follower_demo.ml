(* Follower Selection (Algorithm 2) in action.

   A leader-centric deployment: only leader<->follower links matter, so
   suspicions among followers are ignored and the system reacts only when
   the leader is involved — reaching agreement after O(f) changes instead
   of O(f^2).

   Run with: dune exec examples/follower_demo.exe *)

open Qs_follower
module Pid = Qs_core.Pid

let show cluster label =
  let node = Fcluster.node cluster 3 in
  Printf.printf "%-44s leader=%s quorum=%s epoch=%d\n" label
    (Pid.to_string (Follower_select.leader node))
    (Pid.set_to_string (Follower_select.last_quorum node))
    (Follower_select.epoch node)

let () =
  (* n = 7 > 3f with f = 2 (Follower Selection needs the stronger bound). *)
  let config = { Qs_core.Quorum_select.n = 7; f = 2 } in
  let cluster = Fcluster.create config in
  show cluster "initial:";

  (* Followers bickering changes nothing. *)
  Fcluster.fd_suspect cluster ~at:2 [ 4 ];
  Fcluster.run_until_quiet cluster;
  show cluster "p3 suspects p5 (followers only):";

  (* A suspicion touching the leader moves the leadership: the maximal line
     subgraph now covers p1-p2 and p3-p5, so p4 (the smallest process no
     arrangement of suspicions can pin down) leads. *)
  Fcluster.fd_suspect cluster ~at:1 [ 0 ];
  Fcluster.run_until_quiet cluster;
  show cluster "p2 suspects leader p1:";

  (* The new leader picked its followers and broadcast a signed FOLLOWERS
     message; everyone verified it against Definition 3. *)
  (match Fcluster.agreed cluster ~correct:[ 0; 1; 2; 3; 4; 5; 6 ] with
   | Some (leader, quorum) ->
     Printf.printf "\nAll processes agree: leader %s, quorum %s\n\n" (Pid.to_string leader)
       (Pid.set_to_string quorum)
   | None -> print_endline "\nBUG: disagreement\n");

  (* A Byzantine leader equivocating gets caught: a second, well-formed but
     DIFFERENT FOLLOWERS message for the same epoch, slipped to p1 only.
     p1 already installed the real quorum, so this one is proof of
     equivocation (Algorithm 2, line 32). *)
  let node0 = Fcluster.node cluster 0 in
  let epoch = Follower_select.epoch node0 in
  let forged =
    Fmsg.seal (Fcluster.auth cluster)
      (Fmsg.Followers
         { Fmsg.leader = 3; epoch; followers = [ 0; 1; 2; 5 ]; line = [ (0, 1); (2, 4) ] })
  in
  Fcluster.deliver cluster ~to_:0 forged;
  Fcluster.run_until_quiet cluster;
  (match Fcluster.detected_log cluster with
   | (reporter, culprit) :: _ ->
     Printf.printf "equivocation detected: %s reported %s to its failure detector\n"
       (Pid.to_string reporter) (Pid.to_string culprit)
   | [] -> print_endline "no detection (unexpected)");
  Fcluster.run_until_quiet cluster;
  show cluster "after the equivocation was punished:";

  Printf.printf "\nmessages processed on the gossip bus: %d\n"
    (Fcluster.messages_processed cluster)
