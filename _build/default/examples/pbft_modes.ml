(* Masking vs reacting: classic PBFT next to PBFT-with-Quorum-Selection.

   The paper's opening observation: BFT systems pay a constant price to
   MASK omission and timing failures (PBFT runs all n = 3f+1 replicas and
   shrugs off f silent ones). Quorum Selection instead runs an active
   quorum of n-f and REACTS when one of them misbehaves. Same fault, two
   philosophies, measured side by side.

   Run with: dune exec examples/pbft_modes.exe *)

open Qs_pbft
module Stime = Qs_sim.Stime

let ms = Stime.of_ms

let run participation label =
  let f = 2 in
  let config =
    {
      Preplica.n = (3 * f) + 1;
      f;
      participation;
      initial_timeout = ms 25;
      timeout_strategy = Qs_fd.Timeout.Exponential { factor = 2.0; max = ms 2000 };
    }
  in
  let c = Pcluster.create config in
  (* Phase 1 — the fault hits: one backup replica is mute from the start.
     Masking sails through; selection pays for a reconfiguration. *)
  Pcluster.set_fault c 2 Preplica.Mute;
  let warmup =
    List.init 5 (fun i -> Pcluster.submit c ~resubmit_every:(ms 150) (Printf.sprintf "w%d" i))
  in
  Pcluster.run ~until:(ms 6000) c;
  let committed = List.length (List.filter (Pcluster.is_globally_committed c) warmup) in
  let phase1 = Pcluster.message_count c in
  (* Phase 2 — steady state: 20 requests after stabilization. This is where
     running only the active quorum pays off, forever. *)
  Qs_sim.Network.reset_counters (Pcluster.net c);
  let steady =
    List.init 20 (fun i -> Pcluster.submit c ~resubmit_every:(ms 150) (Printf.sprintf "s%d" i))
  in
  Pcluster.run ~until:(ms 12000) c;
  let committed2 = List.length (List.filter (Pcluster.is_globally_committed c) steady) in
  let phase2 = Pcluster.message_count c in
  Printf.printf
    "%-36s fault phase: %d/5 committed, %4d msgs, %d view change(s)\n\
     %-36s steady state: %d/20 committed, %4d msgs (%2d per request), active=%s\n"
    label committed phase1 (Pcluster.max_view c) "" committed2 phase2 (phase2 / 20)
    (String.concat ","
       (List.map (fun p -> string_of_int (p + 1)) (Preplica.participants (Pcluster.replica c 0))))

let () =
  print_endline "n = 7 replicas, f = 2, replica p3 is mute from the start.\n";
  run Preplica.Full "classic PBFT (masking):";
  run Preplica.Selected "PBFT + Quorum Selection (reacting):";
  print_endline
    "\nMasking never reconfigures but pays all-to-all traffic among all 7 replicas\n\
     on every request, forever. Selection pays once to re-form the quorum and then\n\
     runs every subsequent request on 5 replicas — the paper's thesis in two rows."
