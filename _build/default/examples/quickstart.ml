(* Quickstart: Quorum Selection (Algorithm 1) in five minutes.

   Seven processes, up to two Byzantine. We watch the selected quorum react
   to suspicions raised by the (simulated) failure detectors, and see the
   three properties from the paper in action: Agreement, No suspicion,
   Termination.

   Run with: dune exec examples/quickstart.exe *)

open Qs_core

let show cluster label =
  let quorum = Quorum_select.last_quorum (Cluster.node cluster 0) in
  let epoch = Quorum_select.epoch (Cluster.node cluster 0) in
  Printf.printf "%-46s quorum=%s epoch=%d\n" label (Pid.set_to_string quorum) epoch

let () =
  (* n = 7 processes, tolerating f = 2 arbitrary failures: quorums have
     q = n - f = 5 members. *)
  let config = { Quorum_select.n = 7; f = 2 } in
  let cluster = Cluster.create config in
  show cluster "initial (default {p1..p5}):";

  (* p1's failure detector reports that p3 failed to send an expected
     message. One suspicion is enough: the no-suspicion property forces a
     quorum without the pair. *)
  Cluster.fd_suspect cluster ~at:0 [ 2 ];
  Cluster.run_until_quiet cluster;
  show cluster "after p1 suspects p3:";

  (* A suspicion between processes OUTSIDE the quorum changes nothing. *)
  Cluster.fd_suspect cluster ~at:2 [ 0 ];
  Cluster.run_until_quiet cluster;
  show cluster "after p3 suspects p1 back (both outside):";

  (* p7 turns out to be crashed: everyone suspects it concurrently. The
     eventually-consistent suspicion matrix absorbs the burst; no consensus
     round is ever needed. *)
  List.iter (fun p -> Cluster.fd_suspect cluster ~at:p [ 6 ]) [ 0; 1; 3; 4; 5 ];
  Cluster.run_until_quiet cluster;
  show cluster "after everyone suspects p7:";

  (* Agreement: every correct process ended on the same quorum. *)
  let all = List.init 7 (fun i -> i) in
  (match Cluster.agreed_quorum cluster ~correct:all with
   | Some quorum ->
     Printf.printf "\nAgreement: all 7 processes output %s\n" (Pid.set_to_string quorum)
   | None -> print_endline "\nBUG: processes disagree");

  (* Termination: with no further suspicions, nothing changes. *)
  let before = Cluster.max_issued cluster ~correct:all in
  Cluster.run_until_quiet cluster;
  let after = Cluster.max_issued cluster ~correct:all in
  Printf.printf "Termination: %d quorums issued, %d after extra quiet time\n" before after;

  (* And the cost: gossip messages processed in total. *)
  Printf.printf "Bus messages processed: %d\n" (Cluster.messages_processed cluster)
