(* A replicated key-value store on XPaxos with quorum selection.

   This is the paper's motivating scenario (Section I): a BFT state machine
   that runs on an active quorum only, masks nothing it does not have to,
   and — thanks to the expectation-based failure detector plus Quorum
   Selection — routes around processes that omit or delay messages instead
   of enumerating quorums.

   Run with: dune exec examples/smr_service.exe *)

open Qs_xpaxos
module Stime = Qs_sim.Stime

let ms = Stime.of_ms

(* The state machine: ops are "SET key value"; each replica applies its
   executed prefix. Determinism across replicas is exactly the consistency
   the tests assert. *)
let apply store op =
  match String.split_on_char ' ' op with
  | [ "SET"; key; value ] -> Hashtbl.replace store key value
  | _ -> ()

let () =
  let config =
    {
      Replica.n = 5;
      f = 2;
      mode = Replica.Quorum_selection;
      initial_timeout = ms 25;
      timeout_strategy = Qs_fd.Timeout.Exponential { factor = 2.0; max = ms 2000 };
    }
  in
  let cluster = Xcluster.create ~seed:7L config in

  (* Attach a store to each replica. *)
  let stores = Array.init 5 (fun _ -> Hashtbl.create 16) in
  (* Replicas expose executions through the cluster; we rebuild stores from
     the executed prefixes at the end (on_execute wiring is owned by the
     cluster here). *)
  let requests = ref [] in
  let submit op =
    requests := Xcluster.submit cluster ~resubmit_every:(ms 120) op :: !requests
  in

  print_endline "Phase 1: normal operation (active quorum {p1,p2,p3})";
  submit "SET user alice";
  submit "SET balance 100";
  Xcluster.run ~until:(ms 500) cluster;

  print_endline "Phase 2: p1 (the leader) starts omitting all messages";
  Xcluster.set_fault cluster 0 Replica.Mute;
  submit "SET balance 250";
  submit "SET status gold";
  Xcluster.run ~until:(ms 8000) cluster;

  print_endline "Phase 3: the quorum routed around p1; service continued\n";

  (* Rebuild stores from executed prefixes. *)
  Array.iteri
    (fun i store ->
      List.iter (fun r -> apply store r.Xmsg.op) (Replica.executed (Xcluster.replica cluster i)))
    stores;

  List.iter
    (fun p ->
      let r = Xcluster.replica cluster p in
      Printf.printf "replica p%d: view=%d group=%s executed=%d ops\n" (p + 1) (Replica.view r)
        (Qs_core.Pid.set_to_string (Replica.group r))
        (List.length (Replica.executed r)))
    [ 1; 2; 3; 4 ];

  print_newline ();
  let committed = List.filter (Xcluster.is_globally_committed cluster) !requests in
  Printf.printf "committed %d/%d client requests\n" (List.length committed)
    (List.length !requests);

  (* All correct replicas agree on the store contents. *)
  let dump store =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) store [])
  in
  let reference = dump stores.(1) in
  let consistent =
    List.for_all (fun p -> dump stores.(p) = reference || Hashtbl.length stores.(p) = 0) [ 2; 3; 4 ]
  in
  Printf.printf "stores consistent across correct replicas: %b\n" consistent;
  List.iter (fun (k, v) -> Printf.printf "  %s = %s\n" k v) reference;

  (* What quorum selection learned about p1: *)
  match Replica.quorum_selector (Xcluster.replica cluster 1) with
  | Some qs ->
    Printf.printf "\nquorum selection at p2: quorum=%s (p1 excluded: %b)\n"
      (Qs_core.Pid.set_to_string (Qs_core.Quorum_select.last_quorum qs))
      (not (List.mem 0 (Qs_core.Quorum_select.last_quorum qs)))
  | None -> ()
