lib/adversary/attack.ml: List Printf Qs_sim Qs_xpaxos String
