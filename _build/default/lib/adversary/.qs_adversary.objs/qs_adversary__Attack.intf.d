lib/adversary/attack.mli: Qs_sim Qs_xpaxos
