lib/adversary/theorem4.ml: Array Fun Hashtbl List Printf Qs_core Qs_graph Qs_stdx
