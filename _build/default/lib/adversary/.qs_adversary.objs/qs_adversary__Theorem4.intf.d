lib/adversary/theorem4.mli: Qs_stdx
