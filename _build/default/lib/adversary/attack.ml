module Xcluster = Qs_xpaxos.Xcluster
module Replica = Qs_xpaxos.Replica
module Sim = Qs_sim.Sim

type t =
  | Mute_replicas of int list
  | Omit_links of (int * int) list
  | Delay_links of ((int * int) * Qs_sim.Stime.t) list
  | Equivocate of { leader : int; victim : int }
  | Ramp_delay of {
      src : int;
      dst : int;
      step : Qs_sim.Stime.t;
      every : Qs_sim.Stime.t;
    }

let apply cluster = function
  | Mute_replicas rs -> List.iter (fun r -> Xcluster.set_fault cluster r Replica.Mute) rs
  | Omit_links links ->
    List.iter (fun (src, dst) -> Xcluster.omit_link cluster ~src ~dst) links
  | Delay_links links ->
    List.iter (fun ((src, dst), by) -> Xcluster.delay_link cluster ~src ~dst ~by) links
  | Equivocate { leader; victim } ->
    Xcluster.set_fault cluster leader (Replica.Equivocate victim)
  | Ramp_delay { src; dst; step; every } ->
    let sim = Xcluster.sim cluster in
    let current = ref 0 in
    let rec ramp () =
      current := !current + step;
      Xcluster.delay_link cluster ~src ~dst ~by:!current;
      Sim.schedule sim ~delay:every ramp
    in
    Sim.schedule sim ~delay:every ramp

let describe = function
  | Mute_replicas rs ->
    Printf.sprintf "mute replicas %s" (String.concat "," (List.map string_of_int rs))
  | Omit_links links -> Printf.sprintf "omit %d links" (List.length links)
  | Delay_links links -> Printf.sprintf "delay %d links" (List.length links)
  | Equivocate { leader; victim } -> Printf.sprintf "leader %d equivocates to %d" leader victim
  | Ramp_delay { src; dst; _ } -> Printf.sprintf "increasing delay on %d->%d" src dst
