(** Named fault scenarios for XPaxos experiments.

    These map the paper's failure classification (Section II) onto concrete
    cluster manipulations:
    - commission: [Equivocate];
    - omission on individual links: [Omit_links];
    - repeated omission / mute processes: [Mute_replicas];
    - timing failures: [Delay_links];
    - increasing timing failures: [Ramp_delay] (the delay grows without
      bound, so no fixed timeout ever suffices — only adaptive ones keep
      accuracy). *)

type t =
  | Mute_replicas of int list
  | Omit_links of (int * int) list  (** (src, dst) pairs *)
  | Delay_links of ((int * int) * Qs_sim.Stime.t) list
  | Equivocate of { leader : int; victim : int }
  | Ramp_delay of {
      src : int;
      dst : int;
      step : Qs_sim.Stime.t;
      every : Qs_sim.Stime.t;
    }  (** delay grows by [step] every [every] ticks *)

val apply : Qs_xpaxos.Xcluster.t -> t -> unit

val describe : t -> string
