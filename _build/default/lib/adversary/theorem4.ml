module Graph = Qs_graph.Graph
module Indep = Qs_graph.Indep
module Cluster = Qs_core.Cluster
module QS = Qs_core.Quorum_select

type setup = { n : int; f : int; faulty : int list; victims : int * int }

let default_setup ~n ~f =
  if n < f + 2 then invalid_arg "Theorem4.default_setup: need n >= f + 2";
  if n - f <= f then invalid_arg "Theorem4.default_setup: need n - f > f";
  { n; f; faulty = List.init f (fun i -> i); victims = (f, f + 1) }

let target ~f = (f + 2) * (f + 1) / 2

type game = { injections : (int * int) list; quorums : int list list }

let norm (a, b) = if a < b then (a, b) else (b, a)

let quorum_after setup used =
  let g = Graph.create setup.n in
  List.iter (fun (a, b) -> Graph.add_edge g a b) used;
  Indep.lex_first_independent_set g (setup.n - setup.f)

let fplus2 setup =
  let v1, v2 = setup.victims in
  List.sort_uniq compare (v1 :: v2 :: setup.faulty)

let eligible setup ~used ~quorum =
  let members = List.filter (fun p -> List.mem p quorum) (fplus2 setup) in
  let is_faulty p = List.mem p setup.faulty in
  let pairs = ref [] in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a < b && (is_faulty a || is_faulty b) && not (List.mem (a, b) used) then begin
            (* Prefer a correct suspector (earned suspicion); otherwise the
               faulty process issues a false one. *)
            let suspector, suspect = if is_faulty b && not (is_faulty a) then (a, b) else (b, a) in
            pairs := (suspector, suspect) :: !pairs
          end)
        members)
    members;
  List.sort compare !pairs

let greedy setup =
  let rec loop used acc_inj acc_quorums =
    match quorum_after setup (List.map norm used) with
    | None -> { injections = List.rev acc_inj; quorums = List.rev acc_quorums }
    | Some quorum -> (
      match eligible setup ~used:(List.map norm used) ~quorum with
      | [] -> { injections = List.rev acc_inj; quorums = List.rev acc_quorums }
      | (x, y) :: _ -> (
        let used' = (x, y) :: used in
        match quorum_after setup (List.map norm used') with
        | None -> { injections = List.rev acc_inj; quorums = List.rev acc_quorums }
        | Some q' -> loop used' ((x, y) :: acc_inj) (q' :: acc_quorums)))
  in
  loop [] [] []

let random rng setup =
  let rec loop used acc_inj acc_quorums =
    match quorum_after setup (List.map norm used) with
    | None -> { injections = List.rev acc_inj; quorums = List.rev acc_quorums }
    | Some quorum -> (
      match eligible setup ~used:(List.map norm used) ~quorum with
      | [] -> { injections = List.rev acc_inj; quorums = List.rev acc_quorums }
      | moves -> (
        let x, y = Qs_stdx.Prng.pick_list rng moves in
        let used' = (x, y) :: used in
        match quorum_after setup (List.map norm used') with
        | None -> { injections = List.rev acc_inj; quorums = List.rev acc_quorums }
        | Some q' -> loop used' ((x, y) :: acc_inj) (q' :: acc_quorums)))
  in
  loop [] [] []

let exhaustive ?(limit_pairs = 16) setup =
  let candidates = fplus2 setup in
  let is_faulty p = List.mem p setup.faulty in
  (* All pairs within F+2 with a faulty endpoint, in a fixed order. *)
  let all_pairs =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b -> if a < b && (is_faulty a || is_faulty b) then Some (a, b) else None)
          candidates)
      candidates
  in
  let m = List.length all_pairs in
  if m > limit_pairs then
    invalid_arg "Theorem4.exhaustive: too many pairs; use greedy for large f";
  let pair_index = Hashtbl.create 16 in
  List.iteri (fun i p -> Hashtbl.replace pair_index p i) all_pairs;
  let pair_arr = Array.of_list all_pairs in
  (* best.(mask) = Some (length, first-move) of a longest continuation given
     the used-pair set [mask]. *)
  let memo : (int, int * int option) Hashtbl.t = Hashtbl.create 1024 in
  let rec best mask =
    match Hashtbl.find_opt memo mask with
    | Some r -> r
    | None ->
      let used =
        List.filteri (fun i _ -> mask land (1 lsl i) <> 0) (Array.to_list pair_arr)
      in
      let result =
        match quorum_after setup used with
        | None -> (0, None)
        | Some quorum ->
          let moves = eligible setup ~used ~quorum in
          List.fold_left
            (fun (best_len, best_move) (x, y) ->
              let idx = Hashtbl.find pair_index (norm (x, y)) in
              let len, _ = best (mask lor (1 lsl idx)) in
              if 1 + len > best_len then (1 + len, Some idx) else (best_len, best_move))
            (0, None) moves
      in
      Hashtbl.replace memo mask result;
      result
  in
  (* Reconstruct the longest sequence. *)
  let rec build mask acc_inj acc_quorums =
    match best mask with
    | _, None -> { injections = List.rev acc_inj; quorums = List.rev acc_quorums }
    | _, Some idx -> (
      let a, b = pair_arr.(idx) in
      let used = List.filteri (fun i _ -> (mask lor (1 lsl idx)) land (1 lsl i) <> 0)
          (Array.to_list pair_arr)
      in
      (* orient like [eligible] does *)
      let suspector, suspect = if is_faulty b && not (is_faulty a) then (a, b) else (b, a) in
      match quorum_after setup used with
      | None -> { injections = List.rev acc_inj; quorums = List.rev acc_quorums }
      | Some q' ->
        build (mask lor (1 lsl idx)) ((suspector, suspect) :: acc_inj) (q' :: acc_quorums))
  in
  build 0 [] []

let replay setup game =
  let config = { QS.n = setup.n; f = setup.f } in
  let cluster = Cluster.create config in
  let correct = List.filter (fun p -> not (List.mem p setup.faulty)) (List.init setup.n Fun.id) in
  List.iter2
    (fun (suspector, suspect) expected ->
      Cluster.fd_suspect cluster ~at:suspector [ suspect ];
      (* Transient: the next injection may come from the same suspector. *)
      Cluster.fd_suspect cluster ~at:suspector [];
      Cluster.run_until_quiet cluster;
      match Cluster.agreed_quorum cluster ~correct with
      | Some quorum when quorum = expected -> ()
      | Some quorum ->
        failwith
          (Printf.sprintf "replay diverged: live %s vs predicted %s"
             (Qs_core.Pid.set_to_string quorum)
             (Qs_core.Pid.set_to_string expected))
      | None -> failwith "replay: correct processes disagree")
    game.injections game.quorums;
  Cluster.max_issued cluster ~correct
