(** The lower-bound adversary of Theorem 4.

    The adversary fixes [f] faulty processes [F] and two correct victims; it
    then repeatedly waits until the correct processes agree on a quorum and
    causes one suspicion [(x, y)] with both endpoints inside the current
    quorum, both inside [F⁺² = F ∪ victims], and at least one endpoint
    faulty (a faulty process can always either issue a false suspicion or
    {e earn} one by omitting a message). Every such suspicion forces a new
    quorum (no-suspicion property), and the proof shows a sequence of
    [C(f+2,2) − 1] suspicions — hence [C(f+2,2)] quorums counting the
    initial one — is always attainable.

    Two engines are provided:
    - a {e pure game} against Algorithm 1's deterministic quorum function
      (lexicographically-first independent set), searched exhaustively for
      small [f] or greedily for larger [f];
    - a {e replay} of a suspicion sequence against the real gossip cluster,
      verifying that the live protocol issues exactly the predicted number
      of quorums. *)

type setup = {
  n : int;
  f : int;
  faulty : int list;  (** |faulty| = f *)
  victims : int * int;  (** two correct processes *)
}

val default_setup : n:int -> f:int -> setup
(** Faulty = [{0..f-1}], victims = [(f, f+1)] — low ids, which is what hurts
    a lexicographic quorum rule. Requires [n ≥ f + 2]. *)

val target : f:int -> int
(** [C(f+2,2)]: the number of quorums (including the initial default) the
    adversary aims to force. *)

type game = {
  injections : (int * int) list;
      (** suspicions in order: [(suspector, suspect)] *)
  quorums : int list list;
      (** the quorum after each injection (the initial default is not
          listed) *)
}

val quorum_after : setup -> (int * int) list -> int list option
(** The pure model: Algorithm 1's quorum for a given set of recorded
    suspicion pairs (all in the same epoch). [None] if no independent set of
    size q exists (cannot happen for sequences this adversary plays). *)

val eligible : setup -> used:(int * int) list -> quorum:int list -> (int * int) list
(** Pairs the adversary may inject next: unordered pairs inside
    [F⁺² ∩ quorum] with a faulty endpoint, not used before, returned as
    (suspector, suspect) with the suspector chosen correct when possible
    (making the suspicion an {e earned} omission rather than a false one —
    both are allowed; the choice is cosmetic). *)

val greedy : setup -> game
(** Play first-eligible-in-lexicographic-order until stuck. *)

val random : Qs_stdx.Prng.t -> setup -> game
(** Pick a uniformly random eligible pair each step until stuck — the
    randomized strategy behind the paper's "our simulations suggest"
    per-epoch maximum. *)

val exhaustive : ?limit_pairs:int -> setup -> game
(** Depth-first search over injection orders, memoized on the used-pair set,
    returning a longest game. Feasible for [f ≤ 4] ([2^15] states);
    [limit_pairs] guards against misuse (default 16 pairs). *)

val replay : setup -> game -> int
(** Run the injection sequence against a live {!Qs_core.Cluster} (gossip
    bus) and return the maximum number of quorums issued by any correct
    process. Raises [Failure] if the live cluster ever disagrees with the
    pure game's predicted quorum. *)
