lib/bchain/chain_cluster.ml: Array Chain_msg Chain_node Hashtbl List Qs_core Qs_crypto Qs_sim
