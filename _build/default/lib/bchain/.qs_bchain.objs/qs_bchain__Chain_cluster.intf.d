lib/bchain/chain_cluster.mli: Chain_msg Chain_node Qs_core Qs_sim
