lib/bchain/chain_msg.ml: Printf Qs_core Qs_crypto
