lib/bchain/chain_msg.mli: Qs_core Qs_crypto
