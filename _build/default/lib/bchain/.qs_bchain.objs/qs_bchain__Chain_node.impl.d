lib/bchain/chain_node.ml: Chain_msg Hashtbl List Option Qs_core Qs_crypto Qs_fd Qs_sim
