lib/bchain/chain_node.mli: Chain_msg Qs_core Qs_crypto Qs_fd Qs_sim
