module Sim = Qs_sim.Sim
module Network = Qs_sim.Network
module Stime = Qs_sim.Stime
module Pid = Qs_core.Pid

type t = {
  sim : Sim.t;
  net : Chain_msg.t Network.t;
  nodes : Chain_node.t array;
  config : Chain_node.config;
  mutable next_rid : int;
  executions : (int * int, Pid.t list ref) Hashtbl.t;
  submit_times : (int * int, Stime.t) Hashtbl.t;
  commit_times : (int * int, Stime.t) Hashtbl.t;
}

let create ?(seed = 1L) ?(delay = Network.Fixed (Stime.of_ms 1)) config =
  let sim = Sim.create ~seed () in
  let net = Network.create ~sim ~n:config.Chain_node.n ~delay ~fifo:true () in
  let auth = Qs_crypto.Auth.create config.Chain_node.n in
  let executions = Hashtbl.create 64 in
  let commit_times = Hashtbl.create 64 in
  let threshold = config.Chain_node.n - config.Chain_node.f in
  let nodes =
    Array.init config.Chain_node.n (fun me ->
        Chain_node.create config ~me ~auth ~sim
          ~net_send:(fun ~dst msg -> Network.send net ~src:me ~dst msg)
          ~on_execute:(fun request ->
            let key = (request.Chain_msg.client, request.Chain_msg.rid) in
            let cell =
              match Hashtbl.find_opt executions key with
              | Some c -> c
              | None ->
                let c = ref [] in
                Hashtbl.replace executions key c;
                c
            in
            if not (List.mem me !cell) then begin
              cell := me :: !cell;
              if List.length !cell = threshold && not (Hashtbl.mem commit_times key) then
                Hashtbl.replace commit_times key (Sim.now sim)
            end)
          ())
  in
  Array.iteri
    (fun i node -> Network.set_handler net i (fun ~src msg -> Chain_node.receive node ~src msg))
    nodes;
  {
    sim;
    net;
    nodes;
    config;
    next_rid = 0;
    executions;
    submit_times = Hashtbl.create 64;
    commit_times;
  }

let sim t = t.sim

let net t = t.net

let node t i = t.nodes.(i)

let set_fault t i fault = Chain_node.set_fault t.nodes.(i) fault

let executed_by t (request : Chain_msg.request) =
  match Hashtbl.find_opt t.executions (request.Chain_msg.client, request.Chain_msg.rid) with
  | Some cell -> List.sort compare !cell
  | None -> []

let is_committed t request =
  let executed = executed_by t request in
  Array.exists
    (fun node ->
      let chain = Chain_node.chain node in
      chain <> [] && List.for_all (fun p -> List.mem p executed) chain)
    t.nodes

let submit t ?(client = 0) ?resubmit_every op =
  let rid = t.next_rid in
  t.next_rid <- t.next_rid + 1;
  let request = { Chain_msg.client; rid; op } in
  Hashtbl.replace t.submit_times (client, rid) (Sim.now t.sim);
  let deliver () = Array.iter (fun node -> Chain_node.submit node request) t.nodes in
  Sim.schedule t.sim ~delay:0 deliver;
  (match resubmit_every with
   | None -> ()
   | Some period ->
     let rec again () =
       if not (is_committed t request) then begin
         deliver ();
         Sim.schedule t.sim ~delay:period again
       end
     in
     Sim.schedule t.sim ~delay:period again);
  request

let run ?until ?max_events t = Sim.run ?until ?max_events t.sim

let message_count t = Network.sent_count t.net

let current_chain t = Chain_node.chain t.nodes.(0)

let commit_latency t (request : Chain_msg.request) =
  let key = (request.Chain_msg.client, request.Chain_msg.rid) in
  match (Hashtbl.find_opt t.submit_times key, Hashtbl.find_opt t.commit_times key) with
  | Some s, Some c -> Some (c - s)
  | _ -> None
