(** A chain-replication cluster in the simulator (mirrors
    {!Qs_xpaxos.Xcluster}). *)

type t

val create :
  ?seed:int64 -> ?delay:Qs_sim.Network.delay_model -> Chain_node.config -> t

val sim : t -> Qs_sim.Sim.t

val net : t -> Chain_msg.t Qs_sim.Network.t

val node : t -> Qs_core.Pid.t -> Chain_node.t

val set_fault : t -> Qs_core.Pid.t -> Chain_node.fault -> unit

val submit :
  t -> ?client:int -> ?resubmit_every:Qs_sim.Stime.t -> string -> Chain_msg.request

val run : ?until:Qs_sim.Stime.t -> ?max_events:int -> t -> unit

val executed_by : t -> Chain_msg.request -> Qs_core.Pid.t list

val is_committed : t -> Chain_msg.request -> bool
(** Executed by every member of some node's current chain. *)

val message_count : t -> int

val current_chain : t -> Qs_core.Pid.t list
(** The chain at the first correct-looking node (for reporting). *)

val commit_latency : t -> Chain_msg.request -> Qs_sim.Stime.t option
(** Time from submission until [n − f] nodes executed the request. *)
