module Auth = Qs_crypto.Auth

type request = { client : int; rid : int; op : string }

type forward = {
  slot : int;
  cepoch : int;
  request : request;
  hsig : Auth.signature;
}

type body =
  | Forward of forward
  | Ack of { aslot : int; aepoch : int }
  | Qsel of Qs_core.Msg.t

type t = { sender : Qs_core.Pid.t; body : body; signature : Auth.signature }

let encode_request r = Printf.sprintf "REQ|%d|%d|%s" r.client r.rid r.op

let head_binding ~slot ~cepoch request =
  Printf.sprintf "CHAIN|%d|%d|%s" slot cepoch (encode_request request)

let sign_head auth ~head ~slot ~cepoch request =
  Auth.sign auth ~signer:head (head_binding ~slot ~cepoch request)

let verify_head auth ~head fwd =
  head >= 0
  && head < Auth.universe auth
  && Auth.verify auth ~signer:head
       (head_binding ~slot:fwd.slot ~cepoch:fwd.cepoch fwd.request)
       fwd.hsig

let hex = Qs_crypto.Sha256.hex

let encode_body = function
  | Forward f ->
    Printf.sprintf "F:%d|%d|%s|%s" f.slot f.cepoch (encode_request f.request) (hex f.hsig)
  | Ack { aslot; aepoch } -> Printf.sprintf "A:%d|%d" aslot aepoch
  | Qsel m -> "Q:" ^ Qs_core.Msg.encode m.Qs_core.Msg.update ^ "#" ^ hex m.Qs_core.Msg.signature

let seal auth ~sender body =
  { sender; body; signature = Auth.sign auth ~signer:sender (encode_body body) }

let verify auth t =
  t.sender >= 0
  && t.sender < Auth.universe auth
  && Auth.verify auth ~signer:t.sender (encode_body t.body) t.signature

let tag = function
  | Forward _ -> "CHAIN"
  | Ack _ -> "ACK"
  | Qsel _ -> "QSEL-UPDATE"
