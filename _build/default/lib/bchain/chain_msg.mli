(** Wire messages for the BChain-style chain protocol.

    The paper cites BChain [7] as an existing application of Quorum
    Selection: the active quorum communicates {e along a chain}, cutting the
    all-to-all COMMIT traffic down to one forward pass and one ack pass
    (Section I; chain communication is also the future-work case of
    Section X). *)

type request = { client : int; rid : int; op : string }

type forward = {
  slot : int;
  cepoch : int;  (** chain configuration epoch: changes with each quorum *)
  request : request;
  hsig : Qs_crypto.Auth.signature;  (** the head's signature over the slot binding *)
}

type body =
  | Forward of forward  (** travels head → tail *)
  | Ack of { aslot : int; aepoch : int }  (** travels tail → head *)
  | Qsel of Qs_core.Msg.t  (** quorum-selection gossip *)

type t = {
  sender : Qs_core.Pid.t;
  body : body;
  signature : Qs_crypto.Auth.signature;
}

val head_binding : slot:int -> cepoch:int -> request -> string
(** Canonical bytes the head signs: binds a request to a slot within a chain
    configuration. *)

val sign_head : Qs_crypto.Auth.t -> head:int -> slot:int -> cepoch:int -> request -> Qs_crypto.Auth.signature

val verify_head :
  Qs_crypto.Auth.t -> head:int -> forward -> bool

val seal : Qs_crypto.Auth.t -> sender:int -> body -> t

val verify : Qs_crypto.Auth.t -> t -> bool

val tag : body -> string
