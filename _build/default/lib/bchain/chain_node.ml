module Sim = Qs_sim.Sim
module Detector = Qs_fd.Detector
module Timeout = Qs_fd.Timeout
module QS = Qs_core.Quorum_select
module Pid = Qs_core.Pid
module Auth = Qs_crypto.Auth

type config = {
  n : int;
  f : int;
  initial_timeout : Qs_sim.Stime.t;
  timeout_strategy : Timeout.strategy;
}

type fault = Honest | Mute | Omit_to of Pid.t list

type slot_state = {
  mutable forward : Chain_msg.forward option;
  mutable committed : bool;
}

type t = {
  config : config;
  me : Pid.t;
  auth : Auth.t;
  sim : Sim.t;
  net_send : dst:Pid.t -> Chain_msg.t -> unit;
  on_execute : Chain_msg.request -> unit;
  mutable fd : Chain_msg.t Detector.t option;
  mutable qsel : QS.t option;
  mutable chain : Pid.t list;
  mutable cepoch : int;
  slots : (int * int, slot_state) Hashtbl.t; (* (cepoch, slot) *)
  mutable next_slot : int;
  proposed : (int * int, unit) Hashtbl.t; (* request ids the head proposed *)
  executed_ids : (int * int, unit) Hashtbl.t;
  mutable executed : Chain_msg.request list; (* reversed *)
  awaiting_forward : (int * int, unit) Hashtbl.t;
  mutable fault : fault;
}

let me t = t.me

let fd t = Option.get t.fd

let qsel t = Option.get t.qsel

let set_fault t fault = t.fault <- fault

let chain t = t.chain

let head t = match t.chain with h :: _ -> h | [] -> assert false

let is_head t = head t = t.me

let chain_epoch t = t.cepoch

let executed t = List.rev t.executed

let detector = fd

let quorum_selector = qsel

let fault_allows t dst =
  match t.fault with
  | Honest -> true
  | Mute -> false
  | Omit_to victims -> not (List.mem dst victims)

let send t ~dst body =
  if dst = t.me || fault_allows t dst then
    t.net_send ~dst (Chain_msg.seal t.auth ~sender:t.me body)

let send_all_including_self t body =
  for dst = 0 to t.config.n - 1 do
    send t ~dst body
  done

(* Chain neighbors. *)
let successor t =
  let rec loop = function
    | a :: b :: _ when a = t.me -> Some b
    | _ :: rest -> loop rest
    | [] -> None
  in
  loop t.chain

let predecessor t =
  let rec loop prev = function
    | a :: _ when a = t.me -> prev
    | a :: rest -> loop (Some a) rest
    | [] -> None
  in
  loop None t.chain

let in_chain t = List.mem t.me t.chain

let slot_state t key =
  match Hashtbl.find_opt t.slots key with
  | Some s -> s
  | None ->
    let s = { forward = None; committed = false } in
    Hashtbl.replace t.slots key s;
    s

let execute t (request : Chain_msg.request) =
  let key = (request.Chain_msg.client, request.Chain_msg.rid) in
  if not (Hashtbl.mem t.executed_ids key) then begin
    Hashtbl.replace t.executed_ids key ();
    t.executed <- request :: t.executed;
    t.on_execute request
  end

(* Position in the current chain, 0 = head. *)
let position t =
  let rec loop i = function
    | p :: _ when p = t.me -> Some i
    | _ :: rest -> loop (i + 1) rest
    | [] -> None
  in
  loop 0 t.chain

(* Ack deadlines scale with the distance to the tail: the predecessor of a
   failed link is the first to time out, so blame lands on the actual
   culprit and the re-chaining cancels the (longer) upstream expectations
   before they would falsely fire — BChain's position-scaled timeouts. *)
let expect_ack t ~from ~slot =
  let epoch = t.cepoch in
  let len = List.length t.chain in
  let pos = match position t with Some i -> i | None -> 0 in
  let timeout = t.config.initial_timeout * (len - pos) in
  Detector.expect (fd t) ~from ~tag:"ack" ~timeout (fun m ->
      match m.Chain_msg.body with
      | Chain_msg.Ack { aslot; aepoch } -> aslot = slot && aepoch = epoch
      | _ -> false)

(* Forward deadlines grow with chain position: a request reaches position i
   after i hops, and on a break the node just past it times out first —
   blame lands on the break, and the re-chaining cancels the (longer)
   downstream expectations. *)
let expect_forward_request t ~from ~position (request : Chain_msg.request) =
  let timeout = t.config.initial_timeout * max 1 position in
  Detector.expect (fd t) ~from ~tag:"forward" ~timeout (fun m ->
      match m.Chain_msg.body with
      | Chain_msg.Forward f -> f.Chain_msg.request = request
      | _ -> false)

let commit t key =
  let s = slot_state t key in
  if not s.committed then begin
    s.committed <- true;
    match s.forward with
    | Some f -> execute t f.Chain_msg.request
    | None -> ()
  end

(* Pass a forward along the chain (or start the ack wave at the tail). *)
let relay t (f : Chain_msg.forward) =
  match successor t with
  | Some next ->
    send t ~dst:next (Chain_msg.Forward f);
    expect_ack t ~from:next ~slot:f.Chain_msg.slot
  | None ->
    (* Tail: commit and start the ack wave. *)
    commit t (t.cepoch, f.Chain_msg.slot);
    (match predecessor t with
     | Some prev ->
       send t ~dst:prev (Chain_msg.Ack { aslot = f.Chain_msg.slot; aepoch = t.cepoch })
     | None -> ())

let propose t (request : Chain_msg.request) =
  let key = (request.Chain_msg.client, request.Chain_msg.rid) in
  Hashtbl.replace t.proposed key ();
  let slot = t.next_slot in
  t.next_slot <- slot + 1;
  let f =
    {
      Chain_msg.slot;
      cepoch = t.cepoch;
      request;
      hsig = Chain_msg.sign_head t.auth ~head:t.me ~slot ~cepoch:t.cepoch request;
    }
  in
  let s = slot_state t (t.cepoch, slot) in
  s.forward <- Some f;
  if List.length t.chain = 1 then commit t (t.cepoch, slot) else relay t f

(* No early return on local execution: the head may have executed in an
   earlier chain configuration while current members have not — it must
   still re-propose. Exactly-once execution is enforced at [execute]. *)
let submit t request =
  let key = (request.Chain_msg.client, request.Chain_msg.rid) in
  if is_head t then begin
    if not (Hashtbl.mem t.proposed key) then propose t request
  end
  else if in_chain t then begin
    (* Every member guards its own upstream link: if the forward never
       arrives, the predecessor is suspected. Without this, a break right
       after the single watching node would go undetected (e.g. a mute head
       whose successor is also mute). *)
    match (predecessor t, position t) with
    | Some pred, Some pos when not (Hashtbl.mem t.awaiting_forward key) ->
      Hashtbl.replace t.awaiting_forward key ();
      expect_forward_request t ~from:pred ~position:pos request
    | _ -> ()
  end

let handle_forward t ~src (f : Chain_msg.forward) =
  if
    in_chain t
    && predecessor t = Some src
    && f.Chain_msg.cepoch = t.cepoch
    && Chain_msg.verify_head t.auth ~head:(head t) f
  then begin
    let s = slot_state t (t.cepoch, f.Chain_msg.slot) in
    match s.forward with
    | Some stored when stored.Chain_msg.request <> f.Chain_msg.request ->
      (* The head signed two bindings for one slot in one epoch. *)
      Detector.detected (fd t) (head t)
    | Some _ -> ()
    | None ->
      s.forward <- Some f;
      relay t f
  end

let handle_ack t ~src (aslot, aepoch) =
  if in_chain t && successor t = Some src && aepoch = t.cepoch then begin
    commit t (t.cepoch, aslot);
    match predecessor t with
    | Some prev -> send t ~dst:prev (Chain_msg.Ack { aslot; aepoch })
    | None -> () (* head: wave complete *)
  end

let on_quorum t quorum =
  if quorum <> t.chain then begin
    t.cepoch <- t.cepoch + 1;
    t.chain <- quorum;
    Detector.cancel_all (fd t);
    Hashtbl.reset t.awaiting_forward;
    (* Uncommitted in-flight slots die with the old chain; clients
       resubmit, and execution dedupes on request id. *)
    Hashtbl.reset t.proposed
  end

let process t ~src msg =
  match msg.Chain_msg.body with
  | Chain_msg.Forward f -> handle_forward t ~src f
  | Chain_msg.Ack { aslot; aepoch } -> handle_ack t ~src (aslot, aepoch)
  | Chain_msg.Qsel update -> QS.handle_update (qsel t) update

let receive t ~src msg =
  if Chain_msg.verify t.auth msg && msg.Chain_msg.sender = src then
    Detector.receive (fd t) ~src msg

let create config ~me ~auth ~sim ~net_send ?(on_execute = fun _ -> ()) () =
  if config.n <= 0 || config.f < 0 || config.n - config.f <= config.f then
    invalid_arg "Chain_node.create: need n - f > f";
  if me < 0 || me >= config.n then invalid_arg "Chain_node.create: me out of range";
  let t =
    {
      config;
      me;
      auth;
      sim;
      net_send;
      on_execute;
      fd = None;
      qsel = None;
      chain = List.init (config.n - config.f) (fun i -> i);
      cepoch = 0;
      slots = Hashtbl.create 64;
      next_slot = 0;
      proposed = Hashtbl.create 64;
      executed_ids = Hashtbl.create 64;
      executed = [];
      awaiting_forward = Hashtbl.create 64;
      fault = Honest;
    }
  in
  let timeouts =
    Timeout.create ~n:config.n ~initial:config.initial_timeout config.timeout_strategy
  in
  t.fd <-
    Some
      (Detector.create ~sim ~me ~n:config.n ~timeouts
         ~deliver:(fun ~src m -> process t ~src m)
         ~on_suspected:(fun s -> QS.handle_suspected (qsel t) s)
         ());
  t.qsel <-
    Some
      (QS.create
         { QS.n = config.n; f = config.f }
         ~me ~auth
         ~send:(fun update -> send_all_including_self t (Chain_msg.Qsel update))
         ~on_quorum:(fun quorum -> on_quorum t quorum)
         ());
  t
