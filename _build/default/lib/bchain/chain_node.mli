(** A BChain-style chain replica driven by Quorum Selection.

    The active quorum, ordered by process id, forms a chain: the head signs
    a ⟨slot, request⟩ binding and forwards it; each member passes it to its
    successor; the tail starts an ack wave back to the head. Per request
    this costs [2(q−1)] messages instead of the [q²−1] of the all-to-all
    XPaxos pattern — the reduction the paper attributes to BChain
    (Section I).

    Failure handling shows quorum selection at its best: after forwarding,
    each member {e expects} the ack from its successor, so an omission
    anywhere on the chain is blamed on the exact culprit (its predecessor
    suspects it), the suspicion gossips through Algorithm 1, and the next
    quorum — hence the next chain — excludes it.

    Scope (documented substitution, DESIGN.md §2): this is a topology and
    selection demonstrator, not a full BChain reimplementation. A request
    executes at a node when its slot's ack arrives (at-least-once delivery
    to the chain, exactly-once execution per node via request-id dedupe);
    BChain's re-configuration/commit-certificate machinery for cross-epoch
    total order is out of scope. *)

type config = {
  n : int;
  f : int;
  initial_timeout : Qs_sim.Stime.t;
  timeout_strategy : Qs_fd.Timeout.strategy;
}

type fault = Honest | Mute | Omit_to of Qs_core.Pid.t list

type t

val create :
  config ->
  me:Qs_core.Pid.t ->
  auth:Qs_crypto.Auth.t ->
  sim:Qs_sim.Sim.t ->
  net_send:(dst:Qs_core.Pid.t -> Chain_msg.t -> unit) ->
  ?on_execute:(Chain_msg.request -> unit) ->
  unit ->
  t

val me : t -> Qs_core.Pid.t

val set_fault : t -> fault -> unit

val receive : t -> src:Qs_core.Pid.t -> Chain_msg.t -> unit

val submit : t -> Chain_msg.request -> unit
(** Client entry point: heads propose, the head's successor starts expecting
    the forward, everyone else ignores. Duplicates are ignored once the
    request executed. *)

val chain : t -> Qs_core.Pid.t list
(** The current chain (the quorum-selection output), head first. *)

val head : t -> Qs_core.Pid.t

val is_head : t -> bool

val chain_epoch : t -> int
(** Bumped on every re-chaining. *)

val executed : t -> Chain_msg.request list
(** Execution log, oldest first. *)

val detector : t -> Chain_msg.t Qs_fd.Detector.t

val quorum_selector : t -> Qs_core.Quorum_select.t
