lib/core/cluster.ml: Array List Msg Pid Qs_crypto Queue Quorum_select
