lib/core/cluster.mli: Pid Qs_crypto Quorum_select
