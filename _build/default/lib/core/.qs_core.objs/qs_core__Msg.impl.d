lib/core/msg.ml: Array Buffer Format Pid Qs_crypto
