lib/core/msg.mli: Format Pid Qs_crypto
