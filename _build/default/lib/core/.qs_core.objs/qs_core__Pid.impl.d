lib/core/pid.ml: Format List
