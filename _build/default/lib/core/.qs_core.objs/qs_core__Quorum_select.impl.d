lib/core/quorum_select.ml: Array List Logs Msg Pid Qs_crypto Qs_graph Qs_stdx Suspicion_matrix
