lib/core/quorum_select.mli: Msg Pid Qs_crypto Qs_graph Suspicion_matrix
