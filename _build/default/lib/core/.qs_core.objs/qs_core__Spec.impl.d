lib/core/spec.ml: List Quorum_select
