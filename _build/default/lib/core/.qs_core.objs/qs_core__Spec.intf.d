lib/core/spec.mli: Pid Quorum_select
