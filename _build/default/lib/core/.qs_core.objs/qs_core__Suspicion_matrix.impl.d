lib/core/suspicion_matrix.ml: Array Format Pid Qs_graph
