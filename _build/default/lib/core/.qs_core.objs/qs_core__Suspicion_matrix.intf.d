lib/core/suspicion_matrix.mli: Format Qs_graph
