exception Bus_saturated

type t = {
  config : Quorum_select.config;
  auth : Qs_crypto.Auth.t;
  nodes : Quorum_select.t array;
  queue : (Pid.t * Msg.t) Queue.t; (* (destination, message) *)
  crashed : bool array;
  mutable processed : int;
  quorum_log : (Pid.t * Pid.t list) list ref; (* reversed *)
}

let create config =
  Quorum_select.validate_config config;
  let auth = Qs_crypto.Auth.create config.Quorum_select.n in
  let queue = Queue.create () in
  let quorum_log = ref [] in
  let nodes =
    Array.init config.Quorum_select.n (fun me ->
        Quorum_select.create config ~me ~auth
          ~send:(fun msg ->
            for dst = 0 to config.Quorum_select.n - 1 do
              Queue.add (dst, msg) queue
            done)
          ~on_quorum:(fun quorum -> quorum_log := (me, quorum) :: !quorum_log)
          ())
  in
  {
    config;
    auth;
    nodes;
    queue;
    crashed = Array.make config.Quorum_select.n false;
    processed = 0;
    quorum_log;
  }

let config t = t.config

let node t i = t.nodes.(i)

let auth t = t.auth

let crash t i = t.crashed.(i) <- true

let is_crashed t i = t.crashed.(i)

let fd_suspect t ~at suspects =
  if not t.crashed.(at) then Quorum_select.handle_suspected t.nodes.(at) suspects

let deliver_row t ~owner ~row ~to_ =
  Queue.add (to_, Msg.seal t.auth { Msg.owner; row }) t.queue

let run_until_quiet ?(max_messages = 1_000_000) t =
  let budget = ref max_messages in
  while not (Queue.is_empty t.queue) do
    if !budget = 0 then raise Bus_saturated;
    decr budget;
    let dst, msg = Queue.pop t.queue in
    t.processed <- t.processed + 1;
    if not t.crashed.(dst) then Quorum_select.handle_update t.nodes.(dst) msg
  done

let last_quorums t = Array.map Quorum_select.last_quorum t.nodes

let agreed_quorum t ~correct =
  match correct with
  | [] -> None
  | first :: rest ->
    let quorum = Quorum_select.last_quorum t.nodes.(first) in
    if List.for_all (fun p -> Quorum_select.last_quorum t.nodes.(p) = quorum) rest then
      Some quorum
    else None

let issued_counts t = Array.map Quorum_select.quorums_issued t.nodes

let max_issued t ~correct =
  List.fold_left (fun acc p -> max acc (Quorum_select.quorums_issued t.nodes.(p))) 0 correct

let messages_processed t = t.processed

let quorum_log t = List.rev !(t.quorum_log)
