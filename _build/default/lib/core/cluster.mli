(** A cluster of Quorum Selection nodes wired over a synchronous gossip bus.

    UPDATE messages go into one global FIFO queue; [run_until_quiet] drains
    it. This gives the deterministic, round-free setting the bound
    experiments need (Theorems 3 and 4 count quorum changes {e after} the
    failure detector is accurate, so network asynchrony is irrelevant — only
    the order of suspicion injections matters, and the adversary controls
    that explicitly here). The full asynchronous stack lives in
    [Qs_harness.Runner].

    The adversary interacts through three entry points:
    - [fd_suspect]: make a node's failure detector report a suspicion set
      (a faulty process "earning" a suspicion, or issuing a false one);
    - [deliver_row]: hand a crafted, correctly-signed row of a {e faulty}
      process to one specific node — equivocation;
    - [crash]: stop a node from processing anything further. *)

type t

val create : Quorum_select.config -> t

val config : t -> Quorum_select.config

val node : t -> Pid.t -> Quorum_select.t

val auth : t -> Qs_crypto.Auth.t

val crash : t -> Pid.t -> unit

val is_crashed : t -> Pid.t -> bool

val fd_suspect : t -> at:Pid.t -> Pid.t list -> unit
(** Deliver ⟨SUSPECTED, S⟩ to the node's quorum-selection module. Does not
    drain the bus; call [run_until_quiet]. *)

val deliver_row : t -> owner:Pid.t -> row:int array -> to_:Pid.t -> unit
(** Enqueue a signed UPDATE for [owner]'s row to a single destination. *)

val run_until_quiet : ?max_messages:int -> t -> unit
(** Drain the bus ([max_messages] defaults to one million; exceeding it
    raises [Bus_saturated] — it would indicate non-termination). *)

exception Bus_saturated

val last_quorums : t -> Pid.t list array

val agreed_quorum : t -> correct:Pid.t list -> Pid.t list option
(** The common last quorum of the given processes, if they agree. *)

val issued_counts : t -> int array

val max_issued : t -> correct:Pid.t list -> int
(** Largest number of quorums issued by any of the given processes — the
    quantity bounded by Theorems 3/4. *)

val messages_processed : t -> int

val quorum_log : t -> (Pid.t * Pid.t list) list
(** Every ⟨QUORUM⟩ event in global order: (issuer, quorum). *)
