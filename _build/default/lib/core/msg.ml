type update = { owner : Pid.t; row : int array }

type t = { update : update; signature : Qs_crypto.Auth.signature }

let encode u =
  let buf = Buffer.create 64 in
  Buffer.add_string buf "UPDATE|";
  Buffer.add_string buf (string_of_int u.owner);
  Buffer.add_char buf '|';
  Array.iter
    (fun v ->
      Buffer.add_string buf (string_of_int v);
      Buffer.add_char buf ',')
    u.row;
  Buffer.contents buf

let seal auth u = { update = u; signature = Qs_crypto.Auth.sign auth ~signer:u.owner (encode u) }

let verify auth t =
  t.update.owner >= 0
  && t.update.owner < Qs_crypto.Auth.universe auth
  && Qs_crypto.Auth.verify auth ~signer:t.update.owner (encode t.update) t.signature

let pp ppf t =
  Format.fprintf ppf "UPDATE(%a: %a)" Pid.pp t.update.owner
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ' ')
       Format.pp_print_int)
    (Array.to_list t.update.row)
