(** Wire messages for the quorum selection module.

    An UPDATE carries one row of the [suspected] matrix — the owner's own
    suspicions — signed by the owner (Algorithm 1, line 15). Forwarders
    relay the original signature, so a Byzantine process can neither alter a
    correct process's row in transit nor fabricate rows for others; it can
    only sign arbitrary rows of its own (equivocation the algorithm
    tolerates by design, Section VI-C). *)

type update = {
  owner : Pid.t;  (** whose suspicion row this is *)
  row : int array;  (** [row.(k)] = last epoch in which owner suspected k *)
}

type t = {
  update : update;
  signature : Qs_crypto.Auth.signature;
}

val encode : update -> string
(** Canonical byte encoding used for signing. *)

val seal : Qs_crypto.Auth.t -> update -> t
(** Sign as the row's owner. *)

val verify : Qs_crypto.Auth.t -> t -> bool
(** Check the owner's signature over the canonical encoding. *)

val pp : Format.formatter -> t -> unit
