type t = int

let pp ppf i = Format.fprintf ppf "p%d" (i + 1)

let to_string i = Format.asprintf "%a" pp i

let pp_set ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") pp)
    s

let set_to_string s = Format.asprintf "%a" pp_set s

let universe n = List.init n (fun i -> i)
