(** Process identifiers.

    Internally processes are 0-based indices into the universe Π; the paper
    numbers them p1..pn, so printing is 1-based. *)

type t = int

val pp : Format.formatter -> t -> unit
(** Prints [p<i+1>]. *)

val to_string : t -> string

val pp_set : Format.formatter -> t list -> unit
(** Prints [{p1, p3, p4}]. *)

val set_to_string : t list -> string

val universe : int -> t list
(** [universe n] is [\[0; …; n-1\]]. *)
