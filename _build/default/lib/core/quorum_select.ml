module Graph = Qs_graph.Graph
module Indep = Qs_graph.Indep

type config = { n : int; f : int }

let q c = c.n - c.f

let validate_config c =
  if c.f < 0 then invalid_arg "Quorum_select: f must be non-negative";
  if c.n - c.f <= c.f then invalid_arg "Quorum_select: need n - f > f (correct majority)"

type t = {
  config : config;
  me : Pid.t;
  auth : Qs_crypto.Auth.t;
  send : Msg.t -> unit;
  on_quorum : Pid.t list -> unit;
  on_epoch : int -> unit;
  matrix : Suspicion_matrix.t;
  mutable epoch : int;
  mutable suspecting : Pid.t list;
  mutable last_quorum : Pid.t list;
  mutable history : Pid.t list list; (* reversed *)
  mutable epochs_entered : int;
  mutable rejected : int;
}

let create config ~me ~auth ~send ~on_quorum ?(on_epoch = fun _ -> ()) () =
  validate_config config;
  if me < 0 || me >= config.n then invalid_arg "Quorum_select.create: me out of range";
  if Qs_crypto.Auth.universe auth < config.n then
    invalid_arg "Quorum_select.create: auth universe too small";
  {
    config;
    me;
    auth;
    send;
    on_quorum;
    on_epoch;
    matrix = Suspicion_matrix.create config.n;
    epoch = 1;
    suspecting = [];
    last_quorum = List.init (q config) (fun i -> i);
    history = [];
    epochs_entered = 0;
    rejected = 0;
  }

let me t = t.me

(* updateSuspicions (Algorithm 1, lines 11-15): stamp current suspicions with
   the current epoch in our own row and broadcast it, including to self. The
   local matrix is only updated by the self-delivered UPDATE, which keeps a
   single code path for state changes and quorum re-evaluation — this is why
   line 15 broadcasts "to all including self". Returns whether the broadcast
   row differs from the locally stored one (i.e. whether a self-update will
   eventually arrive and re-trigger updateQuorum). *)
let update_suspicions t s =
  t.suspecting <- List.sort_uniq compare (List.filter (fun j -> j <> t.me) s);
  let row = Suspicion_matrix.row t.matrix t.me in
  let changed = ref false in
  List.iter
    (fun j ->
      if row.(j) < t.epoch then begin
        row.(j) <- t.epoch;
        changed := true
      end)
    t.suspecting;
  t.send (Msg.seal t.auth { Msg.owner = t.me; row });
  !changed

let handle_suspected t s = ignore (update_suspicions t s)

(* updateQuorum (lines 25-34). One deviation from the listing: when the epoch
   bump leaves our own row unchanged (current suspicions were already stamped
   or empty), the self-addressed UPDATE carries no new information, so no
   handler would ever re-evaluate the quorum at the new epoch; we therefore
   continue evaluating locally. Progress is guaranteed because each such
   iteration raises the epoch and strictly shrinks the suspect graph. *)
let rec update_quorum t =
  let g = Suspicion_matrix.suspect_graph t.matrix ~epoch:t.epoch in
  match Indep.lex_first_independent_set g (q t.config) with
  | None ->
    (* Suspicions in the current epoch are inconsistent: age them out. *)
    t.epoch <- t.epoch + 1;
    t.epochs_entered <- t.epochs_entered + 1;
    t.on_epoch t.epoch;
    if not (update_suspicions t t.suspecting) then update_quorum t
  | Some quorum ->
    if quorum <> t.last_quorum then begin
      t.last_quorum <- quorum;
      t.history <- quorum :: t.history;
      Logs.debug ~src:Qs_stdx.Debug.quorum (fun m ->
          m "p%d QUORUM %s (epoch %d)" (t.me + 1) (Pid.set_to_string quorum) t.epoch);
      t.on_quorum quorum
    end

let handle_update t msg =
  if not (Msg.verify t.auth msg) then t.rejected <- t.rejected + 1
  else begin
    let changed =
      Suspicion_matrix.merge_row t.matrix ~owner:msg.Msg.update.Msg.owner
        msg.Msg.update.Msg.row
    in
    if changed then begin
      t.send msg; (* forward, so every correct process sees every suspicion *)
      update_quorum t
    end
  end

let epoch t = t.epoch

let last_quorum t = t.last_quorum

let quorums_issued t = List.length t.history

let quorum_history t = List.rev t.history

let epochs_entered t = t.epochs_entered

let matrix t = t.matrix

let suspecting t = t.suspecting

let rejected_updates t = t.rejected

let suspect_graph t = Suspicion_matrix.suspect_graph t.matrix ~epoch:t.epoch
