let quorum_size_ok config quorum =
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  List.length quorum = Quorum_select.q config
  && increasing quorum
  && List.for_all (fun p -> p >= 0 && p < config.Quorum_select.n) quorum

let agreement = function
  | [] -> true
  | first :: rest -> List.for_all (fun quorum -> quorum = first) rest

let no_suspicion ~quorum ~correct ~suspects_of =
  List.for_all
    (fun j ->
      (not (List.mem j quorum))
      || List.for_all (fun s -> not (List.mem s quorum)) (suspects_of j))
    correct

let termination ~issued_before ~issued_after = issued_before = issued_after

let upper_bound_per_epoch ~f ~issued = issued <= f * (f + 1)

let conjectured_bound_per_epoch ~f ~issued = issued <= (f + 2) * (f + 1) / 2

let lower_bound_target ~f = (f + 2) * (f + 1) / 2
