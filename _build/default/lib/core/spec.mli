(** Checkers for the Quorum Selection properties (paper, Section IV-A).

    These are pure predicates over observed executions; the integration
    tests and the experiment harness run a simulation to quiescence and then
    assert them. *)

val quorum_size_ok : Quorum_select.config -> Pid.t list -> bool
(** |Q| = n − f and Q ⊆ Π, strictly increasing ids. *)

val agreement : Pid.t list list -> bool
(** All (correct) processes ended on the same quorum. *)

val no_suspicion :
  quorum:Pid.t list -> correct:Pid.t list -> suspects_of:(Pid.t -> Pid.t list) -> bool
(** For every correct process [j] in the quorum, [j] suspects nobody in the
    quorum. (Processes outside the quorum may suspect whoever they like.) *)

val termination :
  issued_before:int list -> issued_after:int list -> bool
(** Given per-process issue counts sampled at two quiescent points with extra
    (suspicion-free) run time in between, no process issued further quorums:
    the operational check that quorum changes stop. *)

val upper_bound_per_epoch : f:int -> issued:int -> bool
(** Theorem 3's per-epoch bound: at most [f × (f+1)] quorums. *)

val conjectured_bound_per_epoch : f:int -> issued:int -> bool
(** The simulation-suggested tight bound: at most [C(f+2, 2)]. *)

val lower_bound_target : f:int -> int
(** [C(f+2,2)] — what the Theorem-4 adversary must force. *)
