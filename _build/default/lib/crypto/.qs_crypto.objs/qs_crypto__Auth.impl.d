lib/crypto/auth.ml: Array Hmac Printf
