lib/crypto/auth.mli:
