lib/crypto/hmac.mli:
