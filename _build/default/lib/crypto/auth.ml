type signature = string

type t = { keys : string array }

let derive master i = Hmac.mac ~key:master (Printf.sprintf "process-key:%d" i)

let create ?(master = "qsel-reproduction-master-secret") n =
  if n <= 0 then invalid_arg "Auth.create: need at least one process";
  { keys = Array.init n (derive master) }

let universe t = Array.length t.keys

let key t i =
  if i < 0 || i >= Array.length t.keys then invalid_arg "Auth: unknown process";
  t.keys.(i)

let sign t ~signer payload = Hmac.mac ~key:(key t signer) payload

let verify t ~signer payload tag = Hmac.verify ~key:(key t signer) payload ~tag

type signed = { signer : int; payload : string; signature : signature }

let seal t ~signer payload = { signer; payload; signature = sign t ~signer payload }

let check t s =
  s.signer >= 0
  && s.signer < Array.length t.keys
  && verify t ~signer:s.signer s.payload s.signature

let forge t ~claimed payload =
  ignore (key t claimed);
  (* A forger has no access to [claimed]'s key; the best it can do is an
     arbitrary tag, which verification rejects with overwhelming probability.
     We make rejection deterministic by tagging with a key outside the
     directory. *)
  { signer = claimed; payload; signature = Hmac.mac ~key:"forged" payload }
