(** Simulated digital signatures for the protocol stack.

    The paper assumes unbreakable cryptographic primitives and messages
    "correctly authenticated" by their sender (Section IV). We model this with
    per-process HMAC keys derived from a master secret held by a directory
    [t]: a message is validly signed by process [i] iff it carries the tag
    produced with [i]'s key. Byzantine processes in the simulation hold their
    own key (so they can sign arbitrary payloads of their own) but cannot
    forge another process's tag — the two properties the proofs rely on.

    This substitutes for public-key signatures exactly the way MAC vectors
    substitute for signatures in PBFT; see DESIGN.md Section 2. *)

type t
(** Key directory for a fixed process universe. *)

type signature = string
(** 32-byte tag. *)

val create : ?master:string -> int -> t
(** [create ~master n] derives keys for processes [0 .. n-1]. The default
    master secret is fixed, so simulations are reproducible. *)

val universe : t -> int
(** Number of processes the directory knows. *)

val sign : t -> signer:int -> string -> signature
(** Tag [payload] with [signer]'s key. *)

val verify : t -> signer:int -> string -> signature -> bool
(** Does the tag check out under [signer]'s key? *)

type signed = {
  signer : int;
  payload : string;
  signature : signature;
}
(** A self-describing signed payload. *)

val seal : t -> signer:int -> string -> signed

val check : t -> signed -> bool
(** Verify a [signed] value against its claimed signer. *)

val forge : t -> claimed:int -> string -> signed
(** A deliberately invalid signature claiming to come from [claimed]: what a
    Byzantine process can do {e without} the victim's key. [check] always
    rejects it; used by tests and adversary behaviors. *)
