let block_size = 64

let normalize_key key =
  let key = if String.length key > block_size then Sha256.digest_string key else key in
  let padded = Bytes.make block_size '\x00' in
  Bytes.blit_string key 0 padded 0 (String.length key);
  Bytes.to_string padded

let xor_with s byte =
  String.map (fun c -> Char.chr (Char.code c lxor byte)) s

let mac ~key msg =
  let key = normalize_key key in
  let inner = Sha256.init () in
  Sha256.feed inner (xor_with key 0x36);
  Sha256.feed inner msg;
  let inner_digest = Sha256.finalize inner in
  let outer = Sha256.init () in
  Sha256.feed outer (xor_with key 0x5c);
  Sha256.feed outer inner_digest;
  Sha256.finalize outer

let mac_hex ~key msg = Sha256.hex (mac ~key msg)

let verify ~key msg ~tag =
  let expected = mac ~key msg in
  if String.length expected <> String.length tag then false
  else begin
    (* Fold over all bytes regardless of mismatches. *)
    let diff = ref 0 in
    String.iteri (fun i c -> diff := !diff lor (Char.code c lxor Char.code tag.[i])) expected;
    !diff = 0
  end
