(** HMAC-SHA256 (RFC 2104). *)

val mac : key:string -> string -> string
(** [mac ~key msg] is the 32-byte HMAC-SHA256 tag. *)

val mac_hex : key:string -> string -> string
(** Hex-encoded tag. *)

val verify : key:string -> string -> tag:string -> bool
(** Constant-time-ish comparison of a recomputed tag against [tag]. *)
