(** Pure-OCaml SHA-256 (FIPS 180-4).

    The container is sealed, so we vendor the hash rather than depend on an
    external crypto package. Verified against the FIPS test vectors in
    [test/test_crypto.ml]. *)

type digest = string
(** 32-byte raw digest. *)

val digest_string : string -> digest
(** SHA-256 of the whole string. *)

val hex : digest -> string
(** Lowercase hex encoding (64 characters for a full digest). *)

val digest_hex : string -> string
(** [digest_hex s] is [hex (digest_string s)]. *)

type ctx
(** Streaming context. *)

val init : unit -> ctx

val feed : ctx -> string -> unit
(** Absorb bytes; may be called repeatedly. *)

val finalize : ctx -> digest
(** Produce the digest. The context must not be used afterwards. *)
