lib/fd/detector.ml: Array List Logs Qs_sim Qs_stdx String Timeout
