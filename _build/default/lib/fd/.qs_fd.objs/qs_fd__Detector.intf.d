lib/fd/detector.mli: Qs_sim Timeout
