lib/fd/timeout.ml: Array Qs_sim Stdlib
