lib/fd/timeout.mli: Qs_sim
