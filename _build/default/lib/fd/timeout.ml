type strategy =
  | Fixed
  | Exponential of { factor : float; max : Qs_sim.Stime.t }
  | Additive of { step : Qs_sim.Stime.t; max : Qs_sim.Stime.t }

type t = {
  strategy : strategy;
  timeouts : Qs_sim.Stime.t array;
  mutable increases : int;
}

let create ~n ~initial strategy =
  if initial <= 0 then invalid_arg "Timeout.create: initial must be positive";
  { strategy; timeouts = Array.make n initial; increases = 0 }

let check t i =
  if i < 0 || i >= Array.length t.timeouts then invalid_arg "Timeout: peer out of range"

let current t i =
  check t i;
  t.timeouts.(i)

let on_false_suspicion t i =
  check t i;
  match t.strategy with
  | Fixed -> ()
  | Exponential { factor; max } ->
    t.increases <- t.increases + 1;
    t.timeouts.(i) <-
      Stdlib.min max (int_of_float (float_of_int t.timeouts.(i) *. factor))
  | Additive { step; max } ->
    t.increases <- t.increases + 1;
    t.timeouts.(i) <- Stdlib.min max (t.timeouts.(i) + step)

let increases t = t.increases
