lib/follower/fcluster.ml: Array Fmsg Follower_select List Option Qs_core Qs_crypto Queue
