lib/follower/fcluster.mli: Fmsg Follower_select Qs_core Qs_crypto
