lib/follower/fmsg.ml: Buffer Format List Qs_core Qs_crypto Qs_graph
