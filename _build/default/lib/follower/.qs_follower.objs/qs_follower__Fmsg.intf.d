lib/follower/fmsg.mli: Format Qs_core Qs_crypto Qs_graph
