lib/follower/follower_select.ml: Array Fmsg List Qs_core Qs_crypto Qs_graph
