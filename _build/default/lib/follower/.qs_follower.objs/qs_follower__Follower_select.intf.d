lib/follower/follower_select.mli: Fmsg Qs_core Qs_crypto Qs_graph
