module Pid = Qs_core.Pid
module Quorum_select = Qs_core.Quorum_select

exception Bus_saturated

type fd_state = {
  mutable transient : Pid.t list;
  mutable permanent : Pid.t list;
  mutable expectation : (Pid.t * int) option;
}

type t = {
  config : Quorum_select.config;
  auth : Qs_crypto.Auth.t;
  nodes : Follower_select.t array;
  fds : fd_state array;
  queue : (Pid.t * Fmsg.t) Queue.t;
  crashed : bool array;
  mutable processed : int;
  detected_log : (Pid.t * Pid.t) list ref; (* reversed *)
}

let suspicion_set fd = List.sort_uniq compare (fd.transient @ fd.permanent)

let create config =
  let n = config.Quorum_select.n in
  let auth = Qs_crypto.Auth.create n in
  let queue = Queue.create () in
  let fds =
    Array.init n (fun _ -> { transient = []; permanent = []; expectation = None })
  in
  let detected_log = ref [] in
  let node_slots : Follower_select.t option array = Array.make n None in
  let publish_at me =
    match node_slots.(me) with
    | None -> ()
    | Some node -> Follower_select.handle_suspected node (suspicion_set fds.(me))
  in
  for me = 0 to n - 1 do
    let node =
      Follower_select.create config ~me ~auth
        ~send:(fun msg ->
          for dst = 0 to n - 1 do
            Queue.add (dst, msg) queue
          done)
        ~on_quorum:(fun ~leader:_ _ -> ())
        ~fd_expect:(fun ~leader ~epoch -> fds.(me).expectation <- Some (leader, epoch))
        ~fd_cancel:(fun () -> fds.(me).expectation <- None)
        ~fd_detected:(fun culprit ->
          detected_log := (me, culprit) :: !detected_log;
          let fd = fds.(me) in
          if not (List.mem culprit fd.permanent) then begin
            fd.permanent <- culprit :: fd.permanent;
            publish_at me
          end)
        ()
    in
    node_slots.(me) <- Some node
  done;
  {
    config;
    auth;
    nodes = Array.map Option.get node_slots;
    fds;
    queue;
    crashed = Array.make n false;
    processed = 0;
    detected_log;
  }

let node t i = t.nodes.(i)

let auth t = t.auth

let crash t i = t.crashed.(i) <- true

let publish t i =
  Follower_select.handle_suspected t.nodes.(i) (suspicion_set t.fds.(i))

let fd_suspect t ~at suspects =
  if not t.crashed.(at) then begin
    t.fds.(at).transient <- suspects;
    publish t at
  end

let open_expectation t ~at = t.fds.(at).expectation

let fire_timeout t ~at =
  match t.fds.(at).expectation with
  | None -> ()
  | Some (leader, _) ->
    t.fds.(at).expectation <- None;
    if not (List.mem leader t.fds.(at).transient) then
      t.fds.(at).transient <- leader :: t.fds.(at).transient;
    publish t at

let deliver t ~to_ msg = Queue.add (to_, msg) t.queue

let run_until_quiet ?(max_messages = 1_000_000) t =
  let budget = ref max_messages in
  while not (Queue.is_empty t.queue) do
    if !budget = 0 then raise Bus_saturated;
    decr budget;
    let dst, msg = Queue.pop t.queue in
    t.processed <- t.processed + 1;
    if not t.crashed.(dst) then Follower_select.handle_msg t.nodes.(dst) msg
  done

let agreed t ~correct =
  match correct with
  | [] -> None
  | first :: rest ->
    let ld = Follower_select.leader t.nodes.(first) in
    let quorum = Follower_select.last_quorum t.nodes.(first) in
    if
      List.for_all
        (fun p ->
          Follower_select.leader t.nodes.(p) = ld
          && Follower_select.last_quorum t.nodes.(p) = quorum)
        rest
    then Some (ld, quorum)
    else None

let max_issued t ~correct =
  List.fold_left (fun acc p -> max acc (Follower_select.quorums_issued t.nodes.(p))) 0 correct

let detected_log t = List.rev !(t.detected_log)

let messages_processed t = t.processed
