(** Follower Selection nodes over the synchronous gossip bus, with a small
    emulated failure detector per node.

    Mirrors {!Qs_core.Cluster} for Algorithm 2. The global FIFO queue also
    provides the FIFO-link assumption of Section VIII. The emulated detector
    keeps, per node, a transient suspicion set (driven by the test or
    adversary) and a permanent set (fed by Algorithm 2's ⟨DETECTED⟩
    reports); the union is what the node's [handle_suspected] sees. The
    FOLLOWERS expectation issued by Algorithm 2 is recorded so a scenario can
    fire its timeout explicitly ([fire_timeout]) — simulating a leader that
    omits its FOLLOWERS message. *)

type t

val create : Qs_core.Quorum_select.config -> t

val node : t -> Qs_core.Pid.t -> Follower_select.t

val auth : t -> Qs_crypto.Auth.t

val crash : t -> Qs_core.Pid.t -> unit

val fd_suspect : t -> at:Qs_core.Pid.t -> Qs_core.Pid.t list -> unit
(** Set the node's transient suspicion set (the permanent set is added
    automatically) and deliver the ⟨SUSPECTED⟩ event. *)

val open_expectation : t -> at:Qs_core.Pid.t -> (Qs_core.Pid.t * int) option
(** The (leader, epoch) FOLLOWERS expectation currently open at a node. *)

val fire_timeout : t -> at:Qs_core.Pid.t -> unit
(** Expire the node's open FOLLOWERS expectation: the expected leader is
    added to the transient suspicions and ⟨SUSPECTED⟩ is delivered. No-op if
    no expectation is open. *)

val deliver : t -> to_:Qs_core.Pid.t -> Fmsg.t -> unit
(** Enqueue an arbitrary message for one destination (adversary use). *)

val run_until_quiet : ?max_messages:int -> t -> unit

exception Bus_saturated

val agreed : t -> correct:Qs_core.Pid.t list -> (Qs_core.Pid.t * Qs_core.Pid.t list) option
(** Common (leader, quorum) of the given processes, if they agree. *)

val max_issued : t -> correct:Qs_core.Pid.t list -> int

val detected_log : t -> (Qs_core.Pid.t * Qs_core.Pid.t) list
(** (reporter, culprit) pairs, in order. *)

val messages_processed : t -> int
