module Msg = Qs_core.Msg
module Pid = Qs_core.Pid

type followers = {
  leader : Pid.t;
  epoch : int;
  followers : Pid.t list;
  line : (int * int) list;
}

type payload = Update of Msg.update | Followers of followers

type t = { payload : payload; signature : Qs_crypto.Auth.signature }

let signer = function
  | Update u -> u.Msg.owner
  | Followers f -> f.leader

let encode = function
  | Update u -> Msg.encode u
  | Followers f ->
    let buf = Buffer.create 64 in
    Buffer.add_string buf "FOLLOWERS|";
    Buffer.add_string buf (string_of_int f.leader);
    Buffer.add_char buf '|';
    Buffer.add_string buf (string_of_int f.epoch);
    Buffer.add_char buf '|';
    List.iter
      (fun p ->
        Buffer.add_string buf (string_of_int p);
        Buffer.add_char buf ',')
      f.followers;
    Buffer.add_char buf '|';
    List.iter
      (fun (i, j) ->
        Buffer.add_string buf (string_of_int i);
        Buffer.add_char buf '-';
        Buffer.add_string buf (string_of_int j);
        Buffer.add_char buf ',')
      f.line;
    Buffer.contents buf

let seal auth payload =
  { payload; signature = Qs_crypto.Auth.sign auth ~signer:(signer payload) (encode payload) }

let verify auth t =
  let s = signer t.payload in
  s >= 0
  && s < Qs_crypto.Auth.universe auth
  && Qs_crypto.Auth.verify auth ~signer:s (encode t.payload) t.signature

let line_graph ~n f = Qs_graph.Graph.of_edges n f.line

let pp ppf t =
  match t.payload with
  | Update u -> Format.fprintf ppf "UPDATE(%a)" Pid.pp u.Msg.owner
  | Followers f ->
    Format.fprintf ppf "FOLLOWERS(leader=%a epoch=%d fw=%a)" Pid.pp f.leader f.epoch
      Pid.pp_set f.followers
