(** Wire messages for Follower Selection (Algorithm 2).

    Two payloads travel between processes: the UPDATE rows of the suspicion
    gossip (identical to Algorithm 1) and the leader's FOLLOWERS message
    ⟨FOLLOWERS, Fw, L, e⟩_σ (Algorithm 2, line 26), which carries the chosen
    followers, the line subgraph justifying the choice, and the epoch. *)

type followers = {
  leader : Qs_core.Pid.t;  (** the signer; Definition 3c requires l_{L'} = signer *)
  epoch : int;
  followers : Qs_core.Pid.t list;  (** Fw, sorted *)
  line : (int * int) list;  (** edges of L, each (i, j) with i < j, sorted *)
}

type payload =
  | Update of Qs_core.Msg.update
  | Followers of followers

type t = {
  payload : payload;
  signature : Qs_crypto.Auth.signature;
}

val signer : payload -> Qs_core.Pid.t
(** Who must have signed: the row owner or the claimed leader. *)

val encode : payload -> string

val seal : Qs_crypto.Auth.t -> payload -> t

val verify : Qs_crypto.Auth.t -> t -> bool

val line_graph : n:int -> followers -> Qs_graph.Graph.t
(** Materialize the carried line subgraph over universe [n]. Raises
    [Invalid_argument] on out-of-range vertices, which callers treat as
    malformed. *)

val pp : Format.formatter -> t -> unit
