lib/graph/graph.ml: Array Format List Qs_stdx
