lib/graph/graph.mli: Format Qs_stdx
