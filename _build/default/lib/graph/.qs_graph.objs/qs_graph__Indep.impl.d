lib/graph/indep.ml: Graph List Qs_stdx
