lib/graph/indep.mli: Graph
