lib/graph/line_subgraph.ml: Array Graph List
