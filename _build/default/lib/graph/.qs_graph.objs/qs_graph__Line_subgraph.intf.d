lib/graph/line_subgraph.mli: Graph
