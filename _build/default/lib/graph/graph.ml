module Bitset = Qs_stdx.Bitset

type t = { n : int; adj : Bitset.t array }

let create n =
  if n < 0 then invalid_arg "Graph.create";
  { n; adj = Array.init n (fun _ -> Bitset.create n) }

let n t = t.n

let copy t = { n = t.n; adj = Array.map Bitset.copy t.adj }

let equal a b = a.n = b.n && Array.for_all2 Bitset.equal a.adj b.adj

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Graph: vertex out of range"

let add_edge t i j =
  check t i;
  check t j;
  if i = j then invalid_arg "Graph.add_edge: self-loop";
  Bitset.add t.adj.(i) j;
  Bitset.add t.adj.(j) i

let remove_edge t i j =
  check t i;
  check t j;
  Bitset.remove t.adj.(i) j;
  Bitset.remove t.adj.(j) i

let has_edge t i j =
  check t i;
  check t j;
  i <> j && Bitset.mem t.adj.(i) j

let degree t i =
  check t i;
  Bitset.cardinal t.adj.(i)

let max_degree t =
  let best = ref 0 in
  for i = 0 to t.n - 1 do
    best := max !best (Bitset.cardinal t.adj.(i))
  done;
  !best

let neighbors t i =
  check t i;
  Bitset.elements t.adj.(i)

let neighbor_set t i =
  check t i;
  t.adj.(i)

let edges t =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    List.iter (fun j -> if i < j then acc := (i, j) :: !acc) (List.rev (neighbors t i))
  done;
  List.sort compare !acc

let edge_count t = List.length (edges t)

let is_empty t = Array.for_all Bitset.is_empty t.adj

let vertices t = List.init t.n (fun i -> i)

let non_isolated t =
  List.filter (fun i -> not (Bitset.is_empty t.adj.(i))) (vertices t)

let isolated t = List.filter (fun i -> Bitset.is_empty t.adj.(i)) (vertices t)

let of_edges n edge_list =
  let t = create n in
  List.iter (fun (i, j) -> add_edge t i j) edge_list;
  t

let is_subgraph ~sub ~super =
  sub.n = super.n
  && List.for_all (fun (i, j) -> has_edge super i j) (edges sub)

let union a b =
  if a.n <> b.n then invalid_arg "Graph.union: universe mismatch";
  let t = copy a in
  List.iter (fun (i, j) -> add_edge t i j) (edges b);
  t

let induced_has_cycle t =
  (* DFS with parent tracking; any back edge means a cycle. *)
  let color = Array.make t.n 0 in
  let found = ref false in
  let rec dfs parent v =
    color.(v) <- 1;
    List.iter
      (fun u ->
        if not !found then
          if color.(u) = 0 then dfs v u
          else if u <> parent then found := true)
      (neighbors t v);
    color.(v) <- 2
  in
  for v = 0 to t.n - 1 do
    if (not !found) && color.(v) = 0 then dfs (-1) v
  done;
  !found

let pp ppf t =
  Format.fprintf ppf "graph(n=%d; %a)" t.n
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       (fun ppf (i, j) -> Format.fprintf ppf "%d-%d" i j))
    (edges t)
