(** Undirected simple graphs over a fixed vertex universe [0 .. n-1].

    Suspect graphs (paper, Section VI-B) have one vertex per process; edges
    record suspicions at or after the current epoch. The universe is small
    (tens of vertices), so adjacency is kept as bitset rows. *)

type t

val create : int -> t
(** [create n] is the edgeless graph on [n] vertices. *)

val n : t -> int
(** Number of vertices. *)

val copy : t -> t

val equal : t -> t -> bool

val add_edge : t -> int -> int -> unit
(** Add undirected edge. Self-loops are rejected with [Invalid_argument]. *)

val remove_edge : t -> int -> int -> unit

val has_edge : t -> int -> int -> bool

val degree : t -> int -> int

val max_degree : t -> int

val neighbors : t -> int -> int list
(** Increasing order. *)

val neighbor_set : t -> int -> Qs_stdx.Bitset.t
(** The adjacency row itself — do not mutate. *)

val edges : t -> (int * int) list
(** All edges as [(i, j)] with [i < j], lexicographic. *)

val edge_count : t -> int

val is_empty : t -> bool

val vertices : t -> int list

val non_isolated : t -> int list
(** Vertices with degree ≥ 1, increasing. The "core" the exact algorithms
    run on. *)

val isolated : t -> int list

val of_edges : int -> (int * int) list -> t

val is_subgraph : sub:t -> super:t -> bool
(** Every edge of [sub] is an edge of [super] (universes must match). *)

val union : t -> t -> t
(** Edge union (same universe). *)

val induced_has_cycle : t -> bool
(** Does the graph contain a cycle? Used to validate line subgraphs
    (Definition 1 requires acyclicity). *)

val pp : Format.formatter -> t -> unit
