let is_line_subgraph l = Graph.max_degree l <= 2 && not (Graph.induced_has_cycle l)

let leader_of l =
  let rec loop v =
    if v >= Graph.n l then None
    else if Graph.degree l v = 0 then Some v
    else loop (v + 1)
  in
  loop 0

(* Break every cycle of a Δ≤2 subgraph by dropping one of its edges. All
   cycle vertices keep degree ≥ 1, so coverage is preserved (see DESIGN.md). *)
let open_cycles l =
  let l = Graph.copy l in
  let n = Graph.n l in
  let visited = Array.make n false in
  for start = 0 to n - 1 do
    if not visited.(start) then begin
      (* Walk the component; it is a path or a cycle. *)
      let component = ref [] in
      let rec walk v =
        if not visited.(v) then begin
          visited.(v) <- true;
          component := v :: !component;
          List.iter walk (Graph.neighbors l v)
        end
      in
      walk start;
      let vs = !component in
      let edge_ends =
        List.fold_left (fun acc v -> acc + Graph.degree l v) 0 vs
      in
      (* In a cycle every vertex has degree 2: #edges = #vertices. *)
      if List.length vs > 0 && edge_ends = 2 * List.length vs then begin
        match vs with
        | v :: _ ->
          (match Graph.neighbors l v with
           | u :: _ -> Graph.remove_edge l v u
           | [] -> ())
        | [] -> ()
      end
    end
  done;
  l

let covers_prefix_avoiding g j =
  let n = Graph.n g in
  if j < 0 || j >= n then invalid_arg "Line_subgraph.covers_prefix_avoiding";
  let must_cover = List.filter (fun v -> v < j && Graph.degree g v > 0) (Graph.vertices g) in
  (* An isolated vertex below j can never be covered, so j cannot lead. *)
  let blocked = List.exists (fun v -> v < j && Graph.degree g v = 0) (Graph.vertices g) in
  if blocked then None
  else begin
    let deg = Array.make n 0 in
    let chosen = ref [] in
    (* Backtracking over incident-edge choices. Every vertex in [must_cover]
       needs at least one incident edge, so branching over its neighbors is
       exhaustive. Cycles are permitted during the search and opened at the
       end. *)
    let rec go = function
      | [] -> true
      | w :: rest when deg.(w) > 0 -> go rest
      | w :: rest ->
        let try_neighbor u =
          u <> j && deg.(u) < 2
          && not (List.mem (min w u, max w u) !chosen)
          &&
          begin
            deg.(w) <- deg.(w) + 1;
            deg.(u) <- deg.(u) + 1;
            chosen := (min w u, max w u) :: !chosen;
            if go rest then true
            else begin
              deg.(w) <- deg.(w) - 1;
              deg.(u) <- deg.(u) - 1;
              chosen := List.tl !chosen;
              false
            end
          end
        in
        List.exists try_neighbor (Graph.neighbors g w)
    in
    if go must_cover then begin
      let l = Graph.of_edges n !chosen in
      Some (open_cycles l)
    end
    else None
  end

let maximal g =
  let n = Graph.n g in
  (* The leader cannot exceed the first isolated vertex of g, nor n-1. *)
  let rec first_isolated v =
    if v >= n then n - 1 else if Graph.degree g v = 0 then v else first_isolated (v + 1)
  in
  let jmax = first_isolated 0 in
  let rec search j =
    if j < 0 then Graph.create n (* empty line subgraph; leader 0 *)
    else
      match covers_prefix_avoiding g j with
      | Some l -> l
      | None -> search (j - 1)
  in
  search jmax

let leader g =
  match leader_of (maximal g) with
  | Some l -> l
  | None -> invalid_arg "Line_subgraph.leader: no degree-0 vertex"

let is_possible_follower l v =
  let deg1_neighbors =
    List.filter (fun u -> Graph.degree l u = 1) (Graph.neighbors l v)
  in
  List.length deg1_neighbors < 2

let possible_followers l =
  List.filter (is_possible_follower l) (Graph.vertices l)
