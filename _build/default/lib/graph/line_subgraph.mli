(** Line subgraphs and leaders (paper, Section VIII, Definitions 1–2).

    A {e line subgraph} of [G] is an acyclic subgraph with maximum degree 2 —
    a vertex-disjoint union of simple paths. It designates a leader: the
    minimum vertex of degree 0. A {e maximal} line subgraph is one whose
    leader id is maximum over all line subgraphs of [G]; the leader is unique
    even though the subgraph is not, which is what lets correct processes
    agree (Lemma 5).

    Intuition: edges of [L] "cover" suspected processes; the maximal line
    subgraph covers the longest prefix of process ids that can be covered, so
    the leader is the first process that no arrangement of suspicions can
    pin down. *)

val is_line_subgraph : Graph.t -> bool
(** Acyclic and maximum degree ≤ 2 (Definition 1). *)

val leader_of : Graph.t -> int option
(** [leader_of l] is the minimum vertex with degree 0 in [l] — vertices
    absent from [l] count as degree 0. [None] only if every vertex has
    degree ≥ 1 (cannot happen for suspect graphs with [n > 3f]). *)

val covers_prefix_avoiding : Graph.t -> int -> Graph.t option
(** [covers_prefix_avoiding g j] looks for a line subgraph [L ⊆ g] in which
    every vertex [v < j] that is non-isolated in [g] has degree ≥ 1 and [j]
    has degree 0. Returns the witness, or [None]. Requires every [v < j] to
    be non-isolated in [g] to succeed (an isolated vertex can never be
    covered). *)

val maximal : Graph.t -> Graph.t
(** A maximal line subgraph of [g] (deterministic: same input, same output).
    Its leader, via [leader_of], is the unique maximal leader. *)

val leader : Graph.t -> int
(** [leader g] = [Option.get (leader_of (maximal g))]: the leader every
    correct process converges to for suspect graph [g]. Raises
    [Invalid_argument] in the degenerate case where no vertex can have
    degree 0. *)

val possible_followers : Graph.t -> int list
(** All vertices of the line subgraph that are possible followers per
    Definition 2: a vertex is excluded iff it is adjacent (in [l]) to two
    vertices of degree 1. Degree-0 vertices are vacuously possible followers.
    The caller excludes the leader (Definition 3a). *)

val is_possible_follower : Graph.t -> int -> bool
