lib/harness/e_bounds.ml: List Printf Qs_adversary Qs_core Qs_stdx Verdict
