lib/harness/e_bounds.mli: Qs_stdx Verdict
