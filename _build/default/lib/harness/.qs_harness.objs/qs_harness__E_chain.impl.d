lib/harness/e_chain.ml: Format List Option Printf Qs_bchain Qs_fd Qs_sim Qs_star Qs_stdx Qs_xpaxos Verdict
