lib/harness/e_chain.mli: Qs_stdx Verdict
