lib/harness/e_detector.ml: Format List Qs_fd Qs_sim Qs_stdx Verdict
