lib/harness/e_detector.mli: Qs_fd Qs_sim Qs_stdx Verdict
