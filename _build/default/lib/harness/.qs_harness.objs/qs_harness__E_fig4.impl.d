lib/harness/e_fig4.ml: List Printf Qs_core Qs_graph Qs_stdx String Verdict
