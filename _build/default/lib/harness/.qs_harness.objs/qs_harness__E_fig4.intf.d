lib/harness/e_fig4.mli: Qs_core Qs_stdx Verdict
