lib/harness/e_follower.ml: Leader_attack List Printf Qs_core Qs_graph Qs_stdx String Verdict
