lib/harness/e_follower.mli: Qs_stdx Verdict
