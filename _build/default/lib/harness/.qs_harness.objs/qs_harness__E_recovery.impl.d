lib/harness/e_recovery.ml: Format List Option Qs_bchain Qs_fd Qs_minbft Qs_pbft Qs_sim Qs_star Qs_stdx Qs_xpaxos Verdict
