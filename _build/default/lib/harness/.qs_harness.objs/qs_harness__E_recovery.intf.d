lib/harness/e_recovery.mli: Qs_sim Qs_stdx Verdict
