lib/harness/e_stack.ml: Format Fun Heartbeat List Printf Qs_fd Qs_sim Qs_stdx Verdict
