lib/harness/e_stack.mli: Qs_stdx Verdict
