lib/harness/e_star.ml: List Printf Qs_fd Qs_sim Qs_star Qs_stdx Verdict
