lib/harness/e_star.mli: Qs_stdx Verdict
