lib/harness/e_xpaxos.ml: Buffer Float Fun Leader_attack List Printf Qs_fd Qs_minbft Qs_pbft Qs_sim Qs_stdx Qs_xpaxos Verdict
