lib/harness/e_xpaxos.mli: Qs_stdx Verdict
