lib/harness/experiments.ml: E_bounds E_chain E_detector E_fig4 E_follower E_recovery E_stack E_star E_xpaxos List Printf Qs_stdx Verdict
