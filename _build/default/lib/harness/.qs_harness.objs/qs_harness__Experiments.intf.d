lib/harness/experiments.mli: Verdict
