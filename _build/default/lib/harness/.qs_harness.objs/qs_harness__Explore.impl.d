lib/harness/explore.ml: Array Format Hashtbl List Printf Qs_core Qs_crypto String
