lib/harness/explore.mli:
