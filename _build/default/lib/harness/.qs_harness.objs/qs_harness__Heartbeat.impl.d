lib/harness/heartbeat.ml: Array Hashtbl List Option Printf Qs_core Qs_crypto Qs_fd Qs_sim
