lib/harness/heartbeat.mli: Qs_core Qs_fd Qs_sim
