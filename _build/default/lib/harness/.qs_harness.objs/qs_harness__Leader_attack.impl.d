lib/harness/leader_attack.ml: Fun Hashtbl List Qs_core Qs_follower
