lib/harness/leader_attack.mli:
