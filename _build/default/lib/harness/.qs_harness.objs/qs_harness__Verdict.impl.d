lib/harness/verdict.ml: Format List
