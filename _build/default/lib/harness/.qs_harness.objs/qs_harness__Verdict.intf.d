lib/harness/verdict.mli: Format
