module Table = Qs_stdx.Table
module Prng = Qs_stdx.Prng
module Theorem4 = Qs_adversary.Theorem4
module Spec = Qs_core.Spec

let e2_upper_bound ?(fs = [ 1; 2; 3; 4; 5; 6 ]) ?(random_seeds = 20) () =
  let t =
    Table.create ~title:"E2 (Theorem 3): max quorums issued per epoch under attack"
      ~columns:
        [
          ("f", Table.Right);
          ("n", Table.Right);
          ("best adversary", Table.Right);
          ("best random (seeds)", Table.Right);
          ("proven bound f(f+1)", Table.Right);
          ("conjectured C(f+2,2)", Table.Right);
        ]
  in
  let verdicts = ref [] in
  List.iter
    (fun f ->
      let n = (2 * f) + 2 in
      let setup = Theorem4.default_setup ~n ~f in
      (* Quorums = injections + 1 (the initial default), matching the
         theorem's counting. Exhaustive search is feasible up to f = 4; for
         larger f the greedy strategy provably cannot exceed the bound and
         empirically meets it. *)
      let game = if f <= 4 then Theorem4.exhaustive setup else Theorem4.greedy setup in
      let exhaustive_quorums = 1 + List.length game.Theorem4.injections in
      let best_random =
        let best = ref 0 in
        for seed = 1 to random_seeds do
          let g = Theorem4.random (Prng.of_int seed) setup in
          best := max !best (1 + List.length g.Theorem4.injections)
        done;
        !best
      in
      let proven = f * (f + 1) in
      let conjectured = Theorem4.target ~f in
      Table.add_row t
        [
          string_of_int f;
          string_of_int n;
          string_of_int exhaustive_quorums;
          string_of_int best_random;
          string_of_int proven;
          string_of_int conjectured;
        ];
      verdicts :=
        Verdict.make
          (Printf.sprintf "f=%d: issued quorums within f(f+1)" f)
          (Spec.upper_bound_per_epoch ~f ~issued:(exhaustive_quorums - 1))
        :: Verdict.make
             (Printf.sprintf "f=%d: measured max equals C(f+2,2)" f)
             (exhaustive_quorums = conjectured)
        :: !verdicts)
    fs;
  (t, List.rev !verdicts)

let e3_lower_bound ?(fs = [ 1; 2; 3; 4; 5; 6 ]) () =
  let t =
    Table.create ~title:"E3 (Theorem 4, Fig. 5): lower-bound adversary on the live cluster"
      ~columns:
        [
          ("f", Table.Right);
          ("n", Table.Right);
          ("suspicions injected", Table.Right);
          ("quorums proposed (live)", Table.Right);
          ("C(f+2,2) target", Table.Right);
          ("achieved", Table.Left);
        ]
  in
  let verdicts = ref [] in
  List.iter
    (fun f ->
      let n = (2 * f) + 2 in
      let setup = Theorem4.default_setup ~n ~f in
      let game = if f <= 4 then Theorem4.exhaustive setup else Theorem4.greedy setup in
      let live_issued = Theorem4.replay setup game in
      let proposed = live_issued + 1 in
      let target = Theorem4.target ~f in
      let ok = proposed = target in
      Table.add_row t
        [
          string_of_int f;
          string_of_int n;
          string_of_int (List.length game.Theorem4.injections);
          string_of_int proposed;
          string_of_int target;
          (if ok then "yes" else "NO");
        ];
      verdicts :=
        Verdict.make (Printf.sprintf "f=%d: live cluster forced to C(f+2,2) quorums" f) ok
        :: !verdicts)
    fs;
  (t, List.rev !verdicts)
