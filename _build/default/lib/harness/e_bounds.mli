(** Experiments E2 and E3: the quorum-change bounds of Section VII.

    E2 (Theorem 3 + the "simulations suggest" claim): measure the maximum
    number of quorums adversaries can force Algorithm 1 to issue within one
    epoch — exhaustive search over injection orders plus randomized
    strategies — and check it against the proven [f(f+1)] bound and the
    conjectured tight [C(f+2,2)] value.

    E3 (Theorem 4 + Fig. 5): replay the optimal adversary on the live gossip
    cluster and check it forces exactly [C(f+2,2)] quorums (counting the
    initial default). *)

val e2_upper_bound : ?fs:int list -> ?random_seeds:int -> unit -> Qs_stdx.Table.t * Verdict.t list
(** Defaults: [fs = [1;2;3;4]], 20 random strategies per f. *)

val e3_lower_bound : ?fs:int list -> unit -> Qs_stdx.Table.t * Verdict.t list
(** Defaults: [fs = [1;2;3;4]]. Includes the Fig. 5 instance (f = 3). *)
