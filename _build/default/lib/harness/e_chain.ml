module Table = Qs_stdx.Table
module Stime = Qs_sim.Stime
module Timeout = Qs_fd.Timeout
module Chain_node = Qs_bchain.Chain_node
module Chain_cluster = Qs_bchain.Chain_cluster

let ms = Stime.of_ms

let chain_config ~n ~f ~timeout =
  {
    Chain_node.n;
    f;
    initial_timeout = timeout;
    timeout_strategy = Timeout.Exponential { factor = 2.0; max = ms 2000 };
  }

let chain_messages_per_request ~n ~f =
  let c = Chain_cluster.create (chain_config ~n ~f ~timeout:(ms 1000)) in
  let requests = List.init 5 (fun i -> Chain_cluster.submit c (Printf.sprintf "op%d" i)) in
  Chain_cluster.run c;
  if not (List.for_all (Chain_cluster.is_committed c) requests) then
    invalid_arg "chain happy run failed";
  Chain_cluster.message_count c / List.length requests

(* Commit latency of one request over 1ms links: hop counts, measured. *)
let chain_latency ~n ~f =
  let c = Chain_cluster.create (chain_config ~n ~f ~timeout:(ms 1000)) in
  let r = Chain_cluster.submit c "lat" in
  Chain_cluster.run c;
  Option.get (Chain_cluster.commit_latency c r)

let star_latency ~n ~f =
  let c =
    Qs_star.Star_cluster.create
      {
        Qs_star.Star_node.n;
        f;
        initial_timeout = ms 1000;
        timeout_strategy = Timeout.Fixed;
      }
  in
  let r = Qs_star.Star_cluster.submit c "lat" in
  Qs_star.Star_cluster.run c;
  Option.get (Qs_star.Star_cluster.commit_latency c r)

let xpaxos_latency ~n ~f =
  let c =
    Qs_xpaxos.Xcluster.create
      {
        Qs_xpaxos.Replica.n;
        f;
        mode = Qs_xpaxos.Replica.Enumeration;
        initial_timeout = ms 1000;
        timeout_strategy = Timeout.Fixed;
      }
  in
  let r = Qs_xpaxos.Xcluster.submit c "lat" in
  Qs_xpaxos.Xcluster.run c;
  Option.get (Qs_xpaxos.Xcluster.commit_latency c r)

let xpaxos_messages_per_request ~n ~f =
  let config =
    {
      Qs_xpaxos.Replica.n;
      f;
      mode = Qs_xpaxos.Replica.Enumeration;
      initial_timeout = ms 1000;
      timeout_strategy = Timeout.Fixed;
    }
  in
  let c = Qs_xpaxos.Xcluster.create config in
  let requests =
    List.init 5 (fun i -> Qs_xpaxos.Xcluster.submit c (Printf.sprintf "op%d" i))
  in
  Qs_xpaxos.Xcluster.run c;
  Qs_xpaxos.Xcluster.message_count c / List.length requests

let run () =
  let t =
    Table.create
      ~title:"E9 (extension): chain communication vs all-to-all, messages per request"
      ~columns:
        [
          ("n", Table.Right);
          ("f", Table.Right);
          ("q", Table.Right);
          ("chain 2(q-1)", Table.Right);
          ("XPaxos quorum q^2-1", Table.Right);
          ("XPaxos all n^2-1", Table.Right);
          ("chain vs quorum", Table.Right);
          ("latency chain/star/xpaxos", Table.Right);
        ]
  in
  let verdicts = ref [] in
  List.iter
    (fun f ->
      let n = (3 * f) + 1 in
      let q = n - f in
      let chain = chain_messages_per_request ~n ~f in
      let quorum = xpaxos_messages_per_request ~n ~f in
      let full = xpaxos_messages_per_request ~n ~f:0 in
      let lat_chain = chain_latency ~n ~f in
      let lat_star = star_latency ~n ~f in
      let lat_x = xpaxos_latency ~n ~f in
      Table.add_row t
        [
          string_of_int n;
          string_of_int f;
          string_of_int q;
          string_of_int chain;
          string_of_int quorum;
          string_of_int full;
          Printf.sprintf "%.0f%%" (100.0 *. (1.0 -. (float_of_int chain /. float_of_int quorum)));
          Format.asprintf "%a / %a / %a" Stime.pp lat_chain Stime.pp lat_star Stime.pp lat_x;
        ];
      verdicts :=
        Verdict.make (Printf.sprintf "n=%d: chain uses exactly 2(q-1) messages" n)
          (chain = 2 * (q - 1))
        :: Verdict.make
             (Printf.sprintf "n=%d: all-to-all quorum uses q^2-1" n)
             (quorum = (q * q) - 1)
        :: Verdict.make (Printf.sprintf "n=%d: chain beats all-to-all" n) (chain < quorum)
        :: Verdict.make
             (Printf.sprintf "n=%d: the message saving costs latency (chain >= xpaxos)" n)
             (lat_chain >= lat_x && lat_chain = Stime.of_ms (2 * (q - 1)))
        :: Verdict.make
             (Printf.sprintf "n=%d: star sits between (3 hops)" n)
             (lat_star = Stime.of_ms 3)
        :: !verdicts)
    [ 1; 2; 3 ];
  (* Recovery: the chain re-forms around a mute member via quorum
     selection. *)
  let c = Chain_cluster.create (chain_config ~n:7 ~f:2 ~timeout:(ms 20)) in
  Chain_cluster.set_fault c 2 Chain_node.Mute;
  let r = Chain_cluster.submit c ~resubmit_every:(ms 100) "recover" in
  Chain_cluster.run ~until:(ms 8000) c;
  verdicts :=
    Verdict.make "re-chaining: request commits despite a mute chain member"
      (Chain_cluster.is_committed c r)
    :: Verdict.make "re-chaining: mute member excluded from the new chain"
         (not (List.mem 2 (Chain_node.chain (Chain_cluster.node c 0))))
    :: !verdicts;
  (t, List.rev !verdicts)
