(** Experiment E9 (extension, DESIGN.md §6): chain communication.

    The paper's Section I credits BChain's quorum selection with
    "drastically reducing the number of necessary intra-replica messages" by
    communicating along a chain; Section X names chain communication as
    future work. This experiment measures messages per committed request for
    the chain against XPaxos's all-to-all pattern (active quorum and full
    replication), and verifies the chain re-forms around a mute member via
    quorum selection. *)

val run : unit -> Qs_stdx.Table.t * Verdict.t list
