module Table = Qs_stdx.Table
module Sim = Qs_sim.Sim
module Network = Qs_sim.Network
module Stime = Qs_sim.Stime
module Detector = Qs_fd.Detector
module Timeout = Qs_fd.Timeout

let ms = Stime.of_ms

type result = {
  strategy : string;
  false_pre_gst : int;
  false_post_gst : int;
  omitter_suspected_rounds : int;
  omitter_suspected_final : bool;
  final_timeout : Stime.t;
}

let gst = ms 5_000

let rounds = 100

let round_period = ms 200

let run_one strategy ~name =
  let sim = Sim.create ~seed:42L () in
  let net =
    Network.create ~sim ~n:3
      ~delay:
        (Network.Eventually_synchronous
           { gst; pre_lo = ms 1; pre_hi = ms 300; post_lo = ms 5; post_hi = ms 80 })
      ()
  in
  let timeouts = Timeout.create ~n:3 ~initial:(ms 50) strategy in
  let false_pre = ref 0 and false_post = ref 0 in
  let omitter_rounds = ref 0 in
  let correct_suspected = ref false in
  let detector =
    Detector.create ~sim ~me:0 ~n:3 ~timeouts
      ~deliver:(fun ~src:_ _ -> ())
      ~on_suspected:(fun s ->
        let now = Sim.now sim in
        if List.mem 1 s && not !correct_suspected then begin
          correct_suspected := true;
          (* Count at the raise edge only; post-GST gets one timeout of
             slack for expectations issued just before GST. *)
          if now <= Stime.( + ) gst (ms 400) then incr false_pre else incr false_post
        end;
        if not (List.mem 1 s) then correct_suspected := false)
      ()
  in
  Network.set_handler net 0 (fun ~src m -> Detector.receive detector ~src m);
  for k = 1 to rounds do
    Sim.schedule_at sim ~at:(k * round_period) (fun () ->
        Detector.expect detector ~from:1 (fun m -> m = k);
        Detector.expect detector ~from:2 (fun m -> m = k);
        if Detector.is_suspected detector 2 then incr omitter_rounds;
        (* The correct peer replies instantly; the omitter never does. *)
        Network.send net ~src:1 ~dst:0 k)
  done;
  Sim.run sim;
  {
    strategy = name;
    false_pre_gst = !false_pre;
    false_post_gst = !false_post;
    omitter_suspected_rounds = !omitter_rounds;
    omitter_suspected_final = Detector.is_suspected detector 2;
    final_timeout = Timeout.current timeouts 1;
  }

let run () =
  let fixed = run_one Timeout.Fixed ~name:"fixed 50ms" in
  let expo =
    run_one (Timeout.Exponential { factor = 2.0; max = ms 5000 }) ~name:"exponential backoff"
  in
  let additive =
    run_one (Timeout.Additive { step = ms 50; max = ms 5000 }) ~name:"additive +50ms"
  in
  let t =
    Table.create ~title:"E7: failure-detector completeness and accuracy around GST"
      ~columns:
        [
          ("timeout strategy", Table.Left);
          ("false susp. pre-GST", Table.Right);
          ("false susp. post-GST", Table.Right);
          ("omitter suspected (rounds)", Table.Right);
          ("omitter suspected at end", Table.Left);
          ("final timeout (correct peer)", Table.Right);
        ]
  in
  let add r =
    Table.add_row t
      [
        r.strategy;
        string_of_int r.false_pre_gst;
        string_of_int r.false_post_gst;
        string_of_int r.omitter_suspected_rounds;
        (if r.omitter_suspected_final then "yes" else "NO");
        Format.asprintf "%a" Stime.pp r.final_timeout;
      ]
  in
  add fixed;
  add expo;
  add additive;
  let verdicts =
    [
      Verdict.make "completeness: omitter permanently suspected (all strategies)"
        (fixed.omitter_suspected_final && expo.omitter_suspected_final
        && additive.omitter_suspected_final);
      Verdict.make "ablation: fixed timeout keeps false-suspecting after GST"
        (fixed.false_post_gst > 0);
      Verdict.make "accuracy: exponential backoff stops false suspicions after GST"
        (expo.false_post_gst = 0);
      Verdict.make "accuracy: additive adaptation stops false suspicions after GST"
        (additive.false_post_gst = 0);
      Verdict.make "pre-GST false suspicions actually occurred (asynchrony was real)"
        (expo.false_pre_gst > 0 || fixed.false_pre_gst > 0);
    ]
  in
  (t, verdicts)
