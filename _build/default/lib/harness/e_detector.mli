(** Experiment E7: failure-detector completeness and accuracy
    (Sections II and IV-B).

    A three-process workload in an eventually-synchronous network: an
    observer expects one message per round from a correct peer (whose
    messages are arbitrarily delayed before GST and bounded after) and from
    an omitter (who never sends — a repeated omission failure).

    Checks:
    - {e expectation completeness}: the omitter is suspected, every round;
    - {e eventual strong accuracy}: with adaptive timeouts, false suspicions
      of the correct peer stop after GST; with a fixed timeout below the
      post-GST bound they never do (the ablation motivating adaptive
      timeouts). *)

type result = {
  strategy : string;
  false_pre_gst : int;  (** false suspicions of the correct peer before GST *)
  false_post_gst : int;  (** … after GST (+ one timeout of slack) *)
  omitter_suspected_rounds : int;  (** rounds in which the omitter was suspected *)
  omitter_suspected_final : bool;
  final_timeout : Qs_sim.Stime.t;  (** adapted timeout for the correct peer *)
}

val run_one : Qs_fd.Timeout.strategy -> name:string -> result

val run : unit -> Qs_stdx.Table.t * Verdict.t list
