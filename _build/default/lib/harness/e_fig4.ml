module Table = Qs_stdx.Table
module Matrix = Qs_core.Suspicion_matrix
module Indep = Qs_graph.Indep
module Pid = Qs_core.Pid

(* Suspicions consistent with the Fig. 4 caption (0-based ids): the (p3,p4)
   edge was raised in epoch 2, the rest in epoch 3. *)
let suspicions =
  [
    (* suspector, suspect, epoch *)
    (2, 3, 2); (* the stale edge removed at epoch 3 *)
    (0, 1, 3);
    (0, 4, 3);
    (1, 2, 3);
    (1, 3, 3);
    (1, 4, 3);
  ]

let matrix () =
  let m = Matrix.create 5 in
  List.iter (fun (l, k, e) -> Matrix.record m ~suspector:l ~suspect:k ~epoch:e) suspicions;
  m

let run () =
  let m = matrix () in
  let q = 3 in
  let quorum_at epoch =
    Indep.lex_first_independent_set (Matrix.suspect_graph m ~epoch) q
  in
  let t =
    Table.create ~title:"E1 (Fig. 4): suspect graph, epoch aging, quorum choice"
      ~columns:
        [ ("epoch", Table.Right); ("edges", Table.Left); ("independent sets of size 3", Table.Left);
          ("chosen quorum", Table.Left) ]
  in
  let describe epoch =
    let g = Matrix.suspect_graph m ~epoch in
    let edges =
      String.concat " "
        (List.map (fun (i, j) -> Printf.sprintf "%s-%s" (Pid.to_string i) (Pid.to_string j))
           (Qs_graph.Graph.edges g))
    in
    let sets =
      List.filter (fun s -> Indep.is_independent g s) (Qs_stdx.Combin.subsets 5 q)
    in
    let sets_str =
      if sets = [] then "(none)" else String.concat " " (List.map Pid.set_to_string sets)
    in
    let chosen = match quorum_at epoch with Some s -> Pid.set_to_string s | None -> "(none)" in
    Table.add_row t [ string_of_int epoch; edges; sets_str; chosen ]
  in
  describe 2;
  describe 3;
  let verdicts =
    [
      Verdict.make "epoch 2: no independent set of size 3" (quorum_at 2 = None);
      Verdict.make "epoch 3: {p1,p3,p4} chosen (lex-first)" (quorum_at 3 = Some [ 0; 2; 3 ]);
      Verdict.make "epoch 3: {p3,p4,p5} also independent"
        (Indep.is_independent (Matrix.suspect_graph m ~epoch:3) [ 2; 3; 4 ]);
    ]
  in
  (t, verdicts)
