(** Experiment E1: the worked example of Fig. 4 (Section VI-B).

    Reconstructs the suspect graph whose caption the paper gives: in epoch 2
    no independent set of size 3 exists; raising the epoch to 3 removes the
    (p3, p4) edge and exactly {p1,p3,p4} and {p3,p4,p5} become independent
    sets, of which Algorithm 1 picks the lexicographically first. *)

val run : unit -> Qs_stdx.Table.t * Verdict.t list

val matrix : unit -> Qs_core.Suspicion_matrix.t
(** The reconstructed suspicion matrix (exposed for tests). *)
