module Table = Qs_stdx.Table
module Graph = Qs_graph.Graph
module Line = Qs_graph.Line_subgraph
module Pid = Qs_core.Pid

let run ?(fs = [ 1; 2; 3; 4 ]) () =
  let t =
    Table.create ~title:"E4 (Theorem 9 / Corollary 10): Follower Selection under leader attack"
      ~columns:
        [
          ("f", Table.Right);
          ("n = 3f+1", Table.Right);
          ("suspicions", Table.Right);
          ("max quorums/epoch", Table.Right);
          ("bound 3f+1", Table.Right);
          ("total quorums", Table.Right);
          ("bound 6f+2", Table.Right);
          ("epochs", Table.Right);
        ]
  in
  let verdicts = ref [] in
  List.iter
    (fun f ->
      let n = (3 * f) + 1 in
      let r = Leader_attack.run ~n ~f in
      Table.add_row t
        [
          string_of_int f;
          string_of_int n;
          string_of_int r.Leader_attack.injections;
          string_of_int r.Leader_attack.max_per_epoch;
          string_of_int ((3 * f) + 1);
          string_of_int r.Leader_attack.total_issued;
          string_of_int ((6 * f) + 2);
          string_of_int r.Leader_attack.epochs;
        ];
      verdicts :=
        Verdict.make (Printf.sprintf "f=%d: per-epoch quorums <= 3f+1" f)
          (r.Leader_attack.max_per_epoch <= (3 * f) + 1)
        :: Verdict.make (Printf.sprintf "f=%d: total quorums <= 6f+2" f)
             (r.Leader_attack.total_issued <= (6 * f) + 2)
        :: !verdicts)
    fs;
  (t, List.rev !verdicts)

let examples () =
  let t =
    Table.create ~title:"E4b (Examples 1-2): maximal line subgraphs and possible followers"
      ~columns:
        [
          ("case", Table.Left);
          ("suspect graph", Table.Left);
          ("leader", Table.Left);
          ("excluded followers", Table.Left);
        ]
  in
  let show label g =
    let l = Line.maximal g in
    let leader = Line.leader g in
    let excluded =
      List.filter (fun v -> not (Line.is_possible_follower l v)) (Graph.vertices l)
    in
    let edges =
      String.concat " "
        (List.map (fun (i, j) -> Printf.sprintf "%s-%s" (Pid.to_string i) (Pid.to_string j))
           (Graph.edges g))
    in
    Table.add_row t
      [
        label;
        (if edges = "" then "(empty)" else edges);
        Pid.to_string leader;
        (if excluded = [] then "(none)" else Pid.set_to_string excluded);
      ];
    (leader, excluded)
  in
  (* Example 1: a 3-path on 7 nodes; p2 sits between two degree-1 nodes. *)
  let g1 = Graph.of_edges 7 [ (0, 1); (1, 2) ] in
  let leader1, excl1 = show "Example 1" g1 in
  (* Example 1 note: adding (p2,p5) does not change the leader. *)
  let g1b = Graph.of_edges 7 [ (0, 1); (1, 2); (1, 4) ] in
  let leader1b, _ = show "Example 1 + (p2,p5)" g1b in
  (* Example 2 flavor: one more suspicion moves the leader. *)
  let g2 = Graph.of_edges 6 [ (0, 1); (2, 3) ] in
  let leader2, _ = show "Example 2 (before)" g2 in
  let g2b = Graph.of_edges 6 [ (0, 1); (2, 3); (3, 4) ] in
  let leader2b, _ = show "Example 2 (after new edge)" g2b in
  let verdicts =
    [
      Verdict.make "example 1: leader is p4" (leader1 = 3);
      Verdict.make "example 1: p2 not a possible follower" (excl1 = [ 1 ]);
      Verdict.make "example 1: extra follower-side edge keeps the leader" (leader1b = leader1);
      Verdict.make "example 2: new suspicion moves the leader" (leader2b > leader2);
    ]
  in
  (t, verdicts)
