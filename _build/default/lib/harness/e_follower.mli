(** Experiment E4: Follower Selection bounds (Theorem 9, Corollary 10) and
    the line-subgraph examples of Section VIII.

    Runs the leader-attack adversary against Algorithm 2 for a range of [f]
    with [n = 3f + 1] and checks: at most [3f + 1] quorums per epoch, at
    most [6f + 2] in total after stabilization. *)

val run : ?fs:int list -> unit -> Qs_stdx.Table.t * Verdict.t list
(** Default [fs = [1; 2; 3]]. *)

val examples : unit -> Qs_stdx.Table.t * Verdict.t list
(** Examples 1 and 2: maximal line subgraphs, leaders and possible
    followers on the hand-constructed graphs. *)
