(** Experiment E12 (extension): reacting, measured — recovery latency across
    every protocol integration.

    The paper's pitch is that selecting a quorum of well-functioning
    processes lets a system {e react} to failures instead of paying to mask
    them. This experiment quantifies the price of reacting: an active quorum
    member goes mute mid-run, a fresh request is submitted, and we measure
    the time until it commits — detection (one expectation timeout) plus
    selection (gossip) plus the protocol's own reconfiguration.

    One row per integration: XPaxos (quorum selection), PBFT selected
    (quorum selection), MinBFT selected (quorum selection, trusted
    component), chain (quorum selection, BChain-style) and star (follower
    selection). Happy-path latency is reported next to it, so the
    reaction premium is visible. *)

type row = {
  protocol : string;
  happy_latency : Qs_sim.Stime.t;
  recovery_latency : Qs_sim.Stime.t option;  (** None = did not recover *)
}

val run : unit -> Qs_stdx.Table.t * Verdict.t list
