(** Experiment E10 (extension): the full Fig.-1 stack end to end.

    E10a — crash convergence: [f] processes crash mid-run; heartbeat
    expectations raise the suspicions, Algorithm 1 converges every correct
    process onto the same quorum of live processes. Reports detection +
    selection latency and the number of quorum changes (which must respect
    Theorem 3's per-epoch bound, since all suspicions here are accurate).

    E10b — the Section VI-C equivocation claim: a faulty process sending
    {e different} suspicion rows to different peers does not hurt —
    correct processes still converge to one quorum, with the equivocator's
    claims merged by the max-CRDT ("such behavior will only cause Quorum
    Selection to terminate faster"). *)

val run : unit -> Qs_stdx.Table.t * Verdict.t list
