module Table = Qs_stdx.Table
module Stime = Qs_sim.Stime
module Timeout = Qs_fd.Timeout
module Star_node = Qs_star.Star_node
module Star_cluster = Qs_star.Star_cluster

let ms = Stime.of_ms

let config ~n ~f =
  {
    Star_node.n;
    f;
    initial_timeout = ms 25;
    timeout_strategy = Timeout.Exponential { factor = 2.0; max = ms 2000 };
  }

let run ?(fs = [ 1; 2; 3 ]) () =
  let t =
    Table.create
      ~title:"E11 (extension): Follower Selection live in a leader-centric star SMR"
      ~columns:
        [
          ("f", Table.Right);
          ("n = 3f+1", Table.Right);
          ("msgs/req 3(q-1)", Table.Right);
          ("crashed leader recovered", Table.Right);
          ("live quorum changes", Table.Right);
          ("bound 6f+2", Table.Right);
        ]
  in
  let verdicts = ref [] in
  List.iter
    (fun f ->
      let n = (3 * f) + 1 in
      let q = n - f in
      (* Happy-path message complexity. *)
      let happy = Star_cluster.create (config ~n ~f) in
      let hr = Star_cluster.submit happy "measure" in
      Star_cluster.run happy;
      let msgs = Star_cluster.message_count happy in
      let happy_ok = Star_cluster.is_committed happy hr && msgs = 3 * (q - 1) in
      (* Crash the initial leader; Algorithm 2 must recover live. *)
      let c = Star_cluster.create (config ~n ~f) in
      Star_cluster.set_fault c 0 Star_node.Mute;
      let r = Star_cluster.submit c ~resubmit_every:(ms 100) "recover" in
      Star_cluster.run ~until:(ms 10_000) c;
      let recovered = Star_cluster.is_committed c r in
      let changes = Star_cluster.max_quorum_epoch c in
      Table.add_row t
        [
          string_of_int f;
          string_of_int n;
          Printf.sprintf "%d" msgs;
          (if recovered then "yes" else "NO");
          string_of_int changes;
          string_of_int ((6 * f) + 2);
        ];
      verdicts :=
        Verdict.make (Printf.sprintf "f=%d: star uses exactly 3(q-1) messages" f) happy_ok
        :: Verdict.make (Printf.sprintf "f=%d: crashed leader recovered live" f) recovered
        :: Verdict.make
             (Printf.sprintf "f=%d: live reconfigurations within 6f+2" f)
             (changes <= (6 * f) + 2)
        :: !verdicts)
    fs;
  (t, List.rev !verdicts)
