(** Experiment E11 (extension): Follower Selection live, in its habitat.

    Section VIII motivates Follower Selection with leader-centric message
    patterns. Here Algorithm 2 runs end-to-end — expectations, FOLLOWERS
    messages, detection — inside a star-topology state machine
    (LEAD/ACK/APPLY, [3(q−1)] messages per request) over the asynchronous
    network, and the live reconfiguration counts are checked against
    Corollary 10's [6f + 2]. *)

val run : ?fs:int list -> unit -> Qs_stdx.Table.t * Verdict.t list
(** Default [fs = [1; 2; 3]]; [n = 3f + 1]. *)
