module Table = Qs_stdx.Table
module Stime = Qs_sim.Stime
module Timeout = Qs_fd.Timeout
module Replica = Qs_xpaxos.Replica
module Xcluster = Qs_xpaxos.Xcluster
module Enumeration = Qs_xpaxos.Enumeration
module Xmsg = Qs_xpaxos.Xmsg

let ms = Stime.of_ms

let config ~mode ~n ~f ~timeout =
  {
    Replica.n;
    f;
    mode;
    initial_timeout = timeout;
    timeout_strategy = Timeout.Exponential { factor = 2.0; max = ms 2000 };
  }

(* Run with f mute low-id replicas until the request commits; report how many
   view installations the surviving replicas performed. *)
let recovery_run ~mode ~n ~f =
  let c = Xcluster.create (config ~mode ~n ~f ~timeout:(ms 20)) in
  for r = 0 to f - 1 do
    Xcluster.set_fault c r Replica.Mute
  done;
  let request = Xcluster.submit c ~resubmit_every:(ms 100) "recover" in
  let deadline = ms 600_000 in
  let rec loop at =
    Xcluster.run ~until:at c;
    if Xcluster.is_globally_committed c request || at > deadline then ()
    else loop (at + ms 1000)
  in
  loop (ms 1000);
  let correct = List.filter (fun p -> p >= f) (List.init n Fun.id) in
  let max_changes =
    List.fold_left (fun acc p -> max acc (Replica.view_changes (Xcluster.replica c p))) 0 correct
  in
  (Xcluster.is_globally_committed c request, max_changes)

let e5_viewchanges ?(fs = [ 1; 2; 3; 4 ]) () =
  let t =
    Table.create
      ~title:
        "E5: view changes until a working quorum (f mute replicas at the worst position)"
      ~columns:
        [
          ("f", Table.Right);
          ("n = 2f+1", Table.Right);
          ("quorums C(n,f)", Table.Right);
          ("XPaxos enumeration", Table.Right);
          ("Quorum Selection", Table.Right);
          ("Follower Sel. (n=3f+1)", Table.Right);
        ]
  in
  let verdicts = ref [] in
  List.iter
    (fun f ->
      let n = (2 * f) + 1 in
      let committed_e, enum_changes = recovery_run ~mode:Replica.Enumeration ~n ~f in
      let committed_q, qs_changes = recovery_run ~mode:Replica.Quorum_selection ~n ~f in
      let fol = Leader_attack.run ~n:((3 * f) + 1) ~f in
      let total_groups = Enumeration.count ~n ~q:(n - f) in
      Table.add_row t
        [
          string_of_int f;
          string_of_int n;
          string_of_int total_groups;
          string_of_int enum_changes;
          string_of_int qs_changes;
          string_of_int fol.Leader_attack.total_issued;
        ];
      verdicts :=
        Verdict.make (Printf.sprintf "f=%d: both modes recover" f) (committed_e && committed_q)
        :: Verdict.make
             (Printf.sprintf "f=%d: quorum selection needs fewer view changes" f)
             (f = 1 || qs_changes < enum_changes)
        :: Verdict.make
             (Printf.sprintf "f=%d: follower selection stays within 6f+2" f)
             (fol.Leader_attack.total_issued <= (6 * f) + 2)
        :: !verdicts)
    fs;
  (t, List.rev !verdicts)

(* Messages per committed request in a happy run. *)
let messages_per_request ~n ~f =
  let c = Xcluster.create (config ~mode:Replica.Enumeration ~n ~f ~timeout:(ms 1000)) in
  let requests = List.init 5 (fun i -> Xcluster.submit c (Printf.sprintf "op%d" i)) in
  Xcluster.run c;
  let all_committed = List.for_all (Xcluster.is_globally_committed c) requests in
  if not all_committed then invalid_arg "messages_per_request: happy run failed";
  Xcluster.message_count c / List.length requests

(* Same measurement on the two-phase trusted-component protocol (n=2f+1). *)
let minbft_messages_per_request ~f ~participation =
  let module M = Qs_minbft.Mreplica in
  let module MC = Qs_minbft.Mcluster in
  let c =
    MC.create
      {
        M.n = (2 * f) + 1;
        f;
        participation;
        initial_timeout = ms 1000;
        timeout_strategy = Timeout.Fixed;
      }
  in
  let requests = List.init 5 (fun i -> MC.submit c (Printf.sprintf "op%d" i)) in
  MC.run c;
  if not (List.for_all (MC.is_committed c) requests) then
    invalid_arg "minbft happy run failed";
  MC.message_count c / List.length requests

(* Same measurement on the real three-phase PBFT. *)
let pbft_messages_per_request ~f ~participation =
  let module P = Qs_pbft.Preplica in
  let module PC = Qs_pbft.Pcluster in
  let c =
    PC.create
      {
        P.n = (3 * f) + 1;
        f;
        participation;
        initial_timeout = ms 1000;
        timeout_strategy = Timeout.Fixed;
      }
  in
  let requests = List.init 5 (fun i -> PC.submit c (Printf.sprintf "op%d" i)) in
  PC.run c;
  if not (List.for_all (PC.is_globally_committed c) requests) then
    invalid_arg "pbft happy run failed";
  PC.message_count c / List.length requests

let e6_messages () =
  let t =
    Table.create ~title:"E6: active-quorum message reduction (Section I / Distler et al.)"
      ~columns:
        [
          ("system", Table.Left);
          ("n", Table.Right);
          ("f", Table.Right);
          ("msgs/req (active q)", Table.Right);
          ("msgs/req (all n)", Table.Right);
          ("total saved", Table.Right);
          ("fan-out saved", Table.Right);
          ("paper target", Table.Right);
        ]
  in
  let verdicts = ref [] in
  let row label n f target =
    let active = messages_per_request ~n ~f in
    let all = messages_per_request ~n ~f:0 in
    let saved = 1.0 -. (float_of_int active /. float_of_int all) in
    let q = n - f in
    let fanout_saved = 1.0 -. (float_of_int (q - 1) /. float_of_int (n - 1)) in
    Table.add_row t
      [
        label;
        string_of_int n;
        string_of_int f;
        string_of_int active;
        string_of_int all;
        Printf.sprintf "%.0f%%" (saved *. 100.0);
        Printf.sprintf "%.0f%%" (fanout_saved *. 100.0);
        Printf.sprintf "~%.0f%%" (target *. 100.0);
      ];
    verdicts :=
      Verdict.make
        (Printf.sprintf "%s n=%d: fan-out saving within 10%% of the paper's figure" label n)
        (Float.abs (fanout_saved -. target) <= 0.10)
      :: Verdict.make (Printf.sprintf "%s n=%d: active quorum uses fewer messages" label n)
           (active < all)
      :: !verdicts
  in
  (* n = 3f+1 systems (PBFT-style): drop ~1/3 of the messages. *)
  List.iter (fun f -> row "n=3f+1" ((3 * f) + 1) f (1.0 /. 3.0)) [ 1; 2; 3 ];
  (* n = 2f+1 systems (trusted-component/XFT): drop ~1/2. *)
  List.iter (fun f -> row "n=2f+1" ((2 * f) + 1) f 0.5) [ 1; 2; 3 ];
  (* The same claim on the genuine three-phase PBFT: Full (masking,
     all-to-all among all n) vs Selected (the paper's active quorum). *)
  List.iter
    (fun f ->
      let n = (3 * f) + 1 in
      let q = n - f in
      let full = pbft_messages_per_request ~f ~participation:Qs_pbft.Preplica.Full in
      let selected = pbft_messages_per_request ~f ~participation:Qs_pbft.Preplica.Selected in
      let saved = 1.0 -. (float_of_int selected /. float_of_int full) in
      let fanout_saved = 1.0 -. (float_of_int (q - 1) /. float_of_int (n - 1)) in
      Table.add_row t
        [
          "PBFT 3-phase";
          string_of_int n;
          string_of_int f;
          string_of_int selected;
          string_of_int full;
          Printf.sprintf "%.0f%%" (saved *. 100.0);
          Printf.sprintf "%.0f%%" (fanout_saved *. 100.0);
          "~33%";
        ];
      verdicts :=
        Verdict.make
          (Printf.sprintf "PBFT n=%d: selected quorum cheaper than full replication" n)
          (selected < full)
        :: Verdict.make
             (Printf.sprintf "PBFT n=%d: fan-out saving is the paper's ~1/3" n)
             (Float.abs (fanout_saved -. (1.0 /. 3.0)) <= 0.10)
        :: !verdicts)
    [ 1; 2; 3 ];
  (* And on the trusted-component class (MinBFT-style, n = 2f+1): the
     paper's ~1/2 figure. *)
  List.iter
    (fun f ->
      let n = (2 * f) + 1 in
      let q = n - f in
      let full = minbft_messages_per_request ~f ~participation:Qs_minbft.Mreplica.Full in
      let selected =
        minbft_messages_per_request ~f ~participation:Qs_minbft.Mreplica.Selected
      in
      let saved = 1.0 -. (float_of_int selected /. float_of_int full) in
      let fanout_saved = 1.0 -. (float_of_int (q - 1) /. float_of_int (n - 1)) in
      Table.add_row t
        [
          "MinBFT 2-phase";
          string_of_int n;
          string_of_int f;
          string_of_int selected;
          string_of_int full;
          Printf.sprintf "%.0f%%" (saved *. 100.0);
          Printf.sprintf "%.0f%%" (fanout_saved *. 100.0);
          "~50%";
        ];
      verdicts :=
        Verdict.make
          (Printf.sprintf "MinBFT n=%d: selected quorum cheaper than full replication" n)
          (selected < full)
        :: Verdict.make
             (Printf.sprintf "MinBFT n=%d: fan-out saving is the paper's ~1/2" n)
             (Float.abs (fanout_saved -. 0.5) <= 0.10)
        :: !verdicts)
    [ 1; 2; 3 ];
  (t, List.rev !verdicts)

let e8_flows () =
  let buf = Buffer.create 1024 in
  let happy_verdicts =
    let c =
      Xcluster.create ~fifo:true (config ~mode:Replica.Enumeration ~n:5 ~f:2 ~timeout:(ms 1000))
    in
    let tr = Qs_sim.Trace.create () in
    Qs_sim.Trace.attach tr ~label:(fun m -> Xmsg.tag m.Xmsg.body) (Xcluster.net c);
    let r = Xcluster.submit c "fig2" in
    Xcluster.run c;
    Buffer.add_string buf "--- Fig. 2: XPaxos normal case (n=5, f=2, group {p1,p2,p3}) ---\n";
    Buffer.add_string buf (Qs_sim.Trace.render tr);
    Buffer.add_string buf "\n\n";
    let entries = Qs_sim.Trace.entries tr in
    let sends tag =
      List.length
        (List.filter
           (fun e -> e.Qs_sim.Trace.kind = Qs_sim.Network.Send && e.Qs_sim.Trace.label = tag)
           entries)
    in
    [
      Verdict.make "fig2: request committed" (Xcluster.is_globally_committed c r);
      Verdict.make "fig2: leader sent q-1 PREPAREs" (sends "PREPARE" = 2);
      Verdict.make "fig2: every member sent q-1 COMMITs" (sends "COMMIT" = 6);
    ]
  in
  let fig3_verdicts =
    let c =
      Xcluster.create ~fifo:true (config ~mode:Replica.Enumeration ~n:5 ~f:2 ~timeout:(ms 1000))
    in
    let tr = Qs_sim.Trace.create () in
    Qs_sim.Trace.attach tr ~label:(fun m -> Xmsg.tag m.Xmsg.body) (Xcluster.net c);
    (* Delay the leader's link to p3 so its PREPARE arrives after the other
       member's COMMIT (Fig. 3). *)
    Xcluster.delay_link c ~src:0 ~dst:2 ~by:(ms 20);
    let r = Xcluster.submit c "fig3" in
    Xcluster.run c;
    Buffer.add_string buf "--- Fig. 3: delayed PREPARE, COMMIT sent on embedded prepare ---\n";
    Buffer.add_string buf (Qs_sim.Trace.render tr);
    Buffer.add_string buf "\n";
    let entries = Qs_sim.Trace.entries tr in
    let commit_send_by_2 =
      List.find_opt
        (fun e ->
          e.Qs_sim.Trace.kind = Qs_sim.Network.Send
          && e.Qs_sim.Trace.src = 2 && e.Qs_sim.Trace.label = "COMMIT")
        entries
    in
    let prepare_recv_at_2 =
      List.find_opt
        (fun e ->
          e.Qs_sim.Trace.kind = Qs_sim.Network.Delivered
          && e.Qs_sim.Trace.dst = 2 && e.Qs_sim.Trace.label = "PREPARE")
        entries
    in
    let ordered =
      match (commit_send_by_2, prepare_recv_at_2) with
      | Some c2, Some p2 -> c2.Qs_sim.Trace.at < p2.Qs_sim.Trace.at
      | _ -> false
    in
    [
      Verdict.make "fig3: request committed despite the delay" (Xcluster.is_globally_committed c r);
      Verdict.make "fig3: p3 sent COMMIT before receiving the PREPARE" ordered;
    ]
  in
  (Buffer.contents buf, happy_verdicts @ fig3_verdicts)
