(** Experiments E5, E6 and E8: the XPaxos-level claims.

    E5 — view changes until a working quorum: the XPaxos enumeration
    baseline walks the [C(n,f)] quorum list (Section V-B), Quorum Selection
    needs [O(f²)] changes, Follower Selection [O(f)] (Section I).

    E6 — message reduction from running only an active quorum: dropping the
    [f] passive replicas shrinks every broadcast from [n−1] to [q−1]
    recipients, ≈ 1/3 fewer messages for [n = 3f+1] systems and ≈ 1/2 for
    [n = 2f+1] (Section I, citing Distler et al. [6]).

    E8 — the normal-case message flows of Figs. 2 and 3, captured from the
    simulator's trace. *)

val e5_viewchanges : ?fs:int list -> unit -> Qs_stdx.Table.t * Verdict.t list
(** Default [fs = [1; 2; 3]]. Mute faulty replicas occupy the low ids — the
    worst case for the lexicographic enumeration. *)

val e6_messages : unit -> Qs_stdx.Table.t * Verdict.t list

val e8_flows : unit -> string * Verdict.t list
(** Returns the rendered message traces (happy case and delayed-PREPARE
    case) plus verdicts on their shape. *)
