module QS = Qs_core.Quorum_select
module Msg = Qs_core.Msg
module Matrix = Qs_core.Suspicion_matrix

type scenario = { n : int; f : int; injections : (int * int list) list }

type result = {
  states : int;
  quiescent : int;
  max_depth : int;
  agreement_violations : int;
  convergence_violations : int;
}

(* A rebuilt world: nodes plus the in-flight message list (in deterministic
   append order). *)
type world = {
  nodes : QS.t array;
  inflight : (int * Msg.t) list ref; (* (dst, msg), oldest first *)
}

let build scenario =
  let auth = Qs_crypto.Auth.create scenario.n in
  let inflight = ref [] in
  let nodes =
    Array.init scenario.n (fun me ->
        QS.create
          { QS.n = scenario.n; f = scenario.f }
          ~me ~auth
          ~send:(fun msg ->
            for dst = 0 to scenario.n - 1 do
              inflight := !inflight @ [ (dst, msg) ]
            done)
          ~on_quorum:(fun _ -> ())
          ())
  in
  let world = { nodes; inflight } in
  List.iter (fun (at, suspects) -> QS.handle_suspected nodes.(at) suspects) scenario.injections;
  world

(* Replay a prefix of delivery choices. Each choice is an index into the
   current in-flight list. *)
let replay scenario choices =
  let world = build scenario in
  List.iter
    (fun idx ->
      let dst, msg = List.nth !(world.inflight) idx in
      world.inflight :=
        List.filteri (fun i _ -> i <> idx) !(world.inflight);
      QS.handle_update world.nodes.(dst) msg)
    choices;
  world

(* A canonical fingerprint of the global state: per-node (epoch, matrix,
   last quorum) plus the multiset of in-flight messages. *)
let fingerprint world =
  let node_part =
    Array.to_list world.nodes
    |> List.map (fun node ->
           Format.asprintf "%d|%a|%s" (QS.epoch node) Matrix.pp (QS.matrix node)
             (String.concat "," (List.map string_of_int (QS.last_quorum node))))
  in
  let msg_part =
    List.map (fun (dst, msg) -> Printf.sprintf "%d>%s" dst (Msg.encode msg.Msg.update))
      !(world.inflight)
    |> List.sort compare
  in
  Qs_crypto.Sha256.digest_string (String.concat ";" (node_part @ msg_part))

(* Distinct next choices: delivering two identical (dst, msg) entries leads
   to the same state, so keep one representative index per distinct entry. *)
let distinct_choices world =
  let seen = Hashtbl.create 16 in
  let _, indices =
    List.fold_left
      (fun (i, acc) (dst, msg) ->
        let key = (dst, Msg.encode msg.Msg.update) in
        if Hashtbl.mem seen key then (i + 1, acc)
        else begin
          Hashtbl.replace seen key ();
          (i + 1, i :: acc)
        end)
      (0, []) !(world.inflight)
  in
  List.rev indices

let check ?(max_states = 200_000) scenario =
  QS.validate_config { QS.n = scenario.n; f = scenario.f };
  let visited = Hashtbl.create 4096 in
  let states = ref 0 in
  let quiescent = ref 0 in
  let max_depth = ref 0 in
  let agreement_violations = ref 0 in
  let convergence_violations = ref 0 in
  let rec dfs choices =
    let world = replay scenario choices in
    let fp = fingerprint world in
    if not (Hashtbl.mem visited fp) then begin
      Hashtbl.replace visited fp ();
      incr states;
      if !states > max_states then failwith "Explore.check: state budget exceeded";
      max_depth := max !max_depth (List.length choices);
      if !(world.inflight) = [] then begin
        incr quiescent;
        let quorums = Array.to_list (Array.map QS.last_quorum world.nodes) in
        if not (Qs_core.Spec.agreement quorums) then incr agreement_violations;
        let m0 = QS.matrix world.nodes.(0) in
        if
          not
            (Array.for_all (fun node -> Matrix.equal m0 (QS.matrix node)) world.nodes)
        then incr convergence_violations
      end
      else
        List.iter (fun idx -> dfs (choices @ [ idx ])) (distinct_choices world)
    end
  in
  dfs [];
  {
    states = !states;
    quiescent = !quiescent;
    max_depth = !max_depth;
    agreement_violations = !agreement_violations;
    convergence_violations = !convergence_violations;
  }
