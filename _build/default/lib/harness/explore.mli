(** Bounded model checking of Algorithm 1: exhaustive exploration of message
    delivery interleavings.

    The paper's Agreement argument (Section VI-C) rests on the [suspected]
    matrix being an eventually-consistent max-merge structure: whatever
    order UPDATEs arrive in, correct processes converge to the same state
    and hence the same quorum. This module {e checks} that, for a bounded
    scenario: given a set of suspicion injections, every possible
    interleaving of message deliveries is explored (depth-first with
    memoization on the global state), and at every quiescent state —
    no messages in flight — all processes must agree on the quorum and hold
    identical matrices.

    Exploration replays delivery-choice prefixes from scratch (the nodes are
    mutable), so it is exponential in scenario size; scenarios with a
    handful of injections on 3–4 processes explore in well under a second
    and cover thousands of distinct orderings that the simulator's single
    schedule never would. *)

type scenario = {
  n : int;
  f : int;
  injections : (int * int list) list;
      (** (process, suspects) — ⟨SUSPECTED⟩ events applied before any
          delivery *)
}

type result = {
  states : int;  (** distinct global states visited *)
  quiescent : int;  (** quiescent states reached *)
  max_depth : int;  (** longest delivery sequence *)
  agreement_violations : int;
  convergence_violations : int;  (** quiescent states with unequal matrices *)
}

val check : ?max_states:int -> scenario -> result
(** Raises [Failure] if [max_states] (default 200,000) is exceeded — the
    scenario is too big to explore, not a correctness verdict. *)
