module Fcluster = Qs_follower.Fcluster
module Follower_select = Qs_follower.Follower_select
module QS = Qs_core.Quorum_select

type result = {
  total_issued : int;
  max_per_epoch : int;
  epochs : int;
  injections : int;
}

let run ~n ~f =
  if n <= 3 * f then invalid_arg "Leader_attack.run: requires n > 3f";
  let config = { QS.n; f } in
  let cluster = Fcluster.create config in
  let faulty = List.init f (fun i -> i) in
  let correct = List.filter (fun p -> not (List.mem p faulty)) (List.init n Fun.id) in
  let is_faulty p = List.mem p faulty in
  let used = Hashtbl.create 32 in
  let observer = Fcluster.node cluster (List.hd correct) in
  (* Track per-epoch issue counts at the observer. *)
  let issues_by_epoch = Hashtbl.create 8 in
  let note_issues () =
    let e = Follower_select.epoch observer in
    let issued = Follower_select.quorums_issued observer in
    Hashtbl.replace issues_by_epoch e issued
  in
  let drain () =
    Fcluster.run_until_quiet cluster;
    (* A changed leader leaves FOLLOWERS expectations open only if the new
       leader is crashed; nobody is crashed here, so drain is enough. *)
    note_issues ()
  in
  let injections = ref 0 in
  let continue = ref true in
  while !continue do
    drain ();
    match Fcluster.agreed cluster ~correct with
    | None -> continue := false (* waiting on an expectation: stop *)
    | Some (leader, quorum) ->
      (* Find an unused leader-member pair with a faulty endpoint. *)
      let members = List.filter (fun p -> p <> leader) quorum in
      let pick =
        List.find_opt
          (fun m ->
            let key = (min m leader, max m leader) in
            (is_faulty m || is_faulty leader) && not (Hashtbl.mem used key))
          members
      in
      (match pick with
       | None -> continue := false
       | Some m ->
         let key = (min m leader, max m leader) in
         Hashtbl.replace used key ();
         incr injections;
         (* A faulty member m falsely suspects a correct leader, or a correct
            member m suspects a faulty leader: either way the suspicion
            appears at m's failure detector. *)
         Fcluster.fd_suspect cluster ~at:m [ leader ];
         Fcluster.fd_suspect cluster ~at:m [])
  done;
  drain ();
  (* Per-epoch deltas from the cumulative samples. *)
  let samples =
    List.sort compare (Hashtbl.fold (fun e c acc -> (e, c) :: acc) issues_by_epoch [])
  in
  let max_per_epoch, _ =
    List.fold_left
      (fun (best, prev) (_, cumulative) -> (max best (cumulative - prev), cumulative))
      (0, 0) samples
  in
  {
    total_issued = Fcluster.max_issued cluster ~correct;
    max_per_epoch;
    epochs = Follower_select.epochs_entered observer;
    injections = !injections;
  }
