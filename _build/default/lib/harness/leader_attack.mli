(** Adversarial driver for Follower Selection (experiment E4).

    The strongest model-respecting attack on Algorithm 2: a set of faulty
    processes keeps suspicions flowing between the current leader and a
    quorum member (a faulty member falsely suspects a correct leader; a
    correct member "earns" a suspicion of a faulty leader). Theorem 9 bounds
    the quorums issued per epoch by [3f + 1]; Corollary 10 bounds the total
    after stabilization by [6f + 2]. *)

type result = {
  total_issued : int;  (** max over correct processes *)
  max_per_epoch : int;  (** max quorums issued within one epoch *)
  epochs : int;  (** epochs entered at the observer *)
  injections : int;
}

val run : n:int -> f:int -> result
(** Faulty = [{0 .. f-1}]. Requires [n > 3f]. The attack stops when no
    unused leader–member suspicion with a faulty endpoint remains. *)
