type t = { label : string; ok : bool }

let make label ok = { label; ok }

let all_ok vs = List.for_all (fun v -> v.ok) vs

let pp ppf v = Format.fprintf ppf "  [%s] %s" (if v.ok then "ok" else "FAIL") v.label

let print_all vs =
  List.iter (fun v -> Format.printf "%a@." pp v) vs;
  Format.printf "@."
