(** Pass/fail records attached to each reproduced paper artifact. *)

type t = { label : string; ok : bool }

val make : string -> bool -> t

val all_ok : t list -> bool

val pp : Format.formatter -> t -> unit

val print_all : t list -> unit
