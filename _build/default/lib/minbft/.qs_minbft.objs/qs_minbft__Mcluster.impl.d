lib/minbft/mcluster.ml: Array Hashtbl List Mmsg Mreplica Qs_core Qs_crypto Qs_sim Usig
