lib/minbft/mcluster.mli: Mmsg Mreplica Qs_core Qs_sim
