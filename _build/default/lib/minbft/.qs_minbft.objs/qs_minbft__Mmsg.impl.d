lib/minbft/mmsg.ml: Printf Qs_core Qs_crypto Usig
