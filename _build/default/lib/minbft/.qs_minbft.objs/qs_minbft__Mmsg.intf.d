lib/minbft/mmsg.mli: Qs_core Qs_crypto Usig
