lib/minbft/mreplica.ml: Array Fun Hashtbl List Mmsg Option Qs_core Qs_crypto Qs_fd Qs_sim Usig
