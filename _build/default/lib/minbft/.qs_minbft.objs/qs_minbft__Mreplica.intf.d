lib/minbft/mreplica.mli: Mmsg Qs_core Qs_crypto Qs_fd Qs_sim Usig
