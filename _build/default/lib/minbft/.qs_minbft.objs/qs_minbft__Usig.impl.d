lib/minbft/usig.ml: Array Printf Qs_core Qs_crypto
