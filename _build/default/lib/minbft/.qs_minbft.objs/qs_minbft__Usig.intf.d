lib/minbft/usig.mli: Qs_core Qs_crypto
