module Sim = Qs_sim.Sim
module Network = Qs_sim.Network
module Stime = Qs_sim.Stime
module Pid = Qs_core.Pid

type t = {
  sim : Sim.t;
  net : Mmsg.t Network.t;
  replicas : Mreplica.t array;
  config : Mreplica.config;
  mutable next_rid : int;
  executions : (int * int, Pid.t list ref) Hashtbl.t;
  submit_times : (int * int, Stime.t) Hashtbl.t;
  commit_times : (int * int, Stime.t) Hashtbl.t;
}

let create ?(seed = 1L) ?(delay = Network.Fixed (Stime.of_ms 1)) config =
  let sim = Sim.create ~seed () in
  let net = Network.create ~sim ~n:config.Mreplica.n ~delay ~fifo:true () in
  let auth = Qs_crypto.Auth.create config.Mreplica.n in
  let usig_directory, usigs = Usig.setup ~n:config.Mreplica.n in
  let executions = Hashtbl.create 64 in
  let commit_times = Hashtbl.create 64 in
  let threshold = config.Mreplica.f + 1 in
  let replicas =
    Array.init config.Mreplica.n (fun me ->
        Mreplica.create config ~me ~auth ~usig:usigs.(me) ~usig_directory ~sim
          ~net_send:(fun ~dst msg -> Network.send net ~src:me ~dst msg)
          ~on_execute:(fun request ->
            let key = (request.Mmsg.client, request.Mmsg.rid) in
            let cell =
              match Hashtbl.find_opt executions key with
              | Some c -> c
              | None ->
                let c = ref [] in
                Hashtbl.replace executions key c;
                c
            in
            if not (List.mem me !cell) then begin
              cell := me :: !cell;
              if List.length !cell = threshold && not (Hashtbl.mem commit_times key) then
                Hashtbl.replace commit_times key (Sim.now sim)
            end)
          ())
  in
  Array.iteri
    (fun i replica -> Network.set_handler net i (fun ~src msg -> Mreplica.receive replica ~src msg))
    replicas;
  {
    sim;
    net;
    replicas;
    config;
    next_rid = 0;
    executions;
    submit_times = Hashtbl.create 64;
    commit_times;
  }

let sim t = t.sim

let net t = t.net

let replica t i = t.replicas.(i)

let set_fault t i fault = Mreplica.set_fault t.replicas.(i) fault

let executed_by t (request : Mmsg.request) =
  match Hashtbl.find_opt t.executions (request.Mmsg.client, request.Mmsg.rid) with
  | Some cell -> List.sort compare !cell
  | None -> []

let is_committed t request =
  List.length (executed_by t request) >= t.config.Mreplica.f + 1

let submit t ?(client = 0) ?resubmit_every op =
  let rid = t.next_rid in
  t.next_rid <- t.next_rid + 1;
  let request = { Mmsg.client; rid; op } in
  Hashtbl.replace t.submit_times (client, rid) (Sim.now t.sim);
  let deliver () = Array.iter (fun r -> Mreplica.submit r request) t.replicas in
  Sim.schedule t.sim ~delay:0 deliver;
  (match resubmit_every with
   | None -> ()
   | Some period ->
     let rec again () =
       if not (is_committed t request) then begin
         deliver ();
         Sim.schedule t.sim ~delay:period again
       end
     in
     Sim.schedule t.sim ~delay:period again);
  request

let run ?until ?max_events t = Sim.run ?until ?max_events t.sim

let message_count t = Network.sent_count t.net

let commit_latency t (request : Mmsg.request) =
  let key = (request.Mmsg.client, request.Mmsg.rid) in
  match (Hashtbl.find_opt t.submit_times key, Hashtbl.find_opt t.commit_times key) with
  | Some s, Some c -> Some (Stime.( - ) c s)
  | _ -> None
