(** A MinBFT cluster in the simulator. *)

type t

val create :
  ?seed:int64 -> ?delay:Qs_sim.Network.delay_model -> Mreplica.config -> t

val sim : t -> Qs_sim.Sim.t

val net : t -> Mmsg.t Qs_sim.Network.t

val replica : t -> Qs_core.Pid.t -> Mreplica.t

val set_fault : t -> Qs_core.Pid.t -> Mreplica.fault -> unit

val submit :
  t -> ?client:int -> ?resubmit_every:Qs_sim.Stime.t -> string -> Mmsg.request

val run : ?until:Qs_sim.Stime.t -> ?max_events:int -> t -> unit

val executed_by : t -> Mmsg.request -> Qs_core.Pid.t list

val is_committed : t -> Mmsg.request -> bool
(** Executed by at least [f+1] replicas (the n−f = f+1 commit rule). *)

val message_count : t -> int

val commit_latency : t -> Mmsg.request -> Qs_sim.Stime.t option
(** Time from submission until [f+1] replicas executed the request. *)
