module Auth = Qs_crypto.Auth

type request = { client : int; rid : int; op : string }

let encode_request r = Printf.sprintf "REQ|%d|%d|%s" r.client r.rid r.op

let digest_of ~view ~slot request =
  Qs_crypto.Sha256.digest_string (Printf.sprintf "BIND|%d|%d|%s" view slot (encode_request request))

type prepare = { pview : int; pslot : int; prequest : request; pui : Usig.ui }

type body =
  | Prepare of prepare
  | Commit of { cprepare : prepare; cui : Usig.ui }
  | Qsel of Qs_core.Msg.t

type t = { sender : Qs_core.Pid.t; body : body; signature : Auth.signature }

let hex = Qs_crypto.Sha256.hex

let encode_ui (ui : Usig.ui) =
  Printf.sprintf "%d:%d:%s" ui.Usig.origin ui.Usig.counter (hex ui.Usig.usig_sig)

let encode_prepare p =
  Printf.sprintf "P|%d|%d|%s|%s" p.pview p.pslot (encode_request p.prequest) (encode_ui p.pui)

let commit_digest p ~committer =
  Qs_crypto.Sha256.digest_string (Printf.sprintf "CMT|%d|%s" committer (encode_prepare p))

let encode_body = function
  | Prepare p -> "P:" ^ encode_prepare p
  | Commit { cprepare; cui } -> "C:" ^ encode_prepare cprepare ^ "|" ^ encode_ui cui
  | Qsel m -> "Q:" ^ Qs_core.Msg.encode m.Qs_core.Msg.update ^ "#" ^ hex m.Qs_core.Msg.signature

let seal auth ~sender body =
  { sender; body; signature = Auth.sign auth ~signer:sender (encode_body body) }

let verify auth t =
  t.sender >= 0
  && t.sender < Auth.universe auth
  && Auth.verify auth ~signer:t.sender (encode_body t.body) t.signature

let tag = function
  | Prepare _ -> "PREPARE"
  | Commit _ -> "COMMIT"
  | Qsel _ -> "QSEL-UPDATE"
