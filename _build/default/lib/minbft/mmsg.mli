(** MinBFT-style wire messages.

    Two phases instead of PBFT's three: the trusted counter's uniqueness
    makes equivocation impossible by construction, so the PRE-PREPARE/
    PREPARE distinction collapses. A PREPARE carries the primary's UI over
    the request binding; a COMMIT carries the committer's own UI over the
    primary's certificate. *)

type request = { client : int; rid : int; op : string }

val digest_of : view:int -> slot:int -> request -> string

type prepare = {
  pview : int;
  pslot : int;
  prequest : request;
  pui : Usig.ui;  (** primary's trusted certificate over the binding *)
}

type body =
  | Prepare of prepare
  | Commit of { cprepare : prepare; cui : Usig.ui (** committer's certificate *) }
  | Qsel of Qs_core.Msg.t

type t = {
  sender : Qs_core.Pid.t;
  body : body;
  signature : Qs_crypto.Auth.signature;
}

val commit_digest : prepare -> committer:Qs_core.Pid.t -> string
(** What a committer's UI certifies: the primary certificate it answers. *)

val seal : Qs_crypto.Auth.t -> sender:int -> body -> t

val verify : Qs_crypto.Auth.t -> t -> bool

val tag : body -> string
