module Auth = Qs_crypto.Auth
module Pid = Qs_core.Pid

type ui = { origin : Pid.t; counter : int; usig_sig : Auth.signature }

(* The trusted components get their own key universe, derived from a master
   secret distinct from the replicas' message keys: compromising a replica
   does not compromise its USIG. *)
type directory = Auth.t

type t = { id : Pid.t; keys : Auth.t; mutable last : int }

let binding ~origin ~counter ~digest =
  Printf.sprintf "USIG|%d|%d|%s" origin counter (Qs_crypto.Sha256.hex digest)

let setup ~n =
  let keys = Auth.create ~master:"qsel-usig-trusted-master" n in
  (keys, Array.init n (fun id -> { id; keys; last = 0 }))

let certify t ~digest =
  t.last <- t.last + 1;
  {
    origin = t.id;
    counter = t.last;
    usig_sig = Auth.sign t.keys ~signer:t.id (binding ~origin:t.id ~counter:t.last ~digest);
  }

let counter t = t.last

let verify directory ~digest ui =
  ui.origin >= 0
  && ui.origin < Auth.universe directory
  && Auth.verify directory ~signer:ui.origin
       (binding ~origin:ui.origin ~counter:ui.counter ~digest)
       ui.usig_sig

type monitor = { directory : directory; expected : int array }

let monitor directory ~n = { directory; expected = Array.make n 1 }

let expected_next m origin = m.expected.(origin)

let resync m origin counter = m.expected.(origin) <- counter

let accept m ~digest ui =
  if not (verify m.directory ~digest ui) then `Bad_signature
  else if ui.counter < m.expected.(ui.origin) then `Replay
  else if ui.counter > m.expected.(ui.origin) then `Gap
  else begin
    m.expected.(ui.origin) <- ui.counter + 1;
    `Ok
  end
