(** Simulated trusted monotonic counter (USIG).

    The paper's introduction cites BFT systems that "use trusted components
    or similar assumptions to reduce the total number of replicas to
    n = 2f+1" [4, 5]. The component in question (MinBFT's USIG — Unique
    Sequential Identifier Generator) is a piece of trusted hardware we do
    not have, so per the substitution rule (DESIGN.md §2) we simulate it: a
    tamper-proof per-replica counter that signs ⟨replica, counter, digest⟩
    tuples with a key the (possibly Byzantine) replica itself cannot touch.

    The two properties everything rests on:
    - {e uniqueness}: one counter value is bound to at most one digest (the
      counter increments on every certification — even a Byzantine replica
      cannot get two messages certified with the same value);
    - {e monotonicity}: verifiers accept a replica's certificates only in
      strict counter order, so omission or reordering is evident.

    [create] hands out the only handle able to advance a replica's counter;
    the simulation's Byzantine behaviors never touch other replicas'
    handles, which models the hardware boundary. *)

type ui = {
  origin : Qs_core.Pid.t;
  counter : int;  (** starts at 1, strictly sequential *)
  usig_sig : Qs_crypto.Auth.signature;
}
(** A unique sequential identifier certifying a message digest. *)

type directory
(** Verification keys of all replicas' trusted components. *)

type t
(** One replica's trusted component (the only way to advance its counter). *)

val setup : n:int -> directory * t array
(** Provision [n] trusted components and the shared verification
    directory. *)

val certify : t -> digest:string -> ui
(** Bind the next counter value to [digest]. *)

val counter : t -> int
(** Last value issued (0 initially). *)

val verify : directory -> digest:string -> ui -> bool
(** Signature check only (stateless). *)

type monitor
(** Per-verifier monotonicity tracking: accept each origin's certificates
    in strict order. *)

val monitor : directory -> n:int -> monitor

val accept : monitor -> digest:string -> ui -> [ `Ok | `Gap | `Replay | `Bad_signature ]
(** [`Ok] advances the expected counter for [ui.origin]; [`Gap] means a
    certificate was skipped (an omission upstream), [`Replay] a reused or
    stale counter. *)

val expected_next : monitor -> Qs_core.Pid.t -> int

val resync : monitor -> Qs_core.Pid.t -> int -> unit
(** Reset the expected counter for one origin (used after a configuration
    change, when certificates sent to other receivers were legitimately
    never seen here). Gap evidence across the resync is forfeited. *)
