lib/pbft/pcluster.ml: Array Hashtbl List Pmsg Preplica Qs_core Qs_crypto Qs_sim
