lib/pbft/pcluster.mli: Pmsg Preplica Qs_core Qs_sim
