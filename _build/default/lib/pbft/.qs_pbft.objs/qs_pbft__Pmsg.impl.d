lib/pbft/pmsg.ml: List Printf Qs_core Qs_crypto String
