lib/pbft/pmsg.mli: Qs_core Qs_crypto
