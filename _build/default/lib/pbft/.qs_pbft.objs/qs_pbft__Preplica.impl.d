lib/pbft/preplica.ml: Fun Hashtbl List Option Pmsg Qs_core Qs_crypto Qs_fd Qs_sim Qs_stdx
