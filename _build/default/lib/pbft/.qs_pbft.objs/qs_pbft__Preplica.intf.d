lib/pbft/preplica.mli: Pmsg Qs_core Qs_crypto Qs_fd Qs_sim
