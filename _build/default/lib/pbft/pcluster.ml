module Sim = Qs_sim.Sim
module Network = Qs_sim.Network
module Stime = Qs_sim.Stime
module Pid = Qs_core.Pid

type t = {
  sim : Sim.t;
  net : Pmsg.t Network.t;
  replicas : Preplica.t array;
  config : Preplica.config;
  mutable next_rid : int;
  executions : (int * int, Pid.t list ref) Hashtbl.t;
  submit_times : (int * int, Stime.t) Hashtbl.t;
  commit_times : (int * int, Stime.t) Hashtbl.t;
}

let create ?(seed = 1L) ?(delay = Network.Fixed (Stime.of_ms 1)) config =
  let sim = Sim.create ~seed () in
  let net = Network.create ~sim ~n:config.Preplica.n ~delay ~fifo:true () in
  let auth = Qs_crypto.Auth.create config.Preplica.n in
  let executions = Hashtbl.create 64 in
  let commit_times = Hashtbl.create 64 in
  let threshold = (2 * config.Preplica.f) + 1 in
  let replicas =
    Array.init config.Preplica.n (fun me ->
        Preplica.create config ~me ~auth ~sim
          ~net_send:(fun ~dst msg -> Network.send net ~src:me ~dst msg)
          ~on_execute:(fun ~slot:_ request ->
            let key = (request.Pmsg.client, request.Pmsg.rid) in
            let cell =
              match Hashtbl.find_opt executions key with
              | Some c -> c
              | None ->
                let c = ref [] in
                Hashtbl.replace executions key c;
                c
            in
            if not (List.mem me !cell) then begin
              cell := me :: !cell;
              if List.length !cell = threshold && not (Hashtbl.mem commit_times key) then
                Hashtbl.replace commit_times key (Sim.now sim)
            end)
          ())
  in
  Array.iteri
    (fun i replica ->
      Network.set_handler net i (fun ~src msg -> Preplica.receive replica ~src msg))
    replicas;
  {
    sim;
    net;
    replicas;
    config;
    next_rid = 0;
    executions;
    submit_times = Hashtbl.create 64;
    commit_times;
  }

let sim t = t.sim

let net t = t.net

let replica t i = t.replicas.(i)

let set_fault t i fault = Preplica.set_fault t.replicas.(i) fault

let executed_by t (request : Pmsg.request) =
  match Hashtbl.find_opt t.executions (request.Pmsg.client, request.Pmsg.rid) with
  | Some cell -> List.sort compare !cell
  | None -> []

let is_globally_committed t request =
  List.length (executed_by t request) >= (2 * t.config.Preplica.f) + 1

let submit t ?(client = 0) ?resubmit_every op =
  let rid = t.next_rid in
  t.next_rid <- t.next_rid + 1;
  let request = { Pmsg.client; rid; op } in
  Hashtbl.replace t.submit_times (client, rid) (Sim.now t.sim);
  let deliver () = Array.iter (fun r -> Preplica.submit r request) t.replicas in
  Sim.schedule t.sim ~delay:0 deliver;
  (match resubmit_every with
   | None -> ()
   | Some period ->
     let rec again () =
       if not (is_globally_committed t request) then begin
         deliver ();
         Sim.schedule t.sim ~delay:period again
       end
     in
     Sim.schedule t.sim ~delay:period again);
  request

let run ?until ?max_events t = Sim.run ?until ?max_events t.sim

let rec is_prefix a b =
  match (a, b) with
  | [], _ -> true
  | _, [] -> false
  | x :: a', y :: b' -> x = y && is_prefix a' b'

let consistent t ~correct =
  let histories = List.map (fun p -> Preplica.executed t.replicas.(p)) correct in
  List.for_all
    (fun h1 -> List.for_all (fun h2 -> is_prefix h1 h2 || is_prefix h2 h1) histories)
    histories

let message_count t = Network.sent_count t.net

let max_view t = Array.fold_left (fun acc r -> max acc (Preplica.view r)) 0 t.replicas

let commit_latency t (request : Pmsg.request) =
  let key = (request.Pmsg.client, request.Pmsg.rid) in
  match (Hashtbl.find_opt t.submit_times key, Hashtbl.find_opt t.commit_times key) with
  | Some s, Some c -> Some (Stime.( - ) c s)
  | _ -> None
