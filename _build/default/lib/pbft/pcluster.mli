(** A PBFT cluster in the simulator (mirrors {!Qs_xpaxos.Xcluster}). *)

type t

val create :
  ?seed:int64 -> ?delay:Qs_sim.Network.delay_model -> Preplica.config -> t

val sim : t -> Qs_sim.Sim.t

val net : t -> Pmsg.t Qs_sim.Network.t

val replica : t -> Qs_core.Pid.t -> Preplica.t

val set_fault : t -> Qs_core.Pid.t -> Preplica.fault -> unit

val submit :
  t -> ?client:int -> ?resubmit_every:Qs_sim.Stime.t -> string -> Pmsg.request

val run : ?until:Qs_sim.Stime.t -> ?max_events:int -> t -> unit

val executed_by : t -> Pmsg.request -> Qs_core.Pid.t list

val is_globally_committed : t -> Pmsg.request -> bool
(** Executed by at least [2f+1] replicas. *)

val consistent : t -> correct:Qs_core.Pid.t list -> bool

val message_count : t -> int

val max_view : t -> int

val commit_latency : t -> Pmsg.request -> Qs_sim.Stime.t option
(** Time from submission until [2f+1] replicas executed the request. *)
