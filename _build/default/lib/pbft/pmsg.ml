module Auth = Qs_crypto.Auth

type request = { client : int; rid : int; op : string }

let encode_request r = Printf.sprintf "REQ|%d|%d|%s" r.client r.rid r.op

let digest r = Qs_crypto.Sha256.digest_string (encode_request r)

type pre_prepare = { view : int; slot : int; request : request }

type signed_pre_prepare = { pp : pre_prepare; ppsig : Auth.signature }

type entry = {
  eview : int;
  eslot : int;
  erequest : request;
  ecommitted : bool;
  epsig : Auth.signature;
}

type body =
  | Pre_prepare of signed_pre_prepare
  | Prepare of { view : int; slot : int; pdigest : string }
  | Commit of { view : int; slot : int; cdigest : string }
  | View_change of { vview : int; vlog : entry list }
  | New_view of { nview : int; nlog : entry list }
  | Qsel of Qs_core.Msg.t

type t = { sender : Qs_core.Pid.t; body : body; signature : Auth.signature }

let hex = Qs_crypto.Sha256.hex

let encode_pre_prepare pp =
  Printf.sprintf "PP|%d|%d|%s" pp.view pp.slot (encode_request pp.request)

let sign_pre_prepare auth ~primary pp =
  { pp; ppsig = Auth.sign auth ~signer:primary (encode_pre_prepare pp) }

let verify_pre_prepare auth ~primary spp =
  primary >= 0
  && primary < Auth.universe auth
  && Auth.verify auth ~signer:primary (encode_pre_prepare spp.pp) spp.ppsig

let encode_entry e =
  Printf.sprintf "E|%d|%d|%s|%b|%s" e.eview e.eslot (encode_request e.erequest)
    e.ecommitted (hex e.epsig)

let encode_body = function
  | Pre_prepare spp -> "PP:" ^ encode_pre_prepare spp.pp ^ "#" ^ hex spp.ppsig
  | Prepare { view; slot; pdigest } -> Printf.sprintf "P:%d|%d|%s" view slot (hex pdigest)
  | Commit { view; slot; cdigest } -> Printf.sprintf "C:%d|%d|%s" view slot (hex cdigest)
  | View_change { vview; vlog } ->
    Printf.sprintf "VC:%d|%s" vview (String.concat ";" (List.map encode_entry vlog))
  | New_view { nview; nlog } ->
    Printf.sprintf "NV:%d|%s" nview (String.concat ";" (List.map encode_entry nlog))
  | Qsel m -> "Q:" ^ Qs_core.Msg.encode m.Qs_core.Msg.update ^ "#" ^ hex m.Qs_core.Msg.signature

let seal auth ~sender body =
  { sender; body; signature = Auth.sign auth ~signer:sender (encode_body body) }

let verify auth t =
  t.sender >= 0
  && t.sender < Auth.universe auth
  && Auth.verify auth ~signer:t.sender (encode_body t.body) t.signature

let tag = function
  | Pre_prepare _ -> "PRE-PREPARE"
  | Prepare _ -> "PREPARE"
  | Commit _ -> "COMMIT"
  | View_change _ -> "VIEW-CHANGE"
  | New_view _ -> "NEW-VIEW"
  | Qsel _ -> "QSEL-UPDATE"
