(** PBFT wire messages.

    Classic three-phase pattern (Castro & Liskov [1]): the primary's
    PRE-PREPARE binds a request to a slot; replicas agree with PREPAREs and
    confirm with COMMITs, both carrying only the request digest. SYNC /
    NEW-CONFIG carry log state across view or active-set changes, with the
    original pre-prepare signatures as provenance (same scheme as the XPaxos
    substrate). *)

type request = { client : int; rid : int; op : string }

val digest : request -> string
(** SHA-256 of the canonical request encoding. *)

type pre_prepare = { view : int; slot : int; request : request }

type signed_pre_prepare = {
  pp : pre_prepare;
  ppsig : Qs_crypto.Auth.signature;  (** primary-of-view signature *)
}

type entry = {
  eview : int;
  eslot : int;
  erequest : request;
  ecommitted : bool;
  epsig : Qs_crypto.Auth.signature;
}

type body =
  | Pre_prepare of signed_pre_prepare
  | Prepare of { view : int; slot : int; pdigest : string }
  | Commit of { view : int; slot : int; cdigest : string }
  | View_change of { vview : int; vlog : entry list }
  | New_view of { nview : int; nlog : entry list }
  | Qsel of Qs_core.Msg.t

type t = {
  sender : Qs_core.Pid.t;
  body : body;
  signature : Qs_crypto.Auth.signature;
}

val sign_pre_prepare :
  Qs_crypto.Auth.t -> primary:int -> pre_prepare -> signed_pre_prepare

val verify_pre_prepare :
  Qs_crypto.Auth.t -> primary:int -> signed_pre_prepare -> bool

val seal : Qs_crypto.Auth.t -> sender:int -> body -> t

val verify : Qs_crypto.Auth.t -> t -> bool

val tag : body -> string
