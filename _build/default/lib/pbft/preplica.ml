module Sim = Qs_sim.Sim
module Detector = Qs_fd.Detector
module Timeout = Qs_fd.Timeout
module QS = Qs_core.Quorum_select
module Pid = Qs_core.Pid
module Auth = Qs_crypto.Auth

type participation = Full | Selected

type config = {
  n : int;
  f : int;
  participation : participation;
  initial_timeout : Qs_sim.Stime.t;
  timeout_strategy : Timeout.strategy;
}

type fault = Honest | Mute | Omit_to of Pid.t list

type slot_state = {
  mutable spp : Pmsg.signed_pre_prepare option;
  mutable prepares : Pid.t list;  (* matching digests only *)
  mutable commits : Pid.t list;
  mutable prepared : bool;
  mutable committed : bool;
  mutable executed : bool;
}

type phase = Normal | Collecting of (Pid.t, Pmsg.entry list) Hashtbl.t | Awaiting_nv

type t = {
  config : config;
  me : Pid.t;
  auth : Auth.t;
  sim : Sim.t;
  net_send : dst:Pid.t -> Pmsg.t -> unit;
  on_execute : slot:int -> Pmsg.request -> unit;
  mutable fd : Pmsg.t Detector.t option;
  mutable qsel : QS.t option;
  mutable view : int;
  mutable active : Pid.t list; (* participants: all (Full) or the quorum *)
  slots : (int, slot_state) Hashtbl.t;
  mutable max_slot : int;
  mutable exec_cursor : int;
  proposed : (int * int, int) Hashtbl.t;
  awaiting_pp : (int * int, unit) Hashtbl.t;
  mutable phase : phase;
  mutable fault : fault;
  mutable view_changes : int;
  mutable last_vc_view : int;
  (* VIEW-CHANGE messages for views we have not entered yet (our own quorum
     selection may lag the senders'): keyed (view, src), latest kept. *)
  pending_vcs : (int * Pid.t, Pmsg.entry list) Hashtbl.t;
}

let me t = t.me

let fd t = Option.get t.fd

let set_fault t fault = t.fault <- fault

let view t = t.view

let participants t = t.active

let primary t =
  match t.config.participation with
  | Full -> t.view mod t.config.n
  | Selected -> ( match t.active with p :: _ -> p | [] -> assert false)

let is_primary t = primary t = t.me

let in_active t = List.mem t.me t.active

let view_changes t = t.view_changes

let detector = fd

let quorum_selector t = t.qsel

(* Selected-mode views map deterministically to active sets through the
   lexicographic enumeration of q-subsets (same scheme as the XPaxos
   substrate), so every replica derives the same view number for the same
   quorum-selection output and view changes line up without extra
   agreement. *)
let q_of t = t.config.n - t.config.f

let group_of t view =
  Qs_stdx.Combin.unrank t.config.n (q_of t)
    (view mod Qs_stdx.Combin.choose t.config.n (q_of t))

let view_for t ~at_least ~group =
  let total = Qs_stdx.Combin.choose t.config.n (q_of t) in
  let rank = Qs_stdx.Combin.rank t.config.n group in
  let base = at_least / total * total in
  let candidate = base + rank in
  if candidate >= at_least then candidate else candidate + total

let fault_allows t dst =
  match t.fault with
  | Honest -> true
  | Mute -> false
  | Omit_to victims -> not (List.mem dst victims)

let send t ~dst body =
  if dst = t.me || fault_allows t dst then
    t.net_send ~dst (Pmsg.seal t.auth ~sender:t.me body)

let send_active t body =
  List.iter (fun dst -> if dst <> t.me then send t ~dst body) t.active

let send_everyone t body =
  for dst = 0 to t.config.n - 1 do
    if dst <> t.me then send t ~dst body
  done

let send_all_including_self t body =
  for dst = 0 to t.config.n - 1 do
    send t ~dst body
  done

let slot_state t slot =
  match Hashtbl.find_opt t.slots slot with
  | Some s -> s
  | None ->
    let s =
      {
        spp = None;
        prepares = [];
        commits = [];
        prepared = false;
        committed = false;
        executed = false;
      }
    in
    Hashtbl.replace t.slots slot s;
    if slot > t.max_slot then t.max_slot <- slot;
    s

(* ------------------------------------------------------------------ *)
(* Expectations (Selected mode only: Full-mode PBFT masks instead) *)

let selected t = t.config.participation = Selected

let expect_prepare t ~from ~view ~slot =
  Detector.expect (fd t) ~from ~tag:"prepare" (fun m ->
      match m.Pmsg.body with
      | Pmsg.Prepare p -> p.view = view && p.slot = slot
      | _ -> false)

let expect_commit t ~from ~view ~slot =
  Detector.expect (fd t) ~from ~tag:"commit" (fun m ->
      match m.Pmsg.body with
      | Pmsg.Commit c -> c.view = view && c.slot = slot
      | _ -> false)

let expect_pre_prepare_request t ~from ~view request =
  Detector.expect (fd t) ~from ~tag:"pre-prepare" (fun m ->
      match m.Pmsg.body with
      | Pmsg.Pre_prepare spp ->
        spp.Pmsg.pp.Pmsg.view >= view && spp.Pmsg.pp.Pmsg.request = request
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Commit pipeline *)

let try_execute t =
  let continue = ref true in
  while !continue do
    match Hashtbl.find_opt t.slots t.exec_cursor with
    | Some ({ committed = true; executed = false; spp = Some spp; _ } as s) ->
      s.executed <- true;
      t.on_execute ~slot:t.exec_cursor spp.Pmsg.pp.Pmsg.request;
      t.exec_cursor <- t.exec_cursor + 1
    | _ -> continue := false
  done

let record_vote votes voter = if List.mem voter votes then votes else voter :: votes

let check_commit t slot (s : slot_state) =
  if s.prepared && (not s.committed) && List.length s.commits >= (2 * t.config.f) + 1
  then begin
    s.committed <- true;
    ignore slot;
    try_execute t
  end

let check_prepared t slot (s : slot_state) =
  if (not s.prepared) && s.spp <> None && List.length s.prepares >= 2 * t.config.f
  then begin
    s.prepared <- true;
    (* Prepared: announce COMMIT to the participants, count our own vote. *)
    (match s.spp with
     | Some spp ->
       let d = Pmsg.digest spp.Pmsg.pp.Pmsg.request in
       send_active t (Pmsg.Commit { view = t.view; slot; cdigest = d });
       s.commits <- record_vote s.commits t.me;
       if selected t then
         List.iter
           (fun k -> if k <> t.me then expect_commit t ~from:k ~view:t.view ~slot)
           t.active
     | None -> ());
    check_commit t slot s
  end

let adopt_pre_prepare t slot spp =
  let s = slot_state t slot in
  if s.spp = None then begin
    s.spp <- Some spp;
    let d = Pmsg.digest spp.Pmsg.pp.Pmsg.request in
    if not (is_primary t) then begin
      send_active t (Pmsg.Prepare { view = t.view; slot; pdigest = d });
      s.prepares <- record_vote s.prepares t.me
    end;
    if selected t then begin
      List.iter
        (fun k ->
          if k <> t.me && k <> primary t then expect_prepare t ~from:k ~view:t.view ~slot)
        t.active
    end;
    check_prepared t slot s
  end

let handle_pre_prepare t ~src spp =
  let pp = spp.Pmsg.pp in
  if
    in_active t && src = primary t && pp.Pmsg.view = t.view
    && Pmsg.verify_pre_prepare t.auth ~primary:src spp
  then begin
    let s = slot_state t pp.Pmsg.slot in
    match s.spp with
    | Some stored
      when stored.Pmsg.pp.Pmsg.view = pp.Pmsg.view
           && stored.Pmsg.pp.Pmsg.request <> pp.Pmsg.request ->
      (* Two signed bindings for one view/slot: primary equivocation. *)
      Detector.detected (fd t) src
    | Some stored when stored.Pmsg.pp.Pmsg.view < pp.Pmsg.view && not s.committed ->
      (* Re-proposal after a view change: restart the slot's voting. *)
      s.spp <- None;
      s.prepares <- [];
      s.commits <- [];
      s.prepared <- false;
      adopt_pre_prepare t pp.Pmsg.slot spp
    | Some _ -> ()
    | None -> adopt_pre_prepare t pp.Pmsg.slot spp
  end

(* A PREPARE/COMMIT vote counts only against a pre-prepare of the same view
   with the same digest — stale-view state must not mix into new-view
   certificates. *)
let vote_matches (s : slot_state) ~view d =
  match s.spp with
  | Some spp ->
    spp.Pmsg.pp.Pmsg.view = view && Pmsg.digest spp.Pmsg.pp.Pmsg.request = d
  | None -> false

let handle_prepare t ~src (view, slot, d) =
  if in_active t && List.mem src t.active && view = t.view && src <> primary t then begin
    let s = slot_state t slot in
    if vote_matches s ~view d then begin
      s.prepares <- record_vote s.prepares src;
      check_prepared t slot s
    end
  end

let handle_commit t ~src (view, slot, d) =
  if in_active t && List.mem src t.active && view = t.view then begin
    let s = slot_state t slot in
    if vote_matches s ~view d then begin
      s.commits <- record_vote s.commits src;
      check_commit t slot s
    end
  end

(* ------------------------------------------------------------------ *)
(* Proposals *)

let next_slot t = t.max_slot + 1

let propose_at t ~slot request =
  Hashtbl.replace t.proposed (request.Pmsg.client, request.Pmsg.rid) slot;
  let spp =
    Pmsg.sign_pre_prepare t.auth ~primary:t.me { Pmsg.view = t.view; slot; request }
  in
  let s = slot_state t slot in
  s.spp <- Some spp;
  s.prepares <- [];
  s.commits <- [];
  s.prepared <- false;
  send_active t (Pmsg.Pre_prepare spp);
  if selected t then
    List.iter (fun k -> if k <> t.me then expect_prepare t ~from:k ~view:t.view ~slot) t.active;
  check_prepared t slot s

let submit t request =
  if in_active t then begin
    let key = (request.Pmsg.client, request.Pmsg.rid) in
    match Hashtbl.find_opt t.proposed key with
    | Some slot when is_primary t -> begin
      match Hashtbl.find_opt t.slots slot with
      | Some ({ committed = false; spp = Some spp; _ } : slot_state)
        when spp.Pmsg.pp.Pmsg.view < t.view ->
        propose_at t ~slot request
      | _ -> ()
    end
    | Some _ -> ()
    | None ->
      if is_primary t then propose_at t ~slot:(next_slot t) request
      else if not (Hashtbl.mem t.awaiting_pp key) then begin
        Hashtbl.replace t.awaiting_pp key ();
        expect_pre_prepare_request t ~from:(primary t) ~view:t.view request
      end
  end

(* ------------------------------------------------------------------ *)
(* View / configuration change *)

let entry_provenance_ok t (e : Pmsg.entry) =
  (* The original pre-prepare was signed by the primary of [eview]. In Full
     mode that is eview mod n; in Selected mode views do not map statically
     to primaries, so provenance accepts any process's signature over the
     binding. To keep verification exact we try all processes — n is tens at
     most and this path is rare. *)
  let check primary =
    Pmsg.verify_pre_prepare t.auth ~primary
      {
        Pmsg.pp = { Pmsg.view = e.Pmsg.eview; slot = e.Pmsg.eslot; request = e.Pmsg.erequest };
        ppsig = e.Pmsg.epsig;
      }
  in
  match t.config.participation with
  | Full -> check (e.Pmsg.eview mod t.config.n)
  | Selected ->
    let rec any p = p < t.config.n && (check p || any (p + 1)) in
    any 0

let log_entries t =
  let all =
    Hashtbl.fold
      (fun slot (s : slot_state) acc ->
        match s.spp with
        | None -> acc
        | Some spp ->
          {
            Pmsg.eview = spp.Pmsg.pp.Pmsg.view;
            eslot = slot;
            erequest = spp.Pmsg.pp.Pmsg.request;
            ecommitted = s.committed;
            epsig = spp.Pmsg.ppsig;
          }
          :: acc)
      t.slots []
  in
  List.sort (fun a b -> compare a.Pmsg.eslot b.Pmsg.eslot) all

let merge_logs lists =
  let best : (int, Pmsg.entry) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (List.iter (fun (e : Pmsg.entry) ->
         match Hashtbl.find_opt best e.Pmsg.eslot with
         | None -> Hashtbl.replace best e.Pmsg.eslot e
         | Some cur ->
           if
             (e.Pmsg.ecommitted && not cur.Pmsg.ecommitted)
             || (e.Pmsg.ecommitted = cur.Pmsg.ecommitted && e.Pmsg.eview > cur.Pmsg.eview)
           then Hashtbl.replace best e.Pmsg.eslot e))
    lists;
  List.sort
    (fun a b -> compare a.Pmsg.eslot b.Pmsg.eslot)
    (Hashtbl.fold (fun _ e acc -> e :: acc) best [])

let install_committed t (e : Pmsg.entry) =
  let s = slot_state t e.Pmsg.eslot in
  s.spp <-
    Some
      {
        Pmsg.pp = { Pmsg.view = e.Pmsg.eview; slot = e.Pmsg.eslot; request = e.Pmsg.erequest };
        ppsig = e.Pmsg.epsig;
      };
  s.committed <- true;
  Hashtbl.replace t.proposed (e.Pmsg.erequest.Pmsg.client, e.Pmsg.erequest.Pmsg.rid)
    e.Pmsg.eslot

let collect_target t =
  match t.config.participation with
  | Full -> (2 * t.config.f) + 1
  | Selected -> List.length t.active

let finish_collect t tbl =
  let have = Hashtbl.length tbl in
  let enough =
    match t.config.participation with
    | Full -> have >= collect_target t
    | Selected -> List.for_all (fun k -> Hashtbl.mem tbl k) t.active
  in
  if enough then begin
    let merged = merge_logs (Hashtbl.fold (fun _ es acc -> es :: acc) tbl []) in
    send_active t (Pmsg.New_view { nview = t.view; nlog = merged });
    t.phase <- Normal;
    List.iter
      (fun (e : Pmsg.entry) ->
        if e.Pmsg.ecommitted then install_committed t e
        else propose_at t ~slot:e.Pmsg.eslot e.Pmsg.erequest)
      merged;
    try_execute t
  end

let record_vc t tbl ~src vlog =
  if (not (Hashtbl.mem tbl src)) && List.mem src t.active then begin
    if List.for_all (entry_provenance_ok t) vlog then begin
      Hashtbl.replace tbl src vlog;
      finish_collect t tbl
    end
    else Detector.detected (fd t) src
  end

let enter_view t ~view ~active =
  t.view <- view;
  t.active <- active;
  t.view_changes <- t.view_changes + 1;
  Hashtbl.reset t.awaiting_pp;
  Detector.cancel_all (fd t);
  if not (in_active t) then t.phase <- Normal
  else if is_primary t then begin
    let tbl = Hashtbl.create 8 in
    Hashtbl.replace tbl t.me (log_entries t);
    t.phase <- Collecting tbl;
    (* Drain VIEW-CHANGEs that arrived before we entered this view. *)
    let stashed =
      Hashtbl.fold
        (fun (v, src) vlog acc -> if v = view then (src, vlog) :: acc else acc)
        t.pending_vcs []
    in
    List.iter
      (fun (src, vlog) ->
        match t.phase with
        | Collecting tbl -> record_vc t tbl ~src vlog
        | _ -> ())
      stashed;
    (match t.phase with Collecting tbl -> finish_collect t tbl | _ -> ())
  end
  else begin
    t.phase <- Awaiting_nv;
    send t ~dst:(primary t) (Pmsg.View_change { vview = t.view; vlog = log_entries t })
  end

(* Full-mode rotation: anyone suspecting the primary broadcasts a
   VIEW-CHANGE for view+1; receivers join. *)
let start_rotation t =
  if t.config.participation = Full && t.last_vc_view < t.view + 1 then begin
    t.last_vc_view <- t.view + 1;
    let target = t.view + 1 in
    send_everyone t (Pmsg.View_change { vview = target; vlog = log_entries t });
    enter_view t ~view:target ~active:t.active
  end

let handle_view_change t ~src (vview, vlog) =
  match t.config.participation with
  | Full ->
    if vview > t.view then begin
      t.last_vc_view <- max t.last_vc_view vview;
      (* Join the view change; our own VC travels to everyone. *)
      send_everyone t (Pmsg.View_change { vview; vlog = log_entries t });
      enter_view t ~view:vview ~active:t.active
    end;
    if vview = t.view && is_primary t then begin
      match t.phase with
      | Collecting tbl when not (Hashtbl.mem tbl src) ->
        if List.for_all (entry_provenance_ok t) vlog then begin
          Hashtbl.replace tbl src vlog;
          finish_collect t tbl
        end
        else Detector.detected (fd t) src
      | _ -> ()
    end
  | Selected ->
    if vview > t.view then begin
      (* Catch up: the sender's quorum selection ran ahead of ours. The
         active set is derived from the view number, so joining is safe. *)
      Hashtbl.replace t.pending_vcs (vview, src) vlog;
      enter_view t ~view:vview ~active:(group_of t vview)
    end
    else if vview = t.view && is_primary t then begin
      match t.phase with
      | Collecting tbl -> record_vc t tbl ~src vlog
      | _ -> ()
    end

let handle_new_view t ~src (nview, nlog) =
  if nview = t.view && src = primary t && in_active t && not (is_primary t) then begin
    if List.for_all (entry_provenance_ok t) nlog then begin
      List.iter (fun (e : Pmsg.entry) -> if e.Pmsg.ecommitted then install_committed t e) nlog;
      t.phase <- Normal;
      try_execute t
    end
    else Detector.detected (fd t) src
  end

(* ------------------------------------------------------------------ *)
(* Suspicion plumbing *)

let on_suspected t suspects =
  match t.config.participation with
  | Selected -> QS.handle_suspected (Option.get t.qsel) suspects
  | Full -> if List.mem (primary t) suspects then start_rotation t

let on_qs_quorum t quorum =
  if quorum <> t.active then begin
    let target = view_for t ~at_least:(t.view + 1) ~group:quorum in
    enter_view t ~view:target ~active:quorum
  end

(* ------------------------------------------------------------------ *)

let process t ~src msg =
  match msg.Pmsg.body with
  | Pmsg.Pre_prepare spp -> handle_pre_prepare t ~src spp
  | Pmsg.Prepare { view; slot; pdigest } -> handle_prepare t ~src (view, slot, pdigest)
  | Pmsg.Commit { view; slot; cdigest } -> handle_commit t ~src (view, slot, cdigest)
  | Pmsg.View_change { vview; vlog } -> handle_view_change t ~src (vview, vlog)
  | Pmsg.New_view { nview; nlog } -> handle_new_view t ~src (nview, nlog)
  | Pmsg.Qsel update -> (
    match t.qsel with Some qsel -> QS.handle_update qsel update | None -> ())

let receive t ~src msg =
  if Pmsg.verify t.auth msg && msg.Pmsg.sender = src then Detector.receive (fd t) ~src msg

let executed t =
  let rec loop slot acc =
    match Hashtbl.find_opt t.slots slot with
    | Some ({ executed = true; spp = Some spp; _ } : slot_state) ->
      loop (slot + 1) (spp.Pmsg.pp.Pmsg.request :: acc)
    | _ -> List.rev acc
  in
  loop 0 []

let create config ~me ~auth ~sim ~net_send ?(on_execute = fun ~slot:_ _ -> ()) () =
  if config.n <> (3 * config.f) + 1 then invalid_arg "Preplica.create: need n = 3f+1";
  if me < 0 || me >= config.n then invalid_arg "Preplica.create: me out of range";
  let t =
    {
      config;
      me;
      auth;
      sim;
      net_send;
      on_execute;
      fd = None;
      qsel = None;
      view = 0;
      active =
        (match config.participation with
         | Full -> List.init config.n Fun.id
         | Selected -> List.init (config.n - config.f) Fun.id);
      slots = Hashtbl.create 64;
      max_slot = -1;
      exec_cursor = 0;
      proposed = Hashtbl.create 64;
      awaiting_pp = Hashtbl.create 64;
      phase = Normal;
      fault = Honest;
      view_changes = 0;
      last_vc_view = 0;
      pending_vcs = Hashtbl.create 16;
    }
  in
  let timeouts =
    Timeout.create ~n:config.n ~initial:config.initial_timeout config.timeout_strategy
  in
  t.fd <-
    Some
      (Detector.create ~sim ~me ~n:config.n ~timeouts
         ~deliver:(fun ~src m -> process t ~src m)
         ~on_suspected:(fun s -> on_suspected t s)
         ());
  (match config.participation with
   | Full -> ()
   | Selected ->
     t.qsel <-
       Some
         (QS.create
            { QS.n = config.n; f = config.f }
            ~me ~auth
            ~send:(fun update -> send_all_including_self t (Pmsg.Qsel update))
            ~on_quorum:(fun quorum -> on_qs_quorum t quorum)
            ()));
  t
