(** A PBFT replica (n = 3f+1) with two participation modes.

    [Full] is classic PBFT: every replica participates, PREPARE needs 2f
    matching votes beyond the PRE-PREPARE, COMMIT needs 2f+1 — so up to [f]
    silent replicas are {e masked} at the price of all-to-all traffic among
    all [n]. The only failure handled actively is a faulty primary
    (view change, primary rotation).

    [Selected] is the paper's proposal applied to PBFT (Section I): only an
    active quorum of [q = n−f = 2f+1] replicas runs the protocol. The
    thresholds are unchanged, which now means {e every} active replica must
    answer — nothing is masked — and each active replica issues
    expectations for every protocol message it awaits. Omissions or delays
    become suspicions, Algorithm 1 picks a new active quorum, and the
    passive replicas catch up through the NEW-VIEW log transfer.

    The two modes measured side by side are experiment E6's headline: the
    selected mode sends ≈ (q/n)² of the quadratic phases' messages, at the
    cost of reacting (cheaply) instead of masking.

    The view change is the same simplified log-carrying protocol as the
    XPaxos substrate (entries carry original pre-prepare signatures as
    provenance; commit certificates are not carried — see DESIGN.md §2). *)

type participation = Full | Selected

type config = {
  n : int;  (** must be 3f+1 *)
  f : int;
  participation : participation;
  initial_timeout : Qs_sim.Stime.t;
  timeout_strategy : Qs_fd.Timeout.strategy;
}

type fault = Honest | Mute | Omit_to of Qs_core.Pid.t list

type t

val create :
  config ->
  me:Qs_core.Pid.t ->
  auth:Qs_crypto.Auth.t ->
  sim:Qs_sim.Sim.t ->
  net_send:(dst:Qs_core.Pid.t -> Pmsg.t -> unit) ->
  ?on_execute:(slot:int -> Pmsg.request -> unit) ->
  unit ->
  t

val me : t -> Qs_core.Pid.t

val set_fault : t -> fault -> unit

val receive : t -> src:Qs_core.Pid.t -> Pmsg.t -> unit

val submit : t -> Pmsg.request -> unit

val view : t -> int

val primary : t -> Qs_core.Pid.t

val participants : t -> Qs_core.Pid.t list

val executed : t -> Pmsg.request list

val view_changes : t -> int

val detector : t -> Pmsg.t Qs_fd.Detector.t

val quorum_selector : t -> Qs_core.Quorum_select.t option
(** Present in [Selected] mode. *)
