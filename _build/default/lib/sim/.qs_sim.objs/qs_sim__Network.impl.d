lib/sim/network.ml: Array List Qs_stdx Sim Stdlib Stime
