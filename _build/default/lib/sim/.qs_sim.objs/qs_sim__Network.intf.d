lib/sim/network.mli: Sim Stime
