lib/sim/sim.ml: Qs_stdx Stdlib Stime
