lib/sim/sim.mli: Qs_stdx Stime
