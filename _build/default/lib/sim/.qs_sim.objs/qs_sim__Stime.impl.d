lib/sim/stime.ml: Format Stdlib
