lib/sim/stime.mli: Format
