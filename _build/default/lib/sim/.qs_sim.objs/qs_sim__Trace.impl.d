lib/sim/trace.ml: Format List Network Stime String
