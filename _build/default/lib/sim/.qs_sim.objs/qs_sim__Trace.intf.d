lib/sim/trace.mli: Format Network Stime
