type t = int

let zero = 0

let of_ms ms = ms * 1000

let to_ms t = float_of_int t /. 1000.0

let ( + ) = Stdlib.( + )

let ( - ) = Stdlib.( - )

let compare = Stdlib.compare

let max = Stdlib.max

let pp ppf t = Format.fprintf ppf "%.3fms" (to_ms t)
