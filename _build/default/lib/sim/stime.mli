(** Virtual time for the discrete-event simulator.

    Time is an integer tick count (think microseconds). Integer time keeps
    event ordering exact and runs reproducible across platforms. *)

type t = int

val zero : t

val of_ms : int -> t
(** Milliseconds to ticks (1 ms = 1000 ticks). *)

val to_ms : t -> float

val ( + ) : t -> t -> t

val ( - ) : t -> t -> t

val compare : t -> t -> int

val max : t -> t -> t

val pp : Format.formatter -> t -> unit
(** Prints as milliseconds with three decimals. *)
