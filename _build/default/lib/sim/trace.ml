type entry = {
  at : Stime.t;
  kind : Network.trace_kind;
  src : int;
  dst : int;
  label : string;
}

type t = { mutable entries : entry list (* reversed *) }

let create () = { entries = [] }

let attach t ~label net =
  Network.set_tracer net (fun ~kind ~now ~src ~dst m ->
      t.entries <- { at = now; kind; src; dst; label = label m } :: t.entries)

let entries t = List.rev t.entries

let deliveries t =
  List.filter (fun e -> e.kind = Network.Delivered) (entries t)

let clear t = t.entries <- []

let kind_tag = function
  | Network.Send -> "send"
  | Network.Delivered -> "recv"
  | Network.Dropped -> "DROP"

let pp_entry ppf e =
  Format.fprintf ppf "%a  p%d -> p%d  %-22s [%s]" Stime.pp e.at (e.src + 1)
    (e.dst + 1) e.label (kind_tag e.kind)

let render t =
  String.concat "\n"
    (List.map (fun e -> Format.asprintf "%a" pp_entry e) (entries t))
