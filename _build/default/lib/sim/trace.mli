(** Message-flow recording.

    Experiment E8 replays the paper's Figures 2 and 3 (XPaxos normal case,
    and the delayed-PREPARE variant); the recorder captures the flow so the
    bench can print it and tests can assert on it. *)

type entry = {
  at : Stime.t;
  kind : Network.trace_kind;
  src : int;
  dst : int;
  label : string;
}

type t

val create : unit -> t

val attach : t -> label:('m -> string) -> 'm Network.t -> unit
(** Install this recorder as the network's tracer. *)

val entries : t -> entry list
(** In capture order. *)

val deliveries : t -> entry list
(** Only [Delivered] entries. *)

val clear : t -> unit

val pp_entry : Format.formatter -> entry -> unit

val render : t -> string
(** Multi-line "time src->dst label [kind]" listing. *)
