lib/star/star_cluster.ml: Array Hashtbl List Qs_core Qs_crypto Qs_sim Star_msg Star_node
