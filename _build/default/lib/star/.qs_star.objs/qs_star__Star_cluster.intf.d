lib/star/star_cluster.mli: Qs_core Qs_sim Star_msg Star_node
