lib/star/star_msg.ml: Printf Qs_core Qs_crypto Qs_follower
