lib/star/star_msg.mli: Qs_core Qs_crypto Qs_follower
