lib/star/star_node.ml: Fun Hashtbl List Option Qs_core Qs_crypto Qs_fd Qs_follower Qs_sim Star_msg
