lib/star/star_node.mli: Qs_core Qs_crypto Qs_fd Qs_follower Qs_sim Star_msg
