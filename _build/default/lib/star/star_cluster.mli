(** A star-topology cluster in the simulator (mirrors the other clusters). *)

type t

val create :
  ?seed:int64 -> ?delay:Qs_sim.Network.delay_model -> Star_node.config -> t

val sim : t -> Qs_sim.Sim.t

val net : t -> Star_msg.t Qs_sim.Network.t

val node : t -> Qs_core.Pid.t -> Star_node.t

val set_fault : t -> Qs_core.Pid.t -> Star_node.fault -> unit

val submit :
  t -> ?client:int -> ?resubmit_every:Qs_sim.Stime.t -> string -> Star_msg.request

val run : ?until:Qs_sim.Stime.t -> ?max_events:int -> t -> unit

val executed_by : t -> Star_msg.request -> Qs_core.Pid.t list

val is_committed : t -> Star_msg.request -> bool
(** Executed by every member of some node's current quorum. *)

val message_count : t -> int

val max_quorum_epoch : t -> int
(** Largest number of reconfigurations any node performed — the live O(f)
    metric of Theorem 9. *)

val commit_latency : t -> Star_msg.request -> Qs_sim.Stime.t option
(** Time from submission until [n − f] nodes executed the request. *)
