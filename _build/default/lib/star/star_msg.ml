module Auth = Qs_crypto.Auth

type request = { client : int; rid : int; op : string }

type lead = { slot : int; qepoch : int; request : request; lsig : Auth.signature }

type body =
  | Lead of lead
  | Ack of { aslot : int; aepoch : int }
  | Apply of { pslot : int; pepoch : int }
  | Fsel of Qs_follower.Fmsg.t

type t = { sender : Qs_core.Pid.t; body : body; signature : Auth.signature }

let encode_request r = Printf.sprintf "REQ|%d|%d|%s" r.client r.rid r.op

let lead_binding ~slot ~qepoch request =
  Printf.sprintf "LEAD|%d|%d|%s" slot qepoch (encode_request request)

let sign_lead auth ~leader ~slot ~qepoch request =
  Auth.sign auth ~signer:leader (lead_binding ~slot ~qepoch request)

let verify_lead auth ~leader l =
  leader >= 0
  && leader < Auth.universe auth
  && Auth.verify auth ~signer:leader
       (lead_binding ~slot:l.slot ~qepoch:l.qepoch l.request)
       l.lsig

let hex = Qs_crypto.Sha256.hex

let encode_body = function
  | Lead l ->
    Printf.sprintf "L:%d|%d|%s|%s" l.slot l.qepoch (encode_request l.request) (hex l.lsig)
  | Ack { aslot; aepoch } -> Printf.sprintf "A:%d|%d" aslot aepoch
  | Apply { pslot; pepoch } -> Printf.sprintf "X:%d|%d" pslot pepoch
  | Fsel m -> "F:" ^ Qs_follower.Fmsg.encode m.Qs_follower.Fmsg.payload ^ "#" ^ hex m.Qs_follower.Fmsg.signature

let seal auth ~sender body =
  { sender; body; signature = Auth.sign auth ~signer:sender (encode_body body) }

let verify auth t =
  t.sender >= 0
  && t.sender < Auth.universe auth
  && Auth.verify auth ~signer:t.sender (encode_body t.body) t.signature

let tag = function
  | Lead _ -> "LEAD"
  | Ack _ -> "ACK"
  | Apply _ -> "APPLY"
  | Fsel m -> (
    match m.Qs_follower.Fmsg.payload with
    | Qs_follower.Fmsg.Update _ -> "FSEL-UPDATE"
    | Qs_follower.Fmsg.Followers _ -> "FOLLOWERS")
