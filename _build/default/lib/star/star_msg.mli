(** Wire messages for the leader-centric star protocol.

    The message pattern Follower Selection is designed for (Section VIII):
    "a single leader communicates with several followers, but followers do
    not directly communicate with each other". One LEAD fan-out, one ACK
    fan-in, one APPLY fan-out — 3(q−1) messages per request, and the only
    links that matter are leader↔follower. *)

type request = { client : int; rid : int; op : string }

type lead = {
  slot : int;
  qepoch : int;  (** quorum-configuration epoch (bumps on every re-selection) *)
  request : request;
  lsig : Qs_crypto.Auth.signature;  (** the leader's signature over the binding *)
}

type body =
  | Lead of lead
  | Ack of { aslot : int; aepoch : int }
  | Apply of { pslot : int; pepoch : int }
  | Fsel of Qs_follower.Fmsg.t  (** Follower Selection gossip (UPDATE / FOLLOWERS) *)

type t = {
  sender : Qs_core.Pid.t;
  body : body;
  signature : Qs_crypto.Auth.signature;
}

val sign_lead :
  Qs_crypto.Auth.t -> leader:int -> slot:int -> qepoch:int -> request -> Qs_crypto.Auth.signature

val verify_lead : Qs_crypto.Auth.t -> leader:int -> lead -> bool

val seal : Qs_crypto.Auth.t -> sender:int -> body -> t

val verify : Qs_crypto.Auth.t -> t -> bool

val tag : body -> string
