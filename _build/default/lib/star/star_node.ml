module Sim = Qs_sim.Sim
module Detector = Qs_fd.Detector
module Timeout = Qs_fd.Timeout
module Pid = Qs_core.Pid
module Auth = Qs_crypto.Auth
module Fsel = Qs_follower.Follower_select
module Fmsg = Qs_follower.Fmsg

type config = {
  n : int;
  f : int;
  initial_timeout : Qs_sim.Stime.t;
  timeout_strategy : Timeout.strategy;
}

type fault = Honest | Mute | Omit_to of Pid.t list

type slot_state = {
  mutable request : Star_msg.request option;
  mutable acks : Pid.t list;
  mutable applied : bool;
}

type t = {
  config : config;
  me : Pid.t;
  auth : Auth.t;
  sim : Sim.t;
  net_send : dst:Pid.t -> Star_msg.t -> unit;
  on_execute : Star_msg.request -> unit;
  mutable fd : Star_msg.t Detector.t option;
  mutable fsel : Fsel.t option;
  mutable leader : Pid.t;
  mutable quorum : Pid.t list;
  mutable qepoch : int;
  slots : (int * int, slot_state) Hashtbl.t; (* (qepoch, slot) *)
  mutable next_slot : int;
  proposed : (int * int, int) Hashtbl.t; (* request id -> slot in current epoch *)
  awaiting_lead : (int * int, unit) Hashtbl.t;
  executed_ids : (int * int, unit) Hashtbl.t;
  mutable executed : Star_msg.request list; (* reversed *)
  mutable fault : fault;
}

let me t = t.me

let fd t = Option.get t.fd

let selector t = Option.get t.fsel

let detector = fd

let set_fault t fault = t.fault <- fault

let leader t = t.leader

let quorum t = t.quorum

let is_leader t = t.leader = t.me

let in_quorum t = List.mem t.me t.quorum

let quorum_epoch t = t.qepoch

let executed t = List.rev t.executed

let fault_allows t dst =
  match t.fault with
  | Honest -> true
  | Mute -> false
  | Omit_to victims -> not (List.mem dst victims)

let send t ~dst body =
  if dst = t.me || fault_allows t dst then
    t.net_send ~dst (Star_msg.seal t.auth ~sender:t.me body)

let send_all_including_self t body =
  for dst = 0 to t.config.n - 1 do
    send t ~dst body
  done

let slot_state t key =
  match Hashtbl.find_opt t.slots key with
  | Some s -> s
  | None ->
    let s = { request = None; acks = []; applied = false } in
    Hashtbl.replace t.slots key s;
    s

let execute t (request : Star_msg.request) =
  let key = (request.Star_msg.client, request.Star_msg.rid) in
  if not (Hashtbl.mem t.executed_ids key) then begin
    Hashtbl.replace t.executed_ids key ();
    t.executed <- request :: t.executed;
    t.on_execute request
  end

(* ------------------------------------------------------------------ *)
(* Expectations *)

let expect_ack t ~from ~slot =
  let epoch = t.qepoch in
  Detector.expect (fd t) ~from ~tag:"ack" (fun m ->
      match m.Star_msg.body with
      | Star_msg.Ack { aslot; aepoch } -> aslot = slot && aepoch = epoch
      | _ -> false)

(* APPLY needs the whole fan-in to finish first: 3x the base timeout keeps
   the leader's ACK expectation the first to fire on a follower fault. *)
let expect_apply t ~slot =
  let epoch = t.qepoch in
  Detector.expect (fd t) ~from:t.leader ~tag:"apply" ~timeout:(3 * t.config.initial_timeout)
    (fun m ->
      match m.Star_msg.body with
      | Star_msg.Apply { pslot; pepoch } -> pslot = slot && pepoch = epoch
      | _ -> false)

let expect_lead_request t (request : Star_msg.request) =
  Detector.expect (fd t) ~from:t.leader ~tag:"lead" (fun m ->
      match m.Star_msg.body with
      | Star_msg.Lead l -> l.Star_msg.request = request
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Protocol *)

let followers t = List.filter (fun p -> p <> t.leader) t.quorum

let propose t request =
  let key = (request.Star_msg.client, request.Star_msg.rid) in
  let slot = t.next_slot in
  t.next_slot <- slot + 1;
  Hashtbl.replace t.proposed key slot;
  let lsig = Star_msg.sign_lead t.auth ~leader:t.me ~slot ~qepoch:t.qepoch request in
  let s = slot_state t (t.qepoch, slot) in
  s.request <- Some request;
  List.iter
    (fun fw ->
      send t ~dst:fw (Star_msg.Lead { Star_msg.slot; qepoch = t.qepoch; request; lsig });
      expect_ack t ~from:fw ~slot)
    (followers t)

(* No early return on local execution: the leader executes before the APPLY
   fan-out, so after a reconfiguration it may be the only node that has —
   it must still re-propose for the others. Exactly-once execution is
   enforced at [execute]. *)
let submit t request =
  let key = (request.Star_msg.client, request.Star_msg.rid) in
  if is_leader t && in_quorum t then begin
    if not (Hashtbl.mem t.proposed key) then propose t request
  end
  else if in_quorum t && not (Hashtbl.mem t.awaiting_lead key) then begin
    Hashtbl.replace t.awaiting_lead key ();
    expect_lead_request t request
  end

let handle_lead t ~src (l : Star_msg.lead) =
  if
    in_quorum t && src = t.leader && l.Star_msg.qepoch = t.qepoch
    && Star_msg.verify_lead t.auth ~leader:src l
  then begin
    let s = slot_state t (t.qepoch, l.Star_msg.slot) in
    match s.request with
    | Some stored when stored <> l.Star_msg.request ->
      (* Two signed bindings for one slot/epoch: leader equivocation. *)
      Detector.detected (fd t) src
    | Some _ -> ()
    | None ->
      s.request <- Some l.Star_msg.request;
      send t ~dst:t.leader (Star_msg.Ack { aslot = l.Star_msg.slot; aepoch = t.qepoch });
      expect_apply t ~slot:l.Star_msg.slot
  end

let handle_ack t ~src (aslot, aepoch) =
  if is_leader t && aepoch = t.qepoch && List.mem src (followers t) then begin
    let s = slot_state t (t.qepoch, aslot) in
    if not (List.mem src s.acks) then s.acks <- src :: s.acks;
    if (not s.applied) && List.for_all (fun fw -> List.mem fw s.acks) (followers t) then begin
      s.applied <- true;
      (match s.request with Some r -> execute t r | None -> ());
      List.iter
        (fun fw -> send t ~dst:fw (Star_msg.Apply { pslot = aslot; pepoch = t.qepoch }))
        (followers t)
    end
  end

let handle_apply t ~src (pslot, pepoch) =
  if in_quorum t && src = t.leader && pepoch = t.qepoch then begin
    let s = slot_state t (t.qepoch, pslot) in
    if not s.applied then begin
      s.applied <- true;
      match s.request with Some r -> execute t r | None -> ()
    end
  end

(* ------------------------------------------------------------------ *)
(* Follower Selection wiring *)

let on_quorum t ~leader quorum =
  if leader <> t.leader || quorum <> t.quorum then begin
    t.qepoch <- t.qepoch + 1;
    t.leader <- leader;
    t.quorum <- quorum;
    Hashtbl.reset t.proposed;
    Hashtbl.reset t.awaiting_lead
    (* Expectations were already cancelled by Algorithm 2's fd_cancel on the
       leader switch; in-flight slots die with the old epoch and clients
       resubmit. *)
  end

let process t ~src msg =
  match msg.Star_msg.body with
  | Star_msg.Lead l -> handle_lead t ~src l
  | Star_msg.Ack { aslot; aepoch } -> handle_ack t ~src (aslot, aepoch)
  | Star_msg.Apply { pslot; pepoch } -> handle_apply t ~src (pslot, pepoch)
  | Star_msg.Fsel m -> Fsel.handle_msg (selector t) m

let receive t ~src msg =
  if Star_msg.verify t.auth msg && msg.Star_msg.sender = src then
    Detector.receive (fd t) ~src msg

let create config ~me ~auth ~sim ~net_send ?(on_execute = fun _ -> ()) () =
  if config.n <= 3 * config.f then invalid_arg "Star_node.create: requires n > 3f";
  if me < 0 || me >= config.n then invalid_arg "Star_node.create: me out of range";
  let t =
    {
      config;
      me;
      auth;
      sim;
      net_send;
      on_execute;
      fd = None;
      fsel = None;
      leader = 0;
      quorum = List.init (config.n - config.f) Fun.id;
      qepoch = 0;
      slots = Hashtbl.create 64;
      next_slot = 0;
      proposed = Hashtbl.create 64;
      awaiting_lead = Hashtbl.create 64;
      executed_ids = Hashtbl.create 64;
      executed = [];
      fault = Honest;
    }
  in
  let timeouts =
    Timeout.create ~n:config.n ~initial:config.initial_timeout config.timeout_strategy
  in
  t.fd <-
    Some
      (Detector.create ~sim ~me ~n:config.n ~timeouts
         ~deliver:(fun ~src m -> process t ~src m)
         ~on_suspected:(fun s -> Fsel.handle_suspected (selector t) s)
         ());
  t.fsel <-
    Some
      (Fsel.create
         { Qs_core.Quorum_select.n = config.n; f = config.f }
         ~me ~auth
         ~send:(fun m -> send_all_including_self t (Star_msg.Fsel m))
         ~on_quorum:(fun ~leader quorum -> on_quorum t ~leader quorum)
         ~fd_expect:(fun ~leader ~epoch ->
           Detector.expect (fd t) ~from:leader ~tag:"followers" (fun m ->
               match m.Star_msg.body with
               | Star_msg.Fsel { Fmsg.payload = Fmsg.Followers f; _ } ->
                 f.Fmsg.leader = leader && f.Fmsg.epoch = epoch
               | _ -> false))
         ~fd_cancel:(fun () -> Detector.cancel_all (fd t))
         ~fd_detected:(fun culprit -> Detector.detected (fd t) culprit)
         ());
  t
