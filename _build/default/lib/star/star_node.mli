(** A leader-centric replica driven by Follower Selection (Algorithm 2).

    This is the protocol shape Section VIII assumes: the leader fans a
    signed LEAD out to its followers, collects their ACKs, and fans an APPLY
    back — followers never talk to each other, so only leader↔follower
    links carry expectations and the {e no leader suspicion} property is
    exactly what liveness needs. Per request: [3(q−1)] messages.

    The full Algorithm-2 event loop runs live here: the module wires
    Follower Selection's ⟨EXPECT⟩/⟨CANCEL⟩/⟨DETECTED⟩ to the real
    failure detector (a FOLLOWERS message from a fresh leader is expected
    with a timeout; omitting it earns a suspicion) and feeds ⟨SUSPECTED⟩
    sets back. A crashed follower is suspected by the leader (ACK
    expectation), a crashed leader by its followers (APPLY/LEAD and
    FOLLOWERS expectations); either way the maximal-line-subgraph leader
    moves on after O(f) changes (Theorem 9).

    Blame stays local the same way as on the chain: follower-side APPLY
    expectations run at 3× the base timeout, so the leader's 1× ACK
    expectation fires first and the re-selection cancels the rest.

    Execution semantics match the chain demonstrator: at-least-once
    delivery to the quorum, exactly-once execution per node via request-id
    dedupe (see DESIGN.md §2). *)

type config = {
  n : int;  (** requires n > 3f (Follower Selection's assumption) *)
  f : int;
  initial_timeout : Qs_sim.Stime.t;
  timeout_strategy : Qs_fd.Timeout.strategy;
}

type fault = Honest | Mute | Omit_to of Qs_core.Pid.t list

type t

val create :
  config ->
  me:Qs_core.Pid.t ->
  auth:Qs_crypto.Auth.t ->
  sim:Qs_sim.Sim.t ->
  net_send:(dst:Qs_core.Pid.t -> Star_msg.t -> unit) ->
  ?on_execute:(Star_msg.request -> unit) ->
  unit ->
  t

val me : t -> Qs_core.Pid.t

val set_fault : t -> fault -> unit

val receive : t -> src:Qs_core.Pid.t -> Star_msg.t -> unit

val submit : t -> Star_msg.request -> unit

val leader : t -> Qs_core.Pid.t

val quorum : t -> Qs_core.Pid.t list

val is_leader : t -> bool

val quorum_epoch : t -> int
(** Number of (leader, quorum) reconfigurations performed. *)

val executed : t -> Star_msg.request list

val detector : t -> Star_msg.t Qs_fd.Detector.t

val selector : t -> Qs_follower.Follower_select.t
