lib/stdx/bitset.ml: Array Format List
