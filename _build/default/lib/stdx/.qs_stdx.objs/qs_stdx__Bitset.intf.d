lib/stdx/bitset.mli: Format
