lib/stdx/combin.ml: Array List
