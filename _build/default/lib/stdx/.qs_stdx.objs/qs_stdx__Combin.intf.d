lib/stdx/combin.mli:
