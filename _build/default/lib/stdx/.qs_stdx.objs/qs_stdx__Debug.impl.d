lib/stdx/debug.ml: List Logs
