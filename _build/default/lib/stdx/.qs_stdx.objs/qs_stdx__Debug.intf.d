lib/stdx/debug.mli: Logs
