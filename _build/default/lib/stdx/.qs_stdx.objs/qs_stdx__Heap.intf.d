lib/stdx/heap.mli:
