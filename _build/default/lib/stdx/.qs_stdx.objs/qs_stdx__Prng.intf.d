lib/stdx/prng.mli:
