lib/stdx/table.ml: Buffer List String
