lib/stdx/table.mli:
