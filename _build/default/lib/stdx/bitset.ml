type t = { n : int; words : int array }

let words_for n = (n + 62) / 63

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { n; words = Array.make (max 1 (words_for n)) 0 }

let capacity t = t.n

let copy t = { n = t.n; words = Array.copy t.words }

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: index out of range"

let mem t i =
  check t i;
  t.words.(i / 63) land (1 lsl (i mod 63)) <> 0

let add t i =
  check t i;
  t.words.(i / 63) <- t.words.(i / 63) lor (1 lsl (i mod 63))

let remove t i =
  check t i;
  t.words.(i / 63) <- t.words.(i / 63) land lnot (1 lsl (i mod 63))

let popcount x =
  let rec loop x acc = if x = 0 then acc else loop (x land (x - 1)) (acc + 1) in
  loop x 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let same_cap a b = if a.n <> b.n then invalid_arg "Bitset: capacity mismatch"

let union_into dst src =
  same_cap dst src;
  Array.iteri (fun i w -> dst.words.(i) <- dst.words.(i) lor w) src.words

let diff_into dst src =
  same_cap dst src;
  Array.iteri (fun i w -> dst.words.(i) <- dst.words.(i) land lnot w) src.words

let inter_into dst src =
  same_cap dst src;
  Array.iteri (fun i w -> dst.words.(i) <- dst.words.(i) land w) src.words

let iter f t =
  for i = 0 to t.n - 1 do
    if t.words.(i / 63) land (1 lsl (i mod 63)) <> 0 then f i
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list n l =
  let t = create n in
  List.iter (add t) l;
  t

let equal a b = a.n = b.n && a.words = b.words

let first t =
  let rec loop i =
    if i >= t.n then None
    else if mem t i then Some i
    else loop (i + 1)
  in
  loop 0

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Format.pp_print_int)
    (elements t)
