(** Fixed-capacity mutable bitset over process indices.

    Used for adjacency rows and candidate sets in the graph algorithms, where
    [n] is at most a few hundred. *)

type t

val create : int -> t
(** [create n] is an empty set over universe [\[0, n)]. *)

val capacity : t -> int

val copy : t -> t

val mem : t -> int -> bool

val add : t -> int -> unit

val remove : t -> int -> unit

val cardinal : t -> int

val is_empty : t -> bool

val clear : t -> unit

val union_into : t -> t -> unit
(** [union_into dst src] sets [dst := dst ∪ src]. Capacities must match. *)

val diff_into : t -> t -> unit
(** [dst := dst \ src]. *)

val inter_into : t -> t -> unit
(** [dst := dst ∩ src]. *)

val iter : (int -> unit) -> t -> unit
(** Iterate members in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val elements : t -> int list
(** Members in increasing order. *)

val of_list : int -> int list -> t

val equal : t -> t -> bool

val first : t -> int option
(** Smallest member. *)

val pp : Format.formatter -> t -> unit
