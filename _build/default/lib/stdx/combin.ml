exception Overflow

let choose n k =
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    (* Multiply/divide interleaved keeps intermediates exact. *)
    let acc = ref 1 in
    for i = 1 to k do
      let next = !acc * (n - k + i) in
      if next < 0 || next / (n - k + i) <> !acc then raise Overflow;
      acc := next / i
    done;
    !acc
  end

let first_subset k = List.init k (fun i -> i)

let next_subset n s =
  let a = Array.of_list s in
  let k = Array.length a in
  (* Find rightmost element that can be incremented. *)
  let rec find i =
    if i < 0 then None
    else if a.(i) < n - k + i then Some i
    else find (i - 1)
  in
  match find (k - 1) with
  | None -> None
  | Some i ->
    a.(i) <- a.(i) + 1;
    for j = i + 1 to k - 1 do
      a.(j) <- a.(j - 1) + 1
    done;
    Some (Array.to_list a)

let rank n s =
  let k = List.length s in
  (* Count subsets lexicographically smaller: standard combinatorial number
     system over increasing sequences. *)
  let rec loop prev i r = function
    | [] -> r
    | x :: rest ->
      let r = ref r in
      for v = prev + 1 to x - 1 do
        r := !r + choose (n - v - 1) (k - i - 1)
      done;
      loop x (i + 1) !r rest
  in
  loop (-1) 0 0 s

let unrank n k r =
  let rec loop prev i r acc =
    if i = k then List.rev acc
    else begin
      let v = ref (prev + 1) in
      let r = ref r in
      let continue = ref true in
      while !continue do
        let c = choose (n - !v - 1) (k - i - 1) in
        if !r < c then continue := false
        else begin
          r := !r - c;
          incr v
        end
      done;
      loop !v (i + 1) !r (!v :: acc)
    end
  in
  if r < 0 || r >= choose n k then invalid_arg "Combin.unrank: rank out of range";
  loop (-1) 0 r []

let subsets n k =
  let rec loop s acc =
    match next_subset n s with
    | None -> List.rev (s :: acc)
    | Some s' -> loop s' (s :: acc)
  in
  if k > n then []
  else loop (first_subset k) []
