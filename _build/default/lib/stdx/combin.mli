(** Combinatorics helpers: binomial coefficients and enumeration of k-subsets.

    XPaxos's baseline view change walks an enumeration of all [choose n f]
    quorums (paper, Section V-B); these helpers implement that enumeration in
    lexicographic order with rank/unrank so the walk needs O(n) state. *)

val choose : int -> int -> int
(** [choose n k] is the binomial coefficient; 0 when [k < 0 || k > n].
    Raises [Overflow] if the result exceeds [max_int]. *)

exception Overflow

val first_subset : int -> int list
(** [first_subset k] is [\[0; 1; …; k-1\]] — the lexicographically first
    k-subset. *)

val next_subset : int -> int list -> int list option
(** [next_subset n s] is the successor of sorted k-subset [s] of [\[0, n)] in
    lexicographic order, or [None] when [s] is the last one. *)

val rank : int -> int list -> int
(** [rank n s] is the 0-based position of sorted subset [s] in the
    lexicographic enumeration of subsets of its size. *)

val unrank : int -> int -> int -> int list
(** [unrank n k r] is the sorted k-subset of [\[0, n)] with rank [r]. *)

val subsets : int -> int -> int list list
(** [subsets n k] lists all k-subsets in lexicographic order. Only for small
    [choose n k]; used by tests. *)
