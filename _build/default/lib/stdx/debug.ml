let fd = Logs.Src.create "qsel.fd" ~doc:"failure detector events"

let quorum = Logs.Src.create "qsel.quorum" ~doc:"quorum selection events"

let xpaxos = Logs.Src.create "qsel.xpaxos" ~doc:"xpaxos replica events"

let enable () =
  Logs.set_reporter (Logs.format_reporter ());
  List.iter (fun src -> Logs.Src.set_level src (Some Logs.Debug)) [ fd; quorum; xpaxos ]
