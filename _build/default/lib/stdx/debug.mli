(** Debug logging for the protocol stacks.

    Each subsystem logs under its own {!Logs} source ([qsel.fd],
    [qsel.quorum], [qsel.xpaxos], …). Logging is off unless a reporter is
    installed; [enable ()] installs a stderr reporter at [Debug] level for
    the qsel sources — what `qsel simulate --verbose` uses. *)

val fd : Logs.src
val quorum : Logs.src
val xpaxos : Logs.src

val enable : unit -> unit
(** Install a stderr reporter and set all qsel sources to [Debug]. *)
