(* Binary min-heap over a growable array. Each entry carries a sequence
   number so that equal keys pop in insertion order: the simulator relies on
   this for deterministic schedules. *)

type 'a entry = { value : 'a; seq : int }

type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
}

let create ~cmp = { cmp; data = [||]; len = 0; next_seq = 0 }

let size h = h.len

let is_empty h = h.len = 0

let entry_cmp h a b =
  let c = h.cmp a.value b.value in
  if c <> 0 then c else compare a.seq b.seq

let grow h =
  let cap = Array.length h.data in
  if h.len = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let nd = Array.make ncap h.data.(0) in
    Array.blit h.data 0 nd 0 h.len;
    h.data <- nd
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_cmp h h.data.(i) h.data.(parent) < 0 then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.len && entry_cmp h h.data.(l) h.data.(!smallest) < 0 then smallest := l;
  if r < h.len && entry_cmp h h.data.(r) h.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let add h x =
  let e = { value = x; seq = h.next_seq } in
  h.next_seq <- h.next_seq + 1;
  if h.len = 0 && Array.length h.data = 0 then h.data <- Array.make 16 e;
  grow h;
  h.data.(h.len) <- e;
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let peek h = if h.len = 0 then None else Some h.data.(0).value

let pop h =
  if h.len = 0 then None
  else begin
    let top = h.data.(0).value in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.data.(0) <- h.data.(h.len);
      sift_down h 0
    end;
    Some top
  end

let clear h =
  h.len <- 0;
  h.data <- [||]

let to_list h =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (h.data.(i).value :: acc) in
  loop (h.len - 1) []
