(** Mutable binary min-heap, used as the simulator's event queue.

    Ties are broken by insertion order (FIFO among equal keys), which gives
    the simulator a deterministic schedule. *)

type 'a t
(** Heap of elements of type ['a]. *)

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty heap ordered by [cmp] (smallest first). *)

val size : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> 'a -> unit
(** Insert an element. Amortized O(log n). *)

val peek : 'a t -> 'a option
(** Smallest element, if any, without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. Among elements comparing equal,
    the earliest inserted is returned first. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Remaining elements in arbitrary order (for inspection in tests). *)
