type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p95 : float;
}

let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty"
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let percentile p xs =
  match xs with
  | [] -> invalid_arg "Stats.percentile: empty"
  | _ ->
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    if p <= 0.0 then a.(0)
    else if p >= 1.0 then a.(n - 1)
    else begin
      (* Nearest-rank: smallest value with at least p*n values <= it. *)
      let rank = int_of_float (ceil (p *. float_of_int n)) in
      a.(max 0 (min (n - 1) (rank - 1)))
    end

let summarize xs =
  match xs with
  | [] -> invalid_arg "Stats.summarize: empty"
  | _ ->
    let n = List.length xs in
    let m = mean xs in
    let var =
      if n < 2 then 0.0
      else
        List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
        /. float_of_int (n - 1)
    in
    {
      count = n;
      mean = m;
      stddev = sqrt var;
      min = List.fold_left min infinity xs;
      max = List.fold_left max neg_infinity xs;
      median = percentile 0.5 xs;
      p95 = percentile 0.95 xs;
    }

let summarize_ints xs = summarize (List.map float_of_int xs)

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.2f sd=%.2f min=%.0f med=%.0f p95=%.0f max=%.0f"
    s.count s.mean s.stddev s.min s.median s.p95 s.max
