(** Small descriptive-statistics kit for the experiment harness. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;  (** sample standard deviation; 0 for fewer than 2 points *)
  min : float;
  max : float;
  median : float;
  p95 : float;  (** 95th percentile (nearest-rank) *)
}

val summarize : float list -> summary
(** Raises [Invalid_argument] on an empty list. *)

val summarize_ints : int list -> summary

val mean : float list -> float

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,1\]], nearest-rank method. *)

val pp_summary : Format.formatter -> summary -> unit
