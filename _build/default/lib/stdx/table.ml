type align = Left | Right

type row = Cells of string list | Rule

type t = {
  title : string;
  columns : (string * align) list;
  mutable rows : row list;  (* reversed *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Table.add_row: cell count mismatch";
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let render t =
  let headers = List.map fst t.columns in
  let cell_rows =
    List.filter_map (function Cells c -> Some c | Rule -> None) (List.rev t.rows)
  in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) cell_rows)
      headers
  in
  let pad align width s =
    let fill = String.make (max 0 (width - String.length s)) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  in
  let aligns = List.map snd t.columns in
  let render_cells cells =
    let parts =
      List.map2 (fun (w, a) s -> pad a w s) (List.combine widths aligns) cells
    in
    "| " ^ String.concat " | " parts ^ " |"
  in
  let rule =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "+"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (rule ^ "\n");
  Buffer.add_string buf (render_cells headers ^ "\n");
  Buffer.add_string buf (rule ^ "\n");
  List.iter
    (fun row ->
      match row with
      | Cells cells -> Buffer.add_string buf (render_cells cells ^ "\n")
      | Rule -> Buffer.add_string buf (rule ^ "\n"))
    (List.rev t.rows);
  Buffer.add_string buf rule;
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ();
  print_newline ()
