(** ASCII table rendering for experiment reports.

    The bench harness prints one table per reproduced paper artifact; this
    module keeps the formatting in one place. *)

type align = Left | Right

type t

val create : title:string -> columns:(string * align) list -> t
(** [create ~title ~columns] starts an empty table. *)

val add_row : t -> string list -> unit
(** Row cells must match the number of columns. *)

val add_rule : t -> unit
(** Insert a horizontal separator before the next row. *)

val render : t -> string
(** Render with a header, column rules, and the title on top. *)

val print : t -> unit
(** [render] to stdout followed by a blank line. *)
