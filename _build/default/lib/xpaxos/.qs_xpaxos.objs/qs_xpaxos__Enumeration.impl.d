lib/xpaxos/enumeration.ml: List Qs_stdx
