lib/xpaxos/enumeration.mli:
