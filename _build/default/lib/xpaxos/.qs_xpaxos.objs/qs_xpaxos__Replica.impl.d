lib/xpaxos/replica.ml: Enumeration Hashtbl List Logs Option Qs_core Qs_crypto Qs_fd Qs_sim Qs_stdx Xlog Xmsg
