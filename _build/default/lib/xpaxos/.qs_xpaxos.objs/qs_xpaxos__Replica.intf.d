lib/xpaxos/replica.mli: Qs_core Qs_crypto Qs_fd Qs_sim Xmsg
