lib/xpaxos/xcluster.ml: Array Hashtbl List Qs_core Qs_crypto Qs_sim Replica Xmsg
