lib/xpaxos/xcluster.mli: Qs_core Qs_sim Replica Xmsg
