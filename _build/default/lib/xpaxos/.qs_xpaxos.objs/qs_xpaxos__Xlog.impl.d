lib/xpaxos/xlog.ml: Hashtbl List Qs_core Xmsg
