lib/xpaxos/xlog.mli: Qs_core Xmsg
