lib/xpaxos/xmsg.ml: Format List Printf Qs_core Qs_crypto String
