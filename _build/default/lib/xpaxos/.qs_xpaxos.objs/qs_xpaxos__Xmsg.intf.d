lib/xpaxos/xmsg.mli: Format Qs_core Qs_crypto
