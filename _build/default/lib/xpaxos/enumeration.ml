module Combin = Qs_stdx.Combin

let count ~n ~q = Combin.choose n q

let group ~n ~q ~view =
  if view < 0 then invalid_arg "Enumeration.group: negative view";
  Combin.unrank n q (view mod count ~n ~q)

let leader ~n ~q ~view =
  match group ~n ~q ~view with
  | [] -> invalid_arg "Enumeration.leader: empty group"
  | l :: _ -> l

let view_for ~n ~q ~at_least ~group:target =
  if List.length target <> q || List.sort_uniq compare target <> target then
    invalid_arg "Enumeration.view_for: not a sorted q-subset";
  let rank = Combin.rank n target in
  let total = count ~n ~q in
  let base = at_least / total * total in
  let candidate = base + rank in
  if candidate >= at_least then candidate else candidate + total
