(** View-to-synchronous-group mapping.

    XPaxos enumerates all [choose n f] possible quorums (synchronous groups)
    of size [q = n − f] and walks them round-robin as views change (paper,
    Section V-B). View [v] uses the group of rank [v mod choose n q] in
    lexicographic order. *)

val count : n:int -> q:int -> int
(** Number of distinct groups. *)

val group : n:int -> q:int -> view:int -> int list
(** The synchronous group of a view (sorted). View numbers start at 0. *)

val leader : n:int -> q:int -> view:int -> int
(** Lowest id in the group (paper, Section V-A step 1). *)

val view_for : n:int -> q:int -> at_least:int -> group:int list -> int
(** The smallest view [v ≥ at_least] with [group ~view:v = group] — how the
    quorum-selection output maps back onto XPaxos views (Section V-B:
    "i suspects all quorums ordered before Q"). Raises [Invalid_argument] if
    [group] is not a valid sorted q-subset. *)
