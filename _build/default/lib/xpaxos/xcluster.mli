(** An XPaxos cluster in the discrete-event simulator.

    Wires [n] replicas over an eventually-synchronous {!Qs_sim.Network},
    plays a simulated client (requests are handed to every replica, as an
    XPaxos client broadcasts after a timeout), and offers per-link fault
    injection on top of replica-level faults. *)

type t

val create :
  ?seed:int64 ->
  ?delay:Qs_sim.Network.delay_model ->
  ?fifo:bool ->
  Replica.config ->
  t
(** Default delay: [Fixed 1ms]. Default [fifo] true (XPaxos assumes
    point-to-point FIFO channels in practice). *)

val sim : t -> Qs_sim.Sim.t

val net : t -> Xmsg.t Qs_sim.Network.t

val replica : t -> Qs_core.Pid.t -> Replica.t

val config : t -> Replica.config

val set_fault : t -> Qs_core.Pid.t -> Replica.fault -> unit

val omit_link : t -> src:Qs_core.Pid.t -> dst:Qs_core.Pid.t -> unit
(** Drop every message on one direction of a link (an omission failure the
    sender commits on an individual link). *)

val delay_link : t -> src:Qs_core.Pid.t -> dst:Qs_core.Pid.t -> by:Qs_sim.Stime.t -> unit
(** Add fixed extra latency on a link (timing failure). *)

val heal_link : t -> src:Qs_core.Pid.t -> dst:Qs_core.Pid.t -> unit

val heal_all : t -> unit

val submit : t -> ?client:int -> ?resubmit_every:Qs_sim.Stime.t -> string -> Xmsg.request
(** Schedule a client request (handed to every replica at the current
    simulation time; redelivered every [resubmit_every] until [n − f]
    replicas executed it, when given). Returns the request for querying. *)

val run : ?until:Qs_sim.Stime.t -> ?max_events:int -> t -> unit

val executed_by : t -> Xmsg.request -> Qs_core.Pid.t list
(** Replicas that executed the request. *)

val is_globally_committed : t -> Xmsg.request -> bool
(** Executed by at least [n − f] replicas (the XFT commit condition). *)

val consistent : t -> correct:Qs_core.Pid.t list -> bool
(** Pairwise prefix-consistency of the given replicas' executed histories:
    the safety invariant of state machine replication. *)

val total_view_changes : t -> int
(** Sum over replicas — the E5 metric is usually [max_view] instead. *)

val max_view : t -> int

val message_count : t -> int
(** Inter-replica messages sent (excludes self-deliveries). *)

val commit_latency : t -> Xmsg.request -> Qs_sim.Stime.t option
(** Time from submission until [n − f] replicas executed the request. *)
