module Auth = Qs_crypto.Auth

type request = { client : int; rid : int; op : string }

type prepare = { view : int; slot : int; request : request }

type signed_prepare = { prepare : prepare; psig : Auth.signature }

type entry = {
  eview : int;
  eslot : int;
  erequest : request;
  ecommitted : bool;
  epsig : Auth.signature;
}

type body =
  | Prepare of signed_prepare
  | Commit of { cview : int; cslot : int; csp : signed_prepare }
  | Suspect of { sview : int }
  | View_change of { vview : int; vlog : entry list }
  | New_view of { nview : int; nlog : entry list }
  | Qsel of Qs_core.Msg.t

type t = { sender : Qs_core.Pid.t; body : body; signature : Auth.signature }

let encode_request r = Printf.sprintf "REQ|%d|%d|%s" r.client r.rid r.op

let encode_prepare p =
  Printf.sprintf "PREPARE|%d|%d|%s" p.view p.slot (encode_request p.request)

let hex = Qs_crypto.Sha256.hex

let encode_signed_prepare sp = encode_prepare sp.prepare ^ "#" ^ hex sp.psig

let encode_entry e =
  Printf.sprintf "ENTRY|%d|%d|%s|%b|%s" e.eview e.eslot (encode_request e.erequest)
    e.ecommitted (hex e.epsig)

let encode_body = function
  | Prepare sp -> "P:" ^ encode_signed_prepare sp
  | Commit { cview; cslot; csp } ->
    Printf.sprintf "C:%d|%d|%s" cview cslot (encode_signed_prepare csp)
  | Suspect { sview } -> Printf.sprintf "S:%d" sview
  | View_change { vview; vlog } ->
    Printf.sprintf "VC:%d|%s" vview (String.concat ";" (List.map encode_entry vlog))
  | New_view { nview; nlog } ->
    Printf.sprintf "NV:%d|%s" nview (String.concat ";" (List.map encode_entry nlog))
  | Qsel m -> "Q:" ^ Qs_core.Msg.encode m.Qs_core.Msg.update ^ "#" ^ hex m.Qs_core.Msg.signature

let sign_prepare auth ~leader prepare =
  { prepare; psig = Auth.sign auth ~signer:leader (encode_prepare prepare) }

let verify_prepare auth ~leader sp =
  leader >= 0
  && leader < Auth.universe auth
  && Auth.verify auth ~signer:leader (encode_prepare sp.prepare) sp.psig

let seal auth ~sender body =
  { sender; body; signature = Auth.sign auth ~signer:sender (encode_body body) }

let verify auth t =
  t.sender >= 0
  && t.sender < Auth.universe auth
  && Auth.verify auth ~signer:t.sender (encode_body t.body) t.signature

let tag = function
  | Prepare _ -> "PREPARE"
  | Commit _ -> "COMMIT"
  | Suspect _ -> "SUSPECT"
  | View_change _ -> "VIEW-CHANGE"
  | New_view _ -> "NEW-VIEW"
  | Qsel _ -> "QSEL-UPDATE"

let pp ppf t =
  Format.fprintf ppf "%s from %a" (tag t.body) Qs_core.Pid.pp t.sender
