(** XPaxos wire messages (paper, Section V).

    Every inter-replica message is signed by its sender. Two paper-mandated
    details:
    - a COMMIT embeds the full signed PREPARE it answers (Section V-A,
      second subtlety), so receivers can both validate it and detect leader
      equivocation;
    - quorum-selection UPDATE rows piggyback on the same network ([Qsel]),
      since the selection module is part of each replica's stack (Fig. 1). *)

type request = {
  client : int;
  rid : int;  (** client-local request id *)
  op : string;  (** state-machine operation *)
}

type prepare = { view : int; slot : int; request : request }

type signed_prepare = {
  prepare : prepare;
  psig : Qs_crypto.Auth.signature;  (** leader-of-view signature *)
}

type entry = {
  eview : int;  (** view of the prepare this entry stems from *)
  eslot : int;
  erequest : request;
  ecommitted : bool;
  epsig : Qs_crypto.Auth.signature;
      (** the original leader-of-[eview] signature over the prepare, so
          view-change recipients can verify the entry's provenance *)
}
(** Log entry carried by view-change messages. *)

type body =
  | Prepare of signed_prepare
  | Commit of { cview : int; cslot : int; csp : signed_prepare }
  | Suspect of { sview : int }
      (** "view [sview]'s group failed me; move on" (enumeration mode) *)
  | View_change of { vview : int; vlog : entry list }
  | New_view of { nview : int; nlog : entry list }
  | Qsel of Qs_core.Msg.t  (** quorum-selection UPDATE gossip *)

type t = {
  sender : Qs_core.Pid.t;
  body : body;
  signature : Qs_crypto.Auth.signature;
}

val encode_request : request -> string

val encode_prepare : prepare -> string

val encode_body : body -> string

val sign_prepare : Qs_crypto.Auth.t -> leader:int -> prepare -> signed_prepare

val verify_prepare : Qs_crypto.Auth.t -> leader:int -> signed_prepare -> bool
(** Checks the embedded signature against the given leader. *)

val seal : Qs_crypto.Auth.t -> sender:int -> body -> t

val verify : Qs_crypto.Auth.t -> t -> bool

val tag : body -> string
(** Short label for traces: "PREPARE", "COMMIT", … *)

val pp : Format.formatter -> t -> unit
