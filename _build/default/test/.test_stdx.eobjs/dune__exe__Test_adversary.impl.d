test/test_adversary.ml: Alcotest Attack List QCheck QCheck_alcotest Qs_adversary Qs_core Qs_fd Qs_sim Qs_xpaxos String Theorem4
