test/test_bchain.ml: Alcotest Chain_cluster Chain_msg Chain_node Int64 List Printf QCheck QCheck_alcotest Qs_bchain Qs_crypto Qs_fd Qs_sim
