test/test_bchain.mli:
