test/test_chaos.ml: Alcotest Fun Int64 List Printf QCheck QCheck_alcotest Qs_bchain Qs_fd Qs_harness Qs_minbft Qs_pbft Qs_sim Qs_star Qs_stdx Qs_xpaxos
