test/test_core.ml: Alcotest Array Cluster List Msg QCheck QCheck_alcotest Qs_core Qs_crypto Qs_graph Qs_stdx Queue Quorum_select Spec Suspicion_matrix
