test/test_crypto.ml: Alcotest Auth Char Hmac List Printf QCheck QCheck_alcotest Qs_crypto Sha256 String
