test/test_fd.ml: Alcotest List QCheck QCheck_alcotest Qs_fd Qs_sim String
