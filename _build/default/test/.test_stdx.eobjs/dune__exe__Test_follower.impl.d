test/test_follower.ml: Alcotest Fcluster Fmsg Follower_select List QCheck QCheck_alcotest Qs_core Qs_crypto Qs_follower Qs_graph Qs_stdx
