test/test_follower.mli:
