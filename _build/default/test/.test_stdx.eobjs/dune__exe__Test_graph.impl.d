test/test_graph.ml: Alcotest Array Format Graph Indep Line_subgraph List Printf QCheck QCheck_alcotest Qs_graph Qs_stdx
