test/test_harness.ml: Alcotest List Printf Qs_fd Qs_harness Qs_sim String
