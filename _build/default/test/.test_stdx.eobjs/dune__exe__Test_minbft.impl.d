test/test_minbft.ml: Alcotest Array Int64 List Mcluster Mmsg Mreplica Printf QCheck QCheck_alcotest Qs_crypto Qs_fd Qs_minbft Qs_sim Usig
