test/test_minbft.mli:
