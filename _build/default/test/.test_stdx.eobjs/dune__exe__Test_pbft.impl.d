test/test_pbft.ml: Alcotest Int64 List Pcluster Pmsg Preplica Printf QCheck QCheck_alcotest Qs_core Qs_crypto Qs_fd Qs_pbft Qs_sim
