test/test_sim.ml: Alcotest Array Int64 List Network QCheck QCheck_alcotest Qs_sim Qs_stdx Sim String Trace
