test/test_star.ml: Alcotest Int64 List Printf QCheck QCheck_alcotest Qs_crypto Qs_fd Qs_follower Qs_sim Qs_star Star_cluster Star_msg Star_node
