test/test_star.mli:
