test/test_stdx.ml: Alcotest Array Bitset Combin Heap List Option Printf Prng QCheck QCheck_alcotest Qs_stdx Stats String Table
