test/test_xpaxos.ml: Alcotest Enumeration Int64 List Printf QCheck QCheck_alcotest Qs_core Qs_crypto Qs_fd Qs_sim Qs_xpaxos Replica Xcluster Xlog Xmsg
