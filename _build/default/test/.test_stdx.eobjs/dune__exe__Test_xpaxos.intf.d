test/test_xpaxos.mli:
