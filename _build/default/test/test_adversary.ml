(* Adversary tests: the Theorem-4 lower-bound game (pure model + live
   replay) and the named XPaxos attack scenarios. *)

open Qs_adversary
module Stime = Qs_sim.Stime
module Timeout = Qs_fd.Timeout
module Replica = Qs_xpaxos.Replica
module Xcluster = Qs_xpaxos.Xcluster

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_ilist = Alcotest.(check (list int))

(* ------------------------------------------------------------------ *)
(* Theorem 4 pure game *)

let test_target_values () =
  check_int "f=1" 3 (Theorem4.target ~f:1);
  check_int "f=2" 6 (Theorem4.target ~f:2);
  check_int "f=3" 10 (Theorem4.target ~f:3);
  check_int "f=4" 15 (Theorem4.target ~f:4)

let test_default_setup () =
  let s = Theorem4.default_setup ~n:6 ~f:2 in
  check_ilist "faulty are low ids" [ 0; 1 ] s.Theorem4.faulty;
  check_bool "victims next" true (s.Theorem4.victims = (2, 3));
  Alcotest.check_raises "n too small" (Invalid_argument "Theorem4.default_setup: need n >= f + 2")
    (fun () -> ignore (Theorem4.default_setup ~n:3 ~f:2))

let test_quorum_after () =
  let s = Theorem4.default_setup ~n:4 ~f:1 in
  (match Theorem4.quorum_after s [] with
   | Some q -> check_ilist "initial default" [ 0; 1; 2 ] q
   | None -> Alcotest.fail "no quorum");
  match Theorem4.quorum_after s [ (0, 1) ] with
  | Some q -> check_ilist "avoids the pair" [ 0; 2; 3 ] q
  | None -> Alcotest.fail "no quorum"

let test_eligible_requires_faulty_endpoint () =
  let s = Theorem4.default_setup ~n:4 ~f:1 in
  (* Quorum {1,2,3} contains no faulty process: no eligible pairs. *)
  check_ilist "none" []
    (List.map fst (Theorem4.eligible s ~used:[] ~quorum:[ 1; 2; 3 ]));
  (* Quorum {0,1,2}: pairs (0,1) and (0,2), suspector is the correct one. *)
  let pairs = Theorem4.eligible s ~used:[] ~quorum:[ 0; 1; 2 ] in
  Alcotest.(check (list (pair int int))) "earned suspicions" [ (1, 0); (2, 0) ] pairs

let test_eligible_excludes_used () =
  let s = Theorem4.default_setup ~n:4 ~f:1 in
  let pairs = Theorem4.eligible s ~used:[ (0, 1) ] ~quorum:[ 0; 1; 2 ] in
  Alcotest.(check (list (pair int int))) "used pair dropped" [ (2, 0) ] pairs

let test_exhaustive_achieves_bound_f1 () =
  let s = Theorem4.default_setup ~n:4 ~f:1 in
  let game = Theorem4.exhaustive s in
  (* C(3,2) = 3 quorums including the initial default: 2 injections. *)
  check_int "injections" (Theorem4.target ~f:1 - 1) (List.length game.Theorem4.injections)

let test_exhaustive_achieves_bound_f2 () =
  let s = Theorem4.default_setup ~n:6 ~f:2 in
  let game = Theorem4.exhaustive s in
  check_int "injections" (Theorem4.target ~f:2 - 1) (List.length game.Theorem4.injections)

let test_exhaustive_achieves_bound_f3 () =
  let s = Theorem4.default_setup ~n:8 ~f:3 in
  let game = Theorem4.exhaustive s in
  check_int "injections" (Theorem4.target ~f:3 - 1) (List.length game.Theorem4.injections)

let test_exhaustive_guard () =
  Alcotest.check_raises "too many pairs"
    (Invalid_argument "Theorem4.exhaustive: too many pairs; use greedy for large f") (fun () ->
      ignore (Theorem4.exhaustive (Theorem4.default_setup ~n:14 ~f:6)))

let test_greedy_reasonable () =
  let s = Theorem4.default_setup ~n:6 ~f:2 in
  let game = Theorem4.greedy s in
  let len = List.length game.Theorem4.injections in
  check_bool "at least f+1 injections" true (len >= 3);
  check_bool "at most the bound" true (len <= Theorem4.target ~f:2 - 1)

let test_quorum_changes_every_injection () =
  let s = Theorem4.default_setup ~n:6 ~f:2 in
  let game = Theorem4.exhaustive s in
  let rec distinct_consecutive prev = function
    | [] -> true
    | q :: rest -> q <> prev && distinct_consecutive q rest
  in
  check_bool "each injection changes the quorum" true
    (distinct_consecutive [ 0; 1; 2; 3 ] game.Theorem4.quorums)

(* ------------------------------------------------------------------ *)
(* Replay on the live cluster *)

let test_replay_f1 () =
  let s = Theorem4.default_setup ~n:4 ~f:1 in
  let game = Theorem4.exhaustive s in
  let issued = Theorem4.replay s game in
  check_int "live cluster issues the predicted count" (List.length game.Theorem4.injections) issued

let test_replay_f2 () =
  let s = Theorem4.default_setup ~n:6 ~f:2 in
  let game = Theorem4.exhaustive s in
  let issued = Theorem4.replay s game in
  check_int "live == pure model" (Theorem4.target ~f:2 - 1) issued

let test_replay_f3 () =
  let s = Theorem4.default_setup ~n:8 ~f:3 in
  let game = Theorem4.exhaustive s in
  let issued = Theorem4.replay s game in
  check_int "live == pure model" (Theorem4.target ~f:3 - 1) issued

let test_upper_bound_respected () =
  (* Theorem 3 sanity on the adversarial runs: per-epoch issues stay within
     f(f+1); here the whole game runs in epoch 1. *)
  List.iter
    (fun (n, f) ->
      let s = Theorem4.default_setup ~n ~f in
      let game = Theorem4.exhaustive s in
      let issued = List.length game.Theorem4.injections in
      check_bool "<= f(f+1)" true (Qs_core.Spec.upper_bound_per_epoch ~f ~issued);
      check_bool "<= C(f+2,2)" true (Qs_core.Spec.conjectured_bound_per_epoch ~f ~issued))
    [ (4, 1); (6, 2); (8, 3) ]

(* ------------------------------------------------------------------ *)
(* Attack scenarios *)

let ms = Stime.of_ms

let base_config () =
  {
    Replica.n = 5;
    f = 2;
    mode = Replica.Enumeration;
    initial_timeout = ms 20;
    timeout_strategy = Timeout.Exponential { factor = 2.0; max = ms 2000 };
  }

let test_attack_mute () =
  let c = Xcluster.create (base_config ()) in
  Attack.apply c (Attack.Mute_replicas [ 0; 1 ]);
  let r = Xcluster.submit c ~resubmit_every:(ms 100) "mute-two" in
  Xcluster.run ~until:(ms 5000) c;
  check_bool "survives two mute replicas" true (Xcluster.is_globally_committed c r);
  check_bool "consistent" true (Xcluster.consistent c ~correct:[ 2; 3; 4 ])

let test_attack_omit_links () =
  let c = Xcluster.create (base_config ()) in
  Attack.apply c (Attack.Omit_links [ (0, 1); (0, 2) ]);
  let r = Xcluster.submit c ~resubmit_every:(ms 100) "omit" in
  Xcluster.run ~until:(ms 5000) c;
  check_bool "survives link omissions" true (Xcluster.is_globally_committed c r)

let test_attack_equivocate () =
  let c = Xcluster.create (base_config ()) in
  Attack.apply c (Attack.Equivocate { leader = 0; victim = 2 });
  let r = Xcluster.submit c ~resubmit_every:(ms 100) "equiv" in
  Xcluster.run ~until:(ms 5000) c;
  check_bool "detected by someone" true
    (List.exists (fun p -> List.mem 0 (Replica.detections (Xcluster.replica c p))) [ 1; 2; 3; 4 ]);
  check_bool "committed anyway" true (Xcluster.is_globally_committed c r)

let test_attack_ramp_delay_defeats_fixed_timeout () =
  (* Increasing timing failure (Section II): with a FIXED timeout the
     delayed link keeps producing suspicions forever; with exponential
     backoff the timeout eventually outgrows... nothing, because the delay
     is unbounded — the faulty process is rightly suspected forever.
     Here we check the ramp produces repeated suspicions at the victim. *)
  let config = { (base_config ()) with Replica.timeout_strategy = Timeout.Fixed } in
  let c = Xcluster.create config in
  Attack.apply c (Attack.Ramp_delay { src = 0; dst = 1; step = ms 30; every = ms 50 });
  (* Let the ramp grow well past the fixed 20ms timeout, then submit. *)
  Xcluster.run ~until:(ms 400) c;
  ignore (Xcluster.submit c "late");
  Xcluster.run ~until:(ms 3000) c;
  let fd = Replica.detector (Xcluster.replica c 1) in
  check_bool "suspicions raised at delayed peer" true (Qs_fd.Detector.raised_total fd > 0)

let test_describe () =
  check_bool "describe mute" true (String.length (Attack.describe (Attack.Mute_replicas [ 1 ])) > 0);
  check_bool "describe ramp" true
    (String.length
       (Attack.describe (Attack.Ramp_delay { src = 0; dst = 1; step = 1; every = 1 }))
    > 0)

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_exhaustive_never_exceeds_bound =
  QCheck.Test.make ~name:"exhaustive game never exceeds C(f+2,2)-1 injections" ~count:20
    QCheck.(pair (int_range 1 3) (int_range 0 3))
    (fun (f, extra) ->
      let n = (2 * f) + 2 + extra in
      let s = Theorem4.default_setup ~n ~f in
      let game = Theorem4.exhaustive s in
      List.length game.Theorem4.injections <= Theorem4.target ~f - 1)

let prop_greedy_replay_consistent =
  QCheck.Test.make ~name:"greedy games replay exactly on the live cluster" ~count:15
    QCheck.(pair (int_range 1 3) (int_range 0 2))
    (fun (f, extra) ->
      let n = (2 * f) + 2 + extra in
      let s = Theorem4.default_setup ~n ~f in
      let game = Theorem4.greedy s in
      Theorem4.replay s game = List.length game.Theorem4.injections)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_exhaustive_never_exceeds_bound; prop_greedy_replay_consistent ]

let () =
  Alcotest.run "adversary"
    [
      ( "theorem4-model",
        [
          Alcotest.test_case "target values" `Quick test_target_values;
          Alcotest.test_case "default setup" `Quick test_default_setup;
          Alcotest.test_case "quorum_after" `Quick test_quorum_after;
          Alcotest.test_case "eligibility needs faulty endpoint" `Quick
            test_eligible_requires_faulty_endpoint;
          Alcotest.test_case "used pairs excluded" `Quick test_eligible_excludes_used;
          Alcotest.test_case "bound achieved f=1" `Quick test_exhaustive_achieves_bound_f1;
          Alcotest.test_case "bound achieved f=2" `Quick test_exhaustive_achieves_bound_f2;
          Alcotest.test_case "bound achieved f=3" `Quick test_exhaustive_achieves_bound_f3;
          Alcotest.test_case "exhaustive guard" `Quick test_exhaustive_guard;
          Alcotest.test_case "greedy reasonable" `Quick test_greedy_reasonable;
          Alcotest.test_case "every injection changes quorum" `Quick
            test_quorum_changes_every_injection;
        ] );
      ( "theorem4-replay",
        [
          Alcotest.test_case "replay f=1" `Quick test_replay_f1;
          Alcotest.test_case "replay f=2" `Quick test_replay_f2;
          Alcotest.test_case "replay f=3" `Quick test_replay_f3;
          Alcotest.test_case "upper bounds respected" `Quick test_upper_bound_respected;
        ] );
      ( "attacks",
        [
          Alcotest.test_case "mute replicas" `Quick test_attack_mute;
          Alcotest.test_case "omit links" `Quick test_attack_omit_links;
          Alcotest.test_case "equivocate" `Quick test_attack_equivocate;
          Alcotest.test_case "ramp delay" `Quick test_attack_ramp_delay_defeats_fixed_timeout;
          Alcotest.test_case "describe" `Quick test_describe;
        ] );
      ("properties", qsuite);
    ]
