(* BChain-style chain replication tests: message pattern, precise blame for
   mid-chain omissions, quorum-selection-driven re-chaining. *)

open Qs_bchain
module Stime = Qs_sim.Stime
module Timeout = Qs_fd.Timeout
module Detector = Qs_fd.Detector

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_ilist = Alcotest.(check (list int))

let ms = Stime.of_ms

let config ?(n = 7) ?(f = 2) ?(timeout = ms 50) () =
  {
    Chain_node.n;
    f;
    initial_timeout = timeout;
    timeout_strategy = Timeout.Exponential { factor = 2.0; max = ms 2000 };
  }

(* ------------------------------------------------------------------ *)
(* Messages *)

let test_msg_roundtrip () =
  let auth = Qs_crypto.Auth.create 4 in
  let req = { Chain_msg.client = 0; rid = 1; op = "x" } in
  let hsig = Chain_msg.sign_head auth ~head:0 ~slot:3 ~cepoch:1 req in
  let fwd = { Chain_msg.slot = 3; cepoch = 1; request = req; hsig } in
  check_bool "head binding verifies" true (Chain_msg.verify_head auth ~head:0 fwd);
  check_bool "wrong head rejected" false (Chain_msg.verify_head auth ~head:1 fwd);
  check_bool "tampered slot rejected" false
    (Chain_msg.verify_head auth ~head:0 { fwd with Chain_msg.slot = 4 });
  let m = Chain_msg.seal auth ~sender:2 (Chain_msg.Forward fwd) in
  check_bool "envelope verifies" true (Chain_msg.verify auth m)

(* ------------------------------------------------------------------ *)
(* Happy path *)

let test_chain_commits () =
  let c = Chain_cluster.create (config ()) in
  let r = Chain_cluster.submit c "write" in
  Chain_cluster.run c;
  check_bool "committed along the chain" true (Chain_cluster.is_committed c r);
  check_ilist "all chain members executed" [ 0; 1; 2; 3; 4 ] (Chain_cluster.executed_by c r)

let test_chain_message_complexity () =
  (* One request on a chain of q members: (q-1) forwards + (q-1) acks. *)
  let c = Chain_cluster.create (config ()) in
  let _ = Chain_cluster.submit c "op" in
  Chain_cluster.run c;
  let q = 5 in
  check_int "2(q-1) messages" (2 * (q - 1)) (Chain_cluster.message_count c)

let test_chain_ordering_consistent () =
  let c = Chain_cluster.create (config ()) in
  let _ = Chain_cluster.submit c "a" in
  let _ = Chain_cluster.submit c "b" in
  let _ = Chain_cluster.submit c "c" in
  Chain_cluster.run c;
  let log p = List.map (fun r -> r.Chain_msg.op) (Chain_node.executed (Chain_cluster.node c p)) in
  let reference = log 0 in
  check_int "three ops" 3 (List.length reference);
  List.iter (fun p -> Alcotest.(check (list string)) "same log" reference (log p)) [ 1; 2; 3; 4 ]

let test_dedup_on_resubmission () =
  let c = Chain_cluster.create (config ()) in
  let r = Chain_cluster.submit c ~resubmit_every:(ms 30) "only-once" in
  Chain_cluster.run ~until:(ms 500) c;
  check_bool "committed" true (Chain_cluster.is_committed c r);
  let log = Chain_node.executed (Chain_cluster.node c 1) in
  check_int "executed exactly once despite resubmissions" 1 (List.length log)

(* ------------------------------------------------------------------ *)
(* Failure handling *)

let test_midchain_omission_separates_the_pair () =
  (* p3 (id 2) drops everything to its successor p4 (id 3). Only the two
     link endpoints can know anything: a single omission cannot identify
     which endpoint is faulty (the asymmetry Theorem 4 exploits), so the
     system's obligation is to separate the PAIR — and to implicate nobody
     else. *)
  let c = Chain_cluster.create (config ~timeout:(ms 20) ()) in
  Chain_cluster.set_fault c 2 (Chain_node.Omit_to [ 3 ]);
  let r = Chain_cluster.submit c ~resubmit_every:(ms 100) "blame" in
  Chain_cluster.run ~until:(ms 5000) c;
  check_bool "eventually committed on a re-formed chain" true (Chain_cluster.is_committed c r);
  let final_chain = Chain_node.chain (Chain_cluster.node c 1) in
  check_bool "suspected pair separated" false
    (List.mem 2 final_chain && List.mem 3 final_chain);
  (* Position-scaled timeouts keep the blame local: the upstream nodes never
     raised any suspicion. *)
  List.iter
    (fun p ->
      check_int
        (Printf.sprintf "no suspicion raised at p%d" (p + 1))
        0
        (Detector.raised_total (Chain_node.detector (Chain_cluster.node c p))))
    [ 0; 1 ]

let test_mute_head_replaced () =
  let c = Chain_cluster.create (config ~timeout:(ms 20) ()) in
  Chain_cluster.set_fault c 0 Chain_node.Mute;
  let r = Chain_cluster.submit c ~resubmit_every:(ms 100) "new-head" in
  Chain_cluster.run ~until:(ms 5000) c;
  check_bool "committed under a new head" true (Chain_cluster.is_committed c r);
  let node1 = Chain_cluster.node c 1 in
  check_bool "head changed" true (Chain_node.head node1 <> 0);
  check_bool "chain epoch advanced" true (Chain_node.chain_epoch node1 >= 1)

let test_mute_tail_replaced () =
  let c = Chain_cluster.create (config ~timeout:(ms 20) ()) in
  (* Tail of the initial chain {0..4} is p5 (id 4). *)
  Chain_cluster.set_fault c 4 Chain_node.Mute;
  let r = Chain_cluster.submit c ~resubmit_every:(ms 100) "new-tail" in
  Chain_cluster.run ~until:(ms 5000) c;
  check_bool "committed without the mute tail" true (Chain_cluster.is_committed c r);
  check_bool "tail excluded" false (List.mem 4 (Chain_node.chain (Chain_cluster.node c 1)))

let test_equivocating_head_detected () =
  (* Two different requests bound to the same slot in the same epoch is a
     provable commission failure of the head. We inject the second binding
     directly at a member. *)
  let c = Chain_cluster.create (config ~timeout:(ms 500) ()) in
  let r = Chain_cluster.submit c "honest" in
  Chain_cluster.run ~until:(ms 10) c;
  let auth = Qs_crypto.Auth.create 7 in
  let evil_req = { Chain_msg.client = 9; rid = 9; op = "evil" } in
  let fwd =
    {
      Chain_msg.slot = 0;
      cepoch = 0;
      request = evil_req;
      hsig = Chain_msg.sign_head auth ~head:0 ~slot:0 ~cepoch:0 evil_req;
    }
  in
  (* Deliver as if from p1 (the predecessor of p2 on the chain). *)
  let node1 = Chain_cluster.node c 1 in
  Chain_node.receive node1 ~src:0 (Chain_msg.seal auth ~sender:0 (Chain_msg.Forward fwd));
  Chain_cluster.run ~until:(ms 20) c;
  check_bool "double binding detected" true
    (Detector.is_detected (Chain_node.detector node1) 0);
  (* The honest request had already executed on every member of the original
     chain before the detection re-chained the system. *)
  check_ilist "honest request executed on the original chain" [ 0; 1; 2; 3; 4 ]
    (Chain_cluster.executed_by c r)

let test_non_chain_members_passive () =
  let c = Chain_cluster.create (config ()) in
  let r = Chain_cluster.submit c "op" in
  Chain_cluster.run c;
  (* Processes 5 and 6 are outside the quorum: they execute nothing. *)
  check_bool "outsiders passive" true
    (not (List.mem 5 (Chain_cluster.executed_by c r))
    && not (List.mem 6 (Chain_cluster.executed_by c r)))

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_single_fault_recovery =
  QCheck.Test.make ~name:"chain recovers from any single mute member" ~count:20
    QCheck.(pair (int_range 1 500) (int_bound 4))
    (fun (seed, faulty) ->
      let c = Chain_cluster.create ~seed:(Int64.of_int seed) (config ~f:2 ~timeout:(ms 20) ()) in
      Chain_cluster.set_fault c faulty Chain_node.Mute;
      let r = Chain_cluster.submit c ~resubmit_every:(ms 100) "survive" in
      Chain_cluster.run ~until:(ms 8000) c;
      Chain_cluster.is_committed c r
      && not (List.mem faulty (Chain_node.chain (Chain_cluster.node c ((faulty + 1) mod 7)))))

let prop_no_duplicate_execution =
  QCheck.Test.make ~name:"exactly-once execution per node" ~count:20
    QCheck.(int_range 1 500)
    (fun seed ->
      let c = Chain_cluster.create ~seed:(Int64.of_int seed) (config ~timeout:(ms 20) ()) in
      for i = 0 to 3 do
        ignore (Chain_cluster.submit c ~resubmit_every:(ms 40) (Printf.sprintf "op%d" i))
      done;
      Chain_cluster.run ~until:(ms 3000) c;
      List.for_all
        (fun p ->
          let ops =
            List.map (fun r -> (r.Chain_msg.client, r.Chain_msg.rid))
              (Chain_node.executed (Chain_cluster.node c p))
          in
          List.length ops = List.length (List.sort_uniq compare ops))
        [ 0; 1; 2; 3; 4; 5; 6 ])

let qsuite =
  List.map QCheck_alcotest.to_alcotest [ prop_single_fault_recovery; prop_no_duplicate_execution ]

let () =
  Alcotest.run "bchain"
    [
      ("messages", [ Alcotest.test_case "roundtrip" `Quick test_msg_roundtrip ]);
      ( "happy-path",
        [
          Alcotest.test_case "commits along chain" `Quick test_chain_commits;
          Alcotest.test_case "2(q-1) messages" `Quick test_chain_message_complexity;
          Alcotest.test_case "identical logs" `Quick test_chain_ordering_consistent;
          Alcotest.test_case "dedup on resubmission" `Quick test_dedup_on_resubmission;
          Alcotest.test_case "outsiders passive" `Quick test_non_chain_members_passive;
        ] );
      ( "failures",
        [
          Alcotest.test_case "mid-chain omission separates the pair" `Quick
            test_midchain_omission_separates_the_pair;
          Alcotest.test_case "mute head replaced" `Quick test_mute_head_replaced;
          Alcotest.test_case "mute tail replaced" `Quick test_mute_tail_replaced;
          Alcotest.test_case "equivocating head detected" `Quick test_equivocating_head_detected;
        ] );
      ("properties", qsuite);
    ]
