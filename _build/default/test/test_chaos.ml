(* Chaos tests: randomized fault combinations across every protocol stack,
   checked against the invariants that must survive anything the model
   allows — prefix consistency of replicated logs, exactly-once execution,
   eventual commitment, and quorum-selection agreement. *)

module Stime = Qs_sim.Stime
module Timeout = Qs_fd.Timeout
module Prng = Qs_stdx.Prng

let ms = Stime.of_ms

let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Fault plans: up to f mute processes plus random link omissions and
   delays originating at those faulty processes (keeping the model's
   promise that correct-correct links stay reliable and timely). *)

type plan = {
  mute : int list;
  omit : (int * int) list; (* src faulty *)
  delay : (int * int) list;
}

let gen_plan rng ~n ~f =
  let faulty = Prng.sample rng (Prng.int_in rng 0 f) (List.init n Fun.id) in
  let mute = List.filter (fun _ -> Prng.bool rng) faulty in
  let links kind =
    List.concat_map
      (fun src ->
        if List.mem src mute then []
        else
          List.filter_map
            (fun dst -> if dst <> src && Prng.chance rng kind then Some (src, dst) else None)
            (List.init n Fun.id))
      faulty
  in
  { mute; omit = links 0.3; delay = links 0.2 }

let correct_of ~n plan =
  let faulty = plan.mute @ List.map fst plan.omit @ List.map fst plan.delay in
  List.filter (fun p -> not (List.mem p faulty)) (List.init n Fun.id)

(* ------------------------------------------------------------------ *)
(* XPaxos under chaos *)

let xpaxos_chaos ~seed ~mode =
  let n = 5 and f = 2 in
  let rng = Prng.of_int seed in
  let plan = gen_plan rng ~n ~f in
  let config =
    {
      Qs_xpaxos.Replica.n;
      f;
      mode;
      initial_timeout = ms 25;
      timeout_strategy = Timeout.Exponential { factor = 2.0; max = ms 2000 };
    }
  in
  let c = Qs_xpaxos.Xcluster.create ~seed:(Int64.of_int seed) config in
  List.iter (fun p -> Qs_xpaxos.Xcluster.set_fault c p Qs_xpaxos.Replica.Mute) plan.mute;
  List.iter (fun (s, d) -> Qs_xpaxos.Xcluster.omit_link c ~src:s ~dst:d) plan.omit;
  List.iter (fun (s, d) -> Qs_xpaxos.Xcluster.delay_link c ~src:s ~dst:d ~by:(ms 120)) plan.delay;
  let requests =
    List.init 4 (fun i ->
        Qs_xpaxos.Xcluster.submit c ~resubmit_every:(ms 150) (Printf.sprintf "op%d" i))
  in
  Qs_xpaxos.Xcluster.run ~until:(ms 10_000) c;
  let correct = correct_of ~n plan in
  let consistent = Qs_xpaxos.Xcluster.consistent c ~correct in
  let all_committed =
    List.for_all (Qs_xpaxos.Xcluster.is_globally_committed c) requests
  in
  (consistent, all_committed)

let prop_xpaxos_enum_chaos =
  QCheck.Test.make ~name:"xpaxos/enumeration: consistency + liveness under chaos" ~count:20
    QCheck.(int_range 1 100000)
    (fun seed ->
      let consistent, committed = xpaxos_chaos ~seed ~mode:Qs_xpaxos.Replica.Enumeration in
      consistent && committed)

let prop_xpaxos_qs_chaos =
  QCheck.Test.make ~name:"xpaxos/quorum-selection: consistency + liveness under chaos"
    ~count:20
    QCheck.(int_range 1 100000)
    (fun seed ->
      let consistent, committed = xpaxos_chaos ~seed ~mode:Qs_xpaxos.Replica.Quorum_selection in
      consistent && committed)

(* ------------------------------------------------------------------ *)
(* PBFT under chaos *)

let prop_pbft_selected_chaos =
  QCheck.Test.make ~name:"pbft/selected: consistency + liveness under chaos" ~count:15
    QCheck.(int_range 1 100000)
    (fun seed ->
      let n = 7 and f = 2 in
      let rng = Prng.of_int seed in
      let plan = gen_plan rng ~n ~f in
      let config =
        {
          Qs_pbft.Preplica.n;
          f;
          participation = Qs_pbft.Preplica.Selected;
          initial_timeout = ms 25;
          timeout_strategy = Timeout.Exponential { factor = 2.0; max = ms 2000 };
        }
      in
      let c = Qs_pbft.Pcluster.create ~seed:(Int64.of_int seed) config in
      List.iter (fun p -> Qs_pbft.Pcluster.set_fault c p Qs_pbft.Preplica.Mute) plan.mute;
      List.iter
        (fun (s, d) -> Qs_pbft.Pcluster.set_fault c s (Qs_pbft.Preplica.Omit_to [ d ]))
        plan.omit;
      let requests =
        List.init 3 (fun i ->
            Qs_pbft.Pcluster.submit c ~resubmit_every:(ms 150) (Printf.sprintf "op%d" i))
      in
      Qs_pbft.Pcluster.run ~until:(ms 12_000) c;
      let correct = correct_of ~n { plan with delay = [] } in
      Qs_pbft.Pcluster.consistent c ~correct
      && List.for_all (Qs_pbft.Pcluster.is_globally_committed c) requests)

(* ------------------------------------------------------------------ *)
(* Chain and star: exactly-once + recovery *)

let prop_chain_chaos =
  QCheck.Test.make ~name:"chain: exactly-once + recovery under chaos" ~count:15
    QCheck.(int_range 1 100000)
    (fun seed ->
      let n = 7 and f = 2 in
      let rng = Prng.of_int seed in
      let plan = gen_plan rng ~n ~f in
      let config =
        {
          Qs_bchain.Chain_node.n;
          f;
          initial_timeout = ms 25;
          timeout_strategy = Timeout.Exponential { factor = 2.0; max = ms 2000 };
        }
      in
      let c = Qs_bchain.Chain_cluster.create ~seed:(Int64.of_int seed) config in
      List.iter
        (fun p -> Qs_bchain.Chain_cluster.set_fault c p Qs_bchain.Chain_node.Mute)
        plan.mute;
      List.iter
        (fun (s, d) ->
          Qs_bchain.Chain_cluster.set_fault c s (Qs_bchain.Chain_node.Omit_to [ d ]))
        plan.omit;
      let requests =
        List.init 3 (fun i ->
            Qs_bchain.Chain_cluster.submit c ~resubmit_every:(ms 120) (Printf.sprintf "op%d" i))
      in
      Qs_bchain.Chain_cluster.run ~until:(ms 12_000) c;
      let committed = List.for_all (Qs_bchain.Chain_cluster.is_committed c) requests in
      let exactly_once =
        List.for_all
          (fun p ->
            let ids =
              List.map
                (fun r -> (r.Qs_bchain.Chain_msg.client, r.Qs_bchain.Chain_msg.rid))
                (Qs_bchain.Chain_node.executed (Qs_bchain.Chain_cluster.node c p))
            in
            List.length ids = List.length (List.sort_uniq compare ids))
          (List.init n Fun.id)
      in
      committed && exactly_once)

let prop_star_chaos =
  QCheck.Test.make ~name:"star: exactly-once + recovery under chaos" ~count:15
    QCheck.(int_range 1 100000)
    (fun seed ->
      let n = 7 and f = 2 in
      let rng = Prng.of_int seed in
      let plan = gen_plan rng ~n ~f in
      let config =
        {
          Qs_star.Star_node.n;
          f;
          initial_timeout = ms 25;
          timeout_strategy = Timeout.Exponential { factor = 2.0; max = ms 2000 };
        }
      in
      let c = Qs_star.Star_cluster.create ~seed:(Int64.of_int seed) config in
      List.iter (fun p -> Qs_star.Star_cluster.set_fault c p Qs_star.Star_node.Mute) plan.mute;
      List.iter
        (fun (s, d) -> Qs_star.Star_cluster.set_fault c s (Qs_star.Star_node.Omit_to [ d ]))
        plan.omit;
      let requests =
        List.init 3 (fun i ->
            Qs_star.Star_cluster.submit c ~resubmit_every:(ms 120) (Printf.sprintf "op%d" i))
      in
      Qs_star.Star_cluster.run ~until:(ms 12_000) c;
      List.for_all (Qs_star.Star_cluster.is_committed c) requests)

let prop_minbft_chaos =
  QCheck.Test.make ~name:"minbft/selected: liveness under chaos" ~count:15
    QCheck.(int_range 1 100000)
    (fun seed ->
      let f = 2 in
      let n = (2 * f) + 1 in
      let rng = Prng.of_int seed in
      let plan = gen_plan rng ~n ~f in
      let config =
        {
          Qs_minbft.Mreplica.n;
          f;
          participation = Qs_minbft.Mreplica.Selected;
          initial_timeout = ms 25;
          timeout_strategy = Timeout.Exponential { factor = 2.0; max = ms 2000 };
        }
      in
      let c = Qs_minbft.Mcluster.create ~seed:(Int64.of_int seed) config in
      List.iter (fun p -> Qs_minbft.Mcluster.set_fault c p Qs_minbft.Mreplica.Mute) plan.mute;
      List.iter
        (fun (s, d) -> Qs_minbft.Mcluster.set_fault c s (Qs_minbft.Mreplica.Omit_to [ d ]))
        plan.omit;
      let requests =
        List.init 3 (fun i ->
            Qs_minbft.Mcluster.submit c ~resubmit_every:(ms 120) (Printf.sprintf "op%d" i))
      in
      Qs_minbft.Mcluster.run ~until:(ms 12_000) c;
      List.for_all (Qs_minbft.Mcluster.is_committed c) requests)

(* ------------------------------------------------------------------ *)
(* Heartbeat stack: agreement whatever the (bounded) fault mix *)

let prop_heartbeat_chaos =
  QCheck.Test.make ~name:"heartbeat stack: agreement under chaos" ~count:15
    QCheck.(int_range 1 100000)
    (fun seed ->
      let n = 7 and f = 2 in
      let rng = Prng.of_int seed in
      let plan = gen_plan rng ~n ~f in
      let t =
        Qs_harness.Heartbeat.create ~seed:(Int64.of_int seed)
          {
            Qs_harness.Heartbeat.n;
            f;
            heartbeat_period = ms 50;
            initial_timeout = ms 120;
            timeout_strategy = Timeout.Exponential { factor = 2.0; max = ms 2000 };
          }
      in
      List.iter (fun p -> Qs_harness.Heartbeat.crash t p (ms 300)) plan.mute;
      List.iter
        (fun (s, d) -> Qs_harness.Heartbeat.omit_link t ~src:s ~dst:d ~from:(ms 300))
        plan.omit;
      Qs_harness.Heartbeat.run ~until:(ms 6000) t;
      let correct = correct_of ~n { plan with delay = [] } in
      Qs_harness.Heartbeat.agreed_quorum t ~correct <> None
      && Qs_harness.Heartbeat.matrices_agree t ~correct)

(* One deterministic smoke case so failures reproduce trivially. *)
let test_known_mixed_scenario () =
  let consistent, committed = xpaxos_chaos ~seed:4242 ~mode:Qs_xpaxos.Replica.Quorum_selection in
  check_bool "consistent" true consistent;
  check_bool "committed" true committed

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_xpaxos_enum_chaos;
      prop_xpaxos_qs_chaos;
      prop_pbft_selected_chaos;
      prop_chain_chaos;
      prop_star_chaos;
      prop_minbft_chaos;
      prop_heartbeat_chaos;
    ]

let () =
  Alcotest.run "chaos"
    [
      ("smoke", [ Alcotest.test_case "known mixed scenario" `Quick test_known_mixed_scenario ]);
      ("properties", qsuite);
    ]
