(* Core Quorum Selection tests: the suspicion-matrix CRDT, UPDATE message
   authentication, and Algorithm 1 end-to-end on the gossip-bus cluster. *)

open Qs_core
module Graph = Qs_graph.Graph

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_ilist = Alcotest.(check (list int))

(* ------------------------------------------------------------------ *)
(* Suspicion matrix *)

let test_matrix_record_get () =
  let m = Suspicion_matrix.create 4 in
  check_int "initially 0" 0 (Suspicion_matrix.get m ~suspector:0 ~suspect:1);
  Suspicion_matrix.record m ~suspector:0 ~suspect:1 ~epoch:3;
  check_int "recorded" 3 (Suspicion_matrix.get m ~suspector:0 ~suspect:1);
  check_int "directional" 0 (Suspicion_matrix.get m ~suspector:1 ~suspect:0)

let test_matrix_max_semantics () =
  let m = Suspicion_matrix.create 3 in
  Suspicion_matrix.record m ~suspector:0 ~suspect:1 ~epoch:5;
  Suspicion_matrix.record m ~suspector:0 ~suspect:1 ~epoch:2;
  check_int "never lowered" 5 (Suspicion_matrix.get m ~suspector:0 ~suspect:1)

let test_matrix_self_suspicion_rejected () =
  let m = Suspicion_matrix.create 3 in
  Alcotest.check_raises "self" (Invalid_argument "Suspicion_matrix.record: self-suspicion")
    (fun () -> Suspicion_matrix.record m ~suspector:1 ~suspect:1 ~epoch:1)

let test_matrix_merge_row () =
  let m = Suspicion_matrix.create 3 in
  Suspicion_matrix.record m ~suspector:1 ~suspect:0 ~epoch:4;
  let changed = Suspicion_matrix.merge_row m ~owner:1 [| 2; 0; 3 |] in
  check_bool "changed" true changed;
  check_int "kept max" 4 (Suspicion_matrix.get m ~suspector:1 ~suspect:0);
  check_int "took new" 3 (Suspicion_matrix.get m ~suspector:1 ~suspect:2);
  let changed2 = Suspicion_matrix.merge_row m ~owner:1 [| 2; 0; 3 |] in
  check_bool "idempotent" false changed2

let test_matrix_merge_row_ignores_self_cell () =
  let m = Suspicion_matrix.create 3 in
  (* A malicious row claiming a self-suspicion must not corrupt state. *)
  let changed = Suspicion_matrix.merge_row m ~owner:1 [| 0; 9; 0 |] in
  check_bool "self cell ignored" false changed;
  check_int "still 0" 0 (Suspicion_matrix.get m ~suspector:1 ~suspect:1)

let test_matrix_bad_width () =
  let m = Suspicion_matrix.create 3 in
  Alcotest.check_raises "width" (Invalid_argument "Suspicion_matrix.merge_row: bad width")
    (fun () -> ignore (Suspicion_matrix.merge_row m ~owner:0 [| 1 |]))

let test_matrix_suspect_graph_symmetric () =
  let m = Suspicion_matrix.create 4 in
  Suspicion_matrix.record m ~suspector:2 ~suspect:0 ~epoch:1;
  let g = Suspicion_matrix.suspect_graph m ~epoch:1 in
  check_bool "one-directional suspicion still an edge" true (Graph.has_edge g 0 2);
  check_int "single edge" 1 (Graph.edge_count g)

let test_matrix_suspect_graph_epoch_filter () =
  let m = Suspicion_matrix.create 4 in
  Suspicion_matrix.record m ~suspector:0 ~suspect:1 ~epoch:1;
  Suspicion_matrix.record m ~suspector:2 ~suspect:3 ~epoch:2;
  let g1 = Suspicion_matrix.suspect_graph m ~epoch:1 in
  check_int "both edges at epoch 1" 2 (Graph.edge_count g1);
  let g2 = Suspicion_matrix.suspect_graph m ~epoch:2 in
  check_bool "old suspicion aged out" false (Graph.has_edge g2 0 1);
  check_bool "fresh one kept" true (Graph.has_edge g2 2 3)

let test_matrix_max_epoch () =
  let m = Suspicion_matrix.create 3 in
  check_int "empty" 0 (Suspicion_matrix.max_epoch m);
  Suspicion_matrix.record m ~suspector:0 ~suspect:2 ~epoch:7;
  check_int "max" 7 (Suspicion_matrix.max_epoch m)

let test_matrix_merge_whole () =
  let a = Suspicion_matrix.create 3 and b = Suspicion_matrix.create 3 in
  Suspicion_matrix.record a ~suspector:0 ~suspect:1 ~epoch:2;
  Suspicion_matrix.record b ~suspector:1 ~suspect:2 ~epoch:3;
  check_bool "changed" true (Suspicion_matrix.merge a b);
  check_int "imported" 3 (Suspicion_matrix.get a ~suspector:1 ~suspect:2);
  check_int "kept" 2 (Suspicion_matrix.get a ~suspector:0 ~suspect:1)

(* CRDT laws *)

let random_matrix rng n =
  let m = Suspicion_matrix.create n in
  for _ = 1 to Qs_stdx.Prng.int_in rng 0 8 do
    let i = Qs_stdx.Prng.int rng n and j = Qs_stdx.Prng.int rng n in
    if i <> j then Suspicion_matrix.record m ~suspector:i ~suspect:j ~epoch:(Qs_stdx.Prng.int_in rng 1 5)
  done;
  m

let merged a b =
  let c = Suspicion_matrix.copy a in
  ignore (Suspicion_matrix.merge c b);
  c

let matrix_law name law =
  QCheck.Test.make ~name ~count:200 QCheck.(int_range 0 100000) (fun seed ->
      let rng = Qs_stdx.Prng.of_int seed in
      let n = Qs_stdx.Prng.int_in rng 2 5 in
      law (random_matrix rng n) (random_matrix rng n) (random_matrix rng n))

let prop_merge_commutative =
  matrix_law "matrix merge commutes" (fun a b _ ->
      Suspicion_matrix.equal (merged a b) (merged b a))

let prop_merge_associative =
  matrix_law "matrix merge associates" (fun a b c ->
      Suspicion_matrix.equal (merged (merged a b) c) (merged a (merged b c)))

let prop_merge_idempotent =
  matrix_law "matrix merge idempotent" (fun a _ _ -> Suspicion_matrix.equal (merged a a) a)

(* ------------------------------------------------------------------ *)
(* UPDATE messages *)

let test_msg_roundtrip () =
  let auth = Qs_crypto.Auth.create 3 in
  let msg = Msg.seal auth { Msg.owner = 1; row = [| 0; 0; 2 |] } in
  check_bool "verifies" true (Msg.verify auth msg)

let test_msg_tampered_row () =
  let auth = Qs_crypto.Auth.create 3 in
  let msg = Msg.seal auth { Msg.owner = 1; row = [| 0; 0; 2 |] } in
  let tampered = { msg with Msg.update = { msg.Msg.update with Msg.row = [| 0; 0; 9 |] } } in
  check_bool "rejected" false (Msg.verify auth tampered)

let test_msg_wrong_owner () =
  let auth = Qs_crypto.Auth.create 3 in
  let msg = Msg.seal auth { Msg.owner = 1; row = [| 0; 0; 2 |] } in
  let claimed = { msg with Msg.update = { msg.Msg.update with Msg.owner = 2 } } in
  check_bool "rejected" false (Msg.verify auth claimed);
  let out_of_range = { msg with Msg.update = { msg.Msg.update with Msg.owner = 7 } } in
  check_bool "out of range rejected" false (Msg.verify auth out_of_range)

(* ------------------------------------------------------------------ *)
(* Algorithm 1 on the cluster *)

let cfg4 = { Quorum_select.n = 4; f = 1 }
let all4 = [ 0; 1; 2; 3 ]

let test_cluster_initial_state () =
  let c = Cluster.create cfg4 in
  Array.iter
    (fun q -> check_ilist "default quorum p1..pq" [ 0; 1; 2 ] q)
    (Cluster.last_quorums c);
  check_int "nothing issued" 0 (Cluster.max_issued c ~correct:all4);
  check_int "epoch 1" 1 (Quorum_select.epoch (Cluster.node c 0))

let test_single_suspicion_changes_quorum () =
  let c = Cluster.create cfg4 in
  Cluster.fd_suspect c ~at:0 [ 1 ];
  Cluster.run_until_quiet c;
  (match Cluster.agreed_quorum c ~correct:all4 with
   | Some q -> check_ilist "new quorum avoids the suspected pair" [ 0; 2; 3 ] q
   | None -> Alcotest.fail "no agreement");
  check_int "each node issued exactly one quorum" 1 (Cluster.max_issued c ~correct:all4);
  (* The quorum satisfies the size spec. *)
  check_bool "size spec" true
    (Spec.quorum_size_ok cfg4 (Quorum_select.last_quorum (Cluster.node c 2)))

let test_suspicion_outside_quorum_no_change () =
  let c = Cluster.create cfg4 in
  Cluster.fd_suspect c ~at:0 [ 1 ];
  Cluster.run_until_quiet c;
  (* Current quorum {0,2,3}; a (new) suspicion of p2 by p2's peer outside the
     quorum pair doesn't touch the quorum: 1 suspects 0? 1 is outside, 0
     inside: edge (0,1) already exists. Suspicion 1->2: edge (1,2), both not
     jointly in quorum (1 outside): quorum {0,2,3} unaffected (Lemma 2). *)
  Cluster.fd_suspect c ~at:1 [ 2 ];
  Cluster.run_until_quiet c;
  (match Cluster.agreed_quorum c ~correct:all4 with
   | Some q -> check_ilist "unchanged" [ 0; 2; 3 ] q
   | None -> Alcotest.fail "no agreement");
  check_int "no extra issuance" 1 (Cluster.max_issued c ~correct:all4)

let test_repeated_suspicion_no_reissue () =
  let c = Cluster.create cfg4 in
  Cluster.fd_suspect c ~at:0 [ 1 ];
  Cluster.run_until_quiet c;
  Cluster.fd_suspect c ~at:0 [ 1 ];
  Cluster.run_until_quiet c;
  check_int "idempotent" 1 (Cluster.max_issued c ~correct:all4)

let test_suspicion_inside_quorum_reissues () =
  (* n=5, f=2 so that two persistent suspicion pairs are satisfiable. *)
  let cfg = { Quorum_select.n = 5; f = 2 } in
  let all = [ 0; 1; 2; 3; 4 ] in
  let c = Cluster.create cfg in
  Cluster.fd_suspect c ~at:0 [ 1 ];
  Cluster.run_until_quiet c;
  (match Cluster.agreed_quorum c ~correct:all with
   | Some q -> check_ilist "first reissue" [ 0; 2; 3 ] q
   | None -> Alcotest.fail "no agreement (1)");
  (* {0,2,3} active; now 2 suspects 3 (both inside): must re-issue. *)
  Cluster.fd_suspect c ~at:2 [ 3 ];
  Cluster.run_until_quiet c;
  (match Cluster.agreed_quorum c ~correct:all with
   | Some q ->
     check_ilist "second reissue" [ 0; 2; 4 ] q;
     check_bool "excludes pair 2,3" true (not (List.mem 2 q && List.mem 3 q));
     check_bool "excludes pair 0,1" true (not (List.mem 0 q && List.mem 1 q))
   | None -> Alcotest.fail "no agreement (2)")

let test_epoch_bump_on_inconsistent_suspicions () =
  (* Transient false suspicions forming a triangle leave no independent set
     of size 3: the epoch must advance and age them out. *)
  let c = Cluster.create cfg4 in
  Cluster.fd_suspect c ~at:0 [ 1 ];
  Cluster.fd_suspect c ~at:0 [];
  (* cancelled *)
  Cluster.fd_suspect c ~at:1 [ 2 ];
  Cluster.fd_suspect c ~at:1 [];
  Cluster.fd_suspect c ~at:2 [ 0 ];
  Cluster.fd_suspect c ~at:2 [];
  Cluster.run_until_quiet c;
  let n0 = Cluster.node c 0 in
  check_bool "epoch advanced" true (Quorum_select.epoch n0 >= 2);
  (match Cluster.agreed_quorum c ~correct:all4 with
   | Some q -> check_ilist "back to default after aging" [ 0; 1; 2 ] q
   | None -> Alcotest.fail "no agreement after epoch bump")

let test_persistent_suspicions_survive_epoch_bump () =
  (* p4 is genuinely faulty: p1 keeps suspecting it. A burst of false
     suspicions forces an epoch bump; afterwards the persistent suspicion is
     re-stamped and p4 stays out of the quorum. *)
  let c = Cluster.create cfg4 in
  Cluster.fd_suspect c ~at:0 [ 3 ];
  Cluster.run_until_quiet c;
  (* Now inject an inconsistent triangle among 0,1,2 and cancel it. *)
  Cluster.fd_suspect c ~at:0 [ 3; 1 ];
  Cluster.fd_suspect c ~at:0 [ 3 ];
  Cluster.fd_suspect c ~at:1 [ 2 ];
  Cluster.fd_suspect c ~at:1 [];
  Cluster.fd_suspect c ~at:2 [ 0 ];
  Cluster.fd_suspect c ~at:2 [];
  Cluster.run_until_quiet c;
  (match Cluster.agreed_quorum c ~correct:[ 0; 1; 2 ] with
   | Some q -> check_bool "p4 still excluded" false (List.mem 3 q)
   | None -> Alcotest.fail "no agreement")

let test_crash_failure_excluded () =
  let c = Cluster.create cfg4 in
  Cluster.crash c 1;
  (* All correct processes concurrently suspect the crashed node. *)
  List.iter (fun p -> Cluster.fd_suspect c ~at:p [ 1 ]) [ 0; 2; 3 ];
  Cluster.run_until_quiet c;
  (match Cluster.agreed_quorum c ~correct:[ 0; 2; 3 ] with
   | Some q -> check_ilist "crashed node out" [ 0; 2; 3 ] q
   | None -> Alcotest.fail "no agreement");
  check_bool "crashed flag" true (Cluster.is_crashed c 1)

let test_equivocation_converges () =
  (* Faulty p4 sends different suspicion rows to different processes; the
     max-merge plus forwarding still converge everyone to one state
     (Section VI-C: equivocation only makes selection terminate faster). *)
  let c = Cluster.create cfg4 in
  Cluster.deliver_row c ~owner:3 ~row:[| 1; 0; 0; 0 |] ~to_:0;
  Cluster.deliver_row c ~owner:3 ~row:[| 0; 1; 0; 0 |] ~to_:1;
  Cluster.run_until_quiet c;
  (match Cluster.agreed_quorum c ~correct:[ 0; 1; 2 ] with
   | Some q ->
     (* Both fake suspicions (3->0, 3->1) are now global: edges (3,0),(3,1).
        Lex-first IS of size 3: {0,1,2}. *)
     check_ilist "converged" [ 0; 1; 2 ] q
   | None -> Alcotest.fail "equivocation broke agreement");
  (* All correct matrices are identical. *)
  let m0 = Quorum_select.matrix (Cluster.node c 0) in
  List.iter
    (fun p ->
      check_bool "matrices equal" true
        (Suspicion_matrix.equal m0 (Quorum_select.matrix (Cluster.node c p))))
    [ 1; 2 ]

let test_forged_update_rejected () =
  let c = Cluster.create cfg4 in
  let node0 = Cluster.node c 0 in
  let good = Msg.seal (Cluster.auth c) { Msg.owner = 2; row = [| 1; 0; 0; 0 |] } in
  let forged = { good with Msg.update = { good.Msg.update with Msg.row = [| 9; 9; 0; 9 |] } } in
  Quorum_select.handle_update node0 forged;
  check_int "rejected counter" 1 (Quorum_select.rejected_updates node0);
  check_int "state untouched" 0
    (Suspicion_matrix.get (Quorum_select.matrix node0) ~suspector:2 ~suspect:0)

let test_faulty_cannot_fake_others_rows () =
  (* deliver_row only signs as the claimed owner; there is no API to forge,
     and a hand-crafted forgery bounces off verification. *)
  let c = Cluster.create cfg4 in
  let node0 = Cluster.node c 0 in
  let forged =
    { Msg.update = { Msg.owner = 0; row = [| 0; 1; 1; 1 |] };
      signature = "not-a-signature" }
  in
  Quorum_select.handle_update node0 forged;
  check_int "rejected" 1 (Quorum_select.rejected_updates node0);
  check_ilist "quorum unchanged" [ 0; 1; 2 ] (Quorum_select.last_quorum node0)

let test_larger_cluster_n7_f2 () =
  let cfg = { Quorum_select.n = 7; f = 2 } in
  let c = Cluster.create cfg in
  let correct = [ 0; 1; 2; 3; 4 ] in
  (* Faulty 5 and 6 each earn a suspicion from a quorum member. *)
  Cluster.fd_suspect c ~at:0 [ 5 ];
  Cluster.run_until_quiet c;
  Cluster.fd_suspect c ~at:1 [ 6 ];
  Cluster.run_until_quiet c;
  (match Cluster.agreed_quorum c ~correct with
   | Some q ->
     check_int "size q = 5" 5 (List.length q);
     check_bool "faulty pair can still appear only if unsuspected" true
       ((not (List.mem 5 q && List.mem 0 q)) && not (List.mem 6 q && List.mem 1 q))
   | None -> Alcotest.fail "no agreement")

let test_quorum_history_order () =
  let c = Cluster.create { Quorum_select.n = 5; f = 2 } in
  Cluster.fd_suspect c ~at:0 [ 1 ];
  Cluster.run_until_quiet c;
  Cluster.fd_suspect c ~at:2 [ 3 ];
  Cluster.run_until_quiet c;
  let h = Quorum_select.quorum_history (Cluster.node c 0) in
  check_int "two quorums" 2 (List.length h);
  check_ilist "first" [ 0; 2; 3 ] (List.hd h);
  check_ilist "second" [ 0; 2; 4 ] (List.nth h 1)

let test_validate_config () =
  Alcotest.check_raises "f too big"
    (Invalid_argument "Quorum_select: need n - f > f (correct majority)") (fun () ->
      Quorum_select.validate_config { Quorum_select.n = 4; f = 2 });
  Alcotest.check_raises "negative f" (Invalid_argument "Quorum_select: f must be non-negative")
    (fun () -> Quorum_select.validate_config { Quorum_select.n = 4; f = -1 });
  Quorum_select.validate_config { Quorum_select.n = 3; f = 1 }

let test_on_epoch_callback () =
  (* The epoch callback fires once per bump, with the new epoch value. *)
  let cfg = { Quorum_select.n = 4; f = 1 } in
  let auth = Qs_crypto.Auth.create 4 in
  let sent = Queue.create () in
  let epochs = ref [] in
  let node =
    Quorum_select.create cfg ~me:0 ~auth
      ~send:(fun m -> Queue.add m sent)
      ~on_quorum:(fun _ -> ())
      ~on_epoch:(fun e -> epochs := e :: !epochs)
      ()
  in
  (* Feed rows forming a triangle among 0,1,2: no IS of size 3. *)
  List.iter
    (fun (owner, row) -> Quorum_select.handle_update node (Msg.seal auth { Msg.owner; row }))
    [ (0, [| 0; 1; 0; 0 |]); (1, [| 0; 0; 1; 0 |]); (2, [| 1; 0; 0; 0 |]) ];
  check_bool "bumped exactly once to epoch 2" true (!epochs = [ 2 ]);
  check_int "node epoch" 2 (Quorum_select.epoch node)

let test_stale_row_merge_is_noop () =
  let c = Cluster.create cfg4 in
  Cluster.fd_suspect c ~at:0 [ 1 ];
  Cluster.run_until_quiet c;
  let issued_before = Cluster.max_issued c ~correct:all4 in
  (* Re-deliver the same (now stale) row: max-merge absorbs it silently. *)
  Cluster.deliver_row c ~owner:0 ~row:[| 0; 1; 0; 0 |] ~to_:2;
  Cluster.run_until_quiet c;
  check_int "no reissue from stale rows" issued_before (Cluster.max_issued c ~correct:all4)

let test_final_quorum_independent_in_final_graph () =
  (* The no-suspicion property, stated on the matrix: the agreed quorum is
     an independent set of the current-epoch suspect graph. *)
  let c = Cluster.create { Quorum_select.n = 6; f = 2 } in
  Cluster.fd_suspect c ~at:0 [ 4 ];
  Cluster.run_until_quiet c;
  Cluster.fd_suspect c ~at:3 [ 5 ];
  Cluster.run_until_quiet c;
  let node = Cluster.node c 1 in
  let g = Quorum_select.suspect_graph node in
  check_bool "quorum independent" true
    (Qs_graph.Indep.is_independent g (Quorum_select.last_quorum node))

(* ------------------------------------------------------------------ *)
(* Spec checkers *)

let test_spec_quorum_size () =
  check_bool "ok" true (Spec.quorum_size_ok cfg4 [ 0; 2; 3 ]);
  check_bool "wrong size" false (Spec.quorum_size_ok cfg4 [ 0; 1 ]);
  check_bool "duplicate" false (Spec.quorum_size_ok cfg4 [ 0; 0; 1 ]);
  check_bool "out of range" false (Spec.quorum_size_ok cfg4 [ 0; 1; 7 ])

let test_spec_agreement () =
  check_bool "agree" true (Spec.agreement [ [ 0; 1 ]; [ 0; 1 ] ]);
  check_bool "disagree" false (Spec.agreement [ [ 0; 1 ]; [ 0; 2 ] ]);
  check_bool "empty vacuous" true (Spec.agreement [])

let test_spec_no_suspicion () =
  let suspects_of = function 0 -> [ 3 ] | _ -> [] in
  check_bool "outside-quorum suspicion fine" true
    (Spec.no_suspicion ~quorum:[ 0; 1; 2 ] ~correct:[ 0; 1; 2; 3 ] ~suspects_of);
  check_bool "inside-quorum suspicion violates" false
    (Spec.no_suspicion ~quorum:[ 0; 1; 3 ] ~correct:[ 0; 1; 2; 3 ] ~suspects_of);
  check_bool "suspector outside quorum fine" true
    (Spec.no_suspicion ~quorum:[ 1; 2; 3 ] ~correct:[ 0; 1; 2; 3 ]
       ~suspects_of:(function 0 -> [ 3 ] | _ -> []))

let test_spec_bounds () =
  check_bool "theorem 3" true (Spec.upper_bound_per_epoch ~f:2 ~issued:6);
  check_bool "theorem 3 violated" false (Spec.upper_bound_per_epoch ~f:2 ~issued:7);
  check_int "C(f+2,2) for f=3" 10 (Spec.lower_bound_target ~f:3);
  check_bool "conjecture" true (Spec.conjectured_bound_per_epoch ~f:3 ~issued:10);
  check_bool "conjecture violated" false (Spec.conjectured_bound_per_epoch ~f:3 ~issued:11)

(* ------------------------------------------------------------------ *)
(* Properties: agreement under random transient suspicions *)

let prop_agreement_random_suspicions =
  QCheck.Test.make ~name:"agreement after arbitrary transient suspicions" ~count:100
    QCheck.(pair (int_range 0 10000) (int_range 4 7))
    (fun (seed, n) ->
      let f = (n - 1) / 2 in
      let cfg = { Quorum_select.n; f } in
      let c = Cluster.create cfg in
      let rng = Qs_stdx.Prng.of_int seed in
      for _ = 1 to Qs_stdx.Prng.int_in rng 1 8 do
        let suspector = Qs_stdx.Prng.int rng n in
        let suspect = Qs_stdx.Prng.int rng n in
        if suspector <> suspect then begin
          Cluster.fd_suspect c ~at:suspector [ suspect ];
          (* Transient: the FD cancels before anything else happens. *)
          Cluster.fd_suspect c ~at:suspector []
        end;
        if Qs_stdx.Prng.bool rng then Cluster.run_until_quiet c
      done;
      Cluster.run_until_quiet c;
      let all = List.init n (fun i -> i) in
      Cluster.agreed_quorum c ~correct:all <> None)

let prop_issued_quorums_always_well_formed =
  QCheck.Test.make ~name:"every issued quorum satisfies the size spec" ~count:100
    QCheck.(int_range 0 10000)
    (fun seed ->
      let cfg = { Quorum_select.n = 5; f = 2 } in
      let c = Cluster.create cfg in
      let rng = Qs_stdx.Prng.of_int seed in
      for _ = 1 to 6 do
        let a = Qs_stdx.Prng.int rng 5 and b = Qs_stdx.Prng.int rng 5 in
        if a <> b then begin
          Cluster.fd_suspect c ~at:a [ b ];
          Cluster.fd_suspect c ~at:a []
        end
      done;
      Cluster.run_until_quiet c;
      List.for_all (fun (_, q) -> Spec.quorum_size_ok cfg q) (Cluster.quorum_log c))

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_merge_commutative;
      prop_merge_associative;
      prop_merge_idempotent;
      prop_agreement_random_suspicions;
      prop_issued_quorums_always_well_formed;
    ]

let () =
  Alcotest.run "core"
    [
      ( "matrix",
        [
          Alcotest.test_case "record/get" `Quick test_matrix_record_get;
          Alcotest.test_case "max semantics" `Quick test_matrix_max_semantics;
          Alcotest.test_case "self-suspicion rejected" `Quick test_matrix_self_suspicion_rejected;
          Alcotest.test_case "merge_row" `Quick test_matrix_merge_row;
          Alcotest.test_case "merge_row self cell" `Quick test_matrix_merge_row_ignores_self_cell;
          Alcotest.test_case "bad width" `Quick test_matrix_bad_width;
          Alcotest.test_case "suspect graph symmetric" `Quick test_matrix_suspect_graph_symmetric;
          Alcotest.test_case "epoch filter" `Quick test_matrix_suspect_graph_epoch_filter;
          Alcotest.test_case "max epoch" `Quick test_matrix_max_epoch;
          Alcotest.test_case "whole merge" `Quick test_matrix_merge_whole;
        ] );
      ( "msg",
        [
          Alcotest.test_case "roundtrip" `Quick test_msg_roundtrip;
          Alcotest.test_case "tampered row" `Quick test_msg_tampered_row;
          Alcotest.test_case "wrong owner" `Quick test_msg_wrong_owner;
        ] );
      ( "algorithm1",
        [
          Alcotest.test_case "initial state" `Quick test_cluster_initial_state;
          Alcotest.test_case "single suspicion" `Quick test_single_suspicion_changes_quorum;
          Alcotest.test_case "outside-quorum suspicion" `Quick test_suspicion_outside_quorum_no_change;
          Alcotest.test_case "repeated suspicion" `Quick test_repeated_suspicion_no_reissue;
          Alcotest.test_case "inside-quorum suspicion" `Quick test_suspicion_inside_quorum_reissues;
          Alcotest.test_case "epoch bump" `Quick test_epoch_bump_on_inconsistent_suspicions;
          Alcotest.test_case "persistent suspicion survives bump" `Quick
            test_persistent_suspicions_survive_epoch_bump;
          Alcotest.test_case "crash exclusion" `Quick test_crash_failure_excluded;
          Alcotest.test_case "equivocation converges" `Quick test_equivocation_converges;
          Alcotest.test_case "forged update rejected" `Quick test_forged_update_rejected;
          Alcotest.test_case "cannot fake others' rows" `Quick test_faulty_cannot_fake_others_rows;
          Alcotest.test_case "n=7 f=2" `Quick test_larger_cluster_n7_f2;
          Alcotest.test_case "history order" `Quick test_quorum_history_order;
          Alcotest.test_case "config validation" `Quick test_validate_config;
          Alcotest.test_case "on_epoch callback" `Quick test_on_epoch_callback;
          Alcotest.test_case "stale row merge no-op" `Quick test_stale_row_merge_is_noop;
          Alcotest.test_case "quorum independent in final graph" `Quick
            test_final_quorum_independent_in_final_graph;
        ] );
      ( "spec",
        [
          Alcotest.test_case "quorum size" `Quick test_spec_quorum_size;
          Alcotest.test_case "agreement" `Quick test_spec_agreement;
          Alcotest.test_case "no suspicion" `Quick test_spec_no_suspicion;
          Alcotest.test_case "bounds" `Quick test_spec_bounds;
        ] );
      ("properties", qsuite);
    ]
