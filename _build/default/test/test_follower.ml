(* Follower Selection (Algorithm 2) tests: leader determination, FOLLOWERS
   flow, Definition 3 enforcement, detection of omitting/equivocating
   leaders, and the key liveness property behind Theorem 9. *)

open Qs_follower
module Pid = Qs_core.Pid
module QS = Qs_core.Quorum_select
module Graph = Qs_graph.Graph
module Indep = Qs_graph.Indep
module Line = Qs_graph.Line_subgraph
module Prng = Qs_stdx.Prng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_ilist = Alcotest.(check (list int))

let cfg4 = { QS.n = 4; f = 1 }
let cfg7 = { QS.n = 7; f = 2 }

(* ------------------------------------------------------------------ *)
(* Fmsg *)

let test_fmsg_update_roundtrip () =
  let auth = Qs_crypto.Auth.create 4 in
  let m = Fmsg.seal auth (Fmsg.Update { Qs_core.Msg.owner = 2; row = [| 0; 1; 0; 0 |] }) in
  check_bool "verifies" true (Fmsg.verify auth m)

let test_fmsg_followers_roundtrip () =
  let auth = Qs_crypto.Auth.create 4 in
  let f = { Fmsg.leader = 3; epoch = 2; followers = [ 0; 2 ]; line = [ (0, 1) ] } in
  let m = Fmsg.seal auth (Fmsg.Followers f) in
  check_bool "verifies" true (Fmsg.verify auth m);
  let tampered =
    { m with Fmsg.payload = Fmsg.Followers { f with Fmsg.followers = [ 0; 1 ] } }
  in
  check_bool "tamper rejected" false (Fmsg.verify auth tampered)

let test_fmsg_signer () =
  check_int "update signer" 2
    (Fmsg.signer (Fmsg.Update { Qs_core.Msg.owner = 2; row = [||] }));
  check_int "followers signer" 3
    (Fmsg.signer (Fmsg.Followers { Fmsg.leader = 3; epoch = 1; followers = []; line = [] }))

(* ------------------------------------------------------------------ *)
(* Basic protocol flow *)

let test_initial_state () =
  let c = Fcluster.create cfg4 in
  let node = Fcluster.node c 0 in
  check_int "leader p1" 0 (Follower_select.leader node);
  check_ilist "default quorum" [ 0; 1; 2 ] (Follower_select.last_quorum node);
  check_bool "stable" true (Follower_select.stable node)

let test_follower_suspicion_no_change () =
  (* The defining difference from Algorithm 1: a suspicion between followers
     does not change the quorum. *)
  let c = Fcluster.create cfg4 in
  Fcluster.fd_suspect c ~at:1 [ 2 ];
  Fcluster.run_until_quiet c;
  (match Fcluster.agreed c ~correct:[ 0; 1; 2; 3 ] with
   | Some (leader, quorum) ->
     check_int "leader unchanged" 0 leader;
     check_ilist "quorum unchanged" [ 0; 1; 2 ] quorum
   | None -> Alcotest.fail "no agreement");
  check_int "nothing issued" 0 (Fcluster.max_issued c ~correct:[ 0; 1; 2; 3 ])

let test_leader_suspicion_changes_leader () =
  let c = Fcluster.create cfg4 in
  Fcluster.fd_suspect c ~at:1 [ 0 ];
  Fcluster.run_until_quiet c;
  (match Fcluster.agreed c ~correct:[ 0; 1; 2; 3 ] with
   | Some (leader, quorum) ->
     (* Edge (0,1): the maximal line subgraph covers p1,p2, leader p3. *)
     check_int "leader p3" 2 leader;
     check_ilist "quorum from FOLLOWERS" [ 0; 1; 2 ] quorum;
     check_bool "leader in quorum" true (List.mem leader quorum)
   | None -> Alcotest.fail "no agreement");
  check_int "one quorum issued" 1 (Fcluster.max_issued c ~correct:[ 0; 1; 2; 3 ])

let test_omitting_leader_detected_by_timeout () =
  (* p3 becomes leader but has crashed: FOLLOWERS never arrives, timeouts
     fire, p3 earns suspicions, a fresh leader takes over. *)
  let c = Fcluster.create cfg4 in
  Fcluster.crash c 2;
  Fcluster.fd_suspect c ~at:1 [ 0 ];
  Fcluster.run_until_quiet c;
  (* Correct processes are now waiting for FOLLOWERS from p3. *)
  List.iter
    (fun p ->
      match Fcluster.open_expectation c ~at:p with
      | Some (leader, _) -> check_int "expecting p3" 2 leader
      | None -> Alcotest.failf "no expectation at p%d" (p + 1))
    [ 0; 1; 3 ];
  (* p2's false suspicion of p1 is cancelled; then the timeouts fire. *)
  Fcluster.fd_suspect c ~at:1 [];
  List.iter (fun p -> Fcluster.fire_timeout c ~at:p) [ 0; 1; 3 ];
  Fcluster.run_until_quiet c;
  (match Fcluster.agreed c ~correct:[ 0; 1; 3 ] with
   | Some (leader, quorum) ->
     check_int "new leader p4" 3 leader;
     check_ilist "quorum excludes crashed p3" [ 0; 1; 3 ] quorum
   | None -> Alcotest.fail "no agreement after omission");
  let epochs = Follower_select.epochs_entered (Fcluster.node c 0) in
  check_bool "aged out the false suspicion via an epoch bump" true (epochs >= 1)

let test_equivocating_leader_detected () =
  let c = Fcluster.create cfg4 in
  Fcluster.fd_suspect c ~at:1 [ 0 ];
  Fcluster.run_until_quiet c;
  (* Everyone is stable with leader p3, quorum {0,1,2}. Now p3 "equivocates":
     a second, different but well-formed FOLLOWERS for the same epoch. *)
  let node0 = Fcluster.node c 0 in
  let epoch = Follower_select.epoch node0 in
  let alt =
    Fmsg.seal (Fcluster.auth c)
      (Fmsg.Followers { Fmsg.leader = 2; epoch; followers = [ 1; 3 ]; line = [ (0, 1) ] })
  in
  Fcluster.deliver c ~to_:0 alt;
  Fcluster.run_until_quiet c;
  check_bool "equivocation detected" true
    (List.mem (0, 2) (Fcluster.detected_log c))

let test_malformed_followers_detected () =
  let c = Fcluster.create cfg4 in
  Fcluster.fd_suspect c ~at:1 [ 0 ];
  Fcluster.run_until_quiet c;
  let epoch = Follower_select.epoch (Fcluster.node c 0) in
  (* Wrong follower count (q-1 = 2 required). *)
  let bad =
    Fmsg.seal (Fcluster.auth c)
      (Fmsg.Followers { Fmsg.leader = 2; epoch; followers = [ 1 ]; line = [ (0, 1) ] })
  in
  Fcluster.deliver c ~to_:1 bad;
  Fcluster.run_until_quiet c;
  check_bool "malformed detected" true (List.mem (1, 2) (Fcluster.detected_log c))

let test_followers_with_foreign_line_rejected () =
  (* Definition 3b: the carried line subgraph must be a subgraph of the
     receiver's suspect graph. An invented edge is proof of misbehavior. *)
  let c = Fcluster.create cfg4 in
  Fcluster.fd_suspect c ~at:1 [ 0 ];
  Fcluster.run_until_quiet c;
  (* The transient false suspicion is cancelled before p3 misbehaves, so that
     only one process (p3) is suspect afterwards — within the f=1 model. *)
  Fcluster.fd_suspect c ~at:1 [];
  let epoch = Follower_select.epoch (Fcluster.node c 0) in
  let bad =
    Fmsg.seal (Fcluster.auth c)
      (Fmsg.Followers { Fmsg.leader = 2; epoch; followers = [ 0; 1 ]; line = [ (0, 3) ] })
  in
  Fcluster.deliver c ~to_:3 bad;
  Fcluster.run_until_quiet c;
  check_bool "foreign edge detected" true (List.mem (3, 2) (Fcluster.detected_log c))

let test_stale_epoch_followers_ignored () =
  let c = Fcluster.create cfg4 in
  Fcluster.fd_suspect c ~at:1 [ 0 ];
  Fcluster.run_until_quiet c;
  let stale =
    Fmsg.seal (Fcluster.auth c)
      (Fmsg.Followers { Fmsg.leader = 2; epoch = 99; followers = [ 1; 3 ]; line = [ (0, 1) ] })
  in
  Fcluster.deliver c ~to_:0 stale;
  Fcluster.run_until_quiet c;
  check_bool "wrong-epoch message has no effect" false
    (List.mem (0, 2) (Fcluster.detected_log c));
  check_ilist "quorum unchanged" [ 0; 1; 2 ]
    (Follower_select.last_quorum (Fcluster.node c 0))

let test_non_leader_followers_ignored () =
  let c = Fcluster.create cfg4 in
  (* p2 is not the leader; its FOLLOWERS must be ignored outright. *)
  let msg =
    Fmsg.seal (Fcluster.auth c)
      (Fmsg.Followers { Fmsg.leader = 1; epoch = 1; followers = [ 2; 3 ]; line = [] })
  in
  Fcluster.deliver c ~to_:0 msg;
  Fcluster.run_until_quiet c;
  check_ilist "quorum unchanged" [ 0; 1; 2 ]
    (Follower_select.last_quorum (Fcluster.node c 0));
  check_bool "no detection either" true (Fcluster.detected_log c = [])

let test_unsigned_followers_rejected () =
  let c = Fcluster.create cfg4 in
  let forged =
    {
      Fmsg.payload =
        Fmsg.Followers { Fmsg.leader = 0; epoch = 1; followers = [ 1; 2 ]; line = [] };
      signature = "bogus";
    }
  in
  Fcluster.deliver c ~to_:1 forged;
  Fcluster.run_until_quiet c;
  check_int "rejected" 1 (Follower_select.rejected_msgs (Fcluster.node c 1))

let test_larger_system_n7 () =
  let c = Fcluster.create cfg7 in
  let all = [ 0; 1; 2; 3; 4; 5; 6 ] in
  Fcluster.fd_suspect c ~at:3 [ 0 ];
  Fcluster.run_until_quiet c;
  (match Fcluster.agreed c ~correct:all with
   | Some (leader, quorum) ->
     (* Edge (0,3): line subgraph covers p1..?: cover {0} via (0,3):
        leader = p2 (vertex 1). *)
     check_int "leader p2" 1 leader;
     check_int "quorum size 5" 5 (List.length quorum);
     check_bool "leader included" true (List.mem 1 quorum)
   | None -> Alcotest.fail "no agreement")

let test_epoch_bump_resets_to_default () =
  (* Contradictory persistent suspicions with f=1 on 4 nodes: inconsistent,
     epoch bumps and the default quorum comes back once they are cancelled. *)
  let c = Fcluster.create cfg4 in
  Fcluster.fd_suspect c ~at:0 [ 1 ];
  Fcluster.fd_suspect c ~at:0 [];
  Fcluster.fd_suspect c ~at:1 [ 2 ];
  Fcluster.fd_suspect c ~at:1 [];
  Fcluster.fd_suspect c ~at:2 [ 0 ];
  Fcluster.fd_suspect c ~at:2 [];
  Fcluster.run_until_quiet c;
  (match Fcluster.agreed c ~correct:[ 0; 1; 2; 3 ] with
   | Some (leader, quorum) ->
     check_int "default leader" 0 leader;
     check_ilist "default quorum" [ 0; 1; 2 ] quorum
   | None -> Alcotest.fail "no agreement");
  check_bool "epoch advanced" true (Follower_select.epoch (Fcluster.node c 3) >= 2)

(* ------------------------------------------------------------------ *)
(* select_followers / well_formed unit tests *)

let test_select_followers_basic () =
  let l = Graph.of_edges 4 [ (0, 1); (1, 2) ] in
  (* Leader 3; p2 (vertex 1) is excluded: between two degree-1 nodes. *)
  check_ilist "smallest possible followers" [ 0; 2 ]
    (Follower_select.select_followers l ~leader:3 ~q:3)

let test_select_followers_prefers_small_ids () =
  let l = Graph.create 6 in
  check_ilist "prefix chosen" [ 0; 1; 2 ] (Follower_select.select_followers l ~leader:5 ~q:4)

let test_select_followers_not_enough () =
  let l = Graph.of_edges 3 [ (0, 1); (1, 2) ] in
  Alcotest.check_raises "too few"
    (Invalid_argument "Follower_select.select_followers: not enough possible followers")
    (fun () -> ignore (Follower_select.select_followers l ~leader:0 ~q:3))

let test_well_formed_accepts_honest () =
  let g = Graph.of_edges 4 [ (0, 1) ] in
  let f = { Fmsg.leader = 2; epoch = 1; followers = [ 0; 1 ]; line = [ (0, 1) ] } in
  check_bool "honest accepted" true
    (Follower_select.well_formed ~n:4 ~q:3 ~suspect_graph:g f)

let test_well_formed_rejections () =
  let g = Graph.of_edges 4 [ (0, 1) ] in
  let wf f = Follower_select.well_formed ~n:4 ~q:3 ~suspect_graph:g f in
  (* a) leader in Fw *)
  check_bool "leader among followers" false
    (wf { Fmsg.leader = 2; epoch = 1; followers = [ 2; 0 ]; line = [ (0, 1) ] });
  (* a) wrong size *)
  check_bool "wrong size" false
    (wf { Fmsg.leader = 2; epoch = 1; followers = [ 0 ]; line = [ (0, 1) ] });
  (* duplicates *)
  check_bool "duplicate followers" false
    (wf { Fmsg.leader = 2; epoch = 1; followers = [ 0; 0 ]; line = [ (0, 1) ] });
  (* b) foreign edge *)
  check_bool "not a subgraph" false
    (wf { Fmsg.leader = 2; epoch = 1; followers = [ 0; 1 ]; line = [ (2, 3) ] });
  (* b) not a line subgraph: would need a triangle in g; use degree-3 star
     via a richer graph *)
  let g3 = Graph.of_edges 5 [ (0, 4); (1, 4); (2, 4) ] in
  check_bool "degree-3 line rejected" false
    (Follower_select.well_formed ~n:5 ~q:4 ~suspect_graph:g3
       { Fmsg.leader = 3; epoch = 1; followers = [ 0; 1; 2 ]; line = [ (0, 4); (1, 4); (2, 4) ] });
  (* c) wrong designated leader *)
  check_bool "leader mismatch" false
    (wf { Fmsg.leader = 3; epoch = 1; followers = [ 0; 1 ]; line = [ (0, 1) ] });
  (* d) impossible follower *)
  let g2 = Graph.of_edges 5 [ (0, 1); (1, 2) ] in
  check_bool "impossible follower" false
    (Follower_select.well_formed ~n:5 ~q:4 ~suspect_graph:g2
       { Fmsg.leader = 3; epoch = 1; followers = [ 0; 1; 2 ]; line = [ (0, 1); (1, 2) ] });
  (* out-of-range vertices *)
  check_bool "line vertex out of range" false
    (wf { Fmsg.leader = 2; epoch = 1; followers = [ 0; 1 ]; line = [ (0, 9) ] });
  check_bool "follower out of range" false
    (wf { Fmsg.leader = 2; epoch = 1; followers = [ 0; 9 ]; line = [ (0, 1) ] })

let test_config_validation () =
  Alcotest.check_raises "n = 3f rejected" (Invalid_argument "Follower_select: requires n > 3f")
    (fun () ->
      ignore
        (Follower_select.create { QS.n = 6; f = 2 } ~me:0 ~auth:(Qs_crypto.Auth.create 6)
           ~send:(fun _ -> ())
           ~on_quorum:(fun ~leader:_ _ -> ())
           ()))

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_follower_edge_never_changes_quorum =
  QCheck.Test.make ~name:"suspicions among followers never change the quorum" ~count:150
    QCheck.(pair (int_range 1 6) (int_range 1 6))
    (fun (a, b) ->
      QCheck.assume (a <> b);
      let c = Fcluster.create cfg7 in
      Fcluster.fd_suspect c ~at:a [ b ];
      Fcluster.run_until_quiet c;
      Fcluster.max_issued c ~correct:[ 0; 1; 2; 3; 4; 5; 6 ] = 0
      && Follower_select.leader (Fcluster.node c 0) = 0)

let prop_leader_follower_edge_reacts =
  (* The liveness heart of Theorem 9: if the quorum's leader gains a
     suspicion edge to a possible follower, either the maximal-line-subgraph
     leader changes or no independent set of size q remains (epoch bump). *)
  QCheck.Test.make ~name:"leader-follower suspicion always reacts" ~count:300
    QCheck.(int_range 0 100000)
    (fun seed ->
      let rng = Prng.of_int seed in
      let n = Prng.int_in rng 4 8 in
      let f = (n - 1) / 3 in
      let q = n - f in
      let g = Graph.create n in
      for _ = 1 to Prng.int_in rng 0 (2 * f) do
        let i = Prng.int rng n and j = Prng.int rng n in
        if i <> j then Graph.add_edge g i j
      done;
      if not (Indep.exists_independent_set g q) then true
      else begin
        let l = Line.maximal g in
        let leader = Line.leader g in
        let followers =
          List.filter (fun v -> v <> leader) (Line.possible_followers l)
        in
        List.for_all
          (fun fw ->
            if Graph.has_edge g leader fw then true
            else begin
              let g' = Graph.copy g in
              Graph.add_edge g' leader fw;
              Line.leader g' <> leader || not (Indep.exists_independent_set g' q)
            end)
          followers
      end)

let prop_agreement_random_transients =
  (* Suspicions here are always transient (cancelled immediately), so the
     emulated detector never over-constrains the f-bound; after draining, all
     correct processes must share leader and quorum. *)
  QCheck.Test.make ~name:"agreement after random transient suspicions" ~count:80
    QCheck.(int_range 0 10000)
    (fun seed ->
      let rng = Prng.of_int seed in
      let c = Fcluster.create cfg7 in
      for _ = 1 to Prng.int_in rng 1 6 do
        let a = Prng.int rng 7 and b = Prng.int rng 7 in
        if a <> b then begin
          Fcluster.fd_suspect c ~at:a [ b ];
          Fcluster.fd_suspect c ~at:a []
        end;
        if Prng.bool rng then Fcluster.run_until_quiet c
      done;
      Fcluster.run_until_quiet c;
      match Fcluster.agreed c ~correct:[ 0; 1; 2; 3; 4; 5; 6 ] with
      | Some _ -> true
      | None ->
        (* The only legitimate reason for disagreement at quiescence is an
           unanswered FOLLOWERS expectation (the new leader's message is what
           installs the quorum); there must then be one open somewhere. *)
        List.exists (fun p -> Fcluster.open_expectation c ~at:p <> None)
          [ 0; 1; 2; 3; 4; 5; 6 ])

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_follower_edge_never_changes_quorum;
      prop_leader_follower_edge_reacts;
      prop_agreement_random_transients;
    ]

let () =
  Alcotest.run "follower"
    [
      ( "fmsg",
        [
          Alcotest.test_case "update roundtrip" `Quick test_fmsg_update_roundtrip;
          Alcotest.test_case "followers roundtrip" `Quick test_fmsg_followers_roundtrip;
          Alcotest.test_case "signer" `Quick test_fmsg_signer;
        ] );
      ( "algorithm2",
        [
          Alcotest.test_case "initial state" `Quick test_initial_state;
          Alcotest.test_case "follower suspicion ignored" `Quick test_follower_suspicion_no_change;
          Alcotest.test_case "leader suspicion reacts" `Quick test_leader_suspicion_changes_leader;
          Alcotest.test_case "omitting leader (timeout)" `Quick test_omitting_leader_detected_by_timeout;
          Alcotest.test_case "equivocating leader detected" `Quick test_equivocating_leader_detected;
          Alcotest.test_case "malformed FOLLOWERS detected" `Quick test_malformed_followers_detected;
          Alcotest.test_case "foreign line edge detected" `Quick test_followers_with_foreign_line_rejected;
          Alcotest.test_case "stale epoch ignored" `Quick test_stale_epoch_followers_ignored;
          Alcotest.test_case "non-leader ignored" `Quick test_non_leader_followers_ignored;
          Alcotest.test_case "unsigned rejected" `Quick test_unsigned_followers_rejected;
          Alcotest.test_case "n=7 flow" `Quick test_larger_system_n7;
          Alcotest.test_case "epoch bump to default" `Quick test_epoch_bump_resets_to_default;
        ] );
      ( "definitions",
        [
          Alcotest.test_case "select followers" `Quick test_select_followers_basic;
          Alcotest.test_case "select prefers small ids" `Quick test_select_followers_prefers_small_ids;
          Alcotest.test_case "select not enough" `Quick test_select_followers_not_enough;
          Alcotest.test_case "well-formed honest" `Quick test_well_formed_accepts_honest;
          Alcotest.test_case "well-formed rejections" `Quick test_well_formed_rejections;
          Alcotest.test_case "config validation" `Quick test_config_validation;
        ] );
      ("properties", qsuite);
    ]
