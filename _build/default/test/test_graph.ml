(* Graph-algorithm tests: independent sets (Algorithm 1's quorum search) and
   line subgraphs (Follower Selection, Definitions 1-2), cross-checked against
   brute force on small random instances. *)

open Qs_graph
module Combin = Qs_stdx.Combin
module Prng = Qs_stdx.Prng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_ilist = Alcotest.(check (list int))
let check_iolist = Alcotest.(check (option (list int)))

(* ------------------------------------------------------------------ *)
(* Graph basics *)

let test_graph_edges () =
  let g = Graph.of_edges 5 [ (0, 1); (3, 1); (2, 4) ] in
  check_bool "has 0-1" true (Graph.has_edge g 0 1);
  check_bool "symmetric" true (Graph.has_edge g 1 0);
  check_bool "no 0-2" false (Graph.has_edge g 0 2);
  Alcotest.(check (list (pair int int))) "edges sorted" [ (0, 1); (1, 3); (2, 4) ] (Graph.edges g);
  check_int "edge count" 3 (Graph.edge_count g)

let test_graph_degree () =
  let g = Graph.of_edges 4 [ (0, 1); (0, 2); (0, 3) ] in
  check_int "center degree" 3 (Graph.degree g 0);
  check_int "leaf degree" 1 (Graph.degree g 2);
  check_int "max degree" 3 (Graph.max_degree g);
  check_ilist "neighbors" [ 1; 2; 3 ] (Graph.neighbors g 0)

let test_graph_remove () =
  let g = Graph.of_edges 3 [ (0, 1); (1, 2) ] in
  Graph.remove_edge g 0 1;
  check_bool "removed" false (Graph.has_edge g 0 1);
  check_bool "other intact" true (Graph.has_edge g 1 2)

let test_graph_self_loop_rejected () =
  let g = Graph.create 3 in
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_edge: self-loop") (fun () ->
      Graph.add_edge g 1 1)

let test_graph_isolated () =
  let g = Graph.of_edges 5 [ (1, 2) ] in
  check_ilist "non-isolated" [ 1; 2 ] (Graph.non_isolated g);
  check_ilist "isolated" [ 0; 3; 4 ] (Graph.isolated g)

let test_graph_copy_independent () =
  let g = Graph.of_edges 3 [ (0, 1) ] in
  let h = Graph.copy g in
  Graph.add_edge h 1 2;
  check_bool "copy diverged" false (Graph.has_edge g 1 2);
  check_bool "equal detects difference" false (Graph.equal g h)

let test_graph_subgraph () =
  let super = Graph.of_edges 4 [ (0, 1); (1, 2); (2, 3) ] in
  let sub = Graph.of_edges 4 [ (1, 2) ] in
  check_bool "subgraph" true (Graph.is_subgraph ~sub ~super);
  check_bool "not subgraph" false
    (Graph.is_subgraph ~sub:(Graph.of_edges 4 [ (0, 3) ]) ~super)

let test_graph_union () =
  let a = Graph.of_edges 4 [ (0, 1) ] and b = Graph.of_edges 4 [ (2, 3) ] in
  let u = Graph.union a b in
  check_bool "has both" true (Graph.has_edge u 0 1 && Graph.has_edge u 2 3)

let test_graph_cycle_detection () =
  check_bool "triangle has cycle" true
    (Graph.induced_has_cycle (Graph.of_edges 3 [ (0, 1); (1, 2); (0, 2) ]));
  check_bool "path has none" false
    (Graph.induced_has_cycle (Graph.of_edges 4 [ (0, 1); (1, 2); (2, 3) ]));
  check_bool "disconnected cycle found" true
    (Graph.induced_has_cycle (Graph.of_edges 7 [ (0, 1); (3, 4); (4, 5); (3, 5) ]));
  check_bool "empty graph" false (Graph.induced_has_cycle (Graph.create 4))

(* ------------------------------------------------------------------ *)
(* Independent sets: known instances *)

let test_indep_empty_graph () =
  let g = Graph.create 5 in
  check_int "all vertices independent" 5 (Indep.max_independent_set_size g);
  check_iolist "lex first is prefix" (Some [ 0; 1; 2 ]) (Indep.lex_first_independent_set g 3)

let test_indep_complete_graph () =
  let g = Graph.create 4 in
  List.iter (fun (i, j) -> Graph.add_edge g i j) (List.concat_map (fun i -> List.filter_map (fun j -> if i < j then Some (i, j) else None) [ 0; 1; 2; 3 ]) [ 0; 1; 2; 3 ]);
  check_int "K4 max IS" 1 (Indep.max_independent_set_size g);
  check_iolist "no IS of 2 in K4" None (Indep.lex_first_independent_set g 2);
  check_iolist "singleton" (Some [ 0 ]) (Indep.lex_first_independent_set g 1)

let test_indep_path () =
  (* Path 0-1-2-3-4: max IS {0,2,4}. *)
  let g = Graph.of_edges 5 [ (0, 1); (1, 2); (2, 3); (3, 4) ] in
  check_int "path MIS" 3 (Indep.max_independent_set_size g);
  check_iolist "lex first" (Some [ 0; 2; 4 ]) (Indep.lex_first_independent_set g 3)

let test_indep_cycle () =
  (* C5: max IS = 2. *)
  let g = Graph.of_edges 5 [ (0, 1); (1, 2); (2, 3); (3, 4); (0, 4) ] in
  check_int "C5 MIS" 2 (Indep.max_independent_set_size g);
  check_iolist "lex first" (Some [ 0; 2 ]) (Indep.lex_first_independent_set g 2)

let test_indep_star () =
  let g = Graph.of_edges 6 [ (0, 1); (0, 2); (0, 3); (0, 4); (0, 5) ] in
  check_int "star MIS = leaves" 5 (Indep.max_independent_set_size g);
  check_iolist "leaves win over center" (Some [ 1; 2; 3; 4; 5 ])
    (Indep.lex_first_independent_set g 5)

let test_indep_is_independent () =
  let g = Graph.of_edges 4 [ (0, 1) ] in
  check_bool "independent" true (Indep.is_independent g [ 0; 2; 3 ]);
  check_bool "not independent" false (Indep.is_independent g [ 0; 1 ]);
  check_bool "empty set" true (Indep.is_independent g [])

let test_indep_vertex_cover_duality () =
  let g = Graph.of_edges 5 [ (0, 1); (1, 2); (2, 3); (3, 4) ] in
  check_int "VC = n - MIS" 2 (Indep.min_vertex_cover_size g)

let test_indep_lex_skips_greedy_trap () =
  (* Vertex 0 is compatible only with a tiny completion; lexicographic-first
     must still include 0 when feasible, and skip it when infeasible. *)
  let g = Graph.of_edges 5 [ (0, 2); (0, 3); (0, 4) ] in
  (* IS of size 3 containing 0 would need 2 more from {1}: infeasible. *)
  check_iolist "skips 0" (Some [ 1; 2; 3 ]) (Indep.lex_first_independent_set g 3);
  check_iolist "includes 0 when enough" (Some [ 0; 1 ]) (Indep.lex_first_independent_set g 2)

let test_indep_exact_size_even_if_larger_exists () =
  let g = Graph.create 4 in
  check_iolist "size exactly 2" (Some [ 0; 1 ]) (Indep.lex_first_independent_set g 2)

let test_indep_zero_size () =
  let g = Graph.of_edges 2 [ (0, 1) ] in
  check_iolist "empty set always exists" (Some []) (Indep.lex_first_independent_set g 0)

let test_indep_too_large () =
  check_iolist "q > n impossible" None (Indep.lex_first_independent_set (Graph.create 3) 4)

(* ------------------------------------------------------------------ *)
(* Figure 4 reconstruction (caption-consistent; see DESIGN.md E1) *)

(* Epoch-3 suspect graph: exactly {p1,p3,p4} and {p3,p4,p5} are independent
   sets of size 3 (paper Fig. 4 caption). Epoch-2 graph adds the p3-p4 edge
   whose suspicion is labeled epoch 2, killing both. 0-based ids. *)
let fig4_epoch3 () = Graph.of_edges 5 [ (0, 1); (0, 4); (1, 2); (1, 3); (1, 4) ]

let fig4_epoch2 () =
  let g = fig4_epoch3 () in
  Graph.add_edge g 2 3;
  g

let test_fig4_epoch2_no_quorum () =
  check_bool "no IS of size 3 in epoch 2" false
    (Indep.exists_independent_set (fig4_epoch2 ()) 3)

let test_fig4_epoch3_quorums () =
  let g = fig4_epoch3 () in
  check_bool "{p1,p3,p4} independent" true (Indep.is_independent g [ 0; 2; 3 ]);
  check_bool "{p3,p4,p5} independent" true (Indep.is_independent g [ 2; 3; 4 ]);
  (* These are the only two IS of size 3. *)
  let all_is =
    List.filter (fun s -> Indep.is_independent g s) (Combin.subsets 5 3)
  in
  Alcotest.(check (list (list int))) "exactly two" [ [ 0; 2; 3 ]; [ 2; 3; 4 ] ] all_is;
  check_iolist "lex-first chosen" (Some [ 0; 2; 3 ]) (Indep.lex_first_independent_set g 3)

(* ------------------------------------------------------------------ *)
(* Brute-force cross-checks *)

let random_graph rng n p =
  let g = Graph.create n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Prng.chance rng p then Graph.add_edge g i j
    done
  done;
  g

let brute_max_is g =
  let n = Graph.n g in
  let best = ref 0 in
  for mask = 0 to (1 lsl n) - 1 do
    let vs = List.filter (fun i -> mask land (1 lsl i) <> 0) (List.init n (fun i -> i)) in
    if Indep.is_independent g vs then best := max !best (List.length vs)
  done;
  !best

let brute_lex_first g q =
  List.find_opt (fun s -> Indep.is_independent g s) (Combin.subsets (Graph.n g) q)

let test_mis_matches_brute_force () =
  let rng = Prng.of_int 2024 in
  for _ = 1 to 60 do
    let n = Prng.int_in rng 1 8 in
    let g = random_graph rng n (Prng.float rng 0.8) in
    check_int "MIS exact" (brute_max_is g) (Indep.max_independent_set_size g)
  done

let test_lex_first_matches_brute_force () =
  let rng = Prng.of_int 777 in
  for _ = 1 to 60 do
    let n = Prng.int_in rng 2 8 in
    let g = random_graph rng n (Prng.float rng 0.7) in
    let q = Prng.int_in rng 1 n in
    check_iolist "lex-first exact" (brute_lex_first g q) (Indep.lex_first_independent_set g q)
  done

let test_mis_large_sparse_fast () =
  (* Realistic regime: 40 processes, suspicions touch few of them. *)
  let g = Graph.of_edges 40 [ (0, 1); (1, 2); (2, 3); (5, 6); (10, 11) ] in
  (* 32 isolated + 2 from the 4-path + 1 from each of the two lone edges. *)
  check_int "large sparse" 36 (Indep.max_independent_set_size g)

(* ------------------------------------------------------------------ *)
(* Line subgraphs: definitions *)

let test_line_subgraph_recognition () =
  check_bool "path is line" true
    (Line_subgraph.is_line_subgraph (Graph.of_edges 4 [ (0, 1); (1, 2) ]));
  check_bool "two disjoint paths" true
    (Line_subgraph.is_line_subgraph (Graph.of_edges 6 [ (0, 1); (3, 4); (4, 5) ]));
  check_bool "triangle is not (cycle)" false
    (Line_subgraph.is_line_subgraph (Graph.of_edges 3 [ (0, 1); (1, 2); (0, 2) ]));
  check_bool "star is not (degree 3)" false
    (Line_subgraph.is_line_subgraph (Graph.of_edges 4 [ (0, 1); (0, 2); (0, 3) ]));
  check_bool "empty is line" true (Line_subgraph.is_line_subgraph (Graph.create 3))

let test_leader_of () =
  let l = Graph.of_edges 5 [ (0, 1) ] in
  check_bool "first degree-0 vertex" true (Line_subgraph.leader_of l = Some 2);
  check_bool "empty line subgraph leader 0" true
    (Line_subgraph.leader_of (Graph.create 3) = Some 0)

let test_maximal_example1 () =
  (* Example 1 shape: G = p1-p2-p3 path on 7 nodes. The maximal line subgraph
     covers p1,p2,p3, so the leader is p4; p2 sits between two degree-1
     nodes, hence is not a possible follower. *)
  let g = Graph.of_edges 7 [ (0, 1); (1, 2) ] in
  let l = Line_subgraph.maximal g in
  check_bool "line subgraph" true (Line_subgraph.is_line_subgraph l);
  check_bool "subgraph of G" true (Graph.is_subgraph ~sub:l ~super:g);
  check_int "leader p4" 3 (Line_subgraph.leader g);
  check_bool "p2 not possible follower" false (Line_subgraph.is_possible_follower l 1);
  check_bool "p1 possible" true (Line_subgraph.is_possible_follower l 0);
  check_bool "p3 possible" true (Line_subgraph.is_possible_follower l 2);
  check_bool "isolated p6 possible" true (Line_subgraph.is_possible_follower l 5)

let test_maximal_example1_extension () =
  (* Adding edge (p2,p5) must not change the leader (Example 1 note). *)
  let g = Graph.of_edges 7 [ (0, 1); (1, 2); (1, 4) ] in
  check_int "leader still p4" 3 (Line_subgraph.leader g)

let test_maximal_star () =
  (* Star centered at p4 (0-based 3): 0,1,2 all hang off 3, but 3 can carry
     only two path edges, so only two of them can be covered: leader p3. *)
  let g = Graph.of_edges 5 [ (0, 3); (1, 3); (2, 3) ] in
  check_int "leader p3" 2 (Line_subgraph.leader g)

let test_maximal_leader_changes_with_edge () =
  (* Example 2 flavor: adding one edge changes the leader. *)
  let g = Graph.of_edges 6 [ (0, 1); (2, 3) ] in
  check_int "before" 4 (Line_subgraph.leader g);
  (* Covering 0..4 becomes possible once p5 connects to p4's component. *)
  Graph.add_edge g 4 3;
  check_int "after edge (p4,p5)... leader moves" 5 (Line_subgraph.leader g)

let test_maximal_empty_graph () =
  let g = Graph.create 4 in
  check_int "leader p1 on empty graph" 0 (Line_subgraph.leader g);
  check_bool "empty L" true (Graph.is_empty (Line_subgraph.maximal g))

let test_covers_prefix_blocked_by_isolated () =
  let g = Graph.of_edges 4 [ (1, 2) ] in
  (* Vertex 0 is isolated: nothing can cover it, so leader stays 0. *)
  check_bool "blocked" true (Line_subgraph.covers_prefix_avoiding g 2 = None);
  check_int "leader 0" 0 (Line_subgraph.leader g)

let test_possible_followers_long_path () =
  (* Path 0-1-2-3-4: interior vertex 2 has neighbors of degree 2, so it IS a
     possible follower; 1 and 3 are adjacent to one degree-1 endpoint each. *)
  let l = Graph.of_edges 5 [ (0, 1); (1, 2); (2, 3); (3, 4) ] in
  check_ilist "all possible" [ 0; 1; 2; 3; 4 ] (Line_subgraph.possible_followers l)

let test_possible_followers_three_path () =
  let l = Graph.of_edges 3 [ (0, 1); (1, 2) ] in
  check_ilist "middle excluded" [ 0; 2 ] (Line_subgraph.possible_followers l)

let test_covers_prefix_direct () =
  let g = Graph.of_edges 5 [ (0, 1); (1, 2); (2, 3) ] in
  (* Cover {0,1,2} while keeping vertex 3 untouched. *)
  (match Line_subgraph.covers_prefix_avoiding g 3 with
   | Some l ->
     check_bool "line subgraph" true (Line_subgraph.is_line_subgraph l);
     check_int "vertex 3 untouched" 0 (Graph.degree l 3);
     List.iter
       (fun v -> check_bool (Printf.sprintf "v%d covered" v) true (Graph.degree l v >= 1))
       [ 0; 1; 2 ]
   | None -> Alcotest.fail "cover should exist");
  (* Covering everything below 4 requires touching 3's only useful edge;
     still feasible. *)
  check_bool "cover up to 4" true (Line_subgraph.covers_prefix_avoiding g 4 <> None)

let test_covers_prefix_infeasible () =
  (* Star: the center can carry only two edges, three leaves below j. *)
  let g = Graph.of_edges 5 [ (0, 4); (1, 4); (2, 4) ] in
  check_bool "three leaves not coverable avoiding 3" true
    (Line_subgraph.covers_prefix_avoiding g 3 = None)

let test_maximal_on_cycle () =
  (* C4: opening the cycle still covers everyone below the leader. *)
  let g = Graph.of_edges 4 [ (0, 1); (1, 2); (2, 3); (0, 3) ] in
  check_int "leader p4" 3 (Line_subgraph.leader g);
  let l = Line_subgraph.maximal g in
  check_bool "acyclic" false (Graph.induced_has_cycle l)

let test_exists_is_thresholds () =
  let g = Graph.of_edges 5 [ (0, 1); (1, 2); (2, 3); (3, 4) ] in
  (* Max IS on the 5-path is 3. *)
  List.iter
    (fun q -> check_bool (Printf.sprintf "IS of %d" q) true (Indep.exists_independent_set g q))
    [ 0; 1; 2; 3 ];
  List.iter
    (fun q -> check_bool (Printf.sprintf "no IS of %d" q) false (Indep.exists_independent_set g q))
    [ 4; 5 ]

(* Brute force: enumerate all edge subsets, keep line subgraphs, maximize
   leader. *)
let brute_max_leader g =
  let edges = Array.of_list (Graph.edges g) in
  let m = Array.length edges in
  let best = ref (-1) in
  for mask = 0 to (1 lsl m) - 1 do
    let l = Graph.create (Graph.n g) in
    Array.iteri (fun k (i, j) -> if mask land (1 lsl k) <> 0 then Graph.add_edge l i j) edges;
    if Line_subgraph.is_line_subgraph l then
      match Line_subgraph.leader_of l with
      | Some ld -> best := max !best ld
      | None -> ()
  done;
  !best

let test_maximal_matches_brute_force () =
  let rng = Prng.of_int 31337 in
  for _ = 1 to 50 do
    let n = Prng.int_in rng 2 6 in
    let g = random_graph rng n (Prng.float rng 0.8) in
    if Graph.edge_count g <= 12 then begin
      let expected = brute_max_leader g in
      let l = Line_subgraph.maximal g in
      check_bool "is line subgraph" true (Line_subgraph.is_line_subgraph l);
      check_bool "is subgraph" true (Graph.is_subgraph ~sub:l ~super:g);
      check_int "maximal leader" expected (Line_subgraph.leader g)
    end
  done

(* ------------------------------------------------------------------ *)
(* Lemma 8 checks *)

let test_lemma8_b () =
  (* f=1, n=4, q=3. A line subgraph containing 3f+1 = 4 nodes means no IS of
     size q. Build: path 0-1-2-3 covers 4 nodes. *)
  let g = Graph.of_edges 4 [ (0, 1); (1, 2); (2, 3) ] in
  let l = Line_subgraph.maximal g in
  let covered = List.length (Graph.non_isolated l) in
  if covered >= 4 then
    check_bool "no IS of size q" false (Indep.exists_independent_set g 3)

let test_lemma8_a () =
  (* f=1, n=4, q=3: a line subgraph containing exactly 3f=3 nodes. Graph:
     path 0-1-2 (3 covered nodes). The unique IS of size 3 must contain the
     leader and all possible followers. *)
  let g = Graph.of_edges 4 [ (0, 1); (1, 2) ] in
  let iss = List.filter (fun s -> Indep.is_independent g s) (Combin.subsets 4 3) in
  check_int "unique IS" 1 (List.length iss);
  let l = Line_subgraph.maximal g in
  let leader = Line_subgraph.leader g in
  let followers = List.filter (fun v -> v <> leader) (Line_subgraph.possible_followers l) in
  check_ilist "IS = leader + possible followers"
    (List.sort compare (leader :: followers))
    (List.hd iss)

(* ------------------------------------------------------------------ *)
(* Properties *)

let graph_gen =
  QCheck.make
    ~print:(fun (n, edges) -> Format.asprintf "n=%d edges=%d" n (List.length edges))
    QCheck.Gen.(
      int_range 2 7 >>= fun n ->
      list_size (int_bound 10)
        (pair (int_bound (n - 1)) (int_bound (n - 1)))
      >|= fun edges -> (n, List.filter (fun (i, j) -> i <> j) edges))

let build (n, edges) = Graph.of_edges n edges

let prop_lex_first_is_independent =
  QCheck.Test.make ~name:"lex-first IS is independent and right-sized" ~count:300 graph_gen
    (fun spec ->
      let g = build spec in
      let q = 1 + (Graph.n g / 2) in
      match Indep.lex_first_independent_set g q with
      | None -> not (Indep.exists_independent_set g q)
      | Some s -> List.length s = q && Indep.is_independent g s)

let prop_maximal_line_subgraph_valid =
  QCheck.Test.make ~name:"maximal line subgraph is a valid line subgraph of G" ~count:300
    graph_gen
    (fun spec ->
      let g = build spec in
      let l = Line_subgraph.maximal g in
      Line_subgraph.is_line_subgraph l && Graph.is_subgraph ~sub:l ~super:g)

let prop_leader_dominates_any_line_subgraph =
  QCheck.Test.make ~name:"no line subgraph has a larger leader" ~count:100 graph_gen
    (fun spec ->
      let g = build spec in
      if Graph.edge_count g > 10 then true
      else brute_max_leader g = Line_subgraph.leader g)

let prop_mis_complement_cover =
  QCheck.Test.make ~name:"MIS + min VC = n" ~count:200 graph_gen (fun spec ->
      let g = build spec in
      Indep.max_independent_set_size g + Indep.min_vertex_cover_size g = Graph.n g)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_lex_first_is_independent;
      prop_maximal_line_subgraph_valid;
      prop_leader_dominates_any_line_subgraph;
      prop_mis_complement_cover;
    ]

let () =
  Alcotest.run "graph"
    [
      ( "graph",
        [
          Alcotest.test_case "edges" `Quick test_graph_edges;
          Alcotest.test_case "degree" `Quick test_graph_degree;
          Alcotest.test_case "remove edge" `Quick test_graph_remove;
          Alcotest.test_case "self-loop rejected" `Quick test_graph_self_loop_rejected;
          Alcotest.test_case "isolated split" `Quick test_graph_isolated;
          Alcotest.test_case "copy independence" `Quick test_graph_copy_independent;
          Alcotest.test_case "subgraph check" `Quick test_graph_subgraph;
          Alcotest.test_case "union" `Quick test_graph_union;
          Alcotest.test_case "cycle detection" `Quick test_graph_cycle_detection;
        ] );
      ( "indep",
        [
          Alcotest.test_case "empty graph" `Quick test_indep_empty_graph;
          Alcotest.test_case "complete graph" `Quick test_indep_complete_graph;
          Alcotest.test_case "path" `Quick test_indep_path;
          Alcotest.test_case "cycle" `Quick test_indep_cycle;
          Alcotest.test_case "star" `Quick test_indep_star;
          Alcotest.test_case "is_independent" `Quick test_indep_is_independent;
          Alcotest.test_case "cover duality" `Quick test_indep_vertex_cover_duality;
          Alcotest.test_case "lex-first feasibility pruning" `Quick test_indep_lex_skips_greedy_trap;
          Alcotest.test_case "exact size" `Quick test_indep_exact_size_even_if_larger_exists;
          Alcotest.test_case "zero size" `Quick test_indep_zero_size;
          Alcotest.test_case "q > n" `Quick test_indep_too_large;
          Alcotest.test_case "MIS vs brute force" `Quick test_mis_matches_brute_force;
          Alcotest.test_case "lex-first vs brute force" `Quick test_lex_first_matches_brute_force;
          Alcotest.test_case "large sparse core" `Quick test_mis_large_sparse_fast;
        ] );
      ( "fig4",
        [
          Alcotest.test_case "epoch 2: no quorum" `Quick test_fig4_epoch2_no_quorum;
          Alcotest.test_case "epoch 3: two quorums, lex-first" `Quick test_fig4_epoch3_quorums;
        ] );
      ( "line_subgraph",
        [
          Alcotest.test_case "recognition" `Quick test_line_subgraph_recognition;
          Alcotest.test_case "leader_of" `Quick test_leader_of;
          Alcotest.test_case "example 1" `Quick test_maximal_example1;
          Alcotest.test_case "example 1 extension" `Quick test_maximal_example1_extension;
          Alcotest.test_case "star capacity" `Quick test_maximal_star;
          Alcotest.test_case "edge changes leader" `Quick test_maximal_leader_changes_with_edge;
          Alcotest.test_case "empty graph" `Quick test_maximal_empty_graph;
          Alcotest.test_case "isolated blocks coverage" `Quick test_covers_prefix_blocked_by_isolated;
          Alcotest.test_case "followers on long path" `Quick test_possible_followers_long_path;
          Alcotest.test_case "followers on 3-path" `Quick test_possible_followers_three_path;
          Alcotest.test_case "covers_prefix direct" `Quick test_covers_prefix_direct;
          Alcotest.test_case "covers_prefix infeasible" `Quick test_covers_prefix_infeasible;
          Alcotest.test_case "maximal on cycle" `Quick test_maximal_on_cycle;
          Alcotest.test_case "exists_is thresholds" `Quick test_exists_is_thresholds;
          Alcotest.test_case "maximal vs brute force" `Quick test_maximal_matches_brute_force;
        ] );
      ( "lemma8",
        [
          Alcotest.test_case "b: 3f+1 covered kills IS" `Quick test_lemma8_b;
          Alcotest.test_case "a: unique IS structure" `Quick test_lemma8_a;
        ] );
      ("properties", qsuite);
    ]
