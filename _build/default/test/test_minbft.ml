(* MinBFT substrate tests: the simulated trusted component (USIG) and the
   two-phase n=2f+1 protocol in both participation modes. *)

open Qs_minbft
module Stime = Qs_sim.Stime
module Timeout = Qs_fd.Timeout

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_ilist = Alcotest.(check (list int))

let ms = Stime.of_ms

let config ?(participation = Mreplica.Full) ?(f = 2) ?(timeout = ms 30) () =
  {
    Mreplica.n = (2 * f) + 1;
    f;
    participation;
    initial_timeout = timeout;
    timeout_strategy = Timeout.Exponential { factor = 2.0; max = ms 2000 };
  }

(* ------------------------------------------------------------------ *)
(* USIG *)

let test_usig_certify_verify () =
  let dir, usigs = Usig.setup ~n:3 in
  let ui = Usig.certify usigs.(1) ~digest:"d1" in
  check_int "origin" 1 ui.Usig.origin;
  check_int "first counter is 1" 1 ui.Usig.counter;
  check_bool "verifies" true (Usig.verify dir ~digest:"d1" ui);
  check_bool "wrong digest rejected" false (Usig.verify dir ~digest:"d2" ui)

let test_usig_counters_sequential () =
  let _, usigs = Usig.setup ~n:2 in
  let u1 = Usig.certify usigs.(0) ~digest:"a" in
  let u2 = Usig.certify usigs.(0) ~digest:"b" in
  check_int "strictly increasing" (u1.Usig.counter + 1) u2.Usig.counter;
  check_int "counter state" 2 (Usig.counter usigs.(0))

let test_usig_uniqueness_no_equivocation () =
  (* The API makes equivocation impossible: two certifications never share a
     counter, even for the same digest. *)
  let _, usigs = Usig.setup ~n:1 in
  let u1 = Usig.certify usigs.(0) ~digest:"same" in
  let u2 = Usig.certify usigs.(0) ~digest:"same" in
  check_bool "distinct counters" true (u1.Usig.counter <> u2.Usig.counter)

let test_usig_monitor_ordering () =
  let dir, usigs = Usig.setup ~n:2 in
  let m = Usig.monitor dir ~n:2 in
  let u1 = Usig.certify usigs.(0) ~digest:"a" in
  let u2 = Usig.certify usigs.(0) ~digest:"b" in
  let u3 = Usig.certify usigs.(0) ~digest:"c" in
  check_bool "in order ok" true (Usig.accept m ~digest:"a" u1 = `Ok);
  check_bool "skip is a gap" true (Usig.accept m ~digest:"c" u3 = `Gap);
  check_bool "expected unchanged by gap" true (Usig.expected_next m 0 = 2);
  check_bool "continue in order" true (Usig.accept m ~digest:"b" u2 = `Ok);
  check_bool "replay rejected" true (Usig.accept m ~digest:"b" u2 = `Replay);
  check_bool "now the skipped one fits" true (Usig.accept m ~digest:"c" u3 = `Ok)

let test_usig_monitor_bad_signature () =
  let dir, usigs = Usig.setup ~n:2 in
  let m = Usig.monitor dir ~n:2 in
  let u1 = Usig.certify usigs.(0) ~digest:"a" in
  check_bool "digest mismatch = bad signature" true
    (Usig.accept m ~digest:"tampered" u1 = `Bad_signature)

let test_usig_resync () =
  let dir, usigs = Usig.setup ~n:1 in
  let m = Usig.monitor dir ~n:1 in
  let _ = Usig.certify usigs.(0) ~digest:"lost1" in
  let _ = Usig.certify usigs.(0) ~digest:"lost2" in
  let u3 = Usig.certify usigs.(0) ~digest:"seen" in
  check_bool "gap before resync" true (Usig.accept m ~digest:"seen" u3 = `Gap);
  Usig.resync m 0 u3.Usig.counter;
  check_bool "accepted after resync" true (Usig.accept m ~digest:"seen" u3 = `Ok)

let test_usig_keys_independent_of_message_keys () =
  (* A replica's message key cannot forge USIG certificates. *)
  let dir, _ = Usig.setup ~n:2 in
  let message_auth = Qs_crypto.Auth.create 2 in
  let forged =
    {
      Usig.origin = 0;
      counter = 1;
      usig_sig = Qs_crypto.Auth.sign message_auth ~signer:0 "USIG|0|1|whatever";
    }
  in
  check_bool "forgery rejected" false (Usig.verify dir ~digest:"whatever" forged)

(* ------------------------------------------------------------------ *)
(* Protocol: Full participation (masking with 2f+1) *)

let test_full_happy_path () =
  let c = Mcluster.create (config ~f:1 ()) in
  let r = Mcluster.submit c "op" in
  Mcluster.run c;
  check_bool "committed" true (Mcluster.is_committed c r);
  check_ilist "everyone executed" [ 0; 1; 2 ] (Mcluster.executed_by c r)

let test_full_message_count () =
  (* Two phases: (n-1) prepares out + n... the primary sends n-1 PREPAREs;
     each backup sends n-1 COMMITs. *)
  let c = Mcluster.create (config ~f:1 ()) in
  let _ = Mcluster.submit c "op" in
  Mcluster.run c;
  let n = 3 in
  check_int "2-phase count" ((n - 1) + ((n - 1) * (n - 1))) (Mcluster.message_count c)

let test_full_masks_f_backups () =
  (* n = 2f+1 = 5, f = 2: commit needs f+1 = 3 contributors; two mute
     backups are masked. *)
  let c = Mcluster.create (config ~f:2 ()) in
  Mcluster.set_fault c 3 Mreplica.Mute;
  Mcluster.set_fault c 4 Mreplica.Mute;
  let r = Mcluster.submit c "masked" in
  Mcluster.run c;
  check_bool "committed with 3 of 5" true (Mcluster.is_committed c r);
  (* The mute replicas still RECEIVE and execute (Mute blocks sending only);
     what matters is that the three live ones committed without them. *)
  List.iter
    (fun p -> check_bool (Printf.sprintf "p%d executed" (p + 1)) true
        (List.mem p (Mcluster.executed_by c r)))
    [ 0; 1; 2 ]

let test_full_ordering_consistent () =
  let c = Mcluster.create (config ~f:2 ()) in
  let _ = Mcluster.submit c "a" in
  let _ = Mcluster.submit c "b" in
  Mcluster.run c;
  let log p = List.map (fun r -> r.Mmsg.op) (Mreplica.executed (Mcluster.replica c p)) in
  List.iter (fun p -> Alcotest.(check (list string)) "same log" (log 0) (log p)) [ 1; 2; 3; 4 ]

(* ------------------------------------------------------------------ *)
(* Protocol: Selected participation (the paper's active quorum of f+1) *)

let test_selected_happy_path () =
  let c = Mcluster.create (config ~participation:Mreplica.Selected ~f:2 ()) in
  let r = Mcluster.submit c "op" in
  Mcluster.run c;
  check_bool "committed" true (Mcluster.is_committed c r);
  (* Active quorum = n - f = f + 1 = 3 replicas. *)
  check_ilist "active quorum executed" [ 0; 1; 2 ] (Mcluster.executed_by c r)

let test_selected_message_count () =
  (* Active quorum q = f+1 = 3: (q-1) prepares + (q-1)^2... backups send
     commits to the other active members. *)
  let c = Mcluster.create (config ~participation:Mreplica.Selected ~f:2 ()) in
  let _ = Mcluster.submit c "op" in
  Mcluster.run c;
  let q = 3 in
  check_int "selected count" ((q - 1) + ((q - 1) * (q - 1))) (Mcluster.message_count c)

let test_selected_cheaper_than_full () =
  let count participation =
    let c = Mcluster.create (config ~participation ~f:2 ()) in
    let _ = Mcluster.submit c "op" in
    Mcluster.run c;
    Mcluster.message_count c
  in
  check_bool "selected cheaper" true
    (count Mreplica.Selected < count Mreplica.Full)

let test_selected_reacts_to_mute_backup () =
  let c = Mcluster.create (config ~participation:Mreplica.Selected ~f:2 ~timeout:(ms 20) ()) in
  Mcluster.set_fault c 1 Mreplica.Mute;
  let r = Mcluster.submit c ~resubmit_every:(ms 100) "react" in
  Mcluster.run ~until:(ms 6000) c;
  check_bool "committed on a new active set" true (Mcluster.is_committed c r);
  check_bool "mute backup excluded" false
    (List.mem 1 (Mreplica.active (Mcluster.replica c 0)));
  check_bool "configuration epoch advanced" true
    (Mreplica.config_epoch (Mcluster.replica c 0) >= 1)

let test_selected_mute_primary_replaced () =
  let c = Mcluster.create (config ~participation:Mreplica.Selected ~f:2 ~timeout:(ms 20) ()) in
  Mcluster.set_fault c 0 Mreplica.Mute;
  let r = Mcluster.submit c ~resubmit_every:(ms 100) "primary" in
  Mcluster.run ~until:(ms 6000) c;
  check_bool "committed" true (Mcluster.is_committed c r);
  check_bool "primary changed" true (Mreplica.primary (Mcluster.replica c 1) <> 0)

let test_gap_detection_on_omitted_prepare () =
  (* The primary omits one PREPARE to one backup; the next PREPARE arrives
     with a skipped counter and is refused as a gap (omission evidence from
     the trusted component). *)
  let c = Mcluster.create (config ~participation:Mreplica.Selected ~f:2 ~timeout:(ms 500) ()) in
  Mcluster.set_fault c 0 (Mreplica.Omit_to [ 1 ]);
  let _ = Mcluster.submit c "first" in
  Mcluster.run ~until:(ms 5) c;
  Mcluster.set_fault c 0 Mreplica.Honest;
  let _ = Mcluster.submit c "second" in
  Mcluster.run ~until:(ms 10) c;
  check_bool "backup registered a counter gap" true
    (Mreplica.usig_gaps (Mcluster.replica c 1) > 0)

let test_config_validation () =
  Alcotest.check_raises "n must be 2f+1" (Invalid_argument "Mreplica.create: need n = 2f+1")
    (fun () ->
      let dir, usigs = Usig.setup ~n:4 in
      ignore
        (Mreplica.create
           {
             Mreplica.n = 4;
             f = 1;
             participation = Mreplica.Full;
             initial_timeout = ms 10;
             timeout_strategy = Timeout.Fixed;
           }
           ~me:0 ~auth:(Qs_crypto.Auth.create 4) ~usig:usigs.(0) ~usig_directory:dir
           ~sim:(Qs_sim.Sim.create ())
           ~net_send:(fun ~dst:_ _ -> ())
           ()))

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_usig_monitor_accepts_exactly_in_order =
  QCheck.Test.make ~name:"usig monitor accepts a stream exactly in order" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 10) small_string)
    (fun digests ->
      let dir, usigs = Usig.setup ~n:1 in
      let m = Usig.monitor dir ~n:1 in
      let uis = List.map (fun d -> (d, Usig.certify usigs.(0) ~digest:d)) digests in
      List.for_all (fun (d, ui) -> Usig.accept m ~digest:d ui = `Ok) uis)

let prop_selected_recovers_any_single_mute =
  QCheck.Test.make ~name:"selected minbft recovers from any single mute replica" ~count:15
    QCheck.(pair (int_range 1 300) (int_bound 4))
    (fun (seed, faulty) ->
      let c =
        Mcluster.create ~seed:(Int64.of_int seed)
          (config ~participation:Mreplica.Selected ~f:2 ~timeout:(ms 20) ())
      in
      Mcluster.set_fault c faulty Mreplica.Mute;
      let r = Mcluster.submit c ~resubmit_every:(ms 100) "survive" in
      Mcluster.run ~until:(ms 8000) c;
      Mcluster.is_committed c r)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_usig_monitor_accepts_exactly_in_order; prop_selected_recovers_any_single_mute ]

let () =
  Alcotest.run "minbft"
    [
      ( "usig",
        [
          Alcotest.test_case "certify/verify" `Quick test_usig_certify_verify;
          Alcotest.test_case "sequential counters" `Quick test_usig_counters_sequential;
          Alcotest.test_case "uniqueness (no equivocation)" `Quick
            test_usig_uniqueness_no_equivocation;
          Alcotest.test_case "monitor ordering" `Quick test_usig_monitor_ordering;
          Alcotest.test_case "monitor bad signature" `Quick test_usig_monitor_bad_signature;
          Alcotest.test_case "resync" `Quick test_usig_resync;
          Alcotest.test_case "trusted keys separate" `Quick
            test_usig_keys_independent_of_message_keys;
        ] );
      ( "full",
        [
          Alcotest.test_case "happy path" `Quick test_full_happy_path;
          Alcotest.test_case "message count" `Quick test_full_message_count;
          Alcotest.test_case "masks f backups" `Quick test_full_masks_f_backups;
          Alcotest.test_case "ordering consistent" `Quick test_full_ordering_consistent;
        ] );
      ( "selected",
        [
          Alcotest.test_case "happy path" `Quick test_selected_happy_path;
          Alcotest.test_case "message count" `Quick test_selected_message_count;
          Alcotest.test_case "cheaper than full" `Quick test_selected_cheaper_than_full;
          Alcotest.test_case "reacts to mute backup" `Quick test_selected_reacts_to_mute_backup;
          Alcotest.test_case "mute primary replaced" `Quick test_selected_mute_primary_replaced;
          Alcotest.test_case "gap detection" `Quick test_gap_detection_on_omitted_prepare;
          Alcotest.test_case "config validation" `Quick test_config_validation;
        ] );
      ("properties", qsuite);
    ]
