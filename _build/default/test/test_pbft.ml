(* PBFT substrate tests: classic full participation (masking) vs the
   paper's selected active quorum (reacting), message patterns, primary
   rotation, and safety under faults. *)

open Qs_pbft
module Stime = Qs_sim.Stime
module Timeout = Qs_fd.Timeout
module Detector = Qs_fd.Detector

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ms = Stime.of_ms

let config ?(participation = Preplica.Full) ?(f = 1) ?(timeout = ms 30) () =
  {
    Preplica.n = (3 * f) + 1;
    f;
    participation;
    initial_timeout = timeout;
    timeout_strategy = Timeout.Exponential { factor = 2.0; max = ms 2000 };
  }

(* ------------------------------------------------------------------ *)
(* Messages *)

let test_pmsg_roundtrip () =
  let auth = Qs_crypto.Auth.create 4 in
  let req = { Pmsg.client = 0; rid = 0; op = "x" } in
  let spp = Pmsg.sign_pre_prepare auth ~primary:0 { Pmsg.view = 0; slot = 0; request = req } in
  check_bool "pre-prepare verifies" true (Pmsg.verify_pre_prepare auth ~primary:0 spp);
  check_bool "wrong primary rejected" false (Pmsg.verify_pre_prepare auth ~primary:1 spp);
  let m = Pmsg.seal auth ~sender:2 (Pmsg.Pre_prepare spp) in
  check_bool "envelope verifies" true (Pmsg.verify auth m);
  check_bool "digest differs per request" true
    (Pmsg.digest req <> Pmsg.digest { req with Pmsg.op = "y" })

(* ------------------------------------------------------------------ *)
(* Full participation: classic PBFT *)

let test_full_happy_path () =
  let c = Pcluster.create (config ~f:1 ()) in
  let r = Pcluster.submit c "op" in
  Pcluster.run c;
  check_bool "committed" true (Pcluster.is_globally_committed c r);
  Alcotest.(check (list int)) "all four executed" [ 0; 1; 2; 3 ] (Pcluster.executed_by c r);
  check_int "no view change" 0 (Pcluster.max_view c)

let test_full_message_count () =
  (* Classic pattern per request: (n-1) pre-prepares + 3f prepares to (n-1)
     peers each + n commits to (n-1) peers each. *)
  let c = Pcluster.create (config ~f:1 ()) in
  let _ = Pcluster.submit c "op" in
  Pcluster.run c;
  let n = 4 in
  let expected = (n - 1) + ((n - 1) * (n - 1)) + (n * (n - 1)) in
  check_int "full all-to-all count" expected (Pcluster.message_count c)

let test_full_masks_one_mute_replica () =
  (* PBFT's defining property: one silent backup changes nothing — no view
     change, request still commits (masking). *)
  let c = Pcluster.create (config ~f:1 ()) in
  Pcluster.set_fault c 3 Preplica.Mute;
  let r = Pcluster.submit c "masked" in
  Pcluster.run c;
  check_bool "committed without p4" true (Pcluster.is_globally_committed c r);
  check_int "zero view changes (masked, not reacted)" 0 (Pcluster.max_view c)

let test_full_mute_primary_rotation () =
  let c = Pcluster.create (config ~f:1 ()) in
  Pcluster.set_fault c 0 Preplica.Mute;
  let r = Pcluster.submit c ~resubmit_every:(ms 100) "rotate" in
  Pcluster.run ~until:(ms 4000) c;
  check_bool "committed under new primary" true (Pcluster.is_globally_committed c r);
  check_bool "view rotated" true (Pcluster.max_view c >= 1);
  check_int "new primary is view mod n" (Pcluster.max_view c mod 4)
    (Preplica.primary (Pcluster.replica c 1))

let test_full_consistency_under_fault () =
  let c = Pcluster.create (config ~f:1 ()) in
  Pcluster.set_fault c 2 Preplica.Mute;
  for i = 0 to 3 do
    ignore (Pcluster.submit c ~resubmit_every:(ms 100) (Printf.sprintf "op%d" i))
  done;
  Pcluster.run ~until:(ms 4000) c;
  check_bool "prefix consistent" true (Pcluster.consistent c ~correct:[ 0; 1; 3 ])

(* ------------------------------------------------------------------ *)
(* Selected participation: the paper's proposal *)

let test_selected_happy_path () =
  let c = Pcluster.create (config ~participation:Preplica.Selected ~f:1 ()) in
  let r = Pcluster.submit c "op" in
  Pcluster.run c;
  check_bool "committed" true (Pcluster.is_globally_committed c r);
  Alcotest.(check (list int)) "active quorum executed" [ 0; 1; 2 ] (Pcluster.executed_by c r)

let test_selected_message_count () =
  (* Active quorum q = 2f+1: (q-1) pre-prepares + (q-1)^2 prepares +
     q(q-1) commits. *)
  let c = Pcluster.create (config ~participation:Preplica.Selected ~f:1 ()) in
  let _ = Pcluster.submit c "op" in
  Pcluster.run c;
  let q = 3 in
  let expected = (q - 1) + ((q - 1) * (q - 1)) + (q * (q - 1)) in
  check_int "selected count" expected (Pcluster.message_count c)

let test_selected_fewer_messages_than_full () =
  let count participation =
    let c = Pcluster.create (config ~participation ~f:2 ()) in
    let _ = Pcluster.submit c "op" in
    Pcluster.run c;
    Pcluster.message_count c
  in
  let full = count Preplica.Full and selected = count Preplica.Selected in
  check_bool "selected cheaper" true (selected < full);
  (* The paper's ballpark: roughly (q/n)^2 of the quadratic traffic. *)
  check_bool "at least a third saved" true
    (float_of_int selected /. float_of_int full < 2.0 /. 3.0)

let test_selected_reacts_to_mute_member () =
  (* No masking in selected mode: a mute active member stalls the round,
     expectations fire, quorum selection installs a new active set. *)
  let c = Pcluster.create (config ~participation:Preplica.Selected ~f:1 ~timeout:(ms 20) ()) in
  Pcluster.set_fault c 1 Preplica.Mute;
  let r = Pcluster.submit c ~resubmit_every:(ms 100) "react" in
  Pcluster.run ~until:(ms 4000) c;
  check_bool "committed on new active set" true (Pcluster.is_globally_committed c r);
  check_bool "reconfigured" true (Pcluster.max_view c >= 1);
  check_bool "mute member excluded" false
    (List.mem 1 (Preplica.participants (Pcluster.replica c 0)))

let test_selected_mute_primary_replaced () =
  let c = Pcluster.create (config ~participation:Preplica.Selected ~f:1 ~timeout:(ms 20) ()) in
  Pcluster.set_fault c 0 Preplica.Mute;
  let r = Pcluster.submit c ~resubmit_every:(ms 100) "primary" in
  Pcluster.run ~until:(ms 4000) c;
  check_bool "committed" true (Pcluster.is_globally_committed c r);
  check_bool "primary changed" true (Preplica.primary (Pcluster.replica c 1) <> 0);
  (match Preplica.quorum_selector (Pcluster.replica c 1) with
   | Some qs ->
     check_bool "selector excluded the mute primary" false
       (List.mem 0 (Qs_core.Quorum_select.last_quorum qs))
   | None -> Alcotest.fail "selected mode must embed a selector")

let test_selected_passive_catch_up () =
  (* A passive replica pulled into the active set by reconfiguration learns
     committed state via the NEW-VIEW transfer. *)
  let c = Pcluster.create (config ~participation:Preplica.Selected ~f:1 ~timeout:(ms 20) ()) in
  let r1 = Pcluster.submit c "before" in
  Pcluster.run ~until:(ms 50) c;
  check_bool "first committed on {p1,p2,p3}" true (Pcluster.is_globally_committed c r1);
  Pcluster.set_fault c 2 Preplica.Mute;
  let r2 = Pcluster.submit c ~resubmit_every:(ms 100) "after" in
  Pcluster.run ~until:(ms 4000) c;
  check_bool "second committed" true (Pcluster.is_globally_committed c r2);
  (* p4 (id 3) joined the active set and must hold the full history. *)
  let history = List.map (fun r -> r.Pmsg.op) (Preplica.executed (Pcluster.replica c 3)) in
  check_bool "newcomer replayed the committed prefix" true (List.mem "before" history);
  check_bool "consistency across correct" true (Pcluster.consistent c ~correct:[ 0; 1; 3 ])

let test_equivocating_primary_detected_selected () =
  (* Inject a conflicting signed pre-prepare for an existing slot. *)
  let c = Pcluster.create (config ~participation:Preplica.Selected ~f:1 ~timeout:(ms 500) ()) in
  let r = Pcluster.submit c "honest" in
  Pcluster.run ~until:(ms 10) c;
  let auth = Qs_crypto.Auth.create 4 in
  let evil = { Pmsg.client = 8; rid = 8; op = "evil" } in
  let spp = Pmsg.sign_pre_prepare auth ~primary:0 { Pmsg.view = 0; slot = 0; request = evil } in
  let replica1 = Pcluster.replica c 1 in
  Preplica.receive replica1 ~src:0 (Pmsg.seal auth ~sender:0 (Pmsg.Pre_prepare spp));
  Pcluster.run ~until:(ms 20) c;
  check_bool "equivocation detected" true (Detector.is_detected (Preplica.detector replica1) 0);
  check_bool "honest request executed" true (List.mem 1 (Pcluster.executed_by c r))

let test_config_validation () =
  Alcotest.check_raises "n must be 3f+1" (Invalid_argument "Preplica.create: need n = 3f+1")
    (fun () ->
      ignore
        (Preplica.create
           {
             Preplica.n = 5;
             f = 1;
             participation = Preplica.Full;
             initial_timeout = ms 10;
             timeout_strategy = Timeout.Fixed;
           }
           ~me:0 ~auth:(Qs_crypto.Auth.create 5) ~sim:(Qs_sim.Sim.create ())
           ~net_send:(fun ~dst:_ _ -> ())
           ()))

let test_full_masks_two_mutes_f2 () =
  (* n = 7, f = 2: commit threshold 2f+1 = 5 of 7 — two silent backups are
     absorbed without any reaction. *)
  let c = Pcluster.create (config ~f:2 ()) in
  Pcluster.set_fault c 5 Preplica.Mute;
  Pcluster.set_fault c 6 Preplica.Mute;
  let r = Pcluster.submit c "masked-two" in
  Pcluster.run c;
  check_bool "committed" true (Pcluster.is_globally_committed c r);
  check_int "no view change" 0 (Pcluster.max_view c)

let test_selected_link_omission_reacts () =
  (* A single bad link inside the active quorum: selected PBFT cannot mask
     it (it needs everyone), so expectations fire and the pair gets
     separated. *)
  let c = Pcluster.create (config ~participation:Preplica.Selected ~f:1 ~timeout:(ms 20) ()) in
  Pcluster.set_fault c 2 (Preplica.Omit_to [ 1 ]);
  let r = Pcluster.submit c ~resubmit_every:(ms 100) "bad-link" in
  Pcluster.run ~until:(ms 5000) c;
  check_bool "committed" true (Pcluster.is_globally_committed c r);
  let active = Preplica.participants (Pcluster.replica c 0) in
  check_bool "pair separated" false (List.mem 1 active && List.mem 2 active)

let test_full_equivocation_detected () =
  let c = Pcluster.create (config ~f:1 ~timeout:(ms 500) ()) in
  let _ = Pcluster.submit c "honest" in
  Pcluster.run ~until:(ms 10) c;
  let auth = Qs_crypto.Auth.create 4 in
  let evil = { Pmsg.client = 7; rid = 7; op = "evil" } in
  let spp = Pmsg.sign_pre_prepare auth ~primary:0 { Pmsg.view = 0; slot = 0; request = evil } in
  let replica2 = Pcluster.replica c 2 in
  Preplica.receive replica2 ~src:0 (Pmsg.seal auth ~sender:0 (Pmsg.Pre_prepare spp));
  check_bool "full mode detects double binding" true
    (Detector.is_detected (Preplica.detector replica2) 0)

let test_digest_mismatch_votes_ignored () =
  (* Votes for a different request on the same slot must not count. *)
  let c = Pcluster.create (config ~f:1 ~timeout:(ms 500) ()) in
  let _ = Pcluster.submit c "real" in
  Pcluster.run ~until:(ms 5) c;
  let auth = Qs_crypto.Auth.create 4 in
  let fake_digest = Pmsg.digest { Pmsg.client = 9; rid = 9; op = "other" } in
  let replica1 = Pcluster.replica c 1 in
  (* A (Byzantine) replica 3 votes PREPARE with a mismatching digest. *)
  Preplica.receive replica1 ~src:3
    (Pmsg.seal auth ~sender:3 (Pmsg.Prepare { view = 0; slot = 0; pdigest = fake_digest }));
  Pcluster.run c;
  (* Progress is unaffected, and the bad vote never created a certificate
     for the fake request. *)
  check_bool "no fake execution" true
    (List.for_all (fun r -> r.Pmsg.op <> "other") (Preplica.executed replica1))

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_full_safety_random_mute =
  QCheck.Test.make ~name:"full PBFT: prefix consistency under a random mute replica" ~count:15
    QCheck.(pair (int_range 1 500) (int_bound 3))
    (fun (seed, faulty) ->
      let c = Pcluster.create ~seed:(Int64.of_int seed) (config ~f:1 ()) in
      Pcluster.set_fault c faulty Preplica.Mute;
      for i = 0 to 2 do
        ignore (Pcluster.submit c ~resubmit_every:(ms 100) (Printf.sprintf "op%d" i))
      done;
      Pcluster.run ~until:(ms 4000) c;
      let correct = List.filter (fun p -> p <> faulty) [ 0; 1; 2; 3 ] in
      Pcluster.consistent c ~correct)

let prop_selected_safety_random_mute =
  QCheck.Test.make ~name:"selected PBFT: prefix consistency under a random mute replica"
    ~count:15
    QCheck.(pair (int_range 1 500) (int_bound 3))
    (fun (seed, faulty) ->
      let c =
        Pcluster.create ~seed:(Int64.of_int seed)
          (config ~participation:Preplica.Selected ~f:1 ~timeout:(ms 20) ())
      in
      Pcluster.set_fault c faulty Preplica.Mute;
      for i = 0 to 2 do
        ignore (Pcluster.submit c ~resubmit_every:(ms 100) (Printf.sprintf "op%d" i))
      done;
      Pcluster.run ~until:(ms 5000) c;
      let correct = List.filter (fun p -> p <> faulty) [ 0; 1; 2; 3 ] in
      Pcluster.consistent c ~correct)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_full_safety_random_mute; prop_selected_safety_random_mute ]

let () =
  Alcotest.run "pbft"
    [
      ("messages", [ Alcotest.test_case "roundtrip" `Quick test_pmsg_roundtrip ]);
      ( "full",
        [
          Alcotest.test_case "happy path" `Quick test_full_happy_path;
          Alcotest.test_case "message count" `Quick test_full_message_count;
          Alcotest.test_case "masks one mute replica" `Quick test_full_masks_one_mute_replica;
          Alcotest.test_case "primary rotation" `Quick test_full_mute_primary_rotation;
          Alcotest.test_case "consistency under fault" `Quick test_full_consistency_under_fault;
          Alcotest.test_case "masks two mutes (f=2)" `Quick test_full_masks_two_mutes_f2;
          Alcotest.test_case "equivocation detected" `Quick test_full_equivocation_detected;
          Alcotest.test_case "digest mismatch ignored" `Quick test_digest_mismatch_votes_ignored;
        ] );
      ( "selected",
        [
          Alcotest.test_case "happy path" `Quick test_selected_happy_path;
          Alcotest.test_case "message count" `Quick test_selected_message_count;
          Alcotest.test_case "cheaper than full" `Quick test_selected_fewer_messages_than_full;
          Alcotest.test_case "reacts to mute member" `Quick test_selected_reacts_to_mute_member;
          Alcotest.test_case "mute primary replaced" `Quick test_selected_mute_primary_replaced;
          Alcotest.test_case "passive catch-up" `Quick test_selected_passive_catch_up;
          Alcotest.test_case "equivocation detected" `Quick
            test_equivocating_primary_detected_selected;
          Alcotest.test_case "link omission reacts" `Quick test_selected_link_omission_reacts;
          Alcotest.test_case "config validation" `Quick test_config_validation;
        ] );
      ("properties", qsuite);
    ]
