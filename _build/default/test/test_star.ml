(* Star-topology SMR tests: the live Follower Selection stack. *)

open Qs_star
module Stime = Qs_sim.Stime
module Timeout = Qs_fd.Timeout
module Detector = Qs_fd.Detector
module Fsel = Qs_follower.Follower_select

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_ilist = Alcotest.(check (list int))

let ms = Stime.of_ms

let config ?(n = 7) ?(f = 2) ?(timeout = ms 30) () =
  {
    Star_node.n;
    f;
    initial_timeout = timeout;
    timeout_strategy = Timeout.Exponential { factor = 2.0; max = ms 2000 };
  }

(* ------------------------------------------------------------------ *)
(* Messages *)

let test_msg_roundtrip () =
  let auth = Qs_crypto.Auth.create 4 in
  let req = { Star_msg.client = 0; rid = 1; op = "x" } in
  let lsig = Star_msg.sign_lead auth ~leader:0 ~slot:3 ~qepoch:1 req in
  let lead = { Star_msg.slot = 3; qepoch = 1; request = req; lsig } in
  check_bool "lead binding verifies" true (Star_msg.verify_lead auth ~leader:0 lead);
  check_bool "tampered epoch rejected" false
    (Star_msg.verify_lead auth ~leader:0 { lead with Star_msg.qepoch = 2 });
  let m = Star_msg.seal auth ~sender:2 (Star_msg.Lead lead) in
  check_bool "envelope verifies" true (Star_msg.verify auth m)

(* ------------------------------------------------------------------ *)
(* Happy path *)

let test_star_commits () =
  let c = Star_cluster.create (config ()) in
  let r = Star_cluster.submit c "write" in
  Star_cluster.run c;
  check_bool "committed" true (Star_cluster.is_committed c r);
  check_ilist "whole quorum executed" [ 0; 1; 2; 3; 4 ] (Star_cluster.executed_by c r)

let test_star_message_complexity () =
  (* LEAD + ACK + APPLY: 3(q-1) per request. *)
  let c = Star_cluster.create (config ()) in
  let _ = Star_cluster.submit c "op" in
  Star_cluster.run c;
  let q = 5 in
  check_int "3(q-1)" (3 * (q - 1)) (Star_cluster.message_count c)

let test_star_ordering () =
  let c = Star_cluster.create (config ()) in
  let _ = Star_cluster.submit c "a" in
  let _ = Star_cluster.submit c "b" in
  Star_cluster.run c;
  let log p =
    List.map (fun r -> r.Star_msg.op) (Star_node.executed (Star_cluster.node c p))
  in
  List.iter
    (fun p -> Alcotest.(check (list string)) "same order" (log 0) (log p))
    [ 1; 2; 3; 4 ]

let test_no_false_suspicions_happy () =
  let c = Star_cluster.create (config ()) in
  for i = 0 to 5 do
    ignore (Star_cluster.submit c (Printf.sprintf "op%d" i))
  done;
  Star_cluster.run c;
  for p = 0 to 6 do
    check_ilist
      (Printf.sprintf "p%d suspects nobody" (p + 1))
      []
      (Detector.suspected (Star_node.detector (Star_cluster.node c p)))
  done;
  check_int "no reconfiguration" 0 (Star_cluster.max_quorum_epoch c)

(* ------------------------------------------------------------------ *)
(* Failures: live Algorithm 2 *)

let test_crashed_leader_replaced_live () =
  (* The initial leader p1 is mute. Followers' LEAD expectations fire, the
     suspicion gossips, the maximal line subgraph moves the leadership, the
     new leader's FOLLOWERS message is expected and delivered — all on the
     asynchronous network. *)
  let c = Star_cluster.create (config ~timeout:(ms 20) ()) in
  Star_cluster.set_fault c 0 Star_node.Mute;
  let r = Star_cluster.submit c ~resubmit_every:(ms 100) "survive" in
  Star_cluster.run ~until:(ms 6000) c;
  check_bool "committed under a new leader" true (Star_cluster.is_committed c r);
  let node1 = Star_cluster.node c 1 in
  check_bool "leader moved" true (Star_node.leader node1 <> 0);
  check_bool "O(f)-ish reconfigurations" true (Star_cluster.max_quorum_epoch c <= 6 * 2 + 2)

let test_crashed_follower_excluded_live () =
  let c = Star_cluster.create (config ~timeout:(ms 20) ()) in
  Star_cluster.set_fault c 3 Star_node.Mute;
  let r = Star_cluster.submit c ~resubmit_every:(ms 100) "follower-down" in
  Star_cluster.run ~until:(ms 6000) c;
  check_bool "committed" true (Star_cluster.is_committed c r);
  check_bool "mute follower out of the quorum" false
    (List.mem 3 (Star_node.quorum (Star_cluster.node c 1)))

let test_leader_follower_link_separates_pair () =
  (* The leader omits messages to one follower only. *)
  let c = Star_cluster.create (config ~timeout:(ms 20) ()) in
  Star_cluster.set_fault c 0 (Star_node.Omit_to [ 2 ]);
  let r = Star_cluster.submit c ~resubmit_every:(ms 100) "one-link" in
  Star_cluster.run ~until:(ms 6000) c;
  check_bool "committed" true (Star_cluster.is_committed c r);
  let node1 = Star_cluster.node c 1 in
  let l = Star_node.leader node1 and q = Star_node.quorum node1 in
  check_bool "leader-victim pair separated" false (l = 0 && List.mem 2 q)

let test_follower_selection_state_is_live () =
  (* The embedded Algorithm 2 instance is consistent with the node's view. *)
  let c = Star_cluster.create (config ~timeout:(ms 20) ()) in
  Star_cluster.set_fault c 0 Star_node.Mute;
  let r = Star_cluster.submit c ~resubmit_every:(ms 100) "peek" in
  Star_cluster.run ~until:(ms 6000) c;
  check_bool "committed" true (Star_cluster.is_committed c r);
  let node2 = Star_cluster.node c 2 in
  let sel = Star_node.selector node2 in
  check_int "selector leader = node leader" (Star_node.leader node2) (Fsel.leader sel);
  check_ilist "selector quorum = node quorum" (Star_node.quorum node2) (Fsel.last_quorum sel)

let test_exactly_once_execution () =
  let c = Star_cluster.create (config ~timeout:(ms 20) ()) in
  Star_cluster.set_fault c 0 Star_node.Mute;
  for i = 0 to 3 do
    ignore (Star_cluster.submit c ~resubmit_every:(ms 80) (Printf.sprintf "op%d" i))
  done;
  Star_cluster.run ~until:(ms 6000) c;
  List.iter
    (fun p ->
      let ids =
        List.map
          (fun r -> (r.Star_msg.client, r.Star_msg.rid))
          (Star_node.executed (Star_cluster.node c p))
      in
      check_int
        (Printf.sprintf "p%d no duplicates" (p + 1))
        (List.length ids)
        (List.length (List.sort_uniq compare ids)))
    [ 1; 2; 3; 4; 5; 6 ]

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_star_single_fault_recovery =
  QCheck.Test.make ~name:"star recovers from any single mute process" ~count:15
    QCheck.(pair (int_range 1 300) (int_bound 6))
    (fun (seed, faulty) ->
      let c =
        Star_cluster.create ~seed:(Int64.of_int seed) (config ~f:2 ~timeout:(ms 20) ())
      in
      Star_cluster.set_fault c faulty Star_node.Mute;
      let r = Star_cluster.submit c ~resubmit_every:(ms 100) "survive" in
      Star_cluster.run ~until:(ms 8000) c;
      Star_cluster.is_committed c r)

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_star_single_fault_recovery ]

let () =
  Alcotest.run "star"
    [
      ("messages", [ Alcotest.test_case "roundtrip" `Quick test_msg_roundtrip ]);
      ( "happy-path",
        [
          Alcotest.test_case "commits" `Quick test_star_commits;
          Alcotest.test_case "3(q-1) messages" `Quick test_star_message_complexity;
          Alcotest.test_case "identical order" `Quick test_star_ordering;
          Alcotest.test_case "no false suspicions" `Quick test_no_false_suspicions_happy;
        ] );
      ( "failures",
        [
          Alcotest.test_case "crashed leader replaced (live Alg 2)" `Quick
            test_crashed_leader_replaced_live;
          Alcotest.test_case "crashed follower excluded" `Quick test_crashed_follower_excluded_live;
          Alcotest.test_case "leader-follower link separated" `Quick
            test_leader_follower_link_separates_pair;
          Alcotest.test_case "selector state live" `Quick test_follower_selection_state_is_live;
          Alcotest.test_case "exactly-once execution" `Quick test_exactly_once_execution;
        ] );
      ("properties", qsuite);
    ]
