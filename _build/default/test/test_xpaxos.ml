(* XPaxos tests: enumeration mapping, log, normal case (Fig. 2), delayed
   PREPARE (Fig. 3), failure handling via the expectation-based detector, and
   both view-change modes. *)

open Qs_xpaxos
module Sim = Qs_sim.Sim
module Network = Qs_sim.Network
module Stime = Qs_sim.Stime
module Timeout = Qs_fd.Timeout
module Detector = Qs_fd.Detector

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_ilist = Alcotest.(check (list int))

let ms = Stime.of_ms

let base_config ?(mode = Replica.Enumeration) ?(n = 5) ?(f = 2) ?(timeout = ms 50) () =
  {
    Replica.n;
    f;
    mode;
    initial_timeout = timeout;
    timeout_strategy = Timeout.Exponential { factor = 2.0; max = ms 2000 };
  }

(* ------------------------------------------------------------------ *)
(* Enumeration *)

let test_enumeration_count () =
  check_int "C(5,3)" 10 (Enumeration.count ~n:5 ~q:3);
  check_int "C(3,2)" 3 (Enumeration.count ~n:3 ~q:2)

let test_enumeration_groups () =
  check_ilist "view 0" [ 0; 1; 2 ] (Enumeration.group ~n:5 ~q:3 ~view:0);
  check_ilist "view 1" [ 0; 1; 3 ] (Enumeration.group ~n:5 ~q:3 ~view:1);
  check_ilist "wraps around" [ 0; 1; 2 ] (Enumeration.group ~n:5 ~q:3 ~view:10);
  check_int "leader is min" 0 (Enumeration.leader ~n:5 ~q:3 ~view:1);
  check_int "later leader" 2 (Enumeration.leader ~n:5 ~q:3 ~view:9)

let test_enumeration_view_for () =
  let v = Enumeration.view_for ~n:5 ~q:3 ~at_least:0 ~group:[ 0; 1; 3 ] in
  check_int "rank 1" 1 v;
  let v2 = Enumeration.view_for ~n:5 ~q:3 ~at_least:2 ~group:[ 0; 1; 3 ] in
  check_int "next cycle" 11 v2;
  let v3 = Enumeration.view_for ~n:5 ~q:3 ~at_least:11 ~group:[ 0; 1; 3 ] in
  check_int "exact" 11 v3;
  Alcotest.check_raises "invalid group"
    (Invalid_argument "Enumeration.view_for: not a sorted q-subset") (fun () ->
      ignore (Enumeration.view_for ~n:5 ~q:3 ~at_least:0 ~group:[ 1; 0; 3 ]))

(* ------------------------------------------------------------------ *)
(* Xlog *)

let req op = { Xmsg.client = 0; rid = 0; op }

let sp_for auth ~leader ~view ~slot op =
  Xmsg.sign_prepare auth ~leader { Xmsg.view; slot; request = req op }

let test_xlog_basics () =
  let log = Xlog.create () in
  check_int "empty max" (-1) (Xlog.max_slot log);
  check_int "next slot" 0 (Xlog.next_slot log);
  let e = Xlog.entry log 3 in
  check_int "created" 3 e.Xlog.slot;
  check_int "max updated" 3 (Xlog.max_slot log);
  Xlog.record_vote e 1;
  Xlog.record_vote e 1;
  check_ilist "votes deduped" [ 1 ] e.Xlog.votes

let test_xlog_executed_prefix_stops_at_gap () =
  let auth = Qs_crypto.Auth.create 3 in
  let log = Xlog.create () in
  let mk slot =
    let e = Xlog.entry log slot in
    e.Xlog.sp <- Some (sp_for auth ~leader:0 ~view:0 ~slot (Printf.sprintf "op%d" slot));
    e.Xlog.committed <- true;
    e.Xlog.executed <- true
  in
  mk 0;
  mk 1;
  mk 3;
  (* slot 2 missing *)
  check_int "prefix stops at gap" 2 (List.length (Xlog.executed_prefix log))

let test_xlog_to_entries () =
  let auth = Qs_crypto.Auth.create 3 in
  let log = Xlog.create () in
  let e = Xlog.entry log 0 in
  e.Xlog.sp <- Some (sp_for auth ~leader:0 ~view:2 ~slot:0 "x");
  e.Xlog.committed <- true;
  ignore (Xlog.entry log 1);
  (* no prepare: not exported *)
  let entries = Xlog.to_entries log in
  check_int "only prepared slots" 1 (List.length entries);
  let entry = List.hd entries in
  check_int "view" 2 entry.Xmsg.eview;
  check_bool "committed" true entry.Xmsg.ecommitted

(* ------------------------------------------------------------------ *)
(* Xmsg *)

let test_xmsg_sign_verify () =
  let auth = Qs_crypto.Auth.create 3 in
  let sp = sp_for auth ~leader:1 ~view:0 ~slot:0 "op" in
  check_bool "prepare verifies" true (Xmsg.verify_prepare auth ~leader:1 sp);
  check_bool "wrong leader" false (Xmsg.verify_prepare auth ~leader:2 sp);
  let m = Xmsg.seal auth ~sender:2 (Xmsg.Prepare sp) in
  check_bool "envelope verifies" true (Xmsg.verify auth m);
  check_bool "sender spoof rejected" false (Xmsg.verify auth { m with Xmsg.sender = 0 })

(* ------------------------------------------------------------------ *)
(* Normal case *)

let test_normal_case_commits () =
  let c = Xcluster.create (base_config ()) in
  let r = Xcluster.submit c "write:a" in
  Xcluster.run c;
  check_bool "globally committed" true (Xcluster.is_globally_committed c r);
  check_ilist "executed by the group" [ 0; 1; 2 ] (Xcluster.executed_by c r);
  check_bool "consistent" true (Xcluster.consistent c ~correct:[ 0; 1; 2; 3; 4 ]);
  check_int "no view changes" 0 (Xcluster.max_view c)

let test_normal_case_ordering () =
  let c = Xcluster.create (base_config ()) in
  let r1 = Xcluster.submit c "a" in
  let r2 = Xcluster.submit c "b" in
  let r3 = Xcluster.submit c "c" in
  Xcluster.run c;
  List.iter
    (fun r -> check_bool "committed" true (Xcluster.is_globally_committed c r))
    [ r1; r2; r3 ];
  let history = Replica.executed (Xcluster.replica c 1) in
  Alcotest.(check (list string)) "in submission order" [ "a"; "b"; "c" ]
    (List.map (fun r -> r.Xmsg.op) history)

let test_normal_case_message_count () =
  (* Fig. 2 pattern in a group of size q: (q-1) PREPAREs + q*(q-1) COMMITs. *)
  let c = Xcluster.create (base_config ()) in
  let _ = Xcluster.submit c "op" in
  Xcluster.run c;
  let q = 3 in
  check_int "message complexity" ((q - 1) + (q * (q - 1))) (Xcluster.message_count c)

let test_no_false_suspicions_in_happy_path () =
  let c = Xcluster.create (base_config ()) in
  for i = 0 to 9 do
    ignore (Xcluster.submit c (Printf.sprintf "op%d" i))
  done;
  Xcluster.run c;
  for p = 0 to 4 do
    check_ilist
      (Printf.sprintf "replica %d suspects nobody" p)
      []
      (Detector.suspected (Replica.detector (Xcluster.replica c p)))
  done

let test_fig3_commit_before_prepare () =
  (* Delay the leader's PREPARE to p3 (id 2) beyond the other links: p3 sees
     COMMITs first, adopts the embedded PREPARE, and still commits. *)
  let c = Xcluster.create (base_config ~timeout:(ms 500) ()) in
  Xcluster.delay_link c ~src:0 ~dst:2 ~by:(ms 20);
  let r = Xcluster.submit c "delayed" in
  Xcluster.run c;
  check_bool "committed despite delay" true (Xcluster.is_globally_committed c r);
  check_bool "p3 executed" true (List.mem 2 (Xcluster.executed_by c r));
  (* Nobody was detected: the delay is within the (long) timeout. *)
  check_ilist "no detections" [] (Replica.detections (Xcluster.replica c 2))

let test_leader_omission_on_one_link_suspected () =
  (* The leader omits everything to p3 only (an omission failure on an
     individual link). p3 learns the request from the other member's COMMIT
     (embedded prepare) and sends its own COMMIT — so the leader and p2
     commit — but p3 itself is stuck without the leader's COMMIT. Its
     detector then suspects the leader, and the view changes route around
     the bad link. *)
  let c = Xcluster.create (base_config ~timeout:(ms 30) ()) in
  Xcluster.omit_link c ~src:0 ~dst:2;
  let r = Xcluster.submit c ~resubmit_every:(ms 100) "omitted-link" in
  Xcluster.run ~until:(ms 25) c;
  (* Before any timeout: the two well-connected members committed thanks to
     p3's COMMIT, but p3 cannot (it misses the leader's vote). *)
  check_ilist "only p1,p2 executed so far" [ 0; 1 ] (Xcluster.executed_by c r);
  Xcluster.run ~until:(ms 3000) c;
  (* After the timeout: p3 suspected the leader, views moved on, and the
     request is committed by a full quorum. *)
  check_bool "view advanced" true (Xcluster.max_view c > 0);
  check_bool "eventually globally committed" true (Xcluster.is_globally_committed c r)

let test_mute_leader_replaced_enumeration () =
  let c = Xcluster.create (base_config ~timeout:(ms 20) ()) in
  Xcluster.set_fault c 0 Replica.Mute;
  let r = Xcluster.submit c ~resubmit_every:(ms 100) "survive" in
  Xcluster.run ~until:(ms 3000) c;
  check_bool "committed despite mute leader" true (Xcluster.is_globally_committed c r);
  check_bool "view advanced past leader 0" true (Xcluster.max_view c > 0);
  check_bool "consistency" true (Xcluster.consistent c ~correct:[ 1; 2; 3; 4 ])

let test_mute_leader_replaced_quorum_selection () =
  let c = Xcluster.create (base_config ~mode:Replica.Quorum_selection ~timeout:(ms 20) ()) in
  Xcluster.set_fault c 0 Replica.Mute;
  let r = Xcluster.submit c ~resubmit_every:(ms 100) "survive-qs" in
  Xcluster.run ~until:(ms 3000) c;
  check_bool "committed despite mute leader" true (Xcluster.is_globally_committed c r);
  check_bool "consistency" true (Xcluster.consistent c ~correct:[ 1; 2; 3; 4 ]);
  (* The quorum selector at a correct replica excludes the mute leader. *)
  (match Replica.quorum_selector (Xcluster.replica c 1) with
   | Some qs ->
     check_bool "final quorum excludes p1" false
       (List.mem 0 (Qs_core.Quorum_select.last_quorum qs))
   | None -> Alcotest.fail "no quorum selector in QS mode")

let test_equivocating_leader_detected () =
  let c = Xcluster.create (base_config ~timeout:(ms 50) ()) in
  Xcluster.set_fault c 0 (Replica.Equivocate 1);
  let r = Xcluster.submit c ~resubmit_every:(ms 150) "equivocate-me" in
  Xcluster.run ~until:(ms 3000) c;
  (* Some correct replica detected the leader's equivocation. *)
  let detected_by_someone =
    List.exists (fun p -> List.mem 0 (Replica.detections (Xcluster.replica c p))) [ 1; 2; 3; 4 ]
  in
  check_bool "equivocation detected" true detected_by_someone;
  check_bool "view advanced" true (Xcluster.max_view c > 0);
  check_bool "safety held" true (Xcluster.consistent c ~correct:[ 1; 2; 3; 4 ]);
  check_bool "request still committed" true (Xcluster.is_globally_committed c r)

let test_committed_state_survives_view_change () =
  let c = Xcluster.create (base_config ~timeout:(ms 20) ()) in
  let r1 = Xcluster.submit c "before" in
  Xcluster.run c;
  check_bool "first committed" true (Xcluster.is_globally_committed c r1);
  (* Now the leader goes mute; a later request must land after r1. *)
  Xcluster.set_fault c 0 Replica.Mute;
  let r2 = Xcluster.submit c ~resubmit_every:(ms 100) "after" in
  Xcluster.run ~until:(ms 3000) c;
  check_bool "second committed" true (Xcluster.is_globally_committed c r2);
  check_bool "consistent" true (Xcluster.consistent c ~correct:[ 1; 2; 3; 4 ]);
  (* Every correct replica that executed r2 executed r1 first. *)
  List.iter
    (fun p ->
      let history = List.map (fun r -> r.Xmsg.op) (Replica.executed (Xcluster.replica c p)) in
      if List.mem "after" history then
        check_bool "order preserved" true (List.hd history = "before"))
    [ 1; 2; 3; 4 ]

let test_xft_minimal_n3 () =
  (* XFT's headline: n = 2f+1 = 3 with f = 1. *)
  let c = Xcluster.create (base_config ~n:3 ~f:1 ~timeout:(ms 20) ()) in
  let r = Xcluster.submit c "xft" in
  Xcluster.run c;
  check_bool "commits with 2f+1 replicas" true (Xcluster.is_globally_committed c r);
  check_ilist "group of f+1 executed" [ 0; 1 ] (Xcluster.executed_by c r)

let test_mute_follower_view_changes () =
  (* A mute group member (not the leader) also forces a view change: the
     leader's COMMIT expectations time out. *)
  let c = Xcluster.create (base_config ~timeout:(ms 20) ()) in
  Xcluster.set_fault c 1 Replica.Mute;
  let r = Xcluster.submit c ~resubmit_every:(ms 100) "follower-mute" in
  Xcluster.run ~until:(ms 3000) c;
  check_bool "committed" true (Xcluster.is_globally_committed c r);
  check_bool "moved to a group without p2" false
    (List.mem 1 (Replica.group (Xcluster.replica c 0)))

let test_enumeration_all_groups_distinct () =
  let total = Enumeration.count ~n:5 ~q:3 in
  let groups = List.init total (fun v -> Enumeration.group ~n:5 ~q:3 ~view:v) in
  check_int "all distinct within a cycle" total
    (List.length (List.sort_uniq compare groups))

let test_duplicate_submission_dedupe () =
  (* The same (client, rid) handed to the leader twice must occupy one
     slot. *)
  let c = Xcluster.create (base_config ()) in
  let request = { Xmsg.client = 5; rid = 42; op = "once" } in
  Replica.submit (Xcluster.replica c 0) request;
  Replica.submit (Xcluster.replica c 0) request;
  Xcluster.run c;
  let history = Replica.executed (Xcluster.replica c 1) in
  check_int "one execution" 1 (List.length history)

let test_passive_replicas_execute_nothing () =
  let c = Xcluster.create (base_config ()) in
  let r = Xcluster.submit c "op" in
  Xcluster.run c;
  check_bool "outsiders did not execute" true
    ((not (List.mem 3 (Xcluster.executed_by c r))) && not (List.mem 4 (Xcluster.executed_by c r)));
  check_int "outsider log empty" 0 (List.length (Replica.executed (Xcluster.replica c 4)))

let test_qs_mode_link_omission_recovers () =
  (* Not a mute replica — a single bad link. Quorum selection separates the
     pair and the request commits. *)
  let c = Xcluster.create (base_config ~mode:Replica.Quorum_selection ~timeout:(ms 20) ()) in
  Xcluster.omit_link c ~src:0 ~dst:1;
  Xcluster.omit_link c ~src:1 ~dst:0;
  let r = Xcluster.submit c ~resubmit_every:(ms 100) "bad-link" in
  Xcluster.run ~until:(ms 4000) c;
  check_bool "committed" true (Xcluster.is_globally_committed c r);
  (match Replica.quorum_selector (Xcluster.replica c 2) with
   | Some qs ->
     let quorum = Qs_core.Quorum_select.last_quorum qs in
     check_bool "pair separated" false (List.mem 0 quorum && List.mem 1 quorum)
   | None -> Alcotest.fail "no selector");
  check_bool "consistent" true (Xcluster.consistent c ~correct:[ 0; 1; 2; 3; 4 ])

let test_view_change_expectations_drive_progress () =
  (* A mute replica inside the NEW group stalls the view change itself; the
     leader's VIEW-CHANGE expectations must push past it. *)
  let c = Xcluster.create (base_config ~timeout:(ms 20) ()) in
  Xcluster.set_fault c 1 Replica.Mute;
  Xcluster.set_fault c 3 Replica.Mute;
  (* f=2 mute replicas: several candidate groups contain one of them. *)
  let r = Xcluster.submit c ~resubmit_every:(ms 100) "push-through" in
  Xcluster.run ~until:(ms 8000) c;
  check_bool "committed despite two mutes" true (Xcluster.is_globally_committed c r);
  let grp = Replica.group (Xcluster.replica c 0) in
  check_bool "final group avoids both mutes" true
    ((not (List.mem 1 grp)) && not (List.mem 3 grp))

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_safety_random_mute_faults =
  QCheck.Test.make ~name:"prefix consistency under random mute faults" ~count:25
    QCheck.(pair (int_range 1 1000) (int_range 0 4))
    (fun (seed, faulty) ->
      let c =
        Xcluster.create ~seed:(Int64.of_int seed) (base_config ~timeout:(ms 20) ())
      in
      Xcluster.set_fault c faulty Replica.Mute;
      for i = 0 to 4 do
        ignore (Xcluster.submit c ~resubmit_every:(ms 100) (Printf.sprintf "op%d" i))
      done;
      Xcluster.run ~until:(ms 4000) c;
      let correct = List.filter (fun p -> p <> faulty) [ 0; 1; 2; 3; 4 ] in
      Xcluster.consistent c ~correct)

let prop_safety_random_link_omissions =
  QCheck.Test.make ~name:"prefix consistency under random link omissions" ~count:25
    QCheck.(pair (int_range 1 1000) (list_of_size (QCheck.Gen.int_range 0 4) (pair (int_bound 4) (int_bound 4))))
    (fun (seed, links) ->
      let c =
        Xcluster.create ~seed:(Int64.of_int seed) (base_config ~timeout:(ms 20) ())
      in
      List.iter (fun (s, d) -> if s <> d then Xcluster.omit_link c ~src:s ~dst:d) links;
      for i = 0 to 3 do
        ignore (Xcluster.submit c ~resubmit_every:(ms 100) (Printf.sprintf "op%d" i))
      done;
      Xcluster.run ~until:(ms 4000) c;
      (* All replicas are correct processes here (the network omits); prefix
         consistency must hold for everyone. *)
      Xcluster.consistent c ~correct:[ 0; 1; 2; 3; 4 ])

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_safety_random_mute_faults; prop_safety_random_link_omissions ]

let () =
  Alcotest.run "xpaxos"
    [
      ( "enumeration",
        [
          Alcotest.test_case "count" `Quick test_enumeration_count;
          Alcotest.test_case "groups" `Quick test_enumeration_groups;
          Alcotest.test_case "view_for" `Quick test_enumeration_view_for;
          Alcotest.test_case "groups distinct" `Quick test_enumeration_all_groups_distinct;
        ] );
      ( "xlog",
        [
          Alcotest.test_case "basics" `Quick test_xlog_basics;
          Alcotest.test_case "prefix stops at gap" `Quick test_xlog_executed_prefix_stops_at_gap;
          Alcotest.test_case "to_entries" `Quick test_xlog_to_entries;
        ] );
      ("xmsg", [ Alcotest.test_case "sign/verify" `Quick test_xmsg_sign_verify ]);
      ( "normal-case",
        [
          Alcotest.test_case "commits" `Quick test_normal_case_commits;
          Alcotest.test_case "ordering" `Quick test_normal_case_ordering;
          Alcotest.test_case "message count (Fig 2)" `Quick test_normal_case_message_count;
          Alcotest.test_case "no false suspicions" `Quick test_no_false_suspicions_in_happy_path;
          Alcotest.test_case "commit before prepare (Fig 3)" `Quick test_fig3_commit_before_prepare;
          Alcotest.test_case "xft minimal n=3" `Quick test_xft_minimal_n3;
        ] );
      ( "failures",
        [
          Alcotest.test_case "link omission suspected" `Quick test_leader_omission_on_one_link_suspected;
          Alcotest.test_case "mute leader (enumeration)" `Quick test_mute_leader_replaced_enumeration;
          Alcotest.test_case "mute leader (quorum selection)" `Quick
            test_mute_leader_replaced_quorum_selection;
          Alcotest.test_case "equivocation detected" `Quick test_equivocating_leader_detected;
          Alcotest.test_case "state survives view change" `Quick test_committed_state_survives_view_change;
          Alcotest.test_case "mute follower" `Quick test_mute_follower_view_changes;
          Alcotest.test_case "duplicate submission" `Quick test_duplicate_submission_dedupe;
          Alcotest.test_case "passive replicas idle" `Quick test_passive_replicas_execute_nothing;
          Alcotest.test_case "QS mode bad link" `Quick test_qs_mode_link_omission_recovers;
          Alcotest.test_case "two mutes pushed through" `Quick
            test_view_change_expectations_drive_progress;
        ] );
      ("properties", qsuite);
    ]
