(* CI bench gate.

   Usage:
     check_bench BENCH_qsel.json bench/baseline.json
       Diff the fresh bench summary against the committed baseline; exit 1
       on any hard regression (see Qs_obs.Bench_gate for what is gated).

     check_bench BENCH_qsel.json bench/baseline.json --update-baseline
       Rewrite the baseline from the current summary instead of checking —
       the escape hatch for intentional perf changes. Commit the diff. *)

module Json = Qs_obs.Json
module Gate = Qs_obs.Bench_gate

let read_json path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  match Json.parse s with
  | Ok j -> j
  | Error e -> failwith (Printf.sprintf "%s: %s" path e)

let () =
  let args = Array.to_list Sys.argv in
  let update = List.mem "--update-baseline" args in
  match List.filter (fun a -> a <> "--update-baseline") (List.tl args) with
  | [ current_path; baseline_path ] -> (
    let current = read_json current_path in
    if update then begin
      let baseline = Gate.derive_baseline current in
      let oc = open_out baseline_path in
      output_string oc (Json.render_pretty baseline);
      output_char oc '\n';
      close_out oc;
      Printf.printf "wrote %s from %s\n" baseline_path current_path
    end
    else
      let baseline = read_json baseline_path in
      let verdicts = Gate.check ~current ~baseline in
      print_string (Gate.render verdicts);
      if not (Gate.passed verdicts) then exit 1)
  | _ ->
    prerr_endline "usage: check_bench CURRENT BASELINE [--update-baseline]";
    exit 2
