(* Benchmark harness.

   Two layers, matching DESIGN.md section 4:

   1. The reproduction tables: every table/figure-level claim of the paper
      (E1..E8) is regenerated and printed with its verdicts. This is the
      output recorded in EXPERIMENTS.md.

   2. Bechamel micro/macro benchmarks: one [Test.make] per experiment
      (regenerating that table end-to-end) plus microbenchmarks of the hot
      building blocks (independent sets, line subgraphs, matrix merges,
      adversary games, a full XPaxos commit).

   Usage:
     dune exec bench/main.exe                 # tables + benchmarks
     dune exec bench/main.exe -- --tables     # tables only
     dune exec bench/main.exe -- --micro      # benchmarks only
     dune exec bench/main.exe -- --quick      # trimmed sweeps + short quota (CI)
     dune exec bench/main.exe -- --json[=F]   # also write a machine-readable
                                              # summary (default BENCH_qsel.json)
                                              # so the perf trajectory across
                                              # PRs has data points *)

open Bechamel
open Toolkit
module Experiments = Qs_harness.Experiments
module Graph = Qs_graph.Graph
module Indep = Qs_graph.Indep
module Line = Qs_graph.Line_subgraph
module Theorem4 = Qs_adversary.Theorem4

(* ------------------------------------------------------------------ *)
(* Benchmark subjects *)

(* An adversarially loaded suspect graph: the Theorem-4 end state for f=4 on
   n=12 — the worst realistic input for the quorum search. *)
let adversarial_graph () =
  let setup = Theorem4.default_setup ~n:12 ~f:4 in
  let game = Theorem4.greedy setup in
  let g = Graph.create 12 in
  List.iter (fun (a, b) -> Graph.add_edge g (min a b) (max a b)) game.Theorem4.injections;
  g

let bench_lex_first =
  let g = adversarial_graph () in
  Test.make ~name:"indep/lex-first-IS n=12 f=4"
    (Staged.stage (fun () -> ignore (Indep.lex_first_independent_set g 8)))

let bench_max_is =
  let g = adversarial_graph () in
  Test.make ~name:"indep/max-IS n=12 f=4"
    (Staged.stage (fun () -> ignore (Indep.max_independent_set_size g)))

let bench_line_subgraph =
  let g = adversarial_graph () in
  Test.make ~name:"line-subgraph/maximal n=12"
    (Staged.stage (fun () -> ignore (Line.maximal g)))

let bench_matrix_merge =
  let a = Qs_core.Suspicion_matrix.create 16 in
  let row = Array.init 16 (fun i -> i mod 3) in
  Test.make ~name:"matrix/merge-row n=16"
    (Staged.stage (fun () -> ignore (Qs_core.Suspicion_matrix.merge_row a ~owner:1 row)))

let bench_sha256 =
  let payload = String.make 1024 'x' in
  Test.make ~name:"crypto/sha256 1KiB"
    (Staged.stage (fun () -> ignore (Qs_crypto.Sha256.digest_string payload)))

let bench_theorem4_greedy =
  Test.make ~name:"adversary/theorem4-greedy f=4"
    (Staged.stage (fun () ->
         ignore (Theorem4.greedy (Theorem4.default_setup ~n:10 ~f:4))))

let bench_quorum_round =
  Test.make ~name:"cluster/suspicion-round n=7 f=2"
    (Staged.stage (fun () ->
         let c = Qs_core.Cluster.create { Qs_core.Quorum_select.n = 7; f = 2 } in
         Qs_core.Cluster.fd_suspect c ~at:0 [ 5 ];
         Qs_core.Cluster.run_until_quiet c))

let bench_xpaxos_commit =
  let config =
    {
      Qs_xpaxos.Replica.n = 5;
      f = 2;
      mode = Qs_xpaxos.Replica.Enumeration;
      initial_timeout = Qs_sim.Stime.of_ms 50;
      timeout_strategy = Qs_fd.Timeout.Fixed;
    }
  in
  Test.make ~name:"xpaxos/request-commit n=5 f=2"
    (Staged.stage (fun () ->
         let c = Qs_xpaxos.Xcluster.create config in
         ignore (Qs_xpaxos.Xcluster.submit c "op");
         Qs_xpaxos.Xcluster.run c))

let bench_pbft_commit participation name =
  let config =
    {
      Qs_pbft.Preplica.n = 7;
      f = 2;
      participation;
      initial_timeout = Qs_sim.Stime.of_ms 50;
      timeout_strategy = Qs_fd.Timeout.Fixed;
    }
  in
  Test.make ~name
    (Staged.stage (fun () ->
         let c = Qs_pbft.Pcluster.create config in
         ignore (Qs_pbft.Pcluster.submit c "op");
         Qs_pbft.Pcluster.run c))

let micro_group =
  Test.make_grouped ~name:"micro"
    [
      bench_lex_first;
      bench_max_is;
      bench_line_subgraph;
      bench_matrix_merge;
      bench_sha256;
      bench_theorem4_greedy;
      bench_quorum_round;
      bench_xpaxos_commit;
      bench_pbft_commit Qs_pbft.Preplica.Full "pbft/commit full n=7";
      bench_pbft_commit Qs_pbft.Preplica.Selected "pbft/commit selected n=7";
    ]

(* Scaling of the NP-hard selection step (Section VI-C: "for small graphs,
   e.g. including only tenth of nodes, it is easy to compute"): the
   lexicographically-first independent set on the Theorem-4 adversary's end
   state, the densest suspicion graph a model-respecting execution
   produces. *)
let scaling_group =
  let subject n =
    let f = (n - 2) / 3 in
    let setup = Theorem4.default_setup ~n ~f in
    let game = Theorem4.greedy setup in
    let g = Graph.create n in
    List.iter (fun (a, b) -> Graph.add_edge g (min a b) (max a b)) game.Theorem4.injections;
    (g, n - f)
  in
  Test.make_grouped ~name:"scaling"
    (List.map
       (fun n ->
         let g, q = subject n in
         Test.make ~name:(Printf.sprintf "lex-first-IS n=%02d (adversarial)" n)
           (Staged.stage (fun () -> ignore (Indep.lex_first_independent_set g q))))
       [ 10; 20; 30; 40; 50 ])

(* One Test.make per reproduced table/figure: regenerating it end-to-end. *)
let experiment_group =
  let quick_fs = [ 1; 2 ] in
  Test.make_grouped ~name:"experiments"
    [
      Test.make ~name:"E1 fig4" (Staged.stage (fun () -> ignore (Experiments.e1 ())));
      Test.make ~name:"E2 upper-bound"
        (Staged.stage (fun () -> ignore (Experiments.e2 ~fs:quick_fs ())));
      Test.make ~name:"E3 lower-bound"
        (Staged.stage (fun () -> ignore (Experiments.e3 ~fs:quick_fs ())));
      Test.make ~name:"E4 follower"
        (Staged.stage (fun () -> ignore (Experiments.e4 ~fs:quick_fs ())));
      Test.make ~name:"E5 view-changes"
        (Staged.stage (fun () -> ignore (Experiments.e5 ~fs:quick_fs ())));
      Test.make ~name:"E6 messages" (Staged.stage (fun () -> ignore (Experiments.e6 ())));
      Test.make ~name:"E7 detector" (Staged.stage (fun () -> ignore (Experiments.e7 ())));
      Test.make ~name:"E8 flows" (Staged.stage (fun () -> ignore (Experiments.e8 ())));
      Test.make ~name:"E9 chain" (Staged.stage (fun () -> ignore (Experiments.e9 ())));
      Test.make ~name:"E10 stack" (Staged.stage (fun () -> ignore (Experiments.e10 ())));
      Test.make ~name:"E11 star"
        (Staged.stage (fun () -> ignore (Experiments.e11 ())));
      Test.make ~name:"E12 recovery"
        (Staged.stage (fun () -> ignore (Experiments.e12 ())));
    ]

(* ------------------------------------------------------------------ *)
(* Runner *)

let run_benchmarks ~quick () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let instance = Instance.monotonic_clock in
  let cfg =
    if quick then Benchmark.cfg ~limit:50 ~quota:(Time.second 0.05) ~kde:None ()
    else Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let run_group group =
    let raw = Benchmark.all cfg [ instance ] group in
    let results = Analyze.all ols instance raw in
    let rows =
      Hashtbl.fold
        (fun name ols_result acc ->
          let ns =
            match Analyze.OLS.estimates ols_result with
            | Some (est :: _) -> est
            | _ -> nan
          in
          (name, ns) :: acc)
        results []
    in
    let rows = List.sort compare rows in
    List.iter
      (fun (name, ns) ->
        let pretty =
          if Float.is_nan ns then "n/a"
          else if ns >= 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
          else if ns >= 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
          else if ns >= 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
          else Printf.sprintf "%8.0f ns" ns
        in
        Printf.printf "  %-42s %s/run\n" name pretty)
      rows;
    rows
  in
  print_endline "== Bechamel: building blocks ==";
  let micro = run_group micro_group in
  print_newline ();
  print_endline "== Bechamel: quorum-search scaling (Section VI-C) ==";
  let scaling = run_group scaling_group in
  print_newline ();
  print_endline "== Bechamel: full experiment regeneration ==";
  let experiments = run_group experiment_group in
  print_newline ();
  [ ("micro", micro); ("scaling", scaling); ("experiments", experiments) ]

(* Commission-fault smoke: one seeded Byzantine schedule per stack — an
   equivocator armed from 1ms, a slander phase, and a transient leader
   crash at t=0 so suspicion gossip gives the equivocator rows to corrupt.
   The crash must be transient: a permanent leader crash on the star stack
   leaves the spokes with divergent quorum views long enough for correct
   processes to suspect each other. The per-stack conviction counters
   (equivocation proofs found, forgeries rejected) land in BENCH_qsel.json
   next to the perf numbers, so the evidence plane's detection trajectory
   is diffable across commits. xpaxos-enum legitimately convicts nothing:
   enumeration mode has no suspicion gossip for the equivocator to fork. *)
let commission_counters ~quick () =
  let module Chaos = Qs_harness.Chaos in
  let module Fault = Qs_faults.Fault in
  let module Campaign = Qs_faults.Campaign in
  let ms = Qs_sim.Stime.of_ms in
  List.map
    (fun stack ->
      let params =
        { (Chaos.default_params stack) with
          Chaos.horizon = ms (if quick then 2_000 else 4_000);
        }
      in
      let schedule =
        [
          Fault.at ~start:Qs_sim.Stime.zero ~stop:(ms 40) (Fault.Crash 0);
          Fault.at ~start:(ms 1) (Fault.Equivocate { src = 1; scope = [ 2; 3 ] });
          Fault.at ~start:(ms 300) ~stop:(ms 1_500)
            (Fault.Slander { src = 1; victim = 2 });
        ]
      in
      let model = Fault.classify ~n:params.Chaos.n ~f:params.Chaos.f schedule in
      let o = Chaos.execute stack ~params ~seed:90210 ~model schedule in
      ( Chaos.name stack,
        o.Campaign.proofs,
        o.Campaign.forgeries,
        List.length o.Campaign.violations ))
    Chaos.all

(* The E15 scaling sweep (n = 64/256/1024): selection-core throughput,
   gossip bytes (delta vs full), and per-packet idle allocation. These are
   the machine-independent-ish numbers the bench gate keys on. *)
let scaling_points ~quick () = Qs_harness.E_scale.measure ~quick ()

(* The E16 churn sweep (n = 64/256): availability and quorum stability
   under a deterministic join/leave/eject script against membership-width
   selectors. Everything but the reconfig throughput is a code property
   the gate pins exactly. *)
let churn_points ~quick () = Qs_harness.E_churn.measure ~quick ()

let churn_json points =
  let module Json = Qs_obs.Json in
  Json.List
    (List.map
       (fun (p : Qs_harness.E_churn.point) ->
         Json.Obj
           [
             ("n", Json.Int p.n);
             ("f", Json.Int p.f);
             ("rounds", Json.Int p.rounds);
             ("joins", Json.Int p.joins);
             ("leaves", Json.Int p.leaves);
             ("ejects", Json.Int p.ejects);
             ("availability", Json.Float p.availability);
             ("quorum_changes", Json.Int p.quorum_changes);
             ("reconfig_ops_per_sec", Json.Float p.reconfig_ops_per_sec);
             ("remap_consistent", Json.Bool p.remap_consistent);
             ("departed_clean", Json.Bool p.departed_clean);
           ])
       points)

(* The E18 policy sweep (n = 9, five regions): per-policy exposure,
   availability and repair under whole-region loss, plus the cross-policy
   and sampled n=1024 intersection verdicts. Fully deterministic — every
   field is a code property the gate can pin exactly. *)
let policy_sweep () =
  let module E = Qs_harness.E_policy in
  (E.measure (), E.cross_verdicts (), E.sampled_verdict ())

let policy_json (points, cross, sampled) =
  let module Json = Qs_obs.Json in
  let module I = Qs_core.Quorum_intersection in
  Json.Obj
    [
      ( "points",
        Json.List
          (List.map
             (fun (p : Qs_harness.E_policy.point) ->
               Json.Obj
                 [
                   ("policy", Json.String p.policy);
                   ( "standing",
                     Json.List (List.map (fun i -> Json.Int i) p.standing) );
                   ("max_exposure", Json.Int p.max_exposure);
                   ("outages", Json.Int p.outages);
                   ("availability", Json.Float p.availability);
                   ("quorum_changes", Json.Int p.quorum_changes);
                   ("repairs_clean", Json.Bool p.repairs_clean);
                   ("agreement", Json.Bool p.agreement);
                   ("t3_ok", Json.Bool p.t3_ok);
                 ])
             points) );
      ( "intersection",
        Json.Obj
          [
            ("groups", Json.Int (List.length cross));
            ( "pairs",
              Json.Int (List.fold_left (fun a (v : I.verdict) -> a + v.pairs) 0 cross)
            );
            ("ok", Json.Bool (List.for_all (fun (v : I.verdict) -> v.ok) cross));
            ("sampled_pairs", Json.Int sampled.I.pairs);
            ("sampled_ok", Json.Bool sampled.I.ok);
          ] );
    ]

(* Real-runtime section: scripted component counters plus one live
   loopback-TCP cluster under nemesis loss+latency.

   The component script is fully deterministic — a fixed push sequence
   against a bounded mailbox, a fixed crafted-frame sequence against a TCP
   endpoint's dedup and corruption rejection — so the gate pins those
   counters exactly. The cluster run's safety verdicts (zero monitor
   violations, committed-prefix agreement, full workload committed) are
   code properties gated from the current run; its commit latencies are
   wall-clock and report-only. *)
module Runtime_wire = struct
  type msg = string

  let encode s = s

  let decode s = s
end

module Runtime_tcp = Qs_runtime.Tcp.Make (Runtime_wire)

let runtime_component_counters () =
  let mb = Qs_runtime.Mailbox.create ~capacity:3 in
  for i = 1 to 8 do
    ignore (Qs_runtime.Mailbox.push mb i : bool)
  done;
  let mailbox_shed = Qs_runtime.Mailbox.shed mb in
  (* One endpoint, one raw forger socket: a fixed frame sequence with two
     duplicate sequence numbers and one flipped byte. *)
  let addrs = Qs_runtime.Cluster.loopback_addrs ~n:2 () in
  let fabric = Runtime_tcp.create ~addrs () in
  Runtime_tcp.start fabric ~me:0;
  Runtime_tcp.set_handler fabric 0 (fun ~src:_ _ -> ());
  let peer = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect peer addrs.(0);
  let frame ?(kind = Qs_runtime.Frame.Data) ~seq payload =
    { Qs_runtime.Frame.kind; src = 1; incarnation = 7; seq; payload }
  in
  Qs_runtime.Frame.write peer (frame ~kind:Qs_runtime.Frame.Hello ~seq:0 "");
  List.iter
    (fun (seq, payload) -> Qs_runtime.Frame.write peer (frame ~seq payload))
    [ (1, "a"); (2, "b"); (2, "b"); (1, "a"); (3, "c") ];
  let corrupt =
    let good = Qs_runtime.Frame.encode (frame ~seq:4 "dddd") in
    let b = Bytes.of_string good in
    Bytes.set b
      (Bytes.length b - 1)
      (Char.chr (Char.code (Bytes.get b (Bytes.length b - 1)) lxor 0x55));
    Bytes.to_string b
  in
  ignore (Unix.write peer (Bytes.of_string corrupt) 0 (String.length corrupt) : int);
  let rec wait tries pred =
    if pred () || tries = 0 then ()
    else begin
      Thread.delay 0.005;
      wait (tries - 1) pred
    end
  in
  wait 400 (fun () ->
      let s = Runtime_tcp.stats fabric ~me:0 in
      s.Qs_runtime.Tcp.dup_dropped = 2 && s.Qs_runtime.Tcp.corrupt_rejected = 1);
  (* Reconnect: bring up the real peer, let its link connect, kill every
     socket from the outside, then force traffic across the healed link. *)
  (* The forged frames above already delivered 3 messages; wait for the
     4th so the kill strikes an actually-established connection. *)
  Runtime_tcp.start fabric ~me:1;
  Runtime_tcp.send fabric ~src:1 ~dst:0 "warm";
  wait 400 (fun () -> (Runtime_tcp.stats fabric ~me:0).Qs_runtime.Tcp.delivered >= 4);
  Runtime_tcp.kill_links fabric ~me:1;
  Runtime_tcp.send fabric ~src:1 ~dst:0 "after-kill";
  wait 400 (fun () -> (Runtime_tcp.stats fabric ~me:1).Qs_runtime.Tcp.reconnects >= 1);
  let s0 = Runtime_tcp.stats fabric ~me:0 in
  let s1 = Runtime_tcp.stats fabric ~me:1 in
  (try Unix.close peer with Unix.Unix_error _ -> ());
  Runtime_tcp.stop fabric ~me:0;
  Runtime_tcp.stop fabric ~me:1;
  ( mailbox_shed,
    s0.Qs_runtime.Tcp.dup_dropped,
    s0.Qs_runtime.Tcp.corrupt_rejected,
    s1.Qs_runtime.Tcp.reconnects >= 1 )

let runtime_section ~quick () =
  let module Json = Qs_obs.Json in
  let module Cluster = Qs_runtime.Cluster in
  let module Fault = Qs_faults.Fault in
  let ms = Qs_sim.Stime.of_ms in
  let mailbox_shed, dedup_dropped, corrupt_rejected, reconnected =
    runtime_component_counters ()
  in
  let requests = if quick then 3 else 5 in
  let schedule =
    [
      Fault.at ~start:(ms 0) ~stop:(ms 8_000) (Fault.Omit { src = 3; dst = 0 });
      Fault.at ~start:(ms 0) ~stop:(ms 8_000)
        (Fault.Delay { src = 3; dst = 1; by = ms 20 });
    ]
  in
  let report = Cluster.run ~seed:42L ~requests ~schedule ~n:4 ~f:1 () in
  let latencies = List.sort compare report.Cluster.commit_latency_ns in
  let percentile p =
    match latencies with
    | [] -> Json.Null
    | l ->
      let k = min (List.length l - 1) (p * List.length l / 100) in
      Json.Int (List.nth l k)
  in
  Json.Obj
    [
      ( "component",
        Json.Obj
          [
            ("mailbox_shed", Json.Int mailbox_shed);
            ("dedup_dropped", Json.Int dedup_dropped);
            ("corrupt_rejected", Json.Int corrupt_rejected);
            ("reconnected", Json.Bool reconnected);
          ] );
      ( "cluster",
        Json.Obj
          [
            ("n", Json.Int report.Cluster.n);
            ("f", Json.Int report.Cluster.f);
            ("requests", Json.Int report.Cluster.requests_submitted);
            ("committed", Json.Int report.Cluster.committed);
            ("prefix_agreement", Json.Bool report.Cluster.prefix_agreement);
            ("violations", Json.Int (List.length report.Cluster.violations));
            ("monitor_checks", Json.Int report.Cluster.monitor_checks);
            ("nemesis_unsupported", Json.Int report.Cluster.nemesis_unsupported);
            ("commit_latency_ns_p50", percentile 50);
            ("commit_latency_ns_max", percentile 100);
          ] );
    ]

(* The E17 multicore-exploration sweep: domain-sharded fuzzing throughput
   at 1/2/4/8 workers plus the exhaustive/symmetry agreement bits. The
   determinism booleans and visited-state pins are code properties the
   gate enforces; states/s and speedup are the runner's and stay
   report-only. *)
let explore_sweep ~quick () = Qs_harness.E_explore.measure ~quick ()

let explore_json (points, check) =
  let module Json = Qs_obs.Json in
  let module E = Qs_harness.E_explore in
  Json.Obj
    [
      ( "points",
        Json.List
          (List.map
             (fun (p : E.point) ->
               Json.Obj
                 [
                   ("jobs", Json.Int p.jobs);
                   ("iters", Json.Int p.iters);
                   ("visited", Json.Int p.visited);
                   ("elapsed_s", Json.Float p.elapsed_s);
                   ("states_per_sec", Json.Float p.states_per_sec);
                   ("speedup", Json.Float p.speedup);
                   ("identical_report", Json.Bool p.identical_report);
                   ("same_states", Json.Bool p.same_states);
                 ])
             points) );
      ( "exhaustive",
        Json.Obj
          [
            ("seq_visited", Json.Int check.E.seq_visited);
            ("par_visited", Json.Int check.E.par_visited);
            ("sets_agree", Json.Bool check.E.sets_agree);
            ("sym_visited", Json.Int check.E.sym_visited);
            ("sym_collapses", Json.Bool check.E.sym_collapses);
          ] );
    ]

let scaling_json points =
  let module Json = Qs_obs.Json in
  Json.List
    (List.map
       (fun (p : Qs_harness.E_scale.point) ->
         Json.Obj
           [
             ("n", Json.Int p.n);
             ("f", Json.Int p.f);
             ("merge_ops_per_sec", Json.Float p.merge_ops_per_sec);
             ("select_ops_per_sec", Json.Float p.select_ops_per_sec);
             ("full_push_bytes", Json.Int p.full_push_bytes);
             ("delta_sync_bytes", Json.Int p.delta_sync_bytes);
             ("delta_idle_bytes", Json.Int p.delta_idle_bytes);
             ("idle_alloc_per_packet", Json.Float p.idle_alloc_per_packet);
             ("lex_agrees", Json.Bool p.lex_agrees);
             ("mis_agrees", Json.Bool p.mis_agrees);
             ("peer_converged", Json.Bool p.peer_converged);
           ])
       points)

(* A BENCH_*.json summary: per-benchmark ns/run, the experiment verdict
   tally, the commission-fault conviction counters, the E15 scaling sweep,
   and the metrics the protocol layers recorded while the tables were
   regenerated. One file per run; diff it across commits to track the perf
   trajectory. *)
let write_json_summary ~path ~quick ~experiments_ok ~commission ~scaling
    ~churn ~explore ~policy ~runtime ~bench_rows =
  let module Json = Qs_obs.Json in
  let result_json group (name, ns) =
    Json.Obj
      [
        ("group", Json.String group);
        ("name", Json.String name);
        ("ns_per_run", if Float.is_nan ns then Json.Null else Json.Float ns);
      ]
  in
  let results =
    List.concat_map
      (fun (group, rows) -> List.map (result_json group) rows)
      bench_rows
  in
  let commission_json =
    List.map
      (fun (stack, proofs, forgeries, violations) ->
        Json.Obj
          [
            ("stack", Json.String stack);
            ("proofs", Json.Int proofs);
            ("forgeries", Json.Int forgeries);
            ("violations", Json.Int violations);
          ])
      commission
  in
  let doc =
    Json.Obj
      [
        ("schema", Json.String "qsel-bench/1");
        ("quick", Json.Bool quick);
        ( "experiments_ok",
          match experiments_ok with None -> Json.Null | Some ok -> Json.Bool ok );
        ("commission", Json.List commission_json);
        ("scaling", scaling_json scaling);
        ("churn", churn_json churn);
        ("explore", explore_json explore);
        ("policy", policy_json policy);
        ("runtime", runtime);
        ("results", Json.List results);
        ("metrics", Qs_obs.Metrics.to_json (Qs_obs.Metrics.snapshot ()));
      ]
  in
  let oc = open_out path in
  output_string oc (Json.render_pretty doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" path

let () =
  let args = Array.to_list Sys.argv in
  let flag f = List.mem f args in
  let quick = flag "--quick" in
  let tables_only = flag "--tables" in
  let micro_only = flag "--micro" in
  let json_path =
    List.find_map
      (fun a ->
        if a = "--json" then Some "BENCH_qsel.json"
        else if String.length a > 7 && String.sub a 0 7 = "--json=" then
          Some (String.sub a 7 (String.length a - 7))
        else None)
      args
  in
  (* The commission smoke runs before the reset: Chaos.execute resets the
     default metrics registry itself, so running it later would clobber the
     counters the experiments record for the JSON snapshot. *)
  let commission =
    match json_path with None -> [] | Some _ -> commission_counters ~quick ()
  in
  let scaling =
    match json_path with None -> [] | Some _ -> scaling_points ~quick ()
  in
  let churn =
    match json_path with None -> [] | Some _ -> churn_points ~quick ()
  in
  let explore =
    match json_path with
    | None ->
      ( [],
        {
          Qs_harness.E_explore.seq_visited = 0;
          par_visited = 0;
          sets_agree = true;
          sym_visited = 0;
          sym_collapses = true;
        } )
    | Some _ -> explore_sweep ~quick ()
  in
  let policy =
    match json_path with
    | None -> ([], [], Qs_core.Quorum_intersection.check ~n:1 ~f:0 [])
    | Some _ -> policy_sweep ()
  in
  let runtime =
    match json_path with
    | None -> Qs_obs.Json.Null
    | Some _ -> runtime_section ~quick ()
  in
  Qs_obs.Metrics.reset ();
  let experiments_ok =
    if micro_only then None else Some (Experiments.run_and_print_all ~quick ())
  in
  let bench_rows = if tables_only then [] else run_benchmarks ~quick () in
  (match json_path with
   | None -> ()
   | Some path ->
     write_json_summary ~path ~quick ~experiments_ok ~commission ~scaling
       ~churn ~explore ~policy ~runtime ~bench_rows);
  if experiments_ok = Some false then exit 1
