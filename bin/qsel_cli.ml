(* Command-line front end: run the paper's experiments, or poke at the
   building blocks (Theorem-4 games, follower-selection attacks). *)

open Cmdliner
module Metrics = Qs_obs.Metrics

(* Every subcommand accepts [--metrics[=text|json]]: reset the default
   registry before the workload, run it, then print a deterministic snapshot
   of everything the protocol layers recorded. *)

let metrics_arg =
  let fmt = Arg.enum [ ("text", `Text); ("json", `Json) ] in
  Arg.(
    value
    & opt ~vopt:(Some `Text) (some fmt) None
    & info [ "metrics" ] ~docv:"FMT"
        ~doc:
          "Print a metrics snapshot (counters, gauges, histograms) after the \
           command. $(docv) is $(b,text) (default) or $(b,json).")

let with_metrics fmt f =
  Metrics.reset ();
  let result = f () in
  (match fmt with
   | None -> ()
   | Some `Text ->
     print_endline "== metrics ==";
     print_endline (Metrics.render_text (Metrics.snapshot ()))
   | Some `Json -> print_endline (Metrics.render_json (Metrics.snapshot ())));
  result

let experiment_of_id id =
  match String.lowercase_ascii id with
  | "e1" -> Some (fun () -> Qs_harness.Experiments.e1 ())
  | "e2" -> Some (fun () -> Qs_harness.Experiments.e2 ())
  | "e3" -> Some (fun () -> Qs_harness.Experiments.e3 ())
  | "e4" -> Some (fun () -> Qs_harness.Experiments.e4 ())
  | "e5" -> Some (fun () -> Qs_harness.Experiments.e5 ())
  | "e6" -> Some (fun () -> Qs_harness.Experiments.e6 ())
  | "e7" -> Some (fun () -> Qs_harness.Experiments.e7 ())
  | "e8" -> Some (fun () -> Qs_harness.Experiments.e8 ())
  | "e9" -> Some (fun () -> Qs_harness.Experiments.e9 ())
  | "e10" -> Some (fun () -> Qs_harness.Experiments.e10 ())
  | "e11" -> Some (fun () -> Qs_harness.Experiments.e11 ())
  | "e12" -> Some (fun () -> Qs_harness.Experiments.e12 ())
  | "e14" -> Some (fun () -> Qs_harness.Experiments.e14 ())
  | "e18" -> Some (fun () -> Qs_harness.Experiments.e18 ())
  | _ -> None

let experiment_cmd =
  let id =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ID"
          ~doc:
            "Experiment id: e1-e12, e14, e15 (scaling), e16 (churn), e17 \
             (multicore exploration), e18 (selection policies under region \
             loss), or 'all'.")
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Trim parameter sweeps (used by CI).")
  in
  let sizes =
    Arg.(
      value & opt_all int []
      & info [ "size" ] ~docv:"N"
          ~doc:
            "Cluster size for the e15 scaling sweep (default 64, 256, 1024) \
             or the e16 churn sweep (default 64, 256); repeatable. Ignored \
             by other experiments.")
  in
  let jobs =
    Arg.(
      value & opt_all int []
      & info [ "jobs" ] ~docv:"J"
          ~doc:
            "Domain count for the e17 exploration sweep (default 1, 2, 4, 8); \
             repeatable. Ignored by other experiments.")
  in
  let run id quick sizes jobs metrics =
    with_metrics metrics (fun () ->
        if String.lowercase_ascii id = "all" then
          if Qs_harness.Experiments.run_and_print_all ~quick () then `Ok ()
          else `Error (false, "some experiment verdicts failed")
        else if String.lowercase_ascii id = "e17" then begin
          let jobs = match jobs with [] -> None | js -> Some js in
          let o = Qs_harness.Experiments.e17 ~quick ?jobs () in
          Qs_harness.Experiments.print o;
          if Qs_harness.Verdict.all_ok o.Qs_harness.Experiments.verdicts then `Ok ()
          else `Error (false, "e17 verdicts failed")
        end
        else if String.lowercase_ascii id = "e15" || String.lowercase_ascii id = "e16"
        then begin
          let id = String.lowercase_ascii id in
          let ns = match sizes with [] -> None | ns -> Some ns in
          let o =
            if id = "e15" then Qs_harness.Experiments.e15 ~quick ?ns ()
            else Qs_harness.Experiments.e16 ~quick ?ns ()
          in
          Qs_harness.Experiments.print o;
          if Qs_harness.Verdict.all_ok o.Qs_harness.Experiments.verdicts then `Ok ()
          else `Error (false, id ^ " verdicts failed")
        end
        else
          match experiment_of_id id with
          | Some f ->
            Qs_harness.Experiments.print (f ());
            `Ok ()
          | None -> `Error (true, Printf.sprintf "unknown experiment %S" id))
  in
  let doc = "Regenerate a paper table/figure (see DESIGN.md section 4)." in
  Cmd.v
    (Cmd.info "experiment" ~doc)
    Term.(ret (const run $ id $ quick $ sizes $ jobs $ metrics_arg))

let attack_cmd =
  let f = Arg.(value & opt int 2 & info [ "f" ] ~doc:"Number of faulty processes.") in
  let n = Arg.(value & opt (some int) None & info [ "n" ] ~doc:"Processes (default 2f+2).") in
  let run f n metrics =
    with_metrics metrics (fun () ->
        let n = Option.value n ~default:((2 * f) + 2) in
        let setup = Qs_adversary.Theorem4.default_setup ~n ~f in
        let game = Qs_adversary.Theorem4.exhaustive setup in
        Printf.printf "Theorem-4 adversary, n=%d f=%d, target C(f+2,2)=%d quorums\n\n" n f
          (Qs_adversary.Theorem4.target ~f);
        List.iteri
          (fun i ((suspector, suspect), quorum) ->
            Printf.printf "%2d. %s suspects %s -> quorum %s\n" (i + 1)
              (Qs_core.Pid.to_string suspector)
              (Qs_core.Pid.to_string suspect)
              (Qs_core.Pid.set_to_string quorum))
          (List.combine game.Qs_adversary.Theorem4.injections game.Qs_adversary.Theorem4.quorums);
        let live = Qs_adversary.Theorem4.replay setup game in
        Printf.printf "\nLive cluster issued %d quorums (+1 initial default = %d).\n" live (live + 1))
  in
  let doc = "Play the Theorem-4 lower-bound adversary against Algorithm 1." in
  Cmd.v (Cmd.info "attack" ~doc) Term.(const run $ f $ n $ metrics_arg)

let follower_cmd =
  let f = Arg.(value & opt int 2 & info [ "f" ] ~doc:"Number of faulty processes.") in
  let run f metrics =
    with_metrics metrics (fun () ->
        let n = (3 * f) + 1 in
        let r = Qs_harness.Leader_attack.run ~n ~f in
        Printf.printf
          "Follower Selection under leader attack: n=%d f=%d\n\
          \  suspicions injected : %d\n\
          \  quorums issued      : %d (bound 6f+2 = %d)\n\
          \  max per epoch       : %d (bound 3f+1 = %d)\n\
          \  epochs entered      : %d\n"
          n f r.Qs_harness.Leader_attack.injections r.Qs_harness.Leader_attack.total_issued
          ((6 * f) + 2)
          r.Qs_harness.Leader_attack.max_per_epoch
          ((3 * f) + 1)
          r.Qs_harness.Leader_attack.epochs)
  in
  let doc = "Attack Follower Selection (Algorithm 2) and report the bounds." in
  Cmd.v (Cmd.info "follower-attack" ~doc) Term.(const run $ f $ metrics_arg)

(* ------------------------------------------------------------------ *)
(* bounds: the Theorem 3/4 quorum-count bounds, with live counters *)

let bounds_cmd =
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Trim the f sweep (used by CI).")
  in
  let run quick metrics =
    with_metrics metrics (fun () ->
        let fs = if quick then [ 1; 2 ] else [ 1; 2; 3; 4 ] in
        let upper = Qs_harness.Experiments.e2 ~fs () in
        let lower = Qs_harness.Experiments.e3 ~fs () in
        Qs_harness.Experiments.print upper;
        print_newline ();
        Qs_harness.Experiments.print lower;
        let ok o = Qs_harness.Verdict.all_ok o.Qs_harness.Experiments.verdicts in
        if ok upper && ok lower then `Ok ()
        else `Error (false, "bound verdicts failed"))
  in
  let doc =
    "Check the per-epoch quorum-count bounds (Theorems 3 and 4) against the \
     adversary; with --metrics the snapshot carries the live per-epoch \
     counters next to the proven bounds."
  in
  Cmd.v (Cmd.info "bounds" ~doc) Term.(ret (const run $ quick $ metrics_arg))

(* ------------------------------------------------------------------ *)
(* simulate: run one protocol integration under a fault scenario *)

let simulate_cmd =
  let protocol =
    Arg.(
      value
      & opt
          (enum
             [
               ("xpaxos-enum", `Xpaxos_enum);
               ("xpaxos-qs", `Xpaxos_qs);
               ("pbft-full", `Pbft_full);
               ("pbft-selected", `Pbft_selected);
               ("minbft-full", `Minbft_full);
               ("minbft-selected", `Minbft_selected);
               ("chain", `Chain);
               ("star", `Star);
             ])
          `Xpaxos_qs
      & info [ "protocol" ] ~doc:"Which integration to run.")
  in
  let f = Arg.(value & opt int 2 & info [ "f" ] ~doc:"Failure budget.") in
  let mute =
    Arg.(value & opt_all int [] & info [ "mute" ] ~doc:"Mute this replica (repeatable, 0-based).")
  in
  let requests = Arg.(value & opt int 5 & info [ "requests" ] ~doc:"Client requests to submit.") in
  let until = Arg.(value & opt int 10_000 & info [ "until" ] ~doc:"Simulated milliseconds to run.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Simulation seed.") in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Log protocol events to stderr.")
  in
  let run protocol f mute requests until seed verbose metrics =
    with_metrics metrics @@ fun () ->
    if verbose then Qs_stdx.Debug.enable ();
    let ms = Qs_sim.Stime.of_ms in
    let seed64 = Int64.of_int seed in
    let strategy = Qs_fd.Timeout.Exponential { factor = 2.0; max = ms 2000 } in
    let report name committed total messages extra =
      Printf.printf "%s: committed %d/%d requests, %d messages%s\n" name committed total
        messages extra
    in
    let ops = List.init requests (fun i -> Printf.sprintf "op%d" i) in
    match protocol with
    | `Xpaxos_enum | `Xpaxos_qs ->
      let mode =
        if protocol = `Xpaxos_enum then Qs_xpaxos.Replica.Enumeration
        else Qs_xpaxos.Replica.Quorum_selection
      in
      let n = (2 * f) + 1 in
      let c =
        Qs_xpaxos.Xcluster.create ~seed:seed64
          { Qs_xpaxos.Replica.n; f; mode; initial_timeout = ms 25; timeout_strategy = strategy }
      in
      List.iter (fun p -> Qs_xpaxos.Xcluster.set_fault c p Qs_xpaxos.Replica.Mute) mute;
      let rs = List.map (Qs_xpaxos.Xcluster.submit c ~resubmit_every:(ms 100)) ops in
      Qs_xpaxos.Xcluster.run ~until:(ms until) c;
      report "xpaxos"
        (List.length (List.filter (Qs_xpaxos.Xcluster.is_globally_committed c) rs))
        requests
        (Qs_xpaxos.Xcluster.message_count c)
        (Printf.sprintf ", max view %d, final group %s" (Qs_xpaxos.Xcluster.max_view c)
           (Qs_core.Pid.set_to_string (Qs_xpaxos.Replica.group (Qs_xpaxos.Xcluster.replica c (n - 1)))))
    | `Pbft_full | `Pbft_selected ->
      let participation =
        if protocol = `Pbft_full then Qs_pbft.Preplica.Full else Qs_pbft.Preplica.Selected
      in
      let n = (3 * f) + 1 in
      let c =
        Qs_pbft.Pcluster.create ~seed:seed64
          {
            Qs_pbft.Preplica.n;
            f;
            participation;
            initial_timeout = ms 25;
            timeout_strategy = strategy;
          }
      in
      List.iter (fun p -> Qs_pbft.Pcluster.set_fault c p Qs_pbft.Preplica.Mute) mute;
      let rs = List.map (Qs_pbft.Pcluster.submit c ~resubmit_every:(ms 100)) ops in
      Qs_pbft.Pcluster.run ~until:(ms until) c;
      report "pbft"
        (List.length (List.filter (Qs_pbft.Pcluster.is_globally_committed c) rs))
        requests
        (Qs_pbft.Pcluster.message_count c)
        (Printf.sprintf ", active %s"
           (Qs_core.Pid.set_to_string
              (Qs_pbft.Preplica.participants (Qs_pbft.Pcluster.replica c (n - 1)))))
    | `Minbft_full | `Minbft_selected ->
      let participation =
        if protocol = `Minbft_full then Qs_minbft.Mreplica.Full else Qs_minbft.Mreplica.Selected
      in
      let n = (2 * f) + 1 in
      let c =
        Qs_minbft.Mcluster.create ~seed:seed64
          {
            Qs_minbft.Mreplica.n;
            f;
            participation;
            initial_timeout = ms 25;
            timeout_strategy = strategy;
          }
      in
      List.iter (fun p -> Qs_minbft.Mcluster.set_fault c p Qs_minbft.Mreplica.Mute) mute;
      let rs = List.map (Qs_minbft.Mcluster.submit c ~resubmit_every:(ms 100)) ops in
      Qs_minbft.Mcluster.run ~until:(ms until) c;
      report "minbft"
        (List.length (List.filter (Qs_minbft.Mcluster.is_committed c) rs))
        requests
        (Qs_minbft.Mcluster.message_count c)
        (Printf.sprintf ", active %s"
           (Qs_core.Pid.set_to_string
              (Qs_minbft.Mreplica.active (Qs_minbft.Mcluster.replica c (n - 1)))))
    | `Chain ->
      let n = (3 * f) + 1 in
      let c =
        Qs_bchain.Chain_cluster.create ~seed:seed64
          { Qs_bchain.Chain_node.n; f; initial_timeout = ms 25; timeout_strategy = strategy }
      in
      List.iter (fun p -> Qs_bchain.Chain_cluster.set_fault c p Qs_bchain.Chain_node.Mute) mute;
      let rs = List.map (Qs_bchain.Chain_cluster.submit c ~resubmit_every:(ms 100)) ops in
      Qs_bchain.Chain_cluster.run ~until:(ms until) c;
      report "chain"
        (List.length (List.filter (Qs_bchain.Chain_cluster.is_committed c) rs))
        requests
        (Qs_bchain.Chain_cluster.message_count c)
        (Printf.sprintf ", chain %s"
           (Qs_core.Pid.set_to_string (Qs_bchain.Chain_cluster.current_chain c)))
    | `Star ->
      let n = (3 * f) + 1 in
      let c =
        Qs_star.Star_cluster.create ~seed:seed64
          { Qs_star.Star_node.n; f; initial_timeout = ms 25; timeout_strategy = strategy }
      in
      List.iter (fun p -> Qs_star.Star_cluster.set_fault c p Qs_star.Star_node.Mute) mute;
      let rs = List.map (Qs_star.Star_cluster.submit c ~resubmit_every:(ms 100)) ops in
      Qs_star.Star_cluster.run ~until:(ms until) c;
      report "star"
        (List.length (List.filter (Qs_star.Star_cluster.is_committed c) rs))
        requests
        (Qs_star.Star_cluster.message_count c)
        (Printf.sprintf ", leader %s quorum %s"
           (Qs_core.Pid.to_string (Qs_star.Star_node.leader (Qs_star.Star_cluster.node c (n - 1))))
           (Qs_core.Pid.set_to_string
              (Qs_star.Star_node.quorum (Qs_star.Star_cluster.node c (n - 1)))))
  in
  let doc = "Run one protocol integration under a fault scenario in the simulator." in
  Cmd.v (Cmd.info "simulate" ~doc)
    Term.(const run $ protocol $ f $ mute $ requests $ until $ seed $ verbose $ metrics_arg)

(* ------------------------------------------------------------------ *)
(* chaos: seeded fault-injection campaigns with the online monitor *)

let chaos_cmd =
  let module Chaos = Qs_harness.Chaos in
  let module Campaign = Qs_faults.Campaign in
  let protocol =
    Arg.(
      value
      & opt string "all"
      & info [ "protocol" ] ~docv:"STACK"
          ~doc:
            "Stack to attack: $(b,xpaxos-enum), $(b,xpaxos-qs), $(b,pbft), \
             $(b,minbft), $(b,chain), $(b,star), or $(b,all).")
  in
  let seed =
    Arg.(
      value & opt int 4242
      & info [ "seed" ] ~doc:"Campaign seed. Same seed, same schedules, same verdicts.")
  in
  let runs =
    Arg.(value & opt int 20 & info [ "runs" ] ~doc:"Schedules to generate per stack.")
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"Few runs over a short horizon (used by CI smoke jobs).")
  in
  let out_of_model =
    Arg.(
      value & flag
      & info [ "out-of-model" ]
          ~doc:
            "Generate schedules exceeding the failure budget (> f blamed \
             processes); only core SMR safety is enforced, liveness is not.")
  in
  let amnesia =
    Arg.(
      value & flag
      & info [ "amnesia" ]
          ~doc:
            "Make half the generated crashes amnesia crashes: volatile state \
             is wiped at the recovery point and the process restarts from its \
             durable snapshot, rejoining via CRDT state transfer. The monitor \
             additionally enforces the recovery invariants.")
  in
  let byz =
    Arg.(
      value & flag
      & info [ "byz" ]
          ~doc:
            "Arm the commission-fault plane: blamed processes may \
             equivocate their suspicion rows, slander peers with forged \
             frames, tamper with link payloads or replay stale ones. \
             Signed-evidence stores convict provable misbehavers and \
             permanently exclude them from quorums; the monitor checks \
             that no correct process is ever proof-excluded and that \
             proven equivocators leave the quorums for good.")
  in
  let churn =
    Arg.(
      value & flag
      & info [ "churn" ]
          ~doc:
            "Arm the membership plane: the campaign runs one universe size \
             up with a spare process that may join mid-run (bootstrapping \
             dormant through the rejoin plane), faulty members may leave \
             after a graceful anti-entropy handoff, and evidence \
             convictions propose the config change permanently ejecting \
             the culprit. Every change bumps the membership epoch on all \
             member selectors and the monitor enforces the cross-epoch \
             invariants (stale-config, joiner-quorum, ejected-quorum).")
  in
  let correlated =
    Arg.(
      value & flag
      & info [ "correlated" ]
          ~doc:
            "Arm correlated whole-fault-domain failures over the stack's \
             canonical region topology: region partitions, rack losses and \
             gray (slow) regions, each blaming the label's entire member \
             set and emitted only while the schedule's blame set fits the \
             failure budget. The monitor's quorum-intersection invariant \
             applies as always.")
  in
  let policy =
    Arg.(
      value
      & opt string "lex"
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:
            "Selection policy installed on every selector: $(b,lex) (the \
             paper's rule, default), $(b,lottery) or $(b,lottery:SEED) (a \
             deterministic seeded draw rotating quorum composition per \
             epoch), $(b,diverse) or $(b,diverse:CAP) (per-region caps over \
             the stack's canonical topology, bounding any single region's \
             quorum seats), or a full \
             $(b,diverse:CAP:LABEL,LABEL,...) spec.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.") in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs" ] ~docv:"J"
          ~doc:
            "Execute the campaign's runs on J domains (sequential fallback \
             on OCaml 4.14). Reports are byte-identical for every J: \
             schedules are pre-drawn in index order and the lowest failing \
             run wins regardless of which worker finishes first.")
  in
  let run protocol seed runs quick out_of_model amnesia byz churn correlated policy json
      jobs metrics =
    with_metrics metrics @@ fun () ->
    let stacks =
      if String.lowercase_ascii protocol = "all" then Ok Chaos.all
      else
        match Chaos.of_name protocol with
        | Some st -> Ok [ st ]
        | None -> Error (Printf.sprintf "unknown protocol %S" protocol)
    in
    match stacks with
    | Error msg -> `Error (true, msg)
    | Ok stacks ->
      let runs = if quick then min runs 4 else runs in
      (* [diverse] caps are resolved against each stack's own canonical
         topology, so one flag value serves every (n, f). *)
      let policy_for params =
        let module P = Qs_core.Selection_policy in
        let q = params.Chaos.n - params.Chaos.f in
        let validated p =
          try
            P.validate p ~n:params.Chaos.n ~q;
            Ok p
          with Invalid_argument m -> Error m
        in
        (* Omitting the cap picks the smallest one the stack's quorum size
           can satisfy over its canonical topology. *)
        let default_cap topo =
          let k = List.length (Qs_core.Topology.labels topo) in
          (q + k - 1) / k
        in
        match String.split_on_char ':' (String.trim policy) with
        | [ "lex" ] -> Ok P.Lex_first
        | [ "lottery" ] -> Ok (P.Seeded_lottery { seed = Int64.of_int seed })
        | [ "lottery"; s ] -> (
          match Int64.of_string_opt s with
          | Some seed -> Ok (P.Seeded_lottery { seed })
          | None -> Error (Printf.sprintf "bad --policy lottery seed %S" s))
        | [ "diverse" ] ->
          let topology = Chaos.topology_for params in
          validated (P.Diversity_capped { topology; cap = default_cap topology })
        | [ "diverse"; c ] -> (
          match int_of_string_opt c with
          | Some cap when cap > 0 ->
            validated (P.Diversity_capped { topology = Chaos.topology_for params; cap })
          | _ -> Error (Printf.sprintf "bad --policy diverse cap %S" c))
        | _ -> (
          match P.of_string (String.trim policy) with
          | Some p -> validated p
          | None -> Error (Printf.sprintf "unknown --policy %S" policy))
      in
      let params st =
        let p = if churn then Chaos.churn_params st else Chaos.default_params st in
        let p =
          if quick then { p with Chaos.horizon = Qs_sim.Stime.of_ms 4_000 } else p
        in
        Result.map (fun policy -> { p with Chaos.policy }) (policy_for p)
      in
      let resolved = List.map (fun st -> (st, params st)) stacks in
      (match List.find_map (fun (_, p) -> Result.fold ~ok:(fun _ -> None) ~error:Option.some p) resolved with
      | Some msg -> `Error (true, msg)
      | None ->
      let reports =
        List.map
          (fun (st, params) ->
            ( st,
              Chaos.campaign st ~params:(Result.get_ok params) ~out_of_model ~amnesia
                ~byz ~churn ~correlated ~runs ~jobs ~seed () ))
          resolved
      in
      if json then
        print_endline
          (Qs_obs.Json.render_pretty
             (Qs_obs.Json.Obj
                [
                  ("seed", Qs_obs.Json.Int seed);
                  ( "campaigns",
                    Qs_obs.Json.List
                      (List.map
                         (fun (st, r) ->
                           Qs_obs.Json.Obj
                             (("stack", Qs_obs.Json.String (Chaos.name st))
                             ::
                             (match Campaign.to_json r with
                              | Qs_obs.Json.Obj fields -> fields
                              | other -> [ ("report", other) ])))
                         reports) );
                ]))
      else
        List.iter
          (fun (st, r) ->
            Printf.printf "=== %s ===\n%s\n" (Chaos.name st) (Campaign.render r))
          reports;
      if List.for_all (fun (_, r) -> Campaign.ok r) reports then `Ok ()
      else `Error (false, "chaos campaign found violations"))
  in
  let doc =
    "Run seeded fault-injection campaigns against the protocol stacks, with \
     the online invariant monitor checking safety (prefix consistency, \
     exactly-once, Theorem-3/9 quorum bounds, no-suspicion) during every run \
     and termination afterwards. Failing schedules are shrunk to a minimal \
     reproduction; --seed N replays a campaign exactly."
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(
      ret
        (const run $ protocol $ seed $ runs $ quick $ out_of_model $ amnesia $ byz
        $ churn $ correlated $ policy $ json $ jobs $ metrics_arg))

(* ------------------------------------------------------------------ *)
(* runtime-chaos / serve: the real TCP runtime *)

let runtime_chaos_cmd =
  let module Cluster = Qs_runtime.Cluster in
  let module Fault = Qs_faults.Fault in
  let n_arg =
    Arg.(value & opt int 4 & info [ "n" ] ~doc:"Universe size (replica count).")
  in
  let f_arg = Arg.(value & opt int 1 & info [ "f" ] ~doc:"Failure budget.") in
  let requests =
    Arg.(
      value & opt int 5
      & info [ "requests" ] ~doc:"Sequential client requests to commit.")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ]
          ~doc:
            "Seed for the transport jitter/loss streams and random schedule \
             generation. Frame loss is a seeded per-link fraction, so the \
             counters are reproducible in distribution, not byte-identical.")
  in
  let base_port =
    Arg.(
      value & opt (some int) None
      & info [ "base-port" ] ~docv:"PORT"
          ~doc:
            "First loopback port; replica $(b,i) listens on PORT+i. Default: \
             fresh ephemeral ports.")
  in
  let mode =
    Arg.(
      value
      & opt (enum [ ("enum", `Enum); ("qs", `Qs) ]) `Qs
      & info [ "mode" ] ~docv:"MODE"
          ~doc:
            "Group formation: $(b,qs) (quorum selection, default) or \
             $(b,enum) (view enumeration).")
  in
  let schedule_arg =
    Arg.(
      value & opt string ""
      & info [ "schedule" ] ~docv:"SCHED"
          ~doc:
            "Fault schedule in the DSL's rendered syntax (same format the \
             chaos regression files use), played against the live sockets \
             by the nemesis. Commission and churn kinds are unsupported on \
             the real transport and counted, not silently dropped.")
  in
  let random_faults =
    Arg.(
      value & flag
      & info [ "random-faults" ]
          ~doc:
            "Generate an in-model schedule from --seed instead of \
             --schedule (crashes, omissions, delays over a short horizon).")
  in
  let duration_ms =
    Arg.(
      value & opt int 0
      & info [ "duration-ms" ]
          ~doc:"Keep the cluster running at least this long (0: workload-bound).")
  in
  let request_timeout_ms =
    Arg.(
      value & opt int 4000
      & info [ "request-timeout-ms" ] ~doc:"Per-request commit deadline.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.") in
  let run n f requests seed base_port mode schedule random_faults duration_ms
      request_timeout_ms json metrics =
    with_metrics metrics @@ fun () ->
    if n <= 2 * f then `Error (true, "need n > 2f")
    else
      let schedule =
        if random_faults then
          Fault.gen
            (Qs_stdx.Prng.create (Int64.of_int seed))
            ~n ~f
            ~profile:(Fault.default_profile ~horizon:(Qs_sim.Stime.of_ms 3_000))
            ()
        else
          try Fault.of_string ~n schedule
          with Invalid_argument msg -> raise (Failure msg)
      in
      match
        Cluster.run ~seed:(Int64.of_int seed) ?base_port
          ~mode:
            (match mode with
             | `Enum -> Qs_xpaxos.Replica.Enumeration
             | `Qs -> Qs_xpaxos.Replica.Quorum_selection)
          ~requests ~request_timeout_ms ~duration_ms ~schedule ~n ~f ()
      with
      | exception Failure msg -> `Error (true, msg)
      | report ->
        if json then
          print_endline (Qs_obs.Json.render_pretty (Cluster.report_to_json report))
        else begin
          Printf.printf "schedule: %s\n" (Fault.to_string schedule);
          Printf.printf
            "committed %d/%d requests; prefix agreement: %b; violations: %d \
             (%d checks, %d commits observed, %d recoveries)\n"
            report.Cluster.committed report.Cluster.requests_submitted
            report.Cluster.prefix_agreement
            (List.length report.Cluster.violations)
            report.Cluster.monitor_checks report.Cluster.commits_observed
            report.Cluster.recoveries_completed;
          List.iter
            (fun v ->
              print_endline
                (Qs_obs.Json.render (Qs_faults.Monitor.violation_to_json v)))
            report.Cluster.violations;
          Array.iteri
            (fun i (s : Qs_runtime.Tcp.stats) ->
              Printf.printf
                "  replica %d: sent=%d delivered=%d shed=%d dup=%d corrupt=%d \
                 nemesis_dropped=%d reconnects=%d\n"
                i s.Qs_runtime.Tcp.sent s.Qs_runtime.Tcp.delivered
                s.Qs_runtime.Tcp.shed s.Qs_runtime.Tcp.dup_dropped
                s.Qs_runtime.Tcp.corrupt_rejected s.Qs_runtime.Tcp.nemesis_dropped
                s.Qs_runtime.Tcp.reconnects)
            report.Cluster.stats
        end;
        if
          report.Cluster.violations = []
          && report.Cluster.prefix_agreement
          && report.Cluster.committed = report.Cluster.requests_submitted
        then `Ok ()
        else `Error (false, "runtime campaign failed its verdicts")
  in
  let doc =
    "Run the XPaxos/quorum-selection stack over real loopback TCP — the same \
     protocol cores the simulator drives, behind the runtime's resilient \
     transport (reconnect with backoff, bounded queues, dedup, keepalives) — \
     with a live nemesis playing a fault schedule against the sockets and \
     the online invariant monitor verdicting the run's journal."
  in
  Cmd.v
    (Cmd.info "runtime-chaos" ~doc)
    Term.(
      ret
        (const run $ n_arg $ f_arg $ requests $ seed $ base_port $ mode
       $ schedule_arg $ random_faults $ duration_ms $ request_timeout_ms $ json
       $ metrics_arg))

let serve_cmd =
  let module Cluster = Qs_runtime.Cluster in
  let me_arg =
    Arg.(
      required
      & opt (some int) None
      & info [ "me" ] ~docv:"I" ~doc:"This replica's process id.")
  in
  let peers =
    Arg.(
      required
      & opt (some string) None
      & info [ "peers" ] ~docv:"HOST:PORT,..."
          ~doc:
            "Comma-separated listen addresses of $(b,all) replicas, in pid \
             order (including this one's).")
  in
  let f_arg = Arg.(value & opt int 1 & info [ "f" ] ~doc:"Failure budget.") in
  let mode =
    Arg.(
      value
      & opt (enum [ ("enum", `Enum); ("qs", `Qs) ]) `Qs
      & info [ "mode" ] ~docv:"MODE"
          ~doc:"Group formation: $(b,qs) (default) or $(b,enum).")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Transport jitter seed.")
  in
  let duration_ms =
    Arg.(
      value & opt int 0
      & info [ "duration-ms" ] ~doc:"Exit after this long (0: run until killed).")
  in
  let parse_addr spec =
    match String.rindex_opt spec ':' with
    | None -> Error (Printf.sprintf "bad address %S (want HOST:PORT)" spec)
    | Some i -> (
      let host = String.sub spec 0 i in
      let port = String.sub spec (i + 1) (String.length spec - i - 1) in
      match int_of_string_opt port with
      | None -> Error (Printf.sprintf "bad port in %S" spec)
      | Some port -> (
        match Unix.inet_addr_of_string host with
        | addr -> Ok (Unix.ADDR_INET (addr, port))
        | exception Failure _ -> (
          match Unix.gethostbyname host with
          | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
            Error (Printf.sprintf "cannot resolve %S" host)
          | { Unix.h_addr_list; _ } -> Ok (Unix.ADDR_INET (h_addr_list.(0), port)))))
  in
  let run me peers f mode seed duration_ms metrics =
    with_metrics metrics @@ fun () ->
    let specs = String.split_on_char ',' peers in
    let addrs =
      List.fold_left
        (fun acc spec ->
          match (acc, parse_addr (String.trim spec)) with
          | Error _, _ -> acc
          | Ok _, Error msg -> Error msg
          | Ok l, Ok a -> Ok (a :: l))
        (Ok []) specs
    in
    match addrs with
    | Error msg -> `Error (true, msg)
    | Ok rev ->
      let addrs = Array.of_list (List.rev rev) in
      let n = Array.length addrs in
      if n <= 2 * f then `Error (true, "need n > 2f")
      else if me < 0 || me >= n then `Error (true, "--me out of range")
      else begin
        let fabric = Cluster.T.create ~addrs ~seed:(Int64.of_int seed) () in
        Cluster.T.start fabric ~me;
        let auth = Qs_crypto.Auth.create n in
        let config =
          {
            Qs_xpaxos.Replica.n;
            f;
            mode =
              (match mode with
               | `Enum -> Qs_xpaxos.Replica.Enumeration
               | `Qs -> Qs_xpaxos.Replica.Quorum_selection);
            initial_timeout = Qs_sim.Stime.of_ms 150;
            timeout_strategy =
              Qs_fd.Timeout.Exponential { factor = 2.0; max = Qs_sim.Stime.of_ms 2000 };
          }
        in
        let node =
          Cluster.N.create ~config ~me ~auth ~transport:fabric
            ~store:(Qs_recovery.Store.create ()) ()
        in
        Cluster.N.start_gossip node;
        Printf.printf "replica %d/%d listening; peers: %s\n%!" me n peers;
        let started = Unix.gettimeofday () in
        let deadline =
          if duration_ms > 0 then Some (started +. (float_of_int duration_ms /. 1000.))
          else None
        in
        let rec loop last_report =
          let now = Unix.gettimeofday () in
          if match deadline with Some d -> now >= d | None -> false then ()
          else begin
            Thread.delay 0.2;
            let last_report =
              if now -. last_report >= 5.0 then begin
                let r = Cluster.N.replica node in
                let s = Cluster.T.stats fabric ~me in
                Printf.printf
                  "view=%d executed=%d sent=%d delivered=%d reconnects=%d\n%!"
                  (Qs_xpaxos.Replica.view r)
                  (List.length (Qs_xpaxos.Replica.executed r))
                  s.Qs_runtime.Tcp.sent s.Qs_runtime.Tcp.delivered
                  s.Qs_runtime.Tcp.reconnects;
                now
              end
              else last_report
            in
            loop last_report
          end
        in
        loop started;
        Cluster.T.stop fabric ~me;
        `Ok ()
      end
  in
  let doc =
    "Run one live replica process over real TCP: the same XPaxos/quorum-\
     selection core the simulator drives, served behind the runtime \
     transport. Point $(b,--peers) at all replicas' addresses (pid order) \
     and start one $(b,serve) per pid — on one host or several."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      ret (const run $ me_arg $ peers $ f_arg $ mode $ seed $ duration_ms $ metrics_arg))

(* ------------------------------------------------------------------ *)
(* mc: small-scope model checking / schedule exploration *)

let mc_cmd =
  let module MC = Qs_harness.Modelcheck in
  let module Engine = Qs_mc.Engine in
  let protocol =
    Arg.(
      value
      & opt string "xpaxos"
      & info [ "protocol" ] ~docv:"PROTO"
          ~doc:
            "System to explore: $(b,quorum) (bare Algorithm 1), $(b,follower) \
             (Algorithm 2 with an emulated failure detector), $(b,xpaxos) or \
             $(b,xpaxos-enum) (the full replica stack).")
  in
  let n = Arg.(value & opt int 4 & info [ "n" ] ~doc:"Processes (keep small: 4 or 5).") in
  let f = Arg.(value & opt int 1 & info [ "f" ] ~doc:"Failure budget.") in
  let depth =
    Arg.(
      value & opt int 6
      & info [ "depth" ] ~doc:"Schedule-length bound for the exhaustive exploration.")
  in
  let inject =
    Arg.(
      value & opt_all string []
      & info [ "inject" ] ~docv:"P:S1,S2"
          ~doc:
            "Initial ⟨SUSPECTED⟩ event: process $(i,P) starts out suspecting \
             $(i,S1,S2,...). The form $(b,amnesia:P) instead grants process \
             $(i,P) one amnesia crash, $(b,equivocate:P) one equivocation \
             (two conflicting validly-signed rows to two peers), and \
             $(b,churn:P) one atomic leave-and-rejoin membership change \
             (config-epoch bump on every process, fresh slot for $(i,P)), \
             and $(b,region:M1,M2) one correlated whole-region loss (every \
             listed member goes mute at once, their inbound in-flight \
             messages die), each explored at every point of every schedule \
             (quorum protocol only). Repeatable. Defaults to the \
             protocol's canonical scenario when omitted.")
  in
  let crash =
    Arg.(
      value & opt_all int []
      & info [ "crash" ] ~docv:"P" ~doc:"Crash process $(i,P) from the start. Repeatable.")
  in
  let requests =
    Arg.(
      value & opt int (-1)
      & info [ "requests" ] ~doc:"Client requests submitted up front (xpaxos; default 1).")
  in
  let seeded_bug =
    Arg.(
      value & flag
      & info [ "seeded-bug" ]
          ~doc:
            "Arm the test-only undersized-quorum bug in Algorithm 1, so the \
             checker demonstrably finds and shrinks a real counterexample.")
  in
  let random =
    Arg.(
      value & flag
      & info [ "random" ]
          ~doc:
            "Randomized schedule fuzzing instead of exhaustive exploration \
             (same choice points, seeded walks).")
  in
  let seed = Arg.(value & opt int 4242 & info [ "seed" ] ~doc:"Random-mode walk seed.") in
  let iters = Arg.(value & opt int 200 & info [ "iters" ] ~doc:"Random-mode walk count.") in
  let no_por =
    Arg.(
      value & flag
      & info [ "no-por" ]
          ~doc:"Disable the sleep-set partial-order reduction (for debugging/benchmarks).")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.") in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs" ] ~docv:"J"
          ~doc:
            "Shard the exploration across $(docv) domains (sequential \
             fallback on OCaml 4.14). Random mode is byte-identical across \
             any $(docv); exhaustive mode agrees with the sequential \
             explorer on the visited state set and the violations found. \
             Omitted: the legacy single-domain engine runs.")
  in
  let sym =
    Arg.(
      value & flag
      & info [ "sym" ]
          ~doc:
            "Prune on the symmetry-canonical fingerprint (quorum protocol \
             only; exhaustive mode), collapsing states identical up to a \
             relabeling of the processes no fault or injection \
             distinguishes.")
  in
  let parse_injections specs =
    List.fold_left
      (fun acc s ->
        match acc with
        | Error _ -> acc
        | Ok (inj, amn, eqv, chn, rgn) -> (
          match String.index_opt s ':' with
          | None ->
            Error
              (Printf.sprintf
                 "bad --inject %S (want P:S1,S2, amnesia:P, equivocate:P, churn:P or \
                  region:M1,M2)"
                 s)
          | Some i -> (
            let p = String.sub s 0 i
            and rest = String.sub s (i + 1) (String.length s - i - 1) in
            match String.lowercase_ascii p with
            | "amnesia" -> (
              match int_of_string_opt rest with
              | Some p -> Ok (inj, p :: amn, eqv, chn, rgn)
              | None -> Error (Printf.sprintf "bad --inject %S (want amnesia:P)" s))
            | "equivocate" -> (
              match int_of_string_opt rest with
              | Some p -> Ok (inj, amn, p :: eqv, chn, rgn)
              | None -> Error (Printf.sprintf "bad --inject %S (want equivocate:P)" s))
            | "churn" -> (
              match int_of_string_opt rest with
              | Some p -> Ok (inj, amn, eqv, p :: chn, rgn)
              | None -> Error (Printf.sprintf "bad --inject %S (want churn:P)" s))
            | "region" -> (
              match List.map int_of_string_opt (String.split_on_char ',' rest) with
              | members when members <> [] && List.for_all Option.is_some members ->
                Ok (inj, amn, eqv, chn, List.map Option.get members :: rgn)
              | _ -> Error (Printf.sprintf "bad --inject %S (want region:M1,M2)" s))
            | _ -> (
              match
                (int_of_string_opt p, List.map int_of_string_opt (String.split_on_char ',' rest))
              with
              | Some p, suspects when suspects <> [] && List.for_all Option.is_some suspects ->
                Ok ((p, List.map Option.get suspects) :: inj, amn, eqv, chn, rgn)
              | _ -> Error (Printf.sprintf "bad --inject %S (want P:S1,S2)" s)))))
      (Ok ([], [], [], [], [])) specs
  in
  let run protocol n f depth inject crash requests seeded_bug random seed iters no_por json
      jobs sym metrics =
    with_metrics metrics @@ fun () ->
    match MC.protocol_of_name protocol with
    | None -> `Error (true, Printf.sprintf "unknown protocol %S" protocol)
    | Some proto -> (
      match parse_injections inject with
      | Error msg -> `Error (true, msg)
      | Ok (injections, amnesia, equivocate, churn, regions) -> (
        let d = MC.default_spec proto in
        let spec =
          {
            d with
            MC.n;
            f;
            injections =
              (if
                 injections = [] && amnesia = [] && equivocate = [] && churn = []
                 && regions = [] && crash = []
               then d.MC.injections
               else List.rev injections);
            crashes = crash;
            amnesia = List.rev amnesia;
            equivocate = List.rev equivocate;
            churn = List.rev churn;
            regions = List.rev regions;
            requests = (if requests < 0 then d.MC.requests else requests);
            seeded_bug;
          }
        in
        match
          try Ok (MC.make spec) with Invalid_argument msg -> Error msg
        with
        | Error msg -> `Error (true, msg)
        | Ok system when (match jobs with Some j -> j < 1 | None -> false) ->
          ignore system;
          `Error (true, "--jobs must be >= 1")
        | Ok system ->
          let mk () = MC.make spec in
          let report, shards =
            match (random, jobs) with
            | true, None -> (Engine.random ~seed ~iters system, None)
            | true, Some j ->
              (* Any --jobs selects the per-walk-seeded sharded fuzzer; its
                 reports are byte-identical for every J (but differently
                 seeded than the legacy single-stream walker above). *)
              let r = Qs_mc.Shard.random ~jobs:j ~seed ~iters mk in
              Qs_mc.Shard.observe r;
              (r.Qs_mc.Shard.report, Some r.Qs_mc.Shard.shards)
            | false, (None | Some 1) ->
              (Engine.explore ~por:(not no_por) ~sym ~depth system, None)
            | false, Some j ->
              let r = Qs_mc.Shard.explore ~jobs:j ~por:(not no_por) ~sym ~depth mk in
              Qs_mc.Shard.observe r;
              (r.Qs_mc.Shard.report, Some r.Qs_mc.Shard.shards)
          in
          Qs_core.Quorum_select.test_buggy_quorum_size := false;
          if json then
            print_endline
              (Qs_obs.Json.render_pretty
                 (match Engine.report_to_json report with
                 | Qs_obs.Json.Obj fields ->
                   Qs_obs.Json.Obj (("protocol", Qs_obs.Json.String (MC.protocol_name proto)) :: fields)
                 | other -> other))
          else begin
            Printf.printf "mc %s  n=%d f=%d%s%s\n" (MC.protocol_name proto) n f
              (if spec.MC.crashes = [] then ""
               else
                 " crash={"
                 ^ String.concat "," (List.map string_of_int spec.MC.crashes)
                 ^ "}")
              (if seeded_bug then "  [seeded bug armed]" else "");
            print_endline (Engine.report_to_string report);
            match shards with
            | None -> ()
            | Some ss ->
              List.iter
                (fun s ->
                  Printf.printf
                    "  shard %d: states=%d transitions=%d tasks=%d steals=%d \
                     stalls=%d elapsed=%.3fs (%.0f states/s)\n"
                    s.Qs_mc.Shard.shard s.Qs_mc.Shard.states
                    s.Qs_mc.Shard.transitions s.Qs_mc.Shard.tasks
                    s.Qs_mc.Shard.steals s.Qs_mc.Shard.stalls
                    s.Qs_mc.Shard.elapsed_s
                    (if s.Qs_mc.Shard.elapsed_s > 0. then
                       float_of_int s.Qs_mc.Shard.states /. s.Qs_mc.Shard.elapsed_s
                     else 0.))
                ss
          end;
          if Engine.ok report then `Ok ()
          else `Error (false, "model checker found violations")))
  in
  let doc =
    "Exhaustively explore every message-delivery interleaving of a small \
     configuration (or fuzz random schedules with --random), checking the \
     paper's invariants — quorum size n-f, the Theorem-3/9 per-epoch bounds, \
     no-suspicion, prefix consistency — at every reached state. \
     Counterexamples are shrunk to minimal schedules replayable from \
     test/regressions/."
  in
  Cmd.v (Cmd.info "mc" ~doc)
    Term.(
      ret
        (const run $ protocol $ n $ f $ depth $ inject $ crash $ requests $ seeded_bug $ random
       $ seed $ iters $ no_por $ json $ jobs $ sym $ metrics_arg))

let () =
  let doc = "Quorum Selection for Byzantine Fault Tolerance - reproduction toolkit" in
  let info = Cmd.info "qsel" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            experiment_cmd;
            attack_cmd;
            follower_cmd;
            bounds_cmd;
            simulate_cmd;
            chaos_cmd;
            mc_cmd;
            runtime_chaos_cmd;
            serve_cmd;
          ]))
