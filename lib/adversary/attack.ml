module Xcluster = Qs_xpaxos.Xcluster
module Replica = Qs_xpaxos.Replica
module Fault = Qs_faults.Fault
module Injector = Qs_faults.Injector

type t =
  | Mute_replicas of int list
  | Omit_links of (int * int) list
  | Delay_links of ((int * int) * Qs_sim.Stime.t) list
  | Equivocate of { leader : int; victim : int }
  | Ramp_delay of {
      src : int;
      dst : int;
      step : Qs_sim.Stime.t;
      every : Qs_sim.Stime.t;
    }

let default_horizon = Qs_sim.Stime.of_ms 60_000

let to_schedule ?(horizon = default_horizon) = function
  | Mute_replicas rs -> List.map (fun r -> Fault.at (Fault.Crash r)) rs
  | Omit_links links ->
    List.map (fun (src, dst) -> Fault.at (Fault.Omit { src; dst })) links
  | Delay_links links ->
    List.map (fun ((src, dst), by) -> Fault.at (Fault.Delay { src; dst; by })) links
  | Equivocate _ -> [] (* commission: a replica behavior, not a link fault *)
  | Ramp_delay { src; dst; step; every } ->
    (* Chained [Delay] filters accumulate, so a permanent phase per step
       yields the ever-growing delay of the "increasing timing failure". *)
    List.init (horizon / every) (fun k ->
        Fault.at ~start:((k + 1) * every) (Fault.Delay { src; dst; by = step }))

let apply cluster attack =
  (match attack with
   | Equivocate { leader; victim } ->
     Xcluster.set_fault cluster leader (Replica.Equivocate victim)
   | _ -> ());
  let set_mute p m =
    Xcluster.set_fault cluster p (if m then Replica.Mute else Replica.Honest)
  in
  ignore (Injector.install ~net:(Xcluster.net cluster) ~set_mute (to_schedule attack))

let describe = function
  | Mute_replicas rs ->
    Printf.sprintf "mute replicas %s" (String.concat "," (List.map string_of_int rs))
  | Omit_links links -> Printf.sprintf "omit %d links" (List.length links)
  | Delay_links links -> Printf.sprintf "delay %d links" (List.length links)
  | Equivocate { leader; victim } -> Printf.sprintf "leader %d equivocates to %d" leader victim
  | Ramp_delay { src; dst; _ } -> Printf.sprintf "increasing delay on %d->%d" src dst
