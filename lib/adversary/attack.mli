(** Named fault scenarios for XPaxos experiments.

    These map the paper's failure classification (Section II) onto concrete
    cluster manipulations:
    - commission: [Equivocate];
    - omission on individual links: [Omit_links];
    - repeated omission / mute processes: [Mute_replicas];
    - timing failures: [Delay_links];
    - increasing timing failures: [Ramp_delay] (the delay grows without
      bound, so no fixed timeout ever suffices — only adaptive ones keep
      accuracy).

    All network-expressible attacks compile ({!to_schedule}) to
    {!Qs_faults.Fault} schedules and are installed through
    {!Qs_faults.Injector} — the same vocabulary the chaos campaigns and
    tests use — so they stack with any other injected faults. [Equivocate]
    is a commission failure inside the replica and stays a replica-level
    hook. *)

type t =
  | Mute_replicas of int list
  | Omit_links of (int * int) list  (** (src, dst) pairs *)
  | Delay_links of ((int * int) * Qs_sim.Stime.t) list
  | Equivocate of { leader : int; victim : int }
  | Ramp_delay of {
      src : int;
      dst : int;
      step : Qs_sim.Stime.t;
      every : Qs_sim.Stime.t;
    }  (** delay grows by [step] every [every] ticks *)

val to_schedule : ?horizon:Qs_sim.Stime.t -> t -> Qs_faults.Fault.schedule
(** The declarative form. [Ramp_delay] unrolls one accumulating [Delay]
    phase per step up to [horizon] (default 60 s of virtual time);
    [Equivocate] has no network form and compiles to the empty schedule. *)

val apply : Qs_xpaxos.Xcluster.t -> t -> unit
(** Install on the cluster: [to_schedule] through {!Qs_faults.Injector}
    (muting via [set_fault]), plus the replica-level equivocation hook. Call
    before the simulation runs past the attack's start times. *)

val describe : t -> string
