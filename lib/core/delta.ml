(* Delta-state CRDT gossip for the suspicion matrix.

   Full-state anti-entropy ships the whole n×n matrix every tick — O(n²)
   bytes per peer regardless of what changed. This engine tracks, per peer,
   the version of each local row the peer has acknowledged (versions live in
   the *sender's* version space; receivers just echo them back) and ships
   only rows whose version is ahead of the ack, as sparse (suspect, epoch)
   cell lists.

   Tolerance to the network comes from two monotonicity facts: row merges
   are joins (duplicate or reordered deltas are absorbed idempotently), and
   acked versions only advance when an Ack arrives (a dropped delta or ack
   merely means the rows ship again next tick). The one non-local hazard is
   a peer that acked rows and then lost its matrix to an amnesia crash; its
   rejoin State_req is the "I lost state" signal, on which the sender must
   {!reset_peer} so everything re-ships. Periodic full-state pushes remain
   as the backstop for anything else. *)

type row_delta = { owner : Pid.t; version : int; cells : (int * int) array }

type packet = { src : Pid.t; rows : row_delta list }

type ack = { rows : (Pid.t * int) list }

type t = {
  me : Pid.t;
  n : int;
  matrix : Suspicion_matrix.t;
  acked : int array array; (* acked.(peer).(row): our row version peer holds *)
  mutable rows_shipped : int;
  mutable cells_shipped : int;
  mutable packets_made : int;
  mutable packets_applied : int;
}

let create ~me matrix =
  let n = Suspicion_matrix.n matrix in
  if me < 0 || me >= n then invalid_arg "Delta.create: me out of range";
  {
    me;
    n;
    matrix;
    acked = Array.make_matrix n n 0;
    rows_shipped = 0;
    cells_shipped = 0;
    packets_made = 0;
    packets_applied = 0;
  }

let me t = t.me

let n t = t.n

(* Rows the peer has not acknowledged at their current version. The
   unchanged-row case is a single integer comparison: no row copy, no
   allocation — this is the fix for full-row copying on every gossip tick. *)
let make_packet t ~peer =
  if peer < 0 || peer >= t.n then invalid_arg "Delta.make_packet: peer out of range";
  if peer = t.me then invalid_arg "Delta.make_packet: self";
  let rows = ref [] in
  for l = t.n - 1 downto 0 do
    let v = Suspicion_matrix.row_version t.matrix l in
    if v > t.acked.(peer).(l) then
      rows := { owner = l; version = v; cells = Suspicion_matrix.sparse_row t.matrix l }
              :: !rows
  done;
  match !rows with
  | [] -> None
  | rows ->
    t.packets_made <- t.packets_made + 1;
    List.iter
      (fun r ->
        t.rows_shipped <- t.rows_shipped + 1;
        t.cells_shipped <- t.cells_shipped + Array.length r.cells)
      rows;
    Some { src = t.me; rows }

(* Join every carried row into the local matrix; the returned ack echoes the
   sender's row versions (acknowledging content ≥ those versions — the
   matrix may already have been ahead, which is fine: acks are about what
   the receiver holds, not what this packet taught it).
   Raises [Invalid_argument] on out-of-range owners or cells — the caller
   treats that as a corrupt payload. *)
let apply t (p : packet) =
  let changed = ref false in
  List.iter
    (fun r ->
      if r.owner < 0 || r.owner >= t.n then invalid_arg "Delta.apply: owner out of range";
      if Suspicion_matrix.merge_cells t.matrix ~owner:r.owner r.cells then
        changed := true)
    p.rows;
  t.packets_applied <- t.packets_applied + 1;
  (!changed, { rows = List.map (fun r -> (r.owner, r.version)) p.rows })

(* Monotone max — a duplicated or reordered ack can never roll a peer's
   acked versions backwards. Unknown rows are ignored, not an error: an ack
   from a previous incarnation of this process is stale but harmless. *)
let apply_ack t ~peer (a : ack) =
  if peer < 0 || peer >= t.n then invalid_arg "Delta.apply_ack: peer out of range";
  List.iter
    (fun (l, v) ->
      if l >= 0 && l < t.n && v > t.acked.(peer).(l) then t.acked.(peer).(l) <- v)
    a.rows

let reset_peer t ~peer =
  if peer < 0 || peer >= t.n then invalid_arg "Delta.reset_peer: peer out of range";
  Array.fill t.acked.(peer) 0 t.n 0

let acked t ~peer ~row = t.acked.(peer).(row)

type stats = {
  rows_shipped : int;
  cells_shipped : int;
  packets_made : int;
  packets_applied : int;
}

let stats (t : t) =
  {
    rows_shipped = t.rows_shipped;
    cells_shipped = t.cells_shipped;
    packets_made = t.packets_made;
    packets_applied = t.packets_applied;
  }
