(** Delta-state CRDT gossip engine for the suspicion matrix.

    Instead of shipping the whole O(n²) matrix every anti-entropy tick, a
    process tracks per-peer acknowledged row versions (in its own version
    space) and ships only rows that changed since the peer's last ack, as
    sparse cell lists. Drop, duplication and reordering are all tolerated:
    merges are joins and acks advance monotonically, so lost traffic only
    delays convergence. A peer that lost its matrix (amnesia) announces it
    with its rejoin [State_req], on which {!reset_peer} re-arms a full
    re-ship; periodic full-state pushes remain the backstop.

    The engine is transport-agnostic: {!Qs_recovery.Rejoin} drives it over
    its gossip schedule, and tests drive it directly. *)

type row_delta = { owner : Pid.t; version : int; cells : (int * int) array }

type packet = { src : Pid.t; rows : row_delta list }

type ack = { rows : (Pid.t * int) list }

type t

val create : me:Pid.t -> Suspicion_matrix.t -> t
(** One engine per process, wrapping that process's live matrix. *)

val me : t -> Pid.t

val n : t -> int

val make_packet : t -> peer:Pid.t -> packet option
(** Rows [peer] has not acked at their current version, or [None] when the
    peer is fully caught up (nothing is allocated for unchanged rows — the
    check is one integer comparison per row). *)

val apply : t -> packet -> bool * ack
(** Join the packet into the local matrix. Returns whether any cell changed
    and the ack to send back to [packet.src]. Raises [Invalid_argument] on
    out-of-range owners/cells (treat as a corrupt payload). *)

val apply_ack : t -> peer:Pid.t -> ack -> unit
(** Advance [peer]'s acked versions (monotone max). *)

val reset_peer : t -> peer:Pid.t -> unit
(** Forget everything [peer] acked — called when [peer] signals state loss
    (its rejoin [State_req]), so its next deltas carry every nonzero row. *)

val acked : t -> peer:Pid.t -> row:Pid.t -> int

type stats = {
  rows_shipped : int;
  cells_shipped : int;
  packets_made : int;
  packets_applied : int;
}

val stats : t -> stats
