module Prng = Qs_stdx.Prng
module Json = Qs_obs.Json

type verdict = {
  quorums : int;
  pairs : int;
  threshold : int;
  min_overlap : int;
  ok : bool;
  witness : (int list * int list) option;
}

let threshold ~n ~f = max 1 (n - (2 * f))

(* Both lists sorted increasing (the selectors' output order). *)
let overlap a b =
  let rec go acc a b =
    match (a, b) with
    | [], _ | _, [] -> acc
    | x :: a', y :: b' ->
      if x = y then go (acc + 1) a' b'
      else if x < y then go acc a' b
      else go acc a b'
  in
  go 0 a b

let distinct quorums = List.sort_uniq compare quorums

let run ~threshold:thr pairs_of quorums =
  let qs = Array.of_list (distinct quorums) in
  let min_overlap = ref max_int in
  let witness = ref None in
  let pairs = ref 0 in
  List.iter
    (fun (i, j) ->
      let o = overlap qs.(i) qs.(j) in
      incr pairs;
      if o < !min_overlap then begin
        min_overlap := o;
        if o < thr then witness := Some (qs.(i), qs.(j))
      end)
    (pairs_of (Array.length qs));
  {
    quorums = Array.length qs;
    pairs = !pairs;
    threshold = thr;
    min_overlap = !min_overlap;
    ok = !min_overlap >= thr || !pairs = 0;
    witness = !witness;
  }

let all_pairs k =
  let out = ref [] in
  for i = k - 1 downto 0 do
    for j = k - 1 downto i + 1 do
      out := (i, j) :: !out
    done
  done;
  !out

let check ~n ~f quorums = run ~threshold:(threshold ~n ~f) all_pairs quorums

let check_sampled ~n ~f ~seed ~max_pairs quorums =
  if max_pairs <= 0 then invalid_arg "Quorum_intersection: max_pairs must be positive";
  let pairs_of k =
    let total = k * (k - 1) / 2 in
    if total <= max_pairs then all_pairs k
    else begin
      (* Substream 0 of the caller's seed: pair sampling. Drawing by pair
         index keeps the sample a pure function of (seed, k). *)
      let g = Prng.substream (Prng.of_int seed) 0 in
      List.init max_pairs (fun _ ->
          let i = Prng.int g k in
          let j = Prng.int g (k - 1) in
          let j = if j >= i then j + 1 else j in
          (min i j, max i j))
    end
  in
  run ~threshold:(threshold ~n ~f) pairs_of quorums

let to_json v =
  Json.Obj
    [
      ("quorums", Json.Int v.quorums);
      ("pairs", Json.Int v.pairs);
      ("threshold", Json.Int v.threshold);
      ("min_overlap", Json.Int (if v.pairs = 0 then -1 else v.min_overlap));
      ("ok", Json.Bool v.ok);
    ]

let pp fmt v =
  Format.fprintf fmt "quorums=%d pairs=%d threshold=%d min=%s %s" v.quorums v.pairs
    v.threshold
    (if v.pairs = 0 then "-" else string_of_int v.min_overlap)
    (if v.ok then "ok" else "VIOLATION")
