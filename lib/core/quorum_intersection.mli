(** Quorum-intersection checking over issued quorums.

    Size-[q = n - f] quorums intersect by counting: two subsets of an
    [n]-universe of size [n - f] overlap in at least [n - 2f] elements,
    and [n - 2f > 0] is exactly the correct-majority precondition the
    selectors validate. Every issued quorum that respects its size
    therefore pairwise-intersects every other from the same universe —
    so a sub-threshold overlap is a {e certificate of an undersized or
    out-of-universe quorum}, the class of bug the seeded
    [test_buggy_quorum_size] mutation plants. This is the FBAS
    intersection question (Gaul et al. 2019; Lachowski 2019)
    specialized to the paper's symmetric threshold system, where the
    quantifier over quorum pairs is tractable: exact pairwise checking
    for small instances and seeded pair sampling at n = 1024.

    Checks run over the quorums issued within one [(cepoch, epoch)]
    group: across configuration epochs slots are renamed, and the
    membership plane's own cross-epoch invariants take over. *)

type verdict = {
  quorums : int;  (** distinct quorums in the group *)
  pairs : int;  (** pairs actually checked *)
  threshold : int;  (** required minimum overlap, [max 1 (n - 2f)] *)
  min_overlap : int;  (** smallest overlap seen; [max_int] when [pairs = 0] *)
  ok : bool;
  witness : (int list * int list) option;
      (** a violating pair, when [not ok] *)
}

val threshold : n:int -> f:int -> int
(** [max 1 (n - 2f)]. *)

val overlap : int list -> int list -> int
(** Intersection cardinality of two sorted pid lists. *)

val check : n:int -> f:int -> int list list -> verdict
(** Exact all-pairs check over one group of (sorted) quorums. Duplicate
    quorums are collapsed first. *)

val check_sampled :
  n:int -> f:int -> seed:int -> max_pairs:int -> int list list -> verdict
(** Like {!check}, but when the group holds more than [max_pairs]
    distinct pairs, draw [max_pairs] of them from a
    {!Qs_stdx.Prng.substream}-seeded generator instead — the large-[n]
    mode. Deterministic in [(seed, quorums)]. *)

val to_json : verdict -> Qs_obs.Json.t

val pp : Format.formatter -> verdict -> unit
