module Graph = Qs_graph.Graph
module Indep = Qs_graph.Indep
module Metrics = Qs_obs.Metrics
module Journal = Qs_obs.Journal

type config = { n : int; f : int }

let q c = c.n - c.f

(* Test-only mutation hook: when set, updateQuorum looks for an independent
   set one vertex short of q, issuing undersized quorums. The model checker's
   seeded-bug smoke test flips this to prove the |Q| = n - f property can
   actually fail and be caught, counterexample-shrunk and pinned. Never set
   outside tests. *)
let test_buggy_quorum_size = ref false

let validate_config c =
  if c.f < 0 then invalid_arg "Quorum_select: f must be non-negative";
  if c.n - c.f <= c.f then invalid_arg "Quorum_select: need n - f > f (correct majority)"

type t = {
  mutable config : config;
  mutable me : Pid.t;
  auth : Qs_crypto.Auth.t;
  send : Msg.t -> unit;
  on_quorum : Pid.t list -> unit;
  on_epoch : int -> unit;
  mutable matrix : Suspicion_matrix.t;
  mutable view : Suspect_view.t;
  mutable cepoch : int;
  mutable epoch : int;
  mutable suspecting : Pid.t list;
  mutable last_quorum : Pid.t list;
  mutable history : Pid.t list list; (* reversed *)
  mutable epochs_entered : int;
  mutable rejected : int;
  mutable issued_in_epoch : int;
  mutable max_issued_in_epoch : int;
  mutable dormant : bool;
  mutable excluded : Pid.t list; (* proven-guilty, conviction order *)
  mutable policy : Selection_policy.t;
  m_updates_sent : Metrics.counter;
  m_updates_merged : Metrics.counter;
  m_rejected : Metrics.counter;
  m_policy_fallbacks : Metrics.counter;
  m_quorums : Metrics.counter;
  m_epochs : Metrics.counter;
  g_epoch : Metrics.gauge;
  g_this_epoch : Metrics.gauge;
  g_epoch_max : Metrics.gauge;
}

let create config ~me ~auth ~send ~on_quorum ?(on_epoch = fun _ -> ()) () =
  validate_config config;
  if me < 0 || me >= config.n then invalid_arg "Quorum_select.create: me out of range";
  if Qs_crypto.Auth.universe auth < config.n then
    invalid_arg "Quorum_select.create: auth universe too small";
  let labels = [ ("p", string_of_int me) ] in
  (* The Theorem-3 proven bound and the conjectured maximum (Section VI-B),
     published so a snapshot carries the limits next to the live counts. *)
  let flabel = [ ("f", string_of_int config.f) ] in
  Metrics.set_g ~labels:flabel "qs_bound_theorem3"
    (float_of_int (config.f * (config.f + 1)));
  Metrics.set_g ~labels:flabel "qs_bound_conjecture"
    (float_of_int ((config.f + 2) * (config.f + 1) / 2));
  let matrix = Suspicion_matrix.create config.n in
  {
    config;
    me;
    auth;
    send;
    on_quorum;
    on_epoch;
    matrix;
    view = Suspect_view.create matrix ~epoch:1;
    cepoch = 0;
    epoch = 1;
    suspecting = [];
    last_quorum = List.init (q config) (fun i -> i);
    history = [];
    epochs_entered = 0;
    rejected = 0;
    issued_in_epoch = 0;
    max_issued_in_epoch = 0;
    dormant = false;
    excluded = [];
    policy = Selection_policy.default;
    m_updates_sent = Metrics.counter ~labels "qs_updates_sent_total";
    m_updates_merged = Metrics.counter ~labels "qs_updates_merged_total";
    m_rejected = Metrics.counter ~labels "qs_rejected_total";
    m_policy_fallbacks = Metrics.counter ~labels "qs_policy_fallback_total";
    m_quorums = Metrics.counter ~labels "qs_quorums_issued_total";
    m_epochs = Metrics.counter ~labels "qs_epochs_entered_total";
    g_epoch = Metrics.gauge ~labels "qs_epoch";
    g_this_epoch = Metrics.gauge ~labels "qs_quorums_this_epoch";
    g_epoch_max = Metrics.gauge ~labels "qs_quorums_per_epoch_max";
  }

let me t = t.me

(* updateSuspicions (Algorithm 1, lines 11-15): stamp current suspicions with
   the current epoch in our own row and broadcast it, including to self. The
   local matrix is only updated by the self-delivered UPDATE, which keeps a
   single code path for state changes and quorum re-evaluation — this is why
   line 15 broadcasts "to all including self". Returns whether the broadcast
   row differs from the locally stored one (i.e. whether a self-update will
   eventually arrive and re-trigger updateQuorum). *)
let update_suspicions t s =
  t.suspecting <- List.sort_uniq compare (List.filter (fun j -> j <> t.me) s);
  let row = Suspicion_matrix.row t.matrix t.me in
  let changed = ref false in
  List.iter
    (fun j ->
      if row.(j) < t.epoch then begin
        row.(j) <- t.epoch;
        changed := true
      end)
    t.suspecting;
  Metrics.inc t.m_updates_sent;
  if Journal.live () then
    Journal.record (Journal.Update_sent { owner = t.me; epoch = t.epoch });
  t.send (Msg.seal t.auth { Msg.owner = t.me; row });
  !changed

let handle_suspected t s = ignore (update_suspicions t s)

(* updateQuorum (lines 25-34). One deviation from the listing: when the epoch
   bump leaves our own row unchanged (current suspicions were already stamped
   or empty), the self-addressed UPDATE carries no new information, so no
   handler would ever re-evaluate the quorum at the new epoch; we therefore
   continue evaluating locally. Progress is guaranteed because each such
   iteration raises the epoch and strictly shrinks the suspect graph. *)
(* Permanent exclusion, capped at the model's budget: with at most [f]
   excluded vertices the non-excluded complement (size >= q) is always an
   independent set of the star edges, so aging still terminates — whereas
   letting an out-of-model adversary convict more than [f] processes would
   make the size-q search unsatisfiable and the epoch-bump loop diverge. *)
let applied_exclusions t =
  List.filteri (fun i _ -> i < t.config.f) t.excluded

(* Proven-guilty processes leave every future quorum without consuming
   suspicion aging: rather than poisoning the (epoch-aged, CRDT-merged)
   matrix, exclusion covers each convicted vertex with a star of edges at
   selection time, so no independent set of size >= 2 can contain it. *)
let selection_graph t =
  let g = Suspicion_matrix.suspect_graph t.matrix ~epoch:t.epoch in
  match applied_exclusions t with
  | [] -> g
  | ex ->
    let g = Graph.copy g in
    List.iter
      (fun e ->
        for v = 0 to t.config.n - 1 do
          if v <> e then Graph.add_edge g e v
        done)
      ex;
    g

(* The aging endpoint of [selection_graph]: what epoch advances converge
   to — every suspicion edge aged out, only the conviction stars left.
   A policy that cannot select even here will never be unblocked by
   aging, so the selector must not keep bumping the epoch for it. *)
let exclusion_graph t =
  let g = Graph.create t.config.n in
  List.iter
    (fun e ->
      for v = 0 to t.config.n - 1 do
        if v <> e then Graph.add_edge g e v
      done)
    (applied_exclusions t);
  g

(* Per-vertex bias for the lottery policy: how many processes ever
   suspected the vertex (O(nonzero cells), not O(n²)), plus a dominating
   penalty for a standing conviction — so a seeded lottery drifts away
   from historically suspected processes and convicts rank last. *)
let suspicion_weights t =
  let n = t.config.n in
  let w = Array.make n 0 in
  Suspicion_matrix.iter_nonzero t.matrix (fun ~suspector:_ ~suspect ~epoch:_ ->
      w.(suspect) <- w.(suspect) + 1);
  List.iter (fun e -> if e >= 0 && e < n then w.(e) <- w.(e) + n) t.excluded;
  fun v -> w.(v)

let rec update_quorum t =
  if t.dormant then () else begin
  Suspect_view.sync t.view ~epoch:t.epoch;
  let target = q t.config - if !test_buggy_quorum_size then 1 else 0 in
  let result =
    match t.policy with
    | Selection_policy.Lex_first -> (
      (* The incremental view models the exclusion-free selection graph; the
         star-edge construction for convictions stays on the explicit path
         (convictions are rare — at most f per run). *)
      match applied_exclusions t with
      | [] -> Suspect_view.lex_first t.view target
      | _ :: _ -> Indep.lex_first_independent_set (selection_graph t) target)
    | policy -> (
      let graph = selection_graph t in
      let weight = suspicion_weights t in
      match
        Selection_policy.select policy ~graph ~q:target ~weight ~cepoch:t.cepoch
          ~epoch:t.epoch
      with
      | Some _ as r -> r
      | None
        when Selection_policy.diversity_feasible policy ~graph:(exclusion_graph t)
               ~q:target ->
        (* Exact infeasibility that aging can cure (for the lottery this is
           plain lex-first infeasibility): fall through to the epoch bump. *)
        None
      | None ->
        (* The caps are unsatisfiable even at the aging endpoint (convictions
           crowded a label out). Epoch bumps would diverge, so the policy
           degrades to the pinned default for this selection — counted, so
           campaigns can see a policy under conviction pressure. *)
        Metrics.inc t.m_policy_fallbacks;
        Indep.lex_first_independent_set graph target)
  in
  match result with
  | None ->
    (* Suspicions in the current epoch are inconsistent: age them out. *)
    t.epoch <- t.epoch + 1;
    t.epochs_entered <- t.epochs_entered + 1;
    t.issued_in_epoch <- 0;
    Metrics.inc t.m_epochs;
    Metrics.set t.g_epoch (float_of_int t.epoch);
    Metrics.set t.g_this_epoch 0.0;
    if Journal.live () then
      Journal.record (Journal.Epoch_advanced { who = t.me; epoch = t.epoch });
    t.on_epoch t.epoch;
    if not (update_suspicions t t.suspecting) then update_quorum t
  | Some quorum ->
    if quorum <> t.last_quorum then begin
      t.last_quorum <- quorum;
      t.history <- quorum :: t.history;
      t.issued_in_epoch <- t.issued_in_epoch + 1;
      if t.issued_in_epoch > t.max_issued_in_epoch then
        t.max_issued_in_epoch <- t.issued_in_epoch;
      Metrics.inc t.m_quorums;
      Metrics.set t.g_this_epoch (float_of_int t.issued_in_epoch);
      Metrics.set_max t.g_epoch_max (float_of_int t.issued_in_epoch);
      if Journal.live () then
        Journal.record
          (Journal.Quorum_issued { who = t.me; epoch = t.epoch; quorum });
      Logs.debug ~src:Qs_stdx.Debug.quorum (fun m ->
          m "p%d QUORUM %s (epoch %d)" (t.me + 1) (Pid.set_to_string quorum) t.epoch);
      t.on_quorum quorum
    end
  end

let handle_update t msg =
  if
    (not (Msg.verify t.auth msg))
    (* A row of the wrong width was sealed under a different configuration
       (in flight across a reconfiguration): its slots name other processes,
       so merging it would alias suspicions. Dropped like a bad signature. *)
    || Array.length msg.Msg.update.Msg.row <> t.config.n
    || msg.Msg.update.Msg.owner >= t.config.n
  then begin
    t.rejected <- t.rejected + 1;
    Metrics.inc t.m_rejected
  end
  else begin
    (* If the view was in sync before the merge and the merge raised no cell
       at or above the current epoch (generation unchanged), the selection
       graph is untouched: re-running the selection would re-derive the
       standing quorum and do nothing. Skipping it is the difference between
       O(changed cells) and a full independent-set search per stale UPDATE. *)
    let in_sync = Suspect_view.in_sync t.view ~epoch:t.epoch in
    let gen = Suspect_view.generation t.view in
    let changed =
      Suspicion_matrix.merge_row t.matrix ~owner:msg.Msg.update.Msg.owner
        msg.Msg.update.Msg.row
    in
    if changed then begin
      Metrics.inc t.m_updates_merged;
      if Journal.live () then
        Journal.record
          (Journal.Update_merged { who = t.me; owner = msg.Msg.update.Msg.owner });
      t.send msg; (* forward, so every correct process sees every suspicion *)
      if not (in_sync && Suspect_view.generation t.view = gen) then
        update_quorum t
    end
  end

(* Re-run updateQuorum after out-of-band matrix changes (the delta-gossip
   layer merges cells directly). Dormancy is respected: unlike [absorb], a
   partial delta is not evidence of a full peer state, so it must never wake
   a wiped process. *)
let reevaluate t = update_quorum t

let epoch t = t.epoch

let last_quorum t = t.last_quorum

let quorums_issued t = List.length t.history

let quorum_history t = List.rev t.history

let epochs_entered t = t.epochs_entered

let max_issued_per_epoch t = t.max_issued_in_epoch

let matrix t = t.matrix

let suspecting t = t.suspecting

let rejected_updates t = t.rejected

let suspect_graph t = Suspicion_matrix.suspect_graph t.matrix ~epoch:t.epoch

(* ------------------------------------------------------------------ *)
(* Evidence-driven permanent exclusion *)

let exclude t p =
  if p < 0 || p >= t.config.n then invalid_arg "Quorum_select.exclude: out of range";
  if not (List.mem p t.excluded) then begin
    t.excluded <- t.excluded @ [ p ];
    (* The star edges may invalidate the standing quorum right away. *)
    update_quorum t
  end

let excluded t = List.sort compare t.excluded

(* ------------------------------------------------------------------ *)
(* Selection policy *)

let policy t = t.policy

(* A policy is static configuration: every correct process must install
   the same one (Agreement is carried by deterministic selection over
   converged state). Installing re-validates against the current width
   and re-runs the selection — the standing quorum may change shape
   immediately. *)
let set_policy t p =
  Selection_policy.validate p ~n:t.config.n ~q:(q t.config);
  t.policy <- p;
  if not t.dormant then update_quorum t

(* ------------------------------------------------------------------ *)
(* Reconfiguration (open membership) *)

let cepoch t = t.cepoch

(* Carry the algorithm's state into a new configuration. [of_new] maps each
   new slot to the old slot it inherits (< 0 for a fresh joiner slot); a
   compacting remap simply never mentions the removed slots, so their
   suspicions — and any conviction against them — die with the config. The
   detector epoch is deliberately preserved (suspicion aging continues
   across reconfigurations), while per-epoch issue counters restart: the
   Theorem-3 bound is re-anchored per (config epoch, detector epoch), which
   is exactly how the monitor accounts for it. The standing quorum resets
   to the new config's default — a reconfiguration is a quorum change, and
   all correct processes apply it deterministically. *)
let reconfigure t config' ~me ~cepoch ~of_new =
  validate_config config';
  if me < 0 || me >= config'.n then
    invalid_arg "Quorum_select.reconfigure: me out of range";
  if Qs_crypto.Auth.universe t.auth < config'.n then
    invalid_arg "Quorum_select.reconfigure: auth universe too small";
  if cepoch <= t.cepoch then
    invalid_arg "Quorum_select.reconfigure: config epoch must advance";
  let old_n = t.config.n in
  let inv = Array.make old_n (-1) in
  for i = 0 to config'.n - 1 do
    let o = of_new i in
    if o >= old_n then invalid_arg "Quorum_select.reconfigure: of_new out of range";
    if o >= 0 then inv.(o) <- i
  done;
  let remap_pids ps =
    List.filter_map
      (fun p -> if p >= 0 && p < old_n && inv.(p) >= 0 then Some inv.(p) else None)
      ps
  in
  let matrix' = Suspicion_matrix.remap t.matrix ~n:config'.n ~of_new in
  Suspicion_matrix.clear_watcher t.matrix;
  t.matrix <- matrix';
  t.view <- Suspect_view.create matrix' ~epoch:t.epoch;
  t.config <- config';
  t.me <- me;
  t.cepoch <- cepoch;
  t.suspecting <- List.sort_uniq compare (remap_pids t.suspecting);
  t.excluded <- remap_pids t.excluded; (* conviction order preserved *)
  t.policy <- Selection_policy.remap t.policy ~n:config'.n ~of_new;
  t.last_quorum <- List.init (q config') (fun i -> i);
  t.history <- [];
  t.issued_in_epoch <- 0;
  Metrics.set t.g_this_epoch 0.0;
  if Journal.live () then
    Journal.record
      (Journal.Reconfigured { who = t.me; cepoch; n = config'.n });
  if not t.dormant then update_quorum t

(* ------------------------------------------------------------------ *)
(* Crash-recovery (amnesia) hooks *)

let dormant t = t.dormant

(* An amnesia crash loses everything Algorithm 1 keeps in volatile memory.
   The instance goes dormant: it keeps merging incoming rows (anti-entropy
   never hurts, merges are monotone) but must not issue a quorum computed
   from the wiped — hence stale-looking — matrix until [absorb] delivers a
   peer's state or a durable snapshot. *)
let amnesia t =
  Suspicion_matrix.blit ~src:(Suspicion_matrix.create t.config.n) ~dst:t.matrix;
  t.epoch <- 1;
  t.suspecting <- [];
  t.last_quorum <- List.init (q t.config) (fun i -> i);
  t.history <- [];
  t.issued_in_epoch <- 0;
  t.max_issued_in_epoch <- 0;
  t.dormant <- true;
  Metrics.set t.g_epoch 1.0;
  Metrics.set t.g_this_epoch 0.0

(* CRDT join with a peer's (or a durable snapshot's) state: max-merge the
   matrix, fast-forward the epoch, wake from dormancy and re-evaluate. Safe
   to call repeatedly — merges are idempotent and [update_quorum] only
   fires [on_quorum] when the quorum actually changes. *)
let absorb t ~matrix ~epoch =
  ignore (Suspicion_matrix.merge t.matrix matrix);
  if epoch > t.epoch then begin
    t.epoch <- epoch;
    t.epochs_entered <- t.epochs_entered + 1;
    t.issued_in_epoch <- 0;
    Metrics.inc t.m_epochs;
    Metrics.set t.g_epoch (float_of_int t.epoch);
    Metrics.set t.g_this_epoch 0.0;
    if Journal.live () then
      Journal.record (Journal.Epoch_advanced { who = t.me; epoch = t.epoch });
    t.on_epoch t.epoch
  end;
  t.dormant <- false;
  update_quorum t

(* ------------------------------------------------------------------ *)
(* Model-checker hooks *)

(* Everything the algorithm's future behavior (and the bound property)
   depends on. The issued-in-epoch counters are included deliberately: two
   states identical up to them could still diverge on whether a later quorum
   overshoots Theorem 3, so merging them would be unsound for that check. *)
(* The policy tag is appended only when a non-default policy is armed:
   the model checker's pinned state counts hash default-policy
   fingerprints, and Lex_first must keep producing the exact bytes it
   always did. *)
let policy_tag t =
  if Selection_policy.is_default t.policy then ""
  else "|" ^ Selection_policy.to_string t.policy

let fingerprint t =
  Format.asprintf "%d,%d,%d|%d|%a|%s|%s|%d|%d|%b|%s%s" t.config.n t.config.f
    t.cepoch t.epoch Suspicion_matrix.pp t.matrix
    (String.concat "," (List.map string_of_int t.last_quorum))
    (String.concat "," (List.map string_of_int t.suspecting))
    t.issued_in_epoch t.max_issued_in_epoch t.dormant
    (String.concat "," (List.map string_of_int t.excluded))
    (policy_tag t)

(* [fingerprint] of this node's state as it appears after relabeling every
   process identity through the bijection [perm] (old pid -> new pid): the
   matrix is conjugated, [suspecting] mapped and re-sorted (it is maintained
   sorted), [excluded] mapped in conviction order. [last_quorum] is rendered
   VERBATIM: it is the lex-first independent set of the suspect graph, and
   lex-first is not permutation-covariant — its output is a function of the
   graph, not a label. The model checker only enables symmetry when every
   suspicion edge endpoint is fixed by the permutation group, so the graph
   (and hence the lex-first choice) is invariant and the verbatim render is
   exactly what the relabeled execution would store. *)
let fingerprint_perm t ~perm =
  let inv = Array.make t.config.n 0 in
  for p = 0 to t.config.n - 1 do
    inv.(perm p) <- p
  done;
  let pmap l = List.map perm l in
  (* The policy tag is rendered verbatim: symmetry reduction is only ever
     enabled under the default policy (the checker's permutation groups
     are not topology- or seed-aware). *)
  Format.asprintf "%d,%d,%d|%d|%a|%s|%s|%d|%d|%b|%s%s" t.config.n t.config.f
    t.cepoch t.epoch Suspicion_matrix.pp
    (Suspicion_matrix.remap t.matrix ~n:t.config.n ~of_new:(fun i -> inv.(i)))
    (String.concat "," (List.map string_of_int t.last_quorum))
    (String.concat "," (List.map string_of_int (List.sort compare (pmap t.suspecting))))
    t.issued_in_epoch t.max_issued_in_epoch t.dormant
    (String.concat "," (List.map string_of_int (pmap t.excluded)))
    (policy_tag t)

type snapshot = {
  s_config : config;
  s_me : Pid.t;
  s_cepoch : int;
  s_matrix : Suspicion_matrix.t;
  s_epoch : int;
  s_suspecting : Pid.t list;
  s_last_quorum : Pid.t list;
  s_history : Pid.t list list;
  s_epochs_entered : int;
  s_rejected : int;
  s_issued_in_epoch : int;
  s_max_issued_in_epoch : int;
  s_dormant : bool;
  s_excluded : Pid.t list;
  s_policy : Selection_policy.t;
}

let snapshot t =
  {
    s_config = t.config;
    s_me = t.me;
    s_cepoch = t.cepoch;
    s_matrix = Suspicion_matrix.copy t.matrix;
    s_epoch = t.epoch;
    s_suspecting = t.suspecting;
    s_last_quorum = t.last_quorum;
    s_history = t.history;
    s_epochs_entered = t.epochs_entered;
    s_rejected = t.rejected;
    s_issued_in_epoch = t.issued_in_epoch;
    s_max_issued_in_epoch = t.max_issued_in_epoch;
    s_dormant = t.dormant;
    s_excluded = t.excluded;
    s_policy = t.policy;
  }

let restore t s =
  t.config <- s.s_config;
  t.me <- s.s_me;
  t.cepoch <- s.s_cepoch;
  (* A snapshot taken under a different configuration has a different matrix
     width: adopt a copy and rebuild the incremental view instead of
     blitting (blit requires equal sizes). *)
  if Suspicion_matrix.n t.matrix <> Suspicion_matrix.n s.s_matrix then begin
    Suspicion_matrix.clear_watcher t.matrix;
    t.matrix <- Suspicion_matrix.copy s.s_matrix;
    t.view <- Suspect_view.create t.matrix ~epoch:s.s_epoch
  end
  else Suspicion_matrix.blit ~src:s.s_matrix ~dst:t.matrix;
  t.epoch <- s.s_epoch;
  t.suspecting <- s.s_suspecting;
  t.last_quorum <- s.s_last_quorum;
  t.history <- s.s_history;
  t.epochs_entered <- s.s_epochs_entered;
  t.rejected <- s.s_rejected;
  t.issued_in_epoch <- s.s_issued_in_epoch;
  t.max_issued_in_epoch <- s.s_max_issued_in_epoch;
  t.dormant <- s.s_dormant;
  t.excluded <- s.s_excluded;
  t.policy <- s.s_policy
