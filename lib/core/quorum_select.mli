(** Quorum Selection — Algorithm 1 of the paper.

    One instance runs at each process. Inputs:
    - [handle_suspected]: the ⟨SUSPECTED, S⟩ events from the local failure
      detector;
    - [handle_update]: UPDATE messages from the network.

    Outputs, via callbacks:
    - [send]: broadcast an UPDATE {e to all processes including self}
      (Algorithm 1 line 15 — self-delivery is what re-triggers
      [updateQuorum] after a local state change, and forwarding on change
      implements the anti-entropy gossip of lines 22–23);
    - [on_quorum]: ⟨QUORUM, Q⟩ events, [|Q| = n − f];
    - [on_epoch]: epoch increments (line 28), which the Follower-Selection
      variant and the XPaxos integration use to cancel expectations.

    The module never needs consensus: the [suspected] matrix is merged with
    pointwise max, so all correct processes converge on the same state and —
    because the quorum is the deterministic lexicographically-first
    independent set — on the same quorum (Agreement). *)

type config = { n : int; f : int }
(** [q = n - f] processes form a quorum; requires [0 ≤ f] and [f < n - f]
    (majority correct, Section IV). *)

val q : config -> int

val validate_config : config -> unit
(** Raises [Invalid_argument] on a config violating the model. *)

type t

val create :
  config ->
  me:Pid.t ->
  auth:Qs_crypto.Auth.t ->
  send:(Msg.t -> unit) ->
  on_quorum:(Pid.t list -> unit) ->
  ?on_epoch:(int -> unit) ->
  unit ->
  t

val me : t -> Pid.t

val handle_suspected : t -> Pid.t list -> unit
(** ⟨SUSPECTED, S⟩ from the failure detector: remember [S] as the current
    suspicions, stamp them with the current epoch in our row, and broadcast
    the row (updateSuspicions, lines 11–15). *)

val handle_update : t -> Msg.t -> unit
(** Verify the owner's signature, max-merge the row, and on change forward
    the message and re-evaluate the quorum (lines 16–24). Badly signed
    updates are dropped and counted. *)

val epoch : t -> int

val last_quorum : t -> Pid.t list
(** Most recent quorum (initially [{p1 … pq}], line 8). *)

val quorums_issued : t -> int
(** Number of ⟨QUORUM⟩ events issued (the metric of Theorems 3 and 4). *)

val quorum_history : t -> Pid.t list list
(** All issued quorums, oldest first (excludes the initial default). *)

val epochs_entered : t -> int
(** Number of epoch increments. *)

val max_issued_per_epoch : t -> int
(** Largest number of ⟨QUORUM⟩ events issued within any single epoch — the
    quantity Theorem 3 bounds by [f·(f+1)] (and Section VI-B conjectures is
    at most [C(f+2,2)]). Also published live as the
    [qs_quorums_per_epoch_max] gauge. *)

val matrix : t -> Suspicion_matrix.t
(** The live matrix — treat as read-only. *)

val reevaluate : t -> unit
(** Re-run updateQuorum against the current matrix. For layers that merge
    into the matrix out-of-band (delta-state gossip): merges are monotone so
    this is always safe, and unlike {!absorb} it respects dormancy — a
    partial delta must never wake a wiped process. Cheap when nothing
    relevant changed (the incremental suspect-graph view is already
    current). *)

val suspecting : t -> Pid.t list
(** Current FD suspicions as last reported. *)

val rejected_updates : t -> int

val suspect_graph : t -> Qs_graph.Graph.t
(** The graph [G_i] for the current epoch (for inspection), {e without} the
    exclusion stars — see {!exclude}. *)

(** {2 Evidence-driven permanent exclusion} *)

val exclude : t -> Pid.t -> unit
(** Permanently bar a {e proven-guilty} process (an admitted
    {!Qs_evidence.Evidence} proof) from every future quorum. Implemented at
    selection time: each excluded vertex is covered with a star of edges on
    a copy of the suspect graph, so no independent set of size ≥ 2 — hence
    no quorum — can contain it, while the suspicion matrix (and its aging)
    is left untouched. Re-evaluates the quorum immediately. Idempotent.

    At most [f] exclusions are {e applied} (earliest convictions win):
    within the model budget the non-excluded complement always admits a
    size-[q] independent set, so epoch aging still terminates; past the
    budget the target would become unsatisfiable. Exclusion deliberately
    survives {!amnesia} — a proof is a permanent fact, not volatile
    detector state. *)

val excluded : t -> Pid.t list
(** Processes convicted so far, sorted. *)

(** {2 Selection policy} *)

val policy : t -> Selection_policy.t
(** The installed policy ({!Selection_policy.Lex_first} initially). *)

val set_policy : t -> Selection_policy.t -> unit
(** Install a selection policy. Policies are static configuration, not
    protocol state: every correct process must install the same one (the
    Agreement property is carried by deterministic selection over the
    converged matrix), and a policy survives {!amnesia} like the rest of
    the config. Validates against the current width
    ({!Selection_policy.validate}) and re-evaluates the standing quorum
    immediately.

    {!Selection_policy.Lex_first} keeps the incremental fast path and the
    historical byte-exact {!fingerprint}; a non-default policy appends its
    tag to the fingerprint and selects through
    {!Selection_policy.select} over the exclusion-starred selection
    graph. A {!Selection_policy.Diversity_capped} policy whose caps
    become unsatisfiable even at the aging endpoint (convictions crowding
    a label out) degrades to lex-first for the affected selections rather
    than diverging in the epoch-bump loop; the [qs_policy_fallback_total]
    counter records every such degradation. {!reconfigure} carries the
    policy across configs via {!Selection_policy.remap}. *)

(** {2 Reconfiguration (open membership)} *)

val reconfigure :
  t -> config -> me:Pid.t -> cepoch:int -> of_new:(int -> Pid.t) -> unit
(** Carry the instance into a new configuration — grow for joins, compacting
    remap for leaves/ejections. [of_new i] names the old slot that new slot
    [i] inherits ([< 0] for a fresh joiner slot); removed slots are simply
    never mentioned, so their suspicions and convictions die with the
    config. [me] is this process's slot in the new config, [cepoch] the
    strictly-increasing membership epoch (folded into {!fingerprint} so
    model-checker pruning never merges states across configs).

    The matrix is {!Suspicion_matrix.remap}ped (the incremental view is
    rebuilt on the new matrix), suspicions and exclusions are remapped, the
    detector epoch is preserved, per-epoch issue counters restart (the
    Theorem-3 bound re-anchors per (config epoch, detector epoch)) and the
    standing quorum resets to the new config's default. Journals
    [Reconfigured] and re-evaluates unless dormant. Callers must drop
    in-flight UPDATEs of the old config (rows of the wrong width are
    rejected defensively) and reset any delta-gossip peer state. *)

val cepoch : t -> int
(** Membership epoch of the current configuration (0 until the first
    {!reconfigure}). *)

(** {2 Crash-recovery (amnesia) hooks} *)

val amnesia : t -> unit
(** Simulate a crash that loses all volatile state: zero the matrix, reset
    the epoch to 1 and the quorum to the default, forget suspicions and
    per-epoch counters, and go {e dormant} — incoming rows still merge
    (anti-entropy) but no quorum is issued until {!absorb} supplies a
    recovered state. Implements the "never issue a quorum from pre-crash
    stale state" recovery invariant. *)

val absorb : t -> matrix:Suspicion_matrix.t -> epoch:int -> unit
(** CRDT join of a peer's [StateResp] (or a durable snapshot): max-merge
    [matrix], fast-forward to [epoch] if ahead, clear dormancy and
    re-evaluate the quorum. Idempotent and commutative across responses —
    the semilattice property that makes rejoin state transfer safe. *)

val dormant : t -> bool
(** [true] between {!amnesia} and the first {!absorb}. *)

(** {2 Model-checker hooks} *)

val fingerprint : t -> string
(** Canonical encoding of the instance's algorithm-visible state — epoch,
    matrix, last quorum, current suspicions and the per-epoch issue counters
    (the latter so states differing only in proximity to the Theorem-3 bound
    are never merged). Callbacks and metrics handles are excluded. *)

val fingerprint_perm : t -> perm:(int -> int) -> string
(** {!fingerprint} of the state relabeled through the pid bijection [perm]
    (old pid -> new pid): matrix conjugated, pid lists mapped. [last_quorum]
    is rendered verbatim — lex-first selection is a function of the suspect
    graph, not of labels, so the caller (the model checker's symmetry
    reduction) must only use permutations that fix every pid incident to a
    suspicion edge. Equal to {!fingerprint} when [perm] is the identity. *)

type snapshot

val snapshot : t -> snapshot
(** Deep copy of the mutable state; O(n²). *)

val restore : t -> snapshot -> unit
(** Roll the instance back to a snapshot. The metrics registry is global and
    is {e not} rolled back — model checkers reset it per run instead. *)

val test_buggy_quorum_size : bool ref
(** Test-only fault seed: when set, updateQuorum targets an independent set
    of size [q - 1], issuing undersized quorums. Exists so the model
    checker's detection pipeline (find → shrink → pin regression) can be
    exercised against a known bug. Leave [false] outside tests. *)
