module Graph = Qs_graph.Graph
module Indep = Qs_graph.Indep
module Bitset = Qs_stdx.Bitset
module Prng = Qs_stdx.Prng

type t =
  | Lex_first
  | Seeded_lottery of { seed : int64 }
  | Diversity_capped of { topology : Topology.t; cap : int }

let default = Lex_first

let is_default = function Lex_first -> true | _ -> false

let validate t ~n ~q =
  match t with
  | Lex_first | Seeded_lottery _ -> ()
  | Diversity_capped { topology; cap } ->
    if Topology.n topology <> n then
      invalid_arg "Selection_policy: topology width does not match the configuration";
    if cap <= 0 then invalid_arg "Selection_policy: cap must be positive";
    let reach =
      List.fold_left (fun acc (_, c) -> acc + min cap c) 0 (Topology.counts topology)
    in
    if reach < q then
      invalid_arg
        (Printf.sprintf
           "Selection_policy: caps cover at most %d of the %d quorum slots" reach q)

let remap t ~n ~of_new =
  match t with
  | Lex_first | Seeded_lottery _ -> t
  | Diversity_capped { topology; cap } ->
    Diversity_capped { topology = Topology.remap topology ~n ~of_new; cap }

(* ------------------------------------------------------------------ *)
(* Generic greedy construction in an arbitrary vertex order, with the
   same exact feasibility checks as [Indep.lex_first_independent_set]:
   include the next vertex of [order] whenever the candidates behind it
   can still complete an independent set of the target size. Given the
   up-front existence check, the greedy loop always completes — so
   [None] means exactly "no independent set of size q exists". *)

let first_in_order g q order =
  let n = Graph.n g in
  if q < 0 then invalid_arg "Selection_policy: negative quorum size";
  if q = 0 then Some []
  else if q > n then None
  else if not (Indep.exists_independent_set g q) then None
  else begin
    let allowed = Bitset.of_list n (Graph.vertices g) in
    let remaining = Bitset.of_list n order in
    let chosen = ref [] and count = ref 0 in
    List.iter
      (fun v ->
        Bitset.remove remaining v;
        if !count < q && Bitset.mem allowed v then begin
          let future = Bitset.copy remaining in
          Bitset.inter_into future allowed;
          Bitset.diff_into future (Graph.neighbor_set g v);
          let need = q - !count - 1 in
          if need <= 0 || Indep.mis_within g future >= need then begin
            chosen := v :: !chosen;
            incr count;
            Bitset.remove allowed v;
            Bitset.diff_into allowed (Graph.neighbor_set g v)
          end
        end)
      order;
    if !count = q then Some (List.sort compare !chosen) else None
  end

(* ------------------------------------------------------------------ *)
(* Seeded lottery: ticket t(v) = (1 + weight v) · u(v) with u(v) drawn
   from the substream chain seed → cepoch → epoch → v, sorted ascending
   (ties by pid). Random access into the substreams makes the order a
   pure function of (seed, cepoch, epoch, weights) — independent of
   domain count, evaluation order and prior draws. *)

let lottery_order ~seed ~cepoch ~epoch ~weight n =
  let epoch_stream =
    Prng.substream (Prng.substream (Prng.create seed) cepoch) epoch
  in
  let keyed =
    List.init n (fun v ->
        let u = Prng.float (Prng.substream epoch_stream v) 1.0 in
        (float_of_int (1 + max 0 (weight v)) *. u, v))
  in
  List.map snd (List.sort compare keyed)

(* ------------------------------------------------------------------ *)
(* Diversity caps: exact backtracking over the lex order. Two pruning
   bounds at every node — the per-label cap reach of the remaining
   candidates, and the exact MIS size of the remaining candidate set —
   are each necessary, and full backtracking restores sufficiency, so
   [None] means no cap-respecting independent set of size [q] exists. *)

let diversity_select topology cap g q =
  let n = Graph.n g in
  if q < 0 then invalid_arg "Selection_policy: negative quorum size";
  if q = 0 then Some []
  else if q > n || Topology.n topology <> n then None
  else begin
    let labels = Array.of_list (Topology.labels topology) in
    let k = Array.length labels in
    let label_id = Array.make n 0 in
    for v = 0 to n - 1 do
      let l = Topology.label_of topology v in
      let rec find i = if labels.(i) = l then i else find (i + 1) in
      label_id.(v) <- find 0
    done;
    let used = Array.make k 0 in
    let scratch = Array.make k 0 in
    let feasible v allowed need =
      (* Remaining candidates: allowed vertices at or after the cursor. *)
      let rest = Bitset.copy allowed in
      Bitset.remove_below rest v;
      Array.fill scratch 0 k 0;
      Bitset.iter (fun u -> scratch.(label_id.(u)) <- scratch.(label_id.(u)) + 1) rest;
      let reach = ref 0 in
      for l = 0 to k - 1 do
        reach := !reach + min (cap - used.(l)) scratch.(l)
      done;
      !reach >= need && Indep.mis_within g rest >= need
    in
    let rec dfs v allowed count chosen =
      if count = q then Some (List.rev chosen)
      else if v >= n || not (feasible v allowed (q - count)) then None
      else if not (Bitset.mem allowed v) || used.(label_id.(v)) >= cap then
        dfs (v + 1) allowed count chosen
      else begin
        let l = label_id.(v) in
        let with_v = Bitset.copy allowed in
        Bitset.remove with_v v;
        Bitset.diff_into with_v (Graph.neighbor_set g v);
        used.(l) <- used.(l) + 1;
        match dfs (v + 1) with_v (count + 1) (v :: chosen) with
        | Some _ as r -> r
        | None ->
          used.(l) <- used.(l) - 1;
          let without = Bitset.copy allowed in
          Bitset.remove without v;
          dfs (v + 1) without count chosen
      end
    in
    dfs 0 (Bitset.of_list n (Graph.vertices g)) 0 []
  end

let select t ~graph ~q ~weight ~cepoch ~epoch =
  match t with
  | Lex_first -> Indep.lex_first_independent_set graph q
  | Seeded_lottery { seed } ->
    first_in_order graph q (lottery_order ~seed ~cepoch ~epoch ~weight (Graph.n graph))
  | Diversity_capped { topology; cap } -> diversity_select topology cap graph q

let diversity_feasible t ~graph ~q =
  match t with
  | Lex_first | Seeded_lottery _ -> true
  | Diversity_capped { topology; cap } ->
    diversity_select topology cap graph q <> None

let order t ~candidates ~weight ~cepoch ~epoch =
  match t with
  | Lex_first -> candidates
  | Seeded_lottery { seed } ->
    let epoch_stream =
      Prng.substream (Prng.substream (Prng.create seed) cepoch) epoch
    in
    let keyed =
      List.map
        (fun v ->
          let u = Prng.float (Prng.substream epoch_stream v) 1.0 in
          (float_of_int (1 + max 0 (weight v)) *. u, v))
        candidates
    in
    List.map snd (List.sort compare keyed)
  | Diversity_capped { topology; cap } ->
    let n = Topology.n topology in
    let counts = Hashtbl.create 7 in
    let under, over =
      List.partition
        (fun v ->
          if v < 0 || v >= n then true
          else begin
            let l = Topology.label_of topology v in
            let c = Option.value ~default:0 (Hashtbl.find_opt counts l) in
            if c < cap then begin
              Hashtbl.replace counts l (c + 1);
              true
            end
            else false
          end)
        candidates
    in
    under @ over

let to_string = function
  | Lex_first -> "lex"
  | Seeded_lottery { seed } -> Printf.sprintf "lottery:%Ld" seed
  | Diversity_capped { topology; cap } ->
    Printf.sprintf "diverse:%d:%s" cap (Topology.to_string topology)

let of_string s =
  match String.split_on_char ':' s with
  | [ "lex" ] -> Some Lex_first
  | [ "lottery"; seed ] ->
    Option.map (fun seed -> Seeded_lottery { seed }) (Int64.of_string_opt seed)
  | [ "diverse"; cap; topo ] -> (
    match (int_of_string_opt cap, try Some (Topology.of_string topo) with Invalid_argument _ -> None) with
    | Some cap, Some topology when cap > 0 -> Some (Diversity_capped { topology; cap })
    | _ -> None)
  | _ -> None

let pp fmt t = Format.pp_print_string fmt (to_string t)
