(** Pluggable quorum-selection policies over the suspect graph.

    Algorithm 1 pins one rule — the lexicographically first independent
    set of size [q = n - f] — which concentrates quorums on the lowest
    pids and makes them maximally exposed to correlated failures (a region
    partition takes out a prefix-heavy quorum wholesale). A policy is any
    {e deterministic} function of the selection graph and the static
    configuration that picks a size-[q] independent set: determinism is
    what carries the paper's Agreement property, so a policy may depend on
    the (converged, CRDT-merged) suspicion state, the epochs and pinned
    seeds — never on local randomness or execution order.

    Three policies:

    - {!Lex_first} — the paper's rule, the pinned default. Selectors keep
      their incremental fast path and byte-identical fingerprints under
      it.
    - {!Seeded_lottery} — a deterministic lottery: every vertex draws a
      ticket from a {!Qs_stdx.Prng.substream} keyed on
      [(seed, cepoch, epoch)], scaled by a caller-supplied suspicion /
      conviction weight (heavier history ⇒ later in the draw order), and
      the greedy independent-set construction runs in ticket order with
      the same exact feasibility checks as lex-first — so a quorum exists
      iff lex-first would find one, but its composition rotates per epoch
      and drifts away from historically suspected processes.
    - {!Diversity_capped} — lex-first under per-label caps from a
      {!Topology}: no label may hold more than [cap] members of an issued
      quorum, bounding the blast radius of any single region loss. The
      backtracking search is exact over cap-respecting independent sets.

    Policies compose with reconfiguration ({!remap}), survive amnesia
    (they are config, not volatile state) and respect the [--jobs]
    byte-identity contract (pure functions of their inputs). *)

type t =
  | Lex_first
  | Seeded_lottery of { seed : int64 }
  | Diversity_capped of { topology : Topology.t; cap : int }

val default : t
(** {!Lex_first}. *)

val is_default : t -> bool

val validate : t -> n:int -> q:int -> unit
(** Static sanity for a configuration of [n] slots needing size-[q]
    quorums. [Invalid_argument] when a {!Diversity_capped} topology has
    the wrong width, a non-positive cap, or caps that cannot cover [q]
    even on an edgeless graph (sum over labels of [min cap members < q])
    — under which the epoch-aging loop could never terminate. *)

val remap : t -> n:int -> of_new:(int -> int) -> t
(** Carry the policy across a reconfiguration: {!Diversity_capped}
    topologies remap via {!Topology.remap}; the other policies are
    width-independent. *)

val select :
  t ->
  graph:Qs_graph.Graph.t ->
  q:int ->
  weight:(int -> int) ->
  cepoch:int ->
  epoch:int ->
  int list option
(** The policy's size-[q] independent set of [graph], sorted increasing,
    or [None] when the policy cannot issue one. For {!Lex_first} and
    {!Seeded_lottery} [None] is exact: no independent set of size [q]
    exists at all. For {!Diversity_capped} [None] additionally covers
    "none respects the caps" — the caller must consult
    {!diversity_feasible} before treating aging as a cure. [weight v]
    biases the lottery order ([>= 0]; ignored by the other policies). *)

val diversity_feasible : t -> graph:Qs_graph.Graph.t -> q:int -> bool
(** Would {!select} succeed on [graph] for a {!Diversity_capped} policy?
    [graph] here is the {e aging endpoint} — the selection graph as epoch
    aging will eventually leave it (conviction stars only). [true] for the
    other policies. The selector uses this to distinguish "age it out"
    from "the caps are permanently unsatisfiable, fall back". *)

val order :
  t ->
  candidates:int list ->
  weight:(int -> int) ->
  cepoch:int ->
  epoch:int ->
  int list
(** Reorder follower-selection candidates: {!Lex_first} keeps the given
    order; {!Seeded_lottery} sorts by the same weighted ticket draw as
    {!select}; {!Diversity_capped} takes candidates in order while their
    label stays under the cap and defers the overflow to the tail (a
    permutation — never drops anyone, so the caller still fills its
    quorum when the caps are tight). *)

val to_string : t -> string
(** ["lex"], ["lottery:SEED"], ["diverse:CAP:LABELS"] (with
    {!Topology.to_string} labels). *)

val of_string : string -> t option

val pp : Format.formatter -> t -> unit
