module Graph = Qs_graph.Graph
module Indep = Qs_graph.Indep
module Bitset = Qs_stdx.Bitset

(* Within one epoch, matrix cells only grow, so suspect-graph edges only
   appear — components only merge. We maintain the graph and a union-find
   of its components under the matrix's cell-raise notifications, cache the
   exact MIS size per component and recompute only components an edge
   touched. Epoch advances and blits are the only events that can remove
   edges; both trigger a full O(n + nonzero) rebuild. *)

type t = {
  matrix : Suspicion_matrix.t;
  n : int;
  mutable epoch : int;
  mutable g : Graph.t;
  mutable stale : bool;
  mutable generation : int;
  parent : int array;
  rank : int array;
  (* Valid at component roots. [None] at a root means the component is the
     singleton {root} (MIS 1, nothing to compute or store). *)
  members : Bitset.t option array;
  mis_cache : int array; (* per root; -1 = needs recomputation *)
}

let rec find t v =
  let p = t.parent.(v) in
  if p = v then v
  else begin
    let r = find t p in
    t.parent.(v) <- r;
    r
  end

let members_of t r =
  match t.members.(r) with
  | Some m -> m
  | None ->
    let m = Bitset.create t.n in
    Bitset.add m r;
    t.members.(r) <- Some m;
    m

let union t a b =
  let ra = find t a and rb = find t b in
  if ra = rb then
    (* New edge inside an existing component: its MIS can only shrink. *)
    t.mis_cache.(ra) <- -1
  else begin
    let w, l = if t.rank.(ra) >= t.rank.(rb) then (ra, rb) else (rb, ra) in
    if t.rank.(w) = t.rank.(l) then t.rank.(w) <- t.rank.(w) + 1;
    t.parent.(l) <- w;
    let mw = members_of t w in
    (match t.members.(l) with
    | None -> Bitset.add mw l
    | Some ml ->
      Bitset.union_into mw ml;
      t.members.(l) <- None);
    t.mis_cache.(w) <- -1
  end

let rebuild t ~epoch =
  t.epoch <- epoch;
  t.g <- Suspicion_matrix.suspect_graph t.matrix ~epoch;
  for v = 0 to t.n - 1 do
    t.parent.(v) <- v;
    t.rank.(v) <- 0;
    t.members.(v) <- None;
    t.mis_cache.(v) <- -1
  done;
  for v = 0 to t.n - 1 do
    Bitset.iter (fun u -> if u > v then union t v u) (Graph.neighbor_set t.g v)
  done;
  t.stale <- false;
  t.generation <- t.generation + 1

(* Cell-raise hook: an edge joins the current-epoch graph iff its cell is
   stamped at or after the view's epoch. Later-epoch stamps qualify too —
   cells >= e' > e are also >= e. *)
let on_raise t ~suspector ~suspect ~epoch =
  if (not t.stale) && epoch >= t.epoch && not (Graph.has_edge t.g suspector suspect)
  then begin
    Graph.add_edge t.g suspector suspect;
    union t suspector suspect;
    t.generation <- t.generation + 1
  end

let create matrix ~epoch =
  let n = Suspicion_matrix.n matrix in
  let t =
    {
      matrix;
      n;
      epoch;
      g = Graph.create n;
      stale = true;
      generation = 0;
      parent = Array.init n (fun v -> v);
      rank = Array.make n 0;
      members = Array.make n None;
      mis_cache = Array.make n (-1);
    }
  in
  Suspicion_matrix.set_watcher matrix
    ~on_raise:(fun ~suspector ~suspect ~epoch ->
      on_raise t ~suspector ~suspect ~epoch)
    ~on_reset:(fun () -> t.stale <- true);
  rebuild t ~epoch;
  t

let sync t ~epoch = if t.stale || epoch <> t.epoch then rebuild t ~epoch

let in_sync t ~epoch = (not t.stale) && epoch = t.epoch

let generation t = t.generation

let graph t = t.g

let mis_of_root t r =
  match t.members.(r) with
  | None -> 1
  | Some m ->
    if t.mis_cache.(r) >= 0 then t.mis_cache.(r)
    else begin
      let s = Indep.mis_within t.g m in
      t.mis_cache.(r) <- s;
      s
    end

let mis_total t =
  let total = ref 0 in
  for v = 0 to t.n - 1 do
    if t.parent.(v) = v then total := !total + mis_of_root t v
  done;
  !total

let feasible t target = target <= 0 || mis_total t >= target

(* Lexicographically-first independent set of size [target] — same output
   as [Indep.lex_first_independent_set (graph t) target], but the greedy
   only does exact MIS work on the non-isolated "core": an isolated vertex
   is always includable (it extends any independent set of the remaining
   candidates), so the feasibility check at a core vertex v reduces to
   #(isolated > v) + MIS(core candidates > v, non-adjacent to v). *)
let lex_first t target =
  if target < 0 then invalid_arg "Suspect_view.lex_first: negative size";
  if target > t.n then None
  else if not (feasible t target) then None
  else begin
    let isolated = Array.make t.n false in
    for v = 0 to t.n - 1 do
      isolated.(v) <- Bitset.is_empty (Graph.neighbor_set t.g v)
    done;
    (* isolated_after.(v) = #isolated vertices with index > v *)
    let isolated_after = Array.make (t.n + 1) 0 in
    for v = t.n - 2 downto 0 do
      isolated_after.(v) <- isolated_after.(v + 1) + Bool.to_int isolated.(v + 1)
    done;
    let allowed_core = Bitset.create t.n in
    for v = 0 to t.n - 1 do
      if not isolated.(v) then Bitset.add allowed_core v
    done;
    let chosen = ref [] in
    let need = ref target in
    let v = ref 0 in
    while !need > 0 && !v < t.n do
      if isolated.(!v) then begin
        (* Always feasible: an isolated candidate is adjacent to nothing, so
           it joins whatever the remaining candidates can still provide. *)
        chosen := !v :: !chosen;
        decr need
      end
      else if Bitset.mem allowed_core !v then begin
        let future = Bitset.copy allowed_core in
        Bitset.remove_below future (!v + 1);
        Bitset.diff_into future (Graph.neighbor_set t.g !v);
        let need' = !need - 1 in
        if need' <= 0 || isolated_after.(!v) + Indep.mis_within t.g future >= need'
        then begin
          chosen := !v :: !chosen;
          need := need';
          Bitset.remove allowed_core !v;
          Bitset.diff_into allowed_core (Graph.neighbor_set t.g !v)
        end
        (* else skip: the cursor only moves forward, so leaving !v in
           [allowed_core] is harmless — future sets are restricted to > cursor. *)
      end;
      incr v
    done;
    if !need = 0 then Some (List.rev !chosen) else None
  end
