(** Incrementally-maintained suspect graph and selection pipeline.

    [Suspicion_matrix.suspect_graph] plus a from-scratch independent-set
    search per merged UPDATE is the O(n²)-per-message hot path that stops
    the selectors from scaling past a few dozen processes. This view
    subscribes to the matrix's cell-raise notifications and maintains, for
    a fixed epoch:

    - the suspect graph itself (edges only appear within an epoch — cells
      are monotone, so component structure only coarsens);
    - a union-find of connected components with a cached exact MIS size
      per component, recomputed only for the component an edge touched
      (MIS size is additive across components);
    - a [generation] counter, so callers can tell whether a merge changed
      the current-epoch graph at all and skip re-selection when it did not.

    Epoch advances and [blit]s (snapshot restore, amnesia wipe) can remove
    edges; both mark the view stale and the next {!sync} rebuilds it in
    O(n + nonzero cells).

    The view installs itself as the matrix's watcher: one view per matrix,
    owned by the selector instance. *)

type t

val create : Suspicion_matrix.t -> epoch:int -> t
(** Build the view and install it as the matrix's watcher. *)

val sync : t -> epoch:int -> unit
(** Make the view current for [epoch]: no-op when already in sync, full
    rebuild when stale or on an epoch change. Call before reading. *)

val in_sync : t -> epoch:int -> bool

val generation : t -> int
(** Bumped on every structural change (edge added, rebuild). Equal
    generations around a merge ⇒ the current-epoch graph is unchanged. *)

val graph : t -> Qs_graph.Graph.t
(** The suspect graph at the synced epoch. Read-only: do not mutate. *)

val mis_total : t -> int
(** Exact maximum-independent-set size of {!graph}, from per-component
    caches — only dirty components pay for recomputation. *)

val feasible : t -> int -> bool
(** [feasible t q] ⟺ {!graph} has an independent set of size [q]
    (Algorithm 1 line 27 / Algorithm 2 line 8). *)

val lex_first : t -> int -> Pid.t list option
(** Same result as [Indep.lex_first_independent_set (graph t) target], but
    isolated vertices (the overwhelming majority at large n) are included
    without any MIS computation; exact feasibility checks run only on the
    non-isolated core. *)
