module Bitset = Qs_stdx.Bitset

(* Row storage: one flat row-major Bigarray of native ints (unboxed, no
   write barrier, one bounds check per access) plus, per row, a bitset of
   nonzero columns and a version counter. The bitset makes every whole-row
   scan (merges, graph construction, max_epoch, serialization) cost
   O(words + nonzero cells) instead of O(n); the version counter is the
   delta-gossip layer's change detector — a row whose version a peer has
   already acked is never re-encoded, re-copied or re-shipped. *)

type ba = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type watcher = {
  on_raise : suspector:int -> suspect:int -> epoch:int -> unit;
  on_reset : unit -> unit;
}

type t = {
  size : int;
  cells : ba;
  nonzero : Bitset.t array;
  versions : int array;
  mutable watcher : watcher option;
}

let create size =
  if size <= 0 then invalid_arg "Suspicion_matrix.create";
  let cells = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (size * size) in
  Bigarray.Array1.fill cells 0;
  {
    size;
    cells;
    nonzero = Array.init size (fun _ -> Bitset.create size);
    versions = Array.make size 0;
    watcher = None;
  }

let n t = t.size

let set_watcher t ~on_raise ~on_reset = t.watcher <- Some { on_raise; on_reset }

let clear_watcher t = t.watcher <- None

let copy t =
  let cells = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (t.size * t.size) in
  Bigarray.Array1.blit t.cells cells;
  {
    size = t.size;
    cells;
    nonzero = Array.map Bitset.copy t.nonzero;
    versions = Array.copy t.versions;
    watcher = None; (* a copy is a snapshot: never fire the original's hooks *)
  }

let check t i =
  if i < 0 || i >= t.size then invalid_arg "Suspicion_matrix: index out of range"

let cell t l k = t.cells.{(l * t.size) + k}

(* Every state change funnels through here: cells only ever go up (the
   join-semilattice order), so one code path maintains the nonzero mask,
   bumps the row version and notifies the watcher (the selectors'
   incremental suspect-graph view). *)
let raise_cell t l k v =
  t.cells.{(l * t.size) + k} <- v;
  Bitset.add t.nonzero.(l) k;
  t.versions.(l) <- t.versions.(l) + 1;
  match t.watcher with
  | None -> ()
  | Some w -> w.on_raise ~suspector:l ~suspect:k ~epoch:v

let get t ~suspector ~suspect =
  check t suspector;
  check t suspect;
  cell t suspector suspect

let record t ~suspector ~suspect ~epoch =
  check t suspector;
  check t suspect;
  if suspector = suspect then invalid_arg "Suspicion_matrix.record: self-suspicion";
  if epoch > cell t suspector suspect then raise_cell t suspector suspect epoch

let row t i =
  check t i;
  Array.init t.size (fun k -> cell t i k)

let row_version t i =
  check t i;
  t.versions.(i)

let sparse_row t i =
  check t i;
  let m = Bitset.cardinal t.nonzero.(i) in
  let out = Array.make m (0, 0) in
  let j = ref 0 in
  Bitset.iter
    (fun k ->
      out.(!j) <- (k, cell t i k);
      incr j)
    t.nonzero.(i);
  out

let merge_row t ~owner incoming =
  check t owner;
  if Array.length incoming <> t.size then invalid_arg "Suspicion_matrix.merge_row: bad width";
  let changed = ref false in
  for k = 0 to t.size - 1 do
    if k <> owner && incoming.(k) > cell t owner k then begin
      raise_cell t owner k incoming.(k);
      changed := true
    end
  done;
  !changed

let merge_cells t ~owner cells =
  check t owner;
  let changed = ref false in
  Array.iter
    (fun (k, v) ->
      check t k;
      if v < 0 then invalid_arg "Suspicion_matrix.merge_cells: negative cell";
      if k <> owner && v > cell t owner k then begin
        raise_cell t owner k v;
        changed := true
      end)
    cells;
  !changed

let blit ~src ~dst =
  if src.size <> dst.size then invalid_arg "Suspicion_matrix.blit: size mismatch";
  Bigarray.Array1.blit src.cells dst.cells;
  for l = 0 to src.size - 1 do
    Bitset.clear dst.nonzero.(l);
    Bitset.union_into dst.nonzero.(l) src.nonzero.(l);
    (* A blit may lower cells (snapshot restore); versions stay monotone so
       delta peers re-ship rather than miss the change. *)
    dst.versions.(l) <- dst.versions.(l) + 1
  done;
  match dst.watcher with None -> () | Some w -> w.on_reset ()

let merge t other =
  if t.size <> other.size then invalid_arg "Suspicion_matrix.merge: size mismatch";
  let changed = ref false in
  for l = 0 to t.size - 1 do
    Bitset.iter
      (fun k ->
        let v = cell other l k in
        if k <> l && v > cell t l k then begin
          raise_cell t l k v;
          changed := true
        end)
      other.nonzero.(l)
  done;
  !changed

(* Reconfiguration: carry the surviving cells into a matrix over the new
   slot space. New slot [i] inherits old slot [of_new i]'s row/column;
   fresh slots ([of_new i < 0]) start all-zero, and cells involving a
   removed process are simply not carried (its suspicions die with it).
   Versions restart at the carried rows' content — the result is a new
   matrix identity, so delta peers are reset by the caller, never fooled. *)
let remap t ~n:size ~of_new =
  if size <= 0 then invalid_arg "Suspicion_matrix.remap";
  let r = create size in
  for i = 0 to size - 1 do
    let oi = of_new i in
    if oi >= 0 then begin
      check t oi;
      for j = 0 to size - 1 do
        let oj = of_new j in
        if j <> i && oj >= 0 then begin
          check t oj;
          let v = cell t oi oj in
          if v > 0 then raise_cell r i j v
        end
      done
    end
  done;
  r

let equal a b =
  a.size = b.size
  && Array.for_all2 Bitset.equal a.nonzero b.nonzero
  &&
  let ok = ref true in
  for l = 0 to a.size - 1 do
    Bitset.iter (fun k -> if cell a l k <> cell b l k then ok := false) a.nonzero.(l)
  done;
  !ok

let iter_nonzero t f =
  for l = 0 to t.size - 1 do
    Bitset.iter (fun k -> f ~suspector:l ~suspect:k ~epoch:(cell t l k)) t.nonzero.(l)
  done

let suspect_graph t ~epoch =
  let g = Qs_graph.Graph.create t.size in
  for l = 0 to t.size - 1 do
    Bitset.iter
      (fun k -> if cell t l k >= epoch then Qs_graph.Graph.add_edge g l k)
      t.nonzero.(l)
  done;
  g

let max_epoch t =
  let best = ref 0 in
  for l = 0 to t.size - 1 do
    Bitset.iter (fun k -> if cell t l k > !best then best := cell t l k) t.nonzero.(l)
  done;
  !best

let to_rows t = Array.init t.size (fun l -> row t l)

let of_rows rows =
  let size = Array.length rows in
  if size = 0 then invalid_arg "Suspicion_matrix.of_rows: empty";
  Array.iter
    (fun r ->
      if Array.length r <> size then
        invalid_arg "Suspicion_matrix.of_rows: not square")
    rows;
  for l = 0 to size - 1 do
    for k = 0 to size - 1 do
      if rows.(l).(k) < 0 then invalid_arg "Suspicion_matrix.of_rows: negative cell";
      if l = k && rows.(l).(k) <> 0 then
        invalid_arg "Suspicion_matrix.of_rows: self-suspicion"
    done
  done;
  let t = create size in
  for l = 0 to size - 1 do
    for k = 0 to size - 1 do
      if rows.(l).(k) > 0 then raise_cell t l k rows.(l).(k)
    done
  done;
  t

let pp ppf t =
  for l = 0 to t.size - 1 do
    Format.fprintf ppf "@[<h>%a: %a@]@."
      Pid.pp l
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
         Format.pp_print_int)
      (Array.to_list (row t l))
  done
