type t = { size : int; cells : int array array }

let create size =
  if size <= 0 then invalid_arg "Suspicion_matrix.create";
  { size; cells = Array.make_matrix size size 0 }

let n t = t.size

let copy t = { size = t.size; cells = Array.map Array.copy t.cells }

let equal a b = a.size = b.size && a.cells = b.cells

let check t i =
  if i < 0 || i >= t.size then invalid_arg "Suspicion_matrix: index out of range"

let get t ~suspector ~suspect =
  check t suspector;
  check t suspect;
  t.cells.(suspector).(suspect)

let record t ~suspector ~suspect ~epoch =
  check t suspector;
  check t suspect;
  if suspector = suspect then invalid_arg "Suspicion_matrix.record: self-suspicion";
  if epoch > t.cells.(suspector).(suspect) then t.cells.(suspector).(suspect) <- epoch

let row t i =
  check t i;
  Array.copy t.cells.(i)

let merge_row t ~owner incoming =
  check t owner;
  if Array.length incoming <> t.size then invalid_arg "Suspicion_matrix.merge_row: bad width";
  let changed = ref false in
  for k = 0 to t.size - 1 do
    if k <> owner && incoming.(k) > t.cells.(owner).(k) then begin
      t.cells.(owner).(k) <- incoming.(k);
      changed := true
    end
  done;
  !changed

let blit ~src ~dst =
  if src.size <> dst.size then invalid_arg "Suspicion_matrix.blit: size mismatch";
  for l = 0 to src.size - 1 do
    Array.blit src.cells.(l) 0 dst.cells.(l) 0 src.size
  done

let merge t other =
  if t.size <> other.size then invalid_arg "Suspicion_matrix.merge: size mismatch";
  let changed = ref false in
  for l = 0 to t.size - 1 do
    if merge_row t ~owner:l other.cells.(l) then changed := true
  done;
  !changed

let suspect_graph t ~epoch =
  let g = Qs_graph.Graph.create t.size in
  for l = 0 to t.size - 1 do
    for k = l + 1 to t.size - 1 do
      if t.cells.(l).(k) >= epoch || t.cells.(k).(l) >= epoch then
        Qs_graph.Graph.add_edge g l k
    done
  done;
  g

let max_epoch t =
  Array.fold_left (fun acc r -> Array.fold_left max acc r) 0 t.cells

let to_rows t = Array.map Array.copy t.cells

let of_rows rows =
  let size = Array.length rows in
  if size = 0 then invalid_arg "Suspicion_matrix.of_rows: empty";
  Array.iter
    (fun r ->
      if Array.length r <> size then
        invalid_arg "Suspicion_matrix.of_rows: not square")
    rows;
  for l = 0 to size - 1 do
    for k = 0 to size - 1 do
      if rows.(l).(k) < 0 then invalid_arg "Suspicion_matrix.of_rows: negative cell";
      if l = k && rows.(l).(k) <> 0 then
        invalid_arg "Suspicion_matrix.of_rows: self-suspicion"
    done
  done;
  { size; cells = Array.map Array.copy rows }

let pp ppf t =
  for l = 0 to t.size - 1 do
    Format.fprintf ppf "@[<h>%a: %a@]@."
      Pid.pp l
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
         Format.pp_print_int)
      (Array.to_list t.cells.(l))
  done
