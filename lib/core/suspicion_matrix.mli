(** The eventually-consistent [suspected] matrix (paper, Section VI-A).

    [get ~suspector:l ~suspect:k] is the last epoch in which [l] suspected
    [k] (0 = never). Rows are merged with pointwise max, making the matrix a
    join-semilattice: merges commute, associate and are idempotent, so
    correct processes converge to the same state regardless of message
    order — the paper's "eventual consistent shared data structure".

    Rows are backed by a flat Bigarray with per-row nonzero bitsets and
    monotone version counters, so sparse scans cost O(nonzero) and the
    delta-gossip layer can detect changed rows without copying them. *)

type t

val create : int -> t
(** All-zero [n × n] matrix. *)

val n : t -> int

val copy : t -> t

val equal : t -> t -> bool

val get : t -> suspector:int -> suspect:int -> int

val record : t -> suspector:int -> suspect:int -> epoch:int -> unit
(** Max-merge a single cell ([record] never lowers a value). Recording a
    self-suspicion is rejected with [Invalid_argument]. *)

val row : t -> int -> int array
(** Copy of a row — what an UPDATE message carries. *)

val row_version : t -> int -> int
(** Monotone per-row change counter: bumped on every cell raise in that row
    (and on {!blit}). Equal versions ⇒ a peer that acked this version has
    seen every cell of the row; comparing versions is how the delta layer
    skips unchanged rows without allocating. *)

val sparse_row : t -> int -> (int * int) array
(** [(suspect, epoch)] pairs for the nonzero cells of a row, in increasing
    suspect order — what a delta-gossip row carries. O(nonzero). *)

val merge_cells : t -> owner:int -> (int * int) array -> bool
(** Max-merge individual [(suspect, epoch)] cells into [owner]'s row — the
    receiving end of {!sparse_row}. Returns [true] iff any cell changed.
    Same join as {!merge_row}: diagonal cells are ignored, values never
    decrease. [Invalid_argument] on out-of-range suspect or negative
    epoch. *)

val merge_row : t -> owner:int -> int array -> bool
(** Pointwise max of [owner]'s row with the given vector. Returns [true] iff
    any cell changed (Algorithm 1, lines 17–21). *)

val merge : t -> t -> bool
(** Whole-matrix max-merge; [true] iff the target changed. *)

val remap : t -> n:int -> of_new:(int -> int) -> t
(** [remap t ~n ~of_new] is a fresh [n × n] matrix where cell [(i, j)]
    carries old cell [(of_new i, of_new j)]; a slot with [of_new i < 0] is
    fresh (all-zero row and column), and cells of removed processes are not
    carried. Grow for joins, compacting remap for leaves/ejections. The
    result is a new matrix identity: no watcher, fresh version counters —
    reconfiguring callers must rebuild incremental views and reset delta
    peers. *)

val blit : src:t -> dst:t -> unit
(** Overwrite [dst] with [src]'s cells (same size required) — {e not} a
    merge: cells may go down. Restoring a model-checker snapshot is the one
    place this is legitimate. *)

val set_watcher :
  t ->
  on_raise:(suspector:int -> suspect:int -> epoch:int -> unit) ->
  on_reset:(unit -> unit) ->
  unit
(** Install change hooks: [on_raise] fires after every individual cell
    increase (through any of [record]/[merge_row]/[merge_cells]/[merge]),
    [on_reset] after a {!blit} (the one operation that can lower cells, so
    incremental consumers must rebuild). At most one watcher; {!copy}
    never inherits it. *)

val clear_watcher : t -> unit

val iter_nonzero :
  t -> (suspector:int -> suspect:int -> epoch:int -> unit) -> unit
(** Visit every nonzero cell, row-major. O(words + nonzero). *)

val suspect_graph : t -> epoch:int -> Qs_graph.Graph.t
(** Edge [(l,k)] iff [l] suspected [k] or [k] suspected [l] in [epoch] or
    later (Section VI-B). *)

val max_epoch : t -> int
(** Largest recorded cell. *)

val to_rows : t -> int array array
(** Copy of all cells, row-major — the serialization entry point used by
    {!Qs_recovery}'s codec. *)

val of_rows : int array array -> t
(** Rebuild a matrix from {!to_rows} output. [Invalid_argument] if the
    array is empty, not square, has a negative cell or a non-zero
    diagonal (a self-suspicion can never have been recorded). *)

val pp : Format.formatter -> t -> unit
