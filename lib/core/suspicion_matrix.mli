(** The eventually-consistent [suspected] matrix (paper, Section VI-A).

    [get ~suspector:l ~suspect:k] is the last epoch in which [l] suspected
    [k] (0 = never). Rows are merged with pointwise max, making the matrix a
    join-semilattice: merges commute, associate and are idempotent, so
    correct processes converge to the same state regardless of message
    order — the paper's "eventual consistent shared data structure". *)

type t

val create : int -> t
(** All-zero [n × n] matrix. *)

val n : t -> int

val copy : t -> t

val equal : t -> t -> bool

val get : t -> suspector:int -> suspect:int -> int

val record : t -> suspector:int -> suspect:int -> epoch:int -> unit
(** Max-merge a single cell ([record] never lowers a value). Recording a
    self-suspicion is rejected with [Invalid_argument]. *)

val row : t -> int -> int array
(** Copy of a row — what an UPDATE message carries. *)

val merge_row : t -> owner:int -> int array -> bool
(** Pointwise max of [owner]'s row with the given vector. Returns [true] iff
    any cell changed (Algorithm 1, lines 17–21). *)

val merge : t -> t -> bool
(** Whole-matrix max-merge; [true] iff the target changed. *)

val blit : src:t -> dst:t -> unit
(** Overwrite [dst] with [src]'s cells (same size required) — {e not} a
    merge: cells may go down. Restoring a model-checker snapshot is the one
    place this is legitimate. *)

val suspect_graph : t -> epoch:int -> Qs_graph.Graph.t
(** Edge [(l,k)] iff [l] suspected [k] or [k] suspected [l] in [epoch] or
    later (Section VI-B). *)

val max_epoch : t -> int
(** Largest recorded cell. *)

val to_rows : t -> int array array
(** Copy of all cells, row-major — the serialization entry point used by
    {!Qs_recovery}'s codec. *)

val of_rows : int array array -> t
(** Rebuild a matrix from {!to_rows} output. [Invalid_argument] if the
    array is empty, not square, has a negative cell or a non-zero
    diagonal (a self-suspicion can never have been recorded). *)

val pp : Format.formatter -> t -> unit
