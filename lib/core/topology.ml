type t = { slots : string array }

let check_label l =
  if l = "" then invalid_arg "Topology: empty label";
  String.iter
    (fun c ->
      if c = ',' || c = ';' then invalid_arg "Topology: label contains a reserved character")
    l

let of_array slots =
  if Array.length slots = 0 then invalid_arg "Topology.of_array: empty";
  Array.iter check_label slots;
  { slots = Array.copy slots }

let of_list slots = of_array (Array.of_list slots)

let round_robin ~n labels =
  if n <= 0 then invalid_arg "Topology.round_robin: n must be positive";
  let ls = Array.of_list labels in
  let k = Array.length ls in
  if k = 0 then invalid_arg "Topology.round_robin: no labels";
  Array.iter check_label ls;
  { slots = Array.init n (fun i -> ls.(i mod k)) }

let blocks ~n labels =
  if n <= 0 then invalid_arg "Topology.blocks: n must be positive";
  let ls = Array.of_list labels in
  let k = Array.length ls in
  if k = 0 then invalid_arg "Topology.blocks: no labels";
  Array.iter check_label ls;
  let base = n / k and extra = n mod k in
  let slots = Array.make n ls.(0) in
  let i = ref 0 in
  Array.iteri
    (fun j l ->
      let width = base + if j < extra then 1 else 0 in
      for _ = 1 to width do
        if !i < n then begin
          slots.(!i) <- l;
          incr i
        end
      done)
    ls;
  { slots }

let n t = Array.length t.slots

let label_of t i =
  if i < 0 || i >= Array.length t.slots then invalid_arg "Topology.label_of: out of range";
  t.slots.(i)

let labels t =
  Array.fold_left (fun acc l -> if List.mem l acc then acc else l :: acc) [] t.slots
  |> List.rev

let members t l =
  let out = ref [] in
  Array.iteri (fun i l' -> if l' = l then out := i :: !out) t.slots;
  List.rev !out

let counts t = List.map (fun l -> (l, List.length (members t l))) (labels t)

let remap t ~n:n' ~of_new =
  if n' <= 0 then invalid_arg "Topology.remap: n must be positive";
  let old_n = Array.length t.slots in
  let slots = Array.make n' "" in
  let fresh = ref [] in
  for i = 0 to n' - 1 do
    let o = of_new i in
    if o >= old_n then invalid_arg "Topology.remap: of_new out of range";
    if o >= 0 then slots.(i) <- t.slots.(o) else fresh := i :: !fresh
  done;
  (* Fresh slots go to the least-populated label so far: the same
     deterministic placement on every process keeps topologies in
     agreement across a reconfiguration. *)
  let order = labels t in
  List.iter
    (fun i ->
      let count l = Array.fold_left (fun a l' -> if l' = l then a + 1 else a) 0 slots in
      let best =
        List.fold_left
          (fun acc l ->
            match acc with
            | None -> Some (l, count l)
            | Some (_, c) when count l < c -> Some (l, count l)
            | some -> some)
          None order
      in
      match best with
      | Some (l, _) -> slots.(i) <- l
      | None -> invalid_arg "Topology.remap: no labels"
    )
    (List.rev !fresh);
  { slots }

let equal a b = a.slots = b.slots

let to_string t = String.concat "," (Array.to_list t.slots)

let of_string s =
  if s = "" then invalid_arg "Topology.of_string: empty";
  of_list (String.split_on_char ',' s)

let pp fmt t = Format.pp_print_string fmt (to_string t)
