(** Failure-correlation labels for the process universe.

    Real deployments fail in correlated blocks: a region partition or a
    rack loss takes out every process sharing the label, not an arbitrary
    [f]-subset. A topology attaches one label (region / zone / rack — the
    granularity is the caller's) to every slot of the current
    configuration, so selection policies can spread quorums across labels
    and the fault DSL can target a label's whole member set.

    A topology is immutable config, not protocol state: every correct
    process must hold the same one (it feeds deterministic selection), and
    reconfiguration derives the successor topology with the same
    deterministic rule on every process. *)

type t

val of_array : string array -> t
(** One label per slot. [Invalid_argument] on an empty array or an empty
    or [','/';']-containing label (reserved by {!to_string}). *)

val of_list : string list -> t

val round_robin : n:int -> string list -> t
(** Slot [i] gets label [i mod k] of the [k] given labels — balanced
    interleaved placement. [Invalid_argument] if [n <= 0] or no labels. *)

val blocks : n:int -> string list -> t
(** Contiguous balanced blocks: the first [n mod k] labels get
    [ceil(n/k)] consecutive slots, the rest [floor(n/k)] — the shape of a
    rack-ordered inventory. *)

val n : t -> int

val label_of : t -> int -> string
(** [Invalid_argument] out of range. *)

val labels : t -> string list
(** Distinct labels in first-appearance order. *)

val members : t -> string -> int list
(** Slots carrying the label, increasing. Empty for an unknown label. *)

val counts : t -> (string * int) list
(** [(label, member count)], in {!labels} order. *)

val remap : t -> n:int -> of_new:(int -> int) -> t
(** Carry labels into a new configuration: new slot [i] inherits the label
    of old slot [of_new i]; a fresh slot ([of_new i < 0]) is placed in the
    least-populated label of the new topology so far (ties broken by
    {!labels} order) — a deterministic rule, so every process derives the
    same successor topology from the same reconfiguration. Fresh slots are
    assigned in increasing slot order. *)

val equal : t -> t -> bool

val to_string : t -> string
(** Per-slot labels joined with [','] — e.g. ["r0,r0,r1,r1"]. *)

val of_string : string -> t
(** Inverse of {!to_string}. [Invalid_argument] on empty input or empty
    labels. *)

val pp : Format.formatter -> t -> unit
