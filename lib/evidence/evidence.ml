module Auth = Qs_crypto.Auth
module Msg = Qs_core.Msg
module Pid = Qs_core.Pid
module Journal = Qs_obs.Journal
module Metrics = Qs_obs.Metrics

type proof = { culprit : Pid.t; first : Msg.t; second : Msg.t }

let incomparable a b =
  if Array.length a <> Array.length b then true
  else begin
    let lt = ref false and gt = ref false in
    Array.iteri
      (fun i v ->
        if v < b.(i) then lt := true;
        if v > b.(i) then gt := true)
      a;
    !lt && !gt
  end

let check_proof auth p =
  p.first.Msg.update.Msg.owner = p.culprit
  && p.second.Msg.update.Msg.owner = p.culprit
  && Msg.verify auth p.first
  && Msg.verify auth p.second
  && incomparable p.first.Msg.update.Msg.row p.second.Msg.update.Msg.row

let proof_to_string p =
  Format.asprintf "proof[%a equivocated: %a vs %a]" Pid.pp p.culprit Msg.pp p.first
    Msg.pp p.second

type t = {
  auth : Auth.t;
  me : int;
  n : int;
  retained : Msg.t option array; (* per owner: the pointwise-max frame seen *)
  excluded : bool array;
  quarantine : bool array;
  mutable admitted : proof list; (* first-admitted first *)
  mutable forged : int;
  mutable on_exclude : Pid.t -> unit;
  m_proofs : Metrics.counter;
  m_forgeries : Metrics.counter;
  m_excluded : Metrics.counter;
}

let create ~auth ~me ~n =
  {
    auth;
    me;
    n;
    retained = Array.make n None;
    excluded = Array.make n false;
    quarantine = Array.make n false;
    admitted = [];
    forged = 0;
    on_exclude = ignore;
    m_proofs = Metrics.counter "evidence_proofs_total";
    m_forgeries = Metrics.counter "evidence_forgeries_total";
    m_excluded = Metrics.counter "evidence_excluded_total";
  }

let set_on_exclude t f = t.on_exclude <- f

let exclude t p =
  if not t.excluded.(p) then begin
    t.excluded.(p) <- true;
    Metrics.inc t.m_excluded;
    t.on_exclude p
  end

type verdict = Ok | Forged | Proof of proof

(* Dominance order on retained frames: a correct owner only ever grows its
   row, so the newest frame dominates and is the only one worth keeping.
   Keeping a single maximal frame makes detection best-effort (a variant
   absorbed between two comparable frames can slip by) but every proof it
   does produce is sound — which is the side exclusion rides on. *)
let record_frame t frame =
  let owner = frame.Msg.update.Msg.owner in
  match t.retained.(owner) with
  | None ->
    t.retained.(owner) <- Some frame;
    Ok
  | Some kept ->
    let old_row = kept.Msg.update.Msg.row and new_row = frame.Msg.update.Msg.row in
    if incomparable old_row new_row then begin
      let p = { culprit = owner; first = kept; second = frame } in
      t.admitted <- t.admitted @ [ p ];
      Metrics.inc t.m_proofs;
      if Journal.live () then
        Journal.record (Journal.Proof_found { by = t.me; culprit = owner });
      exclude t owner;
      Proof p
    end
    else begin
      (* Comparable: keep the larger; the smaller is stale (or a replay). *)
      let grows = Array.exists Fun.id (Array.mapi (fun i v -> v > old_row.(i)) new_row) in
      if grows then t.retained.(owner) <- Some frame;
      Ok
    end

let observe t ~src frame =
  if not (Msg.verify t.auth frame) then begin
    t.forged <- t.forged + 1;
    Metrics.inc t.m_forgeries;
    t.quarantine.(src) <- true;
    if Journal.live () then
      Journal.record
        (Journal.Forgery_rejected
           { by = t.me; channel = src; claimed = frame.Msg.update.Msg.owner });
    Forged
  end
  else if t.excluded.(frame.Msg.update.Msg.owner) then Ok (* already convicted *)
  else record_frame t frame

let known t p =
  List.exists
    (fun q ->
      q.culprit = p.culprit
      (* Same culprit is enough: one conviction is permanent, extra proofs
         against the same process add nothing. *))
    t.admitted

let admit t p =
  if known t p then false
  else if not (check_proof t.auth p) then false
  else begin
    t.admitted <- t.admitted @ [ p ];
    Metrics.inc t.m_proofs;
    if Journal.live () then
      Journal.record (Journal.Proof_admitted { by = t.me; culprit = p.culprit });
    exclude t p.culprit;
    true
  end

let excluded t =
  List.filter (fun p -> t.excluded.(p)) (List.init t.n Fun.id)

let is_excluded t p = p >= 0 && p < t.n && t.excluded.(p)

let quarantined t = List.filter (fun p -> t.quarantine.(p)) (List.init t.n Fun.id)

let proofs t = t.admitted

let forgeries t = t.forged
