(** Signed-evidence store: proofs of misbehavior and permanent exclusion.

    The paper's detector turns {e omissions} into ◇-suspicions that age out
    of the quorum (Algorithm 1); commission faults admit something stronger.
    Because every suspicion row travels signed ({!Qs_core.Msg}), a process
    that equivocates — sends two conflicting rows for the same epoch-stamped
    state — hands its peers a {e transferable proof}: both frames verify
    under its own key, and no correct process can ever produce such a pair
    (a correct owner's rows grow monotonically, so any two of them are
    pointwise comparable). A proof can be gossiped and re-checked by anyone
    holding the key directory, and justifies {e permanent} exclusion from
    every future quorum — no aging, no retry budget.

    Forgeries are the asymmetric case: a frame whose tag fails
    {!Qs_crypto.Auth.verify} proves only that {e someone on the channel it
    arrived by} misbehaved — the claimed signer is innocent (that is the
    whole point of "cannot forge", Section IV). Forgeries therefore
    quarantine the channel peer locally and are {e never} transferable.

    Each process runs one store; the harness feeds it every suspicion row
    the process receives ({!observe}) and broadcasts any returned proof to
    the other stores ({!admit}). Journal events: [Proof_found],
    [Proof_admitted], [Forgery_rejected]. *)

module Msg := Qs_core.Msg

type proof = {
  culprit : Qs_core.Pid.t;
  first : Msg.t;
  second : Msg.t;  (** Two validly-signed, pointwise-incomparable rows. *)
}

val incomparable : int array -> int array -> bool
(** Neither row pointwise-dominates the other (or the lengths differ —
    malformed counts as conflicting). A correct process's row sequence is
    totally ordered, so incomparability convicts the signer. *)

val check_proof : Qs_crypto.Auth.t -> proof -> bool
(** Self-contained verification a gossip receiver runs before admitting:
    both frames verify under [culprit]'s key, both rows are owned by
    [culprit], and the rows are {!incomparable}. *)

val proof_to_string : proof -> string

type t

val create : auth:Qs_crypto.Auth.t -> me:int -> n:int -> t

type verdict =
  | Ok  (** Recorded (or stale/duplicate — absorbed). *)
  | Forged  (** Bad tag: channel quarantined, journaled, not recorded. *)
  | Proof of proof
      (** The frame conflicts with a retained one: transferable proof,
          already admitted locally. Broadcast it to the other stores. *)

val observe : t -> src:int -> Msg.t -> verdict
(** Feed one received suspicion row; [src] is the network-level sender (the
    channel), which for forwarded rows may differ from the frame's owner. *)

val admit : t -> proof -> bool
(** Verify a gossiped proof and, when valid and new, permanently exclude the
    culprit ([false] on invalid or already-known). Idempotent. *)

val excluded : t -> Qs_core.Pid.t list
(** Proven-guilty processes, sorted. Feed {!Qs_core.Quorum_select.exclude}
    / {!Qs_follower.Follower_select.exclude}. *)

val is_excluded : t -> Qs_core.Pid.t -> bool

val quarantined : t -> Qs_core.Pid.t list
(** Channels that delivered at least one forged frame (local-only blame). *)

val proofs : t -> proof list
(** Admitted proofs, first-admitted first. *)

val forgeries : t -> int
(** Forged frames rejected so far. *)

val set_on_exclude : t -> (Qs_core.Pid.t -> unit) -> unit
(** Called exactly once per newly-excluded culprit (local find or admitted
    gossip) — the harness wires this to the process's quorum selector. *)
