module Prng = Qs_stdx.Prng
module Json = Qs_obs.Json

type exec_outcome = {
  violations : Monitor.violation list;
  liveness : string list;
  committed : int;
  submitted : int;
  checks : int;
  proofs : int;
  forgeries : int;
  reconfigs : int;
  isect_pairs : int;
  isect_min_overlap : int option;
}

let failed o = o.violations <> [] || o.liveness <> []

type run = {
  index : int;
  run_seed : int;
  schedule : Fault.schedule;
  model : Fault.model;
  outcome : exec_outcome;
}

type report = {
  seed : int;
  runs : run list;
  first_failure : run option;
  minimal : run option;
  shrink_steps : int;
}

let ok report = report.first_failure = None

(* Greedy shrinking, generic in the thing being shrunk: repeatedly try each
   candidate reduction in order, keep the first that still fails, recurse.
   The result is locally minimal — no single candidate reduction of it still
   fails. Used below for fault schedules (one-phase-removed variants) and by
   the model checker for choice schedules (one-choice-removed variants). *)
let greedy_shrink ~candidates ~still_fails x =
  let steps = ref 0 in
  let rec go x =
    match
      List.find_map
        (fun c ->
          incr steps;
          if still_fails c then Some c else None)
        (candidates x)
    with
    | Some c -> go c
    | None -> x
  in
  let minimal = go x in
  (minimal, !steps)

(* Fault-schedule instantiation: every one-phase-removed variant, re-executed
   with the same run seed. *)
let shrink ~classify ~execute ~run_seed schedule outcome =
  let last = ref outcome in
  let minimal, steps =
    greedy_shrink ~candidates:Fault.remove_each
      ~still_fails:(fun candidate ->
        let o = execute ~seed:run_seed ~model:(classify candidate) candidate in
        if failed o then begin
          last := o;
          true
        end
        else false)
      schedule
  in
  (minimal, !last, steps)

let run_seq ~seed ~runs ~gen ~classify ~execute =
  let rng = Prng.of_int seed in
  let results = ref [] in
  let first_failure = ref None in
  let minimal = ref None in
  let shrink_steps = ref 0 in
  (try
     for index = 0 to runs - 1 do
       let schedule = gen rng in
       let run_seed = (seed * 1_000_003) + index in
       let model = classify schedule in
       let outcome = execute ~seed:run_seed ~model schedule in
       let r = { index; run_seed; schedule; model; outcome } in
       results := r :: !results;
       if failed outcome && !first_failure = None then begin
         first_failure := Some r;
         let m, mo, steps = shrink ~classify ~execute ~run_seed schedule outcome in
         shrink_steps := steps;
         minimal :=
           Some { index; run_seed; schedule = m; model = classify m; outcome = mo };
         raise Exit
       end
     done
   with Exit -> ());
  {
    seed;
    runs = List.rev !results;
    first_failure = !first_failure;
    minimal = !minimal;
    shrink_steps = !shrink_steps;
  }

(* Parallel engine. Determinism argument, mirroring Shard.random:
   - Schedules are pre-drawn from the single generator rng in index order,
     so run [i]'s schedule and per-run seed are exactly the sequential
     engine's, independent of worker scheduling.
   - [best] holds the lowest failing index executed so far; a worker only
     skips index [i] when some executed failing index sits strictly below
     it. Hence every index up to the final first-failure index w is
     executed — a skip of i <= w would need a failing index below w — the
     truncated run list [0..w] is complete, and runs beyond w, which the
     sequential engine never executes, are discarded unseen.
   - The shrink replays on the calling domain from (run_seed, schedule),
     both partition-independent. *)
let run_par ~jobs ~seed ~runs ~gen ~classify ~execute =
  let rng = Prng.of_int seed in
  let scheds = Array.make runs [] in
  for i = 0 to runs - 1 do
    scheds.(i) <- gen rng
  done;
  let outcomes = Array.make runs None in
  let next = Atomic.make 0 in
  let best = Atomic.make max_int in
  let rec lower i =
    let b = Atomic.get best in
    if i < b && not (Atomic.compare_and_set best b i) then lower i
  in
  let worker _k =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < runs then begin
        if i <= Atomic.get best then begin
          let schedule = scheds.(i) in
          let run_seed = (seed * 1_000_003) + i in
          let model = classify schedule in
          let outcome = execute ~seed:run_seed ~model schedule in
          outcomes.(i) <- Some { index = i; run_seed; schedule; model; outcome };
          if failed outcome then lower i
        end;
        loop ()
      end
    in
    loop ()
  in
  ignore (Qs_stdx.Domainpool.run ~jobs:(max 1 (min jobs runs)) worker);
  let first_failure =
    let rec find i =
      if i >= runs then None
      else
        match outcomes.(i) with
        | Some r when failed r.outcome -> Some r
        | _ -> find (i + 1)
    in
    find 0
  in
  let upto = match first_failure with Some r -> r.index | None -> runs - 1 in
  let results =
    List.filter_map (fun i -> outcomes.(i)) (List.init (upto + 1) Fun.id)
  in
  let minimal, shrink_steps =
    match first_failure with
    | None -> (None, 0)
    | Some r ->
      let m, mo, steps =
        shrink ~classify ~execute ~run_seed:r.run_seed r.schedule r.outcome
      in
      ( Some
          {
            index = r.index;
            run_seed = r.run_seed;
            schedule = m;
            model = classify m;
            outcome = mo;
          },
        steps )
  in
  { seed; runs = results; first_failure; minimal; shrink_steps }

let run ?(jobs = 1) ~seed ~runs ~gen ~classify ~execute () =
  if jobs <= 1 then run_seq ~seed ~runs ~gen ~classify ~execute
  else run_par ~jobs ~seed ~runs ~gen ~classify ~execute

(* ------------------------------------------------------------------ *)
(* Reporting *)

let model_to_string = function
  | Fault.In_model { faulty } ->
    Printf.sprintf "in-model (faulty {%s})"
      (String.concat "," (List.map string_of_int faulty))
  | Fault.Out_of_model why -> Printf.sprintf "out-of-model (%s)" why

let run_to_string r =
  let o = r.outcome in
  let status =
    if failed o then "FAIL"
    else "ok  "
  in
  let evidence =
    if o.proofs = 0 && o.forgeries = 0 then ""
    else Printf.sprintf ", %d proofs, %d forgeries" o.proofs o.forgeries
  in
  Printf.sprintf "  run %2d seed %-10d %s %d/%d committed, %d checks%s, %s\n    %s"
    r.index r.run_seed status o.committed o.submitted o.checks evidence
    (model_to_string r.model)
    (Fault.to_string r.schedule)

let render report =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "campaign seed %d: %d runs, %s\n" report.seed
       (List.length report.runs)
       (if ok report then "all invariants held" else "FAILURES"));
  List.iter
    (fun r ->
      Buffer.add_string b (run_to_string r);
      Buffer.add_char b '\n')
    report.runs;
  (match report.first_failure with
   | None -> ()
   | Some r ->
     Buffer.add_string b
       (Printf.sprintf "first failure (run %d, seed %d):\n" r.index r.run_seed);
     List.iter
       (fun v -> Buffer.add_string b ("  " ^ Monitor.violation_to_string v ^ "\n"))
       r.outcome.violations;
     List.iter (fun l -> Buffer.add_string b ("  liveness: " ^ l ^ "\n")) r.outcome.liveness);
  (match report.minimal with
   | None -> ()
   | Some r ->
     Buffer.add_string b
       (Printf.sprintf "minimal failing schedule (%d shrink attempts, %d phases):\n  %s\n"
          report.shrink_steps (List.length r.schedule) (Fault.to_string r.schedule)));
  Buffer.contents b

let outcome_to_json o =
  Json.Obj
    ([
      ("violations", Json.List (List.map Monitor.violation_to_json o.violations));
      ("liveness_failures", Json.List (List.map (fun l -> Json.String l) o.liveness));
      ("committed", Json.Int o.committed);
      ("submitted", Json.Int o.submitted);
      ("checks", Json.Int o.checks);
      ("proofs", Json.Int o.proofs);
      ("forgeries", Json.Int o.forgeries);
      ("reconfigs", Json.Int o.reconfigs);
      ("isect_pairs", Json.Int o.isect_pairs);
    ]
    @
    match o.isect_min_overlap with
    | None -> []
    | Some m -> [ ("isect_min_overlap", Json.Int m) ])

let run_to_json r =
  Json.Obj
    [
      ("index", Json.Int r.index);
      ("seed", Json.Int r.run_seed);
      ( "model",
        Json.String
          (match r.model with
           | Fault.In_model _ -> "in-model"
           | Fault.Out_of_model _ -> "out-of-model") );
      ("schedule", Fault.to_json r.schedule);
      ("outcome", outcome_to_json r.outcome);
    ]

let to_json report =
  Json.Obj
    ([
       ("seed", Json.Int report.seed);
       ("ok", Json.Bool (ok report));
       ("runs", Json.List (List.map run_to_json report.runs));
     ]
    @ (match report.first_failure with
       | None -> []
       | Some r -> [ ("first_failure", run_to_json r) ])
    @
    match report.minimal with
    | None -> []
    | Some r ->
      [ ("minimal", run_to_json r); ("shrink_steps", Json.Int report.shrink_steps) ])
