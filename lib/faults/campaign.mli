(** Reproducible chaos campaigns.

    A campaign derives [runs] fault schedules from one seed, executes each
    under the caller's protocol stack, and stops at the first run whose
    online monitor reported a safety violation (or, for in-model schedules,
    whose liveness obligations went unmet). The failing schedule is then
    {e shrunk greedily} — every one-phase-removed variant is replayed with
    the same run seed until no single removal still fails — yielding a
    locally-minimal reproduction.

    Everything is deterministic: re-running with the same seed regenerates
    the same schedules, the same per-run seeds, and therefore the same
    verdicts, which is what makes [qsel chaos --seed N] a reproduction
    command rather than a dice roll. *)

type exec_outcome = {
  violations : Monitor.violation list;  (** Online safety violations. *)
  liveness : string list;  (** Unmet liveness obligations (in-model only). *)
  committed : int;
  submitted : int;
  checks : int;  (** Monitor checks that actually ran. *)
  proofs : int;
      (** Commission-fault evidence: equivocation proofs found or admitted
          during the run ([Proof_found] + [Proof_admitted] journal events). *)
  forgeries : int;  (** Forged frames rejected ([Forgery_rejected] events). *)
  reconfigs : int;
      (** Per-process config-change applications ([Reconfigured] events)
          — nonzero only on churn schedules. *)
  isect_pairs : int;
      (** Quorum pairs the monitor's intersection invariant actually
          compared — the vacuity signal for {b quorum-intersection}
          ([0] means every epoch group held a single distinct quorum). *)
  isect_min_overlap : int option;
      (** Smallest overlap seen across those pairs; [None] when no pair
          was compared. *)
}

val failed : exec_outcome -> bool

type run = {
  index : int;
  run_seed : int;  (** Seed handed to [execute] — replays deterministically. *)
  schedule : Fault.schedule;
  model : Fault.model;
  outcome : exec_outcome;
}

type report = {
  seed : int;
  runs : run list;  (** In execution order; stops after the first failure. *)
  first_failure : run option;
  minimal : run option;  (** Shrunk reproduction of the first failure. *)
  shrink_steps : int;  (** Re-executions the shrinker spent. *)
}

val ok : report -> bool

val greedy_shrink :
  candidates:('a -> 'a list) -> still_fails:('a -> bool) -> 'a -> 'a * int
(** The campaign's shrinker, generic in the thing being shrunk: repeatedly
    replace the value with the first candidate reduction that still fails,
    until none does. Returns the locally-minimal value and the number of
    [still_fails] evaluations spent. The model checker reuses this with
    one-choice-removed schedule variants. *)

val run :
  ?jobs:int ->
  seed:int ->
  runs:int ->
  gen:(Qs_stdx.Prng.t -> Fault.schedule) ->
  classify:(Fault.schedule -> Fault.model) ->
  execute:(seed:int -> model:Fault.model -> Fault.schedule -> exec_outcome) ->
  unit ->
  report
(** [execute] must be a pure function of [(seed, schedule)] for replay and
    shrinking to be meaningful.

    [jobs] (default 1) executes the runs on that many domains (sequentially
    on OCaml 4.14 — see {!Qs_stdx.Domainpool}). The report is byte-identical
    for every [jobs] value: schedules are pre-drawn from the generator in
    index order, the lowest failing index wins regardless of which worker
    finishes first, the run list is truncated at that index exactly as the
    sequential engine leaves it, and the shrink replays on the calling
    domain. [execute] must then also be safe to call from concurrent
    domains — true for stacks whose observability state lives in the
    domain-local default registries. *)

val render : report -> string
(** Multi-line human-readable report. *)

val to_json : report -> Qs_obs.Json.t

val model_to_string : Fault.model -> string
