module Stime = Qs_sim.Stime
module Prng = Qs_stdx.Prng
module Json = Qs_obs.Json

type kind =
  | Crash of int
  | CrashAmnesia of int
  | Omit of { src : int; dst : int }
  | Delay of { src : int; dst : int; by : Stime.t }
  | Duplicate of { src : int; dst : int; copies : int }
  | Partition of int list
  | Equivocate of { src : int; scope : int list }
  | Slander of { src : int; victim : int }
  | Tamper of { src : int; dst : int }
  | Replay of { src : int; dst : int }
  | Join of int
  | Leave of int
  | RegionPartition of { label : string; members : int list }
  | RackLoss of { label : string; members : int list }
  | GrayRegion of { label : string; members : int list; by : Stime.t }

type phase = { start : Stime.t; stop : Stime.t option; what : kind }

type schedule = phase list

type model = In_model of { faulty : int list } | Out_of_model of string

let at ?stop ?(start = Stime.zero) what = { start; stop; what }

(* ------------------------------------------------------------------ *)
(* Model classification *)

let sorted_uniq l = List.sort_uniq compare l

(* The minimal blame set: link faults are blamed on their source (an
   omission/timing/duplication failure the sender commits on an individual
   link, Section II), partitions on their smaller side — declaring those
   processes faulty explains every unreliable link while leaving
   correct<->correct links reliable and timely. Commission faults are blamed
   on the misbehaving source alone: a slander victim and an equivocation
   scope stay correct — authentication confines the damage to the signer. *)
let blamed ~n schedule =
  let blame = function
    | Crash p | CrashAmnesia p -> [ p ]
    | Omit { src; _ } | Delay { src; _ } | Duplicate { src; _ } -> [ src ]
    | Equivocate { src; _ } | Slander { src; _ } | Tamper { src; _ } | Replay { src; _ } ->
      [ src ]
    (* Churn counts against the budget: a joiner is absent-then-bootstrapping
       (dormant until its rejoin completes) and a leaver is absent after its
       drain — either way the process behaves like a crashed one for part of
       the run, which is exactly what f budgets. *)
    | Join p | Leave p -> [ p ]
    (* Correlated kinds inherit the existing rules: a region partition is a
       partition (smaller side of the cut), a rack loss is a simultaneous
       crash of every member, a gray region is a timing failure originating
       at every member. The final [sorted_uniq] guarantees each member
       counts against the budget exactly once, however many correlated
       phases name it. *)
    | Partition group | RegionPartition { members = group; _ } ->
      let inside = sorted_uniq (List.filter (fun p -> p >= 0 && p < n) group) in
      let outside =
        List.filter (fun p -> not (List.mem p inside)) (List.init n Fun.id)
      in
      if List.length inside <= List.length outside then inside else outside
    | RackLoss { members; _ } | GrayRegion { members; _ } -> members
  in
  sorted_uniq (List.concat_map (fun ph -> blame ph.what) schedule)

let validate_phase ~n phase =
  let chk p name = if p < 0 || p >= n then invalid_arg ("Fault: " ^ name ^ " out of range") in
  (match phase.what with
   | Crash p | CrashAmnesia p -> chk p "crash target"
   | Omit { src; dst } | Delay { src; dst; _ } | Duplicate { src; dst; _ }
   | Tamper { src; dst } | Replay { src; dst } ->
     chk src "link src";
     chk dst "link dst";
     if src = dst then invalid_arg "Fault: link faults need src <> dst"
   | Partition group -> List.iter (fun p -> chk p "partition member") group
   | Equivocate { src; scope } ->
     chk src "equivocation src";
     List.iter (fun p -> chk p "equivocation scope member") scope;
     if List.mem src scope then invalid_arg "Fault: equivocation scope contains src"
   | Slander { src; victim } ->
     chk src "slander src";
     chk victim "slander victim";
     if src = victim then invalid_arg "Fault: slander needs src <> victim"
   (* Churn targets are universe pids: in churn campaigns [n] is the size
      of the whole universe (members + spares), so a join of a not-yet-
      member spare validates. *)
   | Join p -> chk p "join target"
   | Leave p -> chk p "leave target"
   | RegionPartition { label; members }
   | RackLoss { label; members }
   | GrayRegion { label; members; _ } ->
     if label = "" || String.exists (fun c -> c = ' ' || c = ',' || c = ';' || c = '{' || c = '}') label
     then invalid_arg "Fault: correlated fault label must be non-empty without ' ,;{}'";
     if members = [] then invalid_arg "Fault: correlated fault needs members";
     List.iter (fun p -> chk p "correlated fault member") members);
  match phase.stop with
  | Some stop when Stime.compare stop phase.start < 0 ->
    invalid_arg "Fault: phase stops before it starts"
  | _ -> ()

let validate ~n schedule = List.iter (validate_phase ~n) schedule

let classify ~n ~f schedule =
  validate ~n schedule;
  let faulty = blamed ~n schedule in
  if List.length faulty > f then
    Out_of_model
      (Printf.sprintf "blames %d processes, budget f=%d" (List.length faulty) f)
  else In_model { faulty }

(* ------------------------------------------------------------------ *)
(* Random generation *)

type gen_profile = {
  horizon : Stime.t;
  p_crash : float;
  p_recover : float;
  p_amnesia : float;
  p_omit : float;
  p_delay : float;
  p_duplicate : float;
  max_delay : Stime.t;
  p_equivocate : float;
  p_slander : float;
  p_tamper : float;
  p_replay : float;
  p_leave : float;
  p_join : float;
  spares : int list;
      (* universe pids outside the initial membership; join targets *)
  p_region : float;
  p_rack : float;
  p_gray_region : float;
  regions : (string * int list) list;
      (* correlated fault domains: label -> member pids *)
}

let default_profile ~horizon =
  {
    horizon;
    p_crash = 0.5;
    p_recover = 0.4;
    p_amnesia = 0.0;
    p_omit = 0.3;
    p_delay = 0.2;
    p_duplicate = 0.1;
    max_delay = Stime.of_ms 200;
    p_equivocate = 0.0;
    p_slander = 0.0;
    p_tamper = 0.0;
    p_replay = 0.0;
    p_leave = 0.0;
    p_join = 0.0;
    spares = [];
    p_region = 0.0;
    p_rack = 0.0;
    p_gray_region = 0.0;
    regions = [];
  }

let gen_window rng profile =
  let start = Prng.int_in rng 0 (profile.horizon / 4) in
  let stop =
    if Prng.chance rng profile.p_recover then
      Some (start + Prng.int_in rng (profile.horizon / 8) (profile.horizon / 2))
    else None
  in
  (start, stop)

(* An in-model schedule: pick at most [f] faulty processes and give each a
   phased mix of crash (possibly with recovery), per-link omission, extra
   delay and duplication — always originating at the faulty process, so the
   blame set never exceeds the budget. *)
let gen rng ~n ~f ?(profile = default_profile ~horizon:(Stime.of_ms 10_000)) () =
  (* Spares are not members: they cannot crash, leave or misbehave before
     their join, so they are excluded from the faulty draw (a no-op — and a
     stream-identical one — when the spare list is empty). *)
  let candidates =
    List.filter (fun p -> not (List.mem p profile.spares)) (List.init n Fun.id)
  in
  let faulty = Prng.sample rng (Prng.int_in rng 0 f) candidates in
  let base =
    List.concat_map
    (fun p ->
      if Prng.chance rng profile.p_crash then begin
        let start, stop = gen_window rng profile in
        (* The [> 0.] guard keeps the random stream — and therefore every
           pinned seed — byte-identical when amnesia generation is off. *)
        if profile.p_amnesia > 0. && Prng.chance rng profile.p_amnesia then
          (* An amnesia phase without recovery is indistinguishable from a
             plain crash, so force a stop well before the horizon — the
             rejoin (and the monitor's bounded-retries check) needs room. *)
          let stop =
            match stop with
            | Some _ as s -> s
            | None -> Some (start + (profile.horizon / 3))
          in
          [ { start; stop; what = CrashAmnesia p } ]
        else [ { start; stop; what = Crash p } ]
      end
      else begin
        (* Commission faults, guarded like amnesia so the random stream — and
           therefore every pinned seed — is byte-identical when the knobs
           are 0. A commission phase replaces the benign link mix for this
           process: one active adversary per faulty process keeps generated
           schedules readable and shrinkable. *)
        let others = List.filter (fun q -> q <> p) (List.init n Fun.id) in
        if profile.p_equivocate > 0. && Prng.chance rng profile.p_equivocate then begin
          let start, stop = gen_window rng profile in
          let scope = Prng.sample rng (Stdlib.min 2 (List.length others)) others in
          [ { start; stop; what = Equivocate { src = p; scope } } ]
        end
        else if profile.p_slander > 0. && Prng.chance rng profile.p_slander then begin
          let start, stop = gen_window rng profile in
          let victim = List.nth others (Prng.int_in rng 0 (List.length others - 1)) in
          [ { start; stop; what = Slander { src = p; victim } } ]
        end
        else if profile.p_tamper > 0. && Prng.chance rng profile.p_tamper then begin
          let start, stop = gen_window rng profile in
          let dst = List.nth others (Prng.int_in rng 0 (List.length others - 1)) in
          [ { start; stop; what = Tamper { src = p; dst } } ]
        end
        else if profile.p_replay > 0. && Prng.chance rng profile.p_replay then begin
          let start, stop = gen_window rng profile in
          let dst = List.nth others (Prng.int_in rng 0 (List.length others - 1)) in
          [ { start; stop; what = Replay { src = p; dst } } ]
        end
        (* Churn, guarded like the commission knobs for stream stability: a
           faulty process may simply leave — a point event, no stop. *)
        else if profile.p_leave > 0. && Prng.chance rng profile.p_leave then begin
          let start, _ = gen_window rng profile in
          [ { start; stop = None; what = Leave p } ]
        end
        else
        List.concat_map
          (fun dst ->
            if dst = p then []
            else if Prng.chance rng profile.p_omit then begin
              let start, stop = gen_window rng profile in
              [ { start; stop; what = Omit { src = p; dst } } ]
            end
            else if Prng.chance rng profile.p_delay then begin
              let start, stop = gen_window rng profile in
              let by = Prng.int_in rng 1 profile.max_delay in
              [ { start; stop; what = Delay { src = p; dst; by } } ]
            end
            else if Prng.chance rng profile.p_duplicate then begin
              let start, stop = gen_window rng profile in
              let copies = Prng.int_in rng 2 3 in
              [ { start; stop; what = Duplicate { src = p; dst; copies } } ]
            end
            else [])
          (List.init n Fun.id)
      end)
      faulty
  in
  (* Join streams: spares enter within the remaining blame budget (a
     bootstrapping joiner counts as faulty until synced). Guarded so the
     random stream is byte-identical when the knob is 0. *)
  let joins =
    if profile.p_join > 0. then begin
      let budget = ref (Stdlib.max 0 (f - List.length faulty)) in
      List.concat_map
        (fun s ->
          if Prng.chance rng profile.p_join && !budget > 0 then begin
            decr budget;
            let start = Prng.int_in rng 0 (profile.horizon / 2) in
            [ { start; stop = None; what = Join s } ]
          end
          else [])
        profile.spares
    end
    else []
  in
  (* Correlated faults: whole fault domains fail together, admitted only
     while the schedule's exact blame set (union, each member once) stays
     within budget. Guarded like every other knob so the random stream is
     byte-identical when correlated generation is off. *)
  let correlated =
    if
      profile.regions <> []
      && (profile.p_region > 0. || profile.p_rack > 0. || profile.p_gray_region > 0.)
    then begin
      let fits acc ph = List.length (blamed ~n (ph :: acc)) <= f in
      let phases = ref (base @ joins) in
      let out = ref [] in
      List.iter
        (fun (label, members) ->
          let members = sorted_uniq (List.filter (fun p -> p >= 0 && p < n) members) in
          if members <> [] then begin
            let candidate =
              if profile.p_region > 0. && Prng.chance rng profile.p_region then begin
                let start, stop = gen_window rng profile in
                (* Heal partitions before the horizon so liveness has room. *)
                let stop =
                  match stop with
                  | Some _ as s -> s
                  | None -> Some (start + (profile.horizon / 3))
                in
                Some { start; stop; what = RegionPartition { label; members } }
              end
              else if profile.p_rack > 0. && Prng.chance rng profile.p_rack then begin
                let start, stop = gen_window rng profile in
                Some { start; stop; what = RackLoss { label; members } }
              end
              else if
                profile.p_gray_region > 0. && Prng.chance rng profile.p_gray_region
              then begin
                let start, stop = gen_window rng profile in
                let by = Prng.int_in rng 1 profile.max_delay in
                Some { start; stop; what = GrayRegion { label; members; by } }
              end
              else None
            in
            match candidate with
            | Some ph when fits !phases ph ->
              phases := ph :: !phases;
              out := ph :: !out
            | _ -> ()
          end)
        profile.regions;
      List.rev !out
    end
    else []
  in
  base @ joins @ correlated

(* A deliberately out-of-model schedule: an in-model core plus either a
   partition crossing the budget or more crashed processes than [f]. *)
let gen_wild rng ~n ~f ?(profile = default_profile ~horizon:(Stime.of_ms 10_000)) () =
  let core = gen rng ~n ~f ~profile () in
  let extra =
    if Prng.bool rng then begin
      (* A partition whose smaller side exceeds f. *)
      let side = Stdlib.min (n - 1) (f + 1 + Prng.int_in rng 0 1) in
      let group = Prng.sample rng side (List.init n Fun.id) in
      let start, stop = gen_window rng profile in
      [ { start; stop = (match stop with None -> Some (start + profile.horizon / 3) | s -> s);
          what = Partition group } ]
    end
    else
      (* Crash f+1 processes: one more than the model admits. *)
      List.map
        (fun p ->
          let start, stop = gen_window rng profile in
          { start; stop; what = Crash p })
        (Prng.sample rng (f + 1) (List.init n Fun.id))
  in
  core @ extra

(* ------------------------------------------------------------------ *)
(* Shrinking *)

let remove_each schedule =
  List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) schedule) schedule

(* ------------------------------------------------------------------ *)
(* Rendering *)

let kind_to_string = function
  | Crash p -> Printf.sprintf "crash p%d" p
  | CrashAmnesia p -> Printf.sprintf "amnesia p%d" p
  | Omit { src; dst } -> Printf.sprintf "omit p%d->p%d" src dst
  | Delay { src; dst; by } ->
    Format.asprintf "delay p%d->p%d by %a" src dst Stime.pp by
  | Duplicate { src; dst; copies } ->
    Printf.sprintf "duplicate p%d->p%d x%d" src dst copies
  | Partition group ->
    Printf.sprintf "partition {%s}"
      (String.concat "," (List.map string_of_int group))
  | Equivocate { src; scope } ->
    Printf.sprintf "equivocate p%d to {%s}" src
      (String.concat "," (List.map string_of_int scope))
  | Slander { src; victim } -> Printf.sprintf "slander p%d->p%d" src victim
  | Tamper { src; dst } -> Printf.sprintf "tamper p%d->p%d" src dst
  | Replay { src; dst } -> Printf.sprintf "replay p%d->p%d" src dst
  | Join p -> Printf.sprintf "join p%d" p
  | Leave p -> Printf.sprintf "leave p%d" p
  | RegionPartition { label; members } ->
    Printf.sprintf "region-partition %s {%s}" label
      (String.concat "," (List.map string_of_int members))
  | RackLoss { label; members } ->
    Printf.sprintf "rack-loss %s {%s}" label
      (String.concat "," (List.map string_of_int members))
  | GrayRegion { label; members; by } ->
    Format.asprintf "gray-region %s {%s} by %a" label
      (String.concat "," (List.map string_of_int members))
      Stime.pp by

let phase_to_string ph =
  Format.asprintf "%s @@ %a%s" (kind_to_string ph.what) Stime.pp ph.start
    (match ph.stop with
     | None -> ""
     | Some s -> Format.asprintf " until %a" Stime.pp s)

let to_string schedule =
  match schedule with
  | [] -> "(no faults)"
  | _ -> String.concat "; " (List.map phase_to_string schedule)

(* Inverse of [to_string], so pinned regression files can store fault
   schedules in the exact format the campaign reports print. *)
let of_string ~n s =
  let fail fmt = Printf.ksprintf (fun m -> invalid_arg ("Fault.of_string: " ^ m)) fmt in
  let parse_ms str =
    let str = String.trim str in
    let l = String.length str in
    if l < 3 || String.sub str (l - 2) 2 <> "ms" then fail "bad time %S" str
    else
      match float_of_string_opt (String.sub str 0 (l - 2)) with
      | None -> fail "bad time %S" str
      | Some ms -> int_of_float ((ms *. 1000.) +. 0.5)
  in
  let parse_pid str =
    if String.length str >= 2 && str.[0] = 'p' then
      match int_of_string_opt (String.sub str 1 (String.length str - 1)) with
      | Some p -> p
      | None -> fail "bad process %S" str
    else fail "bad process %S" str
  in
  let parse_link str =
    match String.index_opt str '-' with
    | Some i
      when i + 1 < String.length str
           && str.[i + 1] = '>' ->
      ( parse_pid (String.sub str 0 i),
        parse_pid (String.sub str (i + 2) (String.length str - i - 2)) )
    | _ -> fail "bad link %S" str
  in
  let parse_group group =
    if
      String.length group >= 2
      && group.[0] = '{'
      && group.[String.length group - 1] = '}'
    then begin
      let inner = String.sub group 1 (String.length group - 2) in
      if String.trim inner = "" then []
      else
        List.map
          (fun v ->
            match int_of_string_opt (String.trim v) with
            | Some p -> p
            | None -> fail "bad group member %S" v)
          (String.split_on_char ',' inner)
    end
    else fail "bad group %S" group
  in
  let parse_kind str =
    match String.split_on_char ' ' (String.trim str) with
    | [ "crash"; p ] -> Crash (parse_pid p)
    | [ "amnesia"; p ] -> CrashAmnesia (parse_pid p)
    | [ "join"; p ] -> Join (parse_pid p)
    | [ "leave"; p ] -> Leave (parse_pid p)
    | [ "omit"; link ] ->
      let src, dst = parse_link link in
      Omit { src; dst }
    | [ "equivocate"; p; "to"; group ] ->
      Equivocate { src = parse_pid p; scope = parse_group group }
    | [ "slander"; link ] ->
      let src, victim = parse_link link in
      Slander { src; victim }
    | [ "tamper"; link ] ->
      let src, dst = parse_link link in
      Tamper { src; dst }
    | [ "replay"; link ] ->
      let src, dst = parse_link link in
      Replay { src; dst }
    | [ "delay"; link; "by"; time ] ->
      let src, dst = parse_link link in
      Delay { src; dst; by = parse_ms time }
    | [ "duplicate"; link; copies ]
      when String.length copies > 1 && copies.[0] = 'x' -> (
      let src, dst = parse_link link in
      match int_of_string_opt (String.sub copies 1 (String.length copies - 1)) with
      | Some k -> Duplicate { src; dst; copies = k }
      | None -> fail "bad copy count %S" copies)
    | [ "partition"; group ] -> Partition (parse_group group)
    | [ "region-partition"; label; group ] ->
      RegionPartition { label; members = parse_group group }
    | [ "rack-loss"; label; group ] -> RackLoss { label; members = parse_group group }
    | [ "gray-region"; label; group; "by"; time ] ->
      GrayRegion { label; members = parse_group group; by = parse_ms time }
    | _ -> fail "unrecognized fault %S" str
  in
  let parse_phase str =
    let str = String.trim str in
    (* The kind never contains " @ ", so the first occurrence splits it from
       the time window. *)
    let rec find_at i =
      if i + 2 >= String.length str then fail "missing \" @ \" in %S" str
      else if str.[i] = ' ' && str.[i + 1] = '@' && str.[i + 2] = ' ' then i
      else find_at (i + 1)
    in
    let at = find_at 0 in
    let what = parse_kind (String.sub str 0 at) in
    let times = String.trim (String.sub str (at + 3) (String.length str - at - 3)) in
    let sep = " until " in
    let rec find_until i =
      if i + String.length sep > String.length times then None
      else if String.sub times i (String.length sep) = sep then Some i
      else find_until (i + 1)
    in
    let start, stop =
      match find_until 0 with
      | None -> (parse_ms times, None)
      | Some i ->
        ( parse_ms (String.sub times 0 i),
          Some
            (parse_ms
               (String.sub times
                  (i + String.length sep)
                  (String.length times - i - String.length sep))) )
    in
    { start; stop; what }
  in
  let s = String.trim s in
  let schedule =
    if s = "" || s = "(no faults)" then []
    else List.map parse_phase (String.split_on_char ';' s)
  in
  validate ~n schedule;
  schedule

let kind_to_json = function
  | Crash p -> Json.Obj [ ("kind", Json.String "crash"); ("p", Json.Int p) ]
  | CrashAmnesia p ->
    Json.Obj [ ("kind", Json.String "amnesia"); ("p", Json.Int p) ]
  | Omit { src; dst } ->
    Json.Obj [ ("kind", Json.String "omit"); ("src", Json.Int src); ("dst", Json.Int dst) ]
  | Delay { src; dst; by } ->
    Json.Obj
      [
        ("kind", Json.String "delay");
        ("src", Json.Int src);
        ("dst", Json.Int dst);
        ("by_ms", Json.Float (Stime.to_ms by));
      ]
  | Duplicate { src; dst; copies } ->
    Json.Obj
      [
        ("kind", Json.String "duplicate");
        ("src", Json.Int src);
        ("dst", Json.Int dst);
        ("copies", Json.Int copies);
      ]
  | Partition group ->
    Json.Obj
      [ ("kind", Json.String "partition"); ("group", Json.List (List.map (fun p -> Json.Int p) group)) ]
  | Equivocate { src; scope } ->
    Json.Obj
      [
        ("kind", Json.String "equivocate");
        ("src", Json.Int src);
        ("scope", Json.List (List.map (fun p -> Json.Int p) scope));
      ]
  | Slander { src; victim } ->
    Json.Obj
      [ ("kind", Json.String "slander"); ("src", Json.Int src); ("victim", Json.Int victim) ]
  | Tamper { src; dst } ->
    Json.Obj
      [ ("kind", Json.String "tamper"); ("src", Json.Int src); ("dst", Json.Int dst) ]
  | Replay { src; dst } ->
    Json.Obj
      [ ("kind", Json.String "replay"); ("src", Json.Int src); ("dst", Json.Int dst) ]
  | Join p -> Json.Obj [ ("kind", Json.String "join"); ("p", Json.Int p) ]
  | Leave p -> Json.Obj [ ("kind", Json.String "leave"); ("p", Json.Int p) ]
  | RegionPartition { label; members } ->
    Json.Obj
      [
        ("kind", Json.String "region-partition");
        ("label", Json.String label);
        ("members", Json.List (List.map (fun p -> Json.Int p) members));
      ]
  | RackLoss { label; members } ->
    Json.Obj
      [
        ("kind", Json.String "rack-loss");
        ("label", Json.String label);
        ("members", Json.List (List.map (fun p -> Json.Int p) members));
      ]
  | GrayRegion { label; members; by } ->
    Json.Obj
      [
        ("kind", Json.String "gray-region");
        ("label", Json.String label);
        ("members", Json.List (List.map (fun p -> Json.Int p) members));
        ("by_ms", Json.Float (Stime.to_ms by));
      ]

let phase_to_json ph =
  let base =
    [ ("start_ms", Json.Float (Stime.to_ms ph.start)); ("fault", kind_to_json ph.what) ]
  in
  let stop =
    match ph.stop with
    | None -> []
    | Some s -> [ ("stop_ms", Json.Float (Stime.to_ms s)) ]
  in
  Json.Obj (base @ stop)

let to_json schedule = Json.List (List.map phase_to_json schedule)
