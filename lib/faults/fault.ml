module Stime = Qs_sim.Stime
module Prng = Qs_stdx.Prng
module Json = Qs_obs.Json

type kind =
  | Crash of int
  | Omit of { src : int; dst : int }
  | Delay of { src : int; dst : int; by : Stime.t }
  | Duplicate of { src : int; dst : int; copies : int }
  | Partition of int list

type phase = { start : Stime.t; stop : Stime.t option; what : kind }

type schedule = phase list

type model = In_model of { faulty : int list } | Out_of_model of string

let at ?stop ?(start = Stime.zero) what = { start; stop; what }

(* ------------------------------------------------------------------ *)
(* Model classification *)

let sorted_uniq l = List.sort_uniq compare l

(* The minimal blame set: link faults are blamed on their source (an
   omission/timing/duplication failure the sender commits on an individual
   link, Section II), partitions on their smaller side — declaring those
   processes faulty explains every unreliable link while leaving
   correct<->correct links reliable and timely. *)
let blamed ~n schedule =
  let blame = function
    | Crash p -> [ p ]
    | Omit { src; _ } | Delay { src; _ } | Duplicate { src; _ } -> [ src ]
    | Partition group ->
      let inside = sorted_uniq (List.filter (fun p -> p >= 0 && p < n) group) in
      let outside =
        List.filter (fun p -> not (List.mem p inside)) (List.init n Fun.id)
      in
      if List.length inside <= List.length outside then inside else outside
  in
  sorted_uniq (List.concat_map (fun ph -> blame ph.what) schedule)

let validate_phase ~n phase =
  let chk p name = if p < 0 || p >= n then invalid_arg ("Fault: " ^ name ^ " out of range") in
  (match phase.what with
   | Crash p -> chk p "crash target"
   | Omit { src; dst } | Delay { src; dst; _ } | Duplicate { src; dst; _ } ->
     chk src "link src";
     chk dst "link dst";
     if src = dst then invalid_arg "Fault: link faults need src <> dst"
   | Partition group -> List.iter (fun p -> chk p "partition member") group);
  match phase.stop with
  | Some stop when Stime.compare stop phase.start < 0 ->
    invalid_arg "Fault: phase stops before it starts"
  | _ -> ()

let validate ~n schedule = List.iter (validate_phase ~n) schedule

let classify ~n ~f schedule =
  validate ~n schedule;
  let faulty = blamed ~n schedule in
  if List.length faulty > f then
    Out_of_model
      (Printf.sprintf "blames %d processes, budget f=%d" (List.length faulty) f)
  else In_model { faulty }

(* ------------------------------------------------------------------ *)
(* Random generation *)

type gen_profile = {
  horizon : Stime.t;
  p_crash : float;
  p_recover : float;
  p_omit : float;
  p_delay : float;
  p_duplicate : float;
  max_delay : Stime.t;
}

let default_profile ~horizon =
  {
    horizon;
    p_crash = 0.5;
    p_recover = 0.4;
    p_omit = 0.3;
    p_delay = 0.2;
    p_duplicate = 0.1;
    max_delay = Stime.of_ms 200;
  }

let gen_window rng profile =
  let start = Prng.int_in rng 0 (profile.horizon / 4) in
  let stop =
    if Prng.chance rng profile.p_recover then
      Some (start + Prng.int_in rng (profile.horizon / 8) (profile.horizon / 2))
    else None
  in
  (start, stop)

(* An in-model schedule: pick at most [f] faulty processes and give each a
   phased mix of crash (possibly with recovery), per-link omission, extra
   delay and duplication — always originating at the faulty process, so the
   blame set never exceeds the budget. *)
let gen rng ~n ~f ?(profile = default_profile ~horizon:(Stime.of_ms 10_000)) () =
  let faulty = Prng.sample rng (Prng.int_in rng 0 f) (List.init n Fun.id) in
  List.concat_map
    (fun p ->
      if Prng.chance rng profile.p_crash then begin
        let start, stop = gen_window rng profile in
        [ { start; stop; what = Crash p } ]
      end
      else
        List.concat_map
          (fun dst ->
            if dst = p then []
            else if Prng.chance rng profile.p_omit then begin
              let start, stop = gen_window rng profile in
              [ { start; stop; what = Omit { src = p; dst } } ]
            end
            else if Prng.chance rng profile.p_delay then begin
              let start, stop = gen_window rng profile in
              let by = Prng.int_in rng 1 profile.max_delay in
              [ { start; stop; what = Delay { src = p; dst; by } } ]
            end
            else if Prng.chance rng profile.p_duplicate then begin
              let start, stop = gen_window rng profile in
              let copies = Prng.int_in rng 2 3 in
              [ { start; stop; what = Duplicate { src = p; dst; copies } } ]
            end
            else [])
          (List.init n Fun.id))
    faulty

(* A deliberately out-of-model schedule: an in-model core plus either a
   partition crossing the budget or more crashed processes than [f]. *)
let gen_wild rng ~n ~f ?(profile = default_profile ~horizon:(Stime.of_ms 10_000)) () =
  let core = gen rng ~n ~f ~profile () in
  let extra =
    if Prng.bool rng then begin
      (* A partition whose smaller side exceeds f. *)
      let side = Stdlib.min (n - 1) (f + 1 + Prng.int_in rng 0 1) in
      let group = Prng.sample rng side (List.init n Fun.id) in
      let start, stop = gen_window rng profile in
      [ { start; stop = (match stop with None -> Some (start + profile.horizon / 3) | s -> s);
          what = Partition group } ]
    end
    else
      (* Crash f+1 processes: one more than the model admits. *)
      List.map
        (fun p ->
          let start, stop = gen_window rng profile in
          { start; stop; what = Crash p })
        (Prng.sample rng (f + 1) (List.init n Fun.id))
  in
  core @ extra

(* ------------------------------------------------------------------ *)
(* Shrinking *)

let remove_each schedule =
  List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) schedule) schedule

(* ------------------------------------------------------------------ *)
(* Rendering *)

let kind_to_string = function
  | Crash p -> Printf.sprintf "crash p%d" p
  | Omit { src; dst } -> Printf.sprintf "omit p%d->p%d" src dst
  | Delay { src; dst; by } ->
    Format.asprintf "delay p%d->p%d by %a" src dst Stime.pp by
  | Duplicate { src; dst; copies } ->
    Printf.sprintf "duplicate p%d->p%d x%d" src dst copies
  | Partition group ->
    Printf.sprintf "partition {%s}"
      (String.concat "," (List.map string_of_int group))

let phase_to_string ph =
  Format.asprintf "%s @@ %a%s" (kind_to_string ph.what) Stime.pp ph.start
    (match ph.stop with
     | None -> ""
     | Some s -> Format.asprintf " until %a" Stime.pp s)

let to_string schedule =
  match schedule with
  | [] -> "(no faults)"
  | _ -> String.concat "; " (List.map phase_to_string schedule)

let kind_to_json = function
  | Crash p -> Json.Obj [ ("kind", Json.String "crash"); ("p", Json.Int p) ]
  | Omit { src; dst } ->
    Json.Obj [ ("kind", Json.String "omit"); ("src", Json.Int src); ("dst", Json.Int dst) ]
  | Delay { src; dst; by } ->
    Json.Obj
      [
        ("kind", Json.String "delay");
        ("src", Json.Int src);
        ("dst", Json.Int dst);
        ("by_ms", Json.Float (Stime.to_ms by));
      ]
  | Duplicate { src; dst; copies } ->
    Json.Obj
      [
        ("kind", Json.String "duplicate");
        ("src", Json.Int src);
        ("dst", Json.Int dst);
        ("copies", Json.Int copies);
      ]
  | Partition group ->
    Json.Obj
      [ ("kind", Json.String "partition"); ("group", Json.List (List.map (fun p -> Json.Int p) group)) ]

let phase_to_json ph =
  let base =
    [ ("start_ms", Json.Float (Stime.to_ms ph.start)); ("fault", kind_to_json ph.what) ]
  in
  let stop =
    match ph.stop with
    | None -> []
    | Some s -> [ ("stop_ms", Json.Float (Stime.to_ms s)) ]
  in
  Json.Obj (base @ stop)

let to_json schedule = Json.List (List.map phase_to_json schedule)
