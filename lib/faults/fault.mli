(** Declarative, composable fault schedules.

    A schedule is a list of {e phases}: each phase activates one fault at a
    virtual [start] time and (optionally) deactivates it at [stop] — so
    crash-then-recover, transient link omission, bounded timing glitches,
    healing partitions and duplication storms are all first-class, and the
    same vocabulary drives tests, the adversary, experiments and the
    [qsel chaos] CLI.

    Every schedule is classifiable against the paper's fault model
    (Section II: at most [f] faulty processes; links between correct
    processes stay reliable and timely after GST): {!classify} computes the
    minimal blame set and tags the schedule {!In_model} (the safety {e and}
    liveness theorems must hold) or {!Out_of_model} (only core safety is
    asserted). *)

type kind =
  | Crash of int
      (** The process stops sending anything (mute). With a phase [stop]
          this is crash-recovery {e with volatile state intact} — the
          optimistic model PR 2 shipped with. *)
  | CrashAmnesia of int
      (** Crash-recovery that loses volatile state: mute during the window,
          and at [stop] the injector's amnesia hook wipes the process back
          to its last durable snapshot and starts the rejoin protocol
          ({!Qs_recovery.Rejoin}). Without a [stop] it degenerates to
          {!Crash}. *)
  | Omit of { src : int; dst : int }
      (** Omission failure on one direction of one link. *)
  | Delay of { src : int; dst : int; by : Qs_sim.Stime.t }
      (** Timing failure: extra latency on one link. *)
  | Duplicate of { src : int; dst : int; copies : int }
      (** Duplication failure: each message on the link is delivered
          [copies] times. *)
  | Partition of int list
      (** Cut the given group off from the rest, both directions. In-model
          only when the smaller side fits in the failure budget. *)
  | Equivocate of { src : int; scope : int list }
      (** Commission failure: [src] sends {e conflicting, validly-signed}
          payloads — the honest one to most peers and a re-signed variant to
          each process in [scope] (empty scope means every peer gets its own
          variant). Because both frames verify under [src]'s key, two of
          them form a transferable proof of misbehavior
          ({!Qs_evidence.Evidence}). Blamed on [src]. *)
  | Slander of { src : int; victim : int }
      (** Commission failure: [src] broadcasts forged suspicion rows that
          claim to be signed by [victim]. [Auth.forge] cannot produce a
          valid tag, so receivers reject the frame and quarantine the
          {e channel} it arrived on — the victim is never blamed, and the
          forgery is not transferable evidence. Blamed on [src]. *)
  | Tamper of { src : int; dst : int }
      (** Commission failure on one link: payloads from [src] to [dst] are
          bit-flipped in flight with the signature left stale, so [dst]'s
          [Auth.verify] rejects them. Observationally an omission with a
          forgery-rejection receipt. Blamed on [src]. *)
  | Replay of { src : int; dst : int }
      (** Commission failure on one link: old validly-signed frames from
          [src] are re-delivered to [dst]. Exercises idempotency — CRDT
          merges and dedup must absorb stale re-deliveries. Blamed on
          [src]. *)
  | Join of int
      (** Churn: the given {e universe pid} (a spare outside the current
          membership) is admitted at [start] and bootstraps through the
          rejoin plane, dormant until synced. A point event — [stop] is
          ignored. Blamed on the joiner: until its rejoin completes it
          behaves like a recovering process, which is what [f] budgets. *)
  | Leave of int
      (** Churn: the member with this universe pid drains gracefully
          (stops heartbeating, ships one anti-entropy handoff push) and is
          removed at [start]. A point event. Blamed on the leaver. *)
  | RegionPartition of { label : string; members : int list }
      (** Correlated fault: the whole fault domain [label] (its [members])
          is cut off from the rest, both directions — a {!Partition} whose
          group is a topology label's member set. Blamed like a partition:
          the smaller side of the cut, each member counted once. *)
  | RackLoss of { label : string; members : int list }
      (** Correlated fault: every member of the domain goes mute
          simultaneously (a correlated {!Crash} of the whole rack); with a
          phase [stop] the rack powers back on with volatile state intact.
          Blamed on the members. *)
  | GrayRegion of { label : string; members : int list; by : Qs_sim.Stime.t }
      (** Correlated gray failure: every link {e out of} the domain's
          members carries [by] extra latency — the region is up but slow,
          the hardest case for timeout-based detectors. A correlated
          {!Delay}; blamed on the members (timing failures originate at
          their source). *)

type phase = { start : Qs_sim.Stime.t; stop : Qs_sim.Stime.t option; what : kind }
(** [stop = None] means the fault persists to the end of the run. *)

type schedule = phase list

type model =
  | In_model of { faulty : int list }
      (** The minimal blame set; its complement must satisfy every paper
          guarantee. *)
  | Out_of_model of string  (** Why the schedule exceeds the model. *)

val at : ?stop:Qs_sim.Stime.t -> ?start:Qs_sim.Stime.t -> kind -> phase
(** Phase constructor; [start] defaults to time zero. *)

val blamed : n:int -> schedule -> int list
(** The minimal blame set: crash targets, link-fault sources, commission
    sources (never the slander victim or equivocation scope), and the
    smaller side of each partition. Correlated kinds inherit these rules
    over their member sets ({!RegionPartition} like {!Partition},
    {!RackLoss} like a crash of every member, {!GrayRegion} like a delay
    sourced at every member); the result is sorted and duplicate-free, so
    each member counts against the budget exactly once however many phases
    name it. *)

val validate : n:int -> schedule -> unit
(** [Invalid_argument] on nonsense: process ids out of range, link faults
    with [src = dst], or a phase that stops before it starts. *)

val classify : n:int -> f:int -> schedule -> model
(** Validates process ids and phase windows ([Invalid_argument] on nonsense
    such as [src = dst] or [stop < start]), then compares {!blamed} against
    the budget [f]. *)

(** {2 Seeded random generation} *)

type gen_profile = {
  horizon : Qs_sim.Stime.t;  (** Run length; faults start in the first quarter. *)
  p_crash : float;  (** Chance a faulty process crashes outright. *)
  p_recover : float;  (** Chance a phase gets a stop time. *)
  p_amnesia : float;
      (** Chance a generated crash is an amnesia crash (always given a stop
          time so the rejoin actually runs). 0 in {!default_profile}, which
          also keeps the random stream identical to pre-amnesia seeds. *)
  p_omit : float;  (** Per-link omission chance for non-crashed faulty. *)
  p_delay : float;
  p_duplicate : float;
  max_delay : Qs_sim.Stime.t;
  p_equivocate : float;
      (** Chance a non-crashed faulty process equivocates (conflicting
          signed rows to a small scope). 0 in {!default_profile}; like
          [p_amnesia], the zero case keeps the random stream byte-identical
          to pre-commission seeds. *)
  p_slander : float;  (** Chance it broadcasts forged rows instead. *)
  p_tamper : float;  (** Chance one of its links bit-flips payloads. *)
  p_replay : float;  (** Chance one of its links replays old frames. *)
  p_leave : float;
      (** Chance a non-crashed faulty member leaves instead (point event).
          0 in {!default_profile}; the zero case keeps the random stream
          byte-identical to pre-churn seeds. *)
  p_join : float;
      (** Per-spare chance of a join stream entry, drawn from {!spares}
          within the remaining blame budget. 0 in {!default_profile}. *)
  spares : int list;
      (** Universe pids outside the initial membership — the join
          candidates. Empty in {!default_profile}. *)
  p_region : float;
      (** Per-domain chance of a {!RegionPartition} phase (healed before
          the horizon). 0 in {!default_profile}; the zero case keeps the
          random stream byte-identical to pre-correlated seeds. *)
  p_rack : float;  (** Per-domain chance of a {!RackLoss} phase. *)
  p_gray_region : float;  (** Per-domain chance of a {!GrayRegion} phase. *)
  regions : (string * int list) list;
      (** Correlated fault domains (label, members) — typically a
          {!Qs_core.Topology}'s label/member pairs. Empty in
          {!default_profile}. A correlated phase is only emitted while the
          schedule's exact blame set stays within the [f] budget. *)
}

val default_profile : horizon:Qs_sim.Stime.t -> gen_profile

val gen :
  Qs_stdx.Prng.t -> n:int -> f:int -> ?profile:gen_profile -> unit -> schedule
(** Always in-model: blame never exceeds [f]. *)

val gen_wild :
  Qs_stdx.Prng.t -> n:int -> f:int -> ?profile:gen_profile -> unit -> schedule
(** An in-model core plus a budget-exceeding partition or [f+1] crashes —
    deliberately out-of-model, for safety-only campaigns. *)

val remove_each : schedule -> schedule list
(** All one-phase-removed variants, in order — the shrink candidates the
    campaign runner walks greedily. *)

(** {2 Rendering} *)

val kind_to_string : kind -> string

val phase_to_string : phase -> string

val to_string : schedule -> string
(** One line, semicolon-separated phases. *)

val of_string : n:int -> string -> schedule
(** Inverse of {!to_string} (also accepts ["(no faults)"] and the empty
    string as the empty schedule), validated against universe size [n].
    [Invalid_argument] on anything unparsable — regression files store
    schedules in exactly the rendered format. *)

val to_json : schedule -> Qs_obs.Json.t
