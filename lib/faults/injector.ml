module Sim = Qs_sim.Sim
module Network = Qs_sim.Network
module Stime = Qs_sim.Stime
module Journal = Qs_obs.Journal

type t = {
  mutable active : int; (* currently-armed phases *)
  mutable installed : int; (* phases ever armed *)
}

let note verb ph =
  if Journal.live () then
    Journal.record (Journal.Custom (Printf.sprintf "fault%s %s" verb (Fault.kind_to_string ph.Fault.what)))

(* Arm one fault on the network's filter chain (or through the process-mute
   hook) and return the disarming thunk. *)
let arm net ~set_mute what =
  match (what, set_mute) with
  | (Fault.Crash p | Fault.CrashAmnesia p), Some mute ->
    mute p true;
    fun () -> mute p false
  | (Fault.Crash p | Fault.CrashAmnesia p), None ->
    (* No process hook: send-omission on every outgoing link is
       observationally equivalent for the peers. *)
    let id = Network.add_filter net (fun ~now:_ ~src ~dst:_ _ ->
        if src = p then Network.Drop else Network.Deliver)
    in
    fun () -> Network.remove_filter net id
  | Fault.Omit { src; dst }, _ ->
    let id = Network.add_filter net (fun ~now:_ ~src:s ~dst:d _ ->
        if s = src && d = dst then Network.Drop else Network.Deliver)
    in
    fun () -> Network.remove_filter net id
  | Fault.Delay { src; dst; by }, _ ->
    let id = Network.add_filter net (fun ~now:_ ~src:s ~dst:d _ ->
        if s = src && d = dst then Network.Delay by else Network.Deliver)
    in
    fun () -> Network.remove_filter net id
  | Fault.Duplicate { src; dst; copies }, _ ->
    let id = Network.add_filter net (fun ~now:_ ~src:s ~dst:d _ ->
        if s = src && d = dst then Network.Duplicate copies else Network.Deliver)
    in
    fun () -> Network.remove_filter net id
  | Fault.Partition group, _ ->
    let inside p = List.mem p group in
    let id = Network.add_filter net (fun ~now:_ ~src ~dst _ ->
        if inside src <> inside dst then Network.Drop else Network.Deliver)
    in
    fun () -> Network.remove_filter net id

let install ~net ?set_mute ?amnesia schedule =
  let sim = Network.sim net in
  let t = { active = 0; installed = 0 } in
  List.iter
    (fun ph ->
      Sim.schedule_at sim ~at:ph.Fault.start (fun () ->
          t.active <- t.active + 1;
          t.installed <- t.installed + 1;
          note "+" ph;
          let disarm = arm net ~set_mute ph.Fault.what in
          match ph.Fault.stop with
          | None -> ()
          | Some stop ->
            Sim.schedule_at sim ~at:stop (fun () ->
                t.active <- t.active - 1;
                note "-" ph;
                disarm ();
                (* Recovery point of an amnesia crash: unmuted first, then
                   wiped — the hook typically restores a durable snapshot
                   and starts the rejoin broadcast, which needs the network
                   back. *)
                match (ph.Fault.what, amnesia) with
                | Fault.CrashAmnesia p, Some wipe -> wipe p
                | _ -> ())))
    schedule;
  t

let active t = t.active

let installed t = t.installed
