module Sim = Qs_sim.Sim
module Network = Qs_sim.Network
module Stime = Qs_sim.Stime
module Journal = Qs_obs.Journal

type t = {
  mutable active : int; (* currently-armed phases *)
  mutable installed : int; (* phases ever armed *)
}

let note verb ph =
  if Journal.live () then
    Journal.record (Journal.Custom (Printf.sprintf "fault%s %s" verb (Fault.kind_to_string ph.Fault.what)))

(* Period of the active behaviours (slander broadcasts, replayed frames):
   frequent enough to land inside any detector window, rare enough not to
   swamp the run. Each armed phase is also capped so an unbounded phase on a
   self-rescheduling event cannot keep the simulation alive forever. *)
let commission_period = Stime.of_ms 40

let commission_cap = 64

(* Arm one fault on the network's filter chain (or through the process-mute
   hook) and return the disarming thunk. *)
let arm net ~set_mute ?equivocate ?slander ?tamper ?join ?leave what =
  (* An active behaviour: fire [body] every [commission_period] while armed
     (bounded by [commission_cap]); the disarm thunk stops it. *)
  let periodic body =
    let sim = Network.sim net in
    let armed = ref true in
    let shots = ref 0 in
    let rec tick () =
      if !armed && !shots < commission_cap then begin
        incr shots;
        body ();
        Sim.schedule_at sim ~at:Stime.(Sim.now sim + commission_period) tick
      end
    in
    Sim.schedule_at sim ~at:Stime.(Sim.now sim + commission_period) tick;
    fun () -> armed := false
  in
  match (what, set_mute) with
  | (Fault.Crash p | Fault.CrashAmnesia p), Some mute ->
    mute p true;
    fun () -> mute p false
  | (Fault.Crash p | Fault.CrashAmnesia p), None ->
    (* No process hook: send-omission on every outgoing link is
       observationally equivalent for the peers. *)
    let id = Network.add_filter net (fun ~now:_ ~src ~dst:_ _ ->
        if src = p then Network.Drop else Network.Deliver)
    in
    fun () -> Network.remove_filter net id
  | Fault.Omit { src; dst }, _ ->
    let id = Network.add_filter net (fun ~now:_ ~src:s ~dst:d _ ->
        if s = src && d = dst then Network.Drop else Network.Deliver)
    in
    fun () -> Network.remove_filter net id
  | Fault.Delay { src; dst; by }, _ ->
    let id = Network.add_filter net (fun ~now:_ ~src:s ~dst:d _ ->
        if s = src && d = dst then Network.Delay by else Network.Deliver)
    in
    fun () -> Network.remove_filter net id
  | Fault.Duplicate { src; dst; copies }, _ ->
    let id = Network.add_filter net (fun ~now:_ ~src:s ~dst:d _ ->
        if s = src && d = dst then Network.Duplicate copies else Network.Deliver)
    in
    fun () -> Network.remove_filter net id
  | (Fault.Partition group | Fault.RegionPartition { members = group; _ }), _ ->
    let inside p = List.mem p group in
    let id = Network.add_filter net (fun ~now:_ ~src ~dst _ ->
        if inside src <> inside dst then Network.Drop else Network.Deliver)
    in
    fun () -> Network.remove_filter net id
  | Fault.RackLoss { members; _ }, Some mute ->
    (* The whole domain powers off together; the stop hook powers it back
       on with volatile state intact (a correlated Crash, not amnesia). *)
    List.iter (fun p -> mute p true) members;
    fun () -> List.iter (fun p -> mute p false) members
  | Fault.RackLoss { members; _ }, None ->
    let id = Network.add_filter net (fun ~now:_ ~src ~dst:_ _ ->
        if List.mem src members then Network.Drop else Network.Deliver)
    in
    fun () -> Network.remove_filter net id
  | Fault.GrayRegion { members; by; _ }, _ ->
    (* Gray failure: every link out of the region is slow, not dead. *)
    let id = Network.add_filter net (fun ~now:_ ~src ~dst:_ _ ->
        if List.mem src members then Network.Delay by else Network.Deliver)
    in
    fun () -> Network.remove_filter net id
  | Fault.Equivocate { src; scope }, _ -> (
    (* Conflicting signed payloads need the protocol's own re-signing hook;
       without one the fault is unrepresentable and arms as a no-op. *)
    match equivocate with
    | None -> fun () -> ()
    | Some hook ->
      let in_scope d = scope = [] || List.mem d scope in
      let id = Network.add_filter net (fun ~now:_ ~src:s ~dst:d m ->
          if s = src && in_scope d then
            match hook ~src:s ~dst:d m with
            | Some m' -> Network.Replace m'
            | None -> Network.Deliver
          else Network.Deliver)
      in
      fun () -> Network.remove_filter net id)
  | Fault.Slander { src; victim }, _ -> (
    (* Forged frames claiming the victim's signature, broadcast periodically
       on the slanderer's own links. [Auth.forge] guarantees the tag never
       verifies, so receivers reject and quarantine the channel. *)
    match slander with
    | None -> fun () -> ()
    | Some hook ->
      periodic (fun () ->
          match hook ~src ~victim with
          | None -> ()
          | Some forged ->
            for dst = 0 to Network.n net - 1 do
              if dst <> src then Network.send net ~src ~dst forged
            done))
  | Fault.Tamper { src; dst }, _ ->
    (* Bit-flip with a stale signature. Without a payload mutator the drop
       fallback is observationally equivalent for receivers that verify
       every frame — the only difference is the missing forgery receipt. *)
    let id = Network.add_filter net (fun ~now:_ ~src:s ~dst:d m ->
        if s = src && d = dst then
          match tamper with
          | Some flip -> Network.Replace (flip m)
          | None -> Network.Drop
        else Network.Deliver)
    in
    fun () -> Network.remove_filter net id
  | Fault.Join p, _ ->
    (* Churn is a point event: the harness hook performs the whole
       admission (config change, fresh remap, dormant rejoin bootstrap)
       at [start]; there is nothing to disarm. Without a hook the phase
       arms as a no-op — generic code cannot reconfigure a cluster. *)
    (match join with None -> () | Some hook -> hook p);
    fun () -> ()
  | Fault.Leave p, _ ->
    (match leave with None -> () | Some hook -> hook p);
    fun () -> ()
  | Fault.Replay { src; dst }, _ ->
    (* Record the link's real frames (valid signatures) and re-deliver old
       ones periodically; receivers must absorb stale re-deliveries. *)
    let recorded = ref [] in
    let id = Network.add_filter net (fun ~now:_ ~src:s ~dst:d m ->
        if s = src && d = dst && List.length !recorded < commission_cap then
          recorded := !recorded @ [ m ];
        Network.Deliver)
    in
    let stop_replays =
      periodic (fun () ->
          match !recorded with
          | [] -> ()
          | oldest :: rest ->
            (* Cycle through the tape, oldest first. *)
            recorded := rest @ [ oldest ];
            Network.send net ~src ~dst oldest)
    in
    fun () ->
      Network.remove_filter net id;
      stop_replays ()

let install ~net ?set_mute ?amnesia ?equivocate ?slander ?tamper ?join ?leave
    schedule =
  let sim = Network.sim net in
  let t = { active = 0; installed = 0 } in
  List.iter
    (fun ph ->
      Sim.schedule_at sim ~at:ph.Fault.start (fun () ->
          t.active <- t.active + 1;
          t.installed <- t.installed + 1;
          note "+" ph;
          let disarm =
            arm net ~set_mute ?equivocate ?slander ?tamper ?join ?leave
              ph.Fault.what
          in
          match ph.Fault.stop with
          | None -> ()
          | Some stop ->
            Sim.schedule_at sim ~at:stop (fun () ->
                t.active <- t.active - 1;
                note "-" ph;
                disarm ();
                (* Recovery point of an amnesia crash: unmuted first, then
                   wiped — the hook typically restores a durable snapshot
                   and starts the rejoin broadcast, which needs the network
                   back. *)
                match (ph.Fault.what, amnesia) with
                | Fault.CrashAmnesia p, Some wipe -> wipe p
                | _ -> ())))
    schedule;
  t

let active t = t.active

let installed t = t.installed
