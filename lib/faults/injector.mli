(** Compile a {!Fault.schedule} onto a live simulation.

    Each phase is armed at its [start] time and disarmed at its [stop] time
    on the target network's stackable filter chain
    ({!Qs_sim.Network.add_filter}), so injected faults compose with each
    other and with whatever link-fault filters the cluster harness already
    chained (e.g. the Theorem-4 adversary's omissions — since PR 10 every
    installer goes through the chain; the legacy single [set_filter] slot
    is gone).

    [Crash] phases prefer the [set_mute] process hook (a cluster's
    [set_fault p Mute] / [Honest]), which also silences timers; without a
    hook they fall back to dropping every outgoing message at the network,
    which is observationally equivalent for the peers. Phase transitions are
    recorded in the {!Qs_obs.Journal} as [Custom "fault+ ..."/"fault- ..."]
    entries when it is enabled. *)

type t

val install :
  net:'m Qs_sim.Network.t ->
  ?set_mute:(int -> bool -> unit) ->
  ?amnesia:(int -> unit) ->
  ?equivocate:(src:int -> dst:int -> 'm -> 'm option) ->
  ?slander:(src:int -> victim:int -> 'm option) ->
  ?tamper:('m -> 'm) ->
  ?join:(int -> unit) ->
  ?leave:(int -> unit) ->
  Fault.schedule ->
  t
(** Schedule every phase; must be called before the simulation runs past the
    earliest [start].

    [amnesia] is invoked at a [CrashAmnesia] phase's [stop] time, after the
    mute is lifted: the harness wipes the process's volatile state back to
    its last durable snapshot and starts the rejoin protocol. Without the
    hook a [CrashAmnesia] behaves exactly like [Crash] (mute window only).

    The commission hooks let the injector speak each protocol's wire format:

    - [equivocate ~src ~dst m] produces the conflicting {e re-signed}
      variant [src] sends to [dst] instead of [m] ([None] passes [m]
      through). Armed as a [Replace] filter on [src]'s in-scope links.
      Without the hook, [Equivocate] phases arm as no-ops — generic code
      cannot invent validly-signed protocol payloads.
    - [slander ~src ~victim] forges one frame that claims [victim] signed
      it; the injector broadcasts it periodically on [src]'s links while
      the phase is armed (bounded, so an open-ended phase cannot keep the
      simulation alive). Without the hook, [Slander] arms as a no-op.
    - [tamper m] bit-flips a payload leaving the signature stale; armed as
      a [Replace] filter on the tampered link. Without the hook, the link
      drops instead — observationally equivalent for receivers that verify
      every frame.

    [Replay] needs no hook: the injector records the link's own frames and
    periodically re-delivers old ones verbatim (signatures stay valid).

    [join]/[leave] are the churn hooks: invoked once at a [Join]/[Leave]
    phase's [start] with the universe pid — the harness performs the whole
    config change (membership log entry, selector remap, dormant rejoin
    bootstrap for joiners, graceful drain for leavers). Point events: [stop]
    is ignored and without a hook the phases arm as no-ops. *)

val active : t -> int
(** Phases currently armed. *)

val installed : t -> int
(** Phases ever armed so far. *)
