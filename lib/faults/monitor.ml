module Sim = Qs_sim.Sim
module Stime = Qs_sim.Stime
module Journal = Qs_obs.Journal
module Metrics = Qs_obs.Metrics
module Json = Qs_obs.Json
module Quorum_intersection = Qs_core.Quorum_intersection

type violation = { at : float; check : string; detail : string }

type config = {
  n : int;
  f : int;
  correct : int list;
  quorum_bound : int option;
  bound_gauge : string option;
  settle : Stime.t;
  rejoin_retry_bound : int option;
}

let theorem3 ~f = f * (f + 1)

let theorem9 ~f = (3 * f) + 1

type t = {
  config : config;
  journal : Journal.t;
  mutable subscription : int;
  (* (who, suspect) -> virtual ms the suspicion was raised *)
  suspicions : (int * int, float) Hashtbl.t;
  (* (who, cepoch, epoch) -> quorums issued. Keyed on the (config epoch,
     detector epoch) pair: Theorem-3/9 budgets are re-anchored at every
     reconfiguration, and a restored snapshot from a different config must
     never alias the counters of the current one. *)
  issued : (int * int * int, int) Hashtbl.t;
  (* who -> virtual ms the rejoin started (removed on completion) *)
  recovering : (int, float) Hashtbl.t;
  (* who -> epoch the last completed rejoin fast-forwarded to *)
  rejoin_epoch : (int, int) Hashtbl.t;
  (* culprit -> virtual ms of the first proof of misbehavior against it *)
  proved : (int, float) Hashtbl.t;
  (* Churn state. [members] is the latest [Config_changed] member list —
     the slot->pid translation for every event journaled after it ([None]
     means no reconfiguration ever happened and slots are pids, the static
     harnesses' identity config). All tables above are keyed on universe
     pids via this translation. *)
  mutable members : int array option;
  (* Selector width from the latest [Reconfigured]. Translation is active
     only when it equals the member count — membership-width selectors,
     where slot s is held by members.(s). Width-preserving harnesses (the
     five SMR stacks keep their protocol quorum space at universe size)
     reconfigure with n = universe, and there slots already are pids. *)
  mutable width : int option;
  mutable cepoch_latest : int;
  (* pid -> cepoch its selector last [Reconfigured] to *)
  cepoch_of : (int, int) Hashtbl.t;
  (* pid -> virtual ms it was admitted (removed when its rejoin completes
     or it departs again) *)
  joined : (int, float) Hashtbl.t;
  (* pid -> virtual ms it was evidence-ejected (permanent) *)
  ejected : (int, float) Hashtbl.t;
  (* (cepoch, epoch) -> distinct quorums issued by correct processes, for
     the pairwise intersection invariant. Within one (config, detector)
     epoch all correct processes must agree on the quorum, so any two
     issued quorums should overlap in >= n - 2f processes — a sub-threshold
     pair certifies either disagreement or an undersized quorum. Checked
     incrementally as each quorum arrives. *)
  isect : (int * int, int list list) Hashtbl.t;
  mutable isect_pairs : int;
  mutable isect_min : int; (* max_int until the first pair *)
  mutable violations : violation list; (* reversed *)
  seen : (string, unit) Hashtbl.t; (* violation dedup *)
  mutable checks : int;
  mutable commits : int;
  mutable quorums : int;
  mutable proofs : int;
  mutable forgeries : int;
  mutable reconfigs : int;  (** [Reconfigured] events observed *)
}

let violate t ~at check detail =
  let key = check ^ "|" ^ detail in
  if not (Hashtbl.mem t.seen key) then begin
    Hashtbl.replace t.seen key ();
    t.violations <- { at; check; detail } :: t.violations
  end

let is_correct t p = List.mem p t.config.correct

(* Translate a journaled slot to the universe pid holding it under the
   latest config. Identity before the first [Config_changed]; out-of-range
   slots (a stale-width event racing a reconfiguration) pass through so the
   stale-config check below still names the sender. *)
let pid_of t slot =
  match (t.members, t.width) with
  | Some m, Some w when w = Array.length m ->
    if slot >= 0 && slot < Array.length m then m.(slot) else slot
  | _ -> slot

let on_quorum_issued t ~at ~who ~epoch ~quorum =
  t.quorums <- t.quorums + 1;
  t.checks <- t.checks + 1;
  (* Cross-epoch invariant: configs are applied synchronously at every
     correct process, so a quorum from a selector still on an older
     membership epoch acts on a retired Π. *)
  let ce = Option.value ~default:0 (Hashtbl.find_opt t.cepoch_of who) in
  if ce <> t.cepoch_latest then
    violate t ~at "stale-config"
      (Printf.sprintf "p%d issued a quorum under cepoch %d (current %d)" who ce
         t.cepoch_latest);
  (* Recovery invariant: between Recovery_started and Recovery_completed
     the process holds only wiped (pre-durable) selection state — issuing a
     quorum from it would be acting on stale information. *)
  if Hashtbl.mem t.recovering who then
    violate t ~at "stale-quorum"
      (Printf.sprintf "p%d issued a quorum mid-rejoin (epoch %d)" who epoch);
  (* Per-epoch assertions are gated on the rejoin epoch: epochs below it
     predate the recovery — the process never observed them with its
     current (post-amnesia) state, so charging it there double-counts its
     previous incarnation. *)
  let pre_rejoin =
    match Hashtbl.find_opt t.rejoin_epoch who with
    | Some re -> epoch < re
    | None -> false
  in
  (match t.config.quorum_bound with
   | None -> ()
   | Some _ when pre_rejoin -> ()
   | Some bound ->
     let k = (who, ce, epoch) in
     let count = 1 + Option.value ~default:0 (Hashtbl.find_opt t.issued k) in
     Hashtbl.replace t.issued k count;
     if count > bound then
       violate t ~at "quorum-bound"
         (Printf.sprintf "p%d issued %d quorums in epoch %d/c%d (bound %d)" who
            count epoch ce bound));
  (* No suspicion: the issued quorum must not contain a pair (i, j) where
     correct i has suspected j since well before the issue (one settle window
     absorbs propagation: a fresh suspicion legitimately races the quorum for
     a round or two). *)
  List.iter
    (fun i ->
      if is_correct t i then
        List.iter
          (fun j ->
            if j <> i then
              match Hashtbl.find_opt t.suspicions (i, j) with
              | Some since when at -. since >= Stime.to_ms t.config.settle ->
                violate t ~at "no-suspicion"
                  (Printf.sprintf
                     "p%d's quorum contains p%d and p%d, but p%d has suspected p%d since %.1fms"
                     who i j i j since)
              | _ -> ())
          quorum)
    quorum;
  (* Evidence invariant: once any process held a proof against j, every
     quorum issued after one settle window (the round the proof needs to
     gossip) must exclude j — permanently, no aging. *)
  List.iter
    (fun j ->
      match Hashtbl.find_opt t.proved j with
      | Some since when at -. since >= Stime.to_ms t.config.settle ->
        violate t ~at "excluded-quorum"
          (Printf.sprintf
             "p%d's quorum contains p%d, proven guilty since %.1fms" who j since)
      | _ -> ())
    quorum;
  (* Churn invariants, windowed like excluded-quorum (the settle window
     absorbs the rejoin round an in-model joiner needs): a joiner must not
     appear in quorums before its bootstrap completes, and an ejected pid
     must never reappear. *)
  List.iter
    (fun j ->
      (match Hashtbl.find_opt t.joined j with
       | Some since when at -. since >= Stime.to_ms t.config.settle ->
         violate t ~at "joiner-quorum"
           (Printf.sprintf
              "p%d's quorum contains p%d, joined at %.1fms with rejoin still incomplete"
              who j since)
       | _ -> ());
      match Hashtbl.find_opt t.ejected j with
      | Some since when at -. since >= Stime.to_ms t.config.settle ->
        violate t ~at "ejected-quorum"
          (Printf.sprintf "p%d's quorum contains p%d, ejected at %.1fms" who j
             since)
      | _ -> ())
    quorum;
  (* Quorum intersection: any two quorums issued under the same
     (config epoch, detector epoch) must overlap in at least n - 2f
     processes. Checked incrementally against the epoch's distinct quorums
     so a violation is timestamped at the issue that created it. *)
  let sorted_q = List.sort_uniq compare quorum in
  let key = (ce, epoch) in
  let bucket = Option.value ~default:[] (Hashtbl.find_opt t.isect key) in
  if not (List.mem sorted_q bucket) then begin
    let width = Option.value ~default:t.config.n t.width in
    let thr = Quorum_intersection.threshold ~n:width ~f:t.config.f in
    List.iter
      (fun other ->
        let o = Quorum_intersection.overlap sorted_q other in
        t.isect_pairs <- t.isect_pairs + 1;
        if o < t.isect_min then t.isect_min <- o;
        if o < thr then
          violate t ~at "quorum-intersection"
            (Printf.sprintf
               "quorums {%s} and {%s} in epoch %d/c%d overlap in %d < %d"
               (String.concat "," (List.map string_of_int sorted_q))
               (String.concat "," (List.map string_of_int other))
               epoch ce o thr))
      bucket;
    Hashtbl.replace t.isect key (sorted_q :: bucket)
  end

let on_proof t ~at culprit =
  t.proofs <- t.proofs + 1;
  t.checks <- t.checks + 1;
  (* Evidence invariant: proofs are sound — only actual misbehavers can
     produce two conflicting validly-signed frames, so a correct process
     must never be convicted (not even by an out-of-model adversary: that
     would mean a forged signature verified). *)
  if is_correct t culprit then
    violate t ~at "correct-excluded"
      (Printf.sprintf "correct p%d was proof-excluded" culprit);
  if not (Hashtbl.mem t.proved culprit) then Hashtbl.replace t.proved culprit at

let handle t entry =
  let at = entry.Journal.at in
  match entry.Journal.event with
  | Journal.Suspicion_raised { who; suspect } ->
    let who = pid_of t who and suspect = pid_of t suspect in
    if not (Hashtbl.mem t.suspicions (who, suspect)) then
      Hashtbl.replace t.suspicions (who, suspect) at
  | Journal.Suspicion_cleared { who; suspect } ->
    Hashtbl.remove t.suspicions (pid_of t who, pid_of t suspect)
  | Journal.Quorum_issued { who; epoch; quorum } ->
    let who = pid_of t who and quorum = List.map (pid_of t) quorum in
    if is_correct t who then on_quorum_issued t ~at ~who ~epoch ~quorum
  | Journal.Commit { who; _ } ->
    if is_correct t (pid_of t who) then t.commits <- t.commits + 1
  | Journal.Recovery_started { who } ->
    let who = pid_of t who in
    Hashtbl.replace t.recovering who at;
    (* The amnesiac forgot its suspicions and its per-epoch issue history
       dies with its previous incarnation (it was faulty during the crash
       window; the theorems bound correct processes). *)
    Hashtbl.iter
      (fun (i, j) _ -> if i = who then Hashtbl.remove t.suspicions (i, j))
      (Hashtbl.copy t.suspicions);
    Hashtbl.iter
      (fun (i, c, e) _ -> if i = who then Hashtbl.remove t.issued (i, c, e))
      (Hashtbl.copy t.issued)
  | Journal.Recovery_completed { who; epoch; retries } ->
    let who = pid_of t who in
    Hashtbl.remove t.recovering who;
    Hashtbl.replace t.rejoin_epoch who epoch;
    (* A completed bootstrap ends the joiner window: from here on it is a
       full member and may appear in quorums. *)
    Hashtbl.remove t.joined who;
    (match t.config.rejoin_retry_bound with
     | Some bound when retries > bound ->
       violate t ~at "rejoin-retries"
         (Printf.sprintf "p%d needed %d rejoin retries (bound %d)" who retries
            bound)
     | _ -> ())
  | Journal.Proof_found { culprit; _ } | Journal.Proof_admitted { culprit; _ } ->
    on_proof t ~at (pid_of t culprit)
  | Journal.Config_changed { cepoch; members } ->
    t.cepoch_latest <- cepoch;
    t.members <- Some (Array.of_list members);
    t.checks <- t.checks + 1;
    (* Ejection is permanent: a conviction must never be readmitted by a
       later config change. *)
    List.iter
      (fun p ->
        match Hashtbl.find_opt t.ejected p with
        | Some since ->
          violate t ~at "ejected-readmitted"
            (Printf.sprintf "p%d, ejected at %.1fms, is in the cepoch-%d config"
               p since cepoch)
        | None -> ())
      members
  | Journal.Reconfigured { who; cepoch; n } ->
    (* [who] is the process's slot in the config it just reconfigured to —
       the coordinating harness announces [Config_changed] before applying
       the change to the engines, so the latest member list translates it. *)
    t.reconfigs <- t.reconfigs + 1;
    t.width <- Some n;
    Hashtbl.replace t.cepoch_of (pid_of t who) cepoch
  | Journal.Member_joined { pid; _ } ->
    (* Universe pid, no translation. Window closes on the joiner's
       [Recovery_completed]. *)
    Hashtbl.replace t.joined pid at
  | Journal.Member_left { pid; _ } -> Hashtbl.remove t.joined pid
  | Journal.Member_ejected { pid; _ } ->
    t.checks <- t.checks + 1;
    Hashtbl.remove t.joined pid;
    if is_correct t pid then
      violate t ~at "correct-excluded"
        (Printf.sprintf "correct p%d was ejected" pid);
    if not (Hashtbl.mem t.ejected pid) then Hashtbl.replace t.ejected pid at
  | Journal.Forgery_rejected { claimed; _ } ->
    t.forgeries <- t.forgeries + 1;
    t.checks <- t.checks + 1;
    (* A forgery is local-only blame: the claimed signer must never end up
       convicted by it. Nothing to record — if a conviction of a correct
       process ever follows, [on_proof] flags it. The event still counts as
       a check: the verify-reject path actually ran. *)
    ignore claimed
  | _ -> ()

let create ?(journal = Journal.default ()) config =
  let t =
    {
      config;
      journal;
      subscription = -1;
      suspicions = Hashtbl.create 64;
      issued = Hashtbl.create 64;
      recovering = Hashtbl.create 8;
      rejoin_epoch = Hashtbl.create 8;
      proved = Hashtbl.create 8;
      members = None;
      width = None;
      cepoch_latest = 0;
      cepoch_of = Hashtbl.create 8;
      joined = Hashtbl.create 8;
      ejected = Hashtbl.create 8;
      isect = Hashtbl.create 16;
      isect_pairs = 0;
      isect_min = max_int;
      seen = Hashtbl.create 16;
      violations = [];
      checks = 0;
      commits = 0;
      quorums = 0;
      proofs = 0;
      forgeries = 0;
      reconfigs = 0;
    }
  in
  t.subscription <- Journal.subscribe ~j:journal (fun entry -> handle t entry);
  t

let detach t = Journal.unsubscribe ~j:t.journal t.subscription

(* Forget everything observed so far (suspicion onsets, per-epoch issue
   accounting, violations) but stay subscribed. The model checker calls this
   whenever it rolls the world back to an earlier point — without it, issue
   counts from abandoned branches would leak into the next branch and
   fabricate quorum-bound violations. *)
let reset t =
  Hashtbl.reset t.suspicions;
  Hashtbl.reset t.issued;
  Hashtbl.reset t.recovering;
  Hashtbl.reset t.rejoin_epoch;
  Hashtbl.reset t.proved;
  t.members <- None;
  t.width <- None;
  t.cepoch_latest <- 0;
  Hashtbl.reset t.cepoch_of;
  Hashtbl.reset t.joined;
  Hashtbl.reset t.ejected;
  Hashtbl.reset t.isect;
  t.isect_pairs <- 0;
  t.isect_min <- max_int;
  Hashtbl.reset t.seen;
  t.violations <- [];
  t.checks <- 0;
  t.commits <- 0;
  t.quorums <- 0;
  t.proofs <- 0;
  t.forgeries <- 0;
  t.reconfigs <- 0

(* ------------------------------------------------------------------ *)
(* Periodic history probe: prefix consistency + exactly-once, checked online
   so divergence is caught (and timestamped) while the run is in flight. *)

let rec is_prefix a b =
  match (a, b) with
  | [], _ -> true
  | _, [] -> false
  | x :: a', y :: b' -> x = y && is_prefix a' b'

let check_histories t ~at histories =
  t.checks <- t.checks + 1;
  List.iter
    (fun (p, h) ->
      let sorted = List.sort_uniq compare h in
      if List.length sorted <> List.length h then
        violate t ~at "exactly-once"
          (Printf.sprintf "p%d executed a request more than once" p))
    histories;
  let rec pairs = function
    | [] -> ()
    | (p1, h1) :: rest ->
      List.iter
        (fun (p2, h2) ->
          if not (is_prefix h1 h2 || is_prefix h2 h1) then
            violate t ~at "prefix-consistency"
              (Printf.sprintf "histories of p%d and p%d diverged" p1 p2))
        rest;
      pairs rest
  in
  pairs histories

let check_bound_gauges t ~at =
  match (t.config.quorum_bound, t.config.bound_gauge) with
  | Some bound, Some gauge ->
    t.checks <- t.checks + 1;
    List.iter
      (fun p ->
        match
          Metrics.find_gauge ~labels:[ ("p", string_of_int p) ] gauge
        with
        | Some v when v > float_of_int bound ->
          violate t ~at "quorum-bound-gauge"
            (Printf.sprintf "%s{p=%d} = %g exceeds bound %d" gauge p v bound)
        | _ -> ())
      t.config.correct
  | _ -> ()

(* End-of-run recovery liveness: in-model there is always at least one
   correct, reachable peer to answer a StateReq, so every rejoin that
   started must have completed by the horizon (retry/backoff absorbs mute
   windows). Only meaningful for in-model schedules — call it under the
   same gating as the liveness check. *)
let check_recovered t ~at =
  t.checks <- t.checks + 1;
  Hashtbl.iter
    (fun who since ->
      violate t ~at "rejoin-stuck"
        (Printf.sprintf "p%d started rejoining at %.1fms and never completed"
           who since))
    t.recovering

let attach_history_probe t ~sim ~every histories =
  let rec tick () =
    let at = Stime.to_ms (Sim.now sim) in
    check_histories t ~at (histories ());
    check_bound_gauges t ~at;
    Sim.schedule sim ~delay:every tick
  in
  Sim.schedule sim ~delay:every tick

(* ------------------------------------------------------------------ *)

let violations t = List.rev t.violations

let checks_run t = t.checks

let commits_observed t = t.commits

let quorums_observed t = t.quorums

let proofs_observed t = t.proofs

let forgeries_observed t = t.forgeries

let reconfigs_observed t = t.reconfigs

let intersection_pairs t = t.isect_pairs

let intersection_min_overlap t =
  if t.isect_pairs = 0 then None else Some t.isect_min

let violation_to_string v =
  Printf.sprintf "[%10.3fms] %-18s %s" v.at v.check v.detail

let violation_to_json v =
  Json.Obj
    [
      ("at_ms", Json.Float v.at);
      ("check", Json.String v.check);
      ("detail", Json.String v.detail);
    ]
