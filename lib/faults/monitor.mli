(** Online invariant monitor.

    Subscribes to the {!Qs_obs.Journal} and checks the paper's guarantees
    {e while the run executes}, not just at the end:

    - {b quorum-bound} — per (process, epoch) count of [Quorum_issued]
      events against Theorem 3's [f(f+1)] (Algorithm 1) or Theorem 9's
      [3f+1] (Follower Selection), flagged the moment the bound is crossed;
    - {b no-suspicion} — an issued quorum must not contain a pair [(i, j)]
      where correct [i] has suspected [j] for longer than the settle window
      (the window absorbs the one or two rounds a fresh suspicion needs to
      propagate into the issuer's matrix);
    - {b quorum-bound-gauge} — cross-checks the live
      [qs_quorums_per_epoch_max] / [fs_quorums_per_epoch_max] metrics
      gauges against the same bound;
    - {b prefix-consistency} and {b exactly-once} — a periodic probe
      ({!attach_history_probe}) compares the correct processes' executed
      histories pairwise, so divergence gets a virtual timestamp;
    - {b stale-quorum} — between [Recovery_started] and
      [Recovery_completed] a process holds only wiped post-amnesia state,
      so issuing a quorum in that window means acting on pre-crash stale
      information;
    - {b rejoin-retries} — a completed rejoin must have stayed within the
      configured retry bound;
    - {b rejoin-stuck} — at the end of an in-model run ({!check_recovered})
      every started rejoin must have completed;
    - {b correct-excluded} — evidence proofs are sound, so a correct process
      (one the schedule does not blame) must never be proof-excluded, in- or
      out-of-model: a conviction needs two conflicting frames that verify
      under its own key;
    - {b excluded-quorum} — once a [Proof_found] / [Proof_admitted] names a
      culprit, every quorum issued more than one settle window later must
      exclude it, permanently (the window absorbs the round the proof needs
      to gossip). The Theorem-3/9 {b quorum-bound} checks stay armed with
      commission faults in-model — exclusion must not cost extra epochs;
    - {b stale-config} — configs are applied synchronously at every correct
      process, so a quorum issued by a selector whose last [Reconfigured]
      membership epoch is not the latest [Config_changed] one acts on a
      retired Π;
    - {b joiner-quorum} — between [Member_joined] and the joiner's
      [Recovery_completed] it holds nothing but bootstrap state, so no
      quorum older than the settle window may contain it;
    - {b ejected-quorum} / {b ejected-readmitted} — an evidence-ejected pid
      must never reappear, neither in a later quorum nor in a later
      config's member list. A [Member_ejected] of a correct process is
      itself flagged ({b correct-excluded});
    - {b quorum-intersection} — any two distinct quorums issued by correct
      processes under the same (config epoch, detector epoch) must overlap
      in at least [n − 2f] processes
      ({!Qs_core.Quorum_intersection.threshold}); a sub-threshold pair
      certifies an undersized or out-of-universe quorum. Checked
      incrementally per issue, so the violation carries the timestamp of
      the quorum that created the bad pair.

    Per-epoch accounting is recovery-aware: a [Recovery_started] clears the
    process's suspicion onsets and per-epoch issue counts (its previous
    incarnation was faulty; the theorems bound correct processes), and
    quorum-bound assertions are gated on the rejoin epoch — a recovered
    process is not charged for epochs it never observed.

    Accounting is also churn-aware: issue counters are keyed on the
    {e (config epoch, detector epoch)} pair — Theorem-3/9 budgets are
    re-anchored at every reconfiguration, and a model-checker snapshot
    restored from a different config never aliases the current counters —
    and every journaled slot is translated to its universe pid through the
    latest [Config_changed] member list (identity until the first one, which
    is exactly the static harnesses' pid = slot convention).

    Liveness (Termination, eventual commit) is a campaign-level end-of-run
    check — only {e in-model} schedules owe it — but the monitor counts
    [Commit] events as the supporting evidence.

    Only safety violations are recorded; each distinct violation is reported
    once. *)

type violation = { at : float; check : string; detail : string }
(** [at] is virtual milliseconds. *)

type config = {
  n : int;
  f : int;
  correct : int list;  (** Processes the schedule does not blame. *)
  quorum_bound : int option;
      (** Per-epoch issued-quorum bound to enforce; [None] disables the
          bound and no-suspicion checks make sense only with it off-model. *)
  bound_gauge : string option;
      (** Metrics gauge holding the live per-epoch maximum
          ([qs_quorums_per_epoch_max] or [fs_quorums_per_epoch_max]). *)
  settle : Qs_sim.Stime.t;
      (** Suspicion age before no-suspicion applies; a few network rounds. *)
  rejoin_retry_bound : int option;
      (** Max rebroadcast rounds a completed rejoin may have needed;
          [None] disables the check (out-of-model schedules can starve a
          rejoiner arbitrarily long). *)
}

val theorem3 : f:int -> int
(** [f * (f+1)] — Algorithm 1's per-epoch bound. *)

val theorem9 : f:int -> int
(** [3f + 1] — Follower Selection's per-epoch bound. *)

type t

val create : ?journal:Qs_obs.Journal.t -> config -> t
(** Subscribes to the journal (default: the process-wide one, which must be
    enabled for events to flow). Call {!detach} when done. *)

val detach : t -> unit

val reset : t -> unit
(** Forget all observed state (suspicion onsets, per-epoch issue accounting,
    recorded violations and counters) while staying subscribed. Model
    checkers call this on every fork/restore — epoch-bound accounting from
    an abandoned branch must not leak into the next one. *)

val attach_history_probe :
  t ->
  sim:Qs_sim.Sim.t ->
  every:Qs_sim.Stime.t ->
  (unit -> (int * (int * int) list) list) ->
  unit
(** Check the supplied [(process, executed (client, rid) list)] histories for
    pairwise prefix consistency and per-history exactly-once every [every]
    ticks, and cross-check the bound gauges. Call before the run starts. *)

val check_recovered : t -> at:float -> unit
(** Flag every rejoin still in flight as [rejoin-stuck]. Recovery liveness
    holds only in-model (a correct reachable peer must exist to answer),
    so call this at end-of-run under the same gating as the liveness
    check. *)

val violations : t -> violation list
(** Chronological; empty means every online check held. *)

val checks_run : t -> int
(** Evidence the monitor actually ran (event checks + probe ticks). *)

val commits_observed : t -> int

val quorums_observed : t -> int

val proofs_observed : t -> int
(** [Proof_found] + [Proof_admitted] events seen. *)

val forgeries_observed : t -> int
(** [Forgery_rejected] events seen. *)

val reconfigs_observed : t -> int
(** [Reconfigured] events seen — the per-process config-change
    applications. Regression pins use it as a vacuity guard: a churn
    schedule that stops reconfiguring must fail loudly. *)

val intersection_pairs : t -> int
(** Quorum pairs the intersection invariant actually compared — the
    vacuity guard for {b quorum-intersection} (0 means every epoch group
    held at most one distinct quorum). *)

val intersection_min_overlap : t -> int option
(** Smallest pairwise overlap observed, [None] until the first pair. *)

val violation_to_string : violation -> string

val violation_to_json : violation -> Qs_obs.Json.t
