(** Online invariant monitor.

    Subscribes to the {!Qs_obs.Journal} and checks the paper's guarantees
    {e while the run executes}, not just at the end:

    - {b quorum-bound} — per (process, epoch) count of [Quorum_issued]
      events against Theorem 3's [f(f+1)] (Algorithm 1) or Theorem 9's
      [3f+1] (Follower Selection), flagged the moment the bound is crossed;
    - {b no-suspicion} — an issued quorum must not contain a pair [(i, j)]
      where correct [i] has suspected [j] for longer than the settle window
      (the window absorbs the one or two rounds a fresh suspicion needs to
      propagate into the issuer's matrix);
    - {b quorum-bound-gauge} — cross-checks the live
      [qs_quorums_per_epoch_max] / [fs_quorums_per_epoch_max] metrics
      gauges against the same bound;
    - {b prefix-consistency} and {b exactly-once} — a periodic probe
      ({!attach_history_probe}) compares the correct processes' executed
      histories pairwise, so divergence gets a virtual timestamp.

    Liveness (Termination, eventual commit) is a campaign-level end-of-run
    check — only {e in-model} schedules owe it — but the monitor counts
    [Commit] events as the supporting evidence.

    Only safety violations are recorded; each distinct violation is reported
    once. *)

type violation = { at : float; check : string; detail : string }
(** [at] is virtual milliseconds. *)

type config = {
  n : int;
  f : int;
  correct : int list;  (** Processes the schedule does not blame. *)
  quorum_bound : int option;
      (** Per-epoch issued-quorum bound to enforce; [None] disables the
          bound and no-suspicion checks make sense only with it off-model. *)
  bound_gauge : string option;
      (** Metrics gauge holding the live per-epoch maximum
          ([qs_quorums_per_epoch_max] or [fs_quorums_per_epoch_max]). *)
  settle : Qs_sim.Stime.t;
      (** Suspicion age before no-suspicion applies; a few network rounds. *)
}

val theorem3 : f:int -> int
(** [f * (f+1)] — Algorithm 1's per-epoch bound. *)

val theorem9 : f:int -> int
(** [3f + 1] — Follower Selection's per-epoch bound. *)

type t

val create : ?journal:Qs_obs.Journal.t -> config -> t
(** Subscribes to the journal (default: the process-wide one, which must be
    enabled for events to flow). Call {!detach} when done. *)

val detach : t -> unit

val reset : t -> unit
(** Forget all observed state (suspicion onsets, per-epoch issue accounting,
    recorded violations and counters) while staying subscribed. Model
    checkers call this on every fork/restore — epoch-bound accounting from
    an abandoned branch must not leak into the next one. *)

val attach_history_probe :
  t ->
  sim:Qs_sim.Sim.t ->
  every:Qs_sim.Stime.t ->
  (unit -> (int * (int * int) list) list) ->
  unit
(** Check the supplied [(process, executed (client, rid) list)] histories for
    pairwise prefix consistency and per-history exactly-once every [every]
    ticks, and cross-check the bound gauges. Call before the run starts. *)

val violations : t -> violation list
(** Chronological; empty means every online check held. *)

val checks_run : t -> int
(** Evidence the monitor actually ran (event checks + probe ticks). *)

val commits_observed : t -> int

val quorums_observed : t -> int

val violation_to_string : violation -> string

val violation_to_json : violation -> Qs_obs.Json.t
