module Sim = Qs_sim.Sim
module Metrics = Qs_obs.Metrics
module Journal = Qs_obs.Journal

type 'm expectation = {
  id : int;
  from : int;
  pred : 'm -> bool;
  tag : string;
  opened_at : Qs_sim.Stime.t;
  mutable overdue : bool;  (* deadline passed without a match *)
  mutable closed : bool;   (* fulfilled or cancelled *)
}

type 'm t = {
  sim : Sim.t;
  me : int;
  n : int;
  authenticate : src:int -> 'm -> bool;
  timeouts : Timeout.t;
  deliver : src:int -> 'm -> unit;
  on_suspected : int list -> unit;
  mutable expectations : 'm expectation list;
  mutable stale : 'm expectation list;
      (* cancelled while overdue: the suspicion is gone, but if the expected
         message still arrives it was late, not omitted, and the timeout
         must adapt — otherwise a view-change storm (suspect, cancel, new
         view, suspect...) never gives the detector a chance to learn and
         eventual strong accuracy fails. Newest first, bounded. *)
  mutable next_id : int;
  overdue_counts : int array;    (* per peer: open overdue expectations *)
  detected_flags : bool array;   (* permanent suspicions *)
  mutable raised_total : int;
  mutable false_suspicions : int;
  mutable rejected : int;
  mutable last_published : int list;
  m_expectations : Metrics.counter;
  m_timeouts : Metrics.counter;
  m_suspicions : Metrics.counter;
  m_false : Metrics.counter;
  m_detections : Metrics.counter;
  m_rejected : Metrics.counter;
  m_latency : Metrics.histogram;
}

let create ~sim ~me ~n ?(authenticate = fun ~src:_ _ -> true) ~timeouts ~deliver
    ~on_suspected () =
  if me < 0 || me >= n then invalid_arg "Detector.create: me out of range";
  let labels = [ ("p", string_of_int me) ] in
  {
    sim;
    me;
    n;
    authenticate;
    timeouts;
    deliver;
    on_suspected;
    expectations = [];
    stale = [];
    next_id = 0;
    overdue_counts = Array.make n 0;
    detected_flags = Array.make n false;
    raised_total = 0;
    false_suspicions = 0;
    rejected = 0;
    last_published = [];
    m_expectations = Metrics.counter ~labels "fd_expectations_total";
    m_timeouts = Metrics.counter ~labels "fd_expectation_timeouts_total";
    m_suspicions = Metrics.counter ~labels "fd_suspicions_total";
    m_false = Metrics.counter ~labels "fd_false_suspicions_total";
    m_detections = Metrics.counter ~labels "fd_detections_total";
    m_rejected = Metrics.counter ~labels "fd_rejected_total";
    m_latency = Metrics.histogram ~labels "fd_detection_latency_ms";
  }

let me t = t.me

let suspect_list t =
  List.filter
    (fun i -> t.detected_flags.(i) || t.overdue_counts.(i) > 0)
    (List.init t.n (fun i -> i))

let publish_if_changed t =
  let s = suspect_list t in
  if s <> t.last_published then begin
    if Journal.live () then begin
      let old = t.last_published in
      List.iter
        (fun i ->
          if not (List.mem i old) then
            Journal.record (Journal.Suspicion_raised { who = t.me; suspect = i }))
        s;
      List.iter
        (fun i ->
          if not (List.mem i s) then
            Journal.record (Journal.Suspicion_cleared { who = t.me; suspect = i }))
        old
    end;
    t.last_published <- s;
    Logs.debug ~src:Qs_stdx.Debug.fd (fun m ->
        m "p%d SUSPECTED {%s}" (t.me + 1)
          (String.concat ", " (List.map (fun i -> "p" ^ string_of_int (i + 1)) s)));
    t.on_suspected s
  end

let is_suspected t i = t.detected_flags.(i) || t.overdue_counts.(i) > 0

let is_detected t i = t.detected_flags.(i)

let suspected t = suspect_list t

let prune t =
  t.expectations <- List.filter (fun e -> not e.closed) t.expectations

let expect t ~from ?(tag = "") ?timeout pred =
  if from < 0 || from >= t.n then invalid_arg "Detector.expect: peer out of range";
  let e =
    {
      id = t.next_id;
      from;
      pred;
      tag;
      opened_at = Sim.now t.sim;
      overdue = false;
      closed = false;
    }
  in
  t.next_id <- t.next_id + 1;
  t.expectations <- e :: t.expectations;
  Metrics.inc t.m_expectations;
  let deadline =
    match timeout with Some d -> d | None -> Timeout.current t.timeouts from
  in
  Sim.schedule t.sim ~delay:deadline (fun () ->
      if not e.closed then begin
        (* Expectation completeness: deadline passed, suspect the issuer. *)
        e.overdue <- true;
        t.overdue_counts.(e.from) <- t.overdue_counts.(e.from) + 1;
        t.raised_total <- t.raised_total + 1;
        Metrics.inc t.m_timeouts;
        Metrics.inc t.m_suspicions;
        (* Detection latency: expectation issued -> suspicion raised. *)
        Metrics.observe t.m_latency
          (Qs_sim.Stime.to_ms Qs_sim.Stime.(Sim.now t.sim - e.opened_at));
        publish_if_changed t
      end)

let fulfill t e =
  e.closed <- true;
  if e.overdue then begin
    (* The suspicion was false: the message was late, not omitted. *)
    t.overdue_counts.(e.from) <- t.overdue_counts.(e.from) - 1;
    t.false_suspicions <- t.false_suspicions + 1;
    Metrics.inc t.m_false;
    Timeout.on_false_suspicion t.timeouts e.from
  end

let receive t ~src m =
  if not (t.authenticate ~src m) then begin
    t.rejected <- t.rejected + 1;
    Metrics.inc t.m_rejected
  end
  else begin
    let matched = ref false in
    List.iter
      (fun e ->
        if (not e.closed) && e.from = src && e.pred m then begin
          matched := true;
          fulfill t e
        end)
      t.expectations;
    if !matched then begin
      prune t;
      publish_if_changed t
    end;
    t.stale <-
      List.filter
        (fun e ->
          if e.from = src && e.pred m then begin
            t.false_suspicions <- t.false_suspicions + 1;
            Metrics.inc t.m_false;
            Timeout.on_false_suspicion t.timeouts e.from;
            false
          end
          else true)
        t.stale;
    t.deliver ~src m
  end

let max_stale = 256

let cancel_all t =
  let overdue = List.filter (fun e -> (not e.closed) && e.overdue) t.expectations in
  List.iter
    (fun e ->
      if not e.closed then begin
        e.closed <- true;
        if e.overdue then t.overdue_counts.(e.from) <- t.overdue_counts.(e.from) - 1
      end)
    t.expectations;
  t.expectations <- [];
  t.stale <- List.filteri (fun i _ -> i < max_stale) (overdue @ t.stale);
  publish_if_changed t

let detected t i =
  if i < 0 || i >= t.n then invalid_arg "Detector.detected: peer out of range";
  if not t.detected_flags.(i) then begin
    t.detected_flags.(i) <- true;
    t.raised_total <- t.raised_total + 1;
    Metrics.inc t.m_suspicions;
    Metrics.inc t.m_detections;
    publish_if_changed t
  end

let amnesia t =
  List.iter (fun e -> e.closed <- true) t.expectations;
  t.expectations <- [];
  t.stale <- [];
  Array.fill t.overdue_counts 0 t.n 0;
  Array.fill t.detected_flags 0 t.n false;
  (* The recovered process forgot whom it suspected; emit the clears so
     journal subscribers see a consistent stream, but skip [on_suspected] —
     the consumer's volatile state is wiped by its own amnesia hook, and
     re-arming decides what to expect next. *)
  if Journal.live () then
    List.iter
      (fun i -> Journal.record (Journal.Suspicion_cleared { who = t.me; suspect = i }))
      t.last_published;
  t.last_published <- []

let current_timeout t i =
  if i < 0 || i >= t.n then invalid_arg "Detector.current_timeout: peer out of range";
  Timeout.current t.timeouts i

let open_expectations t =
  List.length (List.filter (fun e -> not e.closed) t.expectations)

let raised_total t = t.raised_total

let false_suspicions t = t.false_suspicions

let rejected_messages t = t.rejected
