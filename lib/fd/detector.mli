(** Expectation-based Byzantine failure detector (paper, Section IV-B).

    One detector instance runs at each process, between the network and the
    application (Fig. 1). The application drives it with {e expectations}
    ("I expect a message matching [P] from process [i]") and {e detections}
    ("I have proof that [i] is faulty"); the detector turns missed or late
    expectations into suspicions and publishes the current suspect set.

    Event mapping to the paper:
    - [receive]   = ⟨RECEIVE, m, i⟩ (network layer input)
    - [~deliver]  = ⟨DELIVER, m, i⟩ (output to application / quorum selection)
    - [expect]    = ⟨EXPECT, P, i⟩
    - [~on_suspected] = ⟨SUSPECTED, S⟩
    - [detected]  = ⟨DETECTED, i⟩
    - [cancel_all] = ⟨CANCEL⟩

    Properties implemented (Section IV-B1):
    - {e Expectation completeness}: an uncancelled expectation either matches
      a delivered message or its issuer is eventually suspected (a timer
      fires at the expectation's deadline).
    - {e Detection completeness}: [detected i] suspends [i] forever.
    - {e Eventual strong accuracy}: holds when the application meets the
      accuracy requirements and timeouts adapt ([Timeout.Exponential] /
      [Additive]); a false suspicion is cancelled when the late message
      arrives, and the timeout grows so that eventually no false suspicions
      are raised. *)

type 'm t

val create :
  sim:Qs_sim.Sim.t ->
  me:int ->
  n:int ->
  ?authenticate:(src:int -> 'm -> bool) ->
  timeouts:Timeout.t ->
  deliver:(src:int -> 'm -> unit) ->
  on_suspected:(int list -> unit) ->
  unit ->
  'm t
(** [authenticate] defaults to accepting everything (protocol stacks that
    sign whole payloads verify before handing messages in). [deliver] and
    [on_suspected] are the module's outputs; [on_suspected] receives the full
    sorted suspect set each time it changes. *)

val me : _ t -> int

val receive : 'm t -> src:int -> 'm -> unit
(** Feed a message from the network. Unauthenticated messages are counted
    and discarded. Otherwise every open matching expectation from [src] is
    fulfilled (cancelling any suspicion it caused and adapting the timeout if
    it was overdue), then the message is delivered. *)

val expect : 'm t -> from:int -> ?tag:string -> ?timeout:Qs_sim.Stime.t -> ('m -> bool) -> unit
(** Register an expectation with deadline [now + Timeout.current from], or
    [now + timeout] when the override is given. Protocols use the override
    when the expected message needs more than one round trip — e.g. a chain
    ack whose deadline must scale with the distance to the tail, so that the
    process closest to a failure times out (and is believed) first. *)

val current_timeout : _ t -> int -> Qs_sim.Stime.t
(** The adapted timeout currently used for expectations on peer [i].
    Protocols that override [expect]'s deadline for multi-round exchanges
    should scale this value, not the initial timeout, so that their
    deadlines benefit from adaptation too. *)

val cancel_all : 'm t -> unit
(** Drop all open expectations and the suspicions they caused. Permanent
    detections stay.

    Expectations cancelled while overdue are remembered (bounded, newest
    first): if the expected message arrives later anyway, the suspicion was
    false and the timeout adapts exactly as if the expectation were still
    open. Without this, a reconfiguration storm — suspect, change view,
    cancel, suspect again — starves the timeout of the false-suspicion
    signal it adapts on, and eventual strong accuracy is lost whenever the
    network is slower than the initial timeout. *)

val detected : 'm t -> int -> unit
(** Permanently suspect a process (application-level proof of misbehavior). *)

val amnesia : 'm t -> unit
(** Crash-recovery wipe: close every expectation (their pending deadline
    timers become no-ops), drop the stale list, forget overdue counts and
    permanent detections, and reset the published suspect set to empty —
    emitting the matching [Suspicion_cleared] journal events but {e not}
    firing [on_suspected] (the consumer is wiped by its own amnesia hook).
    The adaptive timeouts are left in place: they are the durable part of
    the detector state (see {!Timeout.export}). After recovery the
    application re-arms expectations as its protocol dictates. *)

val suspected : _ t -> int list
(** Current suspect set, sorted. *)

val is_suspected : _ t -> int -> bool

val is_detected : _ t -> int -> bool

(** {2 Introspection for tests and experiments} *)

val open_expectations : _ t -> int

val raised_total : _ t -> int
(** Suspicion events raised over the run (per process, counting repeats). *)

val false_suspicions : _ t -> int
(** Suspicions later cancelled by a matching (late) message. *)

val rejected_messages : _ t -> int
(** Messages discarded by authentication. *)
