type strategy =
  | Fixed
  | Exponential of { factor : float; max : Qs_sim.Stime.t }
  | Additive of { step : Qs_sim.Stime.t; max : Qs_sim.Stime.t }

type t = {
  strategy : strategy;
  timeouts : Qs_sim.Stime.t array;
  mutable increases : int;
}

let validate_strategy ~initial = function
  | Fixed -> ()
  | Exponential { factor; max } ->
    if factor <= 1.0 then
      invalid_arg "Timeout.create: Exponential factor must exceed 1.0";
    if max < initial then
      invalid_arg "Timeout.create: Exponential max must be >= initial"
  | Additive { step; max } ->
    if step <= 0 then invalid_arg "Timeout.create: Additive step must be positive";
    if max < initial then
      invalid_arg "Timeout.create: Additive max must be >= initial"

let create ~n ~initial strategy =
  if initial <= 0 then invalid_arg "Timeout.create: initial must be positive";
  validate_strategy ~initial strategy;
  { strategy; timeouts = Array.make n initial; increases = 0 }

let check t i =
  if i < 0 || i >= Array.length t.timeouts then invalid_arg "Timeout: peer out of range"

let current t i =
  check t i;
  t.timeouts.(i)

let on_false_suspicion t i =
  check t i;
  match t.strategy with
  | Fixed -> ()
  | Exponential { factor; max } ->
    t.increases <- t.increases + 1;
    t.timeouts.(i) <-
      Stdlib.min max (int_of_float (float_of_int t.timeouts.(i) *. factor))
  | Additive { step; max } ->
    t.increases <- t.increases + 1;
    t.timeouts.(i) <- Stdlib.min max (t.timeouts.(i) + step)

let increases t = t.increases

let export t = Array.copy t.timeouts

let import t values =
  if Array.length values <> Array.length t.timeouts then
    invalid_arg "Timeout.import: length mismatch";
  Array.iter
    (fun v -> if v <= 0 then invalid_arg "Timeout.import: non-positive timeout")
    values;
  Array.blit values 0 t.timeouts 0 (Array.length values)
