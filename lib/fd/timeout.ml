type strategy =
  | Fixed
  | Exponential of { factor : float; max : Qs_sim.Stime.t }
  | Additive of { step : Qs_sim.Stime.t; max : Qs_sim.Stime.t }

type t = {
  strategy : strategy;
  timeouts : Qs_sim.Stime.t array;
  mutable increases : int;
}

let validate_strategy ~initial = function
  | Fixed -> ()
  | Exponential { factor; max } ->
    if factor <= 1.0 then
      invalid_arg "Timeout.create: Exponential factor must exceed 1.0";
    if max < initial then
      invalid_arg "Timeout.create: Exponential max must be >= initial"
  | Additive { step; max } ->
    if step <= 0 then invalid_arg "Timeout.create: Additive step must be positive";
    if max < initial then
      invalid_arg "Timeout.create: Additive max must be >= initial"

let create ~n ~initial strategy =
  if initial <= 0 then invalid_arg "Timeout.create: initial must be positive";
  validate_strategy ~initial strategy;
  { strategy; timeouts = Array.make n initial; increases = 0 }

let check t i =
  if i < 0 || i >= Array.length t.timeouts then invalid_arg "Timeout: peer out of range"

let current t i =
  check t i;
  t.timeouts.(i)

let on_false_suspicion t i =
  check t i;
  match t.strategy with
  | Fixed -> ()
  | Exponential { factor; max } ->
    t.increases <- t.increases + 1;
    t.timeouts.(i) <-
      Stdlib.min max (int_of_float (float_of_int t.timeouts.(i) *. factor))
  | Additive { step; max } ->
    t.increases <- t.increases + 1;
    t.timeouts.(i) <- Stdlib.min max (t.timeouts.(i) + step)

let increases t = t.increases

(* Reusable retry-delay engine over the same strategies. The failure
   detector grows a per-peer table on false suspicions; a connection
   supervisor grows a single delay on consecutive connect failures. Both
   adaptations are the same curve, so the runtime reuses the strategy
   vocabulary (and its validation) instead of inventing a second one. *)
module Backoff = struct
  type b = {
    strategy : strategy;
    floor : Qs_sim.Stime.t;
    jitter : float;
    mutable current : Qs_sim.Stime.t;
    mutable failures : int;
  }

  type nonrec t = b

  let create ~initial ?(jitter = 0.0) strategy =
    if initial <= 0 then invalid_arg "Backoff.create: initial must be positive";
    if jitter < 0.0 || jitter >= 1.0 then
      invalid_arg "Backoff.create: jitter must be in [0, 1)";
    validate_strategy ~initial strategy;
    { strategy; floor = initial; jitter; current = initial; failures = 0 }

  let current b = b.current

  let failures b = b.failures

  let cap b =
    match b.strategy with
    | Fixed -> None
    | Exponential { max; _ } | Additive { max; _ } -> Some max

  let advance b =
    b.failures <- b.failures + 1;
    match b.strategy with
    | Fixed -> ()
    | Exponential { factor; max } ->
      b.current <- Stdlib.min max (int_of_float (float_of_int b.current *. factor))
    | Additive { step; max } -> b.current <- Stdlib.min max (b.current + step)

  let reset b =
    b.current <- b.floor;
    b.failures <- 0

  (* One concrete delay draw: the caller supplies a uniform [u] in [0, 1)
     (its own PRNG stream), and the result lands in
     [current * (1 - jitter), current * (1 + jitter)] clamped to never fall
     below the floor nor exceed the strategy cap (so a fleet of reconnecting
     supervisors decorrelates without ever retrying faster than the
     configured minimum). *)
  let delay b ~u =
    if u < 0.0 || u >= 1.0 then invalid_arg "Backoff.delay: u must be in [0, 1)";
    let spread = 1.0 +. (b.jitter *. ((2.0 *. u) -. 1.0)) in
    let d = int_of_float (float_of_int b.current *. spread) in
    let d = Stdlib.max b.floor d in
    match cap b with None -> d | Some max -> Stdlib.min max d
end

let export t = Array.copy t.timeouts

let import t values =
  if Array.length values <> Array.length t.timeouts then
    invalid_arg "Timeout.import: length mismatch";
  Array.iter
    (fun v -> if v <= 0 then invalid_arg "Timeout.import: non-positive timeout")
    values;
  Array.blit values 0 t.timeouts 0 (Array.length values)
