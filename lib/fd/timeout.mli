(** Adaptive expectation timeouts.

    The failure detector's {e eventual strong accuracy} (paper, Section
    IV-B1b) cannot hold with a fixed timeout below the post-GST network bound:
    expected messages between correct processes must stop being suspected
    eventually. The standard fix is to grow the timeout whenever a suspicion
    proves false (the expected message arrived after the deadline). After
    finitely many increases the timeout exceeds two communication rounds and
    false suspicions stop.

    The [Fixed] strategy is kept for the ablation experiment (E7 variant)
    showing exactly this failure mode. *)

type strategy =
  | Fixed
      (** Never adapt: accuracy holds only if the initial timeout already
          exceeds the (unknown) network bound. *)
  | Exponential of { factor : float; max : Qs_sim.Stime.t }
      (** Multiply by [factor] on each false suspicion, capped at [max]. *)
  | Additive of { step : Qs_sim.Stime.t; max : Qs_sim.Stime.t }
      (** Add [step] on each false suspicion, capped at [max]. *)

type t
(** Per-peer timeout state for one observing process. *)

val create : n:int -> initial:Qs_sim.Stime.t -> strategy -> t
(** One timeout per observed peer, all starting at [initial]. Raises
    [Invalid_argument] on parameters that cannot adapt: [initial <= 0], an
    [Exponential] with [factor <= 1.0], an [Additive] with [step <= 0], or a
    cap below [initial] (the timeout could then never reach, let alone
    respect, its own [max]). *)

val current : t -> int -> Qs_sim.Stime.t
(** Current timeout used for expectations on messages from peer [i]. *)

val on_false_suspicion : t -> int -> unit
(** The expected message from peer [i] arrived after its deadline: adapt. *)

val increases : t -> int
(** Total number of adaptations (all peers) — an accuracy-cost metric. *)

val export : t -> Qs_sim.Stime.t array
(** Copy of the per-peer timeouts — the durable part of the adaptive state.
    Persisting it means a recovered process does not re-learn the network
    bound from scratch (re-suffering the false suspicions that taught it). *)

val import : t -> Qs_sim.Stime.t array -> unit
(** Restore {!export} output into an existing instance. [Invalid_argument]
    on a length mismatch or a non-positive timeout. *)
