(** Adaptive expectation timeouts.

    The failure detector's {e eventual strong accuracy} (paper, Section
    IV-B1b) cannot hold with a fixed timeout below the post-GST network bound:
    expected messages between correct processes must stop being suspected
    eventually. The standard fix is to grow the timeout whenever a suspicion
    proves false (the expected message arrived after the deadline). After
    finitely many increases the timeout exceeds two communication rounds and
    false suspicions stop.

    The [Fixed] strategy is kept for the ablation experiment (E7 variant)
    showing exactly this failure mode. *)

type strategy =
  | Fixed
      (** Never adapt: accuracy holds only if the initial timeout already
          exceeds the (unknown) network bound. *)
  | Exponential of { factor : float; max : Qs_sim.Stime.t }
      (** Multiply by [factor] on each false suspicion, capped at [max]. *)
  | Additive of { step : Qs_sim.Stime.t; max : Qs_sim.Stime.t }
      (** Add [step] on each false suspicion, capped at [max]. *)

type t
(** Per-peer timeout state for one observing process. *)

val create : n:int -> initial:Qs_sim.Stime.t -> strategy -> t
(** One timeout per observed peer, all starting at [initial]. Raises
    [Invalid_argument] on parameters that cannot adapt: [initial <= 0], an
    [Exponential] with [factor <= 1.0], an [Additive] with [step <= 0], or a
    cap below [initial] (the timeout could then never reach, let alone
    respect, its own [max]). *)

val current : t -> int -> Qs_sim.Stime.t
(** Current timeout used for expectations on messages from peer [i]. *)

val on_false_suspicion : t -> int -> unit
(** The expected message from peer [i] arrived after its deadline: adapt. *)

val increases : t -> int
(** Total number of adaptations (all peers) — an accuracy-cost metric. *)

(** Retry-delay engine over the same adaptation strategies — what the real
    transport's per-peer connection supervisors use for reconnect pacing.
    [advance] grows the delay on each consecutive failure (same curve as
    {!on_false_suspicion}), [reset] snaps back to the floor on success, and
    {!Backoff.delay} draws one concrete, jittered delay. *)
module Backoff : sig
  type t

  val create : initial:Qs_sim.Stime.t -> ?jitter:float -> strategy -> t
  (** [jitter] (default 0) is the +/- fraction of the current delay that
      {!delay} randomizes over. [Invalid_argument] on [initial <= 0], a
      jitter outside [0, 1), or strategy parameters {!create} would reject. *)

  val current : t -> Qs_sim.Stime.t
  (** The un-jittered current delay. *)

  val failures : t -> int
  (** Consecutive failures since the last {!reset}. *)

  val advance : t -> unit
  (** Record a failure and grow the delay (no-op growth for [Fixed]). *)

  val reset : t -> unit
  (** Success: snap back to the floor and zero the failure count. *)

  val delay : t -> u:float -> Qs_sim.Stime.t
  (** A concrete delay draw: [u] is caller-supplied uniform randomness in
      [0, 1). The result stays within [current * (1 +/- jitter)], never
      below the creation-time floor, and never above the strategy cap.
      [Invalid_argument] on [u] outside [0, 1). *)
end

val export : t -> Qs_sim.Stime.t array
(** Copy of the per-peer timeouts — the durable part of the adaptive state.
    Persisting it means a recovered process does not re-learn the network
    bound from scratch (re-suffering the false suspicions that taught it). *)

val import : t -> Qs_sim.Stime.t array -> unit
(** Restore {!export} output into an existing instance. [Invalid_argument]
    on a length mismatch or a non-positive timeout. *)
