module Graph = Qs_graph.Graph
module Indep = Qs_graph.Indep
module Line = Qs_graph.Line_subgraph
module Pid = Qs_core.Pid
module Msg = Qs_core.Msg
module Suspicion_matrix = Qs_core.Suspicion_matrix
module Quorum_select = Qs_core.Quorum_select
module Metrics = Qs_obs.Metrics
module Journal = Qs_obs.Journal

type t = {
  mutable config : Quorum_select.config;
  mutable me : Pid.t;
  auth : Qs_crypto.Auth.t;
  send : Fmsg.t -> unit;
  on_quorum : leader:Pid.t -> Pid.t list -> unit;
  fd_expect : leader:Pid.t -> epoch:int -> unit;
  fd_cancel : unit -> unit;
  fd_detected : Pid.t -> unit;
  mutable matrix : Suspicion_matrix.t;
  mutable view : Qs_core.Suspect_view.t;
  mutable cepoch : int;
  mutable epoch : int;
  mutable suspecting : Pid.t list;
  mutable leader : Pid.t;
  mutable stable : bool;
  mutable qlast : Pid.t list;
  mutable history : (Pid.t * Pid.t list) list; (* reversed *)
  mutable epochs_entered : int;
  mutable detections : Pid.t list;
  mutable rejected : int;
  mutable issued_in_epoch : int;
  mutable max_issued_in_epoch : int;
  mutable dormant : bool;
  mutable excluded : Pid.t list; (* proven-guilty, conviction order *)
  mutable policy : Qs_core.Selection_policy.t;
  m_updates_sent : Metrics.counter;
  m_updates_merged : Metrics.counter;
  m_rejected : Metrics.counter;
  m_quorums : Metrics.counter;
  m_epochs : Metrics.counter;
  m_detections : Metrics.counter;
  g_this_epoch : Metrics.gauge;
  g_epoch_max : Metrics.gauge;
}

let q_of t = Quorum_select.q t.config

let default_quorum config = List.init (Quorum_select.q config) (fun i -> i)

(* Exclusion cap mirrors Quorum_select: applying more than [f] convictions
   would leave fewer than q eligible processes and wedge the defaults. *)
let applied_exclusions t =
  List.filteri (fun i _ -> i < t.config.Quorum_select.f) t.excluded

(* The deterministic leader rule with exclusions: the minimum degree-0
   vertex of the line subgraph that is not proven guilty. With no
   exclusions this is exactly [Line.leader_of] (Lemma 5's unique leader);
   with them it is still a deterministic function of (matrix, epoch,
   admitted proofs), which is all agreement needs. *)
let leader_with ~n ~excluded l =
  let rec first v =
    if v >= n then None
    else if Graph.degree l v = 0 && not (List.mem v excluded) then Some v
    else first (v + 1)
  in
  first 0

(* The epoch-bump default (line 12's {p1..pq}) skips convicted processes:
   the first q eligible ids. *)
let default_quorum_of t =
  let ex = applied_exclusions t in
  let rec take k v =
    if k = 0 then []
    else if v >= t.config.Quorum_select.n then [] (* unreachable: |ex| <= f leaves >= q eligible *)
    else if List.mem v ex then take k (v + 1)
    else v :: take (k - 1) (v + 1)
  in
  take (q_of t) 0

let default_leader_of t =
  match default_quorum_of t with v :: _ -> v | [] -> 0

let create config ~me ~auth ~send ~on_quorum ?(fd_expect = fun ~leader:_ ~epoch:_ -> ())
    ?(fd_cancel = fun () -> ()) ?(fd_detected = fun _ -> ()) () =
  Quorum_select.validate_config config;
  if config.Quorum_select.n <= 3 * config.Quorum_select.f then
    invalid_arg "Follower_select: requires n > 3f";
  if me < 0 || me >= config.Quorum_select.n then
    invalid_arg "Follower_select.create: me out of range";
  let labels = [ ("p", string_of_int me) ] in
  (* Theorem 9's per-epoch bound for Follower Selection, published next to
     the live counts (mirrors [qs_bound_theorem3] in Quorum_select). *)
  Metrics.set_g
    ~labels:[ ("f", string_of_int config.Quorum_select.f) ]
    "fs_bound_theorem9"
    (float_of_int ((3 * config.Quorum_select.f) + 1));
  let matrix = Suspicion_matrix.create config.Quorum_select.n in
  {
    config;
    me;
    auth;
    send;
    on_quorum;
    fd_expect;
    fd_cancel;
    fd_detected;
    matrix;
    view = Qs_core.Suspect_view.create matrix ~epoch:1;
    cepoch = 0;
    epoch = 1;
    suspecting = [];
    leader = 0;
    stable = true;
    qlast = default_quorum config;
    history = [];
    epochs_entered = 0;
    detections = [];
    rejected = 0;
    issued_in_epoch = 0;
    max_issued_in_epoch = 0;
    dormant = false;
    excluded = [];
    policy = Qs_core.Selection_policy.default;
    m_updates_sent = Metrics.counter ~labels "fs_updates_sent_total";
    m_updates_merged = Metrics.counter ~labels "fs_updates_merged_total";
    m_rejected = Metrics.counter ~labels "fs_rejected_total";
    m_quorums = Metrics.counter ~labels "fs_quorums_issued_total";
    m_epochs = Metrics.counter ~labels "fs_epochs_entered_total";
    m_detections = Metrics.counter ~labels "fs_detections_total";
    g_this_epoch = Metrics.gauge ~labels "fs_quorums_this_epoch";
    g_epoch_max = Metrics.gauge ~labels "fs_quorums_per_epoch_max";
  }

let me t = t.me

(* Identical to Algorithm 1's updateSuspicions; see Quorum_select. *)
let update_suspicions t s =
  t.suspecting <- List.sort_uniq compare (List.filter (fun j -> j <> t.me) s);
  let row = Suspicion_matrix.row t.matrix t.me in
  let changed = ref false in
  List.iter
    (fun j ->
      if row.(j) < t.epoch then begin
        row.(j) <- t.epoch;
        changed := true
      end)
    t.suspecting;
  Metrics.inc t.m_updates_sent;
  if Journal.live () then
    Journal.record (Journal.Update_sent { owner = t.me; epoch = t.epoch });
  t.send (Fmsg.seal t.auth (Fmsg.Update { Msg.owner = t.me; row }));
  !changed

let select_followers ?(excluded = []) ?(reorder = fun c -> c) l ~leader ~q =
  let candidates =
    reorder
      (List.filter
         (fun v -> v <> leader && not (List.mem v excluded))
         (Line.possible_followers l))
  in
  let rec take k = function
    | _ when k = 0 -> []
    | [] -> invalid_arg "Follower_select.select_followers: not enough possible followers"
    | v :: rest -> v :: take (k - 1) rest
  in
  take (q - 1) candidates

(* The lottery bias — mirrors Quorum_select.suspicion_weights: suspicion
   history plus a dominating conviction penalty. *)
let suspicion_weights t =
  let n = t.config.Quorum_select.n in
  let w = Array.make n 0 in
  Suspicion_matrix.iter_nonzero t.matrix (fun ~suspector:_ ~suspect ~epoch:_ ->
      w.(suspect) <- w.(suspect) + 1);
  List.iter (fun e -> if e >= 0 && e < n then w.(e) <- w.(e) + n) t.excluded;
  fun v -> w.(v)

(* Policies reorder the leader's follower candidates; well-formedness
   (check d) admits any subset of possible followers, so receivers need no
   policy agreement to validate — but every correct process still installs
   the same policy so a leader handoff keeps quorum shapes consistent. *)
let policy_reorder t candidates =
  Qs_core.Selection_policy.order t.policy ~candidates
    ~weight:(suspicion_weights t) ~cepoch:t.cepoch ~epoch:t.epoch

let issue t ~leader quorum =
  t.qlast <- quorum;
  t.history <- (leader, quorum) :: t.history;
  t.issued_in_epoch <- t.issued_in_epoch + 1;
  if t.issued_in_epoch > t.max_issued_in_epoch then
    t.max_issued_in_epoch <- t.issued_in_epoch;
  Metrics.inc t.m_quorums;
  Metrics.set t.g_this_epoch (float_of_int t.issued_in_epoch);
  Metrics.set_max t.g_epoch_max (float_of_int t.issued_in_epoch);
  if Journal.live () then
    Journal.record (Journal.Quorum_issued { who = t.me; epoch = t.epoch; quorum });
  t.on_quorum ~leader quorum

(* updateQuorum (Algorithm 2, lines 7-26). *)
let rec update_quorum t =
  if t.dormant then () else begin
  Qs_core.Suspect_view.sync t.view ~epoch:t.epoch;
  let g = Qs_core.Suspect_view.graph t.view in
  if not (Qs_core.Suspect_view.feasible t.view (q_of t)) then begin
    (* Lines 9-16: inconsistent suspicions — new epoch, default quorum. *)
    t.epoch <- t.epoch + 1;
    t.epochs_entered <- t.epochs_entered + 1;
    t.issued_in_epoch <- 0;
    Metrics.inc t.m_epochs;
    Metrics.set t.g_this_epoch 0.0;
    if Journal.live () then
      Journal.record (Journal.Epoch_advanced { who = t.me; epoch = t.epoch });
    t.fd_cancel ();
    t.leader <- default_leader_of t;
    t.stable <- true;
    issue t ~leader:t.leader (default_quorum_of t);
    if not (update_suspicions t t.suspecting) then update_quorum t
  end
  else begin
    let l = Line.maximal g in
    match leader_with ~n:t.config.Quorum_select.n ~excluded:(applied_exclusions t) l with
    | None ->
      (* Cannot happen for n > 3f: Lemma 8 b) guarantees an uncovered vertex
         whenever an independent set of size q exists (and at most f
         exclusions leave an eligible one). *)
      assert false
    | Some new_leader ->
      if new_leader <> t.leader then begin
        t.stable <- false;
        t.leader <- new_leader;
        t.fd_cancel ();
        if new_leader <> t.me then t.fd_expect ~leader:new_leader ~epoch:t.epoch
        else begin
          let fw =
            select_followers ~excluded:(applied_exclusions t)
              ~reorder:(policy_reorder t) l ~leader:t.me ~q:(q_of t)
          in
          t.send
            (Fmsg.seal t.auth
               (Fmsg.Followers
                  {
                    Fmsg.leader = t.me;
                    epoch = t.epoch;
                    followers = fw;
                    line = Graph.edges l;
                  }))
        end
      end
  end
  end

let handle_suspected t s = ignore (update_suspicions t s)

let well_formed ?(excluded = []) ~n ~q ~suspect_graph f =
  let fw = f.Fmsg.followers in
  let distinct = List.length (List.sort_uniq compare fw) = List.length fw in
  let in_range v = v >= 0 && v < n in
  (* a) l ∉ Fw ∧ |Fw| = q − 1 *)
  distinct
  && List.length fw = q - 1
  && List.for_all in_range fw
  && (not (List.mem f.Fmsg.leader fw))
  && in_range f.Fmsg.leader
  && List.for_all (fun (i, j) -> in_range i && in_range j && i <> j) f.Fmsg.line
  &&
  match Fmsg.line_graph ~n f with
  | exception Invalid_argument _ -> false
  | l' ->
    (* b) L' ⊆ G_i and L' is a line subgraph *)
    Line.is_line_subgraph l'
    && Graph.is_subgraph ~sub:l' ~super:suspect_graph
    (* c) l_{L'} = sender, under the receiver's admitted exclusions *)
    && leader_with ~n ~excluded l' = Some f.Fmsg.leader
    (* d) all followers are possible followers for L', none proven guilty *)
    && List.for_all
         (fun v -> Line.is_possible_follower l' v && not (List.mem v excluded))
         fw

let detect t culprit =
  t.detections <- culprit :: t.detections;
  Metrics.inc t.m_detections;
  t.fd_detected culprit

let handle_followers t msg f =
  let j = f.Fmsg.leader in
  (* While dormant the local (leader, epoch, qlast) triple is the wiped
     default, so both the equivocation and the well-formedness checks would
     compare against state the process no longer legitimately holds. *)
  if (not t.dormant) && j = t.leader && f.Fmsg.epoch = t.epoch then begin
    let n = t.config.Quorum_select.n in
    Qs_core.Suspect_view.sync t.view ~epoch:t.epoch;
    if
      not
        (well_formed ~excluded:(applied_exclusions t) ~n ~q:(q_of t)
           ~suspect_graph:(Qs_core.Suspect_view.graph t.view)
           f)
    then detect t j
    else begin
      let quorum = List.sort compare (j :: f.Fmsg.followers) in
      if t.stable && quorum <> t.qlast then detect t j (* equivocation *)
      else if not t.stable then begin
        t.stable <- true;
        t.send msg; (* forward the FOLLOWERS message *)
        issue t ~leader:j quorum
      end
    end
  end

let handle_msg t msg =
  if not (Fmsg.verify t.auth msg) then begin
    t.rejected <- t.rejected + 1;
    Metrics.inc t.m_rejected
  end
  else
    match msg.Fmsg.payload with
    | Fmsg.Update u
      when Array.length u.Msg.row <> t.config.Quorum_select.n
           || u.Msg.owner >= t.config.Quorum_select.n ->
      (* Sealed under a different configuration (in flight across a
         reconfiguration): its slots name other processes. Drop, like a bad
         signature. *)
      t.rejected <- t.rejected + 1;
      Metrics.inc t.m_rejected
    | Fmsg.Update u ->
      (* Skip re-selection when the merge left the current-epoch graph
         untouched (see Quorum_select.handle_update). Guarded on no
         exclusions: a conviction changes the leader rule without touching
         the graph, so the exclusion path re-derives unconditionally. *)
      let in_sync =
        t.excluded = [] && Qs_core.Suspect_view.in_sync t.view ~epoch:t.epoch
      in
      let gen = Qs_core.Suspect_view.generation t.view in
      let changed = Suspicion_matrix.merge_row t.matrix ~owner:u.Msg.owner u.Msg.row in
      if changed then begin
        Metrics.inc t.m_updates_merged;
        if Journal.live () then
          Journal.record (Journal.Update_merged { who = t.me; owner = u.Msg.owner });
        t.send msg;
        if not (in_sync && Qs_core.Suspect_view.generation t.view = gen) then
          update_quorum t
      end
    | Fmsg.Followers f -> handle_followers t msg f

(* Mirrors Quorum_select.reevaluate: dormancy-respecting re-derivation for
   out-of-band (delta-gossip) matrix merges. *)
let reevaluate t = update_quorum t

let epoch t = t.epoch

let leader t = t.leader

let stable t = t.stable

let last_quorum t = t.qlast

let quorums_issued t = List.length t.history

let quorum_history t = List.rev t.history

let epochs_entered t = t.epochs_entered

let max_issued_per_epoch t = t.max_issued_in_epoch

let detections t = t.detections

let matrix t = t.matrix

let suspect_graph t = Suspicion_matrix.suspect_graph t.matrix ~epoch:t.epoch

let rejected_msgs t = t.rejected

(* ------------------------------------------------------------------ *)
(* Evidence-driven permanent exclusion — mirrors Quorum_select, except no
   forced re-issue: Algorithm 2 only changes quorums through leader changes
   and epoch bumps, and a stable leader re-broadcasting a shrunken
   FOLLOWERS message would trip its own receivers' equivocation check. The
   conviction takes effect on every future leader derivation, default
   quorum and well-formedness check. *)

let exclude t p =
  if p < 0 || p >= t.config.Quorum_select.n then
    invalid_arg "Follower_select.exclude: out of range";
  if not (List.mem p t.excluded) then begin
    t.excluded <- t.excluded @ [ p ];
    (* A convicted current leader must be stepped away from now: re-derive
       (the leader rule skips excluded vertices, so this cannot pick [p]
       again, and the normal FOLLOWERS exchange issues the next quorum). *)
    if (not t.dormant) && List.mem p (applied_exclusions t) && t.leader = p then
      update_quorum t
  end

let excluded t = List.sort compare t.excluded

(* ------------------------------------------------------------------ *)
(* Selection policy — static configuration, like Quorum_select. No forced
   re-issue on install (same reasoning as [exclude]: a stable leader
   re-broadcasting a reshaped FOLLOWERS message would trip equivocation);
   the policy shapes every future FOLLOWERS selection by this leader. *)

let policy t = t.policy

let set_policy t p =
  Qs_core.Selection_policy.validate p ~n:t.config.Quorum_select.n ~q:(q_of t);
  t.policy <- p

(* ------------------------------------------------------------------ *)
(* Reconfiguration — mirrors Quorum_select.reconfigure. The follower
   variant additionally resets the leader/stability machinery to the new
   config's defaults and cancels any armed expectation: the old leader may
   not even be a member any more. *)

let cepoch t = t.cepoch

let reconfigure t config' ~me ~cepoch ~of_new =
  Quorum_select.validate_config config';
  if config'.Quorum_select.n <= 3 * config'.Quorum_select.f then
    invalid_arg "Follower_select.reconfigure: requires n > 3f";
  if me < 0 || me >= config'.Quorum_select.n then
    invalid_arg "Follower_select.reconfigure: me out of range";
  if Qs_crypto.Auth.universe t.auth < config'.Quorum_select.n then
    invalid_arg "Follower_select.reconfigure: auth universe too small";
  if cepoch <= t.cepoch then
    invalid_arg "Follower_select.reconfigure: config epoch must advance";
  let old_n = t.config.Quorum_select.n in
  let inv = Array.make old_n (-1) in
  for i = 0 to config'.Quorum_select.n - 1 do
    let o = of_new i in
    if o >= old_n then invalid_arg "Follower_select.reconfigure: of_new out of range";
    if o >= 0 then inv.(o) <- i
  done;
  let remap_pids ps =
    List.filter_map
      (fun p -> if p >= 0 && p < old_n && inv.(p) >= 0 then Some inv.(p) else None)
      ps
  in
  let matrix' =
    Suspicion_matrix.remap t.matrix ~n:config'.Quorum_select.n ~of_new
  in
  Suspicion_matrix.clear_watcher t.matrix;
  t.matrix <- matrix';
  t.view <- Qs_core.Suspect_view.create matrix' ~epoch:t.epoch;
  t.config <- config';
  t.me <- me;
  t.cepoch <- cepoch;
  t.suspecting <- List.sort_uniq compare (remap_pids t.suspecting);
  t.excluded <- remap_pids t.excluded;
  t.detections <- remap_pids t.detections;
  t.policy <-
    Qs_core.Selection_policy.remap t.policy ~n:config'.Quorum_select.n ~of_new;
  t.fd_cancel ();
  t.leader <- default_leader_of t;
  t.stable <- true;
  t.qlast <- default_quorum_of t;
  t.history <- [];
  t.issued_in_epoch <- 0;
  Metrics.set t.g_this_epoch 0.0;
  if Journal.live () then
    Journal.record
      (Journal.Reconfigured { who = t.me; cepoch; n = config'.Quorum_select.n });
  if not t.dormant then update_quorum t

(* ------------------------------------------------------------------ *)
(* Crash-recovery (amnesia) hooks — mirrors Quorum_select. *)

let dormant t = t.dormant

let amnesia t =
  Suspicion_matrix.blit
    ~src:(Suspicion_matrix.create t.config.Quorum_select.n)
    ~dst:t.matrix;
  t.epoch <- 1;
  t.suspecting <- [];
  t.leader <- default_leader_of t;
  t.stable <- true;
  t.qlast <- default_quorum_of t;
  t.history <- [];
  t.detections <- [];
  t.issued_in_epoch <- 0;
  t.max_issued_in_epoch <- 0;
  t.dormant <- true;
  Metrics.set t.g_this_epoch 0.0;
  t.fd_cancel ()

let absorb t ~matrix ~epoch =
  ignore (Suspicion_matrix.merge t.matrix matrix);
  if epoch > t.epoch then begin
    t.epoch <- epoch;
    t.epochs_entered <- t.epochs_entered + 1;
    t.issued_in_epoch <- 0;
    Metrics.inc t.m_epochs;
    Metrics.set t.g_this_epoch 0.0;
    if Journal.live () then
      Journal.record (Journal.Epoch_advanced { who = t.me; epoch = t.epoch });
    t.fd_cancel ();
    t.leader <- default_leader_of t;
    t.stable <- true;
    t.qlast <- default_quorum_of t
  end;
  t.dormant <- false;
  (* Re-derive the leader at the absorbed epoch; if it differs from the
     default the normal FOLLOWERS exchange (with a re-armed expectation)
     completes the rejoin. *)
  update_quorum t

(* ------------------------------------------------------------------ *)
(* Model-checker hooks — mirrors Quorum_select. *)

(* Appended only when non-default, so historical fingerprints (and pinned
   mc state counts) stay byte-identical under the default policy. *)
let policy_tag t =
  if Qs_core.Selection_policy.is_default t.policy then ""
  else "|" ^ Qs_core.Selection_policy.to_string t.policy

let fingerprint t =
  Format.asprintf "%d,%d,%d|%d|%a|%d|%b|%s|%s|%s|%d|%d|%b|%s%s"
    t.config.Quorum_select.n t.config.Quorum_select.f t.cepoch t.epoch
    Suspicion_matrix.pp t.matrix t.leader t.stable
    (String.concat "," (List.map string_of_int t.qlast))
    (String.concat "," (List.map string_of_int t.suspecting))
    (String.concat "," (List.map string_of_int t.detections))
    t.issued_in_epoch t.max_issued_in_epoch t.dormant
    (String.concat "," (List.map string_of_int t.excluded))
    (policy_tag t)

type snapshot = {
  s_config : Quorum_select.config;
  s_me : Pid.t;
  s_cepoch : int;
  s_matrix : Suspicion_matrix.t;
  s_epoch : int;
  s_suspecting : Pid.t list;
  s_leader : Pid.t;
  s_stable : bool;
  s_qlast : Pid.t list;
  s_history : (Pid.t * Pid.t list) list;
  s_epochs_entered : int;
  s_detections : Pid.t list;
  s_rejected : int;
  s_issued_in_epoch : int;
  s_max_issued_in_epoch : int;
  s_dormant : bool;
  s_excluded : Pid.t list;
  s_policy : Qs_core.Selection_policy.t;
}

let snapshot t =
  {
    s_config = t.config;
    s_me = t.me;
    s_cepoch = t.cepoch;
    s_matrix = Suspicion_matrix.copy t.matrix;
    s_epoch = t.epoch;
    s_suspecting = t.suspecting;
    s_leader = t.leader;
    s_stable = t.stable;
    s_qlast = t.qlast;
    s_history = t.history;
    s_epochs_entered = t.epochs_entered;
    s_detections = t.detections;
    s_rejected = t.rejected;
    s_issued_in_epoch = t.issued_in_epoch;
    s_max_issued_in_epoch = t.max_issued_in_epoch;
    s_dormant = t.dormant;
    s_excluded = t.excluded;
    s_policy = t.policy;
  }

let restore t s =
  t.config <- s.s_config;
  t.me <- s.s_me;
  t.cepoch <- s.s_cepoch;
  (* Cross-config restore: widths differ, so adopt a copy and rebuild the
     view (mirrors Quorum_select.restore). *)
  if Suspicion_matrix.n t.matrix <> Suspicion_matrix.n s.s_matrix then begin
    Suspicion_matrix.clear_watcher t.matrix;
    t.matrix <- Suspicion_matrix.copy s.s_matrix;
    t.view <- Qs_core.Suspect_view.create t.matrix ~epoch:s.s_epoch
  end
  else Suspicion_matrix.blit ~src:s.s_matrix ~dst:t.matrix;
  t.epoch <- s.s_epoch;
  t.suspecting <- s.s_suspecting;
  t.leader <- s.s_leader;
  t.stable <- s.s_stable;
  t.qlast <- s.s_qlast;
  t.history <- s.s_history;
  t.epochs_entered <- s.s_epochs_entered;
  t.detections <- s.s_detections;
  t.rejected <- s.s_rejected;
  t.issued_in_epoch <- s.s_issued_in_epoch;
  t.max_issued_in_epoch <- s.s_max_issued_in_epoch;
  t.dormant <- s.s_dormant;
  t.excluded <- s.s_excluded;
  t.policy <- s.s_policy
