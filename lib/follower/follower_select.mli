(** Follower Selection — Algorithm 2 of the paper (Section VIII).

    A leader-centric variant of Quorum Selection for applications where
    followers never talk to each other, so suspicions {e between followers}
    need not trigger a change ({e no leader suspicion} replaces
    {e no suspicion}). Under [n > 3f] and FIFO links it needs only [O(f)]
    quorum changes per epoch (Theorem 9) instead of Algorithm 1's [O(f²)].

    Mechanics: suspicions gossip exactly as in Algorithm 1; from the suspect
    graph each process computes a {e maximal line subgraph} and takes its
    designated node as leader (Definition 1). The leader picks [q − 1]
    {e possible followers} (Definition 2) and broadcasts a signed FOLLOWERS
    message carrying its line subgraph as justification; receivers check it
    is well formed (Definition 3) and adopt the quorum. A leader that omits,
    malforms or equivocates its FOLLOWERS message is reported to the failure
    detector ([fd_expect] / [fd_detected]), earning a suspicion that changes
    the leader.

    Deviations from the listing, documented here:
    - after an epoch bump whose re-stamped row is unchanged, evaluation
      continues locally (same liveness fix as in {!Qs_core.Quorum_select});
    - [stable] is reset to [true] on an epoch bump, since the bump installs
      the default quorum; the listing leaves it stale, which would let a
      Byzantine default leader slip an unchecked FOLLOWERS message through. *)

type t

val create :
  Qs_core.Quorum_select.config ->
  me:Qs_core.Pid.t ->
  auth:Qs_crypto.Auth.t ->
  send:(Fmsg.t -> unit) ->
  on_quorum:(leader:Qs_core.Pid.t -> Qs_core.Pid.t list -> unit) ->
  ?fd_expect:(leader:Qs_core.Pid.t -> epoch:int -> unit) ->
  ?fd_cancel:(unit -> unit) ->
  ?fd_detected:(Qs_core.Pid.t -> unit) ->
  unit ->
  t
(** [send] must broadcast to all processes including the sender (like
    Algorithm 1). The [fd_*] callbacks drive the failure detector: expect a
    FOLLOWERS message from the new leader ([fd_expect]), cancel expectations
    on leader/epoch change ([fd_cancel]), report proofs of misbehavior
    ([fd_detected]). They default to no-ops for harnesses that emulate the
    detector externally. *)

val me : t -> Qs_core.Pid.t

val handle_suspected : t -> Qs_core.Pid.t list -> unit
(** ⟨SUSPECTED, S⟩ from the failure detector. *)

val handle_msg : t -> Fmsg.t -> unit
(** An UPDATE or FOLLOWERS message from the network. *)

val epoch : t -> int

val leader : t -> Qs_core.Pid.t

val stable : t -> bool

val last_quorum : t -> Qs_core.Pid.t list
(** Current quorum including the leader, sorted. *)

val quorums_issued : t -> int

val quorum_history : t -> (Qs_core.Pid.t * Qs_core.Pid.t list) list
(** (leader, quorum) in issue order. *)

val epochs_entered : t -> int

val max_issued_per_epoch : t -> int
(** Largest number of quorums issued within any single epoch — the quantity
    Theorem 9 bounds by [3f+1]. Also published live as the
    [fs_quorums_per_epoch_max] gauge. *)

val detections : t -> Qs_core.Pid.t list
(** Processes this node reported via [fd_detected], most recent first. *)

val matrix : t -> Qs_core.Suspicion_matrix.t

val reevaluate : t -> unit
(** Re-derive the leader/quorum after an out-of-band (delta-gossip) matrix
    merge. Respects dormancy, unlike {!absorb}. *)

val suspect_graph : t -> Qs_graph.Graph.t

val rejected_msgs : t -> int

val select_followers :
  ?excluded:Qs_core.Pid.t list ->
  ?reorder:(Qs_core.Pid.t list -> Qs_core.Pid.t list) ->
  Qs_graph.Graph.t ->
  leader:Qs_core.Pid.t ->
  q:int ->
  Qs_core.Pid.t list
(** The deterministic follower choice a correct leader makes: the [q − 1]
    first possible followers of the line subgraph, excluding the leader
    and any proven-guilty process ([excluded] defaults to none). [reorder]
    (default: identity, i.e. smallest-first) is the selection-policy hook —
    it receives the filtered candidates and must return a permutation of
    them. Exposed for tests. Raises [Invalid_argument] if fewer are
    available (impossible under the model's [n > 3f]). *)

val well_formed :
  ?excluded:Qs_core.Pid.t list ->
  n:int ->
  q:int ->
  suspect_graph:Qs_graph.Graph.t ->
  Fmsg.followers ->
  bool
(** Definition 3 check against the receiver's current suspect graph, under
    its admitted exclusions: the sender must be the minimum {e eligible}
    degree-0 vertex of its line subgraph and no follower may be excluded.
    Exposed for tests. *)

(** {2 Evidence-driven permanent exclusion} — mirrors
    {!Qs_core.Quorum_select.exclude}. *)

val exclude : t -> Qs_core.Pid.t -> unit
(** Permanently bar a proven-guilty process from leadership, followership
    and the epoch-bump default quorum. At most [f] exclusions apply
    (earliest convictions win), quorums only change through the normal
    Algorithm-2 paths — except that a convicted {e current} leader triggers
    an immediate re-derivation. Survives {!amnesia}. Idempotent. *)

val excluded : t -> Qs_core.Pid.t list
(** Processes convicted so far, sorted. *)

(** {2 Selection policy} — mirrors {!Qs_core.Quorum_select.set_policy}. *)

val policy : t -> Qs_core.Selection_policy.t
(** The installed policy ({!Qs_core.Selection_policy.Lex_first} initially). *)

val set_policy : t -> Qs_core.Selection_policy.t -> unit
(** Install a selection policy: when this process leads, the follower
    candidates are reordered through {!Qs_core.Selection_policy.order}
    before the first [q − 1] are taken. Static configuration — every
    correct process installs the same one so a leader handoff keeps quorum
    shapes consistent, though receivers validate any subset of possible
    followers (Definition 3 does not constrain the order). No forced
    re-issue on install (same reasoning as {!exclude}: a stable leader
    re-broadcasting a reshaped FOLLOWERS message would trip its receivers'
    equivocation check). Validates against the current width; carried
    across {!reconfigure} via {!Qs_core.Selection_policy.remap}; survives
    {!amnesia}. The fingerprint gains a policy tag only when non-default. *)

(** {2 Reconfiguration (open membership)} — mirrors
    {!Qs_core.Quorum_select.reconfigure}. *)

val reconfigure :
  t ->
  Qs_core.Quorum_select.config ->
  me:Qs_core.Pid.t ->
  cepoch:int ->
  of_new:(int -> Qs_core.Pid.t) ->
  unit
(** Remap onto a new configuration (grow for joins, compact for
    leaves/ejections): matrix/view/suspicions/exclusions/detections carry
    over through [of_new], the leader/stability machinery resets to the new
    config's defaults (cancelling any armed expectation — the old leader
    may no longer be a member), per-epoch issue counters restart and
    [cepoch] is folded into {!fingerprint}. Requires [n > 3f] in the new
    config. *)

val cepoch : t -> int

(** {2 Crash-recovery (amnesia) hooks} — mirror {!Qs_core.Quorum_select}. *)

val amnesia : t -> unit
(** Lose all volatile Algorithm-2 state (matrix, epoch, leader, quorum,
    detections) and go dormant: incoming UPDATE rows still merge, but no
    quorum is issued and FOLLOWERS messages are ignored — the wiped
    (leader, epoch, qlast) triple would make the equivocation check compare
    against state the process no longer legitimately holds — until
    {!absorb}. Also cancels the attached detector's expectations. *)

val absorb : t -> matrix:Qs_core.Suspicion_matrix.t -> epoch:int -> unit
(** CRDT join of a peer's state: max-merge, fast-forward the epoch (the
    new-epoch path resets leader/quorum to the defaults, as Algorithm 2's
    own epoch advance does), clear dormancy and re-derive the leader. *)

val dormant : t -> bool
(** [true] between {!amnesia} and the first {!absorb}. *)

(** {2 Model-checker hooks} — mirror {!Qs_core.Quorum_select}. *)

val fingerprint : t -> string
(** Canonical encoding of the algorithm-visible state (epoch, matrix,
    leader, stability, last quorum, suspicions, detections, per-epoch issue
    counters). *)

type snapshot

val snapshot : t -> snapshot

val restore : t -> snapshot -> unit
