module Bitset = Qs_stdx.Bitset

let is_independent g vs =
  let rec loop = function
    | [] -> true
    | v :: rest -> List.for_all (fun u -> not (Graph.has_edge g v u)) rest && loop rest
  in
  loop vs

(* Exact maximum independent set on the subgraph induced by [active],
   by branching on a maximum-degree vertex with the standard reductions:
   - isolated vertices are always taken;
   - for a degree-1 vertex v, taking v is always optimal;
   - otherwise branch on a max-degree vertex w: either exclude w, or take w
     and drop its closed neighborhood. *)
let rec mis_size g active =
  (* Find max-degree vertex within [active]; count isolated on the fly. *)
  let best_v = ref (-1) and best_deg = ref (-1) in
  let isolated = ref 0 in
  let degree_one = ref (-1) in
  Bitset.iter
    (fun v ->
      let d =
        Bitset.fold (fun u acc -> if Bitset.mem active u then acc + 1 else acc)
          (Graph.neighbor_set g v) 0
      in
      if d = 0 then incr isolated
      else begin
        if d = 1 && !degree_one < 0 then degree_one := v;
        if d > !best_deg then begin
          best_deg := d;
          best_v := v
        end
      end)
    active;
  if !best_v < 0 then Bitset.cardinal active (* edgeless: take everything *)
  else if !degree_one >= 0 then begin
    (* Reduction: take the degree-1 vertex, remove it and its neighbor. *)
    let v = !degree_one in
    let next = Bitset.copy active in
    Bitset.remove next v;
    Bitset.iter (fun u -> if Bitset.mem next u then Bitset.remove next u) (Graph.neighbor_set g v);
    1 + mis_size g next
  end
  else begin
    let w = !best_v in
    (* Branch 1: exclude w. *)
    let without = Bitset.copy active in
    Bitset.remove without w;
    let excl = mis_size g without in
    (* Branch 2: include w, drop N[w]. *)
    let with_w = Bitset.copy without in
    Bitset.iter (fun u -> if Bitset.mem with_w u then Bitset.remove with_w u) (Graph.neighbor_set g w);
    let incl = 1 + mis_size g with_w in
    max excl incl
  end

let full_active g =
  let b = Bitset.create (Graph.n g) in
  List.iter (Bitset.add b) (Graph.vertices g);
  b

let max_independent_set_size g = mis_size g (full_active g)

let mis_within g active = mis_size g active

let exists_independent_set g q =
  q <= 0 || max_independent_set_size g >= q

let min_vertex_cover_size g = Graph.n g - max_independent_set_size g

(* Greedy lexicographic construction with exact feasibility checks: include
   the smallest candidate vertex whenever the remaining candidates can still
   complete an independent set of the target size. *)
let lex_first_independent_set g q =
  let n = Graph.n g in
  if q < 0 then invalid_arg "Indep.lex_first_independent_set: negative size";
  if q > n then None
  else if not (exists_independent_set g q) then None
  else begin
    let chosen = ref [] in
    let chosen_count = ref 0 in
    (* Candidates still allowed: greater than the cursor and non-adjacent to
       all chosen vertices. We maintain the non-adjacency part. *)
    let allowed = full_active g in
    let v = ref 0 in
    while !chosen_count < q && !v < n do
      if Bitset.mem allowed !v then begin
        (* Feasibility of including !v: candidates are allowed vertices > v
           that are not neighbors of v. *)
        let future = Bitset.copy allowed in
        Bitset.remove future !v;
        for u = 0 to !v - 1 do
          if Bitset.mem future u then Bitset.remove future u
        done;
        Bitset.iter
          (fun u -> if Bitset.mem future u then Bitset.remove future u)
          (Graph.neighbor_set g !v);
        let need = q - !chosen_count - 1 in
        if need <= 0 || mis_size g future >= need then begin
          chosen := !v :: !chosen;
          incr chosen_count;
          Bitset.remove allowed !v;
          Bitset.iter
            (fun u -> if Bitset.mem allowed u then Bitset.remove allowed u)
            (Graph.neighbor_set g !v)
        end
        (* else skipping !v: it stays out simply by advancing the cursor,
           because inclusion is only ever attempted at the cursor. *)
      end;
      incr v
    done;
    if !chosen_count = q then Some (List.rev !chosen) else None
  end

let max_independent_set g =
  let size = max_independent_set_size g in
  match lex_first_independent_set g size with
  | Some s -> s
  | None -> assert false (* size is achievable by construction *)
