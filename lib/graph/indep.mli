(** Independent sets of suspect graphs.

    Algorithm 1 (paper, Section VI-B) selects a quorum as the
    lexicographically-first independent set of size [q] in the suspect graph.
    The decision problem is NP-hard in general (Section VI-C), but suspect
    graphs have a small "core": only processes touched by suspicions have
    edges, so exact branching restricted to non-isolated vertices is fast —
    effectively bounded-vertex-cover, FPT in [f]. *)

val is_independent : Graph.t -> int list -> bool
(** No two listed vertices are adjacent. *)

val max_independent_set_size : Graph.t -> int
(** Exact maximum independent set size. *)

val mis_within : Graph.t -> Qs_stdx.Bitset.t -> int
(** Exact maximum independent set size of the subgraph induced by the given
    vertex set (not mutated). Lets callers that track connected components
    pay only for the component that changed — MIS size is additive across
    components. *)

val exists_independent_set : Graph.t -> int -> bool
(** [exists_independent_set g q]: does [g] contain an independent set of size
    [q]? (Line 27 of Algorithm 1.) *)

val lex_first_independent_set : Graph.t -> int -> int list option
(** The lexicographically-first independent set of exactly [q] vertices
    (sorted increasing), or [None] if none exists. Lexicographic order is on
    the sorted vertex sequences, so the result greedily prefers small
    vertex ids — this is the quorum Algorithm 1 outputs (line 31). *)

val min_vertex_cover_size : Graph.t -> int
(** [n - max_independent_set_size]: the complement view used in the proofs of
    Theorem 4 and Lemma 8. *)

val max_independent_set : Graph.t -> int list
(** One maximum independent set (the lexicographically first among maximum
    ones), sorted increasing. *)
