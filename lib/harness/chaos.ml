module Stime = Qs_sim.Stime
module Sim = Qs_sim.Sim
module Timeout = Qs_fd.Timeout
module Metrics = Qs_obs.Metrics
module Journal = Qs_obs.Journal
module Fault = Qs_faults.Fault
module Injector = Qs_faults.Injector
module Monitor = Qs_faults.Monitor
module Campaign = Qs_faults.Campaign

let ms = Stime.of_ms

type stack = Xpaxos_enum | Xpaxos_qs | Pbft | Minbft | Chain | Star

let all = [ Xpaxos_enum; Xpaxos_qs; Pbft; Minbft; Chain; Star ]

let name = function
  | Xpaxos_enum -> "xpaxos-enum"
  | Xpaxos_qs -> "xpaxos-qs"
  | Pbft -> "pbft"
  | Minbft -> "minbft"
  | Chain -> "chain"
  | Star -> "star"

let of_name s =
  List.find_opt (fun st -> name st = String.lowercase_ascii s) all

type params = {
  n : int;
  f : int;
  horizon : Stime.t;
  requests : int;
  resubmit_every : Stime.t;
  probe_every : Stime.t;
}

let default_params stack =
  let base n =
    {
      n;
      f = 2;
      horizon = ms 10_000;
      requests = 3;
      resubmit_every = ms 150;
      probe_every = ms 250;
    }
  in
  match stack with
  | Xpaxos_enum | Xpaxos_qs -> { (base 5) with requests = 4 }
  | Minbft -> base 5
  | Pbft | Chain | Star -> base 7

let strategy = Timeout.Exponential { factor = 2.0; max = ms 2000 }

(* What one simulated run must expose to the generic driver: after faults
   are installed and requests submitted, the monitor needs the executed
   histories of the unblamed processes, and liveness needs the commit
   census. *)
type instance = {
  sim : Sim.t;
  set_mute : int -> bool -> unit;
  install : Fault.schedule -> unit;
  submit_all : unit -> unit;
  committed : unit -> int;
  histories : int list -> (int * (int * int) list) list;
}

let make_instance stack ~params ~seed =
  let seed64 = Int64.of_int seed in
  let n = params.n and f = params.f in
  let ops = List.init params.requests (fun i -> Printf.sprintf "op%d" i) in
  match stack with
  | Xpaxos_enum | Xpaxos_qs ->
    let mode =
      if stack = Xpaxos_enum then Qs_xpaxos.Replica.Enumeration
      else Qs_xpaxos.Replica.Quorum_selection
    in
    let c =
      Qs_xpaxos.Xcluster.create ~seed:seed64
        { Qs_xpaxos.Replica.n; f; mode; initial_timeout = ms 25; timeout_strategy = strategy }
    in
    let requests = ref [] in
    {
      sim = Qs_xpaxos.Xcluster.sim c;
      set_mute =
        (fun p m ->
          Qs_xpaxos.Xcluster.set_fault c p
            (if m then Qs_xpaxos.Replica.Mute else Qs_xpaxos.Replica.Honest));
      install =
        (fun schedule ->
          ignore
            (Injector.install ~net:(Qs_xpaxos.Xcluster.net c)
               ~set_mute:(fun p m ->
                 Qs_xpaxos.Xcluster.set_fault c p
                   (if m then Qs_xpaxos.Replica.Mute else Qs_xpaxos.Replica.Honest))
               schedule));
      submit_all =
        (fun () ->
          requests :=
            List.map
              (Qs_xpaxos.Xcluster.submit c ~resubmit_every:params.resubmit_every)
              ops);
      committed =
        (fun () ->
          List.length
            (List.filter (Qs_xpaxos.Xcluster.is_globally_committed c) !requests));
      histories =
        (fun correct ->
          List.map
            (fun p ->
              ( p,
                List.map
                  (fun (r : Qs_xpaxos.Xmsg.request) -> (r.client, r.rid))
                  (Qs_xpaxos.Replica.executed (Qs_xpaxos.Xcluster.replica c p)) ))
            correct);
    }
  | Pbft ->
    let c =
      Qs_pbft.Pcluster.create ~seed:seed64
        {
          Qs_pbft.Preplica.n;
          f;
          participation = Qs_pbft.Preplica.Selected;
          initial_timeout = ms 25;
          timeout_strategy = strategy;
        }
    in
    let requests = ref [] in
    let set_mute p m =
      Qs_pbft.Pcluster.set_fault c p
        (if m then Qs_pbft.Preplica.Mute else Qs_pbft.Preplica.Honest)
    in
    {
      sim = Qs_pbft.Pcluster.sim c;
      set_mute;
      install =
        (fun schedule ->
          ignore (Injector.install ~net:(Qs_pbft.Pcluster.net c) ~set_mute schedule));
      submit_all =
        (fun () ->
          requests :=
            List.map (Qs_pbft.Pcluster.submit c ~resubmit_every:params.resubmit_every) ops);
      committed =
        (fun () ->
          List.length (List.filter (Qs_pbft.Pcluster.is_globally_committed c) !requests));
      histories =
        (fun correct ->
          List.map
            (fun p ->
              ( p,
                List.map
                  (fun (r : Qs_pbft.Pmsg.request) -> (r.client, r.rid))
                  (Qs_pbft.Preplica.executed (Qs_pbft.Pcluster.replica c p)) ))
            correct);
    }
  | Minbft ->
    let c =
      Qs_minbft.Mcluster.create ~seed:seed64
        {
          Qs_minbft.Mreplica.n;
          f;
          participation = Qs_minbft.Mreplica.Selected;
          initial_timeout = ms 25;
          timeout_strategy = strategy;
        }
    in
    let requests = ref [] in
    let set_mute p m =
      Qs_minbft.Mcluster.set_fault c p
        (if m then Qs_minbft.Mreplica.Mute else Qs_minbft.Mreplica.Honest)
    in
    {
      sim = Qs_minbft.Mcluster.sim c;
      set_mute;
      install =
        (fun schedule ->
          ignore (Injector.install ~net:(Qs_minbft.Mcluster.net c) ~set_mute schedule));
      submit_all =
        (fun () ->
          requests :=
            List.map (Qs_minbft.Mcluster.submit c ~resubmit_every:params.resubmit_every) ops);
      committed =
        (fun () -> List.length (List.filter (Qs_minbft.Mcluster.is_committed c) !requests));
      histories =
        (fun correct ->
          List.map
            (fun p ->
              ( p,
                List.map
                  (fun (r : Qs_minbft.Mmsg.request) -> (r.client, r.rid))
                  (Qs_minbft.Mreplica.executed (Qs_minbft.Mcluster.replica c p)) ))
            correct);
    }
  | Chain ->
    let c =
      Qs_bchain.Chain_cluster.create ~seed:seed64
        { Qs_bchain.Chain_node.n; f; initial_timeout = ms 25; timeout_strategy = strategy }
    in
    let requests = ref [] in
    let set_mute p m =
      Qs_bchain.Chain_cluster.set_fault c p
        (if m then Qs_bchain.Chain_node.Mute else Qs_bchain.Chain_node.Honest)
    in
    {
      sim = Qs_bchain.Chain_cluster.sim c;
      set_mute;
      install =
        (fun schedule ->
          ignore
            (Injector.install ~net:(Qs_bchain.Chain_cluster.net c) ~set_mute schedule));
      submit_all =
        (fun () ->
          requests :=
            List.map
              (Qs_bchain.Chain_cluster.submit c ~resubmit_every:params.resubmit_every)
              ops);
      committed =
        (fun () ->
          List.length (List.filter (Qs_bchain.Chain_cluster.is_committed c) !requests));
      histories =
        (fun correct ->
          List.map
            (fun p ->
              ( p,
                List.map
                  (fun (r : Qs_bchain.Chain_msg.request) -> (r.client, r.rid))
                  (Qs_bchain.Chain_node.executed (Qs_bchain.Chain_cluster.node c p)) ))
            correct);
    }
  | Star ->
    let c =
      Qs_star.Star_cluster.create ~seed:seed64
        { Qs_star.Star_node.n; f; initial_timeout = ms 25; timeout_strategy = strategy }
    in
    let requests = ref [] in
    let set_mute p m =
      Qs_star.Star_cluster.set_fault c p
        (if m then Qs_star.Star_node.Mute else Qs_star.Star_node.Honest)
    in
    {
      sim = Qs_star.Star_cluster.sim c;
      set_mute;
      install =
        (fun schedule ->
          ignore (Injector.install ~net:(Qs_star.Star_cluster.net c) ~set_mute schedule));
      submit_all =
        (fun () ->
          requests :=
            List.map (Qs_star.Star_cluster.submit c ~resubmit_every:params.resubmit_every) ops);
      committed =
        (fun () ->
          List.length (List.filter (Qs_star.Star_cluster.is_committed c) !requests));
      histories =
        (fun correct ->
          List.map
            (fun p ->
              ( p,
                List.map
                  (fun (r : Qs_star.Star_msg.request) -> (r.client, r.rid))
                  (Qs_star.Star_node.executed (Qs_star.Star_cluster.node c p)) ))
            correct);
    }

let bound_for stack ~f =
  match stack with
  | Star -> (Monitor.theorem9 ~f, Some "fs_quorums_per_epoch_max")
  | _ -> (Monitor.theorem3 ~f, Some "qs_quorums_per_epoch_max")

(* Run one schedule on one stack with the online monitor attached. Pure in
   (seed, schedule): the same pair always yields the same outcome, which the
   campaign's replay and shrinking rely on. *)
let execute stack ?(params = default_params stack) ~seed ~model schedule :
    Campaign.exec_outcome =
  let n = params.n and f = params.f in
  let blamed = Fault.blamed ~n schedule in
  let correct =
    List.filter (fun p -> not (List.mem p blamed)) (List.init n Fun.id)
  in
  let in_model = match model with Fault.In_model _ -> true | Fault.Out_of_model _ -> false in
  Metrics.reset ();
  let was_live = Journal.live () in
  Journal.clear ();
  Journal.set_enabled true;
  let inst = make_instance stack ~params ~seed in
  let bound, gauge = bound_for stack ~f in
  let monitor =
    Monitor.create
      {
        Monitor.n;
        f;
        correct;
        (* The Theorem-3/9 bounds and the no-suspicion property assume the
           model's failure budget; out-of-model schedules only owe core
           SMR safety (prefix consistency, exactly-once). *)
        quorum_bound = (if in_model then Some bound else None);
        bound_gauge = (if in_model then gauge else None);
        settle = ms 50;
      }
  in
  Monitor.attach_history_probe monitor ~sim:inst.sim ~every:params.probe_every
    (fun () -> inst.histories correct);
  inst.install schedule;
  inst.submit_all ();
  Sim.run ~until:params.horizon inst.sim;
  let committed = inst.committed () in
  let liveness =
    if in_model && committed < params.requests then
      [
        Printf.sprintf "termination: only %d/%d requests committed by %s" committed
          params.requests
          (Format.asprintf "%a" Stime.pp params.horizon);
      ]
    else []
  in
  Monitor.detach monitor;
  Journal.set_enabled was_live;
  {
    Campaign.violations = Monitor.violations monitor;
    liveness;
    committed;
    submitted = params.requests;
    checks = Monitor.checks_run monitor;
  }

let campaign stack ?(params = default_params stack) ?(out_of_model = false)
    ?(runs = 20) ~seed () =
  let profile = Fault.default_profile ~horizon:params.horizon in
  let gen rng =
    if out_of_model then Fault.gen_wild rng ~n:params.n ~f:params.f ~profile ()
    else Fault.gen rng ~n:params.n ~f:params.f ~profile ()
  in
  Campaign.run ~seed ~runs ~gen
    ~classify:(Fault.classify ~n:params.n ~f:params.f)
    ~execute:(fun ~seed ~model schedule -> execute stack ~params ~seed ~model schedule)
    ()
