module Stime = Qs_sim.Stime
module Sim = Qs_sim.Sim
module Network = Qs_sim.Network
module Timeout = Qs_fd.Timeout
module Detector = Qs_fd.Detector
module QS = Qs_core.Quorum_select
module FS = Qs_follower.Follower_select
module Suspicion_matrix = Qs_core.Suspicion_matrix
module Metrics = Qs_obs.Metrics
module Journal = Qs_obs.Journal
module Fault = Qs_faults.Fault
module Injector = Qs_faults.Injector
module Monitor = Qs_faults.Monitor
module Campaign = Qs_faults.Campaign
module Codec = Qs_recovery.Codec
module Rejoin = Qs_recovery.Rejoin

let ms = Stime.of_ms

type stack = Xpaxos_enum | Xpaxos_qs | Pbft | Minbft | Chain | Star

let all = [ Xpaxos_enum; Xpaxos_qs; Pbft; Minbft; Chain; Star ]

let name = function
  | Xpaxos_enum -> "xpaxos-enum"
  | Xpaxos_qs -> "xpaxos-qs"
  | Pbft -> "pbft"
  | Minbft -> "minbft"
  | Chain -> "chain"
  | Star -> "star"

let of_name s =
  List.find_opt (fun st -> name st = String.lowercase_ascii s) all

type params = {
  n : int;
  f : int;
  horizon : Stime.t;
  requests : int;
  resubmit_every : Stime.t;
  probe_every : Stime.t;
}

let default_params stack =
  let base n =
    {
      n;
      f = 2;
      horizon = ms 10_000;
      requests = 3;
      resubmit_every = ms 150;
      probe_every = ms 250;
    }
  in
  match stack with
  | Xpaxos_enum | Xpaxos_qs -> { (base 5) with requests = 4 }
  | Minbft -> base 5
  | Pbft | Chain | Star -> base 7

let strategy = Timeout.Exponential { factor = 2.0; max = ms 2000 }

(* ------------------------------------------------------------------ *)
(* Recovery plane.

   Every stack gets a second network on the same simulation carrying only
   {!Rejoin} traffic, one engine per process, with low-rate anti-entropy
   gossip running throughout. Fault schedules are installed on BOTH planes
   (the rejoin-plane injector first, so at a shared phase-stop tick its
   filters are already lifted when the amnesia hook broadcasts StateReq) —
   a crashed process cannot serve state, and partitions cut the recovery
   plane too. *)

let rejoin_max_retries = (Rejoin.default_config ~n:2).Rejoin.max_retries

let recovery_plane ~sim ~n ~collect ~adopt =
  let rnet = Network.create ~sim ~n ~delay:(Network.Fixed (ms 1)) ~fifo:true () in
  let config =
    { (Rejoin.default_config ~n) with Rejoin.gossip_every = Some (ms 1000) }
  in
  let nodes =
    Array.init n (fun me ->
        Rejoin.create ~sim config ~me
          ~collect:(fun () -> collect me)
          ~adopt:(fun ~matrix ~epoch ~extra -> adopt me ~matrix ~epoch ~extra)
          ~send:(fun ~dst msg -> Network.send rnet ~src:me ~dst msg)
          ())
  in
  Array.iteri
    (fun i node ->
      Network.set_handler rnet i (fun ~src msg -> Rejoin.handle node ~src msg))
    nodes;
  Array.iter Rejoin.start_gossip nodes;
  (rnet, nodes)

(* The injector's CrashAmnesia recovery hook: wipe volatile state (which may
   return a durable snapshot), drop in-flight messages addressed to the dead
   incarnation on both planes, and start the rejoin round. The durable
   payload goes in as a self State_push — buffered with the peers' responses
   and merged at completion. *)
let attach_recovery ~sim ~n ~net_drop ~collect ~adopt ~wipe =
  let rnet, nodes = recovery_plane ~sim ~n ~collect ~adopt in
  let amnesia p =
    let durable = wipe p in
    ignore (net_drop p : int);
    ignore (Network.drop_pending_to rnet p : int);
    Rejoin.start nodes.(p);
    match durable with
    | Some payload -> Rejoin.handle nodes.(p) ~src:p (Rejoin.State_push { payload })
    | None -> ()
  in
  (rnet, amnesia)

(* Suspicion-plane payloads for the stacks whose durable state is just the
   selection CRDT (their SMR logs are documented durable-by-default; only
   XPaxos models deep log durability). *)
let qs_payload ~n qsel =
  match qsel with
  | Some qsel ->
    { Rejoin.matrix = Codec.encode_matrix (QS.matrix qsel); epoch = QS.epoch qsel; extra = "" }
  | None ->
    { Rejoin.matrix = Codec.encode_matrix (Suspicion_matrix.create n); epoch = 1; extra = "" }

let qs_adopt qsel ~matrix ~epoch ~extra:_ =
  match qsel with Some qsel -> QS.absorb qsel ~matrix ~epoch | None -> ()

let qs_wipe qsel detector =
  (match qsel with Some qsel -> QS.amnesia qsel | None -> ());
  Detector.amnesia detector;
  None

(* What one simulated run must expose to the generic driver: after faults
   are installed and requests submitted, the monitor needs the executed
   histories of the unblamed processes, and liveness needs the commit
   census. *)
type instance = {
  sim : Sim.t;
  set_mute : int -> bool -> unit;
  install : Fault.schedule -> unit;
  submit_all : unit -> unit;
  committed : unit -> int;
  histories : int list -> (int * (int * int) list) list;
}

let make_instance stack ~params ~seed =
  let seed64 = Int64.of_int seed in
  let n = params.n and f = params.f in
  let ops = List.init params.requests (fun i -> Printf.sprintf "op%d" i) in
  match stack with
  | Xpaxos_enum | Xpaxos_qs ->
    let mode =
      if stack = Xpaxos_enum then Qs_xpaxos.Replica.Enumeration
      else Qs_xpaxos.Replica.Quorum_selection
    in
    let c =
      Qs_xpaxos.Xcluster.create ~seed:seed64
        { Qs_xpaxos.Replica.n; f; mode; initial_timeout = ms 25; timeout_strategy = strategy }
    in
    (* Deep durability: view, committed log prefix, selection state and
       adapted timeouts persist (fsynced at execute) and survive amnesia. *)
    Qs_xpaxos.Xcluster.attach_durability c;
    let rnet, amnesia =
      attach_recovery ~sim:(Qs_xpaxos.Xcluster.sim c) ~n
        ~net_drop:(Network.drop_pending_to (Qs_xpaxos.Xcluster.net c))
        ~collect:(Qs_xpaxos.Xcluster.collect_payload c)
        ~adopt:(fun p ~matrix ~epoch ~extra ->
          Qs_xpaxos.Xcluster.adopt_payload c p ~matrix ~epoch ~extra)
        ~wipe:(fun p -> Some (Qs_xpaxos.Xcluster.amnesia c p))
    in
    let requests = ref [] in
    {
      sim = Qs_xpaxos.Xcluster.sim c;
      set_mute =
        (fun p m ->
          Qs_xpaxos.Xcluster.set_fault c p
            (if m then Qs_xpaxos.Replica.Mute else Qs_xpaxos.Replica.Honest));
      install =
        (fun schedule ->
          ignore (Injector.install ~net:rnet schedule);
          ignore
            (Injector.install ~net:(Qs_xpaxos.Xcluster.net c)
               ~set_mute:(fun p m ->
                 Qs_xpaxos.Xcluster.set_fault c p
                   (if m then Qs_xpaxos.Replica.Mute else Qs_xpaxos.Replica.Honest))
               ~amnesia schedule));
      submit_all =
        (fun () ->
          requests :=
            List.map
              (Qs_xpaxos.Xcluster.submit c ~resubmit_every:params.resubmit_every)
              ops);
      committed =
        (fun () ->
          List.length
            (List.filter (Qs_xpaxos.Xcluster.is_globally_committed c) !requests));
      histories =
        (fun correct ->
          List.map
            (fun p ->
              ( p,
                List.map
                  (fun (r : Qs_xpaxos.Xmsg.request) -> (r.client, r.rid))
                  (Qs_xpaxos.Replica.executed (Qs_xpaxos.Xcluster.replica c p)) ))
            correct);
    }
  | Pbft ->
    let c =
      Qs_pbft.Pcluster.create ~seed:seed64
        {
          Qs_pbft.Preplica.n;
          f;
          participation = Qs_pbft.Preplica.Selected;
          initial_timeout = ms 25;
          timeout_strategy = strategy;
        }
    in
    let requests = ref [] in
    let sel p = Qs_pbft.Preplica.quorum_selector (Qs_pbft.Pcluster.replica c p) in
    let rnet, amnesia =
      attach_recovery ~sim:(Qs_pbft.Pcluster.sim c) ~n
        ~net_drop:(Network.drop_pending_to (Qs_pbft.Pcluster.net c))
        ~collect:(fun p -> qs_payload ~n (sel p))
        ~adopt:(fun p -> qs_adopt (sel p))
        ~wipe:(fun p ->
          qs_wipe (sel p) (Qs_pbft.Preplica.detector (Qs_pbft.Pcluster.replica c p)))
    in
    let set_mute p m =
      Qs_pbft.Pcluster.set_fault c p
        (if m then Qs_pbft.Preplica.Mute else Qs_pbft.Preplica.Honest)
    in
    {
      sim = Qs_pbft.Pcluster.sim c;
      set_mute;
      install =
        (fun schedule ->
          ignore (Injector.install ~net:rnet schedule);
          ignore
            (Injector.install ~net:(Qs_pbft.Pcluster.net c) ~set_mute ~amnesia
               schedule));
      submit_all =
        (fun () ->
          requests :=
            List.map (Qs_pbft.Pcluster.submit c ~resubmit_every:params.resubmit_every) ops);
      committed =
        (fun () ->
          List.length (List.filter (Qs_pbft.Pcluster.is_globally_committed c) !requests));
      histories =
        (fun correct ->
          List.map
            (fun p ->
              ( p,
                List.map
                  (fun (r : Qs_pbft.Pmsg.request) -> (r.client, r.rid))
                  (Qs_pbft.Preplica.executed (Qs_pbft.Pcluster.replica c p)) ))
            correct);
    }
  | Minbft ->
    let c =
      Qs_minbft.Mcluster.create ~seed:seed64
        {
          Qs_minbft.Mreplica.n;
          f;
          participation = Qs_minbft.Mreplica.Selected;
          initial_timeout = ms 25;
          timeout_strategy = strategy;
        }
    in
    let requests = ref [] in
    let sel p = Qs_minbft.Mreplica.quorum_selector (Qs_minbft.Mcluster.replica c p) in
    let rnet, amnesia =
      attach_recovery ~sim:(Qs_minbft.Mcluster.sim c) ~n
        ~net_drop:(Network.drop_pending_to (Qs_minbft.Mcluster.net c))
        ~collect:(fun p -> qs_payload ~n (sel p))
        ~adopt:(fun p -> qs_adopt (sel p))
        ~wipe:(fun p ->
          qs_wipe (sel p)
            (Qs_minbft.Mreplica.detector (Qs_minbft.Mcluster.replica c p)))
    in
    let set_mute p m =
      Qs_minbft.Mcluster.set_fault c p
        (if m then Qs_minbft.Mreplica.Mute else Qs_minbft.Mreplica.Honest)
    in
    {
      sim = Qs_minbft.Mcluster.sim c;
      set_mute;
      install =
        (fun schedule ->
          ignore (Injector.install ~net:rnet schedule);
          ignore
            (Injector.install ~net:(Qs_minbft.Mcluster.net c) ~set_mute ~amnesia
               schedule));
      submit_all =
        (fun () ->
          requests :=
            List.map (Qs_minbft.Mcluster.submit c ~resubmit_every:params.resubmit_every) ops);
      committed =
        (fun () -> List.length (List.filter (Qs_minbft.Mcluster.is_committed c) !requests));
      histories =
        (fun correct ->
          List.map
            (fun p ->
              ( p,
                List.map
                  (fun (r : Qs_minbft.Mmsg.request) -> (r.client, r.rid))
                  (Qs_minbft.Mreplica.executed (Qs_minbft.Mcluster.replica c p)) ))
            correct);
    }
  | Chain ->
    let c =
      Qs_bchain.Chain_cluster.create ~seed:seed64
        { Qs_bchain.Chain_node.n; f; initial_timeout = ms 25; timeout_strategy = strategy }
    in
    let requests = ref [] in
    let sel p =
      Some (Qs_bchain.Chain_node.quorum_selector (Qs_bchain.Chain_cluster.node c p))
    in
    let rnet, amnesia =
      attach_recovery ~sim:(Qs_bchain.Chain_cluster.sim c) ~n
        ~net_drop:(Network.drop_pending_to (Qs_bchain.Chain_cluster.net c))
        ~collect:(fun p -> qs_payload ~n (sel p))
        ~adopt:(fun p -> qs_adopt (sel p))
        ~wipe:(fun p ->
          qs_wipe (sel p)
            (Qs_bchain.Chain_node.detector (Qs_bchain.Chain_cluster.node c p)))
    in
    let set_mute p m =
      Qs_bchain.Chain_cluster.set_fault c p
        (if m then Qs_bchain.Chain_node.Mute else Qs_bchain.Chain_node.Honest)
    in
    {
      sim = Qs_bchain.Chain_cluster.sim c;
      set_mute;
      install =
        (fun schedule ->
          ignore (Injector.install ~net:rnet schedule);
          ignore
            (Injector.install ~net:(Qs_bchain.Chain_cluster.net c) ~set_mute
               ~amnesia schedule));
      submit_all =
        (fun () ->
          requests :=
            List.map
              (Qs_bchain.Chain_cluster.submit c ~resubmit_every:params.resubmit_every)
              ops);
      committed =
        (fun () ->
          List.length (List.filter (Qs_bchain.Chain_cluster.is_committed c) !requests));
      histories =
        (fun correct ->
          List.map
            (fun p ->
              ( p,
                List.map
                  (fun (r : Qs_bchain.Chain_msg.request) -> (r.client, r.rid))
                  (Qs_bchain.Chain_node.executed (Qs_bchain.Chain_cluster.node c p)) ))
            correct);
    }
  | Star ->
    let c =
      Qs_star.Star_cluster.create ~seed:seed64
        { Qs_star.Star_node.n; f; initial_timeout = ms 25; timeout_strategy = strategy }
    in
    let requests = ref [] in
    let sel p = Qs_star.Star_node.selector (Qs_star.Star_cluster.node c p) in
    let rnet, amnesia =
      attach_recovery ~sim:(Qs_star.Star_cluster.sim c) ~n
        ~net_drop:(Network.drop_pending_to (Qs_star.Star_cluster.net c))
        ~collect:(fun p ->
          {
            Rejoin.matrix = Codec.encode_matrix (FS.matrix (sel p));
            epoch = FS.epoch (sel p);
            extra = "";
          })
        ~adopt:(fun p ~matrix ~epoch ~extra:_ -> FS.absorb (sel p) ~matrix ~epoch)
        ~wipe:(fun p ->
          FS.amnesia (sel p);
          Detector.amnesia (Qs_star.Star_node.detector (Qs_star.Star_cluster.node c p));
          None)
    in
    let set_mute p m =
      Qs_star.Star_cluster.set_fault c p
        (if m then Qs_star.Star_node.Mute else Qs_star.Star_node.Honest)
    in
    {
      sim = Qs_star.Star_cluster.sim c;
      set_mute;
      install =
        (fun schedule ->
          ignore (Injector.install ~net:rnet schedule);
          ignore
            (Injector.install ~net:(Qs_star.Star_cluster.net c) ~set_mute ~amnesia
               schedule));
      submit_all =
        (fun () ->
          requests :=
            List.map (Qs_star.Star_cluster.submit c ~resubmit_every:params.resubmit_every) ops);
      committed =
        (fun () ->
          List.length (List.filter (Qs_star.Star_cluster.is_committed c) !requests));
      histories =
        (fun correct ->
          List.map
            (fun p ->
              ( p,
                List.map
                  (fun (r : Qs_star.Star_msg.request) -> (r.client, r.rid))
                  (Qs_star.Star_node.executed (Qs_star.Star_cluster.node c p)) ))
            correct);
    }

let bound_for stack ~f =
  match stack with
  | Star -> (Monitor.theorem9 ~f, Some "fs_quorums_per_epoch_max")
  | _ -> (Monitor.theorem3 ~f, Some "qs_quorums_per_epoch_max")

(* Run one schedule on one stack with the online monitor attached. Pure in
   (seed, schedule): the same pair always yields the same outcome, which the
   campaign's replay and shrinking rely on. *)
let execute stack ?(params = default_params stack) ~seed ~model schedule :
    Campaign.exec_outcome =
  let n = params.n and f = params.f in
  let blamed = Fault.blamed ~n schedule in
  let correct =
    List.filter (fun p -> not (List.mem p blamed)) (List.init n Fun.id)
  in
  let in_model = match model with Fault.In_model _ -> true | Fault.Out_of_model _ -> false in
  Metrics.reset ();
  let was_live = Journal.live () in
  Journal.clear ();
  Journal.set_enabled true;
  let inst = make_instance stack ~params ~seed in
  let bound, gauge = bound_for stack ~f in
  let monitor =
    Monitor.create
      {
        Monitor.n;
        f;
        correct;
        (* The Theorem-3/9 bounds and the no-suspicion property assume the
           model's failure budget; out-of-model schedules only owe core
           SMR safety (prefix consistency, exactly-once). *)
        quorum_bound = (if in_model then Some bound else None);
        bound_gauge = (if in_model then gauge else None);
        settle = ms 50;
        (* In-model there is always a correct reachable peer, so a rejoin
           must finish within the engine's own retry budget. *)
        rejoin_retry_bound = (if in_model then Some rejoin_max_retries else None);
      }
  in
  Monitor.attach_history_probe monitor ~sim:inst.sim ~every:params.probe_every
    (fun () -> inst.histories correct);
  inst.install schedule;
  inst.submit_all ();
  Sim.run ~until:params.horizon inst.sim;
  (* Recovery liveness owes completion only in-model (same gating as the
     termination check below). *)
  if in_model then
    Monitor.check_recovered monitor ~at:(Stime.to_ms (Sim.now inst.sim));
  let committed = inst.committed () in
  let liveness =
    if in_model && committed < params.requests then
      [
        Printf.sprintf "termination: only %d/%d requests committed by %s" committed
          params.requests
          (Format.asprintf "%a" Stime.pp params.horizon);
      ]
    else []
  in
  Monitor.detach monitor;
  Journal.set_enabled was_live;
  {
    Campaign.violations = Monitor.violations monitor;
    liveness;
    committed;
    submitted = params.requests;
    checks = Monitor.checks_run monitor;
  }

let campaign stack ?(params = default_params stack) ?(out_of_model = false)
    ?(amnesia = false) ?(runs = 20) ~seed () =
  let profile =
    let base = Fault.default_profile ~horizon:params.horizon in
    (* p_amnesia = 0 keeps the random stream byte-identical to pre-amnesia
       pinned seeds; with the flag, half the generated crashes lose their
       volatile state and must rejoin. *)
    if amnesia then { base with Fault.p_amnesia = 0.5 } else base
  in
  let gen rng =
    if out_of_model then Fault.gen_wild rng ~n:params.n ~f:params.f ~profile ()
    else Fault.gen rng ~n:params.n ~f:params.f ~profile ()
  in
  Campaign.run ~seed ~runs ~gen
    ~classify:(Fault.classify ~n:params.n ~f:params.f)
    ~execute:(fun ~seed ~model schedule -> execute stack ~params ~seed ~model schedule)
    ()
