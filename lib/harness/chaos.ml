module Stime = Qs_sim.Stime
module Sim = Qs_sim.Sim
module Network = Qs_sim.Network
module Timeout = Qs_fd.Timeout
module Detector = Qs_fd.Detector
module QS = Qs_core.Quorum_select
module FS = Qs_follower.Follower_select
module Suspicion_matrix = Qs_core.Suspicion_matrix
module Metrics = Qs_obs.Metrics
module Journal = Qs_obs.Journal
module Fault = Qs_faults.Fault
module Injector = Qs_faults.Injector
module Monitor = Qs_faults.Monitor
module Campaign = Qs_faults.Campaign
module Codec = Qs_recovery.Codec
module Rejoin = Qs_recovery.Rejoin
module Evidence = Qs_evidence.Evidence
module Membership = Qs_membership.Membership
module Mconfig = Qs_membership.Config
module Msg = Qs_core.Msg
module Auth = Qs_crypto.Auth
module Fmsg = Qs_follower.Fmsg

let ms = Stime.of_ms

type stack = Xpaxos_enum | Xpaxos_qs | Pbft | Minbft | Chain | Star

let all = [ Xpaxos_enum; Xpaxos_qs; Pbft; Minbft; Chain; Star ]

let name = function
  | Xpaxos_enum -> "xpaxos-enum"
  | Xpaxos_qs -> "xpaxos-qs"
  | Pbft -> "pbft"
  | Minbft -> "minbft"
  | Chain -> "chain"
  | Star -> "star"

let of_name s =
  List.find_opt (fun st -> name st = String.lowercase_ascii s) all

type params = {
  n : int;
  f : int;
  horizon : Stime.t;
  requests : int;
  resubmit_every : Stime.t;
  probe_every : Stime.t;
  spares : int list;
  policy : Qs_core.Selection_policy.t;
}

let default_params stack =
  let base n =
    {
      n;
      f = 2;
      horizon = ms 10_000;
      requests = 3;
      resubmit_every = ms 150;
      probe_every = ms 250;
      spares = [];
      policy = Qs_core.Selection_policy.default;
    }
  in
  match stack with
  | Xpaxos_enum | Xpaxos_qs -> { (base 5) with requests = 4 }
  | Minbft -> base 5
  | Pbft | Chain | Star -> base 7

(* Churn campaigns run one universe size up with one spare (the top pid,
   outside the initial membership) and a budget of f = 3 so a join, a leave
   and a Byzantine-then-ejected process fit in-model together. Each family
   keeps its resilience inequality: 2f+1 <= n for XPaxos, 3f+1 <= n for
   PBFT/chain, 3f < n for star's follower selection — and MinBFT's USIG
   replica count is pinned at exactly n = 2f+1, so its universe grows by
   bumping f with it. *)
let churn_params stack =
  let n, f =
    match stack with
    | Xpaxos_enum | Xpaxos_qs -> (8, 3)
    | Minbft -> (9, 4)
    | Pbft | Chain | Star -> (10, 3)
  in
  { (default_params stack) with n; f; spares = [ n - 1 ] }

(* The correlated-fault (and DiversityCapped) topology of a parameter set:
   enough balanced contiguous regions that no region exceeds the failure
   budget — so a whole-region loss can stay in-model. Derived, not stored:
   every caller of [campaign ~correlated] and every [--policy diverse] run
   sees the same labels for the same (n, f). *)
let topology_for params =
  let k = max 2 ((params.n + params.f - 1) / max 1 params.f) in
  Qs_core.Topology.blocks ~n:params.n
    (List.init k (Printf.sprintf "r%d"))

let regions_for params =
  let topo = topology_for params in
  List.map
    (fun l -> (l, Qs_core.Topology.members topo l))
    (Qs_core.Topology.labels topo)

let strategy = Timeout.Exponential { factor = 2.0; max = ms 2000 }

(* ------------------------------------------------------------------ *)
(* Recovery plane.

   Every stack gets a second network on the same simulation carrying only
   {!Rejoin} traffic, one engine per process, with low-rate anti-entropy
   gossip running throughout. Fault schedules are installed on BOTH planes
   (the rejoin-plane injector first, so at a shared phase-stop tick its
   filters are already lifted when the amnesia hook broadcasts StateReq) —
   a crashed process cannot serve state, and partitions cut the recovery
   plane too. *)

let rejoin_max_retries = (Rejoin.default_config ~n:2).Rejoin.max_retries

(* With delta gossip attached, one tick in [delta_full_every] still pushes
   the full matrix — the anti-entropy backstop for anything the version
   bookkeeping cannot see. *)
let delta_full_every = 8

let recovery_plane ~sim ~n ?(delta = fun _ -> None) ~collect ~adopt () =
  let rnet = Network.create ~sim ~n ~delay:(Network.Fixed (ms 1)) ~fifo:true () in
  let config =
    { (Rejoin.default_config ~n) with Rejoin.gossip_every = Some (ms 1000) }
  in
  let nodes =
    Array.init n (fun me ->
        let node =
          Rejoin.create ~sim config ~me
            ~collect:(fun () -> collect me)
            ~adopt:(fun ~matrix ~epoch ~extra -> adopt me ~matrix ~epoch ~extra)
            ~send:(fun ~dst msg -> Network.send rnet ~src:me ~dst msg)
            ()
        in
        (match delta me with
        | Some (engine, on_merge) ->
          Rejoin.set_delta node engine ~on_merge ~full_every:delta_full_every
        | None -> ());
        node)
  in
  Array.iteri
    (fun i node ->
      Network.set_handler rnet i (fun ~src msg -> Rejoin.handle node ~src msg))
    nodes;
  Array.iter Rejoin.start_gossip nodes;
  (rnet, nodes)

(* The injector's CrashAmnesia recovery hook: wipe volatile state (which may
   return a durable snapshot), drop in-flight messages addressed to the dead
   incarnation on both planes, and start the rejoin round. The durable
   payload goes in as a self State_push — buffered with the peers' responses
   and merged at completion. *)
let attach_recovery ~sim ~n ~delta ~net_drop ~collect ~adopt ~wipe =
  let rnet, nodes = recovery_plane ~sim ~n ~delta ~collect ~adopt () in
  let amnesia p =
    let durable = wipe p in
    ignore (net_drop p : int);
    ignore (Network.drop_pending_to rnet p : int);
    Rejoin.start nodes.(p);
    match durable with
    | Some payload -> Rejoin.handle nodes.(p) ~src:p (Rejoin.State_push { payload })
    | None -> ()
  in
  (rnet, nodes, amnesia)

(* ------------------------------------------------------------------ *)
(* Churn plane.

   The five SMR stacks keep their protocol quorum space at universe size
   (views are combinatorial ranks over n, commit groups are pid sets), so
   membership changes are applied {e width-preserving}: the coordinating
   {!Membership} engine tracks the true Π over universe pids, and every
   config change reconfigures each member's selector in place — same n,
   identity slot remap, membership epoch bumped — which re-anchors the
   Theorem-3/9 budgets and refreshes the fingerprints, while the member
   set itself is enforced through the mute plane (spares and departed
   processes are silent, so detectors keep them out of quorums) and the
   rejoin plane (a joiner bootstraps dormant, exactly like an amnesia
   recovery). Evidence convictions propose the ejection. Configs are
   applied synchronously at every process — config agreement rides on the
   BFT layer above, which is the same stance the mc harness takes. *)

type churn = {
  cjoin : int -> unit;
  cleave : int -> unit;
  ceject : int -> unit;
}

let no_churn = { cjoin = ignore; cleave = ignore; ceject = ignore }

let attach_churn ~n ~f ~spares ?min_n ~set_mute ~rnodes ~reattach_delta
    ~reconfigure ~amnesia () =
  if spares = [] then no_churn
  else begin
    let members =
      List.filter (fun p -> not (List.mem p spares)) (List.init n Fun.id)
    in
    let init = Mconfig.bootstrap members in
    (* Floor: the width-preserving selectors keep issuing quorums of
       q = n - f slots, so at least that many live members must remain —
       plus the generic 2f+1 membership quorum unless the stack overrides
       it (MinBFT's USIG universe is pinned at 2f+1, where that term would
       equal n and freeze the membership; its hardware counters already
       stand in for the extra replicas). *)
    let min_n = Option.value min_n ~default:(max ((2 * f) + 1) (n - f)) in
    let eng = Membership.create ~me:0 ~f ~min_n init in
    Membership.announce_bootstrap init;
    List.iter (fun p -> set_mute p true) spares;
    let apply change =
      match Membership.validate eng change with
      | Error _ -> false
      | Ok () ->
        ignore (Membership.handle_change eng change : Membership.action);
        let fresh = Membership.config eng in
        (* Announce before reconfiguring: the monitor translates the
           [Reconfigured] events through the latest member list. *)
        Membership.announce fresh change;
        let cepoch = Mconfig.cepoch fresh in
        List.iter
          (fun q ->
            reconfigure q ~cepoch;
            (* The selector's matrix is a fresh object after the remap;
               re-wrap the delta-gossip engine around it. *)
            reattach_delta q)
          (Mconfig.members fresh);
        true
    in
    let cjoin p =
      if apply (Mconfig.Join p) then begin
        set_mute p false;
        (* Bootstrap exactly like an amnesia recovery: wipe to blank
           dormant selection state and fetch the cluster's state through
           the rejoin plane — no quorum until [Recovery_completed]. *)
        amnesia p
      end
    in
    let cleave p =
      if Mconfig.mem (Membership.config eng) p then begin
        (* Graceful drain: one anti-entropy handoff push before the
           removal, then permanent silence. *)
        Rejoin.push_now rnodes.(p);
        if apply (Mconfig.Leave p) then set_mute p true
      end
    in
    let ceject c =
      (* Fired on every store's conviction; the membership validation
         dedups — after the first ejection [c] is no longer a member. *)
      if Mconfig.mem (Membership.config eng) c && apply (Mconfig.Eject c) then
        set_mute c true
    in
    { cjoin; cleave; ceject }
  end

(* Suspicion-plane payloads for the stacks whose durable state is just the
   selection CRDT (their SMR logs are documented durable-by-default; only
   XPaxos models deep log durability). *)
let qs_payload ~n qsel =
  match qsel with
  | Some qsel ->
    { Rejoin.matrix = Codec.encode_matrix (QS.matrix qsel); epoch = QS.epoch qsel; extra = "" }
  | None ->
    { Rejoin.matrix = Codec.encode_matrix (Suspicion_matrix.create n); epoch = 1; extra = "" }

let qs_adopt qsel ~matrix ~epoch ~extra:_ =
  match qsel with Some qsel -> QS.absorb qsel ~matrix ~epoch | None -> ()

let qs_wipe qsel detector =
  (match qsel with Some qsel -> QS.amnesia qsel | None -> ());
  Detector.amnesia detector;
  None

(* Delta-gossip engines wrap the selector's live matrix directly; the merge
   callback is the dormancy-respecting re-evaluation, never [absorb]. *)
let qs_delta qsel p =
  match qsel with
  | Some qsel ->
    Some (Qs_core.Delta.create ~me:p (QS.matrix qsel), fun () -> QS.reevaluate qsel)
  | None -> None

(* Churn controller over quorum-selection stacks: width-preserving
   reconfigure (same n, identity slot remap, bumped membership epoch) plus
   a fresh delta-gossip engine around the remapped matrix. *)
let qs_churn ~n ~f ~spares ?min_n ~set_mute ~rnodes ~sel ~amnesia () =
  let reattach_delta p =
    match qs_delta (sel p) p with
    | Some (engine, on_merge) ->
      Rejoin.set_delta rnodes.(p) engine ~on_merge ~full_every:delta_full_every
    | None -> ()
  in
  let reconfigure p ~cepoch =
    match sel p with
    | Some s -> QS.reconfigure s { QS.n; f } ~me:p ~cepoch ~of_new:Fun.id
    | None -> ()
  in
  attach_churn ~n ~f ~spares ?min_n ~set_mute ~rnodes ~reattach_delta
    ~reconfigure ~amnesia ()

(* ------------------------------------------------------------------ *)
(* Commission-fault (evidence) plane.

   Every stack also gets one {!Evidence} store per process, fed from a
   tracer on the main network: each delivered frame carrying a suspicion
   row is handed to the receiver's store, which verifies the owner's tag,
   quarantines forgery channels, and turns two conflicting validly-signed
   rows from one owner into a transferable proof. Proofs gossip to the
   other stores on a one-tick side channel (prompt by construction —
   exclusion promptness is the monitor's [excluded-quorum] settle window,
   not what is under test), and each store's first conviction of a culprit
   feeds the process's quorum selector via [exclude].

   The clusters derive their key directories from the fixed default master
   secret, so [Auth.create n] here yields the same keys — the hooks can
   sign as the Byzantine source without new cluster accessors. *)

let attach_evidence ~sim ~net ~n ~auth ~extract ~exclude ?(eject = ignore) () =
  let stores = Array.init n (fun me -> Evidence.create ~auth ~me ~n) in
  Array.iteri
    (fun me store ->
      Evidence.set_on_exclude store (fun culprit ->
          exclude me culprit;
          (* With churn armed, a conviction also proposes the config change
             permanently removing the culprit (deduped by the membership
             validation). *)
          eject culprit))
    stores;
  let gossip ~from proof =
    for q = 0 to n - 1 do
      if q <> from then
        Sim.schedule sim ~delay:(ms 1) (fun () ->
            ignore (Evidence.admit stores.(q) proof : bool))
    done
  in
  Network.set_tracer net (fun ~kind ~now:_ ~src ~dst m ->
      match kind with
      | Network.Delivered -> (
        match extract m with
        | Some frame -> (
          match Evidence.observe stores.(dst) ~src frame with
          | Evidence.Proof p -> gossip ~from:dst p
          | Evidence.Ok | Evidence.Forged -> ())
        | None -> ())
      | Network.Send | Network.Dropped -> ());
  stores

(* The three protocol-speaking commission hooks for a stack whose suspicion
   rows travel as a [Qsel of Msg.t] body inside a sealed
   (sender, body, signature) envelope. [row_of] projects the signed UPDATE
   out of a frame, [wrap] seals a fresh envelope around one, [corrupt]
   invalidates an envelope's own tag. *)
let qsel_hooks ~n ~auth ~row_of ~wrap ~sender_of ~corrupt =
  (* Equivocation: replace src's own row with a destination-specific
     variant re-signed under its own key. Bumping coordinate [dst] makes
     any two variants for different destinations pointwise incomparable,
     so a store holding one variant convicts on the first forwarded copy
     of another. *)
  let equivocate ~src ~dst m =
    match row_of m with
    | Some qm when qm.Msg.update.Msg.owner = src ->
      let u = qm.Msg.update in
      let row = Array.copy u.Msg.row in
      row.(dst) <- row.(dst) + 1;
      Some (wrap ~sender:src (Msg.seal auth { u with Msg.row = row }))
    | _ -> None
  in
  (* Slander: a frame claiming [victim] signed a row it never produced.
     The tag cannot be forged (Section IV), so receivers reject it and
     blame the channel — the victim stays clean. *)
  let slander ~src ~victim =
    let u =
      {
        Msg.owner = victim;
        row = Array.init n (fun k -> if k = src then 999 else 0);
      }
    in
    let forged = Auth.forge auth ~claimed:victim (Msg.encode u) in
    Some (wrap ~sender:src { Msg.update = u; signature = forged.Auth.signature })
  in
  (* Tampering: flip a row entry and leave the owner's tag stale —
     receivers verify and drop, the evidence store quarantines the channel
     and leaves the claimed owner unblamed. Frames without a row get their
     envelope tag corrupted instead (rejected wholesale on receipt). *)
  let tamper m =
    match row_of m with
    | Some qm ->
      let u = qm.Msg.update in
      let row = Array.copy u.Msg.row in
      row.(0) <- row.(0) + 1;
      wrap ~sender:(sender_of m)
        { qm with Msg.update = { u with Msg.row = row } }
    | None -> corrupt m
  in
  (equivocate, slander, tamper)

(* Star is the odd one out: rows travel as [Fsel (Update _)] sealed at the
   Fmsg layer, so the hooks speak Fmsg and the extractor transcodes.
   A row whose Fmsg tag verifies really was vouched for by its owner, so
   re-sealing it as a [Msg.t] attestation (same key directory, same
   signer) loses nothing and lets one evidence-store currency serve all
   five stacks; a row whose Fmsg tag fails is forwarded with a broken
   [Msg.t] tag so the store's forgery path fires. *)
let star_extract ~auth (m : Qs_star.Star_msg.t) =
  match m.Qs_star.Star_msg.body with
  | Qs_star.Star_msg.Fsel ({ Fmsg.payload = Fmsg.Update u; _ } as fm) ->
    if Fmsg.verify auth fm then Some (Msg.seal auth u)
    else Some { Msg.update = u; signature = "" }
  | _ -> None

let star_hooks ~n ~auth =
  let wrap ~sender fm =
    Qs_star.Star_msg.seal auth ~sender (Qs_star.Star_msg.Fsel fm)
  in
  let equivocate ~src ~dst (m : Qs_star.Star_msg.t) =
    match m.Qs_star.Star_msg.body with
    | Qs_star.Star_msg.Fsel { Fmsg.payload = Fmsg.Update u; _ }
      when u.Msg.owner = src ->
      let row = Array.copy u.Msg.row in
      row.(dst) <- row.(dst) + 1;
      Some
        (wrap ~sender:src
           (Fmsg.seal auth (Fmsg.Update { u with Msg.row = row })))
    | _ -> None
  in
  let slander ~src ~victim =
    let u =
      {
        Msg.owner = victim;
        row = Array.init n (fun k -> if k = src then 999 else 0);
      }
    in
    let payload = Fmsg.Update u in
    let forged = Auth.forge auth ~claimed:victim (Fmsg.encode payload) in
    Some
      (wrap ~sender:src { Fmsg.payload; signature = forged.Auth.signature })
  in
  let tamper (m : Qs_star.Star_msg.t) =
    match m.Qs_star.Star_msg.body with
    | Qs_star.Star_msg.Fsel ({ Fmsg.payload = Fmsg.Update u; _ } as fm) ->
      let row = Array.copy u.Msg.row in
      row.(0) <- row.(0) + 1;
      wrap ~sender:m.Qs_star.Star_msg.sender
        { fm with Fmsg.payload = Fmsg.Update { u with Msg.row = row } }
    | _ -> { m with Qs_star.Star_msg.signature = "" }
  in
  (equivocate, slander, tamper)

(* What one simulated run must expose to the generic driver: after faults
   are installed and requests submitted, the monitor needs the executed
   histories of the unblamed processes, and liveness needs the commit
   census. *)
type instance = {
  sim : Sim.t;
  set_mute : int -> bool -> unit;
  set_policy : Qs_core.Selection_policy.t -> unit;
  install : Fault.schedule -> unit;
  submit_all : unit -> unit;
  committed : unit -> int;
  histories : int list -> (int * (int * int) list) list;
  evidence : Evidence.t array;
}

(* Install the same policy at every selector — policies are static config,
   and Agreement relies on all correct processes selecting through the same
   function. *)
let qs_set_policy ~n sel pol =
  for p = 0 to n - 1 do
    match sel p with Some s -> QS.set_policy s pol | None -> ()
  done

let make_instance stack ~params ~seed =
  let seed64 = Int64.of_int seed in
  let n = params.n and f = params.f in
  let ops = List.init params.requests (fun i -> Printf.sprintf "op%d" i) in
  match stack with
  | Xpaxos_enum | Xpaxos_qs ->
    let mode =
      if stack = Xpaxos_enum then Qs_xpaxos.Replica.Enumeration
      else Qs_xpaxos.Replica.Quorum_selection
    in
    let c =
      Qs_xpaxos.Xcluster.create ~seed:seed64
        { Qs_xpaxos.Replica.n; f; mode; initial_timeout = ms 25; timeout_strategy = strategy }
    in
    (* Deep durability: view, committed log prefix, selection state and
       adapted timeouts persist (fsynced at execute) and survive amnesia. *)
    Qs_xpaxos.Xcluster.attach_durability c;
    let sel p = Qs_xpaxos.Replica.quorum_selector (Qs_xpaxos.Xcluster.replica c p) in
    let set_mute p m =
      Qs_xpaxos.Xcluster.set_fault c p
        (if m then Qs_xpaxos.Replica.Mute else Qs_xpaxos.Replica.Honest)
    in
    let rnet, rnodes, amnesia =
      attach_recovery ~sim:(Qs_xpaxos.Xcluster.sim c) ~n
        ~delta:(fun p -> qs_delta (sel p) p)
        ~net_drop:(Network.drop_pending_to (Qs_xpaxos.Xcluster.net c))
        ~collect:(Qs_xpaxos.Xcluster.collect_payload c)
        ~adopt:(fun p ~matrix ~epoch ~extra ->
          Qs_xpaxos.Xcluster.adopt_payload c p ~matrix ~epoch ~extra)
        ~wipe:(fun p -> Some (Qs_xpaxos.Xcluster.amnesia c p))
    in
    let auth = Auth.create n in
    let row_of (m : Qs_xpaxos.Xmsg.t) =
      match m.Qs_xpaxos.Xmsg.body with
      | Qs_xpaxos.Xmsg.Qsel qm -> Some qm
      | _ -> None
    in
    let churn = ref no_churn in
    let evidence =
      attach_evidence ~sim:(Qs_xpaxos.Xcluster.sim c)
        ~net:(Qs_xpaxos.Xcluster.net c) ~n ~auth ~extract:row_of
        ~exclude:(fun me culprit ->
          match sel me with Some s -> QS.exclude s culprit | None -> ())
        ~eject:(fun culprit -> !churn.ceject culprit) ()
    in
    churn :=
      qs_churn ~n ~f ~spares:params.spares ~set_mute ~rnodes ~sel ~amnesia ();
    let equivocate, slander, tamper =
      qsel_hooks ~n ~auth ~row_of
        ~wrap:(fun ~sender qm ->
          Qs_xpaxos.Xmsg.seal auth ~sender (Qs_xpaxos.Xmsg.Qsel qm))
        ~sender_of:(fun m -> m.Qs_xpaxos.Xmsg.sender)
        ~corrupt:(fun m -> { m with Qs_xpaxos.Xmsg.signature = "" })
    in
    let requests = ref [] in
    {
      sim = Qs_xpaxos.Xcluster.sim c;
      set_mute;
      set_policy = qs_set_policy ~n sel;
      install =
        (fun schedule ->
          ignore (Injector.install ~net:rnet schedule);
          ignore
            (Injector.install ~net:(Qs_xpaxos.Xcluster.net c) ~set_mute ~amnesia
               ~equivocate ~slander ~tamper
               ~join:(fun p -> !churn.cjoin p)
               ~leave:(fun p -> !churn.cleave p)
               schedule));
      submit_all =
        (fun () ->
          requests :=
            List.map
              (Qs_xpaxos.Xcluster.submit c ~resubmit_every:params.resubmit_every)
              ops);
      committed =
        (fun () ->
          List.length
            (List.filter (Qs_xpaxos.Xcluster.is_globally_committed c) !requests));
      histories =
        (fun correct ->
          List.map
            (fun p ->
              ( p,
                List.map
                  (fun (r : Qs_xpaxos.Xmsg.request) -> (r.client, r.rid))
                  (Qs_xpaxos.Replica.executed (Qs_xpaxos.Xcluster.replica c p)) ))
            correct);
      evidence;
    }
  | Pbft ->
    let c =
      Qs_pbft.Pcluster.create ~seed:seed64
        {
          Qs_pbft.Preplica.n;
          f;
          participation = Qs_pbft.Preplica.Selected;
          initial_timeout = ms 25;
          timeout_strategy = strategy;
        }
    in
    let requests = ref [] in
    let sel p = Qs_pbft.Preplica.quorum_selector (Qs_pbft.Pcluster.replica c p) in
    let rnet, rnodes, amnesia =
      attach_recovery ~sim:(Qs_pbft.Pcluster.sim c) ~n
        ~delta:(fun p -> qs_delta (sel p) p)
        ~net_drop:(Network.drop_pending_to (Qs_pbft.Pcluster.net c))
        ~collect:(fun p -> qs_payload ~n (sel p))
        ~adopt:(fun p -> qs_adopt (sel p))
        ~wipe:(fun p ->
          qs_wipe (sel p) (Qs_pbft.Preplica.detector (Qs_pbft.Pcluster.replica c p)))
    in
    let set_mute p m =
      Qs_pbft.Pcluster.set_fault c p
        (if m then Qs_pbft.Preplica.Mute else Qs_pbft.Preplica.Honest)
    in
    let auth = Auth.create n in
    let row_of (m : Qs_pbft.Pmsg.t) =
      match m.Qs_pbft.Pmsg.body with
      | Qs_pbft.Pmsg.Qsel qm -> Some qm
      | _ -> None
    in
    let churn = ref no_churn in
    let evidence =
      attach_evidence ~sim:(Qs_pbft.Pcluster.sim c) ~net:(Qs_pbft.Pcluster.net c)
        ~n ~auth ~extract:row_of
        ~exclude:(fun me culprit ->
          match sel me with Some s -> QS.exclude s culprit | None -> ())
        ~eject:(fun culprit -> !churn.ceject culprit) ()
    in
    churn :=
      qs_churn ~n ~f ~spares:params.spares ~set_mute ~rnodes ~sel ~amnesia ();
    let equivocate, slander, tamper =
      qsel_hooks ~n ~auth ~row_of
        ~wrap:(fun ~sender qm ->
          Qs_pbft.Pmsg.seal auth ~sender (Qs_pbft.Pmsg.Qsel qm))
        ~sender_of:(fun m -> m.Qs_pbft.Pmsg.sender)
        ~corrupt:(fun m -> { m with Qs_pbft.Pmsg.signature = "" })
    in
    {
      sim = Qs_pbft.Pcluster.sim c;
      set_mute;
      set_policy = qs_set_policy ~n sel;
      install =
        (fun schedule ->
          ignore (Injector.install ~net:rnet schedule);
          ignore
            (Injector.install ~net:(Qs_pbft.Pcluster.net c) ~set_mute ~amnesia
               ~equivocate ~slander ~tamper
               ~join:(fun p -> !churn.cjoin p)
               ~leave:(fun p -> !churn.cleave p)
               schedule));
      submit_all =
        (fun () ->
          requests :=
            List.map (Qs_pbft.Pcluster.submit c ~resubmit_every:params.resubmit_every) ops);
      committed =
        (fun () ->
          List.length (List.filter (Qs_pbft.Pcluster.is_globally_committed c) !requests));
      histories =
        (fun correct ->
          List.map
            (fun p ->
              ( p,
                List.map
                  (fun (r : Qs_pbft.Pmsg.request) -> (r.client, r.rid))
                  (Qs_pbft.Preplica.executed (Qs_pbft.Pcluster.replica c p)) ))
            correct);
      evidence;
    }
  | Minbft ->
    let c =
      Qs_minbft.Mcluster.create ~seed:seed64
        {
          Qs_minbft.Mreplica.n;
          f;
          participation = Qs_minbft.Mreplica.Selected;
          initial_timeout = ms 25;
          timeout_strategy = strategy;
        }
    in
    let requests = ref [] in
    let sel p = Qs_minbft.Mreplica.quorum_selector (Qs_minbft.Mcluster.replica c p) in
    let rnet, rnodes, amnesia =
      attach_recovery ~sim:(Qs_minbft.Mcluster.sim c) ~n
        ~delta:(fun p -> qs_delta (sel p) p)
        ~net_drop:(Network.drop_pending_to (Qs_minbft.Mcluster.net c))
        ~collect:(fun p -> qs_payload ~n (sel p))
        ~adopt:(fun p -> qs_adopt (sel p))
        ~wipe:(fun p ->
          qs_wipe (sel p)
            (Qs_minbft.Mreplica.detector (Qs_minbft.Mcluster.replica c p)))
    in
    let set_mute p m =
      Qs_minbft.Mcluster.set_fault c p
        (if m then Qs_minbft.Mreplica.Mute else Qs_minbft.Mreplica.Honest)
    in
    let auth = Auth.create n in
    let row_of (m : Qs_minbft.Mmsg.t) =
      match m.Qs_minbft.Mmsg.body with
      | Qs_minbft.Mmsg.Qsel qm -> Some qm
      | _ -> None
    in
    let churn = ref no_churn in
    let evidence =
      attach_evidence ~sim:(Qs_minbft.Mcluster.sim c)
        ~net:(Qs_minbft.Mcluster.net c) ~n ~auth ~extract:row_of
        ~exclude:(fun me culprit ->
          match sel me with Some s -> QS.exclude s culprit | None -> ())
        ~eject:(fun culprit -> !churn.ceject culprit) ()
    in
    (* n = 2f+1 here, so the generic 2f+1 floor would freeze the
       membership; the binding bound is the slot-filling one. *)
    churn :=
      qs_churn ~n ~f ~spares:params.spares ~min_n:(n - f) ~set_mute ~rnodes
        ~sel ~amnesia ();
    let equivocate, slander, tamper =
      qsel_hooks ~n ~auth ~row_of
        ~wrap:(fun ~sender qm ->
          Qs_minbft.Mmsg.seal auth ~sender (Qs_minbft.Mmsg.Qsel qm))
        ~sender_of:(fun m -> m.Qs_minbft.Mmsg.sender)
        ~corrupt:(fun m -> { m with Qs_minbft.Mmsg.signature = "" })
    in
    {
      sim = Qs_minbft.Mcluster.sim c;
      set_mute;
      set_policy = qs_set_policy ~n sel;
      install =
        (fun schedule ->
          ignore (Injector.install ~net:rnet schedule);
          ignore
            (Injector.install ~net:(Qs_minbft.Mcluster.net c) ~set_mute ~amnesia
               ~equivocate ~slander ~tamper
               ~join:(fun p -> !churn.cjoin p)
               ~leave:(fun p -> !churn.cleave p)
               schedule));
      submit_all =
        (fun () ->
          requests :=
            List.map (Qs_minbft.Mcluster.submit c ~resubmit_every:params.resubmit_every) ops);
      committed =
        (fun () -> List.length (List.filter (Qs_minbft.Mcluster.is_committed c) !requests));
      histories =
        (fun correct ->
          List.map
            (fun p ->
              ( p,
                List.map
                  (fun (r : Qs_minbft.Mmsg.request) -> (r.client, r.rid))
                  (Qs_minbft.Mreplica.executed (Qs_minbft.Mcluster.replica c p)) ))
            correct);
      evidence;
    }
  | Chain ->
    let c =
      Qs_bchain.Chain_cluster.create ~seed:seed64
        { Qs_bchain.Chain_node.n; f; initial_timeout = ms 25; timeout_strategy = strategy }
    in
    let requests = ref [] in
    let sel p =
      Some (Qs_bchain.Chain_node.quorum_selector (Qs_bchain.Chain_cluster.node c p))
    in
    let rnet, rnodes, amnesia =
      attach_recovery ~sim:(Qs_bchain.Chain_cluster.sim c) ~n
        ~delta:(fun p -> qs_delta (sel p) p)
        ~net_drop:(Network.drop_pending_to (Qs_bchain.Chain_cluster.net c))
        ~collect:(fun p -> qs_payload ~n (sel p))
        ~adopt:(fun p -> qs_adopt (sel p))
        ~wipe:(fun p ->
          qs_wipe (sel p)
            (Qs_bchain.Chain_node.detector (Qs_bchain.Chain_cluster.node c p)))
    in
    let set_mute p m =
      Qs_bchain.Chain_cluster.set_fault c p
        (if m then Qs_bchain.Chain_node.Mute else Qs_bchain.Chain_node.Honest)
    in
    let auth = Auth.create n in
    let row_of (m : Qs_bchain.Chain_msg.t) =
      match m.Qs_bchain.Chain_msg.body with
      | Qs_bchain.Chain_msg.Qsel qm -> Some qm
      | _ -> None
    in
    let churn = ref no_churn in
    let evidence =
      attach_evidence ~sim:(Qs_bchain.Chain_cluster.sim c)
        ~net:(Qs_bchain.Chain_cluster.net c) ~n ~auth ~extract:row_of
        ~exclude:(fun me culprit ->
          QS.exclude
            (Qs_bchain.Chain_node.quorum_selector
               (Qs_bchain.Chain_cluster.node c me))
            culprit)
        ~eject:(fun culprit -> !churn.ceject culprit) ()
    in
    churn :=
      qs_churn ~n ~f ~spares:params.spares ~set_mute ~rnodes ~sel ~amnesia ();
    let equivocate, slander, tamper =
      qsel_hooks ~n ~auth ~row_of
        ~wrap:(fun ~sender qm ->
          Qs_bchain.Chain_msg.seal auth ~sender (Qs_bchain.Chain_msg.Qsel qm))
        ~sender_of:(fun m -> m.Qs_bchain.Chain_msg.sender)
        ~corrupt:(fun m -> { m with Qs_bchain.Chain_msg.signature = "" })
    in
    {
      sim = Qs_bchain.Chain_cluster.sim c;
      set_mute;
      set_policy = qs_set_policy ~n sel;
      install =
        (fun schedule ->
          ignore (Injector.install ~net:rnet schedule);
          ignore
            (Injector.install ~net:(Qs_bchain.Chain_cluster.net c) ~set_mute
               ~amnesia ~equivocate ~slander ~tamper
               ~join:(fun p -> !churn.cjoin p)
               ~leave:(fun p -> !churn.cleave p)
               schedule));
      submit_all =
        (fun () ->
          requests :=
            List.map
              (Qs_bchain.Chain_cluster.submit c ~resubmit_every:params.resubmit_every)
              ops);
      committed =
        (fun () ->
          List.length (List.filter (Qs_bchain.Chain_cluster.is_committed c) !requests));
      histories =
        (fun correct ->
          List.map
            (fun p ->
              ( p,
                List.map
                  (fun (r : Qs_bchain.Chain_msg.request) -> (r.client, r.rid))
                  (Qs_bchain.Chain_node.executed (Qs_bchain.Chain_cluster.node c p)) ))
            correct);
      evidence;
    }
  | Star ->
    let c =
      Qs_star.Star_cluster.create ~seed:seed64
        { Qs_star.Star_node.n; f; initial_timeout = ms 25; timeout_strategy = strategy }
    in
    let requests = ref [] in
    let sel p = Qs_star.Star_node.selector (Qs_star.Star_cluster.node c p) in
    let fs_delta p =
      Some
        ( Qs_core.Delta.create ~me:p (FS.matrix (sel p)),
          fun () -> FS.reevaluate (sel p) )
    in
    let rnet, rnodes, amnesia =
      attach_recovery ~sim:(Qs_star.Star_cluster.sim c) ~n ~delta:fs_delta
        ~net_drop:(Network.drop_pending_to (Qs_star.Star_cluster.net c))
        ~collect:(fun p ->
          {
            Rejoin.matrix = Codec.encode_matrix (FS.matrix (sel p));
            epoch = FS.epoch (sel p);
            extra = "";
          })
        ~adopt:(fun p ~matrix ~epoch ~extra:_ -> FS.absorb (sel p) ~matrix ~epoch)
        ~wipe:(fun p ->
          FS.amnesia (sel p);
          Detector.amnesia (Qs_star.Star_node.detector (Qs_star.Star_cluster.node c p));
          None)
    in
    let set_mute p m =
      Qs_star.Star_cluster.set_fault c p
        (if m then Qs_star.Star_node.Mute else Qs_star.Star_node.Honest)
    in
    let auth = Auth.create n in
    let churn = ref no_churn in
    let evidence =
      attach_evidence ~sim:(Qs_star.Star_cluster.sim c)
        ~net:(Qs_star.Star_cluster.net c) ~n ~auth ~extract:(star_extract ~auth)
        ~exclude:(fun me culprit -> FS.exclude (sel me) culprit)
        ~eject:(fun culprit -> !churn.ceject culprit) ()
    in
    churn :=
      attach_churn ~n ~f ~spares:params.spares ~set_mute ~rnodes
        ~reattach_delta:(fun p ->
          match fs_delta p with
          | Some (engine, on_merge) ->
            Rejoin.set_delta rnodes.(p) engine ~on_merge
              ~full_every:delta_full_every
          | None -> ())
        ~reconfigure:(fun p ~cepoch ->
          FS.reconfigure (sel p) { QS.n; f } ~me:p ~cepoch ~of_new:Fun.id)
        ~amnesia ();
    let equivocate, slander, tamper = star_hooks ~n ~auth in
    {
      sim = Qs_star.Star_cluster.sim c;
      set_mute;
      set_policy =
        (fun pol ->
          for p = 0 to n - 1 do
            FS.set_policy (sel p) pol
          done);
      install =
        (fun schedule ->
          ignore (Injector.install ~net:rnet schedule);
          ignore
            (Injector.install ~net:(Qs_star.Star_cluster.net c) ~set_mute ~amnesia
               ~equivocate ~slander ~tamper
               ~join:(fun p -> !churn.cjoin p)
               ~leave:(fun p -> !churn.cleave p)
               schedule));
      submit_all =
        (fun () ->
          requests :=
            List.map (Qs_star.Star_cluster.submit c ~resubmit_every:params.resubmit_every) ops);
      committed =
        (fun () ->
          List.length (List.filter (Qs_star.Star_cluster.is_committed c) !requests));
      histories =
        (fun correct ->
          List.map
            (fun p ->
              ( p,
                List.map
                  (fun (r : Qs_star.Star_msg.request) -> (r.client, r.rid))
                  (Qs_star.Star_node.executed (Qs_star.Star_cluster.node c p)) ))
            correct);
      evidence;
    }

let bound_for stack ~f =
  match stack with
  | Star -> (Monitor.theorem9 ~f, Some "fs_quorums_per_epoch_max")
  | _ -> (Monitor.theorem3 ~f, Some "qs_quorums_per_epoch_max")

(* Run one schedule on one stack with the online monitor attached. Pure in
   (seed, schedule): the same pair always yields the same outcome, which the
   campaign's replay and shrinking rely on. *)
let execute_with_evidence stack ?(params = default_params stack) ~seed ~model
    schedule : Campaign.exec_outcome * Evidence.t array =
  let n = params.n and f = params.f in
  let blamed = Fault.blamed ~n schedule in
  let correct =
    List.filter (fun p -> not (List.mem p blamed)) (List.init n Fun.id)
  in
  let in_model = match model with Fault.In_model _ -> true | Fault.Out_of_model _ -> false in
  Metrics.reset ();
  let was_live = Journal.live () in
  Journal.clear ();
  Journal.set_enabled true;
  let inst = make_instance stack ~params ~seed in
  (* Non-default policies install on every selector before any fault or
     request fires; the default keeps the historical byte-exact path. *)
  if not (Qs_core.Selection_policy.is_default params.policy) then
    inst.set_policy params.policy;
  let bound, gauge = bound_for stack ~f in
  let monitor =
    Monitor.create
      {
        Monitor.n;
        f;
        correct;
        (* The Theorem-3/9 bounds and the no-suspicion property assume the
           model's failure budget; out-of-model schedules only owe core
           SMR safety (prefix consistency, exactly-once). *)
        quorum_bound = (if in_model then Some bound else None);
        bound_gauge = (if in_model then gauge else None);
        settle = ms 50;
        (* In-model there is always a correct reachable peer, so a rejoin
           must finish within the engine's own retry budget. *)
        rejoin_retry_bound = (if in_model then Some rejoin_max_retries else None);
      }
  in
  Monitor.attach_history_probe monitor ~sim:inst.sim ~every:params.probe_every
    (fun () -> inst.histories correct);
  inst.install schedule;
  inst.submit_all ();
  Sim.run ~until:params.horizon inst.sim;
  (* Recovery liveness owes completion only in-model (same gating as the
     termination check below). *)
  if in_model then
    Monitor.check_recovered monitor ~at:(Stime.to_ms (Sim.now inst.sim));
  let committed = inst.committed () in
  let liveness =
    if in_model && committed < params.requests then
      [
        Printf.sprintf "termination: only %d/%d requests committed by %s" committed
          params.requests
          (Format.asprintf "%a" Stime.pp params.horizon);
      ]
    else []
  in
  Monitor.detach monitor;
  Journal.set_enabled was_live;
  ( {
      Campaign.violations = Monitor.violations monitor;
      liveness;
      committed;
      submitted = params.requests;
      checks = Monitor.checks_run monitor;
      proofs = Monitor.proofs_observed monitor;
      forgeries = Monitor.forgeries_observed monitor;
      reconfigs = Monitor.reconfigs_observed monitor;
      isect_pairs = Monitor.intersection_pairs monitor;
      isect_min_overlap = Monitor.intersection_min_overlap monitor;
    },
    inst.evidence )

let execute stack ?params ~seed ~model schedule =
  fst (execute_with_evidence stack ?params ~seed ~model schedule)

let campaign stack ?params ?(out_of_model = false) ?(amnesia = false)
    ?(byz = false) ?(churn = false) ?(correlated = false) ?(runs = 20)
    ?(jobs = 1) ~seed () =
  let params =
    match params with
    | Some p -> p
    | None -> if churn then churn_params stack else default_params stack
  in
  let profile =
    let base = Fault.default_profile ~horizon:params.horizon in
    (* p_amnesia = 0 keeps the random stream byte-identical to pre-amnesia
       pinned seeds; with the flag, half the generated crashes lose their
       volatile state and must rejoin. *)
    let base = if amnesia then { base with Fault.p_amnesia = 0.5 } else base in
    (* Same guard for the commission knobs: off by default, and with --byz a
       faulty process draws one active Byzantine behavior before falling
       back to the benign link mix. *)
    let base =
      if byz then
        {
          base with
          Fault.p_equivocate = 0.35;
          p_slander = 0.3;
          p_tamper = 0.25;
          p_replay = 0.25;
        }
      else base
    in
    (* Churn: spares may join (within the blame budget) and faulty members
       may leave; both zero by default, keeping pinned streams intact. *)
    let base =
      if churn then
        { base with Fault.p_join = 0.7; p_leave = 0.35; spares = params.spares }
      else base
    in
    (* Correlated faults: whole fault domains (derived from the same
       topology [--policy diverse] uses) partition, power off or go gray
       together — emitted only while the schedule's exact blame set fits
       the budget, and guarded so pinned streams stay byte-identical when
       off. *)
    if correlated then
      {
        base with
        Fault.p_region = 0.4;
        p_rack = 0.3;
        p_gray_region = 0.3;
        regions = regions_for params;
      }
    else base
  in
  let gen rng =
    let s =
      if out_of_model then Fault.gen_wild rng ~n:params.n ~f:params.f ~profile ()
      else Fault.gen rng ~n:params.n ~f:params.f ~profile ()
    in
    if not churn then s
    else begin
      (* A spare without a join stays muted the whole run — equivalent to a
         full-run crash, which the classifier must blame or the termination
         and budget accounting would charge a phantom correct process. *)
      let joined p =
        List.exists (fun ph -> ph.Fault.what = Fault.Join p) s
      in
      s
      @ List.filter_map
          (fun p -> if joined p then None else Some (Fault.at (Fault.Crash p)))
          params.spares
    end
  in
  Campaign.run ~jobs ~seed ~runs ~gen
    ~classify:(Fault.classify ~n:params.n ~f:params.f)
    ~execute:(fun ~seed ~model schedule -> execute stack ~params ~seed ~model schedule)
    ()
