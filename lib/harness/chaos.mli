(** Chaos campaigns over the five protocol stacks.

    Binds {!Qs_faults.Campaign} to concrete clusters: each run builds a
    fresh cluster from the run seed, compiles the generated fault schedule
    onto its network through {!Qs_faults.Injector}, attaches the online
    {!Qs_faults.Monitor} (journal subscription plus a periodic
    history/metrics probe), submits a workload and renders the verdict.

    Safety (prefix consistency, exactly-once) is checked for every
    schedule. The paper-specific checks — per-epoch quorum bounds
    (Theorem 3's [f(f+1)] for quorum selection, Theorem 9's [3f+1] for
    follower selection) and no-suspicion among correct processes — plus
    the termination check only apply to in-model schedules, where at most
    [f] processes are blamed.

    Every cluster also gets a {e recovery plane}: a parallel network on the
    same simulation running one {!Qs_recovery.Rejoin} engine per process
    with low-rate anti-entropy gossip. Fault schedules are installed on
    both planes, and a [CrashAmnesia] phase's recovery point wipes the
    process's volatile state (XPaxos restores a deep durable snapshot —
    view, committed log prefix, selection state, adapted timeouts — via
    {!Qs_xpaxos.Xcluster.attach_durability}; the other stacks lose their
    suspicion-plane state and keep their SMR logs, which are documented as
    durable-by-default) and starts a rejoin round. The monitor additionally
    enforces the recovery invariants: no quorum from mid-rejoin stale
    state, bounded retries, and (in-model) rejoin completion.

    Commission faults get an {e evidence plane}: one
    {!Qs_evidence.Evidence} store per process, fed every delivered
    suspicion row by a network tracer. Stores verify owner tags, turn
    conflicting validly-signed rows into transferable equivocation proofs
    (gossiped to the other stores), quarantine forgery channels, and wire
    convictions into the stacks' quorum selectors as permanent exclusions.
    The injector's protocol-speaking hooks (equivocate / slander / tamper)
    are supplied per stack, so [Fault.Equivocate] and friends produce real
    re-signed wire frames. *)

type stack = Xpaxos_enum | Xpaxos_qs | Pbft | Minbft | Chain | Star

val all : stack list

val name : stack -> string

val of_name : string -> stack option
(** Case-insensitive lookup of the names printed by {!name}. *)

type params = {
  n : int;
  f : int;
  horizon : Qs_sim.Stime.t;  (** virtual run length per schedule *)
  requests : int;
  resubmit_every : Qs_sim.Stime.t;
  probe_every : Qs_sim.Stime.t;  (** online history/metrics probe period *)
  spares : int list;
      (** Universe pids outside the initial membership — muted until a
          generated [Join] admits them through the churn plane. Empty
          (static membership) by default. *)
  policy : Qs_core.Selection_policy.t;
      (** Selection policy installed on every process's selector before the
          run starts ({!Qs_core.Selection_policy.Lex_first} by default,
          which keeps the historical byte-exact execution path). Static
          configuration: every process gets the same one. *)
}

val default_params : stack -> params
(** n = 5, f = 2 for XPaxos and MinBFT; n = 7, f = 2 for PBFT, chain and
    star; 10 s horizon; no spares. *)

val churn_params : stack -> params
(** One universe size up with the top pid as a spare and f = 3, so a join,
    a leave and a Byzantine-then-ejected process fit in-model together:
    n = 8 for XPaxos, n = 10 for PBFT/chain/star — and n = 9 with f = 4
    for MinBFT, whose USIG replica count is pinned at exactly n = 2f+1. *)

val topology_for : params -> Qs_core.Topology.t
(** The canonical region topology of a parameter set: contiguous balanced
    blocks labeled [r0, r1, …], with enough regions that none exceeds the
    [f] budget (so a whole-region loss can stay in-model). The same
    topology backs [--correlated] fault domains and [--policy diverse]
    caps, so the two compose coherently. *)

val regions_for : params -> (string * int list) list
(** {!topology_for} flattened to (label, members) fault domains — the
    [regions] field of a correlated {!Qs_faults.Fault.gen_profile}. *)

val rejoin_max_retries : int
(** The retry budget every cluster's rejoin engines run with — also the
    monitor's [rejoin_retry_bound] on in-model schedules. *)

val execute :
  stack ->
  ?params:params ->
  seed:int ->
  model:Qs_faults.Fault.model ->
  Qs_faults.Fault.schedule ->
  Qs_faults.Campaign.exec_outcome
(** One monitored run of one schedule. Deterministic in [(seed, schedule)]
    — the replay/shrinking contract of {!Qs_faults.Campaign.run}. Resets
    the default metrics registry and clears the default journal. *)

val execute_with_evidence :
  stack ->
  ?params:params ->
  seed:int ->
  model:Qs_faults.Fault.model ->
  Qs_faults.Fault.schedule ->
  Qs_faults.Campaign.exec_outcome * Qs_evidence.Evidence.t array
(** {!execute}, additionally returning the per-process evidence stores of
    the commission plane, so tests can assert who ended up proof-excluded
    (and that no correct process did). Store [p] belongs to process [p]. *)

val campaign :
  stack ->
  ?params:params ->
  ?out_of_model:bool ->
  ?amnesia:bool ->
  ?byz:bool ->
  ?churn:bool ->
  ?correlated:bool ->
  ?runs:int ->
  ?jobs:int ->
  seed:int ->
  unit ->
  Qs_faults.Campaign.report
(** Generate-and-execute [runs] schedules from [seed]. [out_of_model]
    switches the generator to {!Qs_faults.Fault.gen_wild}, which exceeds
    the failure budget (the monitor then only enforces core SMR safety).
    [amnesia] makes half the generated crashes amnesia crashes
    ([p_amnesia = 0.5]); off by default, which keeps pinned campaign seeds
    byte-identical to their pre-recovery outcomes. [byz] likewise turns on
    the commission-fault plane (equivocation, slander, tampering, replay)
    with one active Byzantine behavior per blamed process; the evidence
    stores then convict and permanently exclude provable misbehavers while
    the monitor checks no correct process is ever proof-excluded. [churn]
    defaults [params] to {!churn_params} and arms the membership plane:
    spares join mid-run (bootstrapping dormant through the rejoin plane),
    faulty members leave after a graceful anti-entropy handoff, and
    convictions additionally propose the config change ejecting the
    culprit; every change reconfigures the member selectors
    width-preserving (membership epoch bump, identity slot remap) and the
    monitor's cross-epoch invariants (stale-config, joiner-quorum,
    ejected-quorum/readmitted) arm themselves from the journal.
    [correlated] arms whole-fault-domain failures over {!regions_for}'s
    topology (region partitions, rack losses, gray regions), emitted only
    while the schedule's blame set fits the budget; like the other knobs it
    is stream-stable when off.

    [jobs] (default 1) executes the runs on that many domains with a
    byte-identical report for every value — see {!Qs_faults.Campaign.run};
    each run builds its cluster against the executing domain's own default
    metrics registry and journal, so concurrent runs never share
    observability state. *)
