module Table = Qs_stdx.Table
module Stime = Qs_sim.Stime
module Fault = Qs_faults.Fault
module Journal = Qs_obs.Journal
module Metrics = Qs_obs.Metrics

let ms = Stime.of_ms

(* Both variants use the same window, placed right on top of the workload
   (requests go in at t = 0 and resubmit until committed): the victim goes
   dark at 100ms and the fault lifts at 600ms. A plain [Crash] resumes with
   its volatile state intact; a [CrashAmnesia] resumes from its durable
   snapshot and must run the rejoin protocol before it may issue quorums
   again. *)
let fault_start = ms 100

let fault_stop = ms 600

let victim stack =
  match stack with Chaos.Chain | Chaos.Star -> 2 | _ -> 1

type measured = {
  outcome : Qs_faults.Campaign.exec_outcome;
  rejoin_latency : Stime.t option;  (** [Recovery_started] → [Recovery_completed]. *)
  rejoin_retries : int option;
  quorums_per_epoch_max : float option;
}

(* The selector gauges are per-process ([{p=<pid>}] label, written by the
   monitor's bound check); report the worst process. Enumeration-mode
   stacks have no selector and never set either gauge. *)
let max_selector_gauge ~n =
  List.fold_left
    (fun acc name ->
      List.fold_left
        (fun acc p ->
          match Metrics.find_gauge ~labels:[ ("p", string_of_int p) ] name with
          | Some v -> Some (max v (Option.value acc ~default:v))
          | None -> acc)
        acc (List.init n Fun.id))
    None
    [ "qs_quorums_per_epoch_max"; "fs_quorums_per_epoch_max" ]

let run_one stack kind =
  let params = Chaos.default_params stack in
  let schedule = [ Fault.at ~start:fault_start ~stop:fault_stop kind ] in
  let model = Fault.classify ~n:params.n ~f:params.f schedule in
  let outcome = Chaos.execute stack ~params ~seed:14 ~model schedule in
  (* [Chaos.execute] leaves the run's journal and metrics in place — scrape
     the recovery timeline out of them. *)
  let started = ref None and completed = ref None and retries = ref None in
  List.iter
    (fun { Journal.at; event; _ } ->
      match event with
      | Journal.Recovery_started _ when !started = None -> started := Some at
      | Journal.Recovery_completed { retries = r; _ } when !completed = None ->
        completed := Some at;
        retries := Some r
      | _ -> ())
    (Journal.entries ());
  let rejoin_latency =
    match (!started, !completed) with
    | Some t0, Some t1 -> Some (ms (int_of_float (t1 -. t0)))
    | _ -> None
  in
  {
    outcome;
    rejoin_latency;
    rejoin_retries = !retries;
    quorums_per_epoch_max = max_selector_gauge ~n:params.n;
  }

let clean (o : Qs_faults.Campaign.exec_outcome) =
  o.violations = [] && o.liveness = []

let run () =
  let stacks = Chaos.all in
  let rows =
    List.map
      (fun stack ->
        let p = victim stack in
        let crash = run_one stack (Fault.Crash p) in
        let amnesia = run_one stack (Fault.CrashAmnesia p) in
        (stack, crash, amnesia))
      stacks
  in
  let t =
    Table.create
      ~title:
        "E14 (extension): the price of forgetting - mute-crash vs amnesia-crash \
         recovery (crash window 100-600ms)"
      ~columns:
        [
          ("stack", Table.Left);
          ("committed (mute)", Table.Right);
          ("committed (amnesia)", Table.Right);
          ("rejoin latency", Table.Right);
          ("rejoin retries", Table.Right);
          ("max quorums/epoch", Table.Right);
        ]
  in
  let verdicts = ref [] in
  List.iter
    (fun (stack, crash, amnesia) ->
      let name = Chaos.name stack in
      Table.add_row t
        [
          name;
          string_of_int crash.outcome.Qs_faults.Campaign.committed;
          string_of_int amnesia.outcome.Qs_faults.Campaign.committed;
          (match amnesia.rejoin_latency with
           | Some l -> Format.asprintf "%a" Stime.pp l
           | None -> "NO REJOIN");
          (match amnesia.rejoin_retries with Some r -> string_of_int r | None -> "-");
          (match amnesia.quorums_per_epoch_max with
           | Some g -> Printf.sprintf "%.0f" g
           | None -> "-");
        ];
      verdicts :=
        Verdict.make (name ^ ": mute-crash run clean") (clean crash.outcome)
        :: Verdict.make (name ^ ": amnesia run clean") (clean amnesia.outcome)
        :: Verdict.make (name ^ ": rejoin completed") (amnesia.rejoin_latency <> None)
        :: Verdict.make
             (name ^ ": retries within the engine budget")
             (match amnesia.rejoin_retries with
              | Some r -> r <= Chaos.rejoin_max_retries
              | None -> false)
        :: !verdicts)
    rows;
  (t, List.rev !verdicts)
