(** E14 (extension): mute-crash vs amnesia-crash recovery.

    For each protocol stack, run the same crash window twice through the
    monitored chaos harness — once as a plain mute [Crash] (volatile state
    survives) and once as a [CrashAmnesia] (volatile state is wiped at
    recovery; the process restores its durable snapshot and runs the
    {!Qs_recovery.Rejoin} protocol). The table reports committed requests
    under both variants plus the amnesia run's rejoin latency
    ([Recovery_started] → [Recovery_completed] from the journal), retry
    count, and the per-epoch quorum gauge; the verdicts require both runs
    clean, the rejoin completed, and retries within the engine budget. *)

val run : unit -> Qs_stdx.Table.t * Verdict.t list
