module Table = Qs_stdx.Table
module Matrix = Qs_core.Suspicion_matrix
module QS = Qs_core.Quorum_select
module Indep = Qs_graph.Indep
module Mconfig = Qs_membership.Config
module Membership = Qs_membership.Membership

type point = {
  n : int;  (** initial membership size *)
  f : int;
  rounds : int;
  joins : int;
  leaves : int;
  ejects : int;
  availability : float;
      (** fraction of config changes after which a full independent
          quorum was immediately available *)
  quorum_changes : int;
      (** config changes whose post-change quorum (as universe pids)
          differs from the previous one *)
  reconfig_ops_per_sec : float;
  remap_consistent : bool;
  departed_clean : bool;
}

let default_sizes = [ 64; 256 ]

(* The same fixed suspicion core as E15: f stays small while n grows. *)
let core_f = 4

let ops_per_sec ~min_elapsed f =
  let rec go iters =
    let t0 = Sys.time () in
    for _ = 1 to iters do
      f ()
    done;
    let dt = Sys.time () -. t0 in
    if dt >= min_elapsed then float_of_int iters /. dt else go (iters * 2)
  in
  go 64

(* Universe pids are auth key indices; the membership config maps the
   sorted member pids onto selector slots. Process 0 hosts the measured
   selector: its pid sorts first, so its slot is 0 in every config. *)
let measure_point ~quick n =
  let f = core_f in
  let spares = if quick then 4 else 8 in
  let rounds = if quick then 12 else 32 in
  let universe = n + spares + 1 in
  let auth = Qs_crypto.Auth.create universe in
  let init = Mconfig.bootstrap (List.init n Fun.id) in
  let mem = Membership.create ~me:0 ~f init in
  let sel =
    QS.create { QS.n; f } ~me:0 ~auth ~send:(fun _ -> ())
      ~on_quorum:(fun _ -> ())
      ()
  in
  (* Process 0 suspects pids 1..f — the suspicion core whose slots every
     compacting remap must track. *)
  let suspects = List.init f (fun i -> i + 1) in
  QS.handle_suspected sel suspects;
  let reconfigure change =
    (match Membership.validate mem change with
    | Ok () -> ()
    | Error m -> invalid_arg ("E16: " ^ m));
    match Membership.handle_change mem change with
    | Membership.Remap { of_new; me } ->
      let cfg = Membership.config mem in
      QS.reconfigure sel (Membership.qs_config mem) ~me
        ~cepoch:(Mconfig.cepoch cfg) ~of_new
    | Membership.Admit | Membership.Depart | Membership.Observe ->
      invalid_arg "E16: process 0 must stay a member"
  in
  let pid_quorum () =
    let cfg = Membership.config mem in
    List.sort compare (List.map (Mconfig.pid_of_slot cfg) (QS.last_quorum sel))
  in
  let available () =
    let lq = QS.last_quorum sel in
    List.length lq = QS.q (Membership.qs_config mem)
    && Indep.is_independent (QS.suspect_graph sel) lq
  in
  (* Sustained churn: joins drain the spare pool on even rounds, the
     highest member outside the suspicion core leaves on odd rounds, and
     one mid-run eviction removes a suspected core member — the
     evidence-conviction shape. All choices are deterministic, so the
     per-round counters are code properties the bench gate can pin. *)
  let joins = ref 0 and leaves = ref 0 and ejects = ref 0 in
  let ok_rounds = ref 0 and quorum_changes = ref 0 in
  let departed = ref [] in
  let departed_clean = ref true in
  let next_spare = ref n in
  let prev_q = ref (pid_quorum ()) in
  for r = 0 to rounds - 1 do
    let change =
      if r = rounds / 2 then begin
        incr ejects;
        Mconfig.Eject 1
      end
      else if r mod 2 = 0 && !next_spare < n + spares then begin
        incr joins;
        let s = !next_spare in
        incr next_spare;
        Mconfig.Join s
      end
      else begin
        incr leaves;
        let members = Mconfig.members (Membership.config mem) in
        let candidate =
          List.fold_left
            (fun acc p -> if p > 2 * f && p > acc then p else acc)
            (-1) members
        in
        Mconfig.Leave candidate
      end
    in
    let target = Mconfig.target change in
    reconfigure change;
    (match change with
    | Mconfig.Leave _ | Mconfig.Eject _ -> departed := target :: !departed
    | Mconfig.Join _ -> ());
    if available () then incr ok_rounds;
    let q = pid_quorum () in
    if q <> !prev_q then incr quorum_changes;
    prev_q := q;
    if List.exists (fun p -> List.mem p q) !departed then
      departed_clean := false
  done;
  (* Remapped state must be indistinguishable from a from-scratch rebuild
     of the final configuration: same matrix, same quorum. *)
  let remap_consistent =
    let cfg = Membership.config mem in
    let surviving =
      List.filter_map (Mconfig.slot_of_pid cfg) suspects
    in
    let fresh =
      QS.create (Membership.qs_config mem) ~me:0 ~auth ~send:(fun _ -> ())
        ~on_quorum:(fun _ -> ())
        ()
    in
    QS.handle_suspected fresh surviving;
    Matrix.equal (QS.matrix sel) (QS.matrix fresh)
    && QS.last_quorum sel = QS.last_quorum fresh
  in
  (* Reconfiguration throughput on the final state: one join + leave pair
     of the reserved top pid per iteration, each a full-width remap plus
     re-selection. *)
  let bench_pid = universe - 1 in
  let min_elapsed = if quick then 0.02 else 0.2 in
  let reconfig_ops_per_sec =
    2.0
    *. ops_per_sec ~min_elapsed (fun () ->
           reconfigure (Mconfig.Join bench_pid);
           reconfigure (Mconfig.Leave bench_pid))
  in
  {
    n;
    f;
    rounds;
    joins = !joins;
    leaves = !leaves;
    ejects = !ejects;
    availability = float_of_int !ok_rounds /. float_of_int rounds;
    quorum_changes = !quorum_changes;
    reconfig_ops_per_sec;
    remap_consistent;
    departed_clean = !departed_clean;
  }

let measure ?(quick = false) ?(ns = default_sizes) () =
  List.map (measure_point ~quick) ns

let human_ops v =
  if v >= 1e6 then Printf.sprintf "%.1fM" (v /. 1e6)
  else if v >= 1e3 then Printf.sprintf "%.1fk" (v /. 1e3)
  else Printf.sprintf "%.0f" v

let run ?quick ?ns () =
  let points = measure ?quick ?ns () in
  let t =
    Table.create
      ~title:
        "E16 (extension): availability under churn - joins, leaves and an \
         eviction against membership-width selectors"
      ~columns:
        [
          ("n", Table.Right);
          ("f", Table.Right);
          ("rounds", Table.Right);
          ("joins", Table.Right);
          ("leaves", Table.Right);
          ("ejects", Table.Right);
          ("avail", Table.Right);
          ("q changes", Table.Right);
          ("reconfig ops/s", Table.Right);
        ]
  in
  let verdicts = ref [] in
  List.iter
    (fun p ->
      Table.add_row t
        [
          string_of_int p.n;
          string_of_int p.f;
          string_of_int p.rounds;
          string_of_int p.joins;
          string_of_int p.leaves;
          string_of_int p.ejects;
          Printf.sprintf "%.2f" p.availability;
          string_of_int p.quorum_changes;
          human_ops p.reconfig_ops_per_sec;
        ];
      let tag s = Printf.sprintf "n=%d: %s" p.n s in
      verdicts :=
        Verdict.make
          (tag "a full independent quorum after every config change")
          (p.availability = 1.0)
        :: Verdict.make
             (tag "remapped state matches a from-scratch rebuild")
             p.remap_consistent
        :: Verdict.make
             (tag "no departed process in a later quorum")
             p.departed_clean
        :: Verdict.make
             (tag "quorum changed at most once per config change")
             (p.quorum_changes <= p.joins + p.leaves + p.ejects)
        :: !verdicts)
    points;
  (t, List.rev !verdicts)
