(** E16 (extension): availability and quorum stability under membership
    churn.

    For each initial membership size the experiment drives one
    membership-width {!Qs_core.Quorum_select} instance (process 0, slot 0
    in every configuration, with the E15 fixed suspicion core) through a
    deterministic churn script via the {!Qs_membership.Membership}
    engine: spares join on even rounds, the highest member outside the
    suspicion core leaves on odd rounds, and one mid-run eviction removes
    a suspected core member — the evidence-conviction shape. Every change
    is a genuine width-changing reconfiguration (grow remap on joins,
    compacting remap on leaves/ejects, membership-epoch bump).

    Measured per size:
    - availability — the fraction of config changes after which a full
      independent quorum was immediately available (must be 1.0);
    - quorum stability — how many changes moved the selected quorum,
      compared as universe pids across configurations;
    - reconfiguration throughput — one join+leave pair of a reserved
      spare per op, full-width remap plus re-selection;
    - remap-vs-rebuild consistency — the churned selector's matrix and
      quorum must match a from-scratch rebuild of the final config.

    Verdicts pin availability to 1.0, the remap/rebuild equivalence, that
    no departed pid reappears in a later quorum, and that the quorum
    moves at most once per config change. The bench harness serializes
    {!measure} into the [churn] section of [BENCH_qsel.json]; the
    deterministic counters (availability, quorum changes, booleans) are
    gated by [check_bench]. *)

type point = {
  n : int;  (** initial membership size *)
  f : int;
  rounds : int;
  joins : int;
  leaves : int;
  ejects : int;
  availability : float;
      (** fraction of config changes followed immediately by a full
          independent quorum *)
  quorum_changes : int;
      (** config changes whose post-change quorum (as universe pids)
          differs from the previous one *)
  reconfig_ops_per_sec : float;
  remap_consistent : bool;  (** churned state = from-scratch rebuild *)
  departed_clean : bool;  (** no departed pid in any later quorum *)
}

val default_sizes : int list
(** [64; 256] *)

val measure : ?quick:bool -> ?ns:int list -> unit -> point list

val run : ?quick:bool -> ?ns:int list -> unit -> Qs_stdx.Table.t * Verdict.t list
