module Table = Qs_stdx.Table
module Engine = Qs_mc.Engine
module Shard = Qs_mc.Shard
module Json = Qs_obs.Json

type point = {
  jobs : int;
  iters : int;
  visited : int;
  elapsed_s : float;
  states_per_sec : float;
  speedup : float;
  identical_report : bool;
  same_states : bool;
}

type explore_check = {
  seq_visited : int;
  par_visited : int;
  sets_agree : bool;
  sym_visited : int;
  sym_collapses : bool;
}

let default_jobs = [ 1; 2; 4; 8 ]

let spec () = Modelcheck.default_spec Modelcheck.Quorum

let render r = Json.render (Engine.report_to_json r)

let measure ?(quick = false) ?(jobs = default_jobs) () =
  let iters = if quick then 60 else 300 in
  let mk () = Modelcheck.make (spec ()) in
  let runs =
    List.map
      (fun j ->
        let t0 = Unix.gettimeofday () in
        let r = Shard.random ~jobs:j ~seed:71 ~iters mk in
        let elapsed = Unix.gettimeofday () -. t0 in
        (j, r, elapsed))
      jobs
  in
  let base =
    match runs with
    | (_, r, e) :: _ -> (render r.Shard.report, r.Shard.states_digest, e)
    | [] -> invalid_arg "E_explore.measure: empty jobs list"
  in
  let base_render, base_digest, base_elapsed = base in
  let points =
    List.map
      (fun (j, r, elapsed) ->
        {
          jobs = j;
          iters;
          visited = r.Shard.report.Engine.visited;
          elapsed_s = elapsed;
          states_per_sec =
            (if elapsed > 0. then
               float_of_int r.Shard.report.Engine.visited /. elapsed
             else 0.);
          speedup = (if elapsed > 0. then base_elapsed /. elapsed else 1.);
          identical_report = String.equal (render r.Shard.report) base_render;
          same_states = String.equal r.Shard.states_digest base_digest;
        })
      runs
  in
  (* Exhaustive side: the sharded IDDFS visits exactly the sequential
     explorer's state set, and symmetry-canonical fingerprints strictly
     shrink it. Small depth — this is an agreement check, not a race. *)
  let depth = 4 in
  let seq = Engine.explore ~depth (mk ()) in
  let par = Shard.explore ~jobs:2 ~depth mk in
  let sym = Engine.explore ~sym:true ~depth (mk ()) in
  let seq_digest = (Shard.explore ~jobs:1 ~depth mk).Shard.states_digest in
  let check =
    {
      seq_visited = seq.Engine.visited;
      par_visited = par.Shard.report.Engine.visited;
      sets_agree =
        seq.Engine.visited = par.Shard.report.Engine.visited
        && String.equal seq_digest par.Shard.states_digest;
      sym_visited = sym.Engine.visited;
      sym_collapses = sym.Engine.visited < seq.Engine.visited;
    }
  in
  (points, check)

let run ?quick ?jobs () =
  let points, check = measure ?quick ?jobs () in
  let t =
    Table.create
      ~title:
        "E17 (extension): multicore exploration - domain-sharded fuzzing, \
         deterministic merge, symmetry reduction"
      ~columns:
        [
          ("jobs", Table.Right);
          ("walks", Table.Right);
          ("states", Table.Right);
          ("wall s", Table.Right);
          ("states/s", Table.Right);
          ("speedup", Table.Right);
          ("identical", Table.Right);
        ]
  in
  let verdicts = ref [] in
  List.iter
    (fun p ->
      Table.add_row t
        [
          string_of_int p.jobs;
          string_of_int p.iters;
          string_of_int p.visited;
          Printf.sprintf "%.2f" p.elapsed_s;
          Printf.sprintf "%.0f" p.states_per_sec;
          Printf.sprintf "%.2fx" p.speedup;
          (if p.identical_report && p.same_states then "yes" else "NO");
        ];
      let tag s = Printf.sprintf "jobs=%d: %s" p.jobs s in
      verdicts :=
        Verdict.make (tag "report byte-identical to jobs=1") p.identical_report
        :: Verdict.make (tag "same visited-fingerprint set") p.same_states
        :: !verdicts)
    points;
  verdicts :=
    Verdict.make "exhaustive: sharded visited set matches sequential"
      check.sets_agree
    :: Verdict.make
         (Printf.sprintf "exhaustive: symmetry collapses states (%d < %d)"
            check.sym_visited check.seq_visited)
         check.sym_collapses
    :: !verdicts;
  (t, List.rev !verdicts)
