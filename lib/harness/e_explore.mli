(** E17 (extension): multicore exploration scaling.

    Runs the domain-sharded fuzzer ({!Qs_mc.Shard.random}) over the default
    quorum model-checking instance at 1/2/4/8 worker domains and measures
    walk-states per wall second, per shard and overall. The point of the
    experiment is twofold:

    - {e determinism is free}: every point's report must be byte-identical
      to the single-domain run (same counterexamples, same counters, same
      visited-fingerprint set) — that part is a hard verdict;
    - {e throughput scales}: states/s should grow with the worker count up
      to the machine's core budget. Wall-clock speedup is recorded but
      deliberately {e not} a verdict — single-core CI runners execute the
      shards sequentially (and OCaml 4.14 always does), where the honest
      speedup is 1.0x. The bench gate treats the throughput columns as
      report-only and pins only the agreement bits.

    The exhaustive explorer is measured at one point (jobs = 2 vs 1) for
    the visited-set agreement check; its barrier-per-bound structure makes
    its scaling less interesting than the embarrassingly-parallel fuzzer. *)

type point = {
  jobs : int;
  iters : int;  (** fuzzer walks executed *)
  visited : int;  (** distinct walk-state fingerprints *)
  elapsed_s : float;  (** wall clock for the whole run *)
  states_per_sec : float;
  speedup : float;  (** vs the jobs = 1 point *)
  identical_report : bool;  (** report JSON byte-equal to jobs = 1 *)
  same_states : bool;  (** visited-fingerprint digest equal to jobs = 1 *)
}

type explore_check = {
  seq_visited : int;
  par_visited : int;  (** sharded IDDFS at jobs = 2 *)
  sets_agree : bool;  (** same visited-fingerprint set *)
  sym_visited : int;  (** with symmetry-canonical fingerprints *)
  sym_collapses : bool;  (** sym_visited < seq_visited *)
}

val default_jobs : int list
(** [1; 2; 4; 8] *)

val measure :
  ?quick:bool -> ?jobs:int list -> unit -> point list * explore_check
(** Raw measurements — the bench harness serializes these into the
    [explore] section of [BENCH_qsel.json]. *)

val run : ?quick:bool -> ?jobs:int list -> unit -> Qs_stdx.Table.t * Verdict.t list
