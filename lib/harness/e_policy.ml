module Table = Qs_stdx.Table
module QS = Qs_core.Quorum_select
module Policy = Qs_core.Selection_policy
module Topology = Qs_core.Topology
module Intersection = Qs_core.Quorum_intersection
module Graph = Qs_graph.Graph
module Indep = Qs_graph.Indep

(* Five regions over nine processes (blocks of 2,2,2,2,1) with f = 4, so
   q = n - f = 5: a diversity cap of 1 forces exactly one quorum seat per
   region, while lex-first concentrates the quorum on the low-pid prefix
   and stacks two seats into each of the first two regions. One whole
   region is small enough (<= 2 <= f) that its loss stays in-model. *)
let n = 9

let f = 4

let cap = 1

let topology () = Topology.blocks ~n [ "r0"; "r1"; "r2"; "r3"; "r4" ]

(* A standing quorum masks the loss of a single member: the next suspicion
   event repairs it with one Theorem-3 quorum change. Losing two or more
   members to the same correlated failure is an outage — no single-change
   repair covers it. *)
let outage_exposure = 2

type point = {
  policy : string;
  standing : int list;  (** the pre-loss standing quorum *)
  max_exposure : int;
      (** worst [|standing ∩ region|] over all single-region losses *)
  outages : int;  (** regions whose loss takes [>= outage_exposure] seats *)
  availability : float;  (** fraction of region losses below the outage bar *)
  quorum_changes : int;  (** losses whose repaired quorum differs *)
  repairs_clean : bool;
      (** every repaired quorum has size [q], is independent, and excludes
          the lost region *)
  agreement : bool;  (** lockstep replicas agreed at every step *)
  t3_ok : bool;
  intersections : Intersection.verdict list;
      (** cross-policy groups this policy's quorums took part in (filled
          by [measure]) *)
}

(* One region-loss scenario: two survivor replicas run the policy in
   lockstep on identical evidence — determinism is what carries Agreement,
   so their quorums must match at every step. The loss is repaired through
   the conviction path (correlated blame covers the label's whole member
   set), which permanently excludes the lost members: exclusion stars are
   part of the aging endpoint, so a Diversity_capped policy whose caps the
   shrunken universe can no longer satisfy falls back to lex-first instead
   of chasing the epoch-aging loop. *)
let scenario ~auth pol members =
  let cfg = { QS.n; f } in
  let mk me =
    let s = QS.create cfg ~me ~auth ~send:(fun _ -> ()) ~on_quorum:(fun _ -> ()) () in
    QS.set_policy s pol;
    s
  in
  let survivors = List.filter (fun p -> not (List.mem p members)) (List.init n Fun.id) in
  let a = mk (List.nth survivors 0) in
  let b = mk (List.nth survivors 1) in
  let q0 = QS.last_quorum a in
  let agree0 = QS.last_quorum b = q0 in
  let exposure = List.length (List.filter (fun p -> List.mem p members) q0) in
  List.iter
    (fun p ->
      QS.exclude a p;
      QS.exclude b p)
    members;
  let q1 = QS.last_quorum a in
  let agree1 = QS.last_quorum b = q1 in
  let valid =
    List.length q1 = QS.q cfg
    && Indep.is_independent (QS.suspect_graph a) q1
    && not (List.exists (fun p -> List.mem p members) q1)
  in
  (q0, q1, exposure, agree0 && agree1, valid, QS.max_issued_per_epoch a)

let measure_policy (name, pol) =
  let auth = Qs_crypto.Auth.create n in
  let topo = topology () in
  let regions = List.map (Topology.members topo) (Topology.labels topo) in
  let runs = List.map (scenario ~auth pol) regions in
  let standing =
    match runs with (q0, _, _, _, _, _) :: _ -> q0 | [] -> []
  in
  let bound = f * (f + 1) in
  {
    policy = name;
    standing;
    max_exposure = List.fold_left (fun m (_, _, e, _, _, _) -> max m e) 0 runs;
    outages =
      List.length (List.filter (fun (_, _, e, _, _, _) -> e >= outage_exposure) runs);
    availability =
      float_of_int
        (List.length (List.filter (fun (_, _, e, _, _, _) -> e < outage_exposure) runs))
      /. float_of_int (List.length runs);
    quorum_changes = List.length (List.filter (fun (q0, q1, _, _, _, _) -> q1 <> q0) runs);
    repairs_clean = List.for_all (fun (_, _, _, _, v, _) -> v) runs;
    agreement = List.for_all (fun (_, _, _, a, _, _) -> a) runs;
    t3_ok = List.for_all (fun (_, _, _, _, _, issued) -> issued <= bound) runs;
    intersections = [];
  }

let policies () =
  [
    ("lex", Policy.Lex_first);
    ("lottery", Policy.Seeded_lottery { seed = 0x9E18L });
    ("diverse", Policy.Diversity_capped { topology = topology (); cap });
  ]

(* Intersection by counting is policy-agnostic: any two size-q quorums of
   the same universe overlap in >= n - 2f, however they were selected. The
   cross-policy groups are the interesting ones — heterogeneous standing
   and repaired quorums — and give the checker non-vacuous pairs. *)
let cross_verdicts () =
  let auth = Qs_crypto.Auth.create n in
  let topo = topology () in
  let regions = List.map (Topology.members topo) (Topology.labels topo) in
  let per_policy =
    List.map (fun (_, pol) -> List.map (scenario ~auth pol) regions) (policies ())
  in
  let standing = List.map (function (q0, _, _, _, _, _) :: _ -> q0 | [] -> []) per_policy in
  let repaired i = List.map (fun runs -> let _, q1, _, _, _, _ = List.nth runs i in q1) per_policy in
  Intersection.check ~n ~f standing
  :: List.mapi (fun i _ -> Intersection.check ~n ~f (repaired i)) regions

(* The large-n mode: n = 1024 selectors are bitset-backed, so generate the
   group straight from the policy layer — lex-first plus a fan of lottery
   draws over an edgeless graph — and sample pairs instead of checking all
   of them. *)
let sampled_verdict () =
  let big_n = 1024 and big_f = 341 in
  let q = big_n - big_f in
  let g = Graph.create big_n in
  let quorums =
    List.filter_map
      (fun pol -> Policy.select pol ~graph:g ~q ~weight:(fun _ -> 0) ~cepoch:0 ~epoch:0)
      (Policy.Lex_first
      :: List.init 5 (fun i -> Policy.Seeded_lottery { seed = Int64.of_int (i + 1) }))
  in
  Intersection.check_sampled ~n:big_n ~f:big_f ~seed:18 ~max_pairs:10 quorums

let measure () = List.map measure_policy (policies ())

let run () =
  let points = measure () in
  let cross = cross_verdicts () in
  let sampled = sampled_verdict () in
  let t =
    Table.create
      ~title:
        "E18 (extension): selection policies under whole-region loss - \
         exposure, availability and repair, n=9 f=4, five regions, cap 1"
      ~columns:
        [
          ("policy", Table.Left);
          ("standing quorum", Table.Left);
          ("max exposure", Table.Right);
          ("outages", Table.Right);
          ("avail", Table.Right);
          ("q changes", Table.Right);
          ("t3", Table.Right);
        ]
  in
  List.iter
    (fun p ->
      Table.add_row t
        [
          p.policy;
          "{" ^ String.concat "," (List.map string_of_int p.standing) ^ "}";
          string_of_int p.max_exposure;
          string_of_int p.outages;
          Printf.sprintf "%.2f" p.availability;
          string_of_int p.quorum_changes;
          (if p.t3_ok then "ok" else "FAIL");
        ])
    points;
  let find name = List.find (fun p -> p.policy = name) points in
  let lex = find "lex" and diverse = find "diverse" in
  let lottery_deterministic =
    measure_policy (List.nth (policies ()) 1) = find "lottery"
  in
  let verdicts =
    [
      Verdict.make
        "lex-first: some whole-region loss takes >= 2 standing-quorum seats (quorum lost)"
        (lex.max_exposure >= outage_exposure && lex.outages > 0);
      Verdict.make
        "diverse cap=1: every region loss costs at most one seat (availability kept)"
        (diverse.max_exposure <= cap && diverse.availability = 1.0);
      Verdict.make "diverse availability strictly above lex-first"
        (diverse.availability > lex.availability);
      Verdict.make "every policy: lockstep replicas agree on every quorum"
        (List.for_all (fun p -> p.agreement) points);
      Verdict.make "every policy: repaired quorums valid and region-free"
        (List.for_all (fun p -> p.repairs_clean) points);
      Verdict.make "every policy: Theorem-3 f(f+1) bound respected"
        (List.for_all (fun p -> p.t3_ok) points);
      Verdict.make "cross-policy quorum intersection >= n - 2f on every group"
        (List.for_all (fun (v : Intersection.verdict) -> v.ok) cross);
      Verdict.make "cross-policy intersection groups are non-vacuous"
        (List.exists (fun (v : Intersection.verdict) -> v.pairs > 0) cross);
      Verdict.make "n=1024 sampled intersection ok (lex + lottery fan)"
        (sampled.Intersection.ok && sampled.Intersection.pairs > 0);
      Verdict.make "lottery: deterministic replay (same campaign, same metrics)"
        lottery_deterministic;
    ]
  in
  (t, verdicts)
