(** E18 (extension): selection policies under correlated whole-region
    loss.

    Nine processes with f = 4 (q = 5) are spread over five regions in
    contiguous blocks (2,2,2,2,1). For each policy — lex-first, the
    seeded lottery, and diversity-capped with cap 1 — and each region,
    two survivor replicas run the policy in lockstep on identical
    evidence (determinism carries Agreement), record the standing
    quorum's {e exposure} [|Q ∩ region|] to the loss, and repair it
    through the conviction path: correlated blame covers the label's
    whole member set, so every lost member is permanently excluded and a
    fresh quorum is issued (a {!Qs_core.Selection_policy.Diversity_capped}
    policy whose caps the shrunken universe can no longer satisfy falls
    back to lex-first instead of chasing the epoch-aging loop).

    The availability story: a standing quorum masks one lost member — the
    next suspicion event repairs it with a single Theorem-3 quorum
    change — so a region loss is an {e outage} exactly when it takes two
    or more seats at once. Lex-first stacks two seats into each low-pid
    region and suffers outages there; the cap-1 policy never concedes
    more than one seat to any region, so its availability stays 1.0.

    Also checked: quorum intersection by counting over every cross-policy
    group of standing and repaired quorums (heterogeneous quorums of the
    same universe must overlap in >= n − 2f; the groups are non-vacuous),
    a sampled n = 1024 {!Qs_core.Quorum_intersection.check_sampled} point
    over a lex + lottery fan, Theorem-3 bounds per policy, repaired-quorum
    validity, and byte-deterministic lottery replay. The bench harness
    serializes {!measure} into the [policy] section of [BENCH_qsel.json];
    the machine-independent fields are gated by [check_bench]. *)

type point = {
  policy : string;
  standing : int list;  (** the pre-loss standing quorum *)
  max_exposure : int;
      (** worst [|standing ∩ region|] over all single-region losses *)
  outages : int;  (** regions whose loss takes [>= outage_exposure] seats *)
  availability : float;  (** fraction of region losses below the outage bar *)
  quorum_changes : int;  (** losses whose repaired quorum differs *)
  repairs_clean : bool;
      (** every repaired quorum has size [q], is independent, and excludes
          the lost region *)
  agreement : bool;  (** lockstep replicas agreed at every step *)
  t3_ok : bool;
  intersections : Qs_core.Quorum_intersection.verdict list;
      (** reserved for callers that thread per-policy groups; {!measure}
          leaves it empty and {!run} checks the cross-policy groups *)
}

val outage_exposure : int
(** [2] — the smallest simultaneous seat loss no single quorum change
    repairs. *)

val measure : unit -> point list
(** One point per policy, in [lex; lottery; diverse] order.
    Deterministic. *)

val cross_verdicts : unit -> Qs_core.Quorum_intersection.verdict list
(** The cross-policy intersection groups — one over the three standing
    quorums, one per region over the three repaired quorums. Every group
    must be [ok]; at least one must have [pairs > 0]. *)

val sampled_verdict : unit -> Qs_core.Quorum_intersection.verdict
(** The n = 1024 sampled point: lex-first plus a fan of five lottery
    draws over an edgeless graph, [max_pairs = 10]. *)

val run : unit -> Qs_stdx.Table.t * Verdict.t list
