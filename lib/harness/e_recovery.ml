module Table = Qs_stdx.Table
module Stime = Qs_sim.Stime
module Timeout = Qs_fd.Timeout

let ms = Stime.of_ms

type row = {
  protocol : string;
  happy_latency : Stime.t;
  recovery_latency : Stime.t option;
}

(* Every scenario follows the same script: warm up with one request, mute an
   active non-leader member at 200ms, submit the probe at 300ms, report the
   probe's commit latency. Timeouts are 25ms with exponential backoff, links
   are 1ms. *)
let timeout = ms 25

let probe_at = ms 300

let strategy = Timeout.Exponential { factor = 2.0; max = ms 2000 }

(* Each runner returns (happy latency, recovery latency option). *)

let xpaxos_qs () =
  let config =
    {
      Qs_xpaxos.Replica.n = 5;
      f = 2;
      mode = Qs_xpaxos.Replica.Quorum_selection;
      initial_timeout = timeout;
      timeout_strategy = strategy;
    }
  in
  let c = Qs_xpaxos.Xcluster.create config in
  let warm = Qs_xpaxos.Xcluster.submit c "warm" in
  Qs_xpaxos.Xcluster.run ~until:(ms 200) c;
  let happy = Option.get (Qs_xpaxos.Xcluster.commit_latency c warm) in
  Qs_xpaxos.Xcluster.set_fault c 1 Qs_xpaxos.Replica.Mute;
  Qs_sim.Sim.schedule_at (Qs_xpaxos.Xcluster.sim c) ~at:probe_at (fun () -> ());
  Qs_xpaxos.Xcluster.run ~until:probe_at c;
  let probe = Qs_xpaxos.Xcluster.submit c ~resubmit_every:(ms 100) "probe" in
  Qs_xpaxos.Xcluster.run ~until:(ms 20_000) c;
  (happy, Qs_xpaxos.Xcluster.commit_latency c probe)

let pbft_selected () =
  let config =
    {
      Qs_pbft.Preplica.n = 7;
      f = 2;
      participation = Qs_pbft.Preplica.Selected;
      initial_timeout = timeout;
      timeout_strategy = strategy;
    }
  in
  let c = Qs_pbft.Pcluster.create config in
  let warm = Qs_pbft.Pcluster.submit c "warm" in
  Qs_pbft.Pcluster.run ~until:(ms 200) c;
  let happy = Option.get (Qs_pbft.Pcluster.commit_latency c warm) in
  Qs_pbft.Pcluster.set_fault c 1 Qs_pbft.Preplica.Mute;
  Qs_pbft.Pcluster.run ~until:probe_at c;
  let probe = Qs_pbft.Pcluster.submit c ~resubmit_every:(ms 100) "probe" in
  Qs_pbft.Pcluster.run ~until:(ms 20_000) c;
  (happy, Qs_pbft.Pcluster.commit_latency c probe)

let minbft_selected () =
  let config =
    {
      Qs_minbft.Mreplica.n = 5;
      f = 2;
      participation = Qs_minbft.Mreplica.Selected;
      initial_timeout = timeout;
      timeout_strategy = strategy;
    }
  in
  let c = Qs_minbft.Mcluster.create config in
  let warm = Qs_minbft.Mcluster.submit c "warm" in
  Qs_minbft.Mcluster.run ~until:(ms 200) c;
  let happy = Option.get (Qs_minbft.Mcluster.commit_latency c warm) in
  Qs_minbft.Mcluster.set_fault c 1 Qs_minbft.Mreplica.Mute;
  Qs_minbft.Mcluster.run ~until:probe_at c;
  let probe = Qs_minbft.Mcluster.submit c ~resubmit_every:(ms 100) "probe" in
  Qs_minbft.Mcluster.run ~until:(ms 20_000) c;
  (happy, Qs_minbft.Mcluster.commit_latency c probe)

let chain () =
  let config =
    {
      Qs_bchain.Chain_node.n = 7;
      f = 2;
      initial_timeout = timeout;
      timeout_strategy = strategy;
    }
  in
  let c = Qs_bchain.Chain_cluster.create config in
  let warm = Qs_bchain.Chain_cluster.submit c "warm" in
  Qs_bchain.Chain_cluster.run ~until:(ms 200) c;
  let happy = Option.get (Qs_bchain.Chain_cluster.commit_latency c warm) in
  Qs_bchain.Chain_cluster.set_fault c 2 Qs_bchain.Chain_node.Mute;
  Qs_bchain.Chain_cluster.run ~until:probe_at c;
  let probe = Qs_bchain.Chain_cluster.submit c ~resubmit_every:(ms 100) "probe" in
  Qs_bchain.Chain_cluster.run ~until:(ms 20_000) c;
  (happy, Qs_bchain.Chain_cluster.commit_latency c probe)

let star () =
  let config =
    {
      Qs_star.Star_node.n = 7;
      f = 2;
      initial_timeout = timeout;
      timeout_strategy = strategy;
    }
  in
  let c = Qs_star.Star_cluster.create config in
  let warm = Qs_star.Star_cluster.submit c "warm" in
  Qs_star.Star_cluster.run ~until:(ms 200) c;
  let happy = Option.get (Qs_star.Star_cluster.commit_latency c warm) in
  Qs_star.Star_cluster.set_fault c 2 Qs_star.Star_node.Mute;
  Qs_star.Star_cluster.run ~until:probe_at c;
  let probe = Qs_star.Star_cluster.submit c ~resubmit_every:(ms 100) "probe" in
  Qs_star.Star_cluster.run ~until:(ms 20_000) c;
  (happy, Qs_star.Star_cluster.commit_latency c probe)

(* Strategy ablation: the same mute-and-probe script on the XPaxos + QS
   stack, but with configurable link delay and timeout strategy. When links
   are slower than a timeout that never adapts, every expectation deadline
   fires a false suspicion, membership churns indefinitely and the probe
   cannot commit; any adapting strategy grows past the real delay after
   finitely many false suspicions and then recovers normally. *)
let xpaxos_recovery ?(delay = Qs_sim.Network.Fixed (ms 1)) ?(initial = timeout)
    ?(horizon = ms 20_000) strategy =
  let config =
    {
      Qs_xpaxos.Replica.n = 5;
      f = 2;
      mode = Qs_xpaxos.Replica.Quorum_selection;
      initial_timeout = initial;
      timeout_strategy = strategy;
    }
  in
  let c = Qs_xpaxos.Xcluster.create ~delay config in
  ignore (Qs_xpaxos.Xcluster.submit c "warm");
  Qs_xpaxos.Xcluster.run ~until:(ms 400) c;
  Qs_xpaxos.Xcluster.set_fault c 1 Qs_xpaxos.Replica.Mute;
  Qs_xpaxos.Xcluster.run ~until:(ms 500) c;
  let probe = Qs_xpaxos.Xcluster.submit c ~resubmit_every:(ms 100) "probe" in
  Qs_xpaxos.Xcluster.run ~until:horizon c;
  Qs_xpaxos.Xcluster.commit_latency c probe

let run () =
  let rows =
    [
      ("XPaxos + quorum selection", xpaxos_qs ());
      ("PBFT selected", pbft_selected ());
      ("MinBFT selected (trusted comp.)", minbft_selected ());
      ("Chain (BChain-style)", chain ());
      ("Star + follower selection", star ());
    ]
  in
  let t =
    Table.create
      ~title:"E12 (extension): the price of reacting - recovery latency per integration"
      ~columns:
        [
          ("protocol", Table.Left);
          ("happy-path commit", Table.Right);
          ("commit after member crash", Table.Right);
          ("reaction premium", Table.Right);
        ]
  in
  let verdicts = ref [] in
  List.iter
    (fun (name, (happy, recovery)) ->
      (match recovery with
       | Some r ->
         Table.add_row t
           [
             name;
             Format.asprintf "%a" Stime.pp happy;
             Format.asprintf "%a" Stime.pp r;
             Format.asprintf "%a" Stime.pp (Stime.( - ) r happy);
           ]
       | None ->
         Table.add_row t [ name; Format.asprintf "%a" Stime.pp happy; "NO RECOVERY"; "-" ]);
      verdicts :=
        Verdict.make (name ^ ": recovered") (recovery <> None)
        :: Verdict.make
             (name ^ ": recovery within ~20 timeouts")
             (match recovery with Some r -> r <= 20 * timeout | None -> false)
        :: !verdicts)
    rows;
  (t, List.rev !verdicts)
