(** Experiment E12 (extension): reacting, measured — recovery latency across
    every protocol integration.

    The paper's pitch is that selecting a quorum of well-functioning
    processes lets a system {e react} to failures instead of paying to mask
    them. This experiment quantifies the price of reacting: an active quorum
    member goes mute mid-run, a fresh request is submitted, and we measure
    the time until it commits — detection (one expectation timeout) plus
    selection (gossip) plus the protocol's own reconfiguration.

    One row per integration: XPaxos (quorum selection), PBFT selected
    (quorum selection), MinBFT selected (quorum selection, trusted
    component), chain (quorum selection, BChain-style) and star (follower
    selection). Happy-path latency is reported next to it, so the
    reaction premium is visible. *)

type row = {
  protocol : string;
  happy_latency : Qs_sim.Stime.t;
  recovery_latency : Qs_sim.Stime.t option;  (** None = did not recover *)
}

val run : unit -> Qs_stdx.Table.t * Verdict.t list

val xpaxos_recovery :
  ?delay:Qs_sim.Network.delay_model ->
  ?initial:Qs_sim.Stime.t ->
  ?horizon:Qs_sim.Stime.t ->
  Qs_fd.Timeout.strategy ->
  Qs_sim.Stime.t option
(** The E12 mute-and-probe script on the XPaxos + quorum-selection stack
    with a configurable link [delay] (default 1 ms), [initial] timeout
    (default 25 ms) and timeout strategy; returns the probe's commit
    latency, [None] if it never committed within [horizon] (default 20 s).

    This is the strategy-ablation hook: with links slower than the initial
    timeout, [Fixed] false-suspects forever and never recovers, while
    [Exponential] and [Additive] adapt past the real delay and do. *)
