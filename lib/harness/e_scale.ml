module Table = Qs_stdx.Table
module Matrix = Qs_core.Suspicion_matrix
module View = Qs_core.Suspect_view
module Delta = Qs_core.Delta
module Codec = Qs_recovery.Codec
module Graph = Qs_graph.Graph
module Indep = Qs_graph.Indep

type point = {
  n : int;
  f : int;
  merge_ops_per_sec : float;
  select_ops_per_sec : float;
  full_push_bytes : int;
  delta_sync_bytes : int;
  delta_idle_bytes : int;
  idle_alloc_per_packet : float;
  lex_agrees : bool;
  mis_agrees : bool;
  peer_converged : bool;
}

let default_sizes = [ 64; 256; 1024 ]

(* The faulty core stays a fixed small set while n grows: that is the
   paper's operating regime (a handful of suspected processes among many
   correct ones) and the one the incremental view is built for — almost
   every vertex isolated, exact MIS only on the core. *)
let core_f = 4

(* Every correct core member suspects every faulty one: a K_{f,f} suspicion
   pattern among processes 0..2f-1, everything above isolated. *)
let load_matrix m ~f ~epoch =
  for l = f to (2 * f) - 1 do
    for k = 0 to f - 1 do
      Matrix.record m ~suspector:l ~suspect:k ~epoch
    done
  done

(* [Sys.time] has coarse resolution; double the iteration count until the
   timed stretch is long enough to trust the quotient. *)
let ops_per_sec ~min_elapsed f =
  let rec go iters =
    let t0 = Sys.time () in
    for _ = 1 to iters do
      f ()
    done;
    let dt = Sys.time () -. t0 in
    if dt >= min_elapsed then float_of_int iters /. dt else go (iters * 2)
  in
  go 256

let measure_point ~quick n =
  let f = core_f in
  let target = n - f in
  let epoch = 1 in
  let m = Matrix.create n in
  let view = View.create m ~epoch in
  load_matrix m ~f ~epoch;
  let min_elapsed = if quick then 0.02 else 0.2 in
  (* Steady-state UPDATE absorption: re-merge an already-absorbed row and
     re-select only when the merge changed the current-epoch graph — the
     selectors' generation-skip hot path. After the first round every merge
     is a no-op and the skip must make re-selection free. *)
  let row = Matrix.row m f in
  let turn = ref 0 in
  let merge_ops_per_sec =
    ops_per_sec ~min_elapsed (fun () ->
        let owner = f + (!turn mod f) in
        incr turn;
        let in_sync = View.in_sync view ~epoch in
        let gen = View.generation view in
        let changed = Matrix.merge_row m ~owner row in
        if changed || not (in_sync && View.generation view = gen) then begin
          View.sync view ~epoch;
          ignore (View.lex_first view target)
        end)
  in
  (* Full re-selection throughput on the synced view. *)
  View.sync view ~epoch;
  let select_ops_per_sec =
    ops_per_sec ~min_elapsed (fun () -> ignore (View.lex_first view target))
  in
  (* Incremental-vs-scratch agreement, once per size: the view must give
     bit-identical answers to the O(n²) pipeline it replaces. *)
  let g = Matrix.suspect_graph m ~epoch in
  let lex_agrees =
    View.lex_first view target = Indep.lex_first_independent_set g target
  in
  let mis_agrees = View.mis_total view = Indep.max_independent_set_size g in
  (* Gossip bytes: converge a fresh peer via delta packets, then show the
     steady-state tick ships nothing, against the full-state push as the
     yardstick. *)
  let full_push_bytes = String.length (Codec.encode_matrix m) in
  let peer = 1 in
  let b = Matrix.create n in
  let sender = Delta.create ~me:0 m in
  let receiver = Delta.create ~me:peer b in
  let delta_sync_bytes = ref 0 in
  let rounds = ref 0 in
  let continue = ref true in
  while !continue && !rounds < 4 do
    incr rounds;
    match Delta.make_packet sender ~peer with
    | None -> continue := false
    | Some p ->
      let enc = Codec.encode_delta p in
      delta_sync_bytes := !delta_sync_bytes + String.length enc;
      let _changed, ack = Delta.apply receiver (Codec.decode_delta enc) in
      Delta.apply_ack sender ~peer ack
  done;
  let peer_converged = Matrix.equal m b in
  let delta_idle_bytes =
    match Delta.make_packet sender ~peer with
    | None -> 0
    | Some p -> String.length (Codec.encode_delta p)
  in
  (* Satellite claim: an unchanged row costs one integer comparison — no
     copy, no allocation. Whatever [make_packet] allocates per idle call is
     a small constant (a list ref), emphatically not O(n) row copies. *)
  let idle_calls = 1_000 in
  let before = Gc.allocated_bytes () in
  for _ = 1 to idle_calls do
    ignore (Delta.make_packet sender ~peer)
  done;
  let after = Gc.allocated_bytes () in
  let idle_alloc_per_packet = (after -. before) /. float_of_int idle_calls in
  {
    n;
    f;
    merge_ops_per_sec;
    select_ops_per_sec;
    full_push_bytes;
    delta_sync_bytes = !delta_sync_bytes;
    delta_idle_bytes;
    idle_alloc_per_packet;
    lex_agrees;
    mis_agrees;
    peer_converged;
  }

let measure ?(quick = false) ?(ns = default_sizes) () =
  List.map (measure_point ~quick) ns

let human_ops v =
  if v >= 1e6 then Printf.sprintf "%.1fM" (v /. 1e6)
  else if v >= 1e3 then Printf.sprintf "%.1fk" (v /. 1e3)
  else Printf.sprintf "%.0f" v

let run ?quick ?ns () =
  let points = measure ?quick ?ns () in
  let t =
    Table.create
      ~title:
        "E15 (extension): selection-core scaling - bitset rows, incremental \
         selection, delta-state gossip"
      ~columns:
        [
          ("n", Table.Right);
          ("f", Table.Right);
          ("merge ops/s", Table.Right);
          ("select ops/s", Table.Right);
          ("full push B", Table.Right);
          ("delta sync B", Table.Right);
          ("idle delta B", Table.Right);
          ("idle alloc B/pkt", Table.Right);
        ]
  in
  let verdicts = ref [] in
  List.iter
    (fun p ->
      Table.add_row t
        [
          string_of_int p.n;
          string_of_int p.f;
          human_ops p.merge_ops_per_sec;
          human_ops p.select_ops_per_sec;
          string_of_int p.full_push_bytes;
          string_of_int p.delta_sync_bytes;
          string_of_int p.delta_idle_bytes;
          Printf.sprintf "%.0f" p.idle_alloc_per_packet;
        ];
      let tag s = Printf.sprintf "n=%d: %s" p.n s in
      verdicts :=
        Verdict.make (tag "incremental lex-first matches from-scratch") p.lex_agrees
        :: Verdict.make (tag "incremental MIS matches from-scratch") p.mis_agrees
        :: Verdict.make (tag "delta gossip converged the fresh peer") p.peer_converged
        :: Verdict.make
             (tag "delta sync cheaper than one full push")
             (p.delta_sync_bytes < p.full_push_bytes)
        :: Verdict.make
             (tag "steady-state delta tick ships zero bytes")
             (p.delta_idle_bytes = 0)
        :: Verdict.make
             (tag "unchanged rows allocate nothing (<=128B/packet)")
             (p.idle_alloc_per_packet <= 128.0)
        :: !verdicts)
    points;
  (t, List.rev !verdicts)
