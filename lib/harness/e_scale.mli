(** E15 (extension): scaling the selection core to n = 1024.

    For each cluster size the experiment loads a fixed small suspicion core
    (every correct core member suspects every faulty one; everything else
    isolated — the regime the incremental {!Qs_core.Suspect_view} is built
    for) and measures:

    - steady-state UPDATE absorption throughput (merge + generation-skip
      re-selection, the selectors' hot path);
    - full re-selection throughput through the incremental view;
    - gossip bytes: delta-state sync of a fresh peer vs one full-state
      push, and the steady-state delta tick (which must ship zero bytes);
    - allocation per idle delta packet ([Gc.allocated_bytes]) — the claim
      that unchanged rows cost one integer comparison, not a row copy.

    Verdicts pin the incremental view to the from-scratch pipeline
    (lex-first set and MIS size bit-identical), require delta sync to beat
    a full push, the idle tick to be free, and the idle allocation to stay
    a small constant independent of n. *)

type point = {
  n : int;
  f : int;
  merge_ops_per_sec : float;
  select_ops_per_sec : float;
  full_push_bytes : int;  (** one encoded full-state matrix *)
  delta_sync_bytes : int;  (** delta bytes to converge a fresh peer *)
  delta_idle_bytes : int;  (** next tick after convergence; expect 0 *)
  idle_alloc_per_packet : float;  (** bytes allocated per no-change packet *)
  lex_agrees : bool;
  mis_agrees : bool;
  peer_converged : bool;
}

val default_sizes : int list
(** [64; 256; 1024] *)

val measure : ?quick:bool -> ?ns:int list -> unit -> point list
(** Raw measurements — the bench harness serializes these into the
    [scaling] section of [BENCH_qsel.json]. *)

val run : ?quick:bool -> ?ns:int list -> unit -> Qs_stdx.Table.t * Verdict.t list
