module Table = Qs_stdx.Table
module Stime = Qs_sim.Stime
module Timeout = Qs_fd.Timeout

let ms = Stime.of_ms

let config ~n ~f =
  {
    Heartbeat.n;
    f;
    heartbeat_period = ms 50;
    initial_timeout = ms 120;
    timeout_strategy = Timeout.Exponential { factor = 2.0; max = ms 2000 };
  }

let crash_case ~n ~f =
  let t = Heartbeat.create (config ~n ~f) in
  let crash_at = ms 500 in
  let crashed = List.init f (fun i -> i) in
  List.iter (fun p -> Heartbeat.crash t p crash_at) crashed;
  Heartbeat.run ~until:(ms 4000) t;
  let correct = List.filter (fun p -> not (List.mem p crashed)) (List.init n Fun.id) in
  let conv = Heartbeat.convergence_time t ~correct ~expect_excluded:crashed in
  let changes = Heartbeat.quorum_changes t ~correct in
  (conv, changes, crash_at)

let run () =
  let t =
    Table.create ~title:"E10 (extension): heartbeat stack, crash convergence and equivocation"
      ~columns:
        [
          ("case", Table.Left);
          ("n", Table.Right);
          ("f", Table.Right);
          ("quorum changes", Table.Right);
          ("bound f(f+1)", Table.Right);
          ("converged after crash", Table.Right);
        ]
  in
  let verdicts = ref [] in
  List.iter
    (fun f ->
      let n = (3 * f) + 1 in
      let conv, changes, crash_at = crash_case ~n ~f in
      let latency =
        match conv with
        | Some at when at >= crash_at -> Format.asprintf "%a" Stime.pp (at - crash_at)
        | Some _ -> "0ms"
        | None -> "NO"
      in
      Table.add_row t
        [
          "crash";
          string_of_int n;
          string_of_int f;
          string_of_int changes;
          string_of_int (f * (f + 1));
          latency;
        ];
      verdicts :=
        Verdict.make (Printf.sprintf "crash f=%d: correct processes converge, crashed excluded" f)
          (conv <> None)
        :: Verdict.make
             (Printf.sprintf "crash f=%d: quorum changes within f(f+1)" f)
             (changes <= f * (f + 1))
        :: !verdicts)
    [ 1; 2; 3 ];
  (* E10b: equivocating suspicion rows from INSIDE the quorum (only quorum
     members can force changes, Section IV-A). p0 equivocates through the
     fault DSL's [Equivocate] phase: each in-scope peer receives a row
     inflated with a fake suspicion of itself; the max-merge gossip unifies
     the variants and everyone converges on the union. *)
  let n = 7 and f = 2 in
  let t_eq = Heartbeat.create (config ~n ~f) in
  Heartbeat.inject t_eq
    [
      Qs_faults.Fault.at ~start:(ms 1)
        (Qs_faults.Fault.Equivocate
           { src = 0; scope = List.init (n - 1) (fun i -> i + 1) });
    ];
  (* A real omission gives p1's detector a reason to publish its rows. *)
  Heartbeat.omit_link t_eq ~src:1 ~dst:0 ~from:(ms 300);
  Heartbeat.run ~until:(ms 4000) t_eq;
  let correct = [ 1; 2; 3; 4; 5; 6 ] in
  let agreed = Heartbeat.agreed_quorum t_eq ~correct in
  let changes = Heartbeat.quorum_changes t_eq ~correct in
  let matrices = Heartbeat.matrices_agree t_eq ~correct in
  Table.add_row t
    [
      "equivocation";
      string_of_int n;
      string_of_int f;
      string_of_int changes;
      string_of_int (f * (f + 1));
      (match agreed with Some _ -> "agree" | None -> "NO");
    ];
  verdicts :=
    Verdict.make "equivocation: correct processes still agree on one quorum" (agreed <> None)
    :: Verdict.make "equivocation: matrices converge to the union of the claims" matrices
    :: Verdict.make "equivocation: the equivocator forced at least one change" (changes >= 1)
    :: Verdict.make "equivocation: changes still within f(f+1)" (changes <= f * (f + 1))
    :: !verdicts;
  (t, List.rev !verdicts)
