type outcome = { id : string; rendered : string; verdicts : Verdict.t list }

let of_table id (table, verdicts) =
  { id; rendered = Qs_stdx.Table.render table; verdicts }

let e1 () = of_table "E1" (E_fig4.run ())

let e2 ?fs () = of_table "E2" (E_bounds.e2_upper_bound ?fs ())

let e3 ?fs () = of_table "E3" (E_bounds.e3_lower_bound ?fs ())

let e4 ?fs () =
  let t1, v1 = E_follower.run ?fs () in
  let t2, v2 = E_follower.examples () in
  {
    id = "E4";
    rendered = Qs_stdx.Table.render t1 ^ "\n\n" ^ Qs_stdx.Table.render t2;
    verdicts = v1 @ v2;
  }

let e5 ?fs () = of_table "E5" (E_xpaxos.e5_viewchanges ?fs ())

let e6 () = of_table "E6" (E_xpaxos.e6_messages ())

let e7 () = of_table "E7" (E_detector.run ())

let e8 () =
  let rendered, verdicts = E_xpaxos.e8_flows () in
  { id = "E8"; rendered; verdicts }

let e9 () = of_table "E9" (E_chain.run ())

let e10 () = of_table "E10" (E_stack.run ())

let e11 () = of_table "E11" (E_star.run ())

let e12 () = of_table "E12" (E_recovery.run ())

let e14 () = of_table "E14" (E_amnesia.run ())

(* E15 and E16 are not part of [all]: they are perf/robustness-scaling
   runs with wall-clock-dependent output, consumed by the bench harness
   and the CI smoke, not by the reproduction sweep. *)
let e15 ?quick ?ns () = of_table "E15" (E_scale.run ?quick ?ns ())

let e16 ?quick ?ns () = of_table "E16" (E_churn.run ?quick ?ns ())

let e17 ?quick ?jobs () = of_table "E17" (E_explore.run ?quick ?jobs ())

let e18 () = of_table "E18" (E_policy.run ())

let all ?(quick = false) () =
  let fs_bounds = if quick then [ 1; 2 ] else [ 1; 2; 3; 4 ] in
  let fs_fol = if quick then [ 1; 2 ] else [ 1; 2; 3 ] in
  let fs_vc = if quick then [ 1; 2 ] else [ 1; 2; 3 ] in
  [
    e1 ();
    e2 ~fs:fs_bounds ();
    e3 ~fs:fs_bounds ();
    e4 ~fs:fs_fol ();
    e5 ~fs:fs_vc ();
    e6 ();
    e7 ();
    e8 ();
    e9 ();
    e10 ();
    e11 ();
    e12 ();
    e14 ();
    e18 ();
  ]

let print o =
  print_endline o.rendered;
  print_newline ();
  Verdict.print_all o.verdicts

let run_and_print_all ?quick () =
  let outcomes = all ?quick () in
  List.iter print outcomes;
  let ok = List.for_all (fun o -> Verdict.all_ok o.verdicts) outcomes in
  Printf.printf "=== %s: %d/%d experiments fully reproduced ===\n"
    (if ok then "OK" else "ATTENTION")
    (List.length (List.filter (fun o -> Verdict.all_ok o.verdicts) outcomes))
    (List.length outcomes);
  ok
