(** One entry point per reproduced paper artifact (see DESIGN.md §4) and an
    all-in-one runner used by [bench/main.exe]. *)

type outcome = {
  id : string;
  rendered : string;  (** the table or trace, ready to print *)
  verdicts : Verdict.t list;
}

val e1 : unit -> outcome
val e2 : ?fs:int list -> unit -> outcome
val e3 : ?fs:int list -> unit -> outcome
val e4 : ?fs:int list -> unit -> outcome
val e5 : ?fs:int list -> unit -> outcome
val e6 : unit -> outcome
val e7 : unit -> outcome
val e8 : unit -> outcome
val e9 : unit -> outcome
val e10 : unit -> outcome
val e11 : unit -> outcome
val e12 : unit -> outcome

val e14 : unit -> outcome
(** E13 is the model checker ([qsel mc]), not a table-producing
    experiment. *)

val e15 : ?quick:bool -> ?ns:int list -> unit -> outcome
(** The scaling sweep ({!E_scale}); not part of {!all} — its output is
    wall-clock dependent and it is consumed by the bench harness and the
    CI smoke instead. *)

val e16 : ?quick:bool -> ?ns:int list -> unit -> outcome
(** The churn sweep ({!E_churn}): availability and quorum stability under
    membership churn. Like {!e15}, not part of {!all}. *)

val e17 : ?quick:bool -> ?jobs:int list -> unit -> outcome
(** The multicore exploration sweep ({!E_explore}): domain-sharded fuzzing
    throughput with byte-identical reports. Like {!e15}, not part of
    {!all}. *)

val e18 : unit -> outcome
(** Selection policies under correlated whole-region loss ({!E_policy}):
    exposure, availability and repair for lex-first vs. the seeded
    lottery vs. diversity-capped selection. Deterministic, so part of
    {!all}. *)

val all : ?quick:bool -> unit -> outcome list
(** [quick] trims the sweeps for test runs (default false). *)

val print : outcome -> unit

val run_and_print_all : ?quick:bool -> unit -> bool
(** Print every experiment and its verdicts; [true] iff everything passed. *)
