module Sim = Qs_sim.Sim
module Network = Qs_sim.Network
module Stime = Qs_sim.Stime
module Detector = Qs_fd.Detector
module Timeout = Qs_fd.Timeout
module QS = Qs_core.Quorum_select
module Pid = Qs_core.Pid
module Auth = Qs_crypto.Auth

type config = {
  n : int;
  f : int;
  heartbeat_period : Stime.t;
  initial_timeout : Stime.t;
  timeout_strategy : Timeout.strategy;
}

type body = Beat of { seq : int } | Qsel of Qs_core.Msg.t

type msg = { sender : Pid.t; body : body; signature : Auth.signature }

let encode_body = function
  | Beat { seq } -> Printf.sprintf "BEAT|%d" seq
  | Qsel m ->
    "Q:" ^ Qs_core.Msg.encode m.Qs_core.Msg.update ^ "#"
    ^ Qs_crypto.Sha256.hex m.Qs_core.Msg.signature

let seal auth ~sender body =
  { sender; body; signature = Auth.sign auth ~signer:sender (encode_body body) }

let verify auth m =
  m.sender >= 0
  && m.sender < Auth.universe auth
  && Auth.verify auth ~signer:m.sender (encode_body m.body) m.signature

type proc = {
  me : Pid.t;
  fd : msg Detector.t;
  qsel : QS.t;
  mutable crashed_at : Stime.t option;
  mutable quorum_times : (Stime.t * Pid.t list) list; (* reversed *)
}

type t = {
  config : config;
  sim : Sim.t;
  net : msg Network.t;
  auth : Auth.t;
  procs : proc array;
  omissions : (Pid.t * Pid.t, Stime.t) Hashtbl.t;
  mutable rounds_scheduled : bool;
}

let is_crashed t p =
  match t.procs.(p).crashed_at with
  | Some at -> Stime.compare (Sim.now t.sim) at >= 0
  | None -> false

let create ?(seed = 1L) ?(delay = Network.Fixed (Stime.of_ms 1)) config =
  QS.validate_config { QS.n = config.n; f = config.f };
  let sim = Sim.create ~seed () in
  let net = Network.create ~sim ~n:config.n ~delay () in
  let auth = Auth.create config.n in
  let omissions = Hashtbl.create 8 in
  let procs = Array.make config.n None in
  let t_ref = ref None in
  for me = 0 to config.n - 1 do
    let timeouts =
      Timeout.create ~n:config.n ~initial:config.initial_timeout config.timeout_strategy
    in
    let proc_ref = ref None in
    let qsel =
      QS.create
        { QS.n = config.n; f = config.f }
        ~me ~auth
        ~send:(fun update ->
          let t = Option.get !t_ref in
          if not (is_crashed t me) then
            for dst = 0 to config.n - 1 do
              Network.send net ~src:me ~dst (seal auth ~sender:me (Qsel update))
            done)
        ~on_quorum:(fun quorum ->
          let p = Option.get !proc_ref in
          p.quorum_times <- (Sim.now sim, quorum) :: p.quorum_times)
        ()
    in
    let fd =
      Detector.create ~sim ~me ~n:config.n ~timeouts
        ~deliver:(fun ~src m ->
          match m.body with
          | Beat _ -> ()
          | Qsel update ->
            ignore src;
            QS.handle_update qsel update)
        ~on_suspected:(fun s -> QS.handle_suspected qsel s)
        ()
    in
    let proc = { me; fd; qsel; crashed_at = None; quorum_times = [] } in
    proc_ref := Some proc;
    procs.(me) <- Some proc
  done;
  let t =
    {
      config;
      sim;
      net;
      auth;
      procs = Array.map Option.get procs;
      omissions;
      rounds_scheduled = false;
    }
  in
  t_ref := Some t;
  Array.iteri
    (fun i proc ->
      Network.set_handler net i (fun ~src m ->
          if (not (is_crashed t i)) && verify t.auth m && m.sender = src then
            Detector.receive proc.fd ~src m))
    t.procs;
  ignore
    (Network.add_filter net (fun ~now ~src ~dst _ ->
         match Hashtbl.find_opt omissions (src, dst) with
         | Some from when Stime.compare now from >= 0 -> Network.Drop
         | _ -> Network.Deliver)
      : Network.filter_id);
  t

let sim t = t.sim

let crash t p at = t.procs.(p).crashed_at <- Some at

let omit_link t ~src ~dst ~from = Hashtbl.replace t.omissions (src, dst) from

(* Compile a fault schedule onto the heartbeat network. Only the
   [Equivocate] hook needs protocol knowledge here: the armed process's own
   suspicion rows are replaced, per destination, by a re-signed variant that
   inflates a fake suspicion of the recipient. The inflation is capped at 1
   (not a counter bump) so re-merged variants reach a fixed point and the
   cluster quiesces — the max-merge absorbs the union of the claims. *)
let inject t schedule =
  let equivocate ~src ~dst m =
    match m.body with
    | Qsel qm when qm.Qs_core.Msg.update.Qs_core.Msg.owner = src && dst <> src ->
      let u = qm.Qs_core.Msg.update in
      let row = Array.copy u.Qs_core.Msg.row in
      row.(dst) <- max row.(dst) 1;
      Some (seal t.auth ~sender:src (Qsel (Qs_core.Msg.seal t.auth { u with Qs_core.Msg.row = row })))
    | _ -> None
  in
  ignore (Qs_faults.Injector.install ~net:t.net ~equivocate schedule : Qs_faults.Injector.t)

(* One heartbeat round: everyone alive broadcasts a beat and expects the
   next beat from every peer. *)
let schedule_rounds t ~until =
  let period = t.config.heartbeat_period in
  let rounds = until / period in
  for k = 1 to rounds do
    Sim.schedule_at t.sim ~at:(k * period) (fun () ->
        Array.iter
          (fun proc ->
            let me = proc.me in
            if not (is_crashed t me) then begin
              for dst = 0 to t.config.n - 1 do
                if dst <> me then
                  Network.send t.net ~src:me ~dst (seal t.auth ~sender:me (Beat { seq = k }))
              done;
              for peer = 0 to t.config.n - 1 do
                if peer <> me then
                  Detector.expect proc.fd ~from:peer ~tag:"beat" (fun m ->
                      match m.body with Beat { seq } -> seq >= k | Qsel _ -> false)
              done
            end)
          t.procs)
  done

let run ?(until = Stime.of_ms 2000) t =
  if not t.rounds_scheduled then begin
    t.rounds_scheduled <- true;
    schedule_rounds t ~until
  end;
  Sim.run ~until t.sim

let agreed_quorum t ~correct =
  match correct with
  | [] -> None
  | first :: rest ->
    let quorum = QS.last_quorum t.procs.(first).qsel in
    if List.for_all (fun p -> QS.last_quorum t.procs.(p).qsel = quorum) rest then Some quorum
    else None

let convergence_time t ~correct ~expect_excluded =
  match agreed_quorum t ~correct with
  | None -> None
  | Some quorum ->
    if List.exists (fun x -> List.mem x quorum) expect_excluded then None
    else begin
      (* Latest time any correct process issued its final quorum. *)
      let latest =
        List.fold_left
          (fun acc p ->
            match t.procs.(p).quorum_times with
            | (at, _) :: _ -> Stime.max acc at
            | [] -> acc)
          Stime.zero correct
      in
      Some latest
    end

let quorum_changes t ~correct =
  List.fold_left (fun acc p -> max acc (QS.quorums_issued t.procs.(p).qsel)) 0 correct

let messages_sent t = Network.sent_count t.net

let false_suspicion_total t ~correct =
  List.fold_left (fun acc p -> acc + Detector.false_suspicions t.procs.(p).fd) 0 correct

let matrices_agree t ~correct =
  match correct with
  | [] -> true
  | first :: rest ->
    let reference = QS.matrix t.procs.(first).qsel in
    List.for_all
      (fun p -> Qs_core.Suspicion_matrix.equal reference (QS.matrix t.procs.(p).qsel))
      rest
