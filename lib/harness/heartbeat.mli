(** The full Fig.-1 stack on a heartbeat application.

    The paper assumes "every process is expected to send infinitely many
    messages … the case in systems that use heartbeats" (Section II). This
    module builds exactly that minimal application: every process
    periodically broadcasts a signed heartbeat and tells its failure
    detector to expect the next heartbeat from every peer. Crashed or
    link-omitting processes earn suspicions; the suspicions drive
    Algorithm 1 over the simulated network; the cluster converges on a
    quorum of live processes.

    This is the cleanest end-to-end validation of
    network → detector → quorum selection without any replication protocol
    in the way, and the engine behind experiment E10. *)

type config = {
  n : int;
  f : int;
  heartbeat_period : Qs_sim.Stime.t;
  initial_timeout : Qs_sim.Stime.t;
  timeout_strategy : Qs_fd.Timeout.strategy;
}

type t

val create :
  ?seed:int64 -> ?delay:Qs_sim.Network.delay_model -> config -> t

val sim : t -> Qs_sim.Sim.t

val crash : t -> Qs_core.Pid.t -> Qs_sim.Stime.t -> unit
(** Schedule a crash: the process stops sending heartbeats (and everything
    else) at the given time. *)

val omit_link : t -> src:Qs_core.Pid.t -> dst:Qs_core.Pid.t -> from:Qs_sim.Stime.t -> unit
(** Schedule a permanent omission failure on one link. *)

val inject : t -> Qs_faults.Fault.schedule -> unit
(** Compile a fault schedule onto the heartbeat network through
    {!Qs_faults.Injector}. The [Equivocate] hook speaks the heartbeat wire
    format: while armed, the source's own suspicion rows are replaced per
    destination by a re-signed variant inflating a fake suspicion of the
    recipient — the Section VI-C scenario where equivocation "only causes
    Quorum Selection to terminate faster". Call before {!run}. *)

val run : ?until:Qs_sim.Stime.t -> t -> unit

val agreed_quorum : t -> correct:Qs_core.Pid.t list -> Qs_core.Pid.t list option

val convergence_time : t -> correct:Qs_core.Pid.t list -> expect_excluded:Qs_core.Pid.t list -> Qs_sim.Stime.t option
(** Earliest simulation time after which every correct process's quorum
    excluded all of [expect_excluded] and never changed again. [None] if
    that never stabilized. *)

val quorum_changes : t -> correct:Qs_core.Pid.t list -> int
(** Max quorums issued by any of the given processes. *)

val messages_sent : t -> int

val false_suspicion_total : t -> correct:Qs_core.Pid.t list -> int

val matrices_agree : t -> correct:Qs_core.Pid.t list -> bool
(** All listed processes hold identical suspicion matrices — the
    eventual-consistency claim of Section VI-A, checkable at quiescence even
    under equivocated rows (the max-merge absorbs the union). *)
