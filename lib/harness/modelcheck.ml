module Engine = Qs_mc.Engine
module Schedule = Qs_mc.Schedule
module Sim = Qs_sim.Sim
module Network = Qs_sim.Network
module Stime = Qs_sim.Stime
module Pid = Qs_core.Pid
module QS = Qs_core.Quorum_select
module FS = Qs_follower.Follower_select
module Replica = Qs_xpaxos.Replica
module Xcluster = Qs_xpaxos.Xcluster
module Monitor = Qs_faults.Monitor
module Fault = Qs_faults.Fault
module Rejoin = Qs_recovery.Rejoin
module Codec = Qs_recovery.Codec
module Metrics = Qs_obs.Metrics
module Journal = Qs_obs.Journal
module Indep = Qs_graph.Indep

type protocol = Quorum | Follower | Xpaxos | Xpaxos_enum

let protocol_name = function
  | Quorum -> "quorum"
  | Follower -> "follower"
  | Xpaxos -> "xpaxos"
  | Xpaxos_enum -> "xpaxos-enum"

let protocol_of_name s =
  match String.lowercase_ascii s with
  | "quorum" -> Some Quorum
  | "follower" -> Some Follower
  | "xpaxos" | "xpaxos-qs" -> Some Xpaxos
  | "xpaxos-enum" -> Some Xpaxos_enum
  | _ -> None

let all = [ Quorum; Follower; Xpaxos; Xpaxos_enum ]

type spec = {
  protocol : protocol;
  n : int;
  f : int;
  injections : (int * int list) list;
  crashes : int list;
  amnesia : int list;
  equivocate : int list;
  churn : int list;
  regions : int list list;
  requests : int;
  seeded_bug : bool;
}

let default_spec protocol =
  let base =
    {
      protocol;
      n = 4;
      f = 1;
      injections = [];
      crashes = [];
      amnesia = [];
      equivocate = [];
      churn = [];
      regions = [];
      requests = 0;
      seeded_bug = false;
    }
  in
  match protocol with
  | Quorum -> { base with injections = [ (0, [ 3 ]) ] }
  | Follower -> { base with injections = [ (1, [ 0 ]) ] }
  | Xpaxos | Xpaxos_enum -> { base with requests = 1 }

let validate spec =
  QS.validate_config { QS.n = spec.n; f = spec.f };
  let pid ctx p =
    if p < 0 || p >= spec.n then
      invalid_arg (Printf.sprintf "Modelcheck: %s pid %d out of range [0,%d)" ctx p spec.n)
  in
  List.iter (pid "crash") spec.crashes;
  if List.length (List.sort_uniq compare spec.crashes) > spec.f then
    invalid_arg "Modelcheck: more than f crashes is out of model";
  List.iter (pid "amnesia") spec.amnesia;
  if spec.amnesia <> [] && spec.protocol <> Quorum then
    invalid_arg "Modelcheck: amnesia exploration is only wired for the quorum instance";
  if List.length spec.amnesia <> List.length (List.sort_uniq compare spec.amnesia) then
    invalid_arg "Modelcheck: duplicate amnesia pid";
  List.iter
    (fun p ->
      if List.mem p spec.crashes then
        invalid_arg (Printf.sprintf "Modelcheck: p%d is crashed; it cannot also recover" p))
    spec.amnesia;
  (* An amnesia crash is a crash: both kinds draw on the same f-budget. *)
  if List.length (List.sort_uniq compare (spec.crashes @ spec.amnesia)) > spec.f then
    invalid_arg "Modelcheck: more than f crashes (mute + amnesia) is out of model";
  List.iter (pid "equivocate") spec.equivocate;
  if spec.equivocate <> [] && spec.protocol <> Quorum then
    invalid_arg "Modelcheck: equivocation exploration is only wired for the quorum instance";
  if List.length spec.equivocate <> List.length (List.sort_uniq compare spec.equivocate) then
    invalid_arg "Modelcheck: duplicate equivocate pid";
  List.iter
    (fun p ->
      if List.mem p spec.crashes then
        invalid_arg (Printf.sprintf "Modelcheck: p%d is crashed; it cannot also equivocate" p))
    spec.equivocate;
  (* An equivocator is Byzantine-faulty: it shares the f-budget with the
     crashed (mute and amnesia) processes. *)
  if
    List.length (List.sort_uniq compare (spec.crashes @ spec.amnesia @ spec.equivocate))
    > spec.f
  then invalid_arg "Modelcheck: more than f faulty processes (crashes + equivocators) is out of model";
  List.iter (pid "churn") spec.churn;
  if spec.churn <> [] && spec.protocol <> Quorum then
    invalid_arg "Modelcheck: churn exploration is only wired for the quorum instance";
  if List.length spec.churn <> List.length (List.sort_uniq compare spec.churn) then
    invalid_arg "Modelcheck: duplicate churn pid";
  List.iter
    (fun p ->
      if List.mem p spec.crashes then
        invalid_arg (Printf.sprintf "Modelcheck: p%d is crashed; it cannot leave and rejoin" p))
    spec.churn;
  (* A churned process is briefly stale mid-rejoin, like an amnesia crash:
     it draws on the same f-budget. *)
  if
    List.length
      (List.sort_uniq compare (spec.crashes @ spec.amnesia @ spec.equivocate @ spec.churn))
    > spec.f
  then
    invalid_arg
      "Modelcheck: more than f faulty processes (crashes + equivocators + churn) is out of model";
  List.iteri
    (fun i members ->
      if members = [] then
        invalid_arg (Printf.sprintf "Modelcheck: region %d has no members" i);
      List.iter (pid "region") members;
      if List.length members <> List.length (List.sort_uniq compare members) then
        invalid_arg (Printf.sprintf "Modelcheck: region %d has a duplicate member" i);
      List.iter
        (fun p ->
          if List.mem p spec.crashes then
            invalid_arg
              (Printf.sprintf "Modelcheck: p%d is crashed; it cannot also be lost with region %d" p i))
        members)
    spec.regions;
  if spec.regions <> [] && spec.protocol <> Quorum then
    invalid_arg "Modelcheck: region-loss exploration is only wired for the quorum instance";
  (* A region loss mutes every member at once: the whole domain draws on
     the same f-budget as individual crashes. *)
  if
    List.length
      (List.sort_uniq compare
         (spec.crashes @ spec.amnesia @ spec.equivocate @ spec.churn @ List.concat spec.regions))
    > spec.f
  then
    invalid_arg
      "Modelcheck: more than f faulty processes (crashes + equivocators + churn + region members) is out of model";
  List.iter
    (fun (p, s) ->
      pid "inject" p;
      List.iter (pid "inject suspect") s)
    spec.injections;
  if spec.requests < 0 then invalid_arg "Modelcheck: negative requests";
  if spec.seeded_bug && (spec.protocol = Follower || spec.protocol = Xpaxos_enum) then
    invalid_arg "Modelcheck: seeded-bug needs an embedded Algorithm-1 instance (quorum or xpaxos)"

let correct_pids spec =
  List.filter (fun p -> not (List.mem p spec.crashes)) (List.init spec.n Fun.id)

(* Canonical id-free key for a parked message; see Engine.choice_info. *)
let canon_of encode src dst payload =
  Printf.sprintf "%d>%d#%s" src dst (Qs_crypto.Sha256.digest_hex (encode payload))

let deliver_choices net encode =
  List.map
    (fun (id, src, dst, payload) ->
      { Engine.choice = Schedule.Deliver id; canon = canon_of encode src dst payload;
        receiver = Some dst })
    (Network.deliverable net)

(* The in-flight multiset for fingerprints: sorted canonical keys, so two
   interleavings that parked the same messages under different ids agree. *)
let pending_part net encode =
  Network.pending net
  |> List.map (fun (_, src, dst, payload) -> canon_of encode src dst payload)
  |> List.sort compare |> String.concat ","

let drop_crashed_filter crashes = fun ~now:_ ~src ~dst _ ->
  if List.mem src crashes || List.mem dst crashes then Network.Drop else Network.Deliver

(* Theorem 3/9 presuppose at most [f] suspected processes; a schedule that
   drives more than [f] distinct processes into suspicion (frozen-time timer
   fires make false suspicions cheap) is out of model, and the per-epoch
   bound genuinely need not hold there. Bound checks are therefore gated on
   the blamed set staying within the budget; size/independence/agreement
   checks are unconditional. *)
let within_budget ~f blamed = List.length (List.sort_uniq compare blamed) <= f

(* ---------------------------------------------------------------- quorum *)

(* The quorum instance's controlled network carries both planes: Algorithm-1
   UPDATE gossip and the rejoin protocol's State_req/State_resp traffic, so
   the checker explores every interleaving of recovery against selection. *)
type qwire = Q_update of Qs_core.Msg.t | Q_rejoin of Rejoin.msg

let make_quorum spec =
  let cfg = { QS.n = spec.n; f = spec.f } in
  let qsize = QS.q cfg in
  let bound = Monitor.theorem3 ~f:spec.f in
  let correct = correct_pids spec in
  (* The two peers an [Equivocate p] choice sends its conflicting row
     variants to — fixed, so the choice is deterministic and replayable. *)
  let equivocation_peers p =
    match List.filter (fun q -> q <> p) (List.init spec.n Fun.id) with
    | a :: b :: _ -> Some (a, b)
    | _ -> None
  in
  (* Static: the only suspicions Algorithm 1 ever sees here are the injected
     ones (plus an equivocator's fake claims about its two victim peers), so
     the in-model gate is decided by the spec. Amnesia targets are crashed
     processes (briefly), so they count against the budget too. *)
  let enforce_bound =
    within_budget ~f:spec.f
      (spec.crashes @ spec.amnesia @ spec.churn @ List.concat spec.regions
      @ List.concat_map snd spec.injections
      @ List.concat_map
          (fun p ->
            match equivocation_peers p with
            | Some (a, b) -> [ p; a; b ]
            | None -> [ p ])
          spec.equivocate)
  in
  let encode = function
    | Q_update (m : Qs_core.Msg.t) -> "u" ^ Qs_core.Msg.encode m.update
    | Q_rejoin m -> "r" ^ Rejoin.encode_msg m
  in
  (* Deterministic in n (fixed default master secret), so one directory
     serves every reset — and lets the Equivocate choice re-sign variants. *)
  let auth = Qs_crypto.Auth.create spec.n in
  let amnesia_done = Array.make spec.n false in
  let equivocate_done = Array.make spec.n false in
  let churn_done = Array.make spec.n false in
  let region_done = Array.make (List.length spec.regions) false in
  (* Members of already-lost regions: mute both directions from the loss
     point on (the filter below reads this live). *)
  let muted = Array.make spec.n false in
  let state = ref None in
  let nodes () = let n, _, _ = Option.get !state in n in
  let rejoins () = let _, r, _ = Option.get !state in r in
  let net () = let _, _, n = Option.get !state in n in
  let reset () =
    Metrics.reset ();
    (* Rejoin journals Recovery_* events when the journal is live; the
       quorum instance never reads it, so keep it off — exploration visits
       far too many states to accumulate an event log. *)
    Journal.clear ();
    Journal.set_enabled false;
    Array.fill amnesia_done 0 spec.n false;
    Array.fill equivocate_done 0 spec.n false;
    Array.fill churn_done 0 spec.n false;
    Array.fill region_done 0 (Array.length region_done) false;
    Array.fill muted 0 spec.n false;
    QS.test_buggy_quorum_size := spec.seeded_bug;
    let sim = Sim.create () in
    let network = Network.create ~sim ~n:spec.n ~delay:(Network.Fixed (Stime.of_ms 1)) () in
    Network.set_controlled network true;
    if spec.crashes <> [] then ignore (Network.add_filter network (drop_crashed_filter spec.crashes));
    if spec.regions <> [] then
      ignore
        (Network.add_filter network (fun ~now:_ ~src ~dst _ ->
             if muted.(src) || muted.(dst) then Network.Drop else Network.Deliver));
    let slots = Array.make spec.n None in
    for me = 0 to spec.n - 1 do
      slots.(me) <-
        Some
          (QS.create cfg ~me ~auth
             ~send:(fun m -> Network.broadcast network ~src:me (Q_update m))
             ~on_quorum:(fun _ -> ())
             ())
    done;
    let ns = Array.map Option.get slots in
    (* Frozen time: no retry timers (controlled delivery is reliable, so a
       single round always completes) and no gossip. needed stays 1. *)
    let rjcfg = { (Rejoin.default_config ~n:spec.n) with Rejoin.retry_every = None } in
    let rjs =
      Array.init spec.n (fun me ->
          Rejoin.create ~sim rjcfg ~me
            ~collect:(fun () ->
              { Rejoin.matrix = Codec.encode_matrix (QS.matrix ns.(me));
                epoch = QS.epoch ns.(me);
                extra = "" })
            ~adopt:(fun ~matrix ~epoch ~extra:_ -> QS.absorb ns.(me) ~matrix ~epoch)
            ~send:(fun ~dst msg -> Network.send network ~src:me ~dst (Q_rejoin msg))
            ())
    in
    Array.iteri
      (fun p node ->
        Network.set_handler network p (fun ~src m ->
            match m with
            | Q_update u -> QS.handle_update node u
            | Q_rejoin r -> Rejoin.handle rjs.(p) ~src r))
      ns;
    state := Some (ns, rjs, network);
    List.iter
      (fun (p, s) -> if not (List.mem p spec.crashes) then QS.handle_suspected ns.(p) s)
      spec.injections
  in
  let amnesia_choices () =
    List.filter_map
      (fun p ->
        if amnesia_done.(p) then None
        else
          Some
            { Engine.choice = Schedule.Amnesia p;
              canon = "a" ^ string_of_int p;
              receiver = None })
      spec.amnesia
  in
  let equivocate_choices () =
    List.filter_map
      (fun p ->
        if equivocate_done.(p) then None
        else
          Some
            { Engine.choice = Schedule.Equivocate p;
              canon = "e" ^ string_of_int p;
              receiver = None })
      spec.equivocate
  in
  let churn_choices () =
    List.filter_map
      (fun p ->
        if churn_done.(p) then None
        else
          Some
            { Engine.choice = Schedule.Churn p;
              canon = "c" ^ string_of_int p;
              receiver = None })
      spec.churn
  in
  let region_choices () =
    List.filteri (fun i _ -> not region_done.(i)) (List.mapi (fun i _ -> i) spec.regions)
    |> List.map (fun i ->
           { Engine.choice = Schedule.Region i;
             canon = "r" ^ string_of_int i;
             receiver = None })
  in
  (* Members of a lost region are faulty from that point on: stale by
     construction, so every correctness check ranges over the survivors. *)
  let live_correct () = List.filter (fun p -> not muted.(p)) correct in
  (* Standing quorums: two correct survivors at the same (config epoch,
     detector epoch) must hold quorums overlapping in at least n - 2f
     processes. Appended after the per-process checks so a schedule that
     also undersizes a quorum keeps reporting quorum-size first. *)
  let intersection_violations () =
    let threshold = Qs_core.Quorum_intersection.threshold ~n:spec.n ~f:spec.f in
    let groups = ref [] in
    List.iter
      (fun p ->
        let node = (nodes ()).(p) in
        let q = List.sort_uniq compare (QS.last_quorum node) in
        let key = (QS.cepoch node, QS.epoch node) in
        let qs = Option.value ~default:[] (List.assoc_opt key !groups) in
        if not (List.mem q qs) then groups := (key, q :: qs) :: List.remove_assoc key !groups)
      (live_correct ());
    List.concat_map
      (fun ((ce, e), qs) ->
        let rec pairs = function
          | [] -> []
          | q :: rest ->
            List.filter_map
              (fun q' ->
                let o = Qs_core.Quorum_intersection.overlap q q' in
                if o < threshold then
                  Some
                    ( "quorum-intersection",
                      Printf.sprintf
                        "quorums {%s} and {%s} at cepoch %d epoch %d overlap in %d < n - 2f = %d"
                        (String.concat "," (List.map string_of_int q))
                        (String.concat "," (List.map string_of_int q'))
                        ce e o threshold )
                else None)
              rest
            @ pairs rest
        in
        pairs qs)
      (List.rev !groups)
  in
  let violations () =
    List.concat_map
      (fun p ->
        let node = (nodes ()).(p) in
        let lq = QS.last_quorum node in
        let out = ref [] in
        if List.length lq <> qsize then
          out :=
            ( "quorum-size",
              Printf.sprintf "p%d holds |Q| = %d, want n - f = %d" p (List.length lq) qsize )
            :: !out;
        if enforce_bound && QS.max_issued_per_epoch node > bound then
          out :=
            ( "quorum-bound",
              Printf.sprintf "p%d issued %d quorums in one epoch > f(f+1) = %d" p
                (QS.max_issued_per_epoch node) bound )
            :: !out;
        if not (Indep.is_independent (QS.suspect_graph node) lq) then
          out :=
            ( "no-suspicion",
              Printf.sprintf "p%d's quorum {%s} is not independent in its suspect graph" p
                (String.concat "," (List.map string_of_int lq)) )
            :: !out;
        List.rev !out)
      (live_correct ())
    @ intersection_violations ()
  in
  let quiescent_violations () =
    match live_correct () with
    | [] -> []
    | first :: rest ->
      let node p = (nodes ()).(p) in
      let q0 = QS.last_quorum (node first) in
      let m0 = Format.asprintf "%a" Qs_core.Suspicion_matrix.pp (QS.matrix (node first)) in
      let disagree =
        List.filter_map
          (fun p -> if QS.last_quorum (node p) <> q0 then Some p else None)
          rest
      in
      let diverged =
        List.filter_map
          (fun p ->
            if Format.asprintf "%a" Qs_core.Suspicion_matrix.pp (QS.matrix (node p)) <> m0 then
              Some p
            else None)
          rest
      in
      (if disagree = [] then []
       else
         [ ( "agreement",
             Printf.sprintf "quiescent but p%s disagree with p%d on the quorum"
               (String.concat ",p" (List.map string_of_int disagree))
               first ) ])
      @
      if diverged = [] then []
      else
        [ ( "convergence",
            Printf.sprintf "quiescent but p%s's matrix differs from p%d's"
              (String.concat ",p" (List.map string_of_int diverged))
              first ) ]
  in
  (* ---- symmetry ----------------------------------------------------
     Free pids are those no fault plane or injection distinguishes. The
     instance's dynamics never put a free pid at either end of a suspicion
     edge — suspicions come only from injections and equivocation fakes,
     whose endpoints are all distinguished below — so relabeling free pids
     commutes with every transition and every check, and lex-first quorum
     selection (a function of the invariant suspect graph) picks the same
     set in the relabeled execution. The canonical fingerprint is the
     minimum over the induced permutation group of the plain fingerprint's
     relabeled render: sibling states differing only in which free process
     played a role collapse into one orbit representative. *)
  let distinguished =
    List.sort_uniq compare
      (spec.crashes @ spec.amnesia @ spec.churn @ List.concat spec.regions
      @ List.concat_map
          (fun p ->
            match equivocation_peers p with
            | Some (a, b) -> [ p; a; b ]
            | None -> [ p ])
          spec.equivocate
      @ List.concat_map (fun (p, s) -> p :: s) spec.injections)
  in
  let free =
    List.filter (fun p -> not (List.mem p distinguished)) (List.init spec.n Fun.id)
  in
  let rec permutations = function
    | [] -> [ [] ]
    | l ->
      List.concat_map
        (fun x ->
          List.map (fun r -> x :: r) (permutations (List.filter (( <> ) x) l)))
        l
  in
  (* new pid = perm.(old pid); identity on distinguished pids. *)
  let group =
    List.map
      (fun image ->
        let a = Array.init spec.n Fun.id in
        List.iter2 (fun old img -> a.(old) <- img) free image;
        a)
      (permutations free)
  in
  let render_perm perm =
    let inv = Array.make spec.n 0 in
    Array.iteri (fun old img -> inv.(img) <- old) perm;
    let pmatrix enc =
      Codec.encode_matrix
        (Qs_core.Suspicion_matrix.remap (Codec.decode_matrix enc) ~n:spec.n
           ~of_new:(fun i -> inv.(i)))
    in
    let pencode = function
      | Q_update (m : Qs_core.Msg.t) ->
        "u"
        ^ Qs_core.Msg.encode
            {
              Qs_core.Msg.owner = perm.(m.update.owner);
              row = Array.init spec.n (fun j -> m.update.row.(inv.(j)));
            }
      | Q_rejoin rm ->
        "r"
        ^ Rejoin.encode_msg
            (match rm with
             | Rejoin.State_req _ | Rejoin.State_delta _ | Rejoin.Delta_ack _ ->
               (* req carries no pids; delta gossip is off in this instance *)
               rm
             | Rejoin.State_resp { rid; payload } ->
               Rejoin.State_resp
                 { rid;
                   payload = { payload with Rejoin.matrix = pmatrix payload.Rejoin.matrix } }
             | Rejoin.State_push { payload } ->
               Rejoin.State_push
                 { payload = { payload with Rejoin.matrix = pmatrix payload.Rejoin.matrix } })
    in
    (* Mirrors the plain fingerprint layout exactly: line i holds the
       relabeled render of the node the permutation sends to slot i, so the
       identity permutation reproduces [fingerprint ()] byte for byte. *)
    let buf = Buffer.create 256 in
    for i = 0 to spec.n - 1 do
      Buffer.add_string buf
        (QS.fingerprint_perm (nodes ()).(inv.(i)) ~perm:(fun p -> perm.(p)));
      Buffer.add_char buf '\n'
    done;
    for i = 0 to spec.n - 1 do
      Buffer.add_string buf
        (Rejoin.fingerprint_perm (rejoins ()).(inv.(i))
           ~perm:(fun p -> perm.(p))
           ~matrix:pmatrix);
      Buffer.add_char buf '\n'
    done;
    Buffer.add_string buf "A";
    for i = 0 to spec.n - 1 do
      Buffer.add_char buf (if amnesia_done.(inv.(i)) then '1' else '0')
    done;
    Buffer.add_string buf "E";
    for i = 0 to spec.n - 1 do
      Buffer.add_char buf (if equivocate_done.(inv.(i)) then '1' else '0')
    done;
    Buffer.add_string buf "C";
    for i = 0 to spec.n - 1 do
      Buffer.add_char buf (if churn_done.(inv.(i)) then '1' else '0')
    done;
    (* Region ids are not pids: the permutation is the identity on every
       member (all distinguished), so the bits copy over unpermuted. *)
    Buffer.add_string buf "R";
    Array.iter (fun b -> Buffer.add_char buf (if b then '1' else '0')) region_done;
    let pend =
      Network.pending (net ())
      |> List.map (fun (_, src, dst, payload) ->
             Printf.sprintf "%d>%d#%s" perm.(src) perm.(dst)
               (Qs_crypto.Sha256.digest_hex (pencode payload)))
      |> List.sort compare |> String.concat ","
    in
    Buffer.add_string buf ("[" ^ pend ^ "]");
    Buffer.contents buf
  in
  let symmetry =
    if List.compare_length_with free 2 < 0 then None
    else
      Some
        (fun () ->
          List.fold_left
            (fun best perm ->
              let r = render_perm perm in
              match best with Some b when b <= r -> best | _ -> Some r)
            None group
          |> Option.get)
  in
  {
    Engine.reset;
    enabled =
      (fun () ->
        deliver_choices (net ()) encode @ amnesia_choices () @ equivocate_choices ()
        @ churn_choices () @ region_choices ());
    apply =
      (function
      | Schedule.Deliver id -> Network.deliver_now (net ()) id
      | Schedule.Amnesia p when p >= 0 && p < spec.n && not amnesia_done.(p) ->
        (* Lose the volatile selection state, kill the crashed incarnation's
           in-flight messages, and open a rejoin round: the State_req
           broadcast parks on the controlled network, so every interleaving
           of recovery traffic against UPDATE gossip is explored. *)
        amnesia_done.(p) <- true;
        QS.amnesia (nodes ()).(p);
        ignore (Network.drop_pending_to (net ()) p : int);
        Rejoin.start (rejoins ()).(p);
        true
      | Schedule.Equivocate p when p >= 0 && p < spec.n && not equivocate_done.(p) -> (
        (* One commission fault: two validly-signed variants of p's own row,
           each inflating a fake suspicion of its recipient, leave for two
           different peers. The variants are pointwise incomparable, the
           forward-on-change gossip spreads both, and the max-merge must
           still drive every correct process to the same union matrix. *)
        match equivocation_peers p with
        | None -> false
        | Some (a, b) ->
          equivocate_done.(p) <- true;
          let base = Qs_core.Suspicion_matrix.row (QS.matrix (nodes ()).(p)) p in
          let variant victim =
            let row = Array.copy base in
            row.(victim) <- row.(victim) + 1;
            Q_update (Qs_core.Msg.seal auth { Qs_core.Msg.owner = p; row })
          in
          Network.send (net ()) ~src:p ~dst:a (variant a);
          Network.send (net ()) ~src:p ~dst:b (variant b);
          true)
      | Schedule.Churn p when p >= 0 && p < spec.n && not churn_done.(p) ->
        (* One atomic membership change: p leaves and instantly rejoins
           under a fresh slot. Every process reconfigures to the same
           width with p's row and column wiped (of_new p = -1) and the
           config epoch bumped; the crashed-incarnation's in-flight
           messages die with it, and p bootstraps its wiped state back
           through a rejoin round — so the checker explores every
           interleaving of stale pre-churn gossip, the reconfiguration
           point, and the recovery traffic. *)
        churn_done.(p) <- true;
        let cepoch = QS.cepoch (nodes ()).(0) + 1 in
        let of_new i = if i = p then -1 else i in
        Array.iteri (fun me node -> QS.reconfigure node cfg ~me ~cepoch ~of_new) (nodes ());
        ignore (Network.drop_pending_to (net ()) p : int);
        Rejoin.start (rejoins ()).(p);
        true
      | Schedule.Region i when i >= 0 && i < Array.length region_done && not region_done.(i) ->
        (* One correlated whole-domain loss: every member of region i goes
           mute at once. Messages already addressed to a member die with it;
           a member's own pre-loss gossip stays in flight (parked sends
           survive), so exploration covers stale late-arriving traffic from
           the lost domain. *)
        region_done.(i) <- true;
        List.iter
          (fun p ->
            muted.(p) <- true;
            ignore (Network.drop_pending_to (net ()) p : int))
          (List.nth spec.regions i);
        true
      | Schedule.Amnesia _ | Schedule.Equivocate _ | Schedule.Churn _ | Schedule.Region _
      | Schedule.Step | Schedule.Fire _ ->
        false);
    fingerprint =
      (fun () ->
        let buf = Buffer.create 256 in
        Array.iter
          (fun node ->
            Buffer.add_string buf (QS.fingerprint node);
            Buffer.add_char buf '\n')
          (nodes ());
        Array.iter
          (fun rj ->
            Buffer.add_string buf (Rejoin.fingerprint rj);
            Buffer.add_char buf '\n')
          (rejoins ());
        Buffer.add_string buf "A";
        Array.iter (fun b -> Buffer.add_char buf (if b then '1' else '0')) amnesia_done;
        Buffer.add_string buf "E";
        Array.iter (fun b -> Buffer.add_char buf (if b then '1' else '0')) equivocate_done;
        Buffer.add_string buf "C";
        Array.iter (fun b -> Buffer.add_char buf (if b then '1' else '0')) churn_done;
        Buffer.add_string buf "R";
        Array.iter (fun b -> Buffer.add_char buf (if b then '1' else '0')) region_done;
        Buffer.add_string buf ("[" ^ pending_part (net ()) encode ^ "]");
        Buffer.contents buf);
    violations;
    quiescent_violations;
    snapshot =
      Some
        (fun () ->
          let ns = Array.map QS.snapshot (nodes ()) in
          let rs = Array.map Rejoin.snapshot (rejoins ()) in
          let am = Array.copy amnesia_done in
          let eq = Array.copy equivocate_done in
          let ch = Array.copy churn_done in
          let rg = Array.copy region_done in
          let mu = Array.copy muted in
          let net_snap = Network.snapshot (net ()) in
          fun () ->
            Array.iteri (fun i s -> QS.restore (nodes ()).(i) s) ns;
            Array.iteri (fun i s -> Rejoin.restore (rejoins ()).(i) s) rs;
            Array.blit am 0 amnesia_done 0 spec.n;
            Array.blit eq 0 equivocate_done 0 spec.n;
            Array.blit ch 0 churn_done 0 spec.n;
            Array.blit rg 0 region_done 0 (Array.length region_done);
            Array.blit mu 0 muted 0 spec.n;
            Network.restore (net ()) net_snap);
    symmetry;
  }

(* -------------------------------------------------------------- follower *)

type fd_state = {
  mutable transient : Pid.t list;
  mutable permanent : Pid.t list;
  mutable expectation : (Pid.t * int) option;
}

let make_follower spec =
  let cfg = { QS.n = spec.n; f = spec.f } in
  let qsize = QS.q cfg in
  let bound = Monitor.theorem9 ~f:spec.f in
  let correct = correct_pids spec in
  let encode (m : Qs_follower.Fmsg.t) = Qs_follower.Fmsg.encode m.payload in
  let state = ref None in
  let nodes () = let n, _, _ = Option.get !state in n in
  let fds () = let _, f, _ = Option.get !state in f in
  let net () = let _, _, n = Option.get !state in n in
  let suspicion_set fd = List.sort_uniq compare (fd.transient @ fd.permanent) in
  let reset () =
    Metrics.reset ();
    QS.test_buggy_quorum_size := false;
    let sim = Sim.create () in
    let network =
      Network.create ~sim ~n:spec.n ~delay:(Network.Fixed (Stime.of_ms 1)) ~fifo:true ()
    in
    Network.set_controlled network true;
    if spec.crashes <> [] then ignore (Network.add_filter network (drop_crashed_filter spec.crashes));
    let auth = Qs_crypto.Auth.create spec.n in
    let fd_arr =
      Array.init spec.n (fun _ -> { transient = []; permanent = []; expectation = None })
    in
    let slots = Array.make spec.n None in
    let publish me =
      match slots.(me) with
      | None -> ()
      | Some node -> FS.handle_suspected node (suspicion_set fd_arr.(me))
    in
    for me = 0 to spec.n - 1 do
      slots.(me) <-
        Some
          (FS.create cfg ~me ~auth
             ~send:(fun msg -> Network.broadcast network ~src:me msg)
             ~on_quorum:(fun ~leader:_ _ -> ())
             ~fd_expect:(fun ~leader ~epoch -> fd_arr.(me).expectation <- Some (leader, epoch))
             ~fd_cancel:(fun () -> fd_arr.(me).expectation <- None)
             ~fd_detected:(fun culprit ->
               let fd = fd_arr.(me) in
               if not (List.mem culprit fd.permanent) then begin
                 fd.permanent <- culprit :: fd.permanent;
                 publish me
               end)
             ())
    done;
    let ns = Array.map Option.get slots in
    Array.iteri
      (fun p node -> Network.set_handler network p (fun ~src:_ m -> FS.handle_msg node m))
      ns;
    state := Some (ns, fd_arr, network);
    List.iter
      (fun (p, s) ->
        if not (List.mem p spec.crashes) then begin
          fd_arr.(p).transient <- s;
          publish p
        end)
      spec.injections
  in
  let fire_choices () =
    List.filter_map
      (fun p ->
        match (fds ()).(p).expectation with
        | Some _ ->
          Some
            { Engine.choice = Schedule.Fire p; canon = "f" ^ string_of_int p; receiver = None }
        | None -> None)
      correct
  in
  let apply = function
    | Schedule.Deliver id -> Network.deliver_now (net ()) id
    | Schedule.Fire p -> (
      let fd = (fds ()).(p) in
      match fd.expectation with
      | None -> false
      | Some (leader, _) ->
        fd.expectation <- None;
        if not (List.mem leader fd.transient) then fd.transient <- leader :: fd.transient;
        FS.handle_suspected (nodes ()).(p) (suspicion_set fd);
        true)
    | Schedule.Step | Schedule.Amnesia _ | Schedule.Equivocate _ | Schedule.Churn _
    | Schedule.Region _ ->
      false
  in
  let violations () =
    (* fd transient/permanent sets only grow (and snapshots restore them),
       so this gate is monotone along any path. *)
    let enforce_bound =
      within_budget ~f:spec.f
        (spec.crashes @ List.concat_map (fun p -> suspicion_set (fds ()).(p)) correct)
    in
    List.concat_map
      (fun p ->
        let node = (nodes ()).(p) in
        let lq = FS.last_quorum node in
        let out = ref [] in
        if List.length lq <> qsize then
          out :=
            ( "quorum-size",
              Printf.sprintf "p%d holds |Q| = %d, want n - f = %d" p (List.length lq) qsize )
            :: !out;
        if enforce_bound && FS.max_issued_per_epoch node > bound then
          out :=
            ( "quorum-bound",
              Printf.sprintf "p%d issued %d quorums in one epoch > 3f+1 = %d" p
                (FS.max_issued_per_epoch node) bound )
            :: !out;
        List.rev !out)
      correct
  in
  let quiescent_violations () =
    match correct with
    | [] -> []
    | first :: rest ->
      let view p = (FS.leader (nodes ()).(p), FS.last_quorum (nodes ()).(p)) in
      let v0 = view first in
      let disagree = List.filter (fun p -> view p <> v0) rest in
      (* Locally computed leader vs. adopted quorum can disagree while a
         FOLLOWERS message is in flight; once nothing is, they must not. *)
      let stray =
        List.filter
          (fun p ->
            let node = (nodes ()).(p) in
            not (List.mem (FS.leader node) (FS.last_quorum node)))
          correct
      in
      (if disagree = [] then []
       else
         [ ( "agreement",
             Printf.sprintf "quiescent but p%s disagree with p%d on (leader, quorum)"
               (String.concat ",p" (List.map string_of_int disagree))
               first ) ])
      @
      if stray = [] then []
      else
        [ ( "leader-member",
            Printf.sprintf "quiescent but p%s's leader is outside its quorum"
              (String.concat ",p" (List.map string_of_int stray)) ) ]
  in
  let fd_part () =
    let buf = Buffer.create 64 in
    Array.iteri
      (fun p fd ->
        Buffer.add_string buf
          (Printf.sprintf "fd%d:t{%s}p{%s}e%s\n" p
             (String.concat "," (List.map string_of_int (List.sort compare fd.transient)))
             (String.concat "," (List.map string_of_int (List.sort compare fd.permanent)))
             (match fd.expectation with
             | None -> "-"
             | Some (l, e) -> Printf.sprintf "%d@%d" l e)))
      (fds ());
    Buffer.contents buf
  in
  {
    Engine.reset;
    enabled = (fun () -> deliver_choices (net ()) encode @ fire_choices ());
    apply;
    fingerprint =
      (fun () ->
        let buf = Buffer.create 256 in
        Array.iter
          (fun node ->
            Buffer.add_string buf (FS.fingerprint node);
            Buffer.add_char buf '\n')
          (nodes ());
        Buffer.add_string buf (fd_part ());
        Buffer.add_string buf ("[" ^ pending_part (net ()) encode ^ "]");
        Buffer.contents buf);
    violations;
    quiescent_violations;
    snapshot =
      Some
        (fun () ->
          let ns = Array.map FS.snapshot (nodes ()) in
          let fd_snap =
            Array.map
              (fun fd ->
                { transient = fd.transient; permanent = fd.permanent; expectation = fd.expectation })
              (fds ())
          in
          let net_snap = Network.snapshot (net ()) in
          fun () ->
            Array.iteri (fun i s -> FS.restore (nodes ()).(i) s) ns;
            Array.iteri
              (fun i s ->
                let fd = (fds ()).(i) in
                fd.transient <- s.transient;
                fd.permanent <- s.permanent;
                fd.expectation <- s.expectation)
              fd_snap;
            Network.restore (net ()) net_snap);
    symmetry = None;
  }

(* ---------------------------------------------------------------- xpaxos *)

let make_xpaxos mode spec =
  let rcfg =
    {
      Replica.n = spec.n;
      f = spec.f;
      mode;
      initial_timeout = Stime.of_ms 25;
      timeout_strategy = Qs_fd.Timeout.Exponential { factor = 2.0; max = Stime.of_ms 2000 };
    }
  in
  let qsize = Replica.quorum_size rcfg in
  let bound = Monitor.theorem3 ~f:spec.f in
  let correct = correct_pids spec in
  let monitor =
    (* One subscription for the system's lifetime; [reset] clears the
       journal and the monitor's accumulated state. The settle window is
       effectively infinite: under frozen virtual time the monitor's aged
       no-suspicion check is meaningless — the instantaneous independence
       check below replaces it. *)
    Monitor.create
      {
        Monitor.n = spec.n;
        f = spec.f;
        correct;
        quorum_bound = (match mode with Replica.Quorum_selection -> Some bound | _ -> None);
        bound_gauge = None;
        settle = Stime.of_ms 1_000_000_000;
        rejoin_retry_bound = None;
      }
  in
  let requests =
    List.init spec.requests (fun i -> { Qs_xpaxos.Xmsg.client = 0; rid = i; op = "op" ^ string_of_int i })
  in
  let encode (m : Qs_xpaxos.Xmsg.t) =
    string_of_int m.sender ^ "|" ^ Qs_xpaxos.Xmsg.encode_body m.body
  in
  let state = ref None in
  let cluster () = Option.get !state in
  (* Processes ever suspected along the current path (plus the crashed set).
     Detector suspicions can clear, so the union is accumulated here; the
     instance is replay-only, so path accumulation is sound. *)
  let blamed = ref spec.crashes in
  let reset () =
    Metrics.reset ();
    Journal.clear ();
    Journal.set_enabled true;
    Monitor.reset monitor;
    blamed := spec.crashes;
    QS.test_buggy_quorum_size := spec.seeded_bug;
    let c = Xcluster.create rcfg in
    Network.set_controlled (Xcluster.net c) true;
    List.iter (fun p -> Xcluster.set_fault c p Replica.Mute) spec.crashes;
    if spec.crashes <> [] then
      ignore (Network.add_filter (Xcluster.net c) (drop_crashed_filter spec.crashes));
    state := Some c;
    (* Bypass Xcluster.submit: it schedules a sim event, which would turn
       request arrival into a Step choice. The mc client hands requests to
       every replica in the initial state instead. *)
    List.iter
      (fun r -> List.iter (fun p -> Replica.submit (Xcluster.replica c p) r) (List.init spec.n Fun.id))
      requests
  in
  let histories () =
    List.map
      (fun p ->
        ( p,
          List.map
            (fun (r : Qs_xpaxos.Xmsg.request) -> (r.client, r.rid))
            (Replica.executed (Xcluster.replica (cluster ()) p)) ))
      correct
  in
  let rec is_prefix a b =
    match (a, b) with
    | [], _ -> true
    | _, [] -> false
    | x :: a', y :: b' -> x = y && is_prefix a' b'
  in
  let history_violations () =
    let hs = histories () in
    let dup =
      List.filter_map
        (fun (p, h) ->
          if List.length (List.sort_uniq compare h) <> List.length h then Some p else None)
        hs
    in
    let incons =
      let rec pairs = function
        | [] -> []
        | (p, h) :: rest ->
          List.filter_map
            (fun (q, h') ->
              if is_prefix h h' || is_prefix h' h then None else Some (p, q))
            rest
          @ pairs rest
      in
      pairs hs
    in
    (match dup with
    | [] -> []
    | ps ->
      [ ( "exactly-once",
          Printf.sprintf "p%s executed a request twice"
            (String.concat ",p" (List.map string_of_int ps)) ) ])
    @
    match incons with
    | [] -> []
    | (p, q) :: _ ->
      [ ( "prefix-consistency",
          Printf.sprintf "p%d's and p%d's executed histories diverge" p q ) ]
  in
  let qsel_violations () =
    List.concat_map
      (fun p ->
        match Replica.quorum_selector (Xcluster.replica (cluster ()) p) with
        | None -> []
        | Some qsel ->
          let lq = QS.last_quorum qsel in
          let out = ref [] in
          if List.length lq <> qsize then
            out :=
              ( "quorum-size",
                Printf.sprintf "p%d's selector holds |Q| = %d, want n - f = %d" p
                  (List.length lq) qsize )
              :: !out;
          if within_budget ~f:spec.f !blamed && QS.max_issued_per_epoch qsel > bound then
            out :=
              ( "quorum-bound",
                Printf.sprintf "p%d issued %d quorums in one epoch > f(f+1) = %d" p
                  (QS.max_issued_per_epoch qsel) bound )
              :: !out;
          if not (Indep.is_independent (QS.suspect_graph qsel) lq) then
            out :=
              ( "no-suspicion",
                Printf.sprintf "p%d's quorum {%s} is not independent in its suspect graph" p
                  (String.concat "," (List.map string_of_int lq)) )
              :: !out;
          List.rev !out)
      correct
  in
  {
    Engine.reset;
    enabled =
      (fun () ->
        deliver_choices (Xcluster.net (cluster ())) encode
        @
        if Sim.pending_events (Xcluster.sim (cluster ())) > 0 then
          [ { Engine.choice = Schedule.Step; canon = "t"; receiver = None } ]
        else []);
    apply =
      (function
      | Schedule.Deliver id -> Network.deliver_now (Xcluster.net (cluster ())) id
      | Schedule.Step -> Sim.step (Xcluster.sim (cluster ()))
      | Schedule.Fire _ | Schedule.Amnesia _ | Schedule.Equivocate _ | Schedule.Churn _
      | Schedule.Region _ ->
        false);
    fingerprint =
      (fun () ->
        let c = cluster () in
        let buf = Buffer.create 512 in
        for p = 0 to spec.n - 1 do
          Buffer.add_string buf (Replica.fingerprint (Xcluster.replica c p));
          Buffer.add_char buf '\n'
        done;
        Buffer.add_string buf ("[" ^ pending_part (Xcluster.net c) encode ^ "]");
        (* The simulator queue itself is opaque; virtual time plus the event
           count is the (weak) proxy — see DESIGN.md for the caveat. *)
        Buffer.add_string buf
          (Printf.sprintf "@%.3f/%d" (Stime.to_ms (Sim.now (Xcluster.sim c)))
             (Sim.pending_events (Xcluster.sim c)));
        Buffer.contents buf);
    violations =
      (fun () ->
        List.iter
          (fun p ->
            let d = Replica.detector (Xcluster.replica (cluster ()) p) in
            List.iter
              (fun s -> if not (List.mem s !blamed) then blamed := s :: !blamed)
              (Qs_fd.Detector.suspected d))
          correct;
        let in_model = within_budget ~f:spec.f !blamed in
        List.filter_map
          (fun (v : Monitor.violation) ->
            (* The monitor's per-epoch accounting has no in-model gate of its
               own; drop its bound findings once the path went out of model. *)
            if (not in_model) && v.check = "quorum-bound" then None
            else Some (v.check, v.detail))
          (Monitor.violations monitor)
        @ qsel_violations () @ history_violations ());
    quiescent_violations = (fun () -> []);
    snapshot = None;
    symmetry = None;
  }

let make spec =
  validate spec;
  match spec.protocol with
  | Quorum -> make_quorum spec
  | Follower -> make_follower spec
  | Xpaxos -> make_xpaxos Replica.Quorum_selection spec
  | Xpaxos_enum -> make_xpaxos Replica.Enumeration spec

(* ----------------------------------------------------------- regressions *)

let parse_kv text =
  let lines = String.split_on_char '\n' text in
  List.filter_map
    (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = '#' then None
      else
        match String.index_opt line '=' with
        | None -> Some (Error (Printf.sprintf "bad line %S (want key=value)" line))
        | Some i ->
          Some
            (Ok
               ( String.trim (String.sub line 0 i),
                 String.trim (String.sub line (i + 1) (String.length line - i - 1)) )))
    lines

type expectation = Expect_ok | Expect_violation of string

let parse_expect v =
  if v = "ok" then Ok Expect_ok
  else
    match String.index_opt v ':' with
    | Some i when String.sub v 0 i = "violation" ->
      Ok (Expect_violation (String.sub v (i + 1) (String.length v - i - 1)))
    | _ -> Error (Printf.sprintf "bad expect %S (want ok or violation:<check>)" v)

let check_expect expectation (violated : (string * string) list) =
  match expectation with
  | Expect_ok -> (
    match violated with
    | [] -> Ok ()
    | (check, detail) :: _ ->
      Error (Printf.sprintf "expected ok but %s was violated: %s" check detail))
  | Expect_violation name ->
    if List.exists (fun (check, _) -> check = name) violated then Ok ()
    else
      Error
        (Printf.sprintf "expected a %s violation but the replay %s" name
           (match violated with
           | [] -> "was clean"
           | (check, _) :: _ -> "only violated " ^ check))

let run_mc_regression kvs =
  let find k = List.assoc_opt k kvs in
  let find_all k = List.filter_map (fun (k', v) -> if k' = k then Some v else None) kvs in
  let int_of k default =
    match find k with
    | None -> Ok default
    | Some v -> (
      match int_of_string_opt v with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "bad %s=%S" k v))
  in
  let ( let* ) = Result.bind in
  let* protocol =
    match find "protocol" with
    | None -> Error "missing protocol="
    | Some v -> (
      match protocol_of_name v with
      | Some p -> Ok p
      | None -> Error (Printf.sprintf "unknown protocol %S" v))
  in
  let* n = int_of "n" 4 in
  let* f = int_of "f" 1 in
  let* requests = int_of "requests" (match protocol with Xpaxos | Xpaxos_enum -> 1 | _ -> 0) in
  let* crashes =
    List.fold_left
      (fun acc v ->
        let* acc = acc in
        match int_of_string_opt v with
        | Some p -> Ok (p :: acc)
        | None -> Error (Printf.sprintf "bad crash=%S" v))
      (Ok []) (find_all "crash")
  in
  let* amnesia =
    List.fold_left
      (fun acc v ->
        let* acc = acc in
        match int_of_string_opt v with
        | Some p -> Ok (p :: acc)
        | None -> Error (Printf.sprintf "bad amnesia=%S" v))
      (Ok []) (find_all "amnesia")
  in
  let* equivocate =
    List.fold_left
      (fun acc v ->
        let* acc = acc in
        match int_of_string_opt v with
        | Some p -> Ok (p :: acc)
        | None -> Error (Printf.sprintf "bad equivocate=%S" v))
      (Ok []) (find_all "equivocate")
  in
  let* churn =
    List.fold_left
      (fun acc v ->
        let* acc = acc in
        match int_of_string_opt v with
        | Some p -> Ok (p :: acc)
        | None -> Error (Printf.sprintf "bad churn=%S" v))
      (Ok []) (find_all "churn")
  in
  let* regions =
    List.fold_left
      (fun acc v ->
        let* acc = acc in
        match List.map int_of_string_opt (String.split_on_char ',' v) with
        | members when members <> [] && List.for_all Option.is_some members ->
          Ok (List.map Option.get members :: acc)
        | _ -> Error (Printf.sprintf "bad region=%S (want m1,m2)" v))
      (Ok []) (find_all "region")
  in
  let* injections =
    List.fold_left
      (fun acc v ->
        let* acc = acc in
        match String.index_opt v ':' with
        | None -> Error (Printf.sprintf "bad inject=%S (want p:s1,s2)" v)
        | Some i -> (
          let p = String.sub v 0 i and s = String.sub v (i + 1) (String.length v - i - 1) in
          match
            ( int_of_string_opt p,
              List.map int_of_string_opt (String.split_on_char ',' s) )
          with
          | Some p, suspects when List.for_all Option.is_some suspects ->
            Ok ((p, List.map Option.get suspects) :: acc)
          | _ -> Error (Printf.sprintf "bad inject=%S (want p:s1,s2)" v)))
      (Ok []) (find_all "inject")
  in
  let* seeded_bug =
    match find "seeded-bug" with
    | None -> Ok false
    | Some "quorum-size" -> Ok true
    | Some v -> Error (Printf.sprintf "unknown seeded-bug=%S" v)
  in
  let* schedule =
    match find "schedule" with
    | None -> Error "missing schedule="
    | Some v -> ( try Ok (Schedule.of_string v) with Invalid_argument m -> Error m)
  in
  let* expectation =
    match find "expect" with None -> Error "missing expect=" | Some v -> parse_expect v
  in
  let spec =
    {
      protocol;
      n;
      f;
      injections = List.rev injections;
      crashes = List.rev crashes;
      amnesia = List.rev amnesia;
      equivocate = List.rev equivocate;
      churn = List.rev churn;
      regions = List.rev regions;
      requests;
      seeded_bug;
    }
  in
  let* system = try Ok (make spec) with Invalid_argument m -> Error m in
  check_expect expectation (Engine.replay system schedule)

let run_chaos_regression kvs =
  let find k = List.assoc_opt k kvs in
  let ( let* ) = Result.bind in
  let* stack =
    match find "stack" with
    | None -> Error "missing stack="
    | Some v -> (
      match Chaos.of_name v with
      | Some s -> Ok s
      | None -> Error (Printf.sprintf "unknown stack %S" v))
  in
  let defaults = Chaos.default_params stack in
  let int_of k default =
    match find k with
    | None -> Ok default
    | Some v -> (
      match int_of_string_opt v with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "bad %s=%S" k v))
  in
  let* seed = int_of "seed" 0 in
  let* n = int_of "n" defaults.Chaos.n in
  let* f = int_of "f" defaults.Chaos.f in
  let* horizon_ms = int_of "horizon-ms" (int_of_float (Stime.to_ms defaults.Chaos.horizon)) in
  let* requests = int_of "requests" defaults.Chaos.requests in
  let* spares =
    List.fold_left
      (fun acc v ->
        let* acc = acc in
        match int_of_string_opt v with
        | Some p -> Ok (acc @ [ p ])
        | None -> Error (Printf.sprintf "bad spare=%S" v))
      (Ok [])
      (List.filter_map (fun (k, v) -> if k = "spare" then Some v else None) kvs)
  in
  let* schedule =
    match find "faults" with
    | None -> Ok []
    | Some v -> ( try Ok (Fault.of_string ~n v) with Invalid_argument m -> Error m)
  in
  let* min_proofs = int_of "min-proofs" 0 in
  let* min_reconfigs = int_of "min-reconfigs" 0 in
  let* min_isect_pairs = int_of "min-intersection-pairs" 0 in
  let* policy =
    match find "policy" with
    | None -> Ok defaults.Chaos.policy
    | Some v -> (
      match Qs_core.Selection_policy.of_string v with
      | Some p -> Ok p
      | None -> Error (Printf.sprintf "bad policy=%S" v))
  in
  let* expectation =
    match find "expect" with None -> Error "missing expect=" | Some v -> parse_expect v
  in
  let params =
    {
      defaults with
      Chaos.n;
      f;
      horizon = Stime.of_ms horizon_ms;
      requests;
      spares;
      policy;
    }
  in
  let model = Fault.classify ~n ~f schedule in
  let outcome = Chaos.execute stack ~params ~seed ~model schedule in
  if outcome.Qs_faults.Campaign.checks = 0 then
    Error "vacuous pin: the monitor ran no checks"
  else if outcome.Qs_faults.Campaign.proofs < min_proofs then
    (* Guards commission pins against going vacuous: a schedule drift that
       stops the equivocator from ever being convicted must fail loudly,
       not pass because nothing happened. *)
    Error
      (Printf.sprintf "vacuous pin: %d commission proofs, want at least %d"
         outcome.Qs_faults.Campaign.proofs min_proofs)
  else if outcome.Qs_faults.Campaign.reconfigs < min_reconfigs then
    (* Same guard for churn pins: a drift that stops the joins/leaves from
       ever reconfiguring the member selectors must not pass silently. *)
    Error
      (Printf.sprintf "vacuous pin: %d reconfigurations, want at least %d"
         outcome.Qs_faults.Campaign.reconfigs min_reconfigs)
  else if outcome.Qs_faults.Campaign.isect_pairs < min_isect_pairs then
    (* And for correlated-loss pins: the run must actually have compared
       distinct quorums under the intersection invariant — a drift that
       stops the region loss from ever forcing a quorum change would
       otherwise pass with the invariant never exercised. *)
    Error
      (Printf.sprintf "vacuous pin: %d intersection pairs compared, want at least %d"
         outcome.Qs_faults.Campaign.isect_pairs min_isect_pairs)
  else
    check_expect expectation
      (List.map
         (fun (v : Monitor.violation) -> (v.check, v.detail))
         outcome.Qs_faults.Campaign.violations)

let run_regression ~path =
  let read () =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Ok (really_input_string ic (in_channel_length ic)))
    with Sys_error m -> Error m
  in
  match read () with
  | Error m -> Error m
  | Ok text -> (
    let kvs = parse_kv text in
    match List.find_map (function Error m -> Some m | Ok _ -> None) kvs with
    | Some m -> Error m
    | None -> (
      let kvs = List.filter_map Result.to_option kvs in
      Fun.protect
        ~finally:(fun () -> QS.test_buggy_quorum_size := false)
        (fun () ->
          match List.assoc_opt "kind" kvs with
          | Some "mc" -> run_mc_regression kvs
          | Some "chaos" -> run_chaos_regression kvs
          | Some k -> Error (Printf.sprintf "unknown kind %S" k)
          | None -> Error "missing kind=")))
