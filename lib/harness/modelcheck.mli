(** Protocol bindings for the small-scope model checker.

    Builds {!Qs_mc.Engine.system} values for the three simulated stacks the
    checker knows how to drive:

    - [quorum] — bare Algorithm-1 instances over an unordered controlled
      network. Suspicions are injected as initial ⟨SUSPECTED⟩ events; every
      delivery interleaving of the resulting UPDATE gossip is explored.
      Each process in [amnesia] additionally contributes an [Amnesia p]
      choice, enabled once at every state until taken: the crash wipes the
      process's volatile selection state ({!Qs_core.Quorum_select.amnesia}),
      drops its in-flight messages, and opens a {!Qs_recovery.Rejoin} round
      whose State_req/State_resp traffic parks on the same controlled
      network — so recovery interleaves freely with the UPDATE gossip.
      Each process in [equivocate] likewise contributes an [Equivocate p]
      choice, enabled once at every state: two validly-signed conflicting
      row variants leave for two different peers, and exploration covers
      every interleaving of the contradictory gossip.
      Each process in [churn] contributes a [Churn p] choice, enabled once
      at every state: one atomic membership change — [p] leaves and
      instantly rejoins under a fresh identity slot, every process
      reconfigures width-preserving with [p]'s row wiped and the config
      epoch bumped, [p]'s in-flight messages die, and a rejoin round
      bootstraps its state back — so stale pre-churn gossip interleaves
      freely with the reconfiguration point and the recovery traffic.
      Each declared fault domain in [regions] contributes a [Region i]
      choice, enabled once at every state: every member goes mute at once
      (messages addressed to members die, their own pre-loss gossip stays
      in flight), modeling a correlated whole-region loss; from then on
      every check ranges over the survivors.
      Checks: |Q| = n − f on every issued quorum, Theorem 3's per-epoch
      bound, instantaneous no-suspicion (the current quorum is independent
      in the issuer's suspect graph), pairwise quorum intersection — two
      live correct processes at the same (config epoch, detector epoch)
      must hold standing quorums overlapping in at least [n − 2f]
      ({!Qs_core.Quorum_intersection.threshold}) — and, at quiescent
      states, agreement and matrix convergence. A pending amnesia choice
      keeps a state non-quiescent, so every terminal state has all declared
      crashes behind it and the rejoins completed (controlled delivery is
      reliable and [needed = 1]). Provides the snapshot fast path.
    - [follower] — Algorithm-2 instances over a FIFO controlled network
      with the emulated failure detector of {!Fcluster}: open FOLLOWERS
      expectations become [Fire p] choices. Checks: |Q| = q, Theorem 9's
      [3f+1] bound, leader membership, quiescent agreement on
      (leader, quorum). Snapshot fast path included.
    - [xpaxos] / [xpaxos-enum] — a full {!Qs_xpaxos.Xcluster} (quorum
      selection vs. view enumeration) with requests submitted directly to
      every replica. Timers (detector deadlines) surface as [Step] choices
      popping the simulator queue. Checks: the PR-2 {!Qs_faults.Monitor}
      invariants (quorum-bound via the journal; no-suspicion is disabled —
      under frozen virtual time the settle window is meaningless, so the
      instantaneous independence check replaces it), prefix-consistency and
      exactly-once over executed histories, and the embedded Algorithm-1
      assertions in quorum-selection mode. Replay-only (no snapshot): the
      simulator queue and the monitor's accumulated state cannot be rolled
      back in place.

    Also home to the [test/regressions/] corpus format: plain-text
    [key=value] files replayed either through {!Qs_mc.Engine.replay}
    ([kind=mc]) or through a monitored {!Chaos.execute} run
    ([kind=chaos]). *)

type protocol = Quorum | Follower | Xpaxos | Xpaxos_enum

val protocol_name : protocol -> string

val protocol_of_name : string -> protocol option
(** ["quorum"], ["follower"], ["xpaxos"] (alias ["xpaxos-qs"]),
    ["xpaxos-enum"]. *)

val all : protocol list

type spec = {
  protocol : protocol;
  n : int;
  f : int;
  injections : (int * int list) list;
      (** Initial ⟨SUSPECTED, S⟩ events: [(p, S)] feeds [S] to process [p]'s
          selection instance before exploration starts. Ignored by the
          XPaxos instances (suspicions there come from timer [Step]s). *)
  crashes : int list;
      (** Processes crashed from the start: sends and deliveries dropped,
          excluded from every correctness check. At most [f]. *)
  amnesia : int list;
      (** Processes that may suffer one amnesia crash each, at any explored
          point ([quorum] protocol only). They recover via the rejoin
          protocol and stay subject to every check; mute and amnesia
          crashes together must stay within [f]. *)
  equivocate : int list;
      (** Processes that may commit one equivocation each, at any explored
          point ([quorum] protocol only): an [Equivocate p] choice sends two
          validly-signed, pointwise-incomparable variants of [p]'s own
          suspicion row to its first two peers. Forward-on-change gossip
          spreads both, so quiescent matrix convergence and agreement are
          checked against the max-merge union. Equivocators are
          Byzantine-faulty and share the [f] budget with crashes. *)
  churn : int list;
      (** Processes that may churn once each, at any explored point
          ([quorum] protocol only): a [Churn p] choice atomically removes
          [p] and readmits it under a fresh slot — every process runs
          {!Qs_core.Quorum_select.reconfigure} at the same width with
          [of_new p = -1] and a bumped config epoch, and [p] rejoins
          through the recovery protocol. A mid-rejoin churned process is
          briefly stale, so churn shares the [f] budget with crashes and
          equivocators. *)
  regions : int list list;
      (** Correlated fault domains ([quorum] protocol only): domain [i]'s
          member list backs a [Region i] choice, enabled once at every
          explored point, that mutes every member at once and drops their
          inbound in-flight messages. Lost members are faulty — excluded
          from checks from the loss on — and every member draws on the
          same [f] budget as a crash. *)
  requests : int;  (** Client requests submitted up front (XPaxos only). *)
  seeded_bug : bool;
      (** Arm {!Qs_core.Quorum_select.test_buggy_quorum_size} inside
          [reset], so the checker hunts a known undersized-quorum bug.
          Only meaningful for [quorum] and [xpaxos]. *)
}

val default_spec : protocol -> spec
(** n = 4, f = 1. [quorum]: process 0 initially suspects 3; [follower]:
    process 1 initially suspects the default leader 0; XPaxos: one
    request, no injections. *)

val validate : spec -> unit
(** Raises [Invalid_argument] on out-of-range pids, more than [f] faulty
    processes (mute, amnesia, equivocators, churn and region members
    combined), amnesia / equivocation / churn / regions outside the
    [quorum] protocol or overlapping [crashes], an empty or duplicate-member
    region, or a [seeded_bug] on a protocol that has no embedded
    Algorithm 1. *)

val make : spec -> Qs_mc.Engine.system
(** The system is self-contained: [reset] rebuilds the cluster, re-arms
    crashes, re-injects suspicions and resubmits requests, and clears the
    process-wide metrics registry and journal (and the test bug flag) so
    replays are deterministic. *)

(** {2 Regression corpus}

    A [.sched] file is [key=value] lines ([#] comments, blank lines
    ignored). Two kinds:

    [kind=mc] — replay a model-checker schedule:
    {v
    kind=mc
    protocol=quorum          # quorum|follower|xpaxos|xpaxos-enum
    n=4                      # optional, default 4
    f=1                      # optional, default 1
    inject=0:3               # repeatable, "p:s1,s2"
    crash=2                  # repeatable
    amnesia=1                # repeatable, quorum only
    equivocate=0             # repeatable, quorum only
    churn=2                  # repeatable, quorum only
    region=4,5               # repeatable, quorum only: one fault domain's
                             # members per line, in region-id order
    requests=1               # optional (xpaxos)
    seeded-bug=quorum-size   # optional, arms the test bug
    schedule=d0;d2;t
    expect=ok                # or violation:<check>
    v}

    [kind=chaos] — one monitored {!Chaos.execute} run:
    {v
    kind=chaos
    stack=xpaxos-qs
    seed=7
    n=5                      # optional, default from Chaos.default_params
    f=2
    horizon-ms=400
    requests=3               # optional
    spare=7                  # repeatable: universe pids outside the
                             # initial membership (churn pins)
    faults=delay p0->p2 by 60.000ms @ 0.000ms   # Fault.to_string format
    policy=diverse:2:r0,r0,r1,r1,r2   # optional Selection_policy.of_string
    min-proofs=1             # optional vacuity guard (commission pins)
    min-reconfigs=6          # optional vacuity guard (churn pins): the
                             # run must apply at least this many
                             # per-process reconfigurations
    min-intersection-pairs=1 # optional vacuity guard (correlated pins):
                             # the monitor must compare at least this
                             # many distinct quorum pairs
    expect=ok                # or violation:<check>
    v} *)

val run_regression : path:string -> (unit, string) result
(** Parse and replay one corpus file; [Error] explains the first way the
    file's [expect] line was not met (or a parse problem). Resets the
    seeded-bug flag on the way out regardless of outcome. *)
