module Prng = Qs_stdx.Prng
module Sha256 = Qs_crypto.Sha256
module Campaign = Qs_faults.Campaign
module Json = Qs_obs.Json

type choice_info = {
  choice : Schedule.choice;
  canon : string;
  receiver : int option;
}

type system = {
  reset : unit -> unit;
  enabled : unit -> choice_info list;
  apply : Schedule.choice -> bool;
  fingerprint : unit -> string;
  violations : unit -> (string * string) list;
  quiescent_violations : unit -> (string * string) list;
  snapshot : (unit -> unit -> unit) option;
  symmetry : (unit -> string) option;
}

type violation = {
  check : string;
  detail : string;
  schedule : Schedule.t;
  shrink_steps : int;
}

type mode = Exhaustive of { depth : int } | Random of { seed : int; iters : int }

type report = {
  mode : mode;
  visited : int;
  revisit_pruned : int;
  sleep_pruned : int;
  transitions : int;
  quiescent : int;
  truncated : int;
  complete : bool;
  violations : violation list;
}

let ok r = r.violations = []

(* Two choices commute iff they are deliveries to distinct processes: the
   receiving handler only mutates its own process's state (and appends
   sends, which the id-free fingerprint orders canonically), so either order
   reaches the same global state. Steps and fires touch shared state (the
   clock, a detector) and are never treated as independent. *)
let commutes a b =
  match (a.receiver, b.receiver) with
  | Some ra, Some rb -> ra <> rb
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Replay + shrinking *)

let rematerialize (system : system) prefix =
  system.reset ();
  List.iter (fun c -> ignore (system.apply c)) prefix

let replay (system : system) schedule =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let note vs =
    List.iter
      (fun (check, detail) ->
        let key = check ^ "|" ^ detail in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.replace seen key ();
          acc := (check, detail) :: !acc
        end)
      vs
  in
  system.reset ();
  note (system.violations ());
  List.iter
    (fun c ->
      ignore (system.apply c);
      note (system.violations ()))
    schedule;
  if system.enabled () = [] then note (system.quiescent_violations ());
  List.rev !acc

let remove_each schedule =
  List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) schedule) schedule

(* Greedy shrinking replays one candidate per oracle call, and candidate i
   of the current value shares its first i choices with the value itself.
   When the system has a snapshot fast path we memoize (snapshot,
   violations-so-far) at every prefix reached, so a candidate replay
   restores the longest cached prefix and only applies its tail instead of
   resetting and reapplying everything. Restore thunks are treated as
   single-use (the explorer's discipline), so a cache hit re-arms its entry
   with a fresh snapshot right after restoring. *)
let shrink ?(memo = true) system ~check schedule =
  match (if memo then system.snapshot else None) with
  | None ->
    Campaign.greedy_shrink ~candidates:remove_each
      ~still_fails:(fun candidate ->
        List.exists (fun (c, _) -> c = check) (replay system candidate))
      schedule
  | Some snap ->
    let cache : (string, (unit -> unit) * (string * string) list) Hashtbl.t =
      Hashtbl.create 64
    in
    let still_fails candidate =
      let arr = Array.of_list candidate in
      let n = Array.length arr in
      let keys = Array.make (n + 1) "" in
      for i = 1 to n do
        let c = Schedule.choice_to_string arr.(i - 1) in
        keys.(i) <- (if i = 1 then c else keys.(i - 1) ^ ";" ^ c)
      done;
      let start = ref 0 in
      (try
         for i = n downto 1 do
           if Hashtbl.mem cache keys.(i) then begin
             start := i;
             raise Exit
           end
         done
       with Exit -> ());
      let seen = Hashtbl.create 8 in
      let acc = ref [] in
      let note vs =
        List.iter
          (fun (c, d) ->
            let key = c ^ "|" ^ d in
            if not (Hashtbl.mem seen key) then begin
              Hashtbl.replace seen key ();
              acc := (c, d) :: !acc
            end)
          vs
      in
      (match Hashtbl.find_opt cache keys.(!start) with
       | Some (restore, viols) ->
         restore ();
         Hashtbl.replace cache keys.(!start) (snap (), viols);
         acc := viols;
         List.iter (fun (c, d) -> Hashtbl.replace seen (c ^ "|" ^ d) ()) viols
       | None ->
         (* Only the empty prefix can be uncached here. *)
         system.reset ();
         note (system.violations ());
         Hashtbl.replace cache "" (snap (), !acc));
      for i = !start to n - 1 do
        ignore (system.apply arr.(i));
        note (system.violations ());
        if Hashtbl.length cache < 512 then
          Hashtbl.replace cache keys.(i + 1) (snap (), !acc)
      done;
      if system.enabled () = [] then note (system.quiescent_violations ());
      List.exists (fun (c, _) -> c = check) !acc
    in
    Campaign.greedy_shrink ~candidates:remove_each ~still_fails schedule

let shrink_violations system ~shrink:do_shrink violations =
  List.map
    (fun v ->
      if not do_shrink then v
      else
        let schedule, steps = shrink system ~check:v.check v.schedule in
        { v with schedule; shrink_steps = steps })
    violations

(* ------------------------------------------------------------------ *)
(* Exhaustive exploration *)

(* Fingerprint cache combining budget-aware iterative deepening with sleep
   sets. A cache entry (b, S) means: this state was explored with [b]
   remaining choices and sleep set [S] (canonical keys, sorted). A revisit
   with budget b' and sleep S' is redundant iff some entry has b ≥ b' and
   S ⊆ S' — the earlier visit went at least as deep and explored at least
   the transitions the new visit would (sleep sets only remove transitions).
   Plain fingerprint pruning without the subset condition is unsound when
   combined with sleep sets; see DESIGN.md. *)
let rec subset a b =
  match (a, b) with
  | [], _ -> true
  | _, [] -> false
  | x :: a', y :: b' ->
    if x = y then subset a' b' else if compare y x < 0 then subset a b' else false

let dominated entries budget sleep =
  List.exists (fun (b, s) -> b >= budget && subset s sleep) entries

let insert_entry entries budget sleep =
  (budget, sleep)
  :: List.filter (fun (b, s) -> not (budget >= b && subset sleep s)) entries

(* The recursive DFS visit, shared verbatim between the sequential explorer
   below and the domain-sharded one in {!Shard}: a shard explores a root
   subtree by calling [visit] with its own stats/tables. [fpf] is the
   fingerprint in use (plain, or the symmetry-canonical one); [qfps], when
   given, switches quiescent accounting from per-visit events to distinct
   fingerprints, which is what makes per-shard quiescent counts mergeable
   by set union. *)
module Internal = struct
  type stats = {
    mutable s_visited : int;
    mutable s_revisit : int;
    mutable s_sleep : int;
    mutable s_transitions : int;
    mutable s_quiescent : int;
    mutable s_truncated : int;
  }

  let new_stats () =
    {
      s_visited = 0;
      s_revisit = 0;
      s_sleep = 0;
      s_transitions = 0;
      s_quiescent = 0;
      s_truncated = 0;
    }

  type table = (Sha256.digest, (int * string list) list) Hashtbl.t

  let fingerprint_for ~sym (system : system) =
    if not sym then system.fingerprint
    else
      match system.symmetry with
      | Some canon -> canon
      | None -> system.fingerprint

  (* [visit] runs with the state matching [path] materialized; [sleep] is
     the inherited sleep set (choices whose exploration here would be
     redundant with a sibling subtree already explored). *)
  let rec visit (system : system) ~fpf ~por ~stats ~(visited : table) ~qfps
      ~note ~path ~budget ~sleep =
    note path (system.violations ());
    let fp = Sha256.digest_string (fpf ()) in
    let sleep_canon = List.sort compare (List.map (fun ci -> ci.canon) sleep) in
    match Hashtbl.find_opt visited fp with
    | Some entries when dominated entries budget sleep_canon ->
      stats.s_revisit <- stats.s_revisit + 1
    | previous ->
      (match previous with
       | None -> stats.s_visited <- stats.s_visited + 1
       | Some _ -> ());
      Hashtbl.replace visited fp
        (insert_entry (Option.value ~default:[] previous) budget sleep_canon);
      let en = system.enabled () in
      if en = [] then begin
        (match qfps with
         | None -> stats.s_quiescent <- stats.s_quiescent + 1
         | Some t ->
           if not (Hashtbl.mem t fp) then begin
             Hashtbl.replace t fp ();
             stats.s_quiescent <- stats.s_quiescent + 1
           end);
        note path (system.quiescent_violations ())
      end
      else if budget = 0 then stats.s_truncated <- stats.s_truncated + 1
      else begin
        (* Dedupe by canonical key: two pending copies of one message are
           the same transition. Then explore left to right, letting later
           siblings sleep on earlier independent ones. *)
        let slept : (string, unit) Hashtbl.t = Hashtbl.create 8 in
        List.iter (fun ci -> Hashtbl.replace slept ci.canon ()) sleep;
        let explored = ref sleep in
        List.iter
          (fun ci ->
            if Hashtbl.mem slept ci.canon then stats.s_sleep <- stats.s_sleep + 1
            else begin
              let child_sleep = List.filter (fun b -> commutes b ci) !explored in
              stats.s_transitions <- stats.s_transitions + 1;
              (match system.snapshot with
               | Some snap ->
                 let restore = snap () in
                 ignore (system.apply ci.choice);
                 visit system ~fpf ~por ~stats ~visited ~qfps ~note
                   ~path:(path @ [ ci.choice ])
                   ~budget:(budget - 1) ~sleep:child_sleep;
                 restore ()
               | None ->
                 rematerialize system (path @ [ ci.choice ]);
                 visit system ~fpf ~por ~stats ~visited ~qfps ~note
                   ~path:(path @ [ ci.choice ])
                   ~budget:(budget - 1) ~sleep:child_sleep);
              Hashtbl.replace slept ci.canon ();
              if por then explored := !explored @ [ ci ]
            end)
          en
      end
end

let explore ?(por = true) ?(shrink = true) ?(sym = false) ~depth
    (system : system) =
  if depth < 1 then invalid_arg "Engine.explore: depth must be >= 1";
  let fpf = Internal.fingerprint_for ~sym system in
  let found : (string, violation) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  let note path vs =
    List.iter
      (fun (check, detail) ->
        if not (Hashtbl.mem found check) then begin
          Hashtbl.replace found check { check; detail; schedule = path; shrink_steps = 0 };
          order := check :: !order
        end)
      vs
  in
  let run_iteration bound =
    let stats = Internal.new_stats () in
    let visited : Internal.table = Hashtbl.create 4096 in
    system.reset ();
    Internal.visit system ~fpf ~por ~stats ~visited ~qfps:None ~note ~path:[]
      ~budget:bound ~sleep:[];
    stats
  in
  (* Iterative deepening: shallow bounds find the shortest counterexamples
     first; once an iteration runs without truncation the reachable graph is
     fully explored and deeper bounds cannot add states. *)
  let rec deepen bound =
    let stats = run_iteration bound in
    if stats.s_truncated = 0 || bound = depth then (stats, bound)
    else deepen (bound + 1)
  in
  let stats, _ = deepen 1 in
  let violations =
    List.rev_map (fun check -> Hashtbl.find found check) !order
    |> shrink_violations system ~shrink
  in
  {
    mode = Exhaustive { depth };
    visited = stats.s_visited;
    revisit_pruned = stats.s_revisit;
    sleep_pruned = stats.s_sleep;
    transitions = stats.s_transitions;
    quiescent = stats.s_quiescent;
    truncated = stats.s_truncated;
    complete = stats.s_truncated = 0;
    violations;
  }

(* ------------------------------------------------------------------ *)
(* Randomized walks *)

let random ?(max_steps = 200) ?(shrink = true) ~seed ~iters (system : system) =
  if max_steps < 1 then invalid_arg "Engine.random: max_steps must be >= 1";
  let rng = Prng.of_int seed in
  let fps = Hashtbl.create 1024 in
  let transitions = ref 0 in
  let quiescent = ref 0 in
  let truncated = ref 0 in
  let found : (string, violation) Hashtbl.t = Hashtbl.create 4 in
  let order = ref [] in
  let hit = ref false in
  let note path vs =
    List.iter
      (fun (check, detail) ->
        hit := true;
        if not (Hashtbl.mem found check) then begin
          Hashtbl.replace found check { check; detail; schedule = path; shrink_steps = 0 };
          order := check :: !order
        end)
      vs
  in
  let i = ref 0 in
  while (not !hit) && !i < iters do
    incr i;
    system.reset ();
    let path = ref [] in
    note !path (system.violations ());
    let steps = ref 0 in
    let stop = ref false in
    while (not !stop) && (not !hit) && !steps < max_steps do
      let fp = Sha256.digest_string (system.fingerprint ()) in
      if not (Hashtbl.mem fps fp) then Hashtbl.replace fps fp ();
      match system.enabled () with
      | [] ->
        incr quiescent;
        note !path (system.quiescent_violations ());
        stop := true
      | en ->
        let ci = Prng.pick_list rng en in
        ignore (system.apply ci.choice);
        incr transitions;
        incr steps;
        path := !path @ [ ci.choice ];
        note !path (system.violations ())
    done;
    if (not !stop) && not !hit then incr truncated
  done;
  let violations =
    List.rev_map (fun check -> Hashtbl.find found check) !order
    |> shrink_violations system ~shrink
  in
  {
    mode = Random { seed; iters };
    visited = Hashtbl.length fps;
    revisit_pruned = 0;
    sleep_pruned = 0;
    transitions = !transitions;
    quiescent = !quiescent;
    truncated = !truncated;
    complete = false;
    violations;
  }

(* ------------------------------------------------------------------ *)
(* Rendering *)

let mode_to_string = function
  | Exhaustive { depth } -> Printf.sprintf "exhaustive to depth %d" depth
  | Random { seed; iters } -> Printf.sprintf "random (seed %d, %d walks)" seed iters

let report_to_string r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "%s: %s\n" (mode_to_string r.mode)
       (match r.mode with
        | Exhaustive _ when r.complete -> "state space exhausted"
        | Exhaustive _ -> "bounded (paths truncated at depth limit)"
        | Random _ -> if r.violations = [] then "no violation found" else "violation found"));
  Buffer.add_string b (Printf.sprintf "  states visited   : %d\n" r.visited);
  Buffer.add_string b (Printf.sprintf "  pruned (revisit) : %d\n" r.revisit_pruned);
  Buffer.add_string b (Printf.sprintf "  pruned (sleep)   : %d\n" r.sleep_pruned);
  Buffer.add_string b (Printf.sprintf "  transitions      : %d\n" r.transitions);
  Buffer.add_string b (Printf.sprintf "  quiescent states : %d\n" r.quiescent);
  Buffer.add_string b (Printf.sprintf "  truncated paths  : %d\n" r.truncated);
  Buffer.add_string b (Printf.sprintf "  violations       : %d\n" (List.length r.violations));
  List.iter
    (fun v ->
      Buffer.add_string b
        (Printf.sprintf "  VIOLATION %s: %s\n    schedule: %s (%d shrink attempts)\n"
           v.check v.detail
           (let s = Schedule.to_string v.schedule in
            if s = "" then "(empty)" else s)
           v.shrink_steps))
    r.violations;
  Buffer.contents b

let violation_to_json v =
  Json.Obj
    [
      ("check", Json.String v.check);
      ("detail", Json.String v.detail);
      ("schedule", Json.String (Schedule.to_string v.schedule));
      ("shrink_steps", Json.Int v.shrink_steps);
    ]

let report_to_json r =
  Json.Obj
    [
      ( "mode",
        match r.mode with
        | Exhaustive { depth } ->
          Json.Obj [ ("kind", Json.String "exhaustive"); ("depth", Json.Int depth) ]
        | Random { seed; iters } ->
          Json.Obj
            [
              ("kind", Json.String "random");
              ("seed", Json.Int seed);
              ("iters", Json.Int iters);
            ] );
      ("visited", Json.Int r.visited);
      ("revisit_pruned", Json.Int r.revisit_pruned);
      ("sleep_pruned", Json.Int r.sleep_pruned);
      ("transitions", Json.Int r.transitions);
      ("quiescent", Json.Int r.quiescent);
      ("truncated", Json.Int r.truncated);
      ("complete", Json.Bool r.complete);
      ("ok", Json.Bool (ok r));
      ("violations", Json.List (List.map violation_to_json r.violations));
    ]
