(** Small-scope model checker: iterative-deepening DFS over all delivery
    interleavings of a deterministic system, with fingerprint pruning and a
    sleep-set-style partial-order reduction, plus a randomized walker
    sharing the same choice-point interface for scopes exhaustion can't
    reach. Violations come out as minimal replayable {!Schedule.t}s, shrunk
    with {!Qs_faults.Campaign.greedy_shrink}.

    The engine is {e stateless} in the model-checking sense: a state is
    (re)materialized either by replaying its choice prefix from the
    deterministic initial state, or — when the system provides the optional
    {!system.snapshot} fast path — by rolling mutable state back in place.
    See DESIGN.md, "Model checking & schedule exploration", for the state
    graph, the POR commutativity argument and the fingerprint soundness
    caveats. *)

(** One enabled transition, with the metadata the reducer needs, captured
    {e while the state it belongs to is materialized} (pending-message ids
    are only meaningful there). *)
type choice_info = {
  choice : Schedule.choice;
  canon : string;
      (** Canonical id-free key — e.g. ["1>3#<payload digest>"] for a
          delivery — stable across the different pending-id numberings two
          commuting paths assign. Sleep sets and duplicate-choice detection
          compare these, never raw ids. *)
  receiver : int option;
      (** Destination process of a delivery; [None] for [Step]/[Fire].
          Two choices commute iff both have receivers and they differ. *)
}

type system = {
  reset : unit -> unit;
      (** Rebuild the deterministic initial state (faults installed,
          requests submitted, module-level observability state cleared). *)
  enabled : unit -> choice_info list;
      (** Enabled transitions of the current state, deterministic order. *)
  apply : Schedule.choice -> bool;
      (** Execute one choice; [false] if it was a no-op (unknown id during
          replay of an edited schedule — treated as a skip). *)
  fingerprint : unit -> string;
      (** Canonical encoding of the current global state: process states
          plus the in-flight message {e multiset} (id-free — see DESIGN).
          The engine hashes it, so length is fine. *)
  violations : unit -> (string * string) list;
      (** (check, detail) pairs violated in / accumulated up to the current
          state. Must be stable under re-evaluation. *)
  quiescent_violations : unit -> (string * string) list;
      (** Extra checks that only make sense with no transition enabled
          (agreement, convergence). *)
  snapshot : (unit -> unit -> unit) option;
      (** Optional fork/restore fast path: capture now, get back a restore
          thunk. When [None], the engine re-materializes states by replaying
          the choice prefix from [reset]. *)
  symmetry : (unit -> string) option;
      (** Optional symmetry-canonical fingerprint of the current state: the
          lexicographic minimum of {!system.fingerprint}-equivalent renders
          over every process-identity permutation that fixes the instance's
          distinguished pids (fault injection sources/targets). Two states
          related by such a permutation canonicalize identically, so the
          explorer prunes whole orbits; [None] where the instance has no
          usable symmetry. Only consulted under [explore ~sym:true]. *)
}

type violation = {
  check : string;
  detail : string;
  schedule : Schedule.t;  (** Minimal (shrunk) replayable reproduction. *)
  shrink_steps : int;
}

type mode = Exhaustive of { depth : int } | Random of { seed : int; iters : int }

type report = {
  mode : mode;
  visited : int;  (** Distinct state fingerprints. *)
  revisit_pruned : int;  (** Subtrees cut by the fingerprint cache. *)
  sleep_pruned : int;
      (** Transitions cut as redundant: sleep-set reduction plus
          duplicate-canon dedup (two pending copies of one message are one
          transition) — the latter fires even with [por:false]. *)
  transitions : int;  (** Choices actually executed (exploration only). *)
  quiescent : int;  (** States with no enabled transition. *)
  truncated : int;  (** Paths cut by the depth bound. *)
  complete : bool;
      (** Whole reachable graph explored within the bound (no truncation in
          the deepest iteration) — "exhausted cleanly". *)
  violations : violation list;
}

val ok : report -> bool

val commutes : choice_info -> choice_info -> bool
(** The POR independence relation: two choices commute iff both are
    deliveries to distinct processes. *)

val explore :
  ?por:bool -> ?shrink:bool -> ?sym:bool -> depth:int -> system -> report
(** Iterative-deepening DFS to [depth] choices. [por] (default true) turns
    the sleep-set reduction on; [shrink] (default true) minimizes every
    counterexample; [sym] (default false) prunes on the
    {!system.symmetry}-canonical fingerprint instead of the plain one,
    collapsing identity-permuted states into one orbit representative.
    Stats are those of the deepest iteration run; a violation keeps the
    shortest schedule that reaches it. *)

val random : ?max_steps:int -> ?shrink:bool -> seed:int -> iters:int -> system -> report
(** Seeded random walks ([max_steps] each, default 200), stopping at the
    first violation. Same seed, same walks, same verdict. *)

val replay : system -> Schedule.t -> (string * string) list
(** Reset, apply every choice (unknown ids skip), and return every (check,
    detail) violated at any point along the way — the regression-corpus
    runner and the shrinker's oracle. *)

val shrink :
  ?memo:bool -> system -> check:string -> Schedule.t -> Schedule.t * int
(** Greedy one-choice-removed minimization (via
    {!Qs_faults.Campaign.greedy_shrink}) of a schedule that violates
    [check]; returns the locally-minimal schedule and replays spent. With
    [memo] (default true) and a snapshotting system, candidate replays
    fast-forward through memoized shared prefixes instead of resetting and
    reapplying from scratch — same minimum, same oracle-call count, far
    fewer [apply]s. *)

val shrink_violations :
  system -> shrink:bool -> violation list -> violation list
(** Minimize each violation's schedule in place (no-op when [shrink] is
    false) — shared by {!explore}, {!random} and {!Shard}. *)

(** Exploration internals shared with {!Shard} (the domain-sharded
    explorer). Not a stable API: the invariants that make per-shard results
    mergeable are documented on {!Shard}. *)
module Internal : sig
  type stats = {
    mutable s_visited : int;
    mutable s_revisit : int;
    mutable s_sleep : int;
    mutable s_transitions : int;
    mutable s_quiescent : int;
    mutable s_truncated : int;
  }

  val new_stats : unit -> stats

  type table = (Qs_crypto.Sha256.digest, (int * string list) list) Hashtbl.t
  (** Fingerprint cache: per fingerprint, the (budget, sorted sleep-canon)
      pairs it was explored under — see the dominance rule in engine.ml. *)

  val fingerprint_for : sym:bool -> system -> unit -> string
  (** The fingerprint function [explore ~sym] actually uses. *)

  val visit :
    system ->
    fpf:(unit -> string) ->
    por:bool ->
    stats:stats ->
    visited:table ->
    qfps:(Qs_crypto.Sha256.digest, unit) Hashtbl.t option ->
    note:(Schedule.t -> (string * string) list -> unit) ->
    path:Schedule.t ->
    budget:int ->
    sleep:choice_info list ->
    unit
  (** One DFS visit of the already-materialized state at [path]. [qfps],
      when given, switches quiescent accounting from per-visit events to
      distinct fingerprints (mergeable across shards by set union). *)
end

val report_to_string : report -> string

val report_to_json : report -> Qs_obs.Json.t
