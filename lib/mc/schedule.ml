type choice =
  | Deliver of int
  | Step
  | Fire of int
  | Amnesia of int
  | Equivocate of int
  | Churn of int
  | Region of int

type t = choice list

let choice_to_string = function
  | Deliver id -> "d" ^ string_of_int id
  | Step -> "t"
  | Fire p -> "f" ^ string_of_int p
  | Amnesia p -> "a" ^ string_of_int p
  | Equivocate p -> "e" ^ string_of_int p
  | Churn p -> "c" ^ string_of_int p
  | Region i -> "r" ^ string_of_int i

let to_string t = String.concat ";" (List.map choice_to_string t)

let choice_of_string s =
  let fail () = invalid_arg (Printf.sprintf "Schedule.of_string: bad choice %S" s) in
  let num () =
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some v when v >= 0 -> v
    | _ -> fail ()
  in
  if s = "t" then Step
  else if String.length s >= 2 && s.[0] = 'd' then Deliver (num ())
  else if String.length s >= 2 && s.[0] = 'f' then Fire (num ())
  else if String.length s >= 2 && s.[0] = 'a' then Amnesia (num ())
  else if String.length s >= 2 && s.[0] = 'e' then Equivocate (num ())
  else if String.length s >= 2 && s.[0] = 'c' then Churn (num ())
  else if String.length s >= 2 && s.[0] = 'r' then Region (num ())
  else fail ()

let of_string s =
  let s = String.trim s in
  if s = "" then []
  else List.map (fun c -> choice_of_string (String.trim c)) (String.split_on_char ';' s)

let to_json t =
  Qs_obs.Json.List (List.map (fun c -> Qs_obs.Json.String (choice_to_string c)) t)

let pp ppf t = Format.pp_print_string ppf (to_string t)
