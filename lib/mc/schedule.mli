(** Replayable schedules: the model checker's choice vocabulary.

    A schedule is the sequence of nondeterministic choices that takes a
    deterministic initial state to the state of interest. Three choice kinds
    cover every source of nondeterminism the simulated systems have:

    - [Deliver id]: hand the parked network message [id] to its destination
      ({!Qs_sim.Network.deliver_now});
    - [Step]: pop the next simulation event — timer deadlines, detector
      expectations — advancing virtual time;
    - [Fire p]: force process [p]'s open failure-detector expectation to
      time out (used by instances whose FD is emulated without timers);
    - [Amnesia p]: crash process [p] losing its volatile state, drop its
      in-flight messages, and start the rejoin protocol (instances that
      declare an amnesia budget explore it at every state, once per
      process);
    - [Equivocate p]: process [p] commits one equivocation — two
      validly-signed, pointwise-incomparable variants of its own suspicion
      row leave for two different peers (instances that declare an
      equivocation budget explore it at every state, once per process);
    - [Churn p]: one atomic membership change — process [p] leaves and
      instantly rejoins under a fresh identity slot: every process
      reconfigures to the same width with [p]'s row wiped
      ([of_new p = -1]) and the config epoch bumped, then [p] bootstraps
      its state back through the rejoin protocol (instances that declare
      a churn budget explore it at every state, once per process);
    - [Region i]: one correlated whole-region loss — every member of the
      instance's declared fault-domain [i] goes mute at once, their
      in-flight messages die with them (instances that declare a region
      explore it at every state, once per region; the members draw on the
      same [f]-budget as crashes).

    The textual form ("d3;t;a1;e0;c2;r0") is what [test/regressions/] pins
    and what violation reports print, so counterexamples replay from
    plain text. *)

type choice =
  | Deliver of int
  | Step
  | Fire of int
  | Amnesia of int
  | Equivocate of int
  | Churn of int
  | Region of int

type t = choice list

val choice_to_string : choice -> string

val to_string : t -> string
(** Semicolon-separated, e.g. ["d3;d0;t"]; the empty schedule is [""]. *)

val of_string : string -> t
(** Inverse of {!to_string}; [Invalid_argument] on malformed input. *)

val to_json : t -> Qs_obs.Json.t

val pp : Format.formatter -> t -> unit
