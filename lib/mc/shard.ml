module Prng = Qs_stdx.Prng
module Domainpool = Qs_stdx.Domainpool
module Sha256 = Qs_crypto.Sha256
module Metrics = Qs_obs.Metrics
module I = Engine.Internal

let now_s () = Unix.gettimeofday ()

type shard_stat = {
  shard : int;
  states : int;
  transitions : int;
  tasks : int;
  steals : int;
  stalls : int;
  elapsed_s : float;
}

type result = {
  report : Engine.report;
  shards : shard_stat list;
  states_digest : string;
}

(* Order-independent digest of a fingerprint set: hash the sorted hex
   renders. Equal digests <=> equal visited-state sets, which is the bench
   gate's sequential-vs-parallel agreement check. *)
let digest_of_set (tbl : (Sha256.digest, unit) Hashtbl.t) =
  let hexes = Hashtbl.fold (fun fp () acc -> Sha256.hex fp :: acc) tbl [] in
  Sha256.hex (Sha256.digest_string (String.concat "" (List.sort compare hexes)))

(* Per-check candidate counterexamples; ties broken by lexicographically
   least schedule so the merge never depends on which shard got there
   first. *)
let add_cand tbl (check, detail, sched) =
  match Hashtbl.find_opt tbl check with
  | None -> Hashtbl.replace tbl check (detail, sched)
  | Some (_, s') -> if compare sched s' < 0 then Hashtbl.replace tbl check (detail, sched)

(* ------------------------------------------------------------------ *)
(* Random mode *)

type walk = {
  w_index : int;
  w_fps : Sha256.digest list;
  w_transitions : int;
  w_quiescent : bool;
  w_truncated : bool;
  w_viols : (string * string * Schedule.t) list; (* discovery order *)
}

(* One walk, mirroring the body of [Engine.random]'s inner loop exactly
   (fingerprint recorded before each step; a hit ends the walk; truncation
   only when neither quiescence nor a hit stopped it), except the generator
   is the walk's own substream so the trajectory is a function of
   (seed, index) alone. *)
let run_walk (system : Engine.system) ~rng ~max_steps index =
  system.Engine.reset ();
  let fps = Hashtbl.create 64 in
  let path = ref [] in
  let viols = ref [] in
  let hit = ref false in
  let note vs =
    List.iter
      (fun (check, detail) ->
        hit := true;
        if not (List.exists (fun (c, _, _) -> c = check) !viols) then
          viols := !viols @ [ (check, detail, !path) ])
      vs
  in
  note (system.Engine.violations ());
  let steps = ref 0 in
  let stop = ref false in
  let transitions = ref 0 in
  let quiescent = ref false in
  while (not !stop) && (not !hit) && !steps < max_steps do
    let fp = Sha256.digest_string (system.Engine.fingerprint ()) in
    if not (Hashtbl.mem fps fp) then Hashtbl.replace fps fp ();
    match system.Engine.enabled () with
    | [] ->
      quiescent := true;
      note (system.Engine.quiescent_violations ());
      stop := true
    | en ->
      let ci = Prng.pick_list rng en in
      ignore (system.Engine.apply ci.Engine.choice);
      incr transitions;
      incr steps;
      path := !path @ [ ci.Engine.choice ];
      note (system.Engine.violations ())
  done;
  {
    w_index = index;
    w_fps = Hashtbl.fold (fun fp () acc -> fp :: acc) fps [];
    w_transitions = !transitions;
    w_quiescent = !quiescent;
    w_truncated = (not !stop) && not !hit;
    w_viols = !viols;
  }

let random ~jobs ?(max_steps = 200) ?(shrink = true) ~seed ~iters mk =
  if jobs < 1 then invalid_arg "Shard.random: jobs must be >= 1";
  if max_steps < 1 then invalid_arg "Shard.random: max_steps must be >= 1";
  if iters < 0 then invalid_arg "Shard.random: iters must be >= 0";
  let root = Prng.of_int seed in
  let sys_main = mk () in
  let next = Atomic.make 0 in
  (* Lowest violating walk index found so far; walks above it are skipped.
     Every index <= the final minimum is provably executed (a skip needs a
     violating walk strictly below it), so the merged prefix is exact. *)
  let best = Atomic.make max_int in
  let rec lower_best i =
    let cur = Atomic.get best in
    if i < cur && not (Atomic.compare_and_set best cur i) then lower_best i
  in
  let fair = (iters + jobs - 1) / jobs in
  let run_shard k =
    let t0 = now_s () in
    let system = if k = 0 then sys_main else mk () in
    let walks = ref [] in
    let executed = ref 0 in
    let continue = ref true in
    while !continue do
      let i = Atomic.fetch_and_add next 1 in
      if i >= iters then continue := false
      else if i < Atomic.get best then begin
        let w = run_walk system ~rng:(Prng.substream root i) ~max_steps i in
        incr executed;
        if w.w_viols <> [] then lower_best i;
        walks := w :: !walks
      end
    done;
    let seen = Hashtbl.create 256 in
    List.iter
      (fun w -> List.iter (fun fp -> Hashtbl.replace seen fp ()) w.w_fps)
      !walks;
    let transitions = List.fold_left (fun a w -> a + w.w_transitions) 0 !walks in
    let stat =
      {
        shard = k;
        states = Hashtbl.length seen;
        transitions;
        tasks = !executed;
        steals = max 0 (!executed - fair);
        stalls = 0;
        elapsed_s = now_s () -. t0;
      }
    in
    (!walks, stat)
  in
  let outs = Domainpool.run ~jobs run_shard in
  let walks =
    Array.to_list outs
    |> List.concat_map fst
    |> List.sort (fun a b -> compare a.w_index b.w_index)
  in
  let w_star = List.find_opt (fun w -> w.w_viols <> []) walks in
  let horizon = match w_star with Some w -> w.w_index | None -> iters - 1 in
  let considered = List.filter (fun w -> w.w_index <= horizon) walks in
  let fps = Hashtbl.create 1024 in
  List.iter
    (fun w -> List.iter (fun fp -> Hashtbl.replace fps fp ()) w.w_fps)
    considered;
  let sum f = List.fold_left (fun a w -> a + f w) 0 considered in
  let violations =
    match w_star with
    | None -> []
    | Some w ->
      List.map
        (fun (check, detail, schedule) ->
          { Engine.check; detail; schedule; shrink_steps = 0 })
        w.w_viols
      |> Engine.shrink_violations sys_main ~shrink
  in
  let report =
    {
      Engine.mode = Engine.Random { seed; iters };
      visited = Hashtbl.length fps;
      revisit_pruned = 0;
      sleep_pruned = 0;
      transitions = sum (fun w -> w.w_transitions);
      quiescent = sum (fun w -> if w.w_quiescent then 1 else 0);
      truncated = sum (fun w -> if w.w_truncated then 1 else 0);
      complete = false;
      violations;
    }
  in
  let shards = Array.to_list outs |> List.map snd in
  { report; shards; states_digest = digest_of_set fps }

(* ------------------------------------------------------------------ *)
(* Exhaustive mode *)

type worker_out = {
  o_stats : I.stats;
  o_visited : I.table;
  o_qfps : (Sha256.digest, unit) Hashtbl.t;
  o_cands : (string * string * Schedule.t) list;
  o_tasks : int;
  o_elapsed : float;
}

let explore ~jobs ?(por = true) ?(shrink = true) ?(sym = false) ~depth mk =
  if jobs < 1 then invalid_arg "Shard.explore: jobs must be >= 1";
  if depth < 1 then invalid_arg "Shard.explore: depth must be >= 1";
  let sys_main = mk () in
  let fpf_main = I.fingerprint_for ~sym sys_main in
  let acc_states = Array.make jobs 0 in
  let acc_transitions = Array.make jobs 0 in
  let acc_tasks = Array.make jobs 0 in
  let acc_stalls = Array.make jobs 0 in
  let acc_elapsed = Array.make jobs 0.0 in
  (* Shortest-bound-first discovery, like the sequential deepening loop: a
     check registered at an earlier bound keeps that bound's schedule. *)
  let found : (string, string * Schedule.t) Hashtbl.t = Hashtbl.create 4 in
  let found_order = ref [] in
  let run_bound bound =
    (* Root expansion on the calling domain, reproducing the sequential
       explorer's left-to-right sleep-set assignment for the root's
       children. *)
    let root_stats = I.new_stats () in
    let cands : (string, string * Schedule.t) Hashtbl.t = Hashtbl.create 4 in
    sys_main.Engine.reset ();
    List.iter
      (fun (c, d) -> add_cand cands (c, d, []))
      (sys_main.Engine.violations ());
    let rfp = Sha256.digest_string (fpf_main ()) in
    root_stats.I.s_visited <- 1;
    let root_quiescent = ref false in
    let rev_children = ref [] in
    (match sys_main.Engine.enabled () with
     | [] ->
       root_stats.I.s_quiescent <- 1;
       root_quiescent := true;
       List.iter
         (fun (c, d) -> add_cand cands (c, d, []))
         (sys_main.Engine.quiescent_violations ())
     | en ->
       let slept : (string, unit) Hashtbl.t = Hashtbl.create 8 in
       let explored = ref [] in
       List.iter
         (fun ci ->
           if Hashtbl.mem slept ci.Engine.canon then
             root_stats.I.s_sleep <- root_stats.I.s_sleep + 1
           else begin
             let child_sleep = List.filter (fun b -> Engine.commutes b ci) !explored in
             root_stats.I.s_transitions <- root_stats.I.s_transitions + 1;
             rev_children := (ci, child_sleep) :: !rev_children;
             Hashtbl.replace slept ci.Engine.canon ();
             if por then explored := !explored @ [ ci ]
           end)
         en);
    let children = Array.of_list (List.rev !rev_children) in
    let nshards = max 1 (min jobs (Array.length children)) in
    let worker k =
      let t0 = now_s () in
      let system = if k = 0 then sys_main else mk () in
      let fpf = if k = 0 then fpf_main else I.fingerprint_for ~sym system in
      let stats = I.new_stats () in
      let visited : I.table = Hashtbl.create 4096 in
      (* Seed with the root's cache entry so subtree revisits of the root
         state prune exactly as they would sequentially. *)
      Hashtbl.replace visited rfp [ (bound, []) ];
      let qfps = Hashtbl.create 16 in
      let wcands : (string, string * Schedule.t) Hashtbl.t = Hashtbl.create 4 in
      let note path vs = List.iter (fun (c, d) -> add_cand wcands (c, d, path)) vs in
      let tasks = ref 0 in
      Array.iteri
        (fun idx (ci, child_sleep) ->
          if idx mod nshards = k then begin
            incr tasks;
            system.Engine.reset ();
            ignore (system.Engine.apply ci.Engine.choice);
            I.visit system ~fpf ~por ~stats ~visited ~qfps:(Some qfps) ~note
              ~path:[ ci.Engine.choice ] ~budget:(bound - 1) ~sleep:child_sleep
          end)
        children;
      {
        o_stats = stats;
        o_visited = visited;
        o_qfps = qfps;
        o_cands = Hashtbl.fold (fun c (d, s) acc -> (c, d, s) :: acc) wcands [];
        o_tasks = !tasks;
        o_elapsed = now_s () -. t0;
      }
    in
    let outs =
      if !root_quiescent || Array.length children = 0 then [||]
      else Domainpool.run ~jobs:nshards worker
    in
    (* Barrier merge. The visited and quiescent fingerprint SETS are
       partition-independent (sleep sets remove transitions, never states);
       the event counters below them are sums and depend on the partition. *)
    let visited_set = Hashtbl.create 4096 in
    Hashtbl.replace visited_set rfp ();
    Array.iter
      (fun o -> Hashtbl.iter (fun fp _ -> Hashtbl.replace visited_set fp ()) o.o_visited)
      outs;
    let qset = Hashtbl.create 16 in
    Array.iter
      (fun o -> Hashtbl.iter (fun fp () -> Hashtbl.replace qset fp ()) o.o_qfps)
      outs;
    let merged = I.new_stats () in
    merged.I.s_visited <- Hashtbl.length visited_set;
    merged.I.s_quiescent <-
      (Hashtbl.length qset + if !root_quiescent then 1 else 0);
    merged.I.s_sleep <- root_stats.I.s_sleep;
    merged.I.s_transitions <- root_stats.I.s_transitions;
    Array.iter
      (fun o ->
        merged.I.s_revisit <- merged.I.s_revisit + o.o_stats.I.s_revisit;
        merged.I.s_sleep <- merged.I.s_sleep + o.o_stats.I.s_sleep;
        merged.I.s_transitions <- merged.I.s_transitions + o.o_stats.I.s_transitions;
        merged.I.s_truncated <- merged.I.s_truncated + o.o_stats.I.s_truncated)
      outs;
    Array.iter (fun o -> List.iter (add_cand cands) o.o_cands) outs;
    let bound_cands =
      Hashtbl.fold (fun c (d, s) acc -> (c, d, s) :: acc) cands []
      |> List.sort (fun (c1, _, s1) (c2, _, s2) -> compare (s1, c1) (s2, c2))
    in
    List.iter
      (fun (c, d, s) ->
        if not (Hashtbl.mem found c) then begin
          Hashtbl.replace found c (d, s);
          found_order := c :: !found_order
        end)
      bound_cands;
    let max_elapsed = Array.fold_left (fun m o -> max m o.o_elapsed) 0.0 outs in
    Array.iteri
      (fun k o ->
        acc_states.(k) <- acc_states.(k) + o.o_stats.I.s_visited;
        acc_transitions.(k) <- acc_transitions.(k) + o.o_stats.I.s_transitions;
        acc_tasks.(k) <- acc_tasks.(k) + o.o_tasks;
        if max_elapsed -. o.o_elapsed > 1e-3 then
          acc_stalls.(k) <- acc_stalls.(k) + 1;
        acc_elapsed.(k) <- acc_elapsed.(k) +. o.o_elapsed)
      outs;
    (merged, visited_set)
  in
  let rec deepen bound =
    let stats, vset = run_bound bound in
    if stats.I.s_truncated = 0 || bound = depth then (stats, vset)
    else deepen (bound + 1)
  in
  let stats, vset = deepen 1 in
  let violations =
    List.rev_map
      (fun c ->
        let d, s = Hashtbl.find found c in
        { Engine.check = c; detail = d; schedule = s; shrink_steps = 0 })
      !found_order
    |> Engine.shrink_violations sys_main ~shrink
  in
  let report =
    {
      Engine.mode = Engine.Exhaustive { depth };
      visited = stats.I.s_visited;
      revisit_pruned = stats.I.s_revisit;
      sleep_pruned = stats.I.s_sleep;
      transitions = stats.I.s_transitions;
      quiescent = stats.I.s_quiescent;
      truncated = stats.I.s_truncated;
      complete = stats.I.s_truncated = 0;
      violations;
    }
  in
  let shards =
    List.init jobs (fun k ->
        {
          shard = k;
          states = acc_states.(k);
          transitions = acc_transitions.(k);
          tasks = acc_tasks.(k);
          steals = 0;
          stalls = acc_stalls.(k);
          elapsed_s = acc_elapsed.(k);
        })
  in
  { report; shards; states_digest = digest_of_set vset }

(* ------------------------------------------------------------------ *)

let observe ?m result =
  List.iter
    (fun s ->
      if s.elapsed_s > 0.0 then
        Metrics.observe_h ?m
          ~labels:[ ("shard", string_of_int s.shard) ]
          "mc_shard_states_per_sec"
          (float_of_int s.states /. s.elapsed_s);
      Metrics.inc_c ?m ~by:s.steals "mc_steals_total";
      Metrics.inc_c ?m ~by:s.stalls "mc_merge_stalls_total")
    result.shards
