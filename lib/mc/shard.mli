(** Domain-sharded exploration: the {!Engine} fuzzer and IDDFS explorer
    fanned out across OCaml domains ({!Qs_stdx.Domainpool}), with
    deterministic merges — the same [jobs] always produces the same report,
    independent of domain scheduling, and the {e random} mode is
    byte-identical across [jobs] values.

    {2 Random mode}

    Walk [i] runs on its own decorrelated generator
    ([Prng.substream seed i]), so a walk's trajectory depends only on
    [(seed, i)] — never on which domain ran it. Workers pull walk indices
    from a shared atomic queue (dynamic load balancing; the [steals]
    stat counts pulls beyond a shard's static fair share) and skip indices
    above the lowest violating walk found so far. The merged report is
    defined over walks [0 .. w*] where [w*] is the {e lowest} violating
    index: counters sum over that prefix, visited states are the fingerprint
    set union over it, and the counterexample is walk [w*]'s. That is a
    partition-independent quantity, hence [--jobs 1] and [--jobs 4] emit
    byte-identical JSON.

    {2 Exhaustive mode}

    Per deepening bound, the root's children (with the exact sleep sets the
    sequential left-to-right order assigns) are computed on the calling
    domain and statically partitioned round-robin over shards; each shard
    explores its subtrees with {!Engine.Internal.visit} against a private
    fingerprint table seeded with the root entry, and tables merge at the
    depth barrier. Sleep-set reduction removes transitions, never states,
    so the {e visited fingerprint set} (and the distinct-quiescent set) is
    partition-independent: any [jobs] agrees with the sequential explorer
    on [visited], [quiescent], and which checks are violated.
    Order-dependent byproducts — [revisit_pruned], [sleep_pruned],
    [transitions], [truncated] and the pre-shrink counterexample schedules —
    depend on the partition (they are deterministic for a fixed [jobs]);
    counterexamples are merged lexicographically-least per check, then
    shrunk. *)

type shard_stat = {
  shard : int;
  states : int;  (** states this shard counted fresh in its own table *)
  transitions : int;
  tasks : int;  (** walks run (random) / root subtrees explored (IDDFS) *)
  steals : int;
      (** tasks pulled beyond the static fair share — random mode's dynamic
          queue only; 0 in exhaustive mode (static partition). *)
  stalls : int;
      (** depth barriers where this shard idled waiting for the slowest
          shard (exhaustive mode). *)
  elapsed_s : float;
}

type result = {
  report : Engine.report;
  shards : shard_stat list;
  states_digest : string;
      (** Order-independent SHA-256 over the sorted visited-fingerprint
          set — equal digests iff equal state sets; what the bench gate
          compares between sequential and parallel runs. *)
}

val explore :
  jobs:int ->
  ?por:bool ->
  ?shrink:bool ->
  ?sym:bool ->
  depth:int ->
  (unit -> Engine.system) ->
  result
(** Sharded iterative-deepening DFS. The factory runs once on the calling
    domain (shard 0 reuses that system) and once {e inside} every other
    shard's domain, so per-domain observability state (metrics, journal)
    stays domain-local. [jobs] is clamped to the root-child count per
    iteration. *)

val random :
  jobs:int ->
  ?max_steps:int ->
  ?shrink:bool ->
  seed:int ->
  iters:int ->
  (unit -> Engine.system) ->
  result
(** Sharded seeded fuzzing, per-walk seeding as above. Note the walk
    trajectories differ from {!Engine.random}'s legacy single-stream
    seeding — [Shard.random ~jobs:1] is the reference run that
    [~jobs:n] reproduces byte-identically. *)

val observe : ?m:Qs_obs.Metrics.t -> result -> unit
(** Record per-shard throughput ([mc_shard_states_per_sec] histogram) and
    the [mc_steals_total] / [mc_merge_stalls_total] counters into [m]
    (default: the calling domain's registry). *)
