type t = { cepoch : int; members : int array }

type change = Join of int | Leave of int | Eject of int

let bootstrap members =
  if members = [] then invalid_arg "Config.bootstrap: empty membership";
  let sorted = List.sort_uniq compare members in
  if List.length sorted <> List.length members then
    invalid_arg "Config.bootstrap: duplicate pid";
  if List.exists (fun p -> p < 0) sorted then
    invalid_arg "Config.bootstrap: negative pid";
  { cepoch = 0; members = Array.of_list sorted }

let cepoch t = t.cepoch

let n t = Array.length t.members

let members t = Array.to_list t.members

let pid_of_slot t slot =
  if slot < 0 || slot >= Array.length t.members then
    invalid_arg "Config.pid_of_slot";
  t.members.(slot)

(* Members stay sorted by pid, so slot lookup is a binary search — O(log n)
   on the reconfiguration path, which remaps every slot once. *)
let slot_of_pid t pid =
  let lo = ref 0 and hi = ref (Array.length t.members - 1) and res = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let v = t.members.(mid) in
    if v = pid then begin
      res := mid;
      lo := !hi + 1
    end
    else if v < pid then lo := mid + 1
    else hi := mid - 1
  done;
  if !res < 0 then None else Some !res

let mem t pid = slot_of_pid t pid <> None

let fingerprint t =
  Printf.sprintf "c%d:{%s}" t.cepoch
    (String.concat "," (Array.to_list (Array.map string_of_int t.members)))

let target = function Join p | Leave p | Eject p -> p

let change_to_string = function
  | Join p -> Printf.sprintf "join p%d" p
  | Leave p -> Printf.sprintf "leave p%d" p
  | Eject p -> Printf.sprintf "eject p%d" p

let apply t change =
  let p = target change in
  if p < 0 then invalid_arg "Config.apply: negative pid";
  let members =
    match change with
    | Join _ ->
      if mem t p then invalid_arg "Config.apply: join of a current member";
      let a = Array.make (Array.length t.members + 1) p in
      let j = ref 0 in
      Array.iter
        (fun v ->
          if v < p then begin
            a.(!j) <- v;
            incr j
          end)
        t.members;
      a.(!j) <- p;
      incr j;
      Array.iter
        (fun v ->
          if v > p then begin
            a.(!j) <- v;
            incr j
          end)
        t.members;
      a
    | Leave _ | Eject _ ->
      if not (mem t p) then invalid_arg "Config.apply: removal of a non-member";
      if Array.length t.members <= 1 then
        invalid_arg "Config.apply: cannot remove the last member";
      Array.of_list (List.filter (fun v -> v <> p) (Array.to_list t.members))
  in
  { cepoch = t.cepoch + 1; members }

(* The slot-remap function selectors consume: new slot -> inherited old
   slot, or -1 for a slot whose pid was not a member of [old] (a fresh
   joiner). Removed pids simply have no slot in [fresh]. *)
let of_new ~old ~fresh =
  let map =
    Array.map
      (fun pid -> match slot_of_pid old pid with Some s -> s | None -> -1)
      fresh.members
  in
  fun i ->
    if i < 0 || i >= Array.length map then
      invalid_arg "Config.of_new: slot out of range"
    else map.(i)

let equal a b = a.cepoch = b.cepoch && a.members = b.members
