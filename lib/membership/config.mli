(** A membership configuration: the ordered process set Π at one membership
    epoch.

    Processes are named by {e universe pids} (stable identities, also the
    key indices of {!Qs_crypto.Auth}); a configuration assigns each member
    pid a {e slot} — its index in the sorted member array — which is the
    process index the selectors, matrix and graphs operate on. A
    reconfiguration changes the pid⇄slot assignment; {!of_new} is the remap
    the selector layer consumes ({!Qs_core.Quorum_select.reconfigure}). *)

type t

type change = Join of int | Leave of int | Eject of int
    (** One config-change log entry, naming a universe pid. [Leave] is a
        voluntary departure (after a graceful drain), [Eject] an
        evidence-driven removal — same membership effect, different
        provenance (and journal event). *)

val bootstrap : int list -> t
(** The initial configuration (membership epoch 0) over the given pids.
    [Invalid_argument] on an empty list, duplicates or negative pids. *)

val apply : t -> change -> t
(** The successor configuration: membership epoch [+1], member set updated.
    [Invalid_argument] on joining a current member, removing a non-member
    or removing the last member. *)

val cepoch : t -> int

val n : t -> int

val members : t -> int list
(** Member pids in slot order (ascending). *)

val mem : t -> int -> bool

val slot_of_pid : t -> int -> int option

val pid_of_slot : t -> int -> int
(** [Invalid_argument] out of range. *)

val of_new : old:t -> fresh:t -> int -> int
(** [of_new ~old ~fresh] maps each slot of [fresh] to the slot of [old]
    holding the same pid, or [-1] for a pid that was not a member of [old]
    — exactly the [of_new] argument of the selectors' [reconfigure]. *)

val fingerprint : t -> string
(** Canonical ["c<cepoch>:{pids}"] encoding — folded into harness and
    model-checker fingerprints. *)

val target : change -> int

val change_to_string : change -> string

val equal : t -> t -> bool
